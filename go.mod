module dcfguard

go 1.22
