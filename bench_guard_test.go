package dcfguard_test

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"dcfguard"
)

// The bench guard pins the kernel-throughput floor: RunRandom40V2 and
// RunRandom400 must sustain at least 95% of the events/sec recorded in
// BENCH.json, so a scheduler or channel-model regression that survives
// the correctness suites still fails the pre-merge gate. Like the
// observability overhead guard it is gated behind
// DCFGUARD_OVERHEAD_GUARD=1 (run by `make bench-guard`) because
// absolute throughput is only meaningful on the machine that captured
// the baseline.
//
// The estimator mirrors TestDisabledObservabilityOverhead's
// noisy-host discipline: each run is timed as min(wall, process-CPU) —
// contention inflates wall but not CPU burned — the best per-run rate
// accumulates across batches with a pause between failing ones, and a
// real regression lowers the ceiling itself so no number of batches
// rescues it.

// benchGuardTargets are the guarded workloads; both run channel model
// v2, the default, so they cover the slab kernel, the calendar queue,
// and the batched counter-RNG fast path.
func benchGuardTargets() map[string]dcfguard.Scenario {
	return map[string]dcfguard.Scenario{
		"RunRandom40V2": dcfguard.BenchScenarioRandom40V2(),
		"RunRandom400":  dcfguard.BenchScenarioRandom400(),
	}
}

func TestKernelThroughputGuard(t *testing.T) {
	if os.Getenv(overheadGuardEnv) == "" {
		t.Skipf("set %s=1 to run the kernel-throughput guard (make bench-guard)", overheadGuardEnv)
	}
	data, err := os.ReadFile("BENCH.json")
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	var bench struct {
		Results []struct {
			Name         string  `json:"name"`
			EventsPerSec float64 `json:"events_per_sec"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &bench); err != nil {
		t.Fatalf("baseline: %v", err)
	}
	baseline := make(map[string]float64)
	for _, r := range bench.Results {
		baseline[r.Name] = r.EventsPerSec
	}

	// Host-speed normalization (see hostSpeedScale): without it, the
	// host's minute-scale clock drift dwarfs the guard's 5% tolerance.
	hostScale, refNow := hostSpeedScale(baseline["HostReference"])
	t.Logf("host reference: recorded %.0f, now %.0f, floor scale %.3f",
		baseline["HostReference"], refNow, hostScale)

	for name, s := range benchGuardTargets() {
		name, s := name, s
		t.Run(name, func(t *testing.T) {
			base := baseline[name]
			if base <= 0 {
				t.Fatalf("baseline: no events_per_sec for %s in BENCH.json", name)
			}
			floor := base * 0.95 * hostScale
			best := 0.0
			for batch := 0; batch < 10 && best < floor; batch++ {
				if batch > 0 {
					time.Sleep(500 * time.Millisecond)
				}
				for i := 0; i < 3; i++ {
					wall0, cpu0 := time.Now(), cpuNow()
					r, err := dcfguard.Run(s, uint64(i+1))
					if err != nil {
						t.Fatal(err)
					}
					wall, cpu := time.Since(wall0), cpuNow()-cpu0
					d := wall
					if cpu > 0 && cpu < d {
						d = cpu
					}
					if secs := d.Seconds(); secs > 0 {
						if rate := float64(r.EventsFired) / secs; rate > best {
							best = rate
						}
					}
				}
				t.Logf("batch %d: best %.0f events/sec, baseline %.0f, floor %.0f",
					batch+1, best, base, floor)
			}
			if best < floor {
				t.Errorf("%s = %.0f events/sec, below %.0f (baseline %.0f - 5%%) — kernel throughput regressed",
					name, best, floor, base)
			}
		})
	}
}

// TestShardSpeedupGuard pins the sharded kernel's raison d'être: at the
// 10k-node workload, 4 shards must sustain at least 2.5x the events/sec
// of the serial kernel. The comparison is self-contained (both variants
// run back-to-back here, no BENCH.json baseline needed) so it holds on
// any sufficiently parallel machine; it is skipped where shards cannot
// physically run in parallel — on fewer than 4 usable CPUs the "sharded"
// run measures barrier overhead on a time-sliced core, and no kernel
// improvement could pass.
func TestShardSpeedupGuard(t *testing.T) {
	if os.Getenv(overheadGuardEnv) == "" {
		t.Skipf("set %s=1 to run the shard-speedup guard (make bench-guard)", overheadGuardEnv)
	}
	if n := runtime.NumCPU(); n < 4 {
		t.Skipf("host has %d CPUs; the 4-shard speedup target needs >= 4 to be meaningful", n)
	}
	if n := runtime.GOMAXPROCS(0); n < 4 {
		t.Skipf("GOMAXPROCS=%d; the 4-shard speedup target needs >= 4 to be meaningful", n)
	}

	// Best-of-3 per variant with min(wall, CPU-per-proc) timing — the
	// same noisy-host discipline as the throughput guard above. For the
	// sharded run, wall is the honest metric (work spreads over cores);
	// total CPU would overcount by the parallelism degree, so only wall
	// is used for both variants to keep the ratio apples-to-apples.
	rate := func(s dcfguard.Scenario) float64 {
		best := 0.0
		for i := 0; i < 3; i++ {
			wall0 := time.Now()
			r, err := dcfguard.Run(s, uint64(i+1))
			if err != nil {
				t.Fatal(err)
			}
			if secs := time.Since(wall0).Seconds(); secs > 0 {
				if rt := float64(r.EventsFired) / secs; rt > best {
					best = rt
				}
			}
		}
		return best
	}
	serial := rate(dcfguard.BenchScenarioRandom10kV3())
	sharded := rate(dcfguard.BenchScenarioRandom10kV3Sharded())
	speedup := sharded / serial
	t.Logf("10k nodes: serial %.0f events/sec, 4-shard %.0f events/sec, speedup %.2fx",
		serial, sharded, speedup)
	if speedup < 2.5 {
		t.Errorf("4-shard speedup %.2fx at 10k nodes, want >= 2.5x — the sharded kernel is not scaling", speedup)
	}
}
