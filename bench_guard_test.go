package dcfguard_test

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"dcfguard"
)

// The bench guard pins the kernel-throughput floor: RunRandom40V2 and
// RunRandom400 must sustain at least 95% of the events/sec recorded in
// BENCH.json, so a scheduler or channel-model regression that survives
// the correctness suites still fails the pre-merge gate. Like the
// observability overhead guard it is gated behind
// DCFGUARD_OVERHEAD_GUARD=1 (run by `make bench-guard`) because
// absolute throughput is only meaningful on the machine that captured
// the baseline.
//
// The estimator mirrors TestDisabledObservabilityOverhead's
// noisy-host discipline: each run is timed as min(wall, process-CPU) —
// contention inflates wall but not CPU burned — the best per-run rate
// accumulates across batches with a pause between failing ones, and a
// real regression lowers the ceiling itself so no number of batches
// rescues it.

// benchGuardTargets are the guarded workloads; both run channel model
// v2, the default, so they cover the slab kernel, the calendar queue,
// and the batched counter-RNG fast path.
func benchGuardTargets() map[string]dcfguard.Scenario {
	return map[string]dcfguard.Scenario{
		"RunRandom40V2": dcfguard.BenchScenarioRandom40V2(),
		"RunRandom400":  dcfguard.BenchScenarioRandom400(),
	}
}

func TestKernelThroughputGuard(t *testing.T) {
	if os.Getenv(overheadGuardEnv) == "" {
		t.Skipf("set %s=1 to run the kernel-throughput guard (make bench-guard)", overheadGuardEnv)
	}
	data, err := os.ReadFile("BENCH.json")
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	var bench struct {
		Results []struct {
			Name         string  `json:"name"`
			EventsPerSec float64 `json:"events_per_sec"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &bench); err != nil {
		t.Fatalf("baseline: %v", err)
	}
	baseline := make(map[string]float64)
	for _, r := range bench.Results {
		baseline[r.Name] = r.EventsPerSec
	}

	// Host-speed normalization (see hostSpeedScale): without it, the
	// host's minute-scale clock drift dwarfs the guard's 5% tolerance.
	hostScale, refNow := hostSpeedScale(baseline["HostReference"])
	t.Logf("host reference: recorded %.0f, now %.0f, floor scale %.3f",
		baseline["HostReference"], refNow, hostScale)

	for name, s := range benchGuardTargets() {
		name, s := name, s
		t.Run(name, func(t *testing.T) {
			base := baseline[name]
			if base <= 0 {
				t.Fatalf("baseline: no events_per_sec for %s in BENCH.json", name)
			}
			floor := base * 0.95 * hostScale
			best := 0.0
			for batch := 0; batch < 10 && best < floor; batch++ {
				if batch > 0 {
					time.Sleep(500 * time.Millisecond)
				}
				for i := 0; i < 3; i++ {
					wall0, cpu0 := time.Now(), cpuNow()
					r, err := dcfguard.Run(s, uint64(i+1))
					if err != nil {
						t.Fatal(err)
					}
					wall, cpu := time.Since(wall0), cpuNow()-cpu0
					d := wall
					if cpu > 0 && cpu < d {
						d = cpu
					}
					if secs := d.Seconds(); secs > 0 {
						if rate := float64(r.EventsFired) / secs; rate > best {
							best = rate
						}
					}
				}
				t.Logf("batch %d: best %.0f events/sec, baseline %.0f, floor %.0f",
					batch+1, best, base, floor)
			}
			if best < floor {
				t.Errorf("%s = %.0f events/sec, below %.0f (baseline %.0f - 5%%) — kernel throughput regressed",
					name, best, floor, base)
			}
		})
	}
}
