package dcfguard_test

import (
	"fmt"

	"dcfguard"
)

// ExampleRun demonstrates the basic workflow: configure the paper's
// Figure-3 scenario, run it once, and read the headline metrics.
func ExampleRun() {
	s := dcfguard.DefaultScenario()
	s.Duration = 2 * dcfguard.Second
	s.Protocol = dcfguard.ProtocolCorrect
	s.PM = 100 // the misbehaving node never backs off

	r, err := dcfguard.Run(s, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("diagnosed %.0f%% of the misbehaver's packets\n", r.CorrectDiagnosisPct)
	fmt.Printf("misdiagnosis %.0f%%\n", r.MisdiagnosisPct)
	// Output:
	// diagnosed 100% of the misbehaver's packets
	// misdiagnosis 0%
}

// ExampleRunSeeds shows multi-seed aggregation with confidence
// intervals, as the paper's 30-run averages use.
func ExampleRunSeeds() {
	s := dcfguard.DefaultScenario()
	s.Duration = 1 * dcfguard.Second
	s.Protocol = dcfguard.Protocol80211

	agg, err := dcfguard.RunSeeds(s, dcfguard.Seeds(3))
	if err != nil {
		panic(err)
	}
	fmt.Printf("runs: %d\n", agg.Runs)
	fmt.Printf("fairness above 0.9: %v\n", agg.Fairness.Mean > 0.9)
	// Output:
	// runs: 3
	// fairness above 0.9: true
}

// ExampleScenario_watchdog demonstrates §4.4 collusion detection with a
// passive third-party observer.
func ExampleScenario_watchdog() {
	s := dcfguard.DefaultScenario()
	s.Duration = 5 * dcfguard.Second
	s.PM = 100
	s.Topo = func(uint64) *dcfguard.Topology {
		return &dcfguard.Topology{
			Positions: []dcfguard.Point{{X: 0}, {X: 120}, {Y: 100}, {X: 120, Y: 100}},
			Flows:     []dcfguard.Flow{{Src: 2, Dst: 0}, {Src: 3, Dst: 1}},
			Measured:  []dcfguard.NodeID{2, 3},
			Receivers: []dcfguard.NodeID{0, 1},
		}
	}
	s.ColludingReceivers = []dcfguard.NodeID{1}
	s.Watchdog = true

	r, err := dcfguard.Run(s, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("collusions detected: %d\n", r.CollusionsDetected)
	// Output:
	// collusions detected: 1
}
