package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"

	"dcfguard"
	"dcfguard/internal/atomicio"
)

// benchEntry is one BENCH.json record. Field names follow benchstat's
// vocabulary (ns/op, allocs/op, B/op) so the file can be consumed by
// perf-tracking tooling across PRs; the subcommand additionally prints
// standard `BenchmarkName N ... ns/op` lines to stdout, which benchstat
// parses directly (`macsim bench | tee bench.txt; benchstat bench.txt`).
type benchEntry struct {
	Name         string  `json:"name"`
	Iterations   int     `json:"iterations"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	EventsPerOp  float64 `json:"events_per_op,omitempty"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	// SpeedupVs1Shard is filled on "<Name>Sharded" entries whose serial
	// pair "<Name>" ran in the same suite: sharded events/sec over serial
	// events/sec. On a single-core host (see the file's gomaxprocs) it
	// measures barrier overhead, not parallel speedup.
	SpeedupVs1Shard float64 `json:"speedup_vs_1shard,omitempty"`
}

// benchFile is the BENCH.json schema.
type benchFile struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	// GOMAXPROCS qualifies the sharded-kernel numbers: speedups are only
	// meaningful when the host actually ran shards in parallel.
	GOMAXPROCS int          `json:"gomaxprocs"`
	Quick      bool         `json:"quick,omitempty"`
	Results    []benchEntry `json:"results"`
}

// runBench executes the canonical suite (see BenchTargets) and writes
// BENCH.json.
func runBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	out := fs.String("out", "BENCH.json", "output path for the JSON results")
	filter := fs.String("filter", "", "regexp selecting target names (default all)")
	quick := fs.Bool("quick", false, "one timed iteration per target instead of testing.Benchmark (CI gate)")
	cpuProf := fs.String("cpuprofile", "", "write a CPU profile of the whole suite to this file")
	memProf := fs.String("memprofile", "", "write a heap profile to this file at exit")
	execTr := fs.String("trace", "", "write a Go execution trace to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var re *regexp.Regexp
	if *filter != "" {
		var err error
		if re, err = regexp.Compile(*filter); err != nil {
			return fmt.Errorf("bad -filter: %w", err)
		}
	}
	stopProf, err := startProfiling(*cpuProf, *memProf, *execTr)
	if err != nil {
		return err
	}
	defer stopProf()

	baseline := loadBaseline(*out)
	file := benchFile{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339), //detlint:allow wallclock -- benchmark provenance stamp
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Quick:       *quick,
	}
	for _, target := range dcfguard.BenchTargets() {
		if re != nil && !re.MatchString(target.Name) {
			continue
		}
		entry, err := measure(target, *quick)
		if err != nil {
			return fmt.Errorf("%s: %w", target.Name, err)
		}
		file.Results = append(file.Results, entry)
		line := fmt.Sprintf("Benchmark%s\t%8d\t%12.0f ns/op\t%8d B/op\t%8d allocs/op",
			entry.Name, entry.Iterations, entry.NsPerOp, entry.BytesPerOp, entry.AllocsPerOp)
		if entry.EventsPerOp > 0 {
			line += fmt.Sprintf("\t%12.0f events/op\t%12.0f events/sec",
				entry.EventsPerOp, entry.EventsPerSec)
		}
		fmt.Println(line)
		if base, ok := baseline[entry.Name]; ok {
			fmt.Println(deltaLine(base, entry))
		}
	}
	if len(file.Results) == 0 {
		return fmt.Errorf("no targets match filter %q", *filter)
	}
	fillShardSpeedups(file.Results)
	// The host-reference entry calibrates the throughput guard: it
	// rescales the recorded floors by how fast this machine runs a pure
	// ALU loop at guard time versus now (see dcfguard.HostReferenceRate).
	ref := benchEntry{
		Name:         "HostReference",
		Iterations:   1,
		EventsPerOp:  float64(uint64(1) << 23),
		EventsPerSec: dcfguard.HostReferenceRate(),
	}
	file.Results = append(file.Results, ref)
	fmt.Printf("Benchmark%s\t%8d\t%12.0f events/sec\n", ref.Name, ref.Iterations, ref.EventsPerSec)
	if base, ok := baseline[ref.Name]; ok && base.EventsPerSec > 0 {
		fmt.Printf("  vs baseline:\tevents/sec %s\n", pctDelta(base.EventsPerSec, ref.EventsPerSec))
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := atomicio.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d targets)\n", *out, len(file.Results))
	return nil
}

// fillShardSpeedups pairs every "<Name>Sharded" entry with its serial
// "<Name>" partner from the same run and records the events/sec ratio,
// the suite's sharded-kernel headline number.
func fillShardSpeedups(results []benchEntry) {
	serial := make(map[string]float64, len(results))
	for _, e := range results {
		serial[e.Name] = e.EventsPerSec
	}
	for i := range results {
		e := &results[i]
		base, ok := strings.CutSuffix(e.Name, "Sharded")
		if !ok || e.EventsPerSec <= 0 {
			continue
		}
		if s := serial[base]; s > 0 {
			e.SpeedupVs1Shard = e.EventsPerSec / s
			fmt.Printf("  %s: %.2fx events/sec vs %s\n", e.Name, e.SpeedupVs1Shard, base)
		}
	}
}

// loadBaseline reads the committed results at path (normally the same
// BENCH.json the run is about to overwrite) so each fresh measurement
// can be printed with deltas against the previous recording. A missing
// or malformed file just disables the deltas.
func loadBaseline(path string) map[string]benchEntry {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var prev benchFile
	if err := json.Unmarshal(data, &prev); err != nil {
		fmt.Fprintf(os.Stderr, "macsim bench: ignoring baseline %s: %v\n", path, err)
		return nil
	}
	base := make(map[string]benchEntry, len(prev.Results))
	for _, e := range prev.Results {
		base[e.Name] = e
	}
	return base
}

// deltaLine renders one comparison row against the baseline entry.
func deltaLine(base, cur benchEntry) string {
	line := fmt.Sprintf("  vs baseline:\tns/op %s\tallocs/op %s",
		pctDelta(base.NsPerOp, cur.NsPerOp),
		pctDelta(float64(base.AllocsPerOp), float64(cur.AllocsPerOp)))
	if base.EventsPerSec > 0 && cur.EventsPerSec > 0 {
		line += fmt.Sprintf("\tevents/sec %s", pctDelta(base.EventsPerSec, cur.EventsPerSec))
	}
	return line
}

// pctDelta formats the relative change from base to cur.
func pctDelta(base, cur float64) string {
	if base == 0 { //detlint:allow floateq -- exact-zero sentinel guarding the division, not a state comparison
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", (cur-base)/base*100)
}

// benchBatches is how many independent testing.Benchmark batches
// measure runs per target, keeping the fastest. One batch on a shared
// host conflates the kernel's cost with whatever the hypervisor
// scheduled alongside it; best-of-N with per-batch min(wall, CPU) is
// the same noisy-host discipline the overhead and throughput guards
// use, so BENCH.json records the machine's capability rather than its
// worst moment.
const benchBatches = 3

// cpuTime returns this process's cumulative user+system CPU time.
func cpuTime() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}

// measure times one target: a single hand-timed iteration in quick
// mode, best-of-benchBatches testing.Benchmark runs otherwise.
func measure(target dcfguard.BenchTarget, quick bool) (benchEntry, error) {
	if quick {
		return measureQuick(target)
	}
	var best benchEntry
	for batch := 0; batch < benchBatches; batch++ {
		var runErr error
		var events uint64
		var iters int
		var spent, fastestRun time.Duration
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			events, iters = 0, b.N
			fastestRun = 0
			wall0, cpu0 := time.Now(), cpuTime() //detlint:allow wallclock -- host benchmarking measures real wall time by design
			for i := 0; i < b.N; i++ {
				rw0, rc0 := time.Now(), cpuTime() //detlint:allow wallclock -- host benchmarking measures real wall time by design
				ev, err := target.Run(i)
				if err != nil {
					runErr = err
					b.FailNow()
				}
				// Per-run min(wall, CPU), for the peak-throughput
				// metric below. rusage reads cost ~1 µs against runs
				// of tens of milliseconds.
				rw, rc := time.Since(rw0), cpuTime()-rc0 //detlint:allow wallclock -- host benchmarking measures real wall time by design
				if rc > 0 && rc < rw {
					rw = rc
				}
				if fastestRun == 0 || rw < fastestRun {
					fastestRun = rw
				}
				events += ev
			}
			// min(wall, CPU): rusage strips hypervisor steal, wall
			// strips any accounting skew the other way.
			wall, cpu := time.Since(wall0), cpuTime()-cpu0 //detlint:allow wallclock -- host benchmarking measures real wall time by design
			spent = wall
			if cpu > 0 && cpu < wall {
				spent = cpu
			}
		})
		if runErr != nil {
			return benchEntry{}, runErr
		}
		entry := benchEntry{
			Name:       target.Name,
			Iterations: res.N,
			// Whole nanoseconds: ns_per_op is declared int64 by
			// downstream consumers (the overhead guard among them).
			NsPerOp:     float64(spent.Nanoseconds() / int64(iters)),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		}
		if events > 0 && iters > 0 {
			entry.EventsPerOp = float64(events) / float64(iters)
			// events_per_sec is peak sustained throughput — the batch's
			// fastest single run — NOT events_per_op/ns_per_op. That is
			// deliberately the exact quantity TestKernelThroughputGuard
			// replays (best run of a batch, min(wall, CPU)); recording
			// the batch average instead would hand the guard's 5 %
			// tolerance an extra, host-noise-sized cushion.
			if fastestRun > 0 {
				entry.EventsPerSec = entry.EventsPerOp / float64(fastestRun.Nanoseconds()) * 1e9
			}
		}
		if batch == 0 || entry.NsPerOp < best.NsPerOp {
			best = entry
		}
	}
	return best, nil
}

// measureQuick runs the target exactly once, timing wall clock and
// reading alloc deltas from runtime.MemStats. Coarser than
// testing.Benchmark but fast enough for a pre-merge gate.
func measureQuick(target dcfguard.BenchTarget) (benchEntry, error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now() //detlint:allow wallclock -- host benchmarking measures real wall time by design
	events, err := target.Run(0)
	elapsed := time.Since(start) //detlint:allow wallclock -- host benchmarking measures real wall time by design
	runtime.ReadMemStats(&after)
	if err != nil {
		return benchEntry{}, err
	}
	entry := benchEntry{
		Name:        target.Name,
		Iterations:  1,
		NsPerOp:     float64(elapsed.Nanoseconds()),
		AllocsPerOp: int64(after.Mallocs - before.Mallocs),
		BytesPerOp:  int64(after.TotalAlloc - before.TotalAlloc),
	}
	if events > 0 {
		entry.EventsPerOp = float64(events)
		if entry.NsPerOp > 0 {
			entry.EventsPerSec = entry.EventsPerOp / entry.NsPerOp * 1e9
		}
	}
	return entry, nil
}
