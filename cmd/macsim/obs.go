package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"dcfguard"
	"dcfguard/internal/atomicio"
)

// obsFlags carries the observability flag values. Everything is off by
// default, so plain runs pay nothing and stay bit-identical to the
// goldens (the obs layer is pass-through even when on, but off-by-default
// also keeps the output streams quiet).
type obsFlags struct {
	metrics     string
	traceCats   string
	traceOut    string
	diagCSV     string
	debugAddr   string
	progress    bool
	explain     string
	explainJSON string
}

// registerObsFlags declares the observability flags on the default set.
func registerObsFlags() *obsFlags {
	f := &obsFlags{}
	flag.StringVar(&f.metrics, "metrics", "",
		"write a metrics-registry snapshot (JSON) to this file after the run; with -seeds the registry aggregates across all cells")
	flag.StringVar(&f.traceCats, "trace-events", "",
		"decision-trace categories to record: comma list of mac,backoff,deviation,diagnosis,channel, or all")
	flag.StringVar(&f.traceOut, "trace-out", "",
		"write traced events as JSON lines to this file (single run only; implies -trace-events all unless set)")
	flag.StringVar(&f.diagCSV, "diag-csv", "",
		"write the monitor's diagnosis trail as CSV to this file (single run only; enables the diagnosis category)")
	flag.StringVar(&f.debugAddr, "debug-addr", "",
		"serve live introspection (pprof, /debug/metrics, /debug/sweep) on this address, e.g. localhost:6060")
	flag.BoolVar(&f.progress, "progress", false,
		"with -seeds: print a periodic progress line (cells done, failures, retries, events/sec, wall ETA) to stderr")
	flag.StringVar(&f.explain, "explain", "",
		"after a single run, print the evidence chain behind every diagnosis decision about this sender id ('all' for every node)")
	flag.StringVar(&f.explainJSON, "explain-json", "",
		"with -explain: also write the evidence chains as JSON lines to this file")
	return f
}

// obsRun is one invocation's assembled observability state: the scenario
// config wired into s.Observe plus the host-side endpoints (files, HTTP
// server, progress counters) that outlive individual runs. A nil *obsRun
// is valid and means "observability off".
type obsRun struct {
	metricsPath string
	registry    *dcfguard.ObsRegistry
	jsonl       *dcfguard.ObsJSONL
	jsonlPath   string
	diag        *dcfguard.ObsDiagnosisCSV
	diagPath    string
	debug       *dcfguard.ObsDebugServer
	progress    *dcfguard.SweepProgress
	showTicker  bool
	capture     *dcfguard.ObsCaptureSink
	explainNode dcfguard.NodeID
	explainJSON string
}

// setupObs validates the flag combination, wires s.Observe, and starts
// the debug endpoint if requested. sweep reports whether -seeds is in
// effect (per-run stateful sinks are rejected there: one JSONL/CSV file
// cannot serialise concurrent cells).
func setupObs(s *dcfguard.Scenario, f *obsFlags, sweep bool) (*obsRun, error) {
	if !sweep {
		if f.progress {
			return nil, fmt.Errorf("-progress requires -seeds")
		}
	} else {
		if f.traceOut != "" {
			return nil, fmt.Errorf("-trace-out cannot be combined with -seeds (concurrent cells would interleave one file); use a single -seed run")
		}
		if f.diagCSV != "" {
			return nil, fmt.Errorf("-diag-csv cannot be combined with -seeds (concurrent cells would interleave one file); use a single -seed run")
		}
		if f.explain != "" {
			return nil, fmt.Errorf("-explain cannot be combined with -seeds (the evidence chain belongs to one run); use a single -seed run")
		}
	}
	if f.explainJSON != "" && f.explain == "" {
		return nil, fmt.Errorf("-explain-json requires -explain")
	}

	cats := dcfguard.ObsCategorySet(0)
	if f.traceCats != "" {
		var err error
		cats, err = dcfguard.ParseObsCategories(f.traceCats)
		if err != nil {
			return nil, fmt.Errorf("-trace-events: %w", err)
		}
	}
	if f.traceOut != "" && cats.Empty() {
		cats = dcfguard.ObsAllCategories()
	}
	if f.diagCSV != "" {
		cats = cats.Set(dcfguard.ObsCatDiagnosis)
	}

	o := &obsRun{metricsPath: f.metrics, showTicker: f.progress}
	if f.explain != "" {
		// The explanation walks backoff assignments, deviations and window
		// updates by causal reference: all three categories must record.
		cats = cats.Set(dcfguard.ObsCatBackoff).
			Set(dcfguard.ObsCatDeviation).
			Set(dcfguard.ObsCatDiagnosis)
		o.explainNode = dcfguard.ObsNoNode
		if f.explain != "all" {
			n, err := strconv.Atoi(f.explain)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("-explain %q: want a sender id or 'all'", f.explain)
			}
			o.explainNode = dcfguard.NodeID(n)
		}
		o.capture = dcfguard.NewObsCaptureSink()
		o.explainJSON = f.explainJSON
	}
	cfg := &dcfguard.ObsConfig{Categories: cats}
	if f.metrics != "" || f.debugAddr != "" {
		o.registry = dcfguard.NewObsRegistry()
		cfg.Registry = o.registry
	}
	if f.traceOut != "" {
		o.jsonl, o.jsonlPath = dcfguard.NewObsJSONL(f.traceOut), f.traceOut
		cfg.Sinks = append(cfg.Sinks, o.jsonl)
	}
	if f.diagCSV != "" {
		o.diag, o.diagPath = dcfguard.NewObsDiagnosisCSV(f.diagCSV), f.diagCSV
		cfg.Sinks = append(cfg.Sinks, o.diag)
	}
	if o.capture != nil {
		cfg.Sinks = append(cfg.Sinks, o.capture)
	}
	if cfg.Registry != nil || !cfg.Categories.Empty() {
		s.Observe = cfg
	}
	if sweep && (f.progress || f.debugAddr != "") {
		o.progress = &dcfguard.SweepProgress{}
	}

	if f.debugAddr != "" {
		o.debug = dcfguard.NewObsDebugServer()
		o.debug.SetRegistry(o.registry)
		if o.progress != nil {
			p := o.progress
			o.debug.SetProgress(func() any { return p.Snapshot() })
		}
		addr, err := o.debug.Start(f.debugAddr)
		if err != nil {
			return nil, fmt.Errorf("-debug-addr: %w", err)
		}
		fmt.Fprintf(os.Stderr, "debug endpoint listening on http://%s/debug/\n", addr)
	}
	if o.registry == nil && o.jsonl == nil && o.diag == nil && o.debug == nil && o.progress == nil && o.capture == nil && s.Observe == nil {
		return nil, nil
	}
	return o, nil
}

// sweepProgress returns the live counter block for SweepOptions (nil when
// neither -progress nor -debug-addr asked for one).
func (o *obsRun) sweepProgress() *dcfguard.SweepProgress {
	if o == nil {
		return nil
	}
	return o.progress
}

// startTicker launches the -progress stderr reporter and returns its stop
// function. The ETA is linear extrapolation over cells finished this
// invocation — wall clock lives here in the CLI, never in the sim.
func (o *obsRun) startTicker(start time.Time) (stop func()) {
	if o == nil || !o.showTicker || o.progress == nil {
		return func() {}
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		const interval = 2 * time.Second
		tick := time.NewTicker(interval) //detlint:allow wallclock -- live progress display refresh, host-side
		defer tick.Stop()
		var lastEvents int64
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				snap := o.progress.Snapshot()
				line := fmt.Sprintf("progress: %d/%d cells", snap.Done, snap.Total)
				if snap.Failed > 0 {
					line += fmt.Sprintf(", %d failed", snap.Failed)
				}
				if snap.Resumed > 0 {
					line += fmt.Sprintf(", %d resumed", snap.Resumed)
				}
				if snap.Retried > 0 {
					line += fmt.Sprintf(", %d retries", snap.Retried)
				}
				// Instantaneous kernel throughput: events fired since the
				// previous tick, over the tick interval.
				if delta := snap.Events - lastEvents; delta > 0 {
					line += fmt.Sprintf(", %.2gM ev/s", float64(delta)/interval.Seconds()/1e6)
				}
				lastEvents = snap.Events
				// ETA excludes journal-resumed cells from the rate (they
				// cost no compute); the arithmetic lives on SweepSnapshot
				// so the serve daemon's job status agrees with this line.
				if eta := snap.ETA(time.Since(start)); eta > 0 { //detlint:allow wallclock -- wall-clock ETA for the human watching the sweep
					line += fmt.Sprintf(", ETA %v", eta.Round(time.Second))
				}
				fmt.Fprintln(os.Stderr, line)
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

// finish shuts the debug endpoint down, renders the -explain report,
// flushes the file sinks (atomic writes) and snapshots the metrics
// registry. It runs even after a failed run so partial diagnostics
// survive. The debug server closes FIRST: Close drains in-flight
// handlers, so no request can race the sinks and registry going away
// below it.
func (o *obsRun) finish() error {
	if o == nil {
		return nil
	}
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if o.debug != nil {
		keep(o.debug.Close())
	}
	if o.capture != nil {
		keep(o.renderExplanations())
	}
	if o.jsonl != nil {
		keep(o.jsonl.Close())
		if first == nil {
			fmt.Printf("wrote %s (%d events)\n", o.jsonlPath, o.jsonl.Len())
		}
	}
	if o.diag != nil {
		keep(o.diag.Close())
		if first == nil {
			fmt.Printf("wrote %s (%d diagnosis rows)\n", o.diagPath, o.diag.Len())
		}
	}
	if o.metricsPath != "" && o.registry != nil {
		data, err := json.MarshalIndent(o.registry, "", "  ")
		if err == nil {
			err = atomicio.WriteFile(o.metricsPath, append(data, '\n'), 0o644)
		}
		keep(err)
		if err == nil {
			fmt.Printf("wrote %s\n", o.metricsPath)
		}
	}
	return first
}

// renderExplanations walks the run's trace capture and prints the
// evidence chain behind every diagnosis decision about the -explain
// target, optionally writing the machine-readable JSONL alongside.
func (o *obsRun) renderExplanations() error {
	exps := dcfguard.ObsExplain(o.capture.Records(), o.explainNode)
	if len(exps) == 0 {
		if o.explainNode == dcfguard.ObsNoNode {
			fmt.Println("explain: no diagnosis decisions recorded")
		} else {
			fmt.Printf("explain: no diagnosis decisions recorded about sender %d\n", o.explainNode)
		}
	}
	for i, e := range exps {
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(e.Text())
	}
	if o.explainJSON != "" {
		var b strings.Builder
		for _, e := range exps {
			b.WriteString(e.JSONL())
		}
		if err := atomicio.WriteFile(o.explainJSON, []byte(b.String()), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d decisions)\n", o.explainJSON, len(exps))
	}
	return nil
}
