// Command macsim runs a single simulation scenario and prints its
// metrics: the interactive entry point for exploring the protocol.
//
// Examples:
//
//	macsim -protocol correct -pm 80
//	macsim -protocol 802.11 -pm 80 -two-flow
//	macsim -random 40 -mis 5 -pm 60 -seeds 5
//	macsim -protocol correct -pm 80 -series
//	macsim -protocol correct -pm 80 -explain 3   # why was sender 3 diagnosed?
//
// Profiling a run (written when the run completes):
//
//	macsim -random 40 -pm 80 -cpuprofile cpu.pprof -memprofile mem.pprof
//	macsim -protocol correct -trace exec.trace
//
// The bench subcommand runs the canonical benchmark suite (the same
// workloads as `go test -bench .`) and records BENCH.json:
//
//	macsim bench                  # full suite, testing.Benchmark timing
//	macsim bench -quick           # one iteration per target (CI gate)
//	macsim bench -filter 'Run.*'  # kernel-throughput targets only
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"sort"
	"strings"
	"time"

	"dcfguard"
	"dcfguard/internal/atomicio"
	"dcfguard/internal/sim"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "bench" {
		if err := runBench(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "macsim bench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "macsim:", err)
		os.Exit(1)
	}
}

// startProfiling arms the requested profilers and returns a stop
// function that flushes them. Empty paths disable the corresponding
// profiler.
func startProfiling(cpuPath, memPath, tracePath string) (stop func() error, err error) {
	var stops []func() error
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		stops = append(stops, func() error {
			pprof.StopCPUProfile()
			return f.Close()
		})
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return nil, err
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			return nil, err
		}
		stops = append(stops, func() error {
			trace.Stop()
			return f.Close()
		})
	}
	if memPath != "" {
		stops = append(stops, func() error {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // materialise the final live heap
			return pprof.WriteHeapProfile(f)
		})
	}
	return func() error {
		var first error
		for _, s := range stops {
			if err := s(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}, nil
}

func run() error {
	var (
		protocol = flag.String("protocol", "correct", "MAC protocol: 802.11 or correct")
		pm       = flag.Int("pm", 0, "percentage of misbehavior (0-100)")
		strategy = flag.String("strategy", "partial", "misbehavior strategy: partial, quarter, nodouble, liar")
		senders  = flag.Int("senders", 8, "number of senders in the star topology")
		twoFlow  = flag.Bool("two-flow", false, "enable the TWO-FLOW interferer flows")
		misNode  = flag.Int("mis-node", 3, "misbehaving sender id in the star (0 disables)")
		random   = flag.Int("random", 0, "use a random topology with this many nodes instead of the star")
		mis      = flag.Int("mis", 5, "number of misbehaving nodes in the random topology")
		duration = flag.Duration("duration", 50*time.Second, "simulated duration")
		seed     = flag.Uint64("seed", 1, "run seed (single run)")
		seeds    = flag.Int("seeds", 0, "run this many seeds (1..n) and aggregate instead of one run")
		series   = flag.Bool("series", false, "print the per-second diagnosis series")
		perNode  = flag.Bool("per-node", false, "print per-sender throughputs")
		traceN   = flag.Int("timeline", 0, "print the first N frame transmissions as a timeline")
		pcapPath = flag.String("pcap", "", "write the traced frames to this pcap file (requires -timeline)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file at exit")
		execTr   = flag.String("trace", "", "write a Go execution trace to this file")
		csvPath  = flag.String("csv", "", "with -seeds: write raw per-run metrics to this CSV file")
		channel  = flag.String("channel", "v2", "channel model: v2 (counter RNG + spatial index, default), v1 (paper-exact sequential stream), or v3 (v2 + propagation delay; required for -shards)")
		shards   = flag.Int("shards", 1, "partition the nodes onto this many parallel schedulers (requires -channel v3; 1 = serial)")
		scaled   = flag.Bool("scaled", false, "with -random: scale the arena with node count (constant density) instead of the fixed Figure-9 area")
		queue    = flag.String("queue", "", "scheduler queue: calendar (default) or heap")
		fer      = flag.Float64("fer", 0, "i.i.d. frame-error rate in [0,1) injected after collision resolution")
		burst    = flag.String("burst", "", "Gilbert burst losses 'fer,r': mean FER and Bad→Good recovery prob (replaces -fer)")
		churn    = flag.String("churn", "", "receiver churn 'mean[,down]': mean up-time and downtime durations, e.g. 5s,200ms")
		seedTO   = flag.Duration("seedtimeout", 0, "wall-time budget per seed; a hung run is cancelled and reported (0 disables)")
		journal  = flag.String("journal", "", "with -seeds: checkpoint finished (scenario, seed) cells in this directory and resume from it")
		basic    = flag.Bool("basic", false, "basic access: no RTS/CTS handshake")
		adaptive = flag.Bool("adaptive", false, "adaptive THRESH selection (CORRECT only)")
		block    = flag.Bool("block", false, "refuse service to diagnosed senders (CORRECT only)")
		submit   = flag.String("submit", "", "submit this run to a dcfserved daemon at this base URL instead of running locally")
		jobName  = flag.String("job", "", "with -submit: job name (default derived from topology and -pm)")
		tenant   = flag.String("tenant", "", "with -submit: tenant bucket for the daemon's fair scheduler")
		follow   = flag.Bool("follow", false, "with -submit: stream the job's progress live over SSE instead of polling status")
	)
	obsF := registerObsFlags()
	flag.Parse()

	if *submit != "" {
		return runSubmit(submitArgs{
			url: *submit, job: *jobName, tenant: *tenant,
			protocol: *protocol, strategy: *strategy, channel: *channel,
			pm: *pm, senders: *senders, misNode: *misNode, twoFlow: *twoFlow,
			random: *random, mis: *mis, scaled: *scaled,
			duration: *duration, seed: *seed, seeds: *seeds, shards: *shards,
			fer: *fer, burst: *burst, churn: *churn,
			basic: *basic, adaptive: *adaptive, block: *block,
			csvPath: *csvPath, follow: *follow,
		})
	}
	if *follow {
		return fmt.Errorf("-follow requires -submit")
	}

	s := dcfguard.DefaultScenario()
	s.Duration = dcfguard.Time(*duration)
	s.PM = *pm

	switch *protocol {
	case "802.11", "80211":
		s.Protocol = dcfguard.Protocol80211
	case "correct", "CORRECT":
		s.Protocol = dcfguard.ProtocolCorrect
	default:
		return fmt.Errorf("unknown protocol %q", *protocol)
	}
	switch *strategy {
	case "partial":
		s.Strategy = dcfguard.StrategyPartial
	case "quarter":
		s.Strategy = dcfguard.StrategyQuarterWindow
	case "nodouble":
		s.Strategy = dcfguard.StrategyNoDoubling
	case "liar":
		s.Strategy = dcfguard.StrategyAttemptLiar
	default:
		return fmt.Errorf("unknown strategy %q", *strategy)
	}
	switch *channel {
	case "v1":
		s.Channel = dcfguard.ChannelV1
	case "v2":
		s.Channel = dcfguard.ChannelV2
	case "v3":
		s.Channel = dcfguard.ChannelV3
	default:
		return fmt.Errorf("unknown channel model %q (want v1, v2, or v3)", *channel)
	}
	if *shards > 1 && s.Channel != dcfguard.ChannelV3 {
		return fmt.Errorf("-shards %d requires -channel v3 (the only model with the propagation delay sharding needs)", *shards)
	}
	s.Shards = *shards
	if *queue != "" {
		k, err := sim.ParseQueueKind(*queue)
		if err != nil {
			return err
		}
		sim.SetDefaultQueue(k)
	}
	if *random > 0 {
		if *scaled {
			s.Topo = dcfguard.ScaledRandomTopo(*random, *mis)
		} else {
			s.Topo = dcfguard.RandomTopo(*random, *mis)
		}
		s.Name = fmt.Sprintf("random-%d", *random)
	} else if *misNode > 0 {
		s.Topo = dcfguard.StarTopo(*senders, *twoFlow, *misNode)
	} else {
		s.Topo = dcfguard.StarTopo(*senders, *twoFlow)
	}
	if *series {
		s.BinSize = dcfguard.Second
	}
	s.MAC.BasicAccess = *basic
	s.Core.AdaptiveThresh = *adaptive
	s.Core.BlockDiagnosed = *block
	if *pcapPath != "" && *traceN == 0 {
		return fmt.Errorf("-pcap requires -timeline N")
	}
	s.TraceEvents = *traceN
	if err := parseFaults(&s, *fer, *burst, *churn); err != nil {
		return err
	}
	if *journal != "" && *seeds == 0 {
		return fmt.Errorf("-journal requires -seeds")
	}
	o, err := setupObs(&s, obsF, *seeds > 0)
	if err != nil {
		return err
	}

	stopProf, err := startProfiling(*cpuProf, *memProf, *execTr)
	if err != nil {
		return err
	}
	if *seeds > 0 {
		err = runAggregate(s, *seeds, *series, *csvPath, *journal, *seedTO, o)
	} else {
		err = runSingle(s, *seed, *series, *perNode, *pcapPath, *seedTO)
	}
	// The obs sinks flush even after a failed run: the trace tail and
	// partial metrics are exactly what a failure investigation needs.
	if oerr := o.finish(); oerr != nil && err == nil {
		err = oerr
	}
	if perr := stopProf(); perr != nil && err == nil {
		err = perr
	}
	return err
}

// parseFaults fills s.Faults from the -fer/-burst/-churn flag values.
func parseFaults(s *dcfguard.Scenario, fer float64, burst, churn string) error {
	s.Faults.FER = fer
	if burst != "" {
		var meanFER, r float64
		if _, err := fmt.Sscanf(burst, "%g,%g", &meanFER, &r); err != nil {
			return fmt.Errorf("-burst %q: want 'fer,r' (e.g. 0.1,0.25): %v", burst, err)
		}
		if !(meanFER >= 0 && meanFER < 1) || !(r > 0 && r <= 1) {
			return fmt.Errorf("-burst %q: need fer in [0,1) and r in (0,1]", burst)
		}
		ge := dcfguard.GEForMeanFER(meanFER, r)
		s.Faults.Burst = &ge
		s.Faults.FER = 0
	}
	if churn != "" {
		spec := strings.SplitN(churn, ",", 2)
		mean, err := time.ParseDuration(spec[0])
		if err != nil {
			return fmt.Errorf("-churn %q: %v", churn, err)
		}
		s.Faults.ChurnInterval = dcfguard.Time(mean)
		if len(spec) == 2 {
			down, err := time.ParseDuration(spec[1])
			if err != nil {
				return fmt.Errorf("-churn %q: %v", churn, err)
			}
			s.Faults.ChurnDowntime = dcfguard.Time(down)
		}
	}
	return nil
}

// reportFailure prints one seed's diagnostic dump to stderr.
func reportFailure(f *dcfguard.SeedFailure) {
	fmt.Fprint(os.Stderr, f.Dump())
}

func runSingle(s dcfguard.Scenario, seed uint64, series, perNode bool, pcapPath string, seedTO time.Duration) error {
	start := time.Now() //detlint:allow wallclock -- host-side CLI timing, outside the simulation
	r, err := dcfguard.RunGuarded(s, seed, seedTO)
	if err != nil {
		var f *dcfguard.SeedFailure
		if errors.As(err, &f) {
			reportFailure(f)
		}
		return err
	}
	fmt.Printf("scenario          %s (seed %d, %v simulated, %v wall)\n",
		r.Scenario, r.Seed, r.Duration, time.Since(start).Round(time.Millisecond)) //detlint:allow wallclock -- host-side CLI timing, outside the simulation
	fmt.Printf("protocol          %s, strategy %s, PM %d%%\n", s.Protocol, s.Strategy, s.PM)
	fmt.Printf("total goodput     %.1f Kbps\n", r.TotalKbps)
	fmt.Printf("AVG (honest)      %.1f Kbps/node\n", r.AvgHonestKbps)
	fmt.Printf("MSB (misbehaving) %.1f Kbps/node\n", r.AvgMisbehaverKbps)
	fmt.Printf("delay AVG / MSB   %.1f / %.1f ms\n", r.AvgHonestDelayMs, r.AvgMisbehaverDelayMs)
	fmt.Printf("fairness (Jain)   %.3f\n", r.Fairness)
	fmt.Printf("correct diagnosis %.1f%%\n", r.CorrectDiagnosisPct)
	fmt.Printf("misdiagnosis      %.1f%%\n", r.MisdiagnosisPct)
	if r.ProvenMisbehaviors > 0 {
		fmt.Printf("proven misbehaviors %d\n", r.ProvenMisbehaviors)
	}
	if r.GreedyDetections > 0 {
		fmt.Printf("greedy detections %d\n", r.GreedyDetections)
	}
	fmt.Printf("kernel events     %d\n", r.EventsFired)
	if s.Faults.Enabled() {
		fmt.Printf("fault injection   %d frames dropped, %d receiver restarts\n",
			r.FaultDrops, r.Restarts)
	}
	if perNode {
		ids := make([]dcfguard.NodeID, 0, len(r.ThroughputBySender))
		for id := range r.ThroughputBySender {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			fmt.Printf("  sender %-3d %.1f Kbps\n", id, r.ThroughputBySender[id])
		}
	}
	if series {
		fmt.Println("diagnosis series (1 s bins):")
		for _, p := range r.Series {
			fmt.Printf("  t=%-4.0fs correct=%5.1f%% (%d packets)\n",
				p.Start.Seconds(), p.CorrectPct, p.Packets)
		}
	}
	if r.Trace != nil {
		fmt.Printf("frame timeline (first %d transmissions):\n", r.Trace.Len())
		fmt.Print(r.Trace.Text())
		if pcapPath != "" {
			f, err := os.Create(pcapPath)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := r.Trace.WritePcap(f); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", pcapPath)
		}
	}
	return nil
}

func runAggregate(s dcfguard.Scenario, n int, series bool, csvPath, journal string, seedTO time.Duration, o *obsRun) error {
	start := time.Now() //detlint:allow wallclock -- host-side CLI timing, outside the simulation
	cells := make([]dcfguard.SweepCell, n)
	for i, seed := range dcfguard.Seeds(n) {
		cells[i] = dcfguard.SweepCell{Scenario: s, Seed: seed}
	}
	stopTicker := o.startTicker(start)
	report, err := dcfguard.RunSweep(cells, dcfguard.SweepOptions{
		JournalDir:  journal,
		SeedTimeout: seedTO,
		Progress:    o.sweepProgress(),
	})
	stopTicker()
	if err != nil {
		return err
	}
	if report.Resumed > 0 {
		fmt.Printf("resumed %d of %d cells from %s (%d run now)\n",
			report.Resumed, len(cells), journal, report.Ran)
	}
	// A failed seed must not cost the finished ones: summarise the
	// partial results, dump the diagnostics, exit non-zero.
	ok := make([]dcfguard.Result, 0, len(report.Results))
	for _, r := range report.Results {
		if r.Scenario != "" {
			ok = append(ok, r)
		}
	}
	if csvPath != "" && len(ok) > 0 {
		if err := atomicio.WriteFile(csvPath, []byte(dcfguard.ResultsCSV(ok)), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", csvPath)
	}
	if !report.OK() {
		for _, f := range report.Failures {
			reportFailure(f)
		}
		if len(ok) > 0 {
			fmt.Printf("partial results: %d of %d seeds completed\n", len(ok), len(cells))
			printAggregate(dcfguard.AggregateResults(s.Name, ok), series, start)
		}
		return fmt.Errorf("%d of %d seeds failed", len(report.Failures), len(cells))
	}
	printAggregate(dcfguard.AggregateResults(s.Name, report.Results), series, start)
	return nil
}

func printAggregate(agg dcfguard.Aggregate, series bool, start time.Time) {
	fmt.Printf("scenario          %s (%d seeds, %v wall)\n",
		agg.Scenario, agg.Runs, time.Since(start).Round(time.Millisecond)) //detlint:allow wallclock -- host-side CLI timing, outside the simulation
	fmt.Printf("total goodput     %.1f ± %.1f Kbps\n", agg.TotalKbps.Mean, agg.TotalKbps.CI95)
	fmt.Printf("AVG (honest)      %.1f ± %.1f Kbps/node\n", agg.AvgHonestKbps.Mean, agg.AvgHonestKbps.CI95)
	fmt.Printf("MSB (misbehaving) %.1f ± %.1f Kbps/node\n", agg.AvgMisbehaverKbps.Mean, agg.AvgMisbehaverKbps.CI95)
	fmt.Printf("fairness (Jain)   %.3f\n", agg.Fairness.Mean)
	fmt.Printf("correct diagnosis %.1f ± %.1f %%\n", agg.CorrectDiagnosisPct.Mean, agg.CorrectDiagnosisPct.CI95)
	fmt.Printf("misdiagnosis      %.1f ± %.1f %%\n", agg.MisdiagnosisPct.Mean, agg.MisdiagnosisPct.CI95)
	if series {
		fmt.Println("diagnosis series (1 s bins, pooled):")
		for _, p := range agg.Series {
			fmt.Printf("  t=%-4.0fs correct=%5.1f%% (%d packets)\n",
				p.Start.Seconds(), p.CorrectPct, p.Packets)
		}
	}
}
