package main

// macsim -submit: the CLI as a thin client of dcfserved. The same
// topology/misbehavior flags that drive a local run are serialized
// into a job spec and shipped to the daemon; the client then polls
// status (honoring 429 Retry-After on the way in), streams progress,
// and optionally downloads results.csv — so a daemon-submitted sweep
// is interchangeable with `macsim -seeds`, down to the CSV bytes.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"dcfguard"
	"dcfguard/internal/experiment"
	"dcfguard/internal/serve"
)

// submitArgs carries the raw flag values into client mode.
type submitArgs struct {
	url, job, tenant            string
	protocol, strategy, channel string
	pm, senders, misNode        int
	twoFlow                     bool
	random, mis                 int
	scaled                      bool
	duration                    time.Duration
	seed                        uint64
	seeds, shards               int
	fer                         float64
	burst, churn                string
	basic, adaptive, block      bool
	csvPath                     string
	follow                      bool
}

// wireStrategy maps macsim's short strategy flags onto the spec's wire
// names; wire names themselves pass through untouched.
func wireStrategy(s string) string {
	switch s {
	case "quarter":
		return "quarter-window"
	case "nodouble":
		return "no-doubling"
	case "liar":
		return "attempt-liar"
	}
	return s
}

// jobSpec renders the flag values as the daemon's wire format. The
// daemon re-validates everything; this is a best-effort translation,
// not a second validator.
func (a submitArgs) jobSpec() (serve.JobSpec, error) {
	sp := experiment.ScenarioSpec{
		Protocol: a.protocol,
		Strategy: wireStrategy(a.strategy),
		Channel:  a.channel,
		PM:       a.pm,
		Duration: a.duration.String(),
	}
	if a.shards > 1 {
		sp.Shards = a.shards
	}
	if a.random > 0 {
		kind := "random"
		if a.scaled {
			kind = "scaled-random"
		}
		sp.Topo = experiment.TopoSpec{Kind: kind, Nodes: a.random, Mis: a.mis}
		sp.Name = fmt.Sprintf("random-%d", a.random)
	} else {
		sp.Topo = experiment.TopoSpec{Kind: "star", Senders: a.senders, TwoFlow: a.twoFlow}
		if a.misNode > 0 {
			sp.Topo.Misbehaving = []int{a.misNode}
		}
		sp.Name = fmt.Sprintf("star-%d", a.senders)
	}
	if a.basic {
		m := experiment.DefaultScenario().MAC
		m.BasicAccess = true
		sp.MAC = &m
	}
	if a.adaptive || a.block {
		c := experiment.DefaultScenario().Core
		c.AdaptiveThresh = a.adaptive
		c.BlockDiagnosed = a.block
		sp.Core = &c
	}
	if a.fer > 0 || a.burst != "" || a.churn != "" {
		f := &experiment.FaultsSpec{FER: a.fer}
		if a.burst != "" {
			var meanFER, r float64
			if _, err := fmt.Sscanf(a.burst, "%g,%g", &meanFER, &r); err != nil {
				return serve.JobSpec{}, fmt.Errorf("-burst %q: want 'fer,r': %v", a.burst, err)
			}
			if !(meanFER >= 0 && meanFER < 1) || !(r > 0 && r <= 1) {
				return serve.JobSpec{}, fmt.Errorf("-burst %q: need fer in [0,1) and r in (0,1]", a.burst)
			}
			ge := dcfguard.GEForMeanFER(meanFER, r)
			f.Burst = &experiment.GESpec{
				PGoodBad: ge.PGoodBad, PBadGood: ge.PBadGood,
				GoodFER: ge.GoodFER, BadFER: ge.BadFER,
			}
			f.FER = 0
		}
		if a.churn != "" {
			parts := strings.SplitN(a.churn, ",", 2)
			f.ChurnInterval = parts[0]
			if len(parts) == 2 {
				f.ChurnDowntime = parts[1]
			}
		}
		sp.Faults = f
	}

	name := a.job
	if name == "" {
		name = fmt.Sprintf("macsim-%s-pm%d", sp.Name, a.pm)
	}
	js := serve.JobSpec{Name: name, Tenant: a.tenant, Scenario: sp}
	if a.seeds > 0 {
		js.Seeds = a.seeds
	} else {
		js.SeedList = []uint64{a.seed}
	}
	return js, nil
}

// retryAfterHint reads a 429's Retry-After header (seconds), falling
// back when absent or unparsable.
func retryAfterHint(resp *http.Response, fallback time.Duration) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return time.Duration(n) * time.Second
		}
	}
	return fallback
}

func terminalState(state string) bool {
	switch state {
	case serve.StateDone, serve.StateFailed, serve.StateDegraded:
		return true
	}
	return false
}

// followCell mirrors the daemon's "cell" SSE payload.
type followCell struct {
	Scenario string `json:"scenario"`
	Seed     uint64 `json:"seed"`
	OK       bool   `json:"ok"`
	Resumed  bool   `json:"resumed"`
	Done     int    `json:"done"`
	Total    int    `json:"total"`
	Failed   int    `json:"failed"`
	ETA      string `json:"eta"`
}

// followJob consumes GET /jobs/{name}/events as Server-Sent Events,
// printing each cell settlement, retry and breaker trip as it happens. A
// dropped connection reconnects with Last-Event-ID, so every cell event
// is observed exactly once; the function returns when the daemon ends
// the stream with the job's terminal state event.
func followJob(base, name string) error {
	var lastID string
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequest(http.MethodGet, base+"/jobs/"+name+"/events", nil)
		if err != nil {
			return err
		}
		if lastID != "" {
			req.Header.Set("Last-Event-ID", lastID)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			if attempt >= 10 {
				return fmt.Errorf("follow: %v (giving up after %d attempts)", err, attempt+1)
			}
			fmt.Fprintf(os.Stderr, "follow: %v: reconnecting\n", err)
			time.Sleep(time.Second) //detlint:allow wallclock -- client-side reconnect pacing; no simulation state involved
			continue
		}
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			return fmt.Errorf("follow: %s: %s", resp.Status, strings.TrimSpace(string(body)))
		}
		terminal := consumeEvents(resp.Body, &lastID)
		resp.Body.Close()
		if terminal {
			return nil
		}
		if attempt >= 10 {
			return fmt.Errorf("follow: stream kept dropping (giving up after %d attempts)", attempt+1)
		}
		fmt.Fprintln(os.Stderr, "follow: stream dropped, resuming")
		time.Sleep(time.Second) //detlint:allow wallclock -- client-side reconnect pacing; no simulation state involved
	}
}

// consumeEvents reads SSE frames off one connection, rendering each as a
// progress line and advancing the resume cursor. It reports whether the
// stream reached the job's terminal state (its normal end); false means
// the connection dropped and the caller should resume.
func consumeEvents(body io.Reader, lastID *string) (terminal bool) {
	br := bufio.NewReader(body)
	var id, kind, data string
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return false
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "id: "):
			id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			kind = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if kind == "" && data == "" {
				continue
			}
			if id != "" {
				*lastID = id
			}
			if printFollowEvent(kind, data) {
				return true
			}
			id, kind, data = "", "", ""
		}
	}
}

// printFollowEvent renders one event to stderr; it reports true on a
// terminal state event.
func printFollowEvent(kind, data string) bool {
	switch kind {
	case "cell":
		var c followCell
		if json.Unmarshal([]byte(data), &c) != nil {
			return false
		}
		verdict := "ok"
		switch {
		case !c.OK:
			verdict = "FAILED"
		case c.Resumed:
			verdict = "resumed"
		}
		line := fmt.Sprintf("cell %s seed %d %s: %d/%d done", c.Scenario, c.Seed, verdict, c.Done, c.Total)
		if c.Failed > 0 {
			line += fmt.Sprintf(", %d failed", c.Failed)
		}
		if c.ETA != "" {
			line += ", eta " + c.ETA
		}
		fmt.Fprintln(os.Stderr, line)
	case "retry":
		var r struct {
			Scenario string `json:"scenario"`
			Seed     uint64 `json:"seed"`
			Attempt  int    `json:"attempt"`
			Delay    string `json:"delay"`
		}
		if json.Unmarshal([]byte(data), &r) == nil {
			fmt.Fprintf(os.Stderr, "cell %s seed %d: retry (attempt %d) in %s\n", r.Scenario, r.Seed, r.Attempt, r.Delay)
		}
	case "breaker":
		var b struct {
			Reason string `json:"reason"`
		}
		if json.Unmarshal([]byte(data), &b) == nil {
			fmt.Fprintf(os.Stderr, "breaker tripped: %s\n", b.Reason)
		}
	case "state":
		var s struct {
			State string `json:"state"`
		}
		if json.Unmarshal([]byte(data), &s) == nil {
			fmt.Fprintf(os.Stderr, "state: %s\n", s.State)
			return terminalState(s.State)
		}
	}
	return false
}

// getStatus fetches one job's status.
func getStatus(base, name string) (serve.JobStatus, error) {
	var st serve.JobStatus
	resp, err := http.Get(base + "/jobs/" + name)
	if err != nil {
		return st, err
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("status %s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	err = json.Unmarshal(data, &st)
	return st, err
}

// runSubmit is the client-mode main loop: submit (with 429 backoff),
// poll to terminal, download, and translate the final state into the
// process exit code.
func runSubmit(a submitArgs) error {
	js, err := a.jobSpec()
	if err != nil {
		return err
	}
	body, err := json.Marshal(js)
	if err != nil {
		return err
	}

	base := strings.TrimSuffix(a.url, "/")
	var status serve.JobStatus
	for attempt := 1; ; attempt++ {
		resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			if attempt >= 10 {
				return fmt.Errorf("daemon still overloaded after %d attempts", attempt)
			}
			wait := retryAfterHint(resp, 2*time.Second)
			fmt.Fprintf(os.Stderr, "daemon busy (429): retrying in %s\n", wait)
			time.Sleep(wait) //detlint:allow wallclock -- client-side backoff obeying the daemon's Retry-After; no simulation state involved
			continue
		}
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			return fmt.Errorf("submit: %s: %s", resp.Status, strings.TrimSpace(string(data)))
		}
		if err := json.Unmarshal(data, &status); err != nil {
			return fmt.Errorf("submit: decoding response: %v", err)
		}
		break
	}
	fmt.Printf("submitted %q (%d cells) to %s\n", status.Name, status.Cells.Total, base)

	if a.follow {
		// Event-driven: stream /jobs/{name}/events instead of polling.
		// The stream ends at the job's terminal state; fetch the final
		// status once for the artifact list and failure summary.
		if err := followJob(base, status.Name); err != nil {
			return err
		}
		if status, err = getStatus(base, status.Name); err != nil {
			return err
		}
	} else {
		lastDone := -1
		for !terminalState(status.State) {
			time.Sleep(time.Second) //detlint:allow wallclock -- status polling cadence for the human watching the job
			if status, err = getStatus(base, status.Name); err != nil {
				return err
			}
			if status.Cells.Done != lastDone {
				lastDone = status.Cells.Done
				line := fmt.Sprintf("%s: %d/%d cells", status.State, status.Cells.Done, status.Cells.Total)
				if status.Cells.Resumed > 0 {
					line += fmt.Sprintf(" (%d resumed)", status.Cells.Resumed)
				}
				if status.ETA != "" {
					line += ", eta " + status.ETA
				}
				fmt.Fprintln(os.Stderr, line)
			}
		}
	}

	if a.csvPath != "" && status.State != serve.StateDegraded {
		resp, err := http.Get(base + "/jobs/" + status.Name + "/artifacts/results.csv")
		if err != nil {
			return err
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("downloading results.csv: %s", resp.Status)
		}
		if err := os.WriteFile(a.csvPath, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d bytes)\n", a.csvPath, len(data))
	}

	switch status.State {
	case serve.StateDone:
		fmt.Printf("%s: done (%d cells, %d retries)\n", status.Name, status.Cells.Done, status.Retries)
		return nil
	default:
		for _, f := range status.Failures {
			fmt.Fprintln(os.Stderr, "  "+f)
		}
		return fmt.Errorf("job %s: %s", status.Name, status.State)
	}
}
