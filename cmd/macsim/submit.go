package main

// macsim -submit: the CLI as a thin client of dcfserved. The same
// topology/misbehavior flags that drive a local run are serialized
// into a job spec and shipped to the daemon; the client then polls
// status (honoring 429 Retry-After on the way in), streams progress,
// and optionally downloads results.csv — so a daemon-submitted sweep
// is interchangeable with `macsim -seeds`, down to the CSV bytes.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"dcfguard"
	"dcfguard/internal/experiment"
	"dcfguard/internal/serve"
)

// submitArgs carries the raw flag values into client mode.
type submitArgs struct {
	url, job, tenant            string
	protocol, strategy, channel string
	pm, senders, misNode        int
	twoFlow                     bool
	random, mis                 int
	scaled                      bool
	duration                    time.Duration
	seed                        uint64
	seeds, shards               int
	fer                         float64
	burst, churn                string
	basic, adaptive, block      bool
	csvPath                     string
}

// wireStrategy maps macsim's short strategy flags onto the spec's wire
// names; wire names themselves pass through untouched.
func wireStrategy(s string) string {
	switch s {
	case "quarter":
		return "quarter-window"
	case "nodouble":
		return "no-doubling"
	case "liar":
		return "attempt-liar"
	}
	return s
}

// jobSpec renders the flag values as the daemon's wire format. The
// daemon re-validates everything; this is a best-effort translation,
// not a second validator.
func (a submitArgs) jobSpec() (serve.JobSpec, error) {
	sp := experiment.ScenarioSpec{
		Protocol: a.protocol,
		Strategy: wireStrategy(a.strategy),
		Channel:  a.channel,
		PM:       a.pm,
		Duration: a.duration.String(),
	}
	if a.shards > 1 {
		sp.Shards = a.shards
	}
	if a.random > 0 {
		kind := "random"
		if a.scaled {
			kind = "scaled-random"
		}
		sp.Topo = experiment.TopoSpec{Kind: kind, Nodes: a.random, Mis: a.mis}
		sp.Name = fmt.Sprintf("random-%d", a.random)
	} else {
		sp.Topo = experiment.TopoSpec{Kind: "star", Senders: a.senders, TwoFlow: a.twoFlow}
		if a.misNode > 0 {
			sp.Topo.Misbehaving = []int{a.misNode}
		}
		sp.Name = fmt.Sprintf("star-%d", a.senders)
	}
	if a.basic {
		m := experiment.DefaultScenario().MAC
		m.BasicAccess = true
		sp.MAC = &m
	}
	if a.adaptive || a.block {
		c := experiment.DefaultScenario().Core
		c.AdaptiveThresh = a.adaptive
		c.BlockDiagnosed = a.block
		sp.Core = &c
	}
	if a.fer > 0 || a.burst != "" || a.churn != "" {
		f := &experiment.FaultsSpec{FER: a.fer}
		if a.burst != "" {
			var meanFER, r float64
			if _, err := fmt.Sscanf(a.burst, "%g,%g", &meanFER, &r); err != nil {
				return serve.JobSpec{}, fmt.Errorf("-burst %q: want 'fer,r': %v", a.burst, err)
			}
			if !(meanFER >= 0 && meanFER < 1) || !(r > 0 && r <= 1) {
				return serve.JobSpec{}, fmt.Errorf("-burst %q: need fer in [0,1) and r in (0,1]", a.burst)
			}
			ge := dcfguard.GEForMeanFER(meanFER, r)
			f.Burst = &experiment.GESpec{
				PGoodBad: ge.PGoodBad, PBadGood: ge.PBadGood,
				GoodFER: ge.GoodFER, BadFER: ge.BadFER,
			}
			f.FER = 0
		}
		if a.churn != "" {
			parts := strings.SplitN(a.churn, ",", 2)
			f.ChurnInterval = parts[0]
			if len(parts) == 2 {
				f.ChurnDowntime = parts[1]
			}
		}
		sp.Faults = f
	}

	name := a.job
	if name == "" {
		name = fmt.Sprintf("macsim-%s-pm%d", sp.Name, a.pm)
	}
	js := serve.JobSpec{Name: name, Tenant: a.tenant, Scenario: sp}
	if a.seeds > 0 {
		js.Seeds = a.seeds
	} else {
		js.SeedList = []uint64{a.seed}
	}
	return js, nil
}

// retryAfterHint reads a 429's Retry-After header (seconds), falling
// back when absent or unparsable.
func retryAfterHint(resp *http.Response, fallback time.Duration) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return time.Duration(n) * time.Second
		}
	}
	return fallback
}

func terminalState(state string) bool {
	switch state {
	case serve.StateDone, serve.StateFailed, serve.StateDegraded:
		return true
	}
	return false
}

// getStatus fetches one job's status.
func getStatus(base, name string) (serve.JobStatus, error) {
	var st serve.JobStatus
	resp, err := http.Get(base + "/jobs/" + name)
	if err != nil {
		return st, err
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("status %s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	err = json.Unmarshal(data, &st)
	return st, err
}

// runSubmit is the client-mode main loop: submit (with 429 backoff),
// poll to terminal, download, and translate the final state into the
// process exit code.
func runSubmit(a submitArgs) error {
	js, err := a.jobSpec()
	if err != nil {
		return err
	}
	body, err := json.Marshal(js)
	if err != nil {
		return err
	}

	base := strings.TrimSuffix(a.url, "/")
	var status serve.JobStatus
	for attempt := 1; ; attempt++ {
		resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			if attempt >= 10 {
				return fmt.Errorf("daemon still overloaded after %d attempts", attempt)
			}
			wait := retryAfterHint(resp, 2*time.Second)
			fmt.Fprintf(os.Stderr, "daemon busy (429): retrying in %s\n", wait)
			time.Sleep(wait) //detlint:allow wallclock -- client-side backoff obeying the daemon's Retry-After; no simulation state involved
			continue
		}
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			return fmt.Errorf("submit: %s: %s", resp.Status, strings.TrimSpace(string(data)))
		}
		if err := json.Unmarshal(data, &status); err != nil {
			return fmt.Errorf("submit: decoding response: %v", err)
		}
		break
	}
	fmt.Printf("submitted %q (%d cells) to %s\n", status.Name, status.Cells.Total, base)

	lastDone := -1
	for !terminalState(status.State) {
		time.Sleep(time.Second) //detlint:allow wallclock -- status polling cadence for the human watching the job
		if status, err = getStatus(base, status.Name); err != nil {
			return err
		}
		if status.Cells.Done != lastDone {
			lastDone = status.Cells.Done
			line := fmt.Sprintf("%s: %d/%d cells", status.State, status.Cells.Done, status.Cells.Total)
			if status.Cells.Resumed > 0 {
				line += fmt.Sprintf(" (%d resumed)", status.Cells.Resumed)
			}
			if status.ETA != "" {
				line += ", eta " + status.ETA
			}
			fmt.Fprintln(os.Stderr, line)
		}
	}

	if a.csvPath != "" && status.State != serve.StateDegraded {
		resp, err := http.Get(base + "/jobs/" + status.Name + "/artifacts/results.csv")
		if err != nil {
			return err
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("downloading results.csv: %s", resp.Status)
		}
		if err := os.WriteFile(a.csvPath, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d bytes)\n", a.csvPath, len(data))
	}

	switch status.State {
	case serve.StateDone:
		fmt.Printf("%s: done (%d cells, %d retries)\n", status.Name, status.Cells.Done, status.Retries)
		return nil
	default:
		for _, f := range status.Failures {
			fmt.Fprintln(os.Stderr, "  "+f)
		}
		return fmt.Errorf("job %s: %s", status.Name, status.State)
	}
}
