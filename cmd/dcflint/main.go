// Command dcflint runs the detlint static-analysis suite: the analyzers
// in internal/lint that mechanically enforce the simulator's determinism
// invariants, interprocedurally since v2. See internal/lint and
// DESIGN.md §7 and §12.
//
// Usage:
//
//	dcflint [flags] [package patterns]
//
// With no patterns it analyses ./... . By default every module package
// is checked — simulation internals, cmd/ binaries, and the top-level
// package alike — except the lint tooling itself (it shells out to the
// go command and formats host paths, none of which feeds simulation
// results). -all lifts the scope filter, -analyzers selects a subset of
// checks. Exits non-zero if any diagnostic survives.
//
// v2 surface:
//
//	-format text|json|sarif   output format (sarif uploads to code scanning)
//	-o file                   write the report to file instead of stdout
//	-baseline file            suppress findings recorded in file
//	-write-baseline           rewrite the baseline with current findings
//	-fix                      apply suggested fixes in place
//	-audit-allows             list //detlint:allow sites; fail on missing justifications
//	-cache-dir dir            content-hashed result cache ("" disables)
//
// Analysis is parallel across packages, and per-package results are
// cached under -cache-dir keyed by the SHA-256 of the package's source,
// its transitive in-module dependencies' keys, and its external
// dependencies' export data — so a warm run re-analyzes only what an
// edit could actually have changed.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"

	"dcfguard/internal/lint"
)

var defaultExclude = "internal/lint"

func main() {
	var (
		all           = flag.Bool("all", false, "analyze every matched package, ignoring the scope filter")
		scope         = flag.String("scope", "", "comma-separated import-path fragments a package must contain to be analyzed (empty: all)")
		exclude       = flag.String("exclude", defaultExclude, "comma-separated import-path fragments that exempt a package")
		analyzers     = flag.String("analyzers", "", "comma-separated analyzer names to run (default: all)")
		list          = flag.Bool("list", false, "list analyzers and exit")
		format        = flag.String("format", "text", "output format: text, json, or sarif")
		out           = flag.String("o", "", "write the report to this file instead of stdout")
		baseline      = flag.String("baseline", "", "suppress findings recorded in this baseline file")
		writeBaseline = flag.Bool("write-baseline", false, "rewrite -baseline with the current findings and exit clean")
		applyFix      = flag.Bool("fix", false, "apply suggested fixes to the source in place")
		auditAllows   = flag.Bool("audit-allows", false, "list //detlint:allow directives; exit non-zero if any lacks a -- justification")
		cacheDir      = flag.String("cache-dir", ".dcflint-cache", "directory for the content-hashed result cache (empty disables)")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	run := lint.All()
	if *analyzers != "" {
		run = lint.ByName(strings.Split(*analyzers, ",")...)
		if run == nil {
			fatalf("unknown analyzer in -analyzers=%s", *analyzers)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fatalf("%v", err)
	}

	kept := pkgs
	if !*all {
		kept = nil
		for _, p := range pkgs {
			if *scope != "" && !inScope(p.PkgPath, *scope) {
				continue
			}
			if inScope(p.PkgPath, *exclude) {
				continue
			}
			kept = append(kept, p)
		}
	}

	if *auditAllows {
		os.Exit(runAuditAllows(kept))
	}

	diags := analyze(pkgs, kept, run, *cacheDir)

	if *applyFix {
		diags = applyFixes(pkgs, diags)
	}

	if *baseline != "" {
		if *writeBaseline {
			if err := saveBaseline(*baseline, diags); err != nil {
				fatalf("%v", err)
			}
			fmt.Fprintf(os.Stderr, "dcflint: wrote %d finding(s) to baseline %s\n", len(diags), *baseline)
			return
		}
		diags, err = filterBaseline(*baseline, diags)
		if err != nil {
			fatalf("%v", err)
		}
	}

	report, err := render(*format, diags)
	if err != nil {
		fatalf("%v", err)
	}
	if *out != "" {
		if err := os.WriteFile(*out, report, 0o644); err != nil {
			fatalf("%v", err)
		}
	} else {
		os.Stdout.Write(report)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dcflint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// analyze runs the analyzers over the kept packages — facts are computed
// over every loaded package regardless, so scoped runs still see callees
// outside the scope — consulting the content-hashed cache per package.
func analyze(all, kept []*lint.Package, run []*lint.Analyzer, cacheDir string) []lint.Diagnostic {
	c := openCache(cacheDir, all, run)

	var misses []*lint.Package
	var diags []lint.Diagnostic
	for _, p := range kept {
		if cached, ok := c.load(p); ok {
			diags = append(diags, cached...)
		} else {
			misses = append(misses, p)
		}
	}

	if len(misses) > 0 {
		// Facts are only needed when something actually re-analyzes.
		facts := lint.ComputeFacts(all)
		perPkg := make([][]lint.Diagnostic, len(misses))
		var wg sync.WaitGroup
		sem := make(chan struct{}, runtime.GOMAXPROCS(0))
		for i, p := range misses {
			wg.Add(1)
			go func(i int, p *lint.Package) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				res := lint.AnalyzePackage(p, facts, run)
				lint.SortDiagnostics(res)
				perPkg[i] = res
			}(i, p)
		}
		wg.Wait()
		for i, p := range misses {
			c.store(p, perPkg[i])
			diags = append(diags, perPkg[i]...)
		}
	}

	lint.SortDiagnostics(diags)
	return diags
}

// applyFixes writes every suggested fix to disk and returns the
// diagnostics that had none (still outstanding).
func applyFixes(pkgs []*lint.Package, diags []lint.Diagnostic) []lint.Diagnostic {
	fixed, err := lint.ApplyFixes(pkgs, diags)
	if err != nil {
		fatalf("applying fixes: %v", err)
	}
	for name, content := range fixed {
		if err := os.WriteFile(name, content, 0o644); err != nil {
			fatalf("%v", err)
		}
	}
	applied := 0
	var rest []lint.Diagnostic
	for _, d := range diags {
		if d.Fix != nil {
			applied++
		} else {
			rest = append(rest, d)
		}
	}
	fmt.Fprintf(os.Stderr, "dcflint: applied %d fix(es) to %d file(s)\n", applied, len(fixed))
	return rest
}

// runAuditAllows lists every //detlint:allow site in the scoped
// packages and returns the exit code: non-zero when any directive lacks
// the "-- justification" trailer. An unexplained suppression is a
// landmine for the next reader; the make lint gate enforces the trailer.
func runAuditAllows(pkgs []*lint.Package) int {
	sites := lint.AllowSites(pkgs)
	bare := 0
	for _, s := range sites {
		just := s.Justification
		if just == "" {
			just = "MISSING JUSTIFICATION"
			bare++
		}
		verb := "allow"
		if s.Scope == "package" {
			verb = "allow-package"
		}
		fmt.Printf("%s:%d: %s %s -- %s\n", relpath(s.Pos.Filename), s.Pos.Line, verb, strings.Join(s.Names, " "), just)
	}
	fmt.Fprintf(os.Stderr, "dcflint: %d allow site(s), %d without justification\n", len(sites), bare)
	if bare > 0 {
		return 1
	}
	return 0
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dcflint: "+format+"\n", args...)
	os.Exit(2)
}

// inScope reports whether pkgPath contains any of the comma-separated
// fragments as a path component boundary match.
func inScope(pkgPath, fragments string) bool {
	for _, frag := range strings.Split(fragments, ",") {
		frag = strings.TrimSuffix(strings.TrimSpace(frag), "/")
		if frag == "" {
			continue
		}
		if pkgPath == frag ||
			strings.HasPrefix(pkgPath, frag+"/") ||
			strings.Contains(pkgPath, "/"+frag+"/") ||
			strings.HasSuffix(pkgPath, "/"+frag) {
			return true
		}
	}
	return false
}
