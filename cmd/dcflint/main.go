// Command dcflint runs the detlint static-analysis suite: four
// analyzers (wallclock, maporder, floateq, hotalloc) that mechanically
// enforce the simulator's determinism invariants. See internal/lint and
// DESIGN.md §7.
//
// Usage:
//
//	dcflint [flags] [package patterns]
//
// With no patterns it analyses ./... . By default only the simulation
// packages (internal/..., excluding the lint tooling itself) are
// checked; -all lifts the scope filter, and -analyzers selects a subset
// of checks. Exits non-zero if any diagnostic is reported.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dcfguard/internal/lint"
)

// defaultScope holds the import-path fragments that mark a package as
// simulation code: everything under internal/ participates in producing
// or aggregating deterministic results. The lint tooling itself is
// excluded — it shells out to the go command and formats host paths,
// none of which feeds simulation results.
var defaultScope = "internal/"

var defaultExclude = "internal/lint"

func main() {
	var (
		all       = flag.Bool("all", false, "analyze every matched package, ignoring the scope filter")
		scope     = flag.String("scope", defaultScope, "comma-separated import-path fragments a package must contain to be analyzed")
		exclude   = flag.String("exclude", defaultExclude, "comma-separated import-path fragments that exempt a package")
		analyzers = flag.String("analyzers", "", "comma-separated analyzer names to run (default: all)")
		list      = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	run := lint.All()
	if *analyzers != "" {
		run = lint.ByName(strings.Split(*analyzers, ",")...)
		if run == nil {
			fmt.Fprintf(os.Stderr, "dcflint: unknown analyzer in -analyzers=%s\n", *analyzers)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcflint: %v\n", err)
		os.Exit(2)
	}

	if !*all {
		var kept []*lint.Package
		for _, p := range pkgs {
			if inScope(p.PkgPath, *scope) && !inScope(p.PkgPath, *exclude) {
				kept = append(kept, p)
			}
		}
		pkgs = kept
	}

	diags := lint.Run(pkgs, run)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dcflint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// inScope reports whether pkgPath contains any of the comma-separated
// fragments as a path component boundary match.
func inScope(pkgPath, fragments string) bool {
	for _, frag := range strings.Split(fragments, ",") {
		frag = strings.TrimSuffix(strings.TrimSpace(frag), "/")
		if frag == "" {
			continue
		}
		if pkgPath == frag ||
			strings.HasPrefix(pkgPath, frag+"/") ||
			strings.Contains(pkgPath, "/"+frag+"/") ||
			strings.HasSuffix(pkgPath, "/"+frag) {
			return true
		}
	}
	return false
}
