package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"dcfguard/internal/lint"
)

// render serializes the findings in the requested format. Positions are
// rendered relative to the working directory in every format, so output
// is stable across checkouts.
func render(format string, diags []lint.Diagnostic) ([]byte, error) {
	switch format {
	case "text":
		var b strings.Builder
		for _, d := range diags {
			fmt.Fprintf(&b, "%s:%d:%d: %s: %s\n", relpath(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
		return []byte(b.String()), nil

	case "json":
		out := make([]lint.Diagnostic, 0, len(diags))
		out = append(out, diags...)
		for i := range out {
			out[i].Pos.Filename = relpath(out[i].Pos.Filename)
		}
		b, err := json.MarshalIndent(out, "", "\t")
		if err != nil {
			return nil, err
		}
		return append(b, '\n'), nil

	case "sarif":
		return renderSARIF(diags)
	}
	return nil, fmt.Errorf("unknown -format %q (want text, json, or sarif)", format)
}

// Minimal SARIF 2.1.0 — the subset GitHub code scanning ingests: one
// run, one rule per analyzer, one result per finding.
type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

func renderSARIF(diags []lint.Diagnostic) ([]byte, error) {
	ruleSet := make(map[string]bool)
	var rules []sarifRule
	for _, a := range lint.All() {
		ruleSet[a.Name] = true
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		if !ruleSet[d.Analyzer] {
			// The "detlint" pseudo-analyzer (malformed directives).
			ruleSet[d.Analyzer] = true
			rules = append(rules, sarifRule{ID: d.Analyzer, ShortDescription: sarifMessage{Text: "detlint directive hygiene"}})
		}
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: relpath(d.Pos.Filename)},
				Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
			}}},
		})
	}
	log := sarifLog{
		Version: "2.1.0",
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "dcflint", Rules: rules}}, Results: results}},
	}
	b, err := json.MarshalIndent(log, "", "\t")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// A baselineEntry identifies a tolerated pre-existing finding. Line and
// column are deliberately absent: edits above a finding must not make
// it "new".
type baselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
}

func baselineKey(d lint.Diagnostic) baselineEntry {
	return baselineEntry{Analyzer: d.Analyzer, File: relpath(d.Pos.Filename), Message: d.Message}
}

// saveBaseline records the current findings as tolerated.
func saveBaseline(path string, diags []lint.Diagnostic) error {
	seen := make(map[baselineEntry]bool)
	var entries []baselineEntry
	for _, d := range diags {
		e := baselineKey(d)
		if !seen[e] {
			seen[e] = true
			entries = append(entries, e)
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	b, err := json.MarshalIndent(entries, "", "\t")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// filterBaseline drops findings recorded in the baseline file. Matching
// ignores position within the file, so the baseline survives unrelated
// edits; a message or file change resurfaces the finding.
func filterBaseline(path string, diags []lint.Diagnostic) ([]lint.Diagnostic, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading baseline: %w", err)
	}
	var entries []baselineEntry
	if err := json.Unmarshal(b, &entries); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	tolerated := make(map[baselineEntry]bool, len(entries))
	for _, e := range entries {
		tolerated[e] = true
	}
	var out []lint.Diagnostic
	for _, d := range diags {
		if !tolerated[baselineKey(d)] {
			out = append(out, d)
		}
	}
	return out, nil
}
