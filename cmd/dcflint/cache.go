package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"dcfguard/internal/lint"
)

// The result cache stores one JSON file of diagnostics per analyzed
// package, named by a content hash that captures everything the result
// can depend on:
//
//   - the cache format version and the analyzer set;
//   - the package's own file names and contents;
//   - recursively, the keys of every imported package that was loaded
//     in this run (in-module deps — their sources feed both type
//     checking and the interprocedural facts);
//   - the compiled export data of every other import (stdlib and
//     friends — a toolchain upgrade changes the export files and
//     invalidates everything, which is exactly right).
//
// A hit therefore needs no validation: if the key matches, the stored
// diagnostics are what analysis would produce. Misses re-analyze and
// overwrite. Stored positions are relative to the working directory so
// a cache restored into the same workspace layout (CI) stays correct.
const cacheVersion = "dcflint-cache-v1"

type resultCache struct {
	dir  string
	keys map[string]string // pkgPath -> hex key, memoized
}

// openCache builds the key table for every loaded package. A nil
// receiver (empty dir) disables caching; load always misses and store
// is a no-op.
func openCache(dir string, all []*lint.Package, run []*lint.Analyzer) *resultCache {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "dcflint: cache disabled: %v\n", err)
		return nil
	}
	c := &resultCache{dir: dir, keys: make(map[string]string)}

	var analyzerNames []string
	for _, a := range run {
		analyzerNames = append(analyzerNames, a.Name)
	}
	sort.Strings(analyzerNames)

	targets := make(map[string]*lint.Package, len(all))
	for _, p := range all {
		targets[p.PkgPath] = p
	}
	exportHash := make(map[string]string)

	// hashExport memoizes the content hash of a dependency's compiled
	// export data. Missing export data hashes as a constant: the
	// importer would have failed already if it mattered.
	hashExport := func(pkg *lint.Package, path string) string {
		if h, ok := exportHash[path]; ok {
			return h
		}
		h := "no-export"
		if file, ok := pkg.Exports[path]; ok {
			if b, err := os.ReadFile(file); err == nil {
				sum := sha256.Sum256(b)
				h = hex.EncodeToString(sum[:])
			}
		}
		exportHash[path] = h
		return h
	}

	var keyOf func(p *lint.Package) string
	keyOf = func(p *lint.Package) string {
		if k, ok := c.keys[p.PkgPath]; ok {
			return k
		}
		// Mark in-progress to terminate on (impossible) import cycles.
		c.keys[p.PkgPath] = "cycle"

		h := sha256.New()
		fmt.Fprintln(h, cacheVersion)
		fmt.Fprintln(h, analyzerNames)
		fmt.Fprintln(h, p.PkgPath)
		files := make([]string, 0, len(p.Src))
		for name := range p.Src {
			files = append(files, name)
		}
		sort.Strings(files)
		for _, name := range files {
			fmt.Fprintln(h, filepath.Base(name), len(p.Src[name]))
			h.Write(p.Src[name])
		}
		imports := append([]string(nil), p.Imports...)
		sort.Strings(imports)
		for _, imp := range imports {
			if dep, ok := targets[imp]; ok {
				fmt.Fprintln(h, "dep", imp, keyOf(dep))
			} else {
				fmt.Fprintln(h, "ext", imp, hashExport(p, imp))
			}
		}
		k := hex.EncodeToString(h.Sum(nil))
		c.keys[p.PkgPath] = k
		return k
	}
	for _, p := range all {
		keyOf(p)
	}
	return c
}

// cacheEntry is the on-disk record: the key it was computed under (for
// sanity, the filename already encodes it) and the findings.
type cacheEntry struct {
	Key   string            `json:"key"`
	Pkg   string            `json:"pkg"`
	Diags []lint.Diagnostic `json:"diags"`
}

func (c *resultCache) path(p *lint.Package) (string, bool) {
	if c == nil {
		return "", false
	}
	k, ok := c.keys[p.PkgPath]
	if !ok || k == "cycle" {
		return "", false
	}
	return filepath.Join(c.dir, k+".json"), true
}

func (c *resultCache) load(p *lint.Package) ([]lint.Diagnostic, bool) {
	path, ok := c.path(p)
	if !ok {
		return nil, false
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	var e cacheEntry
	if err := json.Unmarshal(b, &e); err != nil || e.Pkg != p.PkgPath {
		return nil, false
	}
	for i := range e.Diags {
		e.Diags[i].Pos.Filename = abspath(e.Diags[i].Pos.Filename)
	}
	return e.Diags, true
}

func (c *resultCache) store(p *lint.Package, diags []lint.Diagnostic) {
	path, ok := c.path(p)
	if !ok {
		return
	}
	e := cacheEntry{Key: c.keys[p.PkgPath], Pkg: p.PkgPath, Diags: append([]lint.Diagnostic(nil), diags...)}
	for i := range e.Diags {
		e.Diags[i].Pos.Filename = relpath(e.Diags[i].Pos.Filename)
	}
	b, err := json.MarshalIndent(e, "", "\t")
	if err != nil {
		return
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return
	}
	os.Rename(tmp, path)
}

// relpath renders a position filename relative to the working directory
// when possible — for cache portability and stable baseline/SARIF
// output.
func relpath(name string) string {
	wd, err := os.Getwd()
	if err != nil {
		return name
	}
	rel, err := filepath.Rel(wd, name)
	if err != nil || rel == "" || rel[0] == '.' && len(rel) > 1 && rel[1] == '.' {
		return name
	}
	return rel
}

func abspath(name string) string {
	if filepath.IsAbs(name) {
		return name
	}
	abs, err := filepath.Abs(name)
	if err != nil {
		return name
	}
	return abs
}
