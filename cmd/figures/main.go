// Command figures regenerates the paper's evaluation: one table per
// figure (4-9) plus the ablations catalogued in DESIGN.md. Tables print
// to stdout and, with -out, are also written as .txt and .csv files.
//
// Examples:
//
//	figures -fig 4                    # full-scale Figure 4 (slow)
//	figures -fig all -seeds 10 -duration 15s -out results/
//	figures -fig a5 -quick            # smoke-scale ablation A5
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dcfguard"
	"dcfguard/internal/analytic"
	"dcfguard/internal/atomicio"
)

// drawCharts mirrors the -chart flag for emit; combined accumulates the
// -report document.
var (
	drawCharts bool
	combined   *dcfguard.Report
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		fig      = flag.String("fig", "all", "figure to regenerate: 4,5,6,7,8,9,a1..a7,validate or all")
		seeds    = flag.Int("seeds", 0, "override seeds per data point (paper: 30)")
		duration = flag.Duration("duration", 0, "override simulated duration per run (paper: 50s)")
		quick    = flag.Bool("quick", false, "use the reduced smoke configuration")
		outDir   = flag.String("out", "", "also write each table as <dir>/<name>.txt and .csv")
		chart    = flag.Bool("chart", false, "also draw each table as an ASCII chart")
		report   = flag.String("report", "", "also write a combined markdown report to this path")
		journal  = flag.String("journal", "", "journal directory for resumable sweeps (fig faults)")
		seedTO   = flag.Duration("seedtimeout", 0, "wall-time budget per seed in resumable sweeps (0 disables)")
		diagCSV  = flag.String("diag-trail", "", "also export the CORRECT PM-80 diagnosis trail (per-window monitor decisions) as CSV to this path; use -fig none for the trail alone")
		channel  = flag.String("channel", "v2", "channel model for every figure: v2 (default) or v1 (reproduces tables recorded before the v2 default flip)")
	)
	flag.Parse()
	drawCharts = *chart
	if *report != "" {
		combined = &dcfguard.Report{
			Title: "dcfguard experiment report",
			Preamble: fmt.Sprintf("Reproduction of Kyasanur & Vaidya, DSN 2003. "+
				"Generated %s by cmd/figures.", time.Now().Format("2006-01-02")), //detlint:allow wallclock -- report generation date stamp, host-side output
		}
	}

	cfg := dcfguard.DefaultConfig()
	if *quick {
		cfg = dcfguard.QuickConfig()
	}
	if *seeds > 0 {
		cfg.Seeds = dcfguard.Seeds(*seeds)
	}
	if *duration > 0 {
		cfg.Duration = dcfguard.Time(*duration)
	}
	switch *channel {
	case "v2":
		cfg.Channel = dcfguard.ChannelV2
	case "v1":
		cfg.Channel = dcfguard.ChannelV1
	default:
		return fmt.Errorf("unknown channel model %q (want v1 or v2)", *channel)
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}

	targets := strings.Split(*fig, ",")
	switch *fig {
	case "all":
		targets = []string{"4", "5", "6+7", "8", "9", "a1", "a2", "a3", "a4", "a5", "a6", "a7", "hidden", "faults", "validate"}
	case "none":
		targets = nil
	}
	sweep := dcfguard.SweepOptions{JournalDir: *journal, SeedTimeout: *seedTO}
	start := time.Now() //detlint:allow wallclock -- host-side CLI timing, outside the simulation
	for _, target := range targets {
		if err := emit(target, cfg, *outDir, sweep); err != nil {
			return err
		}
	}
	if *diagCSV != "" {
		if err := emitDiagTrail(cfg, *diagCSV); err != nil {
			return err
		}
	}
	if combined != nil {
		if err := atomicio.WriteFile(*report, []byte(combined.Markdown(time.Since(start))), 0o644); err != nil { //detlint:allow wallclock -- host-side CLI timing, outside the simulation
			return err
		}
		fmt.Printf("wrote %s (%d sections)\n", *report, combined.Len())
	}
	return nil
}

// emitDiagTrail runs the paper's canonical misbehavior case — the
// ZERO-FLOW star under CORRECT with node 3 at PM 80 — with diagnosis
// tracing on and writes every per-window monitor decision (diff, sliding
// window sum, threshold, verdict) as CSV: the raw trail behind Figure 4's
// accuracy percentages.
func emitDiagTrail(cfg dcfguard.Config, path string) error {
	start := time.Now() //detlint:allow wallclock -- host-side CLI timing, outside the simulation
	s := dcfguard.DefaultScenario()
	s.Name = "diag-trail-pm80"
	s.PM = 80
	s.Duration = cfg.Duration
	sink := dcfguard.NewObsDiagnosisCSV(path)
	s.Observe = &dcfguard.ObsConfig{
		Categories: dcfguard.ObsCategorySet(0).Set(dcfguard.ObsCatDiagnosis),
		Sinks:      []dcfguard.ObsSink{sink},
	}
	if _, err := dcfguard.Run(s, 1); err != nil {
		return err
	}
	if err := sink.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d diagnosis rows, generated in %v)\n",
		path, sink.Len(), time.Since(start).Round(time.Millisecond)) //detlint:allow wallclock -- host-side CLI timing, outside the simulation
	return nil
}

func emit(target string, cfg dcfguard.Config, outDir string, sweep dcfguard.SweepOptions) error {
	start := time.Now() //detlint:allow wallclock -- host-side CLI timing, outside the simulation
	var tables []*dcfguard.Table
	var names []string

	switch target {
	case "4":
		t, err := dcfguard.Fig4(cfg)
		if err != nil {
			return err
		}
		tables, names = []*dcfguard.Table{t}, []string{"fig4"}
	case "5", "delay", "5+delay":
		t5, tD, err := dcfguard.Fig5WithDelay(cfg)
		if err != nil {
			return err
		}
		tables, names = []*dcfguard.Table{t5, tD}, []string{"fig5", "ext-delay"}
	case "6", "7", "6+7":
		t6, t7, err := dcfguard.Fig6And7(cfg)
		if err != nil {
			return err
		}
		tables, names = []*dcfguard.Table{t6, t7}, []string{"fig6", "fig7"}
	case "8":
		t, err := dcfguard.Fig8(cfg)
		if err != nil {
			return err
		}
		tables, names = []*dcfguard.Table{t}, []string{"fig8"}
	case "9":
		t, err := dcfguard.Fig9(cfg)
		if err != nil {
			return err
		}
		tables, names = []*dcfguard.Table{t}, []string{"fig9"}
	case "a1":
		t, err := dcfguard.AblationPenaltyFactor(cfg, []float64{1.0, 1.25, 1.5, 2.0})
		if err != nil {
			return err
		}
		tables, names = []*dcfguard.Table{t}, []string{"ablation-a1-penalty"}
	case "a2":
		t, err := dcfguard.AblationAlpha(cfg, []float64{0.5, 0.7, 0.9, 1.0})
		if err != nil {
			return err
		}
		tables, names = []*dcfguard.Table{t}, []string{"ablation-a2-alpha"}
	case "a3":
		t, err := dcfguard.AblationWindow(cfg, []dcfguard.WindowPoint{
			{W: 3, Thresh: 12}, {W: 5, Thresh: 10}, {W: 5, Thresh: 20}, {W: 10, Thresh: 40},
		})
		if err != nil {
			return err
		}
		tables, names = []*dcfguard.Table{t}, []string{"ablation-a3-window"}
	case "a4":
		t, err := dcfguard.AblationAttemptVerification(cfg)
		if err != nil {
			return err
		}
		tables, names = []*dcfguard.Table{t}, []string{"ablation-a4-attempts"}
	case "a5":
		t, err := dcfguard.AblationReceiverMisbehavior(cfg)
		if err != nil {
			return err
		}
		tables, names = []*dcfguard.Table{t}, []string{"ablation-a5-receiver"}
	case "a6":
		t, err := dcfguard.AblationAdaptiveThresh(cfg)
		if err != nil {
			return err
		}
		tables, names = []*dcfguard.Table{t}, []string{"ablation-a6-adaptive"}
	case "a7":
		t, err := dcfguard.AblationBasicAccess(cfg)
		if err != nil {
			return err
		}
		tables, names = []*dcfguard.Table{t}, []string{"ablation-a7-basic-access"}
	case "hidden":
		t, err := dcfguard.ExtHiddenTerminal(cfg)
		if err != nil {
			return err
		}
		tables, names = []*dcfguard.Table{t}, []string{"ext-hidden-terminal"}
	case "faults":
		t, rep, err := dcfguard.ExtFaultTolerance(cfg, sweep)
		if err != nil {
			return err
		}
		if !rep.OK() {
			for _, f := range rep.Failures {
				fmt.Fprint(os.Stderr, f.Dump())
			}
			return fmt.Errorf("faults sweep: %d cells failed (table skipped)", len(rep.Failures))
		}
		tables, names = []*dcfguard.Table{t}, []string{"ext-fault-tolerance"}
	case "validate":
		t, err := analytic.ValidateAgainstModel(cfg)
		if err != nil {
			return err
		}
		tables, names = []*dcfguard.Table{t}, []string{"validate-bianchi"}
	default:
		return fmt.Errorf("unknown figure %q", target)
	}

	for i, t := range tables {
		fmt.Println(t.Render())
		if combined != nil {
			combined.Add(t, true)
		}
		if drawCharts && len(t.Columns) > 1 {
			yCols := make([]int, 0, len(t.Columns)-1)
			for c := 1; c < len(t.Columns); c++ {
				yCols = append(yCols, c)
			}
			if plot := t.Chart(64, 16, 0, yCols...); !strings.Contains(plot, "no data") {
				fmt.Println(plot)
			}
		}
		fmt.Printf("(generated in %v)\n\n", time.Since(start).Round(time.Millisecond)) //detlint:allow wallclock -- host-side CLI timing, outside the simulation
		if outDir != "" {
			base := filepath.Join(outDir, names[i])
			if err := atomicio.WriteFile(base+".txt", []byte(t.Render()), 0o644); err != nil {
				return err
			}
			if err := atomicio.WriteFile(base+".csv", []byte(t.CSV()), 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}
