// Command dcfserved is the sweep daemon: sim-as-a-service over the
// internal/serve core. It accepts JSON job specs on /jobs, fans them
// into (scenario, seed) cells on a worker pool with per-tenant fair
// scheduling, and keeps every promise on disk — kill -9 it mid-sweep,
// restart it over the same -data directory, and the artifacts come out
// byte-for-byte identical.
//
//	dcfserved -addr 127.0.0.1:8457 -data ./serve-data
//	curl -s localhost:8457/healthz
//	macsim -submit http://127.0.0.1:8457 -seeds 5 -pm 80
//
// SIGTERM/SIGINT drain gracefully: submissions get 503, /readyz flips,
// in-flight cells finish and reach their journal checkpoints, then the
// process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dcfguard/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dcfserved:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", "127.0.0.1:8457", "listen address")
		data      = flag.String("data", "serve-data", "data directory (specs, journals, artifacts)")
		workers   = flag.Int("workers", 0, "cell worker pool size (0 = GOMAXPROCS)")
		queueCap  = flag.Int("queue", 1024, "max outstanding cells; beyond it submissions get 429 + Retry-After")
		retries   = flag.Int("retries", 3, "total attempts per cell (1 = no retries)")
		retryBase = flag.Duration("retry-base", 250*time.Millisecond, "retry backoff base (full jitter, ceiling doubles per retry)")
		retryMax  = flag.Duration("retry-max", 5*time.Second, "retry backoff ceiling")
		breakerK  = flag.Int("breaker", 3, "park a job as degraded after K consecutive panicking cells (<=0 disables)")
		seedTO    = flag.Duration("seedtimeout", 2*time.Minute, "wall-time watchdog per cell (0 disables)")
		retain    = flag.Int("retain", 0, "keep only the N most recently finished jobs (table and disk); 0 keeps everything, live jobs are never touched")
	)
	flag.Parse()

	opts := serve.Options{
		DataDir:     *data,
		Workers:     *workers,
		QueueCap:    *queueCap,
		Retry:       serve.RetryPolicy{MaxAttempts: *retries, BaseDelay: *retryBase, MaxDelay: *retryMax},
		BreakerK:    *breakerK,
		SeedTimeout: *seedTO,
		Retain:      *retain,
	}
	if *breakerK <= 0 {
		opts.BreakerK = -1
	}
	s, err := serve.NewServer(opts)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	log.Printf("dcfserved: serving on http://%s (data %s, %d recovered jobs)",
		ln.Addr(), *data, len(s.Statuses()))

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case sig := <-sigc:
		log.Printf("dcfserved: %v: draining (in-flight cells checkpoint, then exit)", sig)
		s.Shutdown()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			return err
		}
		log.Printf("dcfserved: drained")
		return nil
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}
