GO ?= go

.PHONY: all build test vet race bench bench-quick check clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# One iteration of every benchmark: catches bench-harness rot and gross
# regressions without the minutes-long auto-scaled run.
bench:
	$(GO) test -run '^$$' -bench . -benchtime=1x -benchmem ./...

# Single hand-timed iteration per canonical target; writes BENCH.json.
bench-quick:
	$(GO) run ./cmd/macsim bench -quick

# Full auto-scaled suite; refreshes the committed BENCH.json.
bench-full:
	$(GO) run ./cmd/macsim bench -out BENCH.json

# The pre-merge gate (see README "Pre-merge gate"): vet, build, the race
# detector over the short suite, and one pass over every benchmark.
check: vet build race bench

clean:
	$(GO) clean ./...
