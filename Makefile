GO ?= go

.PHONY: all build test vet lint audit race bench bench-quick bench-full bench-large bench-guard check check-v2 faults obs serve shards clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# detlint: the determinism analyzers over the whole module — cmd/ and
# the top-level package included, internal/lint itself excluded — with
# per-package results cached under .dcflint-cache (content-hashed, so a
# warm run re-analyzes only what an edit could have changed). The
# second step audits //detlint:allow directives: every suppression must
# carry a "-- justification" trailer. See DESIGN.md §7 and §12.
lint:
	$(GO) run ./cmd/dcflint ./...
	@$(GO) run ./cmd/dcflint -audit-allows ./... >/dev/null

# Deeper, slower checks that are not part of the pre-merge gate: vet's
# unsafe-pointer analyzer, plus govulncheck when installed (best-effort —
# the container may be offline or lack the tool).
audit:
	$(GO) vet -unsafeptr ./...
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./... || echo "audit: govulncheck reported findings (non-blocking)"; \
	else \
		echo "audit: govulncheck not installed; skipping"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# One iteration of every benchmark: catches bench-harness rot and gross
# regressions without the minutes-long auto-scaled run.
bench:
	$(GO) test -run '^$$' -bench . -benchtime=1x -benchmem ./...

# Single hand-timed iteration per canonical target; writes BENCH.json.
bench-quick:
	$(GO) run ./cmd/macsim bench -quick

# Full auto-scaled suite; refreshes the committed BENCH.json.
bench-full:
	$(GO) run ./cmd/macsim bench -out BENCH.json

# One iteration of the large-topology scaling benchmarks (channel model
# v2 at 200/400 nodes plus the v1 400-node baseline).
bench-large:
	$(GO) test -run '^$$' -bench 'RunRandom[24]00' -benchtime=1x -benchmem .

# Kernel-throughput guard: RunRandom40V2 and RunRandom400 must sustain
# ≥95% of the events/sec recorded in BENCH.json (same machine-local
# caveat and env gate as the obs overhead guard), and on hosts with 4+
# CPUs the 4-shard 10k-node run must beat the serial kernel by ≥2.5x
# (ShardSpeedupGuard self-skips elsewhere). Writes a CPU profile so a
# failing CI run ships the evidence as an artifact.
bench-guard:
	@mkdir -p results
	DCFGUARD_OVERHEAD_GUARD=1 $(GO) test -count=1 -run 'KernelThroughputGuard|ShardSpeedupGuard' \
		-cpuprofile results/bench-guard-cpu.prof -o results/bench-guard.test -v .

# Channel-model-v2 correctness gate: the v2 golden checksums and the
# grid-vs-brute-force equivalence quickcheck, under the race detector.
check-v2:
	$(GO) test -race -run 'V2|Equivalence' ./internal/experiment ./internal/medium

# Fault-injection and resilient-runner gate, under the race detector
# (the seed watchdog crosses goroutines): the whole faults/atomicio
# suites, then the fault goldens, the churn re-synchronisation contract,
# the scheduler interrupt tests, and the sweep kill-resume round-trip.
faults:
	$(GO) test -race ./internal/faults ./internal/atomicio
	$(GO) test -race -run 'Fault|Churn|Down|Interrupt|RunGuarded|RunSweep|ResultJSON' \
		./internal/experiment ./internal/core ./internal/sim
	$(GO) run ./cmd/macsim -pm 80 -duration 2s -fer 0.2 \
		-metrics results/faults-metrics.json -diag-csv results/faults-diag-trail.csv

# Observability gate, under the race detector (the debug endpoint and
# shared sweep registries cross goroutines): the obs package suite, the
# pass-through goldens + crash-ring tests, the obshot analyzer corpus,
# then the disabled-path wall-time guard against the BENCH.json
# baseline (min-of-5 RunRandom40 must stay within 2%).
obs:
	$(GO) test -race ./internal/obs
	$(GO) test -race -run 'Observability|GuardDumpCarriesTraceTail|GuardNoTraceNoTail' ./internal/experiment
	$(GO) test -run 'Obshot' ./internal/lint
	DCFGUARD_OVERHEAD_GUARD=1 $(GO) test -count=1 -run 'DisabledObservabilityOverhead' -v .

# Sweep-daemon gate, under the race detector (workers, backoff timers,
# and the HTTP mux cross goroutines): the serve package suite (retry
# policy, breaker, fair scheduling, admission control, restart resume),
# the spec-equivalence pin, the daemon overhead guard (a submitted
# RunRandom40V2 cell must stay within 5% of the raw kernel — same env
# gate and machine-local caveat as the obs guard), then the kill -9
# smoke script: SIGKILL the real dcfserved mid-sweep, restart it, and
# byte-compare the artifacts against an uninterrupted run.
serve:
	$(GO) test -race ./internal/serve
	DCFGUARD_OVERHEAD_GUARD=1 $(GO) test -count=1 -run 'ServeGuardSpecMatchesBench|ServeOverheadGuard' -v .
	./scripts/serve-smoke.sh

# Sharded-kernel gate, under the race detector (shard workers cross
# goroutines by design): the keyed-ordering and window/barrier unit
# tests, the v3 goldens, the shard-vs-serial golden pin, the shard-count
# invariance quickcheck, the sharded watchdog test, and the shardmail
# analyzer corpus.
shards:
	$(GO) test -race -run 'Keyed|FanKey|Window|NextTime|ShardGroup|NewShardGroup|V3|Shard' \
		./internal/sim ./internal/medium ./internal/experiment
	$(GO) test -run 'Shardmail|Shardsafe' ./internal/lint

# The pre-merge gate (see README "Pre-merge gate"), cheapest stages
# first so failures surface in seconds: vet and the determinism
# analyzers, then build, then the minutes-long race/bench stages.
check: vet lint build race check-v2 faults obs serve shards bench bench-guard

clean:
	$(GO) clean ./...
