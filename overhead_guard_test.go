package dcfguard_test

import (
	"encoding/json"
	"os"
	"syscall"
	"testing"
	"time"

	"dcfguard"
)

// The overhead guard pins the observability layer's "disabled is free"
// claim against the recorded baseline: with Scenario.Observe nil, the
// nil-check no-ops on every hook must keep RunRandom40 within 2% of the
// BENCH.json ns_per_op captured before the layer existed. It is gated
// behind DCFGUARD_OVERHEAD_GUARD=1 (run by `make obs`) because absolute
// wall-time assertions are only meaningful on the machine that captured
// the baseline — elsewhere the numbers compare different silicon.
//
// The estimator is built for a noisy host: each run contributes
// min(wall, process-CPU) — contention inflates wall but not CPU burned —
// and the minimum accumulates across batches with a pause between
// failing ones, so a transient slow window (frequency scaling, a noisy
// co-tenant) gets ridden out. A real regression raises the floor itself
// and keeps failing no matter how many batches run.

const overheadGuardEnv = "DCFGUARD_OVERHEAD_GUARD"

// cpuNow returns the process's cumulative user+system CPU time.
func cpuNow() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}

// hostSpeedScale compares the machine's current HostReferenceRate
// against the rate recorded in BENCH.json and returns (now/recorded,
// now), capped at 1 — the shared host's clock drifts by tens of
// percent across minutes, and both guards scale their thresholds by
// this factor so a slow window is not mistaken for a regression (a
// fast window never loosens a threshold). Returns (1, 0) when the
// baseline predates the HostReference entry.
func hostSpeedScale(recorded float64) (scale, now float64) {
	if recorded <= 0 {
		return 1, 0
	}
	now = dcfguard.HostReferenceRate()
	if now > 0 && now < recorded {
		return now / recorded, now
	}
	return 1, now
}

func TestDisabledObservabilityOverhead(t *testing.T) {
	if os.Getenv(overheadGuardEnv) == "" {
		t.Skipf("set %s=1 to run the wall-time overhead guard (make obs)", overheadGuardEnv)
	}
	data, err := os.ReadFile("BENCH.json")
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	var bench struct {
		Results []struct {
			Name         string  `json:"name"`
			NsPerOp      int64   `json:"ns_per_op"`
			EventsPerSec float64 `json:"events_per_sec"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &bench); err != nil {
		t.Fatalf("baseline: %v", err)
	}
	var baseline int64
	var hostRef float64
	for _, r := range bench.Results {
		switch r.Name {
		case "RunRandom40":
			baseline = r.NsPerOp
		case "HostReference":
			hostRef = r.EventsPerSec
		}
	}
	if baseline == 0 {
		t.Fatal("baseline: no RunRandom40 entry in BENCH.json")
	}

	s := dcfguard.BenchScenarioRandom40()
	if s.Observe != nil {
		t.Fatal("bench scenario unexpectedly carries an Observe config")
	}
	scale, refNow := hostSpeedScale(hostRef)
	// baseline × 1.02, stretched by how much slower the host runs now
	// than when BENCH.json was captured (hostSpeedScale).
	limit := time.Duration(float64(baseline+baseline/50) / scale)
	t.Logf("host reference: recorded %.0f, now %.0f, limit scale %.3f", hostRef, refNow, scale)
	best := time.Duration(1<<63 - 1)
	for batch := 0; batch < 10 && best > limit; batch++ {
		if batch > 0 {
			time.Sleep(500 * time.Millisecond)
		}
		for i := 0; i < 5; i++ {
			wall0, cpu0 := time.Now(), cpuNow()
			if _, err := dcfguard.Run(s, uint64(i+1)); err != nil {
				t.Fatal(err)
			}
			wall, cpu := time.Since(wall0), cpuNow()-cpu0
			d := wall
			if cpu > 0 && cpu < d {
				d = cpu
			}
			if d < best {
				best = d
			}
		}
		t.Logf("batch %d: RunRandom40 min %v, baseline %v, limit %v",
			batch+1, best, time.Duration(baseline), limit)
	}
	if best > limit {
		t.Errorf("disabled-instrumentation RunRandom40 = %v exceeds %v (baseline %v + 2%%) — the obs hooks are not free when off",
			best, limit, time.Duration(baseline))
	}
}
