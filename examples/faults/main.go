// Faults: how well does the paper's detection scheme survive the real
// world? Its sensor is the channel itself — the receiver counts idle
// slots to estimate the sender's backoff — so lost CTS/ACK frames and
// rebooting receivers feed straight into the deviation estimate. This
// example injects both fault classes and runs the sweep through the
// crash-safe resumable runner:
//
//  1. an i.i.d. vs bursty frame-error sweep over an all-honest network,
//     measuring how fast *false* diagnoses grow with loss rate;
//  2. receiver churn: a monitor that crashes and restarts mid-run loses
//     its per-sender history and must re-synchronise without accusing
//     the (correct) senders it forgot;
//  3. the journaled sweep runner: kill the process mid-sweep and rerun —
//     finished (scenario, seed) cells are loaded from the journal and
//     only the rest execute.
//
//	go run ./examples/faults
package main

import (
	"fmt"
	"log"
	"os"

	"dcfguard"
)

func main() {
	fmt.Println("fault injection: channel error + receiver churn vs the CORRECT scheme")
	fmt.Println()

	// 1. False diagnoses vs frame-error rate, i.i.d. and bursty. Eight
	// honest senders: every diagnosis here is a false accusation.
	cfg := dcfguard.QuickConfig()
	cfg.Duration = 10 * dcfguard.Second
	cfg.FERs = []float64{0, 0.10, 0.20, 0.30}

	journal, err := os.MkdirTemp("", "faults-journal-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(journal)

	table, report, err := dcfguard.ExtFaultTolerance(cfg, dcfguard.SweepOptions{
		JournalDir: journal,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range report.Failures {
		fmt.Print(f.Dump())
	}
	fmt.Println(table.Render())

	// 2. The same sweep again, against the same journal: every cell is
	// already checkpointed, so nothing runs — this is what recovering an
	// interrupted overnight sweep looks like.
	_, report2, err := dcfguard.ExtFaultTolerance(cfg, dcfguard.SweepOptions{
		JournalDir: journal,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rerun against the journal: %d cells resumed, %d executed\n\n",
		report2.Resumed, report2.Ran)

	// 3. Receiver churn under active misbehavior: the access point
	// reboots every ~2 s (losing all per-sender state) while node 3
	// shaves 80%% of every backoff. Diagnosis survives the amnesia.
	s := dcfguard.DefaultScenario()
	s.Name = "churn"
	s.Duration = 15 * dcfguard.Second
	s.PM = 80
	s.Faults.ChurnInterval = 2 * dcfguard.Second
	s.Faults.ChurnDowntime = 200 * dcfguard.Millisecond

	r, err := dcfguard.Run(s, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("churning receiver (mean up 2s, down 200ms), PM=80%%:\n")
	fmt.Printf("  receiver restarts   %d (state wiped each time)\n", r.Restarts)
	fmt.Printf("  correct diagnosis   %.1f%%\n", r.CorrectDiagnosisPct)
	fmt.Printf("  misdiagnosis        %.1f%%\n", r.MisdiagnosisPct)
	fmt.Printf("  MSB vs AVG goodput  %.1f vs %.1f Kbps\n",
		r.AvgMisbehaverKbps, r.AvgHonestKbps)
}
