// Watchdog: §4.4's hardest threat — a sender and receiver that
// *collude*. The receiver assigns its partner near-zero backoffs and
// never applies penalties, so the pair monopolises the channel while
// every check the receiver is supposed to run reports nothing wrong.
// Only a third party can see it: this example places a passive watchdog
// that overhears both flows, re-derives B_act and the advertised
// assignments from outside, and flags the pair.
//
//	go run ./examples/watchdog
package main

import (
	"fmt"
	"log"

	"dcfguard"
)

func main() {
	fmt.Println("collusion: receiver 1 assigns ~0 backoff to sender 3 and never")
	fmt.Println("penalises it; honest pair (2 -> 0) competes on the same channel")
	fmt.Println()

	base := dcfguard.DefaultScenario()
	base.Duration = 15 * dcfguard.Second
	base.Topo = pairTopo()
	base.Protocol = dcfguard.ProtocolCorrect
	base.PM = 100 // the colluding sender ignores backoff entirely
	base.ColludingReceivers = []dcfguard.NodeID{1}

	// Without a watchdog: the collusion is invisible to the protocol —
	// receiver 1 runs the "checks" itself and reports nothing.
	plain := base
	rPlain, err := dcfguard.Run(plain, 1)
	if err != nil {
		log.Fatal(err)
	}

	// With a watchdog overhearing the cell.
	watched := base
	watched.Watchdog = true
	rWatched, err := dcfguard.Run(watched, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("honest flow (2->0):    %7.1f Kbps\n", rWatched.ThroughputBySender[2])
	fmt.Printf("colluding flow (3->1): %7.1f Kbps\n", rWatched.ThroughputBySender[3])
	fmt.Println()
	fmt.Printf("collusions detected without watchdog: %d\n", rPlain.CollusionsDetected)
	fmt.Printf("collusions detected with watchdog:    %d", rWatched.CollusionsDetected)
	if len(rWatched.ColludingPairs) > 0 {
		p := rWatched.ColludingPairs[0]
		fmt.Printf("  (sender %d, receiver %d)", p[0], p[1])
	}
	fmt.Println()
	fmt.Println()
	fmt.Println("the colluding pair grabs most of the channel and no participant")
	fmt.Println("will ever report it; the passive observer flags the pair from the")
	fmt.Println("two facts it can verify independently: the pair's observed backoffs")
	fmt.Println("AND the receiver's advertised assignments both stay near zero.")
}

// pairTopo: two receivers (0, 1) and two senders (2 -> 0, 3 -> 1), all
// mutually in range.
func pairTopo() func(uint64) *dcfguard.Topology {
	return func(uint64) *dcfguard.Topology {
		return &dcfguard.Topology{
			Positions: []dcfguard.Point{
				{X: 0, Y: 0}, {X: 120, Y: 0}, {X: 0, Y: 100}, {X: 120, Y: 100},
			},
			Flows:     []dcfguard.Flow{{Src: 2, Dst: 0}, {Src: 3, Dst: 1}},
			Measured:  []dcfguard.NodeID{2, 3},
			Receivers: []dcfguard.NodeID{0, 1},
		}
	}
}
