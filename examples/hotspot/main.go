// Hotspot: the paper's motivating deployment — a public wireless cell
// whose trusted access point monitors untrusted clients (§3.1). This
// example sweeps the client's misbehavior level and prints the Figure-4
// and Figure-5 story side by side: what the cheater gains under plain
// 802.11, how the CORRECT access point contains it, and how quickly the
// diagnosis scheme flags it — including the effect of the interferer
// traffic (TWO-FLOW) that makes detection noisy in real deployments.
//
//	go run ./examples/hotspot
package main

import (
	"fmt"
	"log"

	"dcfguard"
)

func main() {
	fmt.Println("public hotspot: 8 clients upload to one trusted AP; client 3 cheats")
	fmt.Println("interferer traffic near the AP makes clients' channel views diverge")
	fmt.Println()
	fmt.Printf("%4s | %13s | %22s | %18s\n", "", "802.11", "CORRECT access point", "diagnosis")
	fmt.Printf("%4s | %6s %6s | %6s %6s %8s | %9s %8s\n",
		"PM%", "cheat", "honest", "cheat", "honest", "penalty", "correct%", "misdiag%")

	for _, pm := range []int{0, 20, 40, 60, 80, 95} {
		base := dcfguard.DefaultScenario()
		base.Duration = 10 * dcfguard.Second
		base.Topo = dcfguard.StarTopo(8, true, 3) // TWO-FLOW: interferers on
		base.PM = pm

		std := base
		std.Protocol = dcfguard.Protocol80211
		rStd, err := dcfguard.Run(std, 1)
		if err != nil {
			log.Fatal(err)
		}

		cor := base
		cor.Protocol = dcfguard.ProtocolCorrect
		rCor, err := dcfguard.Run(cor, 1)
		if err != nil {
			log.Fatal(err)
		}

		// The penalty column summarises the correction scheme: how much
		// extra backoff the AP levied on the cheating client, relative
		// to its fair share of the channel.
		penalty := "low"
		switch {
		case rCor.AvgMisbehaverKbps < 0.7*rCor.AvgHonestKbps:
			penalty = "heavy"
		case rCor.CorrectDiagnosisPct > 50:
			penalty = "active"
		}

		fmt.Printf("%4d | %6.0f %6.0f | %6.0f %6.0f %8s | %8.1f%% %7.1f%%\n",
			pm,
			rStd.AvgMisbehaverKbps, rStd.AvgHonestKbps,
			rCor.AvgMisbehaverKbps, rCor.AvgHonestKbps, penalty,
			rCor.CorrectDiagnosisPct, rCor.MisdiagnosisPct)
	}

	fmt.Println()
	fmt.Println("reading the table: under 802.11 the cheater's share (column 1) grows")
	fmt.Println("with PM while honest clients collapse; the CORRECT AP holds both near")
	fmt.Println("their fair share and the diagnosis columns show the detection/false-")
	fmt.Println("positive trade-off the paper discusses for interference-heavy cells.")
}
