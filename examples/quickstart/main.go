// Quickstart: simulate the paper's base setup — eight stations sending
// to one access point over 802.11 DCF — once with everyone honest and
// once with station 3 shaving 80% of its backoff, under both plain
// 802.11 and the paper's CORRECT scheme.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dcfguard"
)

func main() {
	run := func(label string, protocol dcfguard.Protocol, pm int) {
		s := dcfguard.DefaultScenario() // Figure-3 star, node 3 misbehaving
		s.Duration = 10 * dcfguard.Second
		s.Protocol = protocol
		s.PM = pm

		r, err := dcfguard.Run(s, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s honest %6.1f Kbps/node | misbehaver %6.1f Kbps | diagnosed %5.1f%%\n",
			label, r.AvgHonestKbps, r.AvgMisbehaverKbps, r.CorrectDiagnosisPct)
	}

	fmt.Println("eight stations, 2 Mbps channel, 512 B packets, 10 s simulated")
	fmt.Println()
	run("802.11, everyone honest", dcfguard.Protocol80211, 0)
	run("802.11, node 3 at PM=80%", dcfguard.Protocol80211, 80)
	run("CORRECT, node 3 at PM=80%", dcfguard.ProtocolCorrect, 80)
	fmt.Println()
	fmt.Println("under 802.11 the misbehaver grabs several times its fair share;")
	fmt.Println("the CORRECT scheme pins it back and diagnoses nearly every packet.")
}
