// Tuning: explores the protocol-parameter trade-offs the paper defers
// to "future work" — how α (deviation tolerance), W and THRESH
// (diagnosis window) move the operating point between catching
// misbehavers and falsely accusing honest senders, in the noisy
// TWO-FLOW environment.
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"log"

	"dcfguard"
)

func measure(mutate func(*dcfguard.Scenario)) (correct, misdiag float64) {
	s := dcfguard.DefaultScenario()
	s.Duration = 10 * dcfguard.Second
	s.Topo = dcfguard.StarTopo(8, true, 3)
	s.Protocol = dcfguard.ProtocolCorrect
	s.PM = 50
	mutate(&s)
	agg, err := dcfguard.RunSeeds(s, dcfguard.Seeds(3))
	if err != nil {
		log.Fatal(err)
	}
	return agg.CorrectDiagnosisPct.Mean, agg.MisdiagnosisPct.Mean
}

func main() {
	fmt.Println("diagnosis tuning at PM=50, TWO-FLOW, 3 seeds x 10 s")
	fmt.Println()

	fmt.Println("alpha (deviation tolerance; paper: 0.9)")
	for _, alpha := range []float64{0.5, 0.7, 0.9, 1.0} {
		c, m := measure(func(s *dcfguard.Scenario) { s.Core.Alpha = alpha })
		fmt.Printf("  α=%.1f   correct %5.1f%%   misdiagnosis %5.1f%%\n", alpha, c, m)
	}
	fmt.Println()

	fmt.Println("diagnosis window (paper: W=5, THRESH=20)")
	for _, p := range []struct {
		w      int
		thresh float64
	}{
		{3, 12}, {5, 10}, {5, 20}, {5, 40}, {10, 40},
	} {
		c, m := measure(func(s *dcfguard.Scenario) {
			s.Core.Window = p.w
			s.Core.Thresh = p.thresh
		})
		fmt.Printf("  W=%-2d THRESH=%-3.0f  correct %5.1f%%   misdiagnosis %5.1f%%\n",
			p.w, p.thresh, c, m)
	}
	fmt.Println()

	fmt.Println("penalty factor (correction scheme; this repo's default: 1.25)")
	for _, f := range []float64{1.0, 1.25, 1.5, 2.0} {
		s := dcfguard.DefaultScenario()
		s.Duration = 10 * dcfguard.Second
		s.Protocol = dcfguard.ProtocolCorrect
		s.PM = 70
		s.Core.PenaltyFactor = f
		agg, err := dcfguard.RunSeeds(s, dcfguard.Seeds(3))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  factor=%.2f  misbehaver %6.1f Kbps   honest %6.1f Kbps\n",
			f, agg.AvgMisbehaverKbps.Mean, agg.AvgHonestKbps.Mean)
	}

	fmt.Println()
	fmt.Println("the pattern: lowering THRESH or raising α catches more misbehavior")
	fmt.Println("but accuses more honest senders; the penalty factor trades misbehaver")
	fmt.Println("containment against over-punishing borderline deviations.")
}
