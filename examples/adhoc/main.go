// Adhoc: the paper's §4.3/§5 ad hoc setting — a 40-node random network
// where every node runs a flow to a neighbor, five nodes misbehave, and
// every receiver independently runs the monitor. Demonstrates the
// response the paper proposes for diagnosed nodes: the MAC refusing to
// serve them (BlockDiagnosed), the hook a network layer would use to
// route around misbehavers.
//
//	go run ./examples/adhoc
package main

import (
	"fmt"
	"log"

	"dcfguard"
)

func main() {
	fmt.Println("ad hoc network: 40 nodes in 1500 m x 700 m, 5 misbehaving at PM=80%")
	fmt.Println("every receiver monitors its senders independently")
	fmt.Println()

	base := dcfguard.DefaultScenario()
	base.Duration = 15 * dcfguard.Second
	base.Topo = dcfguard.RandomTopo(40, 5)
	base.PM = 80

	// Plain 802.11: the misbehavers feast.
	std := base
	std.Protocol = dcfguard.Protocol80211
	rStd, err := dcfguard.Run(std, 7)
	if err != nil {
		log.Fatal(err)
	}

	// CORRECT: correction keeps them near their share and diagnosis
	// identifies them.
	cor := base
	cor.Protocol = dcfguard.ProtocolCorrect
	rCor, err := dcfguard.Run(cor, 7)
	if err != nil {
		log.Fatal(err)
	}

	// CORRECT + blocking: diagnosed senders get no CTS at all — the
	// MAC-layer sanction of §4.3 (an ad hoc network's network layer
	// could instead use the diagnosis to re-route or refuse forwarding).
	blk := cor
	blk.Core.BlockDiagnosed = true
	rBlk, err := dcfguard.Run(blk, 7)
	if err != nil {
		log.Fatal(err)
	}

	rows := []struct {
		label string
		r     dcfguard.Result
	}{
		{"802.11", rStd},
		{"CORRECT", rCor},
		{"CORRECT + blocking", rBlk},
	}
	fmt.Printf("%-20s %12s %12s %10s %10s\n",
		"protocol", "misbehaver", "honest", "correct%", "misdiag%")
	for _, row := range rows {
		fmt.Printf("%-20s %8.1f Kbps %8.1f Kbps %9.1f%% %9.1f%%\n",
			row.label, row.r.AvgMisbehaverKbps, row.r.AvgHonestKbps,
			row.r.CorrectDiagnosisPct, row.r.MisdiagnosisPct)
	}

	fmt.Println()
	fmt.Printf("blocking cuts the misbehavers' goodput from %.0f to %.0f Kbps while\n",
		rCor.AvgMisbehaverKbps, rBlk.AvgMisbehaverKbps)
	fmt.Println("honest nodes keep (or improve) theirs — at the price that any")
	fmt.Println("misdiagnosed honest node is punished too, which is why the paper")
	fmt.Println("leaves the sanction to higher layers by default.")
}
