package dcfguard

import (
	"strings"
	"testing"
)

// minimal is the smallest config that still produces classifications.
func minimal() Config {
	cfg := QuickConfig()
	cfg.Duration = 1 * Second
	cfg.Seeds = Seeds(1)
	cfg.PMs = []int{80}
	cfg.NetworkSizes = []int{2}
	cfg.Fig8PMs = []int{80}
	return cfg
}

// TestAllFigureWrappers exercises every figure and ablation façade at
// minimal scale: each must produce a non-empty, renderable table.
func TestAllFigureWrappers(t *testing.T) {
	cfg := minimal()
	generators := map[string]func() (*Table, error){
		"fig4": func() (*Table, error) { return Fig4(cfg) },
		"fig5": func() (*Table, error) { return Fig5(cfg) },
		"fig6": func() (*Table, error) { return Fig6(cfg) },
		"fig7": func() (*Table, error) { return Fig7(cfg) },
		"fig8": func() (*Table, error) { return Fig8(cfg) },
		"fig9": func() (*Table, error) { return Fig9(cfg) },
		"a1":   func() (*Table, error) { return AblationPenaltyFactor(cfg, []float64{1.25}) },
		"a2":   func() (*Table, error) { return AblationAlpha(cfg, []float64{0.9}) },
		"a3":   func() (*Table, error) { return AblationWindow(cfg, []WindowPoint{{W: 5, Thresh: 20}}) },
		"a4":   func() (*Table, error) { return AblationAttemptVerification(cfg) },
		"a5":   func() (*Table, error) { return AblationReceiverMisbehavior(cfg) },
		"a6":   func() (*Table, error) { return AblationAdaptiveThresh(cfg) },
		"a7":   func() (*Table, error) { return AblationBasicAccess(cfg) },
	}
	for name, gen := range generators {
		name, gen := name, gen
		t.Run(name, func(t *testing.T) {
			tb, err := gen()
			if err != nil {
				t.Fatal(err)
			}
			if len(tb.Rows) == 0 {
				t.Fatal("empty table")
			}
			if out := tb.Render(); !strings.Contains(out, "|") {
				t.Fatalf("render produced %q", out)
			}
			if csv := tb.CSV(); !strings.Contains(csv, ",") {
				t.Fatalf("CSV produced %q", csv)
			}
		})
	}
}

func TestFig5WithDelayWrapper(t *testing.T) {
	t5, tD, err := Fig5WithDelay(minimal())
	if err != nil {
		t.Fatal(err)
	}
	if len(t5.Rows) == 0 || len(tD.Rows) == 0 {
		t.Fatal("empty tables")
	}
	if !strings.Contains(tD.Title, "delay") {
		t.Fatalf("delay title = %q", tD.Title)
	}
}

func TestRunAllWrapperAndCSV(t *testing.T) {
	s := DefaultScenario()
	s.Duration = 1 * Second
	results, err := RunAll(s, Seeds(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	if csv := ResultsCSV(results); !strings.Contains(csv, "zero-flow,1,") {
		t.Fatalf("ResultsCSV missing rows:\n%s", csv)
	}
	if csv := PerSenderCSV(results); !strings.Contains(csv, "sender") {
		t.Fatalf("PerSenderCSV missing header:\n%s", csv)
	}
}

func TestTraceThroughFacade(t *testing.T) {
	s := DefaultScenario()
	s.Duration = 100 * Millisecond
	s.TraceEvents = 20
	r, err := Run(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Trace == nil || r.Trace.Len() == 0 {
		t.Fatal("no trace through façade")
	}
	if txt := r.Trace.Text(); !strings.Contains(txt, "RTS") {
		t.Fatalf("trace text missing frames:\n%s", txt)
	}
}
