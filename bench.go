package dcfguard

import (
	"fmt"
	"syscall"
	"time"

	"dcfguard/internal/rng"
)

// This file defines the canonical benchmark suite in one place, so the
// in-repo benchmarks (bench_test.go) and the `macsim bench` subcommand
// measure exactly the same workloads. BENCH.json entries and the
// numbers recorded in README must always come from these definitions.

// BenchFigConfig is the reduced per-iteration figure configuration used
// by the BenchmarkFig* suite: short runs, two seeds, two network sizes.
func BenchFigConfig() Config {
	cfg := QuickConfig()
	cfg.Duration = 2 * Second
	cfg.Seeds = Seeds(2)
	cfg.PMs = []int{0, 80}
	cfg.NetworkSizes = []int{2, 8}
	cfg.Fig8PMs = []int{80}
	return cfg
}

// BenchScenario80211Star is the raw-kernel baseline: the 8-sender star
// under plain 802.11, 2 simulated seconds.
func BenchScenario80211Star() Scenario {
	s := DefaultScenario()
	s.Channel = ChannelV1 // historical v1-channel kernel baseline
	s.Duration = 2 * Second
	s.Protocol = Protocol80211
	return s
}

// BenchScenarioCorrectStar is the star with the full monitor pipeline
// active and the PM-80 misbehaver.
func BenchScenarioCorrectStar() Scenario {
	s := DefaultScenario()
	s.Channel = ChannelV1 // historical v1-channel pipeline baseline
	s.Duration = 2 * Second
	s.Protocol = ProtocolCorrect
	s.PM = 80
	return s
}

// BenchScenarioRandom40 is the Figure-9 40-node random topology with
// 5 misbehaving senders at PM 80.
func BenchScenarioRandom40() Scenario {
	s := DefaultScenario()
	s.Channel = ChannelV1 // the v1 pair of RunRandom40V2
	s.Duration = 2 * Second
	s.Topo = RandomTopo(40, 5)
	s.PM = 80
	return s
}

// BenchScenarioRandom40V2 is BenchScenarioRandom40 under channel model
// v2 — the like-for-like comparison that bounds the small-topology
// overhead of the counter RNG and spatial index.
func BenchScenarioRandom40V2() Scenario {
	s := BenchScenarioRandom40()
	s.Name = "random-40-v2"
	s.Channel = ChannelV2
	return s
}

// BenchScenarioRandom200 is a 200-node sparse random topology under
// plain 802.11 and channel model v2 — a pure kernel-scaling workload
// (no monitor pipeline), where runtime is dominated by the scheduler
// and channel fan-out the v2 index is meant to prune.
func BenchScenarioRandom200() Scenario {
	s := DefaultScenario()
	s.Name = "random-200-v2"
	s.Duration = 1 * Second
	s.Protocol = Protocol80211
	s.Topo = ScaledRandomTopo(200, 25)
	s.PM = 80
	s.Channel = ChannelV2
	return s
}

// BenchScenarioRandom400 is the 400-node kernel-scaling workload under
// channel model v2; BenchScenarioRandom400V1 is the same workload on
// the v1 channel, the baseline for the v2 speedup claim.
func BenchScenarioRandom400() Scenario {
	s := DefaultScenario()
	s.Name = "random-400-v2"
	s.Duration = 1 * Second
	s.Protocol = Protocol80211
	s.Topo = ScaledRandomTopo(400, 50)
	s.PM = 80
	s.Channel = ChannelV2
	return s
}

// BenchScenarioRandom400V1 is BenchScenarioRandom400 on the v1 channel.
func BenchScenarioRandom400V1() Scenario {
	s := BenchScenarioRandom400()
	s.Name = "random-400-v1"
	s.Channel = ChannelV1
	return s
}

// benchScenarioRandomV3 builds the channel-model-v3 kernel-scaling
// workload: n nodes, n/8 misbehaving senders, plain 802.11 (no monitor
// pipeline), sharded onto the given scheduler count (1 = serial).
// Durations shrink with n so every size stays a tractable single
// iteration; events/sec is the comparable metric across sizes.
func benchScenarioRandomV3(n int, d Time, shards int) Scenario {
	s := DefaultScenario()
	s.Name = fmt.Sprintf("random-%dk-v3", n/1000)
	if shards > 1 {
		s.Name = fmt.Sprintf("%s-sharded", s.Name)
	}
	s.Duration = d
	s.Protocol = Protocol80211
	s.Topo = ScaledRandomTopo(n, n/8)
	s.PM = 80
	s.Channel = ChannelV3
	s.Shards = shards
	return s
}

// benchShards is the shard count of the *Sharded bench targets — the
// 4-way partition the ISSUE's speedup target is stated against.
const benchShards = 4

// BenchScenarioRandom1kV3 and friends are the sharded-kernel scaling
// suite: each size runs serial and sharded over the SAME workload, so
// BENCH.json's speedup_vs_1shard is a pure kernel comparison. On a
// single-core host the sharded runs measure barrier overhead instead of
// speedup — BENCH.json records GOMAXPROCS so readers can tell which.
func BenchScenarioRandom1kV3() Scenario { return benchScenarioRandomV3(1000, 400*Millisecond, 1) }

// BenchScenarioRandom1kV3Sharded is the 4-shard pair of BenchScenarioRandom1kV3.
func BenchScenarioRandom1kV3Sharded() Scenario {
	return benchScenarioRandomV3(1000, 400*Millisecond, benchShards)
}

// BenchScenarioRandom4kV3 is the 4000-node serial v3 workload.
func BenchScenarioRandom4kV3() Scenario { return benchScenarioRandomV3(4000, 200*Millisecond, 1) }

// BenchScenarioRandom4kV3Sharded is the 4-shard pair of BenchScenarioRandom4kV3.
func BenchScenarioRandom4kV3Sharded() Scenario {
	return benchScenarioRandomV3(4000, 200*Millisecond, benchShards)
}

// BenchScenarioRandom10kV3 is the 10000-node serial v3 workload — the
// ISSUE's headline size.
func BenchScenarioRandom10kV3() Scenario { return benchScenarioRandomV3(10000, 100*Millisecond, 1) }

// BenchScenarioRandom10kV3Sharded is the 4-shard pair of BenchScenarioRandom10kV3.
func BenchScenarioRandom10kV3Sharded() Scenario {
	return benchScenarioRandomV3(10000, 100*Millisecond, benchShards)
}

// BenchTarget is one workload of the canonical suite. Run executes a
// single iteration and returns the kernel events it fired (zero when
// the workload has no single meaningful event count, e.g. figure
// sweeps aggregate many runs).
type BenchTarget struct {
	Name string
	Run  func(iter int) (events uint64, err error)
}

// scenarioTarget builds a target that runs one scenario per iteration,
// cycling the seed exactly like benchScenario in bench_test.go.
func scenarioTarget(name string, s Scenario) BenchTarget {
	return BenchTarget{Name: name, Run: func(iter int) (uint64, error) {
		r, err := Run(s, uint64(iter+1))
		if err != nil {
			return 0, err
		}
		return r.EventsFired, nil
	}}
}

// BenchTargets returns the canonical suite: the three kernel-throughput
// scenarios plus the figure generators, mirroring the BenchmarkRun* and
// BenchmarkFig* benchmarks.
func BenchTargets() []BenchTarget {
	cfg := BenchFigConfig()
	fig := func(name string, f func(Config) (*Table, error)) BenchTarget {
		return BenchTarget{Name: name, Run: func(int) (uint64, error) {
			t, err := f(cfg)
			if err != nil {
				return 0, err
			}
			return t.Events, nil
		}}
	}
	return []BenchTarget{
		scenarioTarget("Run80211Star", BenchScenario80211Star()),
		scenarioTarget("RunCorrectStar", BenchScenarioCorrectStar()),
		scenarioTarget("RunRandom40", BenchScenarioRandom40()),
		scenarioTarget("RunRandom40V2", BenchScenarioRandom40V2()),
		scenarioTarget("RunRandom200", BenchScenarioRandom200()),
		scenarioTarget("RunRandom400", BenchScenarioRandom400()),
		scenarioTarget("RunRandom400V1", BenchScenarioRandom400V1()),
		scenarioTarget("RunRandom1k", BenchScenarioRandom1kV3()),
		scenarioTarget("RunRandom1kSharded", BenchScenarioRandom1kV3Sharded()),
		scenarioTarget("RunRandom4k", BenchScenarioRandom4kV3()),
		scenarioTarget("RunRandom4kSharded", BenchScenarioRandom4kV3Sharded()),
		scenarioTarget("RunRandom10k", BenchScenarioRandom10kV3()),
		scenarioTarget("RunRandom10kSharded", BenchScenarioRandom10kV3Sharded()),
		fig("Fig4DiagnosisAccuracy", Fig4),
		fig("Fig5Throughput", Fig5),
		fig("Fig7Fairness", Fig7),
		fig("Fig8Responsiveness", Fig8),
		{Name: "Fig6NoMisbehavior", Run: func(int) (uint64, error) {
			t6, _, err := Fig6And7(cfg)
			if err != nil {
				return 0, err
			}
			return t6.Events, nil
		}},
		{Name: "Fig9RandomTopology", Run: func(int) (uint64, error) {
			c := cfg
			c.PMs = []int{80}
			t, err := Fig9(c)
			if err != nil {
				return 0, err
			}
			return t.Events, nil
		}},
	}
}

// FindBenchTarget returns the named target, or an error listing the
// valid names.
func FindBenchTarget(name string) (BenchTarget, error) {
	for _, t := range BenchTargets() {
		if t.Name == name {
			return t, nil
		}
	}
	names := make([]string, 0, len(BenchTargets()))
	for _, t := range BenchTargets() {
		names = append(names, t.Name)
	}
	return BenchTarget{}, fmt.Errorf("unknown bench target %q (have %v)", name, names)
}

// hostRefOps is the iteration count of the host-reference loop: enough
// Mix64 rounds to run for tens of milliseconds — long enough to average
// over scheduler jitter, short enough to repeat in every guard run.
const hostRefOps = 1 << 23

// hostRefSink defeats dead-code elimination of the reference loop.
var hostRefSink uint64

// HostReferenceRate measures this machine's current scalar throughput
// as Mix64 rounds per second, best of three batches, each timed as
// min(wall, process CPU). BENCH.json records it next to the kernel
// numbers ("HostReference") so the throughput guard can tell a kernel
// regression from the shared host simply clocking slower than it did
// when the baseline was captured: the guard scales its floor by
// (rate now / rate recorded), capped at 1 so a faster host never
// loosens it. A pure ALU loop tracks frequency drift on both counts —
// it shares no caches or allocator state with the simulator, which is
// exactly why it isolates the host-speed factor.
func HostReferenceRate() float64 {
	best := 0.0
	for batch := 0; batch < 3; batch++ {
		wall0 := time.Now() //detlint:allow wallclock -- host benchmarking, outside the simulation
		cpu0 := processCPUTime()
		acc := uint64(batch)
		for i := uint64(0); i < hostRefOps; i++ {
			acc = rng.Mix64(acc, i)
		}
		hostRefSink += acc
		wall := time.Since(wall0) //detlint:allow wallclock -- host benchmarking, outside the simulation
		d := wall
		if cpu := processCPUTime() - cpu0; cpu > 0 && cpu < d {
			d = cpu
		}
		if s := d.Seconds(); s > 0 {
			if r := float64(hostRefOps) / s; r > best {
				best = r
			}
		}
	}
	return best
}

// processCPUTime returns this process's cumulative user+system CPU
// time; zero if rusage is unavailable.
func processCPUTime() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}
