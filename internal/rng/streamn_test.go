package rng

import (
	"fmt"
	"testing"
)

// TestStreamNMatchesStream pins the contract that lets the experiment
// runner swap its fmt.Sprintf stream labels for the non-allocating
// StreamN: the derived generator must be bit-identical to the one the
// old string label produced, for every (prefix, n) shape the runner
// uses. If this breaks, every recorded figure changes.
func TestStreamNMatchesStream(t *testing.T) {
	prefixes := []string{"policy-", "monitor-", "", "x"}
	ns := []uint64{0, 1, 3, 9, 10, 12, 99, 100, 12345, 1<<32 + 7, ^uint64(0)}
	for _, prefix := range prefixes {
		for _, n := range ns {
			for seed := uint64(1); seed <= 3; seed++ {
				// Separate identically-seeded parents: both derivations
				// consume one parent draw.
				a := New(seed).Stream(fmt.Sprintf("%s%d", prefix, n))
				b := New(seed).StreamN(prefix, n)
				for i := 0; i < 16; i++ {
					if x, y := a.Uint64(), b.Uint64(); x != y {
						t.Fatalf("StreamN(%q, %d) seed %d diverges from Stream at draw %d: %#x != %#x",
							prefix, n, seed, i, x, y)
					}
				}
			}
		}
	}
}

// TestStreamNGolden pins the first draw of the two label shapes the
// experiment runner derives, against values captured from the original
// string-label implementation.
func TestStreamNGolden(t *testing.T) {
	cases := []struct {
		prefix string
		n      uint64
	}{{"policy-", 0}, {"policy-", 3}, {"monitor-", 12}}
	for _, c := range cases {
		want := New(42).Stream(fmt.Sprintf("%s%d", c.prefix, c.n)).Uint64()
		got := New(42).StreamN(c.prefix, c.n).Uint64()
		if got != want {
			t.Errorf("StreamN(%q, %d) first draw %#x, want %#x", c.prefix, c.n, got, want)
		}
	}
}

// TestStreamNAllocs asserts the whole point: zero allocations per
// derivation beyond the returned Source itself.
func TestStreamNAllocs(t *testing.T) {
	parent := New(7)
	allocs := testing.AllocsPerRun(100, func() {
		_ = parent.StreamN("policy-", 123456)
	})
	// One allocation: the child *Source returned by New.
	if allocs > 1 {
		t.Errorf("StreamN allocates %.1f objects per call, want ≤ 1", allocs)
	}
}

// TestNormBound verifies the hard Box-Muller bound the medium's
// out-of-range proof relies on: no draw may ever reach NormBound.
func TestNormBound(t *testing.T) {
	src := New(1)
	for i := 0; i < 1_000_000; i++ {
		if v := src.NormFloat64(); v >= NormBound || v <= -NormBound {
			t.Fatalf("draw %d: |%v| ≥ NormBound %v", i, v, NormBound)
		}
	}
}
