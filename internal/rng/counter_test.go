package rng

import (
	"math"
	"testing"
)

// TestMix64Deterministic pins a few Mix64 outputs: the v2 channel's
// golden checksums depend on these exact values.
func TestMix64Deterministic(t *testing.T) {
	cases := []struct{ key, v, want uint64 }{
		{0, 0, Mix64(0, 0)},
		{1, 2, Mix64(1, 2)},
	}
	for _, c := range cases {
		if got := Mix64(c.key, c.v); got != c.want {
			t.Errorf("Mix64(%d,%d) not stable: %d then %d", c.key, c.v, c.want, got)
		}
	}
	if Mix64(0, 0) == Mix64(0, 1) || Mix64(0, 0) == Mix64(1, 0) {
		t.Error("Mix64 collides on adjacent inputs")
	}
	// Key order matters: Mix64(Mix64(b,x),y) must differ from the
	// swapped chain, otherwise the (tx, rx) pair key is symmetric and
	// both link directions share shadowing draws.
	if Mix64(Mix64(7, 3), 5) == Mix64(Mix64(7, 5), 3) {
		t.Error("chained Mix64 is symmetric in (3,5)")
	}
}

// TestMix64BatchedIdentity pins the algebraic identity the v2 medium's
// batched fan-out rests on: hoisting the value contribution through
// Mix64Delta/Mix64Pre is bit-identical to calling Mix64 directly, for
// every (key, v) — including the wrap-around extremes. If this ever
// broke, every v2 shadowing draw (and so every v2 golden) would change.
func TestMix64BatchedIdentity(t *testing.T) {
	keys := []uint64{0, 1, 12345, math.MaxUint64, 0x9e3779b97f4a7c15}
	vals := []uint64{0, 1, 2, 1 << 40, math.MaxUint64, math.MaxUint64 - 1}
	for _, key := range keys {
		for _, v := range vals {
			if got, want := Mix64Pre(key, Mix64Delta(v)), Mix64(key, v); got != want {
				t.Fatalf("Mix64Pre(%#x, Mix64Delta(%#x)) = %#x, want Mix64 = %#x",
					key, v, got, want)
			}
		}
	}
	for i := uint64(0); i < 10000; i++ {
		key, v := Mix64(1, i), Mix64(2, i)
		if Mix64Pre(key, Mix64Delta(v)) != Mix64(key, v) {
			t.Fatalf("batched identity broke at derived pair %d", i)
		}
	}
}

// TestCounterNormBound drives CounterNorm's uniform input to its bit
// extremes and checks the result stays inside NormBound — the guarantee
// the v2 out-of-range pruning proof rests on. The extremes of
// u = (mantissa + 0.5)·2⁻⁵² are 2⁻⁵³ and 1−2⁻⁵³ (both exactly
// representable), where |Φ⁻¹(u)| ≈ 8.21 < NormBound.
func TestCounterNormBound(t *testing.T) {
	for _, u := range []float64{
		0.5 * 0x1p-52,       // mantissa all zeros
		1 - 0x1p-53,         // mantissa all ones: (2⁵²−0.5)·2⁻⁵²
		0.5, 0.1, 0.9, 1e-9, // interior sanity
	} {
		z := InvNormCDF(u)
		if math.Abs(z) >= NormBound {
			t.Errorf("InvNormCDF(%g) = %g escapes NormBound %g", u, z, NormBound)
		}
	}
	// Brute confirmation over many counters.
	for ctr := uint64(0); ctr < 200000; ctr++ {
		if z := CounterNorm(12345, ctr); math.Abs(z) >= NormBound {
			t.Fatalf("CounterNorm(12345,%d) = %g escapes NormBound", ctr, z)
		}
	}
}

// TestCounterNormDistribution checks the counter stream is standard
// normal to within loose tolerances (mean ~0, variance ~1, symmetric
// tails) — enough to catch a broken mantissa shift or CDF inversion.
func TestCounterNormDistribution(t *testing.T) {
	const n = 200000
	var sum, sumSq float64
	neg := 0
	for ctr := uint64(0); ctr < n; ctr++ {
		z := CounterNorm(99, ctr)
		sum += z
		sumSq += z * z
		if z < 0 {
			neg++
		}
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("mean %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("variance %g, want ~1", variance)
	}
	if frac := float64(neg) / n; math.Abs(frac-0.5) > 0.01 {
		t.Errorf("negative fraction %g, want ~0.5", frac)
	}
}

// TestCounterNormPure verifies draws are pure functions of (key, ctr):
// re-evaluation and evaluation order cannot change a value.
func TestCounterNormPure(t *testing.T) {
	a := CounterNorm(7, 3)
	_ = CounterNorm(7, 4)
	_ = CounterNorm(8, 3)
	if b := CounterNorm(7, 3); a != b {
		t.Errorf("CounterNorm(7,3) changed between calls: %g then %g", a, b)
	}
}

// TestInvNormCDFSymmetry checks Φ⁻¹(1−p) = −Φ⁻¹(p) to high accuracy
// and that out-of-domain inputs panic. Extreme tails are excluded: 1−p
// itself rounds at p ≲ 1e-10, and the ~1/φ(z) slope amplifies that
// half-ulp input error far beyond the approximation's own error.
func TestInvNormCDFSymmetry(t *testing.T) {
	for _, p := range []float64{1e-6, 0.01, 0.25, 0.5} {
		zl, zh := InvNormCDF(p), InvNormCDF(1-p)
		if math.Abs(zl+zh) > 1e-8*math.Max(1, math.Abs(zl)) {
			t.Errorf("InvNormCDF(%g)=%g and InvNormCDF(1-%g)=%g not symmetric", p, zl, p, zh)
		}
	}
	for _, p := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("InvNormCDF(%g) did not panic", p)
				}
			}()
			InvNormCDF(p)
		}()
	}
}
