package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: sources with equal seeds diverged: %d != %d", i, got, want)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical draws out of 100", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	s := New(0)
	// xoshiro with an all-zero state would return 0 forever; the
	// SplitMix64 seeding must prevent that.
	zeros := 0
	for i := 0; i < 100; i++ {
		if s.Uint64() == 0 {
			zeros++
		}
	}
	if zeros > 1 {
		t.Fatalf("seed 0 produced %d zero draws out of 100", zeros)
	}
}

func TestStreamIndependence(t *testing.T) {
	parent := New(7)
	a := parent.Stream("node-1")
	b := parent.Stream("node-2")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with distinct labels produced %d identical draws", same)
	}
}

func TestStreamDeterminism(t *testing.T) {
	a := New(7).Stream("x")
	b := New(7).Stream("x")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("identical (seed, label) streams diverged")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v, want [0, 1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(5)
	for _, n := range []int{1, 2, 3, 7, 32, 1000} {
		for i := 0; i < 1000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d, out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	s := New(9)
	const n, draws = 8, 80000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Fatalf("bucket %d has %d draws, want ~%.0f (±5%%)", i, c, want)
		}
	}
}

func TestIntnHugeRangeHitsRejectionPath(t *testing.T) {
	// With n just above 2^62 the Lemire rejection branch triggers with
	// probability ≈ 1/2 per draw; a hundred draws exercise it while
	// results must stay in range.
	s := New(41)
	n := (1 << 62) + 1
	for i := 0; i < 100; i++ {
		v := s.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(huge) = %d out of range", v)
		}
	}
}

func TestIntRangePanicsOnInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntRange(5, 4) did not panic")
		}
	}()
	New(1).IntRange(5, 4)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntRange(t *testing.T) {
	s := New(13)
	for i := 0; i < 1000; i++ {
		v := s.IntRange(5, 9)
		if v < 5 || v > 9 {
			t.Fatalf("IntRange(5, 9) = %d", v)
		}
	}
	if got := s.IntRange(4, 4); got != 4 {
		t.Fatalf("IntRange(4, 4) = %d, want 4", got)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(17)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestNormFloat64Symmetry(t *testing.T) {
	s := New(19)
	const n = 100000
	pos := 0
	for i := 0; i < n; i++ {
		if s.NormFloat64() > 0 {
			pos++
		}
	}
	frac := float64(pos) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("P(normal > 0) = %v, want ~0.5", frac)
	}
}

func TestPerm(t *testing.T) {
	s := New(23)
	p := s.Perm(50)
	seen := make(map[int]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= 50 {
			t.Fatalf("Perm element %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("Perm repeated element %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 50 {
		t.Fatalf("Perm produced %d distinct elements, want 50", len(seen))
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	s := New(29)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, v := range xs {
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(31)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate = %v", frac)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(37)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64() = %v < 0", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestQuickIntnAlwaysInRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		m := int(n%1000) + 1
		s := New(seed)
		for i := 0; i < 20; i++ {
			v := s.Intn(m)
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSameSeedSameSequence(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < 10; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d, %d) = (%d, %d), want (%d, %d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.NormFloat64()
	}
}
