// Package rng provides a small, deterministic pseudo-random number
// generator used throughout the simulator.
//
// The simulator cannot use math/rand's global source: results must be a
// pure function of (scenario, seed) so that every paper figure is
// reproducible run-to-run and platform-to-platform, and so that
// independent components (each node's backoff draws, each link's
// shadowing draws) consume independent streams that do not perturb each
// other when one component draws more numbers than before.
//
// The generator is xoshiro256**, seeded through SplitMix64. Streams are
// derived from a parent generator by hashing a string label into the
// SplitMix64 seeding path, which keeps streams stable under code changes
// that reorder stream creation.
package rng

import (
	"fmt"
	"math"
)

// Source is a deterministic xoshiro256** pseudo-random number generator.
// The zero value is not usable; construct with New or Source.Stream.
type Source struct {
	s [4]uint64

	// cachedNorm holds the second Box-Muller variate between calls to
	// NormFloat64.
	cachedNorm    float64
	hasCachedNorm bool
}

// New returns a Source seeded from the given seed. Two Sources created
// with the same seed produce identical output sequences.
func New(seed uint64) *Source {
	var src Source
	src.reseed(seed)
	return &src
}

func (s *Source) reseed(seed uint64) {
	// SplitMix64 expansion as recommended by the xoshiro authors: it
	// guarantees the state is not all-zero and decorrelates nearby seeds.
	sm := seed
	for i := range s.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		s.s[i] = z ^ (z >> 31)
	}
	s.hasCachedNorm = false
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	x := s.s[1] * 5
	result := ((x << 7) | (x >> 57)) * 9

	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = (s.s[3] << 45) | (s.s[3] >> 19)

	return result
}

// FNV-1a parameters used to hash stream labels.
const (
	fnvOffset uint64 = 0xcbf29ce484222325
	fnvPrime  uint64 = 0x100000001b3
)

// Stream derives an independent child generator identified by label.
// The child's sequence depends only on the parent's original seed and the
// label, not on how many values the parent has produced, as long as the
// parent's state at call time is deterministic. Callers should create all
// streams up front (e.g. one per node) from a fresh parent.
func (s *Source) Stream(label string) *Source {
	// Mix the label into a 64-bit value with FNV-1a, then combine with
	// a draw from the parent so distinct parents give distinct children.
	h := fnvOffset
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= fnvPrime
	}
	return New(h ^ s.Uint64())
}

// StreamN derives the child generator identified by the label
// prefix + decimal(n), without building the string: it hashes the prefix
// bytes and then the decimal digits of n through the same FNV-1a path,
// so StreamN("policy-", 7) is bit-identical to Stream("policy-7") while
// allocating nothing. Experiment setup derives one stream per node from
// labels of exactly this shape; the equivalence is pinned by a test so
// recorded results stay reproducible across the API change.
func (s *Source) StreamN(prefix string, n uint64) *Source {
	h := fnvOffset
	for i := 0; i < len(prefix); i++ {
		h ^= uint64(prefix[i])
		h *= fnvPrime
	}
	var digits [20]byte // enough for 2^64-1
	i := len(digits)
	for {
		i--
		digits[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	for ; i < len(digits); i++ {
		h ^= uint64(digits[i])
		h *= fnvPrime
	}
	return New(h ^ s.Uint64())
}

// Float64 returns a uniform float64 in the half-open interval [0, 1).
func (s *Source) Float64() float64 {
	// 53 high bits give a uniformly spaced dyadic rational in [0,1).
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	// Lemire's multiply-shift rejection method: unbiased and avoids
	// a modulo in the common case.
	un := uint64(n)
	v := s.Uint64()
	hi, lo := mul64(v, un)
	if lo < un {
		threshold := -un % un
		for lo < threshold {
			v = s.Uint64()
			hi, lo = mul64(v, un)
		}
	}
	_ = lo
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32

	t := aLo * bLo
	lo = t & mask32
	carry := t >> 32

	t = aHi*bLo + carry
	mid1 := t & mask32
	hi = t >> 32

	t = aLo*bHi + mid1
	lo |= (t & mask32) << 32
	hi += t >> 32

	hi += aHi * bHi
	return hi, lo
}

// IntRange returns a uniform int in the closed interval [lo, hi].
// It panics if hi < lo.
func (s *Source) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange called with hi < lo")
	}
	return lo + s.Intn(hi-lo+1)
}

// NormBound is a hard bound on |NormFloat64()|: the Box-Muller radius
// sqrt(-2·ln u) is maximised by the smallest uniform this generator can
// produce, u = 2⁻⁵³, giving sqrt(106·ln 2) ≈ 8.57179, and the sin/cos
// factor has magnitude at most 1. No draw can ever exceed this, so a
// threshold test proven against mean ± NormBound·σ holds for every
// realisable sample — which is what lets the medium's fast path skip
// work for out-of-range node pairs without consulting the draw.
const NormBound = 8.5718

// NormFloat64 returns a standard normally distributed float64
// (mean 0, standard deviation 1) using the Box-Muller transform.
// Its magnitude is strictly less than NormBound.
func (s *Source) NormFloat64() float64 {
	if s.hasCachedNorm {
		s.hasCachedNorm = false
		return s.cachedNorm
	}
	var u float64
	//detlint:allow floateq -- rejection sampling: Float64 can return exactly 0, which Log cannot take
	for u == 0 {
		u = s.Float64()
	}
	v := s.Float64()
	r := math.Sqrt(-2 * math.Log(u))
	theta := 2 * math.Pi * v
	s.cachedNorm = r * math.Sin(theta)
	s.hasCachedNorm = true
	return r * math.Cos(theta)
}

// Counter-based (stateless) draws, used by the medium's channel model
// v2: every shadowing sample is a pure function of a 64-bit key and a
// counter, so skipping a sample costs nothing and no sample depends on
// the order in which others are drawn. Keys are derived by chaining
// Mix64 over the identifying tuple, e.g.
//
//	pair  := Mix64(Mix64(base, txID), rxID)
//	frame := Mix64(pair, txFrameIdx)
//	x     := CounterNorm(frame, segIdx)

// Mix64 combines a key with a value into a new, well-mixed 64-bit key.
// It is the SplitMix64 finalizer applied to key + (v+1)·γ (γ the golden
// gamma), giving full avalanche: chaining Mix64 over a tuple of IDs
// yields statistically independent keys per tuple.
func Mix64(key, v uint64) uint64 {
	return Mix64Pre(key, Mix64Delta(v))
}

// Mix64Delta returns the additive contribution of v to Mix64's input —
// (v+1)·γ. Hot loops that derive many keys from one value (the v2
// medium derives one key per feasible observer from a single frame
// index) hoist the multiply out of the loop:
//
//	delta := Mix64Delta(frameIdx)       // once per transmission
//	key   := Mix64Pre(pairKey, delta)   // per observer: one add + finalize
//
// Mix64Pre(key, Mix64Delta(v)) ≡ Mix64(key, v) bit-for-bit (pinned by
// TestMix64BatchedIdentity), so batching never changes a draw.
func Mix64Delta(v uint64) uint64 {
	return (v + 1) * 0x9e3779b97f4a7c15
}

// Mix64Pre is Mix64 with the value contribution already in delta form;
// see Mix64Delta.
func Mix64Pre(key, delta uint64) uint64 {
	z := key + delta
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// CounterNorm returns a standard normal draw identified by (key, ctr):
// a stateless, order-independent counterpart of NormFloat64. The draw
// maps the mixed counter word to a centered uniform in (0, 1) — 52 high
// bits plus a half-ulp offset, so u ∈ [2⁻⁵³, 1−2⁻⁵³], with both
// endpoints exactly representable (53 bits would round the upper
// extreme to 1.0) — and inverts the normal CDF. |Φ⁻¹(2⁻⁵³)| ≈ 8.21, so
// the magnitude is strictly below NormBound (pinned by
// TestCounterNormBound); the medium's out-of-range pruning is therefore
// exactly as sound for counter draws as for the sequential Box-Muller
// stream.
func CounterNorm(key, ctr uint64) float64 {
	return InvNormCDF(CounterUniform(key, ctr))
}

// CounterUniform returns the uniform underlying CounterNorm(key, ctr).
// Exposing it lets callers test thresholds in uniform space — compare u
// against a precomputed Φ((thresh−mean)/σ) — and invert the CDF only
// for draws that matter; monotonicity of Φ makes the comparison exactly
// equivalent to comparing CounterNorm against (thresh−mean)/σ.
func CounterUniform(key, ctr uint64) float64 {
	return (float64(Mix64(key, ctr)>>12) + 0.5) * 0x1p-52
}

// NormCDF returns Φ(z), the standard normal CDF — the inverse companion
// of InvNormCDF for precomputing uniform-space thresholds.
func NormCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// InvNormCDF returns Φ⁻¹(p) for the standard normal distribution using
// the Acklam rational approximation (relative error < 1.15e-9) — ample
// for both threshold calibration (phys.ThresholdFor) and counter-based
// shadowing draws. It panics outside (0, 1).
func InvNormCDF(p float64) float64 {
	if !(p > 0 && p < 1) { // negated form also rejects NaN
		panic(fmt.Sprintf("rng: InvNormCDF(%v) out of (0,1)", p))
	}
	const (
		a1 = -39.69683028665376
		a2 = 220.9460984245205
		a3 = -275.9285104469687
		a4 = 138.3577518672690
		a5 = -30.66479806614716
		a6 = 2.506628277459239

		b1 = -54.47609879822406
		b2 = 161.5858368580409
		b3 = -155.6989798598866
		b4 = 66.80131188771972
		b5 = -13.28068155288572

		c1 = -0.007784894002430293
		c2 = -0.3223964580411365
		c3 = -2.400758277161838
		c4 = -2.549732539343734
		c5 = 4.374664141464968
		c6 = 2.938163982698783

		d1 = 0.007784695709041462
		d2 = 0.3224671290700398
		d3 = 2.445134137142996
		d4 = 3.754408661907416

		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		return (((((a1*r+a2)*r+a3)*r+a4)*r+a5)*r + a6) * q /
			(((((b1*r+b2)*r+b3)*r+b4)*r+b5)*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the provided
// swap function.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, s.Intn(i+1))
	}
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1
// (mean 1). Scale by 1/λ for other rates.
func (s *Source) ExpFloat64() float64 {
	var u float64
	//detlint:allow floateq -- rejection sampling: Float64 can return exactly 0, which Log cannot take
	for u == 0 {
		u = s.Float64()
	}
	return -math.Log(u)
}
