package traffic

import (
	"testing"

	"dcfguard/internal/mac"
	"dcfguard/internal/medium"
	"dcfguard/internal/phys"
	"dcfguard/internal/rng"
	"dcfguard/internal/sim"
)

func detRadio() phys.Radio {
	m := phys.DefaultShadowing()
	m.SigmaDB = 0
	return phys.CalibratedRadio(m, 24.5, 250, 0.5, 550, 0.5, 2_000_000)
}

func TestBackloggedKeepsQueueFull(t *testing.T) {
	var sched sim.Scheduler
	m := phys.DefaultShadowing()
	m.SigmaDB = 0
	med := medium.New(&sched, medium.Config{Model: m}, rng.New(1))

	var src *Backlogged
	var sender *mac.Node
	cb := mac.Callbacks{OnQueueSpace: func(now sim.Time) { src.Refill(now) }}
	sender = mac.NewNode(1, mac.DefaultParams(), &sched, med, mac.NewStandardPolicy(rng.New(2)), nil, cb)
	med.Attach(1, phys.Point{}, detRadio(), sender)
	recv := mac.NewNode(2, mac.DefaultParams(), &sched, med, mac.NewStandardPolicy(rng.New(3)), nil, mac.Callbacks{})
	med.Attach(2, phys.Point{X: 100}, detRadio(), recv)

	src = NewBacklogged(sender, 2, 512, 8)
	src.Start()
	if sender.QueueLen() != 8 {
		t.Fatalf("queue depth after Start = %d, want 8", sender.QueueLen())
	}
	sched.Run(5 * sim.Second)
	succ, _, _ := sender.Counters()
	if succ < 1000 {
		t.Fatalf("backlogged sender completed %d packets in 5 s, want saturation (>1000)", succ)
	}
	if sender.QueueLen() == 0 {
		t.Fatal("queue drained; source failed to stay backlogged")
	}
}

func TestCBRInterval(t *testing.T) {
	var sched sim.Scheduler
	m := phys.DefaultShadowing()
	m.SigmaDB = 0
	med := medium.New(&sched, medium.Config{Model: m}, rng.New(1))
	n := mac.NewNode(1, mac.DefaultParams(), &sched, med, mac.NewStandardPolicy(rng.New(2)), nil, mac.Callbacks{})
	med.Attach(1, phys.Point{}, detRadio(), n)

	// 512 B at 500 Kbps: 512·8/500000 s = 8.192 ms.
	c := NewCBR(&sched, n, 2, 512, 500_000)
	if got, want := c.Interval(), sim.Time(8192)*sim.Microsecond; got != want {
		t.Fatalf("interval = %v, want %v", got, want)
	}
}

func TestCBRGeneratesAtRate(t *testing.T) {
	var sched sim.Scheduler
	m := phys.DefaultShadowing()
	m.SigmaDB = 0
	med := medium.New(&sched, medium.Config{Model: m}, rng.New(1))
	sender := mac.NewNode(1, mac.DefaultParams(), &sched, med, mac.NewStandardPolicy(rng.New(2)), nil, mac.Callbacks{})
	med.Attach(1, phys.Point{}, detRadio(), sender)
	recv := mac.NewNode(2, mac.DefaultParams(), &sched, med, mac.NewStandardPolicy(rng.New(3)), nil, mac.Callbacks{})
	med.Attach(2, phys.Point{X: 100}, detRadio(), recv)

	c := NewCBR(&sched, sender, 2, 512, 500_000)
	c.Start()
	sched.Run(10 * sim.Second)

	gen, refused := c.Counters()
	// 10 s / 8.192 ms ≈ 1220 packets.
	if gen < 1200 || gen > 1240 {
		t.Fatalf("generated %d packets, want ≈1220", gen)
	}
	// 500 Kbps offered on a 2 Mbps channel with one flow: no refusals.
	if refused != 0 {
		t.Fatalf("refused %d packets at an undersubscribed queue", refused)
	}
	succ, _, _ := sender.Counters()
	if succ < 1150 {
		t.Fatalf("delivered %d of %d generated", succ, gen)
	}
}

func TestCBROverloadRefusesAtQueue(t *testing.T) {
	var sched sim.Scheduler
	m := phys.DefaultShadowing()
	m.SigmaDB = 0
	med := medium.New(&sched, medium.Config{Model: m}, rng.New(1))
	sender := mac.NewNode(1, mac.DefaultParams(), &sched, med, mac.NewStandardPolicy(rng.New(2)), nil, mac.Callbacks{})
	med.Attach(1, phys.Point{}, detRadio(), sender)
	recv := mac.NewNode(2, mac.DefaultParams(), &sched, med, mac.NewStandardPolicy(rng.New(3)), nil, mac.Callbacks{})
	med.Attach(2, phys.Point{X: 100}, detRadio(), recv)

	// 2 Mbps offered: far beyond the ~1.2 Mbps the exchange overheads allow.
	c := NewCBR(&sched, sender, 2, 512, 2_000_000)
	c.Start()
	sched.Run(5 * sim.Second)
	_, refused := c.Counters()
	if refused == 0 {
		t.Fatal("oversubscribed CBR never hit the queue cap")
	}
}

func TestBackloggedDepthBeyondQueueCap(t *testing.T) {
	// A refill depth above the MAC queue capacity must stop at the cap
	// rather than loop forever.
	var sched sim.Scheduler
	m := phys.DefaultShadowing()
	m.SigmaDB = 0
	med := medium.New(&sched, medium.Config{Model: m}, rng.New(1))
	params := mac.DefaultParams()
	params.QueueCap = 4
	sender := mac.NewNode(1, params, &sched, med, mac.NewStandardPolicy(rng.New(2)), nil, mac.Callbacks{})
	med.Attach(1, phys.Point{}, detRadio(), sender)

	src := NewBacklogged(sender, 2, 512, 100)
	src.Start()
	if sender.QueueLen() != 4 {
		t.Fatalf("queue length %d, want capped at 4", sender.QueueLen())
	}
	src.Refill(0)
	if sender.QueueLen() != 4 {
		t.Fatalf("refill overfilled to %d", sender.QueueLen())
	}
}

func TestBackloggedValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid Backlogged did not panic")
		}
	}()
	NewBacklogged(nil, 2, 0, 1)
}

func TestCBRValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid CBR did not panic")
		}
	}()
	NewCBR(nil, nil, 2, 512, 0)
}
