// Package traffic provides the application-layer load generators used
// by the paper's experiments: backlogged sources (the contending
// senders, which always have a packet queued) and constant-bit-rate
// sources (the interferer flows A→B and C→D, 500 Kbps).
package traffic

import (
	"fmt"

	"dcfguard/internal/frame"
	"dcfguard/internal/mac"
	"dcfguard/internal/sim"
)

// Backlogged keeps a node's interface queue topped up so the sender
// always contends, as in all of the paper's throughput experiments.
// Wire Refill into the node's OnQueueSpace callback and call Start once.
type Backlogged struct {
	node  *mac.Node
	dst   frame.NodeID
	bytes int
	depth int
}

// NewBacklogged builds a backlogged source sending packets of the given
// payload size to dst, keeping up to depth packets queued.
func NewBacklogged(node *mac.Node, dst frame.NodeID, bytes, depth int) *Backlogged {
	if bytes <= 0 || depth < 1 {
		panic(fmt.Sprintf("traffic: Backlogged(bytes=%d, depth=%d)", bytes, depth))
	}
	return &Backlogged{node: node, dst: dst, bytes: bytes, depth: depth}
}

// Start fills the queue to the configured depth.
func (b *Backlogged) Start() {
	for i := 0; i < b.depth; i++ {
		if !b.node.Enqueue(b.dst, b.bytes) {
			return
		}
	}
}

// Refill tops the queue back up; call it from mac.Callbacks.OnQueueSpace.
func (b *Backlogged) Refill(sim.Time) {
	for b.node.QueueLen() < b.depth {
		if !b.node.Enqueue(b.dst, b.bytes) {
			return
		}
	}
}

// CBR enqueues fixed-size packets at a constant bit rate, dropping at
// the interface queue when the MAC cannot drain fast enough (standard
// CBR-over-UDP semantics).
type CBR struct {
	sched    *sim.Scheduler
	node     *mac.Node
	dst      frame.NodeID
	bytes    int
	interval sim.Time

	generated uint64
	refused   uint64
}

// NewCBR builds a CBR source with the given payload size and rate in
// bits per second. The inter-packet interval is bytes·8 / rate.
func NewCBR(sched *sim.Scheduler, node *mac.Node, dst frame.NodeID, bytes int, rateBps int64) *CBR {
	if bytes <= 0 || rateBps <= 0 {
		panic(fmt.Sprintf("traffic: CBR(bytes=%d, rate=%d)", bytes, rateBps))
	}
	interval := sim.Time(int64(bytes) * 8 * int64(sim.Second) / rateBps)
	return &CBR{sched: sched, node: node, dst: dst, bytes: bytes, interval: interval}
}

// Interval returns the inter-packet interval.
func (c *CBR) Interval() sim.Time { return c.interval }

// Counters returns (packets generated, packets refused by a full queue).
func (c *CBR) Counters() (generated, refused uint64) { return c.generated, c.refused }

// Start begins generation at the current instant and continues until the
// scheduler's horizon ends the run.
func (c *CBR) Start() {
	tickEvent(c, c.sched.Now())
}

// tickEvent generates one packet and re-arms itself; as a package-level
// func driven through AfterArg it allocates nothing per packet.
func tickEvent(arg any, _ sim.Time) {
	c := arg.(*CBR)
	c.generated++
	if !c.node.Enqueue(c.dst, c.bytes) {
		c.refused++
	}
	c.sched.AfterArg(c.interval, tickEvent, c)
}
