// Package analytic implements a Bianchi-style analytical model of
// saturated 802.11 DCF with RTS/CTS (G. Bianchi, "Performance Analysis
// of the IEEE 802.11 Distributed Coordination Function", JSAC 2000),
// adapted to this simulator's exact frame timings. It provides an
// independent check of the DCF substrate: the simulator's saturation
// throughput and collision probability must track the model, which the
// test suite verifies.
package analytic

import (
	"fmt"
	"math"

	"dcfguard/internal/frame"
	"dcfguard/internal/mac"
	"dcfguard/internal/sim"
)

// Model describes a saturated single-hop cell: n stations, all in range,
// all backlogged toward one receiver, RTS/CTS always on.
type Model struct {
	// N is the number of contending stations.
	N int
	// MAC supplies slot, SIFS/DIFS and contention-window parameters.
	MAC mac.Params
	// PayloadBytes is the DATA payload (the paper uses 512).
	PayloadBytes int
	// BitRate is the channel rate in bits/s (the paper uses 2 Mbps).
	BitRate int64
}

// Validate reports whether the model is well-formed.
func (m Model) Validate() error {
	switch {
	case m.N < 1:
		return fmt.Errorf("analytic: N = %d", m.N)
	case m.PayloadBytes <= 0:
		return fmt.Errorf("analytic: payload = %d", m.PayloadBytes)
	case m.BitRate <= 0:
		return fmt.Errorf("analytic: bit rate = %d", m.BitRate)
	}
	return m.MAC.Validate()
}

// stages returns the number of contention-window doubling stages before
// CW saturates at CWMax.
func (m Model) stages() int {
	s := 0
	cw := m.MAC.CWMin
	for cw < m.MAC.CWMax {
		cw = (cw+1)*2 - 1
		s++
	}
	return s
}

// Tau solves the Bianchi fixed point and returns τ (the probability a
// station transmits in a random slot) and p (the conditional collision
// probability). For N = 1 it returns the contention-free values.
func (m Model) Tau() (tau, p float64) {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	w := float64(m.MAC.CWMin + 1)
	mm := float64(m.stages())
	if m.N == 1 {
		// Alone on the channel: never collides; mean backoff (W-1)/2.
		return 2 / (w + 1), 0
	}
	// Damped fixed-point iteration on τ.
	tau = 0.1
	for i := 0; i < 10000; i++ {
		p = 1 - math.Pow(1-tau, float64(m.N-1))
		next := 2 * (1 - 2*p) /
			((1-2*p)*(w+1) + p*w*(1-math.Pow(2*p, mm)))
		tau = 0.5*tau + 0.5*next
		if math.Abs(next-tau) < 1e-13 {
			break
		}
	}
	p = 1 - math.Pow(1-tau, float64(m.N-1))
	return tau, p
}

// slotTimes returns (Ts, Tc, sigma): the durations of a successful
// exchange, a collision, and an idle slot, using this simulator's exact
// frame timings (including the 2-slot CTS-timeout slack colliding
// senders wait before resuming contention).
func (m Model) slotTimes() (ts, tc, sigma float64) {
	rate := m.BitRate
	rtsAir := frame.Airtime(frame.RTSBytes, rate)
	ctsAir := frame.Airtime(frame.CTSBytes, rate)
	ackAir := frame.Airtime(frame.AckBytes, rate)
	dataAir := frame.Airtime(frame.DataOverhead+m.PayloadBytes, rate)

	tsT := rtsAir + m.MAC.SIFS + ctsAir + m.MAC.SIFS + dataAir +
		m.MAC.SIFS + ackAir + m.MAC.DIFS()
	tcT := rtsAir + m.MAC.SIFS + ctsAir + 2*m.MAC.SlotTime + m.MAC.DIFS()
	return seconds(tsT), seconds(tcT), seconds(m.MAC.SlotTime)
}

func seconds(t sim.Time) float64 { return t.Seconds() }

// SaturationThroughputBps returns the aggregate goodput (payload bits
// per second) the cell sustains at saturation.
func (m Model) SaturationThroughputBps() float64 {
	tau, _ := m.Tau()
	n := float64(m.N)
	pTr := 1 - math.Pow(1-tau, n)
	//detlint:allow floateq -- division guard: pTr is exactly 0 only in the degenerate tau=0 model
	if pTr == 0 {
		return 0
	}
	pS := n * tau * math.Pow(1-tau, n-1) / pTr

	ts, tc, sigma := m.slotTimes()
	payloadBits := float64(m.PayloadBytes) * 8
	denom := (1-pTr)*sigma + pTr*pS*ts + pTr*(1-pS)*tc
	return pS * pTr * payloadBits / denom
}

// PerNodeKbps returns the per-station saturation goodput in Kbps.
func (m Model) PerNodeKbps() float64 {
	return m.SaturationThroughputBps() / float64(m.N) / 1000
}

// CollisionProbability returns p, the probability a transmission
// attempt collides.
func (m Model) CollisionProbability() float64 {
	_, p := m.Tau()
	return p
}

// MaxGoodputBps returns the contention-free channel efficiency bound:
// payload bits over one full exchange duration (no backoff, no
// collisions). Useful as a sanity ceiling in validation.
func (m Model) MaxGoodputBps() float64 {
	ts, _, _ := m.slotTimes()
	return float64(m.PayloadBytes) * 8 / ts
}
