package analytic

import (
	"fmt"
	"math"
	"testing"

	"dcfguard/internal/experiment"
	"dcfguard/internal/mac"
	"dcfguard/internal/sim"
)

func model(n int) Model {
	return Model{N: n, MAC: mac.DefaultParams(), PayloadBytes: 512, BitRate: 2_000_000}
}

func TestStages(t *testing.T) {
	// CWMin 31 → 63 → 127 → 255 → 511 → 1023 = CWMax: 5 stages.
	if got := model(4).stages(); got != 5 {
		t.Fatalf("stages = %d, want 5", got)
	}
}

func TestTauSingleStation(t *testing.T) {
	tau, p := model(1).Tau()
	if p != 0 {
		t.Fatalf("p = %v for a lone station", p)
	}
	if tau <= 0 || tau >= 1 {
		t.Fatalf("tau = %v", tau)
	}
}

func TestTauFixedPointConverges(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 32, 64} {
		tau, p := model(n).Tau()
		if tau <= 0 || tau >= 1 || p <= 0 || p >= 1 {
			t.Fatalf("n=%d: tau=%v p=%v out of (0,1)", n, tau, p)
		}
		// The fixed point must be self-consistent.
		w := 32.0
		want := 2 * (1 - 2*p) / ((1-2*p)*(w+1) + p*w*(1-math.Pow(2*p, 5)))
		if math.Abs(tau-want) > 1e-9 {
			t.Fatalf("n=%d: tau=%v not at fixed point (want %v)", n, tau, want)
		}
	}
}

func TestTauDecreasesWithN(t *testing.T) {
	prev := 1.0
	for _, n := range []int{2, 4, 8, 16, 32, 64} {
		tau, _ := model(n).Tau()
		if tau >= prev {
			t.Fatalf("tau did not decrease at n=%d: %v >= %v", n, tau, prev)
		}
		prev = tau
	}
}

func TestCollisionProbabilityIncreasesWithN(t *testing.T) {
	prev := 0.0
	for _, n := range []int{2, 4, 8, 16, 32, 64} {
		p := model(n).CollisionProbability()
		if p <= prev {
			t.Fatalf("p did not increase at n=%d: %v <= %v", n, p, prev)
		}
		prev = p
	}
}

func TestThroughputBelowCeiling(t *testing.T) {
	for _, n := range []int{1, 2, 8, 32} {
		m := model(n)
		s := m.SaturationThroughputBps()
		if s <= 0 || s >= m.MaxGoodputBps() {
			t.Fatalf("n=%d: throughput %v outside (0, %v)", n, s, m.MaxGoodputBps())
		}
	}
}

func TestThroughputCeilingValue(t *testing.T) {
	// One full exchange: 276+10+256+10+2352+10+256+50 µs = 3220 µs for
	// 4096 payload bits → 1.272 Mbps.
	got := model(8).MaxGoodputBps()
	if math.Abs(got-4096/3220e-6) > 1 {
		t.Fatalf("ceiling = %v, want ≈1.272e6", got)
	}
}

func TestAggregateThroughputDegradesGracefully(t *testing.T) {
	// Total saturation goodput falls slowly with n (collision overhead),
	// but not catastrophically.
	s8 := model(8).SaturationThroughputBps()
	s64 := model(64).SaturationThroughputBps()
	if s64 >= s8 {
		t.Fatalf("throughput should fall with contention: %v vs %v", s64, s8)
	}
	if s64 < 0.6*s8 {
		t.Fatalf("throughput collapsed too hard: %v vs %v", s64, s8)
	}
}

// TestSimulatorMatchesAnalyticalModel is the validation test DESIGN.md
// promises: the hand-rolled DCF simulator must track the Bianchi-style
// model within a modest tolerance across network sizes.
func TestSimulatorMatchesAnalyticalModel(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation comparison skipped in -short mode")
	}
	for _, n := range []int{2, 4, 8, 16} {
		m := model(n)
		predicted := m.PerNodeKbps()

		s := experiment.DefaultScenario()
		s.Duration = 10 * sim.Second
		s.Topo = experiment.StarTopo(n, false)
		s.Protocol = experiment.Protocol80211
		r, err := experiment.Run(s, 1)
		if err != nil {
			t.Fatal(err)
		}
		measured := r.AvgHonestKbps

		ratio := measured / predicted
		if ratio < 0.85 || ratio > 1.15 {
			t.Errorf("n=%d: simulated %.1f Kbps/node vs model %.1f (ratio %.3f), want within 15%%",
				n, measured, predicted, ratio)
		}
	}
}

func TestValidateAgainstModelTable(t *testing.T) {
	cfg := experiment.QuickConfig()
	cfg.Duration = 3 * sim.Second
	cfg.Seeds = experiment.Seeds(2)
	cfg.NetworkSizes = []int{2, 8}
	tb, err := ValidateAgainstModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		ratio := mustFloat(t, row[3])
		if ratio < 0.8 || ratio > 1.2 {
			t.Fatalf("n=%s ratio %v outside sanity band", row[0], ratio)
		}
	}
}

func mustFloat(t *testing.T, s string) float64 {
	t.Helper()
	var v float64
	if _, err := fmt.Sscanf(s, "%g", &v); err != nil {
		t.Fatalf("cell %q: %v", s, err)
	}
	return v
}

func TestValidate(t *testing.T) {
	bad := []Model{
		{N: 0, MAC: mac.DefaultParams(), PayloadBytes: 512, BitRate: 2e6},
		{N: 2, MAC: mac.DefaultParams(), PayloadBytes: 0, BitRate: 2e6},
		{N: 2, MAC: mac.DefaultParams(), PayloadBytes: 512, BitRate: 0},
	}
	for i, m := range bad {
		if m.Validate() == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := model(2).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTauPanicsOnInvalidModel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid model did not panic")
		}
	}()
	Model{}.Tau()
}
