package analytic

import (
	"fmt"
	"strconv"

	"dcfguard/internal/experiment"
)

// ValidateAgainstModel runs the honest saturated star at each network
// size under plain 802.11 and tabulates simulated per-node throughput
// against this package's analytical prediction. A healthy DCF substrate
// keeps the ratio near 1 at every size.
func ValidateAgainstModel(cfg experiment.Config) (*experiment.Table, error) {
	t := &experiment.Table{
		Title: "Validation: simulated 802.11 saturation throughput vs Bianchi-style model (Kbps/node)",
		Columns: []string{"senders", "model", "simulated", "ratio",
			"model p(collision)"},
		Notes: []string{
			"honest zero-flow star, RTS/CTS on; model uses this simulator's exact frame timings",
		},
	}
	for _, n := range cfg.NetworkSizes {
		m := Model{N: n, MAC: experiment.DefaultScenario().MAC,
			PayloadBytes: 512, BitRate: 2_000_000}
		predicted := m.PerNodeKbps()

		s := experiment.DefaultScenario()
		s.Name = fmt.Sprintf("validate-%d", n)
		s.Duration = cfg.Duration
		s.Topo = experiment.StarTopo(n, false)
		s.Protocol = experiment.Protocol80211
		agg, err := experiment.RunSeeds(s, cfg.Seeds)
		if err != nil {
			return nil, err
		}
		measured := agg.AvgHonestKbps.Mean
		t.AddRow(strconv.Itoa(n),
			fmt.Sprintf("%.1f", predicted),
			fmt.Sprintf("%.1f", measured),
			fmt.Sprintf("%.3f", measured/predicted),
			fmt.Sprintf("%.3f", m.CollisionProbability()))
	}
	return t, nil
}
