package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestRunExecutesInTimeOrder(t *testing.T) {
	var s Scheduler
	var got []Time
	for _, d := range []Time{5 * Microsecond, 1 * Microsecond, 3 * Microsecond} {
		d := d
		s.After(d, func() { got = append(got, s.Now()) })
	}
	s.Run(Second)
	want := []Time{1 * Microsecond, 3 * Microsecond, 5 * Microsecond}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEqualTimesFIFO(t *testing.T) {
	var s Scheduler
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(Millisecond, func() { order = append(order, i) })
	}
	s.Run(Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of scheduling order: %v", order)
		}
	}
}

func TestCancel(t *testing.T) {
	var s Scheduler
	fired := false
	ev := s.After(Millisecond, func() { fired = true })
	s.Cancel(ev)
	s.Run(Second)
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
	// Cancelling again must be a no-op, as must a zero ref.
	s.Cancel(ev)
	s.Cancel(EventRef{})
}

func TestCancelMiddleOfHeap(t *testing.T) {
	var s Scheduler
	var fired []int
	events := make([]EventRef, 20)
	for i := range events {
		i := i
		events[i] = s.At(Time(i)*Microsecond, func() { fired = append(fired, i) })
	}
	for i := 1; i < 20; i += 2 {
		s.Cancel(events[i])
	}
	s.Run(Second)
	if len(fired) != 10 {
		t.Fatalf("fired %d events, want 10", len(fired))
	}
	for _, v := range fired {
		if v%2 != 0 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
}

func TestRunHorizon(t *testing.T) {
	var s Scheduler
	fired := 0
	s.At(1*Second, func() { fired++ })
	s.At(3*Second, func() { fired++ })
	s.Run(2 * Second)
	if fired != 1 {
		t.Fatalf("fired %d events before horizon, want 1", fired)
	}
	if s.Now() != 2*Second {
		t.Fatalf("clock at %v after Run, want 2s", s.Now())
	}
	s.Run(4 * Second)
	if fired != 2 {
		t.Fatalf("fired %d events total, want 2", fired)
	}
}

func TestClockAdvancesOnlyToHorizon(t *testing.T) {
	var s Scheduler
	s.Run(5 * Second)
	if s.Now() != 5*Second {
		t.Fatalf("empty Run left clock at %v, want 5s", s.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	var s Scheduler
	s.At(Second, func() {})
	s.Run(2 * Second)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(Millisecond, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	var s Scheduler
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	s.After(-1, func() {})
}

func TestEventsScheduledDuringRun(t *testing.T) {
	var s Scheduler
	var times []Time
	s.After(Microsecond, func() {
		times = append(times, s.Now())
		s.After(Microsecond, func() {
			times = append(times, s.Now())
		})
	})
	s.Run(Second)
	if len(times) != 2 || times[0] != Microsecond || times[1] != 2*Microsecond {
		t.Fatalf("chained events fired at %v", times)
	}
}

func TestStop(t *testing.T) {
	var s Scheduler
	fired := 0
	s.After(1*Microsecond, func() { fired++; s.Stop() })
	s.After(2*Microsecond, func() { fired++ })
	s.Run(Second)
	if fired != 1 {
		t.Fatalf("fired %d events after Stop, want 1", fired)
	}
}

func TestDrain(t *testing.T) {
	var s Scheduler
	fired := 0
	s.At(10*Second, func() { fired++ })
	s.At(20*Second, func() { fired++ })
	s.Drain()
	if fired != 2 {
		t.Fatalf("Drain fired %d, want 2", fired)
	}
	if s.Now() != 20*Second {
		t.Fatalf("clock at %v after Drain", s.Now())
	}
}

func TestPending(t *testing.T) {
	var s Scheduler
	if s.Pending() != 0 {
		t.Fatal("fresh scheduler has pending events")
	}
	s.At(Second, func() {})
	s.At(2*Second, func() {})
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", s.Pending())
	}
	s.Run(Second)
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d after partial run, want 1", s.Pending())
	}
}

func TestEventsFiredCounter(t *testing.T) {
	var s Scheduler
	for i := 0; i < 5; i++ {
		s.At(Time(i)*Microsecond, func() {})
	}
	s.Run(Second)
	if s.EventsFired() != 5 {
		t.Fatalf("EventsFired = %d, want 5", s.EventsFired())
	}
}

func TestQuickHeapOrdering(t *testing.T) {
	f := func(delays []uint32) bool {
		var s Scheduler
		var fired []Time
		for _, d := range delays {
			s.After(Time(d%1000000)*Microsecond, func() {
				fired = append(fired, s.Now())
			})
		}
		s.Drain()
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimerFires(t *testing.T) {
	var s Scheduler
	fired := false
	tm := NewTimer(&s, func() { fired = true })
	tm.Reset(Millisecond)
	if !tm.Armed() {
		t.Fatal("timer not armed after Reset")
	}
	if tm.Deadline() != Millisecond {
		t.Fatalf("Deadline = %v, want 1ms", tm.Deadline())
	}
	s.Run(Second)
	if !fired {
		t.Fatal("timer did not fire")
	}
	if tm.Armed() {
		t.Fatal("timer still armed after firing")
	}
}

func TestTimerStop(t *testing.T) {
	var s Scheduler
	fired := false
	tm := NewTimer(&s, func() { fired = true })
	tm.Reset(Millisecond)
	tm.Stop()
	s.Run(Second)
	if fired {
		t.Fatal("stopped timer fired")
	}
	tm.Stop() // no-op on unarmed timer
}

func TestTimerResetReplacesPending(t *testing.T) {
	var s Scheduler
	var at Time
	tm := NewTimer(&s, func() { at = s.Now() })
	tm.Reset(Millisecond)
	tm.Reset(5 * Millisecond)
	s.Run(Second)
	if at != 5*Millisecond {
		t.Fatalf("timer fired at %v, want 5ms (reset must replace pending expiry)", at)
	}
}

func TestTimerResetAt(t *testing.T) {
	var s Scheduler
	var at Time
	tm := NewTimer(&s, func() { at = s.Now() })
	s.At(Millisecond, func() { tm.ResetAt(3 * Millisecond) })
	s.Run(Second)
	if at != 3*Millisecond {
		t.Fatalf("timer fired at %v, want 3ms", at)
	}
}

func TestTimerDeadlinePanicsUnarmed(t *testing.T) {
	var s Scheduler
	tm := NewTimer(&s, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("Deadline on unarmed timer did not panic")
		}
	}()
	_ = tm.Deadline()
}

func TestTimeHelpers(t *testing.T) {
	if Second != 1000*Millisecond || Millisecond != 1000*Microsecond {
		t.Fatal("time unit constants inconsistent")
	}
	tt := Time(1500 * Millisecond)
	if tt.Seconds() != 1.5 {
		t.Fatalf("Seconds() = %v", tt.Seconds())
	}
	if got := tt.String(); got != "1.500000s" {
		t.Fatalf("String() = %q", got)
	}
	if Time(0).Add(tt.Duration()) != tt {
		t.Fatal("Add/Duration roundtrip failed")
	}
	if tt.Sub(Time(500*Millisecond)) != Second.Duration() {
		t.Fatal("Sub failed")
	}
}

func BenchmarkScheduleAndFire(b *testing.B) {
	var s Scheduler
	for i := 0; i < b.N; i++ {
		s.After(Microsecond, func() {})
		s.Run(s.Now() + Microsecond)
	}
}
