package sim

import "sort"

// Barrier fan-in for side channels of a sharded run.
//
// The sharded kernel (shard.go) proves the *event stream* is a pure
// function of the model, but several layers observe events through side
// channels that are ordered logs rather than keyed events: the frame
// trace recorder, the obs record bus, delivery taps. Run those through
// one shared sink from concurrent shard goroutines and the log order —
// and with it every golden — becomes an artifact of the interleaving
// (and a data race besides).
//
// Fanin[T] restores the serial order. Each shard goroutine appends its
// emissions to a private buffer, tagged with the firing event's
// (when, key) — read from its own scheduler via Now/CurrentKey — plus a
// per-shard emission counter. At every window barrier (and once after
// the run) the coordinator calls Flush, which merges all buffers in
// (when, key, seq) order and applies them to the downstream consumer
// single-threadedly.
//
// Why the merged order equals the serial order: a serial keyed run
// fires events in global (when, key) order, and keys are unique per
// instant, so every emission with a given (when, key) tag comes from
// exactly one event on exactly one shard — the per-shard counter then
// preserves the within-event program order. Sorting the union by
// (when, key, seq) is therefore exactly the serial emission sequence.
// Windows are disjoint in time across flushes, so flushing per barrier
// (rather than once at the end) cannot split a tie group.
type Fanin[T any] struct {
	scheds []*Scheduler
	bufs   [][]emission[T]
	seq    []uint64
	// setupSeq orders emissions made outside any event (CurrentKey 0 —
	// a tag no real event can carry: owner keys set bit 63 and a fan
	// key's transmitter never equals its observer, so FanKey(0,·,0)
	// cannot occur). Those happen only during single-threaded setup,
	// where one shared counter reproduces the serial program order that
	// per-shard counters cannot.
	setupSeq uint64
	apply    func(T)

	scratch []emission[T]
}

type emission[T any] struct {
	when Time
	key  uint64
	seq  uint64
	v    T
}

// NewFanin builds a fan-in over the group's schedulers (indexed by
// shard), delivering merged values to apply. Every scheduler must be
// keyed: the merge order is defined by event keys.
func NewFanin[T any](scheds []*Scheduler, apply func(T)) *Fanin[T] {
	for _, s := range scheds {
		if !s.Keyed() {
			panic("sim: Fanin over a non-keyed scheduler")
		}
	}
	return &Fanin[T]{
		scheds: scheds,
		bufs:   make([][]emission[T], len(scheds)),
		seq:    make([]uint64, len(scheds)),
		apply:  apply,
	}
}

// Emit buffers one value from the given shard, tagged with that shard's
// currently firing event. It must be called from the shard's own
// goroutine (or from the coordinator with all shards parked) — each
// buffer is single-owner by construction, like the medium's outboxes.
// A nil receiver is a no-op, so callers can emit unconditionally.
func (f *Fanin[T]) Emit(shard int, v T) {
	if f == nil {
		return
	}
	s := f.scheds[shard]
	key := s.CurrentKey()
	var seq uint64
	if key == 0 {
		// Outside any event: single-threaded setup, shared counter.
		seq = f.setupSeq
		f.setupSeq++
	} else {
		seq = f.seq[shard]
		f.seq[shard]++
	}
	f.bufs[shard] = append(f.bufs[shard], emission[T]{
		when: s.Now(),
		key:  key,
		seq:  seq,
		v:    v,
	})
}

// Flush merges every shard's buffered emissions into (when, key, seq)
// order and applies them downstream. Coordinator-only: every shard
// goroutine must be parked (window barrier, or after Run returned). A
// nil receiver is a no-op.
func (f *Fanin[T]) Flush() {
	if f == nil {
		return
	}
	n := 0
	for _, b := range f.bufs {
		n += len(b)
	}
	if n == 0 {
		return
	}
	f.scratch = f.scratch[:0]
	for i, b := range f.bufs {
		f.scratch = append(f.scratch, b...)
		for j := range b {
			b[j] = emission[T]{} // drop references for the pool's sake
		}
		f.bufs[i] = b[:0]
	}
	m := f.scratch
	sort.Slice(m, func(a, b int) bool {
		if m[a].when != m[b].when {
			return m[a].when < m[b].when
		}
		if m[a].key != m[b].key {
			return m[a].key < m[b].key
		}
		return m[a].seq < m[b].seq
	})
	for i := range m {
		f.apply(m[i].v)
		m[i] = emission[T]{}
	}
}
