package sim

// Timer is a restartable one-shot timer bound to a scheduler. It wraps
// the schedule/cancel pattern the MAC layer uses for CTS/ACK timeouts:
// arm it when the frame is sent, stop it when the response arrives.
// The zero value is not usable; construct with NewTimer.
type Timer struct {
	sched *Scheduler
	fn    func()
	ev    *Event
}

// NewTimer returns a timer that invokes fn when it expires. The timer is
// created unarmed.
func NewTimer(sched *Scheduler, fn func()) *Timer {
	return &Timer{sched: sched, fn: fn}
}

// Reset (re)arms the timer to fire d from now, cancelling any pending
// expiry first.
func (t *Timer) Reset(d Time) {
	t.Stop()
	t.ev = t.sched.After(d, t.fire)
}

// ResetAt (re)arms the timer to fire at the absolute instant when.
func (t *Timer) ResetAt(when Time) {
	t.Stop()
	t.ev = t.sched.At(when, t.fire)
}

func (t *Timer) fire() {
	t.ev = nil
	t.fn()
}

// Stop cancels a pending expiry. Stopping an unarmed timer is a no-op.
func (t *Timer) Stop() {
	if t.ev != nil {
		t.sched.Cancel(t.ev)
		t.ev = nil
	}
}

// Armed reports whether the timer has a pending expiry.
func (t *Timer) Armed() bool { return t.ev != nil }

// Deadline returns the pending expiry instant. It panics if the timer is
// unarmed; check Armed first.
func (t *Timer) Deadline() Time {
	if t.ev == nil {
		panic("sim: Deadline on unarmed timer")
	}
	return t.ev.When()
}
