package sim

// Timer is a restartable one-shot timer bound to a scheduler. It wraps
// the schedule/cancel pattern the MAC layer uses for CTS/ACK timeouts:
// arm it when the frame is sent, stop it when the response arrives.
// The zero value is not usable; construct with NewTimer.
//
// Arming a timer allocates nothing: the expiry event comes from the
// scheduler's pool and the callback is the package-level timerFire bound
// to the timer pointer.
type Timer struct {
	sched *Scheduler
	fn    func()
	ref   EventRef
	armed bool
}

// NewTimer returns a timer that invokes fn when it expires. The timer is
// created unarmed.
func NewTimer(sched *Scheduler, fn func()) *Timer {
	return &Timer{sched: sched, fn: fn}
}

// timerFire is the pooled-event trampoline for all timers.
func timerFire(arg any, _ Time) {
	t := arg.(*Timer)
	t.armed = false
	t.ref = EventRef{}
	t.fn()
}

// Reset (re)arms the timer to fire d from now, cancelling any pending
// expiry first.
func (t *Timer) Reset(d Time) {
	t.Stop()
	t.ref = t.sched.AfterArg(d, timerFire, t)
	t.armed = true
}

// ResetAt (re)arms the timer to fire at the absolute instant when.
func (t *Timer) ResetAt(when Time) {
	t.Stop()
	t.ref = t.sched.AtArg(when, timerFire, t)
	t.armed = true
}

// Stop cancels a pending expiry. Stopping an unarmed timer is a no-op.
func (t *Timer) Stop() {
	if t.armed {
		t.sched.Cancel(t.ref)
		t.armed = false
		t.ref = EventRef{}
	}
}

// Armed reports whether the timer has a pending expiry.
func (t *Timer) Armed() bool { return t.armed }

// Deadline returns the pending expiry instant. It panics if the timer is
// unarmed; check Armed first.
func (t *Timer) Deadline() Time {
	if !t.armed {
		panic("sim: Deadline on unarmed timer")
	}
	return t.ref.When()
}
