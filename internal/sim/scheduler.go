package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. Events are ordered by time; events with
// equal times fire in scheduling order (FIFO), which keeps runs
// deterministic.
type Event struct {
	when Time
	seq  uint64
	fn   func()

	// index is the event's position in the heap, or -1 once fired or
	// cancelled. Maintained by eventHeap.
	index int
}

// When returns the simulated instant the event is scheduled for.
func (e *Event) When() Time { return e.when }

// Cancelled reports whether the event has been cancelled or has fired.
func (e *Event) Cancelled() bool { return e.index < 0 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Scheduler is the discrete-event executor. The zero value is ready to
// use. Scheduler is not safe for concurrent use; a run owns its
// scheduler exclusively.
type Scheduler struct {
	now     Time
	queue   eventHeap
	nextSeq uint64
	fired   uint64
	stopped bool
}

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// EventsFired returns the number of events executed so far.
func (s *Scheduler) EventsFired() uint64 { return s.fired }

// Pending returns the number of events currently queued.
func (s *Scheduler) Pending() int { return len(s.queue) }

// At schedules fn to run at the absolute simulated instant when.
// Scheduling in the past panics: it always indicates a model bug, and
// silently reordering time would corrupt every downstream measurement.
func (s *Scheduler) At(when Time, fn func()) *Event {
	if when < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", when, s.now))
	}
	ev := &Event{when: when, seq: s.nextSeq, fn: fn}
	s.nextSeq++
	heap.Push(&s.queue, ev)
	return ev
}

// After schedules fn to run d after the current instant.
func (s *Scheduler) After(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: scheduling event with negative delay %v", d))
	}
	return s.At(s.now+d, fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op, so callers can cancel
// unconditionally.
func (s *Scheduler) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&s.queue, ev.index)
	ev.index = -1
}

// Stop makes Run return after the currently executing event completes.
func (s *Scheduler) Stop() { s.stopped = true }

// Run executes events in time order until the queue is empty, Stop is
// called, or the next event lies strictly after until. The clock is left
// at until (or at the last fired event if the queue drained first, never
// beyond until).
func (s *Scheduler) Run(until Time) {
	s.stopped = false
	for len(s.queue) > 0 && !s.stopped {
		next := s.queue[0]
		if next.when > until {
			break
		}
		heap.Pop(&s.queue)
		s.now = next.when
		s.fired++
		next.fn()
	}
	if s.now < until {
		s.now = until
	}
}

// Drain executes all remaining events regardless of time. Intended for
// tests; experiment runs use Run with a horizon.
func (s *Scheduler) Drain() {
	s.stopped = false
	for len(s.queue) > 0 && !s.stopped {
		next := heap.Pop(&s.queue).(*Event)
		s.now = next.when
		s.fired++
		next.fn()
	}
}
