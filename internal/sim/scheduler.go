package sim

import (
	"fmt"
	"sync/atomic"
)

// Event is a scheduled callback. Events are ordered by time; events with
// equal times fire in scheduling order (FIFO), which keeps runs
// deterministic.
//
// Events are pooled: when an event fires or is cancelled, the Scheduler
// recycles its storage for a later schedule and bumps the generation
// counter. User code therefore never holds a *Event directly — it holds
// an EventRef, whose generation check makes stale handles inert.
type Event struct {
	when Time
	seq  uint64
	// fn is the closure form of the callback; afn+arg the allocation-free
	// form (exactly one of fn and afn is set while scheduled).
	fn  func()
	afn func(arg any, when Time)
	arg any

	// gen is incremented every time the event is recycled, invalidating
	// outstanding EventRefs.
	gen uint32
	// index is the event's position in the heap, or -1 while pooled.
	index int32
}

// EventRef is a by-value handle to a scheduled event. The zero value is
// a valid "no event" reference: Cancelled reports true and Cancel is a
// no-op. A ref becomes stale the moment its event fires or is cancelled;
// every operation on a stale ref is safe (the generation check detects
// recycling), so callers can cancel unconditionally.
type EventRef struct {
	ev  *Event
	gen uint32
}

// Cancelled reports whether the event has fired, been cancelled, or was
// never scheduled.
func (r EventRef) Cancelled() bool {
	return r.ev == nil || r.ev.gen != r.gen || r.ev.index < 0
}

// When returns the simulated instant the event is scheduled for. It
// panics on a stale or zero ref; check Cancelled first.
func (r EventRef) When() Time {
	if r.Cancelled() {
		panic("sim: When on a fired, cancelled, or zero EventRef")
	}
	return r.ev.when
}

// Scheduler is the discrete-event executor. The zero value is ready to
// use. Scheduler is not safe for concurrent use; a run owns its
// scheduler exclusively.
//
// The queue is a 4-ary min-heap ordered by (when, seq): shallower than a
// binary heap (fewer cache-missing levels per sift) at the cost of more
// comparisons per level, which is the right trade for the simulator's
// queue sizes (tens to a few thousand pending events).
type Scheduler struct {
	now     Time
	queue   []*Event
	nextSeq uint64
	fired   uint64
	stopped bool

	// free is the event pool: storage recycled from fired/cancelled
	// events, reused by the next schedule.
	free []*Event

	// interrupted is the one concurrency-safe bit of scheduler state:
	// Interrupt (callable from any goroutine) sets it, and Run polls it
	// every interruptStride events — the hook that lets a wall-time
	// watchdog cancel a hung run without the kernel ever reading the
	// host clock itself.
	interrupted atomic.Bool
}

// interruptStride is how many events Run fires between polls of the
// interrupted flag: frequent enough to stop a runaway zero-time event
// loop within microseconds, rare enough that the atomic load vanishes
// against event dispatch cost.
const interruptStride = 1024

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// EventsFired returns the number of events executed so far.
func (s *Scheduler) EventsFired() uint64 { return s.fired }

// Pending returns the number of events currently queued.
func (s *Scheduler) Pending() int { return len(s.queue) }

// PoolSize returns the number of recycled events currently in the free
// list (observability for pool tests and benchmarks).
func (s *Scheduler) PoolSize() int { return len(s.free) }

// alloc takes an event from the pool, or allocates a fresh one.
func (s *Scheduler) alloc(when Time) *Event {
	var ev *Event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		ev = &Event{}
	}
	ev.when = when
	ev.seq = s.nextSeq
	s.nextSeq++
	return ev
}

// release returns a popped or removed event to the pool. The generation
// bump is what makes every outstanding EventRef to it stale.
func (s *Scheduler) release(ev *Event) {
	ev.fn = nil
	ev.afn = nil
	ev.arg = nil
	ev.gen++
	ev.index = -1
	s.free = append(s.free, ev)
}

// At schedules fn to run at the absolute simulated instant when.
// Scheduling in the past panics: it always indicates a model bug, and
// silently reordering time would corrupt every downstream measurement.
func (s *Scheduler) At(when Time, fn func()) EventRef {
	if when < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", when, s.now))
	}
	ev := s.alloc(when)
	ev.fn = fn
	s.push(ev)
	return EventRef{ev: ev, gen: ev.gen}
}

// AtArg schedules fn(arg, when) at the absolute instant when. It exists
// for hot paths: passing a package-level func plus a pointer argument
// allocates nothing, where an equivalent capturing closure would heap-
// allocate per call.
func (s *Scheduler) AtArg(when Time, fn func(arg any, when Time), arg any) EventRef {
	if when < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", when, s.now))
	}
	ev := s.alloc(when)
	ev.afn = fn
	ev.arg = arg
	s.push(ev)
	return EventRef{ev: ev, gen: ev.gen}
}

// After schedules fn to run d after the current instant.
func (s *Scheduler) After(d Time, fn func()) EventRef {
	if d < 0 {
		panic(fmt.Sprintf("sim: scheduling event with negative delay %v", d))
	}
	return s.At(s.now+d, fn)
}

// AfterArg schedules fn(arg, when) to run d after the current instant.
func (s *Scheduler) AfterArg(d Time, fn func(arg any, when Time), arg any) EventRef {
	if d < 0 {
		panic(fmt.Sprintf("sim: scheduling event with negative delay %v", d))
	}
	return s.AtArg(s.now+d, fn, arg)
}

// Cancel removes a pending event. Cancelling an already-fired,
// already-cancelled, or zero ref is a no-op, so callers can cancel
// unconditionally; the generation check guarantees a stale ref can never
// cancel an event that reused the same storage.
func (s *Scheduler) Cancel(r EventRef) {
	if r.Cancelled() {
		return
	}
	s.remove(int(r.ev.index))
	s.release(r.ev)
}

// Stop makes Run return after the currently executing event completes.
func (s *Scheduler) Stop() { s.stopped = true }

// Interrupt requests that Run (or Drain) stop at an event boundary.
// Unlike every other method it is safe to call from another goroutine;
// the per-seed watchdog in internal/experiment uses it to cancel runs
// that exceed their wall-time budget. The flag is sticky: once set, Run
// refuses to make progress until ClearInterrupt.
func (s *Scheduler) Interrupt() { s.interrupted.Store(true) }

// Interrupted reports whether Interrupt has been called.
func (s *Scheduler) Interrupted() bool { return s.interrupted.Load() }

// ClearInterrupt re-arms an interrupted scheduler (tests only; a
// cancelled run's partial state is not meaningful to resume).
func (s *Scheduler) ClearInterrupt() { s.interrupted.Store(false) }

// Run executes events in time order until the queue is empty, Stop is
// called, or the next event lies strictly after until. The clock is left
// at until (or at the last fired event if the queue drained first, never
// beyond until).
func (s *Scheduler) Run(until Time) {
	s.stopped = false
	for len(s.queue) > 0 && !s.stopped {
		if s.fired&(interruptStride-1) == 0 && s.interrupted.Load() {
			return // cancelled: leave the clock at the last fired event
		}
		next := s.queue[0]
		if next.when > until {
			break
		}
		s.fire(next)
	}
	if s.now < until {
		s.now = until
	}
}

// Drain executes all remaining events regardless of time. Intended for
// tests; experiment runs use Run with a horizon.
func (s *Scheduler) Drain() {
	s.stopped = false
	for len(s.queue) > 0 && !s.stopped {
		if s.fired&(interruptStride-1) == 0 && s.interrupted.Load() {
			return
		}
		s.fire(s.queue[0])
	}
}

// fire pops the root event, recycles its storage, and runs its callback.
// The callback state is copied out first, so the callback is free to
// schedule new events that reuse this very Event.
func (s *Scheduler) fire(ev *Event) {
	s.popRoot()
	s.now = ev.when
	s.fired++
	fn, afn, arg, when := ev.fn, ev.afn, ev.arg, ev.when
	s.release(ev)
	if afn != nil {
		afn(arg, when)
	} else {
		fn()
	}
}

// ---- 4-ary min-heap ----------------------------------------------------

// less orders events by (when, seq): time first, FIFO within a time.
func less(a, b *Event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// push appends ev and restores the heap property upward.
func (s *Scheduler) push(ev *Event) {
	ev.index = int32(len(s.queue))
	s.queue = append(s.queue, ev)
	s.siftUp(len(s.queue) - 1)
}

// popRoot removes the minimum event (queue[0]) from the heap.
func (s *Scheduler) popRoot() {
	last := len(s.queue) - 1
	root := s.queue[0]
	s.queue[0] = s.queue[last]
	s.queue[0].index = 0
	s.queue[last] = nil
	s.queue = s.queue[:last]
	root.index = -1
	if last > 0 {
		s.siftDown(0)
	}
}

// remove deletes the event at heap position i.
func (s *Scheduler) remove(i int) {
	last := len(s.queue) - 1
	removed := s.queue[i]
	removed.index = -1
	if i == last {
		s.queue[last] = nil
		s.queue = s.queue[:last]
		return
	}
	s.queue[i] = s.queue[last]
	s.queue[i].index = int32(i)
	s.queue[last] = nil
	s.queue = s.queue[:last]
	// The moved element may violate the property in either direction.
	if !s.siftDown(i) {
		s.siftUp(i)
	}
}

// siftUp moves queue[i] toward the root until ordered.
func (s *Scheduler) siftUp(i int) {
	ev := s.queue[i]
	for i > 0 {
		parent := (i - 1) / 4
		p := s.queue[parent]
		if !less(ev, p) {
			break
		}
		s.queue[i] = p
		p.index = int32(i)
		i = parent
	}
	s.queue[i] = ev
	ev.index = int32(i)
}

// siftDown moves queue[i] toward the leaves until ordered, reporting
// whether it moved.
func (s *Scheduler) siftDown(i int) bool {
	ev := s.queue[i]
	n := len(s.queue)
	start := i
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		// Find the smallest of the up-to-four children.
		min := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if less(s.queue[c], s.queue[min]) {
				min = c
			}
		}
		if !less(s.queue[min], ev) {
			break
		}
		s.queue[i] = s.queue[min]
		s.queue[i].index = int32(i)
		i = min
	}
	s.queue[i] = ev
	ev.index = int32(i)
	return i != start
}
