package sim

import (
	"fmt"
	"sync/atomic"
)

// Event is a scheduled callback. Events are ordered by time; events with
// equal times fire in scheduling order (FIFO), which keeps runs
// deterministic.
//
// Event records live in the Scheduler's slab — a growable flat []Event
// arena — and are addressed by uint32 index, never by pointer: the slab
// may move when it grows, and fired or cancelled records are recycled
// through an intrusive free list. User code therefore never holds a
// *Event — it holds an EventRef, whose generation check makes stale
// handles inert across recycling and slab growth alike.
type Event struct {
	when Time
	seq  uint64
	// fn is the closure form of the callback; afn+arg the allocation-free
	// form (exactly one of fn and afn is set while scheduled).
	fn  func()
	afn func(arg any, when Time)
	arg any

	// gen is incremented every time the record is released (fired or
	// cancelled), invalidating outstanding EventRefs. A matching gen
	// therefore means "currently scheduled".
	gen uint32
	// next links the free list while the record is pooled: the index+1
	// of the next free record, 0 terminating the list.
	next uint32
}

// EventRef is a by-value handle to a scheduled event. The zero value is
// a valid "no event" reference: Cancelled reports true and Cancel is a
// no-op. A ref becomes stale the moment its event fires or is cancelled;
// every operation on a stale ref is safe (the generation check detects
// recycling), so callers can cancel unconditionally.
type EventRef struct {
	s   *Scheduler
	idx uint32
	gen uint32
}

// Cancelled reports whether the event has fired, been cancelled, or was
// never scheduled.
func (r EventRef) Cancelled() bool {
	return r.s == nil || r.s.slab[r.idx].gen != r.gen
}

// When returns the simulated instant the event is scheduled for. It
// panics on a stale or zero ref; check Cancelled first.
func (r EventRef) When() Time {
	if r.Cancelled() {
		panic("sim: When on a fired, cancelled, or zero EventRef")
	}
	return r.s.slab[r.idx].when
}

// Scheduler is the discrete-event executor. The zero value is ready to
// use. Scheduler is not safe for concurrent use; a run owns its
// scheduler exclusively.
//
// Storage layout: event records live in the slab and are recycled
// through an intrusive free list, so a steady-state run allocates
// nothing per event. The priority queue holds compact 24-byte
// (when, seq, idx, gen) entries by value — comparisons never chase an
// event pointer — behind the eventQueue interface (see queue.go), with
// the implementation selectable per scheduler or process-wide.
// Cancellation is lazy: Cancel releases the slab record (bumping its
// generation) and leaves the queue entry in place; the pop loop skips
// entries whose generation no longer matches.
type Scheduler struct {
	now Time
	q   eventQueue
	// hq/cq are the concrete queue, exactly one non-nil once q is set:
	// the hot paths branch on hq rather than dispatching through the
	// interface, which keeps push/pop direct (and inlinable) calls.
	hq      *heapQueue
	cq      *calendarQueue
	kind    QueueKind // 0 = unset: resolve from the package default
	nextSeq uint64
	fired   uint64
	stopped bool

	// slab is the flat event arena; freeHead/freeCount the intrusive
	// free list over it (index+1 links, 0 = empty).
	slab      []Event
	freeHead  uint32
	freeCount int

	// live counts scheduled (not yet fired or cancelled) events; stale
	// counts lazily-deleted queue entries awaiting a skip at pop.
	live  int
	stale int

	// scratch is reused by compact().
	scratch []entry

	// Keyed ordering state (see key.go). When keyed is set, seq fields
	// carry explicit partition-invariant keys instead of the FIFO
	// counter: curOwner is the node context implicit scheduling charges
	// its key to, curKey the key of the event currently firing (0 between
	// events — the barrier fan-in reads it to tag side-channel emissions),
	// and ownerCtr holds each owner's private counter.
	keyed    bool
	curOwner int
	curKey   uint64
	ownerCtr []uint64

	// interrupted is the one concurrency-safe bit of scheduler state:
	// Interrupt (callable from any goroutine) sets it, and Run polls it
	// every interruptStride events — the hook that lets a wall-time
	// watchdog cancel a hung run without the kernel ever reading the
	// host clock itself.
	interrupted atomic.Bool
}

// interruptStride is how many events Run fires between polls of the
// interrupted flag: frequent enough to stop a runaway zero-time event
// loop within microseconds, rare enough that the atomic load vanishes
// against event dispatch cost.
const interruptStride = 1024

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// EventsFired returns the number of events executed so far.
func (s *Scheduler) EventsFired() uint64 { return s.fired }

// Pending returns the number of events currently scheduled.
func (s *Scheduler) Pending() int { return s.live }

// PoolSize returns the number of recycled event records currently on
// the slab's free list (observability for pool tests and benchmarks).
func (s *Scheduler) PoolSize() int { return s.freeCount }

// ensureQueue resolves the queue implementation on first use.
func (s *Scheduler) ensureQueue() {
	if s.q != nil {
		return
	}
	k := s.kind
	if k == 0 {
		k = DefaultQueue()
	}
	s.q = newQueue(k)
	switch q := s.q.(type) {
	case *heapQueue:
		s.hq = q
	case *calendarQueue:
		s.cq = q
	}
}

// qpush and qpop dispatch to the concrete queue without an interface
// call; the hq-nil branch is perfectly predicted within a run.
func (s *Scheduler) qpush(e entry) {
	if s.hq != nil {
		s.hq.push(e)
	} else {
		s.cq.push(e)
	}
}

func (s *Scheduler) qpop() (entry, bool) {
	if s.hq != nil {
		return s.hq.pop()
	}
	return s.cq.pop()
}

// SetQueue selects the priority-queue implementation for this scheduler.
// It must be called before any event is scheduled; both implementations
// pop in identical (when, seq) order (pinned by the equivalence
// quickcheck), so the choice affects performance only.
func (s *Scheduler) SetQueue(k QueueKind) {
	if s.q != nil || s.live > 0 {
		panic("sim: SetQueue after events were scheduled")
	}
	if _, err := k.queueName(); err != nil {
		panic(err.Error())
	}
	s.kind = k
}

// alloc takes a record from the slab free list, or grows the slab.
func (s *Scheduler) alloc(when Time) uint32 {
	var idx uint32
	if s.freeHead != 0 {
		idx = s.freeHead - 1
		s.freeHead = s.slab[idx].next
		s.freeCount--
	} else {
		s.slab = append(s.slab, Event{})
		idx = uint32(len(s.slab) - 1)
	}
	ev := &s.slab[idx]
	ev.when = when
	if s.keyed {
		// The caller assigns the key: At/AtArg charge the current
		// owner's counter, AtKeyedArg carries an explicit fan key.
		ev.seq = 0
	} else {
		ev.seq = s.nextSeq
		s.nextSeq++
	}
	return idx
}

// release returns a fired or cancelled record to the free list. The
// generation bump is what makes every outstanding EventRef (and every
// queue entry) to it stale.
func (s *Scheduler) release(idx uint32) {
	ev := &s.slab[idx]
	ev.fn = nil
	ev.afn = nil
	ev.arg = nil
	ev.gen++
	ev.next = s.freeHead
	s.freeHead = idx + 1
	s.freeCount++
}

// At schedules fn to run at the absolute simulated instant when.
// Scheduling in the past panics: it always indicates a model bug, and
// silently reordering time would corrupt every downstream measurement.
func (s *Scheduler) At(when Time, fn func()) EventRef {
	if when < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", when, s.now))
	}
	s.ensureQueue()
	idx := s.alloc(when)
	ev := &s.slab[idx]
	if s.keyed {
		ev.seq = s.nextOwnerKey()
	}
	ev.fn = fn
	s.qpush(entry{when: when, seq: ev.seq, idx: idx, gen: ev.gen})
	s.live++
	return EventRef{s: s, idx: idx, gen: ev.gen}
}

// AtArg schedules fn(arg, when) at the absolute instant when. It exists
// for hot paths: passing a package-level func plus a pointer argument
// allocates nothing, where an equivalent capturing closure would heap-
// allocate per call.
func (s *Scheduler) AtArg(when Time, fn func(arg any, when Time), arg any) EventRef {
	if when < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", when, s.now))
	}
	s.ensureQueue()
	idx := s.alloc(when)
	ev := &s.slab[idx]
	if s.keyed {
		ev.seq = s.nextOwnerKey()
	}
	ev.afn = fn
	ev.arg = arg
	s.qpush(entry{when: when, seq: ev.seq, idx: idx, gen: ev.gen})
	s.live++
	return EventRef{s: s, idx: idx, gen: ev.gen}
}

// After schedules fn to run d after the current instant.
func (s *Scheduler) After(d Time, fn func()) EventRef {
	if d < 0 {
		panic(fmt.Sprintf("sim: scheduling event with negative delay %v", d))
	}
	return s.At(s.now+d, fn)
}

// AfterArg schedules fn(arg, when) to run d after the current instant.
func (s *Scheduler) AfterArg(d Time, fn func(arg any, when Time), arg any) EventRef {
	if d < 0 {
		panic(fmt.Sprintf("sim: scheduling event with negative delay %v", d))
	}
	return s.AtArg(s.now+d, fn, arg)
}

// Cancel removes a pending event. Cancelling an already-fired,
// already-cancelled, or zero ref is a no-op, so callers can cancel
// unconditionally; the generation check guarantees a stale ref can never
// cancel an event that reused the same storage.
//
// Cancellation is lazy: the queue entry stays behind and is skipped when
// it reaches the front. A timer-heavy workload that cancels far more
// than it fires is bounded by compact(), which rebuilds the queue once
// stale entries outnumber live ones.
func (s *Scheduler) Cancel(r EventRef) {
	if r.Cancelled() {
		return
	}
	s.release(r.idx)
	s.live--
	s.stale++
	if s.stale > 64 && s.stale > 2*s.live {
		s.compact()
	}
}

// compact drains the queue and re-pushes only the live entries,
// reclaiming the space held by lazily-deleted ones.
func (s *Scheduler) compact() {
	s.scratch = s.scratch[:0]
	for {
		e, ok := s.qpop()
		if !ok {
			break
		}
		if s.slab[e.idx].gen == e.gen {
			s.scratch = append(s.scratch, e)
		}
	}
	for _, e := range s.scratch {
		s.qpush(e)
	}
	s.stale = 0
}

// Stop makes Run return after the currently executing event completes.
func (s *Scheduler) Stop() { s.stopped = true }

// Interrupt requests that Run (or Drain) stop at an event boundary.
// Unlike every other method it is safe to call from another goroutine;
// the per-seed watchdog in internal/experiment uses it to cancel runs
// that exceed their wall-time budget. The flag is sticky: once set, Run
// refuses to make progress until ClearInterrupt.
func (s *Scheduler) Interrupt() { s.interrupted.Store(true) }

// Interrupted reports whether Interrupt has been called.
func (s *Scheduler) Interrupted() bool { return s.interrupted.Load() }

// ClearInterrupt re-arms an interrupted scheduler (tests only; a
// cancelled run's partial state is not meaningful to resume).
func (s *Scheduler) ClearInterrupt() { s.interrupted.Store(false) }

// Run executes events in time order until the queue is empty, Stop is
// called, or the next event lies strictly after until. The clock is left
// at until (or at the last fired event if the queue drained first, never
// beyond until).
func (s *Scheduler) Run(until Time) {
	s.stopped = false
	for s.live > 0 && !s.stopped {
		if s.fired&(interruptStride-1) == 0 && s.interrupted.Load() {
			return // cancelled: leave the clock at the last fired event
		}
		e, ok := s.qpop()
		if !ok {
			break
		}
		if s.slab[e.idx].gen != e.gen {
			s.stale--
			continue // lazily-deleted entry
		}
		if e.when > until {
			s.qpush(e) // at most once per Run call
			break
		}
		s.fire(e)
	}
	if s.now < until {
		s.now = until
	}
}

// RunWindow executes events strictly before horizon, in (when, seq)
// order. Unlike Run it never advances the clock past the last fired
// event: the shard barrier needs the clock to stay at (or before) every
// instant a cross-shard message may still be injected at, and horizon
// is by construction ≤ any such instant. Interrupt is polled on the
// same stride as Run, so a watchdog stops a window mid-drain.
func (s *Scheduler) RunWindow(horizon Time) {
	s.stopped = false
	for s.live > 0 && !s.stopped {
		if s.fired&(interruptStride-1) == 0 && s.interrupted.Load() {
			return
		}
		e, ok := s.qpop()
		if !ok {
			break
		}
		if s.slab[e.idx].gen != e.gen {
			s.stale--
			continue
		}
		if e.when >= horizon {
			s.qpush(e) // at most once per RunWindow call
			break
		}
		s.fire(e)
	}
}

// NextTime reports the instant of the earliest pending event without
// firing it, skipping (and reclaiming) lazily-cancelled entries. The
// shard coordinator uses it to derive each window's horizon.
func (s *Scheduler) NextTime() (Time, bool) {
	if s.live == 0 {
		// Also covers a scheduler that never had an event (nil queue).
		return 0, false
	}
	for {
		e, ok := s.qpop()
		if !ok {
			return 0, false
		}
		if s.slab[e.idx].gen != e.gen {
			s.stale--
			continue
		}
		s.qpush(e)
		return e.when, true
	}
}

// Drain executes all remaining events regardless of time. Intended for
// tests; experiment runs use Run with a horizon.
func (s *Scheduler) Drain() {
	s.stopped = false
	for s.live > 0 && !s.stopped {
		if s.fired&(interruptStride-1) == 0 && s.interrupted.Load() {
			return
		}
		e, ok := s.qpop()
		if !ok {
			break
		}
		if s.slab[e.idx].gen != e.gen {
			s.stale--
			continue
		}
		s.fire(e)
	}
}

// fire recycles the popped entry's slab record and runs its callback.
// The callback state is copied out first — and the record released
// before the call — so the callback is free to schedule new events that
// reuse this very record or grow (and move) the slab.
func (s *Scheduler) fire(e entry) {
	ev := &s.slab[e.idx]
	fn, afn, arg, when := ev.fn, ev.afn, ev.arg, ev.when
	if s.keyed {
		// Everything the callback schedules is charged to the owner the
		// firing event's key names, so implicit rescheduling (timers,
		// backoffs) stays keyed to its node without the MAC layer ever
		// knowing keys exist. The key itself is published for CurrentKey:
		// barrier-merged side channels (trace/obs fan-in) tag emissions
		// with it to reconstruct the serial emission order.
		s.curOwner = ownerOfKey(ev.seq)
		s.curKey = ev.seq
	}
	s.release(e.idx)
	s.live--
	s.now = when
	s.fired++
	if afn != nil {
		afn(arg, when)
	} else {
		fn()
	}
}
