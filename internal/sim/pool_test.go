package sim

import (
	"testing"
	"testing/quick"
)

// TestPoolReusesFiredEvents verifies that firing recycles event storage:
// after the first event fires, scheduling again must reuse its Event
// rather than allocate.
func TestPoolReusesFiredEvents(t *testing.T) {
	var s Scheduler
	r1 := s.After(Microsecond, func() {})
	ev1 := r1.idx
	s.Run(Second)
	if s.PoolSize() != 1 {
		t.Fatalf("PoolSize = %d after fire, want 1", s.PoolSize())
	}
	r2 := s.After(Microsecond, func() {})
	if r2.idx != ev1 {
		t.Fatal("second schedule did not reuse the fired event's storage")
	}
	if s.PoolSize() != 0 {
		t.Fatalf("PoolSize = %d after reuse, want 0", s.PoolSize())
	}
}

// TestPoolReusesCancelledEvents verifies the cancel path recycles too.
func TestPoolReusesCancelledEvents(t *testing.T) {
	var s Scheduler
	r := s.After(Millisecond, func() { t.Fatal("cancelled event fired") })
	ev := r.idx
	s.Cancel(r)
	if s.PoolSize() != 1 {
		t.Fatalf("PoolSize = %d after cancel, want 1", s.PoolSize())
	}
	r2 := s.After(Microsecond, func() {})
	if r2.idx != ev {
		t.Fatal("schedule after cancel did not reuse the cancelled event's storage")
	}
	s.Run(Second)
}

// TestStaleRefCannotCancelReusedEvent is the aliasing guard: a ref to a
// fired event whose storage was recycled for a new event must be inert —
// cancelling it must not cancel the new occupant.
func TestStaleRefCannotCancelReusedEvent(t *testing.T) {
	var s Scheduler
	stale := s.After(Microsecond, func() {})
	s.Run(2 * Microsecond) // fires; storage recycled to the pool

	fired := false
	fresh := s.After(Microsecond, func() { fired = true })
	if fresh.idx != stale.idx {
		t.Fatal("test premise broken: storage was not reused")
	}
	if !stale.Cancelled() {
		t.Fatal("stale ref does not report Cancelled after its event fired")
	}
	s.Cancel(stale) // must be a no-op on the new occupant
	if fresh.Cancelled() {
		t.Fatal("stale ref cancelled the event that reused its storage")
	}
	s.Run(Second)
	if !fired {
		t.Fatal("reused event did not fire after a stale cancel")
	}
}

// TestStaleRefAcrossReschedule covers the timer-shaped interleaving:
// arm, fire, rearm (reusing storage), stop — repeated — with a held
// stale ref poked at every step.
func TestStaleRefAcrossReschedule(t *testing.T) {
	var s Scheduler
	var stale EventRef
	fired := 0
	for i := 0; i < 100; i++ {
		r := s.After(Microsecond, func() { fired++ })
		if !stale.Cancelled() {
			t.Fatalf("iteration %d: ref from a previous cycle still live", i)
		}
		s.Cancel(stale) // stale: must not disturb r
		if r.Cancelled() {
			t.Fatalf("iteration %d: stale cancel killed the live event", i)
		}
		if i%3 == 2 {
			s.Cancel(r) // exercise the cancel-recycle path too
		} else {
			s.Run(s.Now() + Microsecond)
		}
		stale = r
	}
	if want := 100 - 100/3; fired != want {
		t.Fatalf("fired %d events, want %d", fired, want)
	}
}

// TestScheduleAndFireDoesNotAllocate pins the pool's purpose: the
// steady-state schedule/fire cycle allocates nothing (closure-free
// AtArg form).
func TestScheduleAndFireDoesNotAllocate(t *testing.T) {
	var s Scheduler
	fn := func(any, Time) {}
	// Warm the pool.
	s.AtArg(s.Now()+Microsecond, fn, nil)
	s.Run(s.Now() + Microsecond)
	allocs := testing.AllocsPerRun(1000, func() {
		s.AtArg(s.Now()+Microsecond, fn, nil)
		s.Run(s.Now() + Microsecond)
	})
	if allocs != 0 {
		t.Errorf("schedule/fire cycle allocates %.1f objects, want 0", allocs)
	}
}

// TestTimerReuseNoAlias drives two timers sharing one scheduler through
// reset/stop/fire interleavings; pooled events must never leak a firing
// across timers.
func TestTimerReuseNoAlias(t *testing.T) {
	var s Scheduler
	var aFired, bFired int
	a := NewTimer(&s, func() { aFired++ })
	b := NewTimer(&s, func() { bFired++ })
	for i := 0; i < 50; i++ {
		a.Reset(Microsecond)
		b.Reset(2 * Microsecond)
		a.Reset(3 * Microsecond) // re-arm recycles a's first event
		s.Run(s.Now() + 2*Microsecond)
		if bFired != i+1 {
			t.Fatalf("iteration %d: b fired %d times, want %d", i, bFired, i+1)
		}
		if aFired != 0 {
			t.Fatal("a fired despite pending re-arm")
		}
		a.Stop()
	}
}

// TestQuickPoolInterleavings is the randomized guard: a fuzzed sequence
// of schedule/cancel/stale-cancel/run operations must fire exactly the
// never-cancelled events, exactly once each, in time order.
func TestQuickPoolInterleavings(t *testing.T) {
	f := func(ops []uint16) bool {
		var s Scheduler
		type tracked struct {
			ref       EventRef
			fired     *int
			cancelled bool
		}
		var live []tracked
		var stale []EventRef
		wantFired := 0
		countFired := func() int {
			n := 0
			for _, tr := range live {
				n += *tr.fired
			}
			return n
		}
		for _, op := range ops {
			switch op % 4 {
			case 0, 1: // schedule
				fired := new(int)
				d := Time(op/4%64) * Microsecond
				r := s.After(d, func() { *fired++ })
				live = append(live, tracked{ref: r, fired: fired})
				wantFired++
			case 2: // cancel a pending event (if any)
				for i := range live {
					if !live[i].cancelled && *live[i].fired == 0 && !live[i].ref.Cancelled() {
						s.Cancel(live[i].ref)
						live[i].cancelled = true
						stale = append(stale, live[i].ref)
						wantFired--
						break
					}
				}
			case 3: // run forward a little, then poke stale refs
				s.Run(s.Now() + Time(op/4%16)*Microsecond)
				for _, r := range stale {
					s.Cancel(r) // must all be inert
				}
			}
		}
		s.Drain()
		if countFired() != wantFired {
			return false
		}
		for _, tr := range live {
			if tr.cancelled && *tr.fired != 0 {
				return false // a cancelled event fired
			}
			if *tr.fired > 1 {
				return false // an event fired more than once
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
