package sim

// calendarQueue is a calendar queue (R. Brown, CACM 1988): entries hash
// by time into power-of-two buckets of width `width`. With the width
// matched to the event-time density at the queue's front, push and pop
// are amortised O(1) — the property that lets it beat the heap's
// O(log n) once the pending set grows past a few hundred events.
//
// Adaptations for this kernel, tuned on the bench suite (DESIGN.md §10):
//
//   - Buckets are kept sorted ascending by (when, seq) with a per-bucket
//     head offset: pop peeks b[head] in O(1) and take is head++ — no
//     memmove on the pop side, and the year scan touches one entry per
//     visited bucket. Steady-state pushes land at or near the bucket
//     tail (new events carry the largest seq), so insertion memmoves are
//     short.
//   - Bucket width is calibrated from the average gap over a sample of
//     the front-most events, NOT from span/count: the pending set always
//     contains a few far-future outliers (traffic refill timers, run
//     horizons) that would otherwise inflate the width and pile dozens
//     of near-term events into each front bucket.
//   - Calibration drift is detected online: when insertion memmove cost
//     or empty-year fallbacks exceed their thresholds, the queue
//     re-resizes at the same bucket count purely to re-derive the width.
//   - All buckets share one contiguous backing array (calBucketCap
//     entries each); only overflowing buckets spill into their own
//     allocation.
//   - floor is a lower bound on every stored when (not a strict
//     monotone dequeue clock): the scheduler's compact() and Run's
//     horizon push-back may reinsert entries at or below the last
//     popped time, so push lowers the floor when needed.
//
// Pop scans one "year" (bucket count × width) of windows starting at the
// floor's bucket; a bucket head within its current-year window is the
// global minimum (uniqueness of (when, seq) makes the order total and
// identical to heapQueue's — pinned by the equivalence quickcheck). An
// empty year falls back to a direct scan of all bucket heads.
type calendarQueue struct {
	buckets [][]entry
	// heads[i] is the index of bucket i's first live entry; entries
	// before it have been popped and are reclaimed when the bucket
	// empties or resizes.
	heads []int
	mask  int
	// Bucket width is the power of two 1<<shift, so the time→bucket map
	// is a shift-and-mask rather than a division by a runtime-variable
	// width — pop and push both hit it on every call.
	shift uint
	n     int
	floor Time

	// moved/pushes/fallbacks meter calibration drift since the last
	// resize (see maybeRecalibrate).
	moved     int
	pushes    int
	fallbacks int

	// spareBuckets/spareHeads hold the bucket arrays retired by the
	// last resize. Bursty workloads (a DCF cell fanning a frame out to
	// every observer, then draining) oscillate the live count across
	// the grow/shrink thresholds hundreds of times per run; swapping
	// the retired arrays back in makes that oscillation allocation-free
	// after the first cycle.
	spareBuckets [][]entry
	spareHeads   []int
}

const (
	calMinBuckets = 4
	// calBucketCap is each bucket's share of the shared backing array.
	// Width calibration keeps mean occupancy around three entries, so
	// spills past the shared cap are uncommon.
	calBucketCap = 4
	// calSample is how many front events the width calibration averages
	// over.
	calSample = 32
	// calMovedPerPush and calMaxFallbacks trigger recalibration: mean
	// insertion memmove above calMovedPerPush means the width is too
	// wide (overfull buckets); repeated empty-year fallbacks mean it is
	// too narrow.
	calMovedPerPush = 8
	calMaxFallbacks = 16
)

func newCalendarQueue() *calendarQueue {
	c := &calendarQueue{}
	c.allocBuckets(calMinBuckets)
	return c
}

func (c *calendarQueue) width() Time { return Time(1) << c.shift }

// allocBuckets replaces the bucket array with nb empty buckets, reusing
// the spare arrays from the previous resize when they are the right
// size and carving fresh buckets from one contiguous backing allocation
// otherwise. The replaced arrays become the new spare.
func (c *calendarQueue) allocBuckets(nb int) {
	prev, prevHeads := c.buckets, c.heads
	if len(c.spareBuckets) == nb {
		c.buckets, c.heads = c.spareBuckets, c.spareHeads
		for i := range c.buckets {
			c.buckets[i] = c.buckets[i][:0]
			c.heads[i] = 0
		}
	} else {
		backing := make([]entry, nb*calBucketCap)
		c.buckets = make([][]entry, nb)
		for i := range c.buckets {
			c.buckets[i] = backing[i*calBucketCap : i*calBucketCap : (i+1)*calBucketCap]
		}
		c.heads = make([]int, nb)
	}
	c.spareBuckets, c.spareHeads = prev, prevHeads
	c.mask = nb - 1
}

func (c *calendarQueue) len() int { return c.n }

// bucketOf maps a time to its bucket index.
func (c *calendarQueue) bucketOf(when Time) int {
	return int(uint64(when)>>c.shift) & c.mask
}

func (c *calendarQueue) push(e entry) {
	if c.n == 0 || e.when < c.floor {
		c.floor = e.when
	}
	j := c.bucketOf(e.when)
	b := c.buckets[j]
	// Tail-append fast path: new events carry the largest seq yet
	// issued, so most pushes order after everything already in the
	// bucket — one compare instead of a binary search.
	if n := len(b); n == c.heads[j] || entryLess(b[n-1], e) {
		c.buckets[j] = append(b, e)
		c.pushes++
		c.n++
		if c.n > 2*len(c.buckets) {
			c.resize(2 * len(c.buckets))
		}
		return
	}
	// Binary search over the live region for the ascending insert
	// position.
	lo, hi := c.heads[j], len(b)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if entryLess(b[mid], e) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	b = append(b, entry{})
	copy(b[lo+1:], b[lo:])
	b[lo] = e
	c.buckets[j] = b
	c.moved += len(b) - 1 - lo
	c.pushes++
	c.n++
	if c.n > 2*len(c.buckets) {
		c.resize(2 * len(c.buckets))
	} else {
		c.maybeRecalibrate()
	}
}

// maybeRecalibrate re-derives the bucket width in place when the drift
// meters show the current width no longer matches the front density.
func (c *calendarQueue) maybeRecalibrate() {
	if (c.pushes >= 256 && c.moved > calMovedPerPush*c.pushes) ||
		c.fallbacks > calMaxFallbacks {
		c.resize(len(c.buckets))
	}
}

func (c *calendarQueue) pop() (entry, bool) {
	if c.n == 0 {
		return entry{}, false
	}
	nb := len(c.buckets)
	start := c.bucketOf(c.floor)
	width := c.width()
	top := (c.floor &^ (width - 1)) + width
	for k := 0; k < nb; k++ {
		j := (start + k) & c.mask
		b := c.buckets[j]
		if h := c.heads[j]; h < len(b) && b[h].when < top {
			return c.take(j), true
		}
		top += width
	}
	// Empty year: direct search over the bucket heads for the global
	// minimum.
	c.fallbacks++
	best := -1
	for j, b := range c.buckets {
		if h := c.heads[j]; h < len(b) {
			if best < 0 || entryLess(b[h], c.buckets[best][c.heads[best]]) {
				best = j
			}
		}
	}
	e := c.take(best)
	c.maybeRecalibrate()
	return e, true
}

// take removes bucket j's head entry, advancing the floor and checking
// the shrink threshold.
func (c *calendarQueue) take(j int) entry {
	b := c.buckets[j]
	h := c.heads[j]
	e := b[h]
	h++
	if h == len(b) {
		c.buckets[j] = b[:0]
		c.heads[j] = 0
	} else {
		c.heads[j] = h
	}
	c.n--
	c.floor = e.when
	if nb := len(c.buckets); nb > calMinBuckets && c.n < nb/4 {
		c.resize(nb / 2)
	}
	return e
}

// resize redistributes every entry across nb buckets, re-deriving the
// bucket width so a front bucket covers about three events' worth of
// the queue-front time density. Called both for capacity doublings/
// halvings and (at unchanged nb) for pure width recalibration.
func (c *calendarQueue) resize(nb int) {
	newShift := c.calibrateShift()
	if nb == len(c.buckets) && newShift == c.shift {
		// Pure recalibration that would not change the width: skip the
		// rebuild (and its allocations) and just reset the drift meters,
		// so a workload the calendar cannot model better than it already
		// does (e.g. sparse far-future events) is not charged a
		// redistribution every calMaxFallbacks pops.
		c.moved, c.pushes, c.fallbacks = 0, 0, 0
		return
	}
	old := c.buckets
	oldHeads := c.heads
	c.shift = newShift
	c.allocBuckets(nb)
	c.n = 0
	for j, b := range old {
		for _, e := range b[oldHeads[j]:] {
			i := c.bucketOf(e.when)
			c.buckets[i] = append(c.buckets[i], e)
			c.n++
		}
	}
	// Redistribution appends in old-bucket order, which is not globally
	// sorted: restore each bucket's ascending (when, seq) invariant.
	for _, b := range c.buckets {
		insertionSort(b)
	}
	c.moved, c.pushes, c.fallbacks = 0, 0, 0
}

// calibrateShift samples the calSample front-most events and returns
// the width exponent closest to three times their mean gap (Brown's
// "bucket day" rule, rounded to a power of two): wide enough that a pop
// rarely crosses buckets, narrow enough that a bucket rarely holds more
// than a few events. Far-future outliers never enter the sample, so
// they cannot inflate the width.
func (c *calendarQueue) calibrateShift() uint {
	var sample [calSample]Time
	k := 0
	for j, b := range c.buckets {
		for _, e := range b[c.heads[j]:] {
			w := e.when
			if k == calSample {
				if w >= sample[k-1] {
					continue
				}
				k--
			}
			i := k
			for i > 0 && sample[i-1] > w {
				sample[i] = sample[i-1]
				i--
			}
			sample[i] = w
			k++
		}
	}
	if k < 2 {
		return c.shift
	}
	// Average the positive gaps only: a fan-out burst schedules dozens
	// of entries at one instant, and counting those zero gaps (or the
	// raw span over them) would collapse the width to nothing — the
	// degenerate-width thrash this replaced showed up as an empty-year
	// fallback storm with a meter-reset resize every few pops.
	var sum Time
	gaps := 0
	for i := 1; i < k; i++ {
		if d := sample[i] - sample[i-1]; d > 0 {
			sum += d
			gaps++
		}
	}
	if gaps == 0 {
		// Every sampled event shares one instant; the sample says
		// nothing about front density, so keep the current width.
		return c.shift
	}
	width := sum * 3 / Time(gaps)
	shift := uint(0)
	for Time(1)<<(shift+1) <= width {
		shift++
	}
	return shift
}

// insertionSort restores ascending (when, seq) order; buckets are short
// and nearly sorted after redistribution, which is insertion sort's
// best case.
func insertionSort(b []entry) {
	for i := 1; i < len(b); i++ {
		e := b[i]
		j := i
		for j > 0 && entryLess(e, b[j-1]) {
			b[j] = b[j-1]
			j--
		}
		b[j] = e
	}
}
