package sim

import "fmt"

// Keyed event ordering.
//
// The serial kernel orders same-instant events by a per-scheduler
// sequence number — FIFO in scheduling order. That order is an artifact
// of execution history: split the nodes across two schedulers and the
// interleaving (hence the sequence numbers, hence the tie-break) comes
// out different. The sharded kernel therefore switches the tie-break to
// an explicit 64-bit *key* that is a pure function of model identity,
// never of execution order:
//
//	owner key  = 1<<63 | owner<<40 | counter     (local events)
//	fan key    =         tx<<40 | frame<<20 | obs (cross-node events)
//
// An owner key names the node whose callback scheduled the event plus
// that node's private scheduling counter; a fan key names a
// (transmitter, frame index, observer) triple, which channel model v3
// derives from its counter-RNG identities. Both are invariant under any
// partition of nodes onto schedulers: a node fires its own events in
// the same relative order everywhere, and its counter therefore
// advances identically — so the total (when, key) order, and with it
// every simulation result, is independent of the shard count. Fan keys
// clear bit 63, so at equal instants physical arrivals order before
// local timers; within each class the order follows the encoded IDs.
//
// Keys replace the seq field inside queue entries, so both queue
// implementations order keyed schedulers with the unchanged
// (when, seq) comparison.

const (
	// keyOwnerBit distinguishes owner keys (set) from fan keys (clear).
	keyOwnerBit = uint64(1) << 63
	// keyOwnerShift positions the owner/transmitter ID field.
	keyOwnerShift = 40
	// keyCtrBits is the per-owner counter width: 2^40 events per owner
	// before overflow, far beyond any run length.
	keyCtrBits = 40
	// keyObsBits is the fan-key observer field width.
	keyObsBits = 20

	// MaxKeyedOwner is the largest owner (node) ID addressable by both
	// key forms: owners appear in the 20-bit observer field of fan keys.
	MaxKeyedOwner = 1<<keyObsBits - 1
	// MaxFanFrame is the largest per-transmitter frame index a fan key
	// can carry.
	MaxFanFrame = 1<<keyObsBits - 1
)

// FanKey encodes the deterministic key of a cross-node event: the
// transmitting node, its per-transmitter frame index, and the observing
// node. The triple is unique per (transmission, observer), so two fan
// keys can only collide when they describe the same physical link event
// — which never coexists with itself at one instant.
func FanKey(tx, frameIdx, obs uint64) uint64 {
	if tx > MaxKeyedOwner || frameIdx > MaxFanFrame || obs > MaxKeyedOwner {
		panic(fmt.Sprintf("sim: fan key field overflow (tx=%d frame=%d obs=%d)", tx, frameIdx, obs))
	}
	return tx<<keyOwnerShift | frameIdx<<keyObsBits | obs
}

// ownerOfKey decodes the owner (node) a key attributes the event to:
// the scheduling owner for owner keys, the observer for fan keys.
func ownerOfKey(k uint64) int {
	if k&keyOwnerBit != 0 {
		return int(k >> keyOwnerShift &^ (keyOwnerBit >> keyOwnerShift))
	}
	return int(k & MaxKeyedOwner)
}

// EnableKeyed switches the scheduler to keyed event ordering for owners
// node IDs 0..owners-1. It must be called before any event is
// scheduled. In keyed mode, At/AtArg/After/AfterArg derive each event's
// key from the current owner context — the owner decoded from the event
// being fired, or the last SetOwner during setup — and AtKeyedArg
// schedules with an explicit (fan) key.
func (s *Scheduler) EnableKeyed(owners int) {
	if s.live > 0 || s.fired > 0 {
		panic("sim: EnableKeyed after events were scheduled")
	}
	if owners <= 0 || owners > MaxKeyedOwner+1 {
		panic(fmt.Sprintf("sim: EnableKeyed owner count %d out of range", owners))
	}
	s.keyed = true
	s.ownerCtr = make([]uint64, owners)
}

// Keyed reports whether the scheduler orders events by explicit keys.
func (s *Scheduler) Keyed() bool { return s.keyed }

// SetOwner sets the owner context for subsequent implicit scheduling.
// The experiment runner brackets each node's setup (policy, MAC,
// traffic wiring) with SetOwner so every setup-time event carries that
// node's key; during the run the context tracks the firing event's
// decoded owner automatically.
func (s *Scheduler) SetOwner(id int) {
	if !s.keyed {
		panic("sim: SetOwner on a non-keyed scheduler")
	}
	if id < 0 || id >= len(s.ownerCtr) {
		panic(fmt.Sprintf("sim: SetOwner(%d) outside [0,%d)", id, len(s.ownerCtr)))
	}
	s.curOwner = id
}

// nextOwnerKey issues the next implicit key for the current owner.
func (s *Scheduler) nextOwnerKey() uint64 {
	ctr := s.ownerCtr[s.curOwner]
	if ctr >= 1<<keyCtrBits {
		panic(fmt.Sprintf("sim: owner %d scheduling counter overflow", s.curOwner))
	}
	s.ownerCtr[s.curOwner] = ctr + 1
	return keyOwnerBit | uint64(s.curOwner)<<keyOwnerShift | ctr
}

// CurrentKey returns the key of the event currently firing on a keyed
// scheduler, and 0 between events (setup, or after the run). It is the
// tag barrier-merged side channels (sim.Fanin) attach to emissions: keys
// are unique per instant, so sorting tagged emissions by (when, key,
// per-shard order) reproduces the serial keyed emission order exactly.
func (s *Scheduler) CurrentKey() uint64 { return s.curKey }

// AtKeyedArg schedules fn(arg, when) at the absolute instant when with
// an explicit event key (normally a FanKey). The caller owns key
// uniqueness per instant; the medium's (tx, frame, obs) triples satisfy
// it structurally. Only valid on keyed schedulers.
func (s *Scheduler) AtKeyedArg(when Time, key uint64, fn func(arg any, when Time), arg any) EventRef {
	if !s.keyed {
		panic("sim: AtKeyedArg on a non-keyed scheduler")
	}
	if when < s.now {
		panic(fmt.Sprintf("sim: scheduling keyed event at %v before now %v", when, s.now))
	}
	s.ensureQueue()
	idx := s.alloc(when)
	ev := &s.slab[idx]
	ev.seq = key
	ev.afn = fn
	ev.arg = arg
	s.qpush(entry{when: when, seq: key, idx: idx, gen: ev.gen})
	s.live++
	return EventRef{s: s, idx: idx, gen: ev.gen}
}
