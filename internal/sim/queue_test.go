package sim

import (
	"testing"
	"testing/quick"
)

// TestStaleRefAcrossSlabGrowth pins the slab-kernel guarantee the old
// pointer-based pool got for free: a ref held across arbitrary slab
// growth (and the reallocation/moves growth implies) stays exactly as
// inert as it was. Refs are indices, so a moved slab must not
// resurrect or misdirect them.
func TestStaleRefAcrossSlabGrowth(t *testing.T) {
	var s Scheduler
	fired := false
	stale := s.After(Microsecond, func() { fired = true })
	s.Run(Second)
	if !fired || !stale.Cancelled() {
		t.Fatal("premise: first event did not fire")
	}

	// Grow the slab well past any realistic append-in-place: the
	// backing array is guaranteed to have been reallocated.
	refs := make([]EventRef, 0, 4096)
	for i := 0; i < 4096; i++ {
		refs = append(refs, s.After(Microsecond, func() {}))
	}
	if stale.Cancelled() != true {
		t.Fatal("stale ref came back to life across slab growth")
	}
	s.Cancel(stale) // must not disturb any live event
	for i, r := range refs {
		if r.Cancelled() {
			t.Fatalf("live ref %d reported Cancelled after stale cancel across growth", i)
		}
	}
	s.Run(2 * Second)
	for i, r := range refs {
		if !r.Cancelled() {
			t.Fatalf("ref %d still live after horizon", i)
		}
	}
}

// TestCancelAfterRecycle drives the cancel-after-recycle interleaving
// explicitly: cancel a ref whose slab slot has been recycled (possibly
// several times) and confirm only the original event was affected.
func TestCancelAfterRecycle(t *testing.T) {
	var s Scheduler
	stale := s.After(Microsecond, func() { t.Fatal("cancelled event fired") })
	s.Cancel(stale)

	// Recycle the same slot through several generations.
	for cycle := 0; cycle < 5; cycle++ {
		fired := false
		r := s.After(Microsecond, func() { fired = true })
		if r.idx != stale.idx {
			t.Fatalf("cycle %d: slot %d not recycled (got %d)", cycle, stale.idx, r.idx)
		}
		s.Cancel(stale) // a generation (or five) behind: must be inert
		if r.Cancelled() {
			t.Fatalf("cycle %d: stale cancel killed the recycled occupant", cycle)
		}
		if cycle%2 == 0 {
			s.Run(s.Now() + Microsecond)
			if !fired {
				t.Fatalf("cycle %d: recycled event did not fire", cycle)
			}
		} else {
			s.Cancel(r)
		}
	}
}

// queueOp is the fuzzed workload alphabet for the equivalence check.
type queueOp struct {
	Kind  uint8  // %3: 0,1 = schedule, 2 = cancel/reschedule
	Delay uint16 // schedule delay in µs
	Pick  uint16 // which live event to cancel
}

// TestQueueEquivalenceQuick pins pop-order equivalence between the heap
// and the calendar queue: the same random schedule/cancel/reschedule
// workload, driven through two schedulers differing only in QueueKind,
// must fire identical (time, seq-FIFO) sequences.
func TestQueueEquivalenceQuick(t *testing.T) {
	run := func(kind QueueKind, ops []queueOp) []Time {
		var s Scheduler
		s.SetQueue(kind)
		var fireLog []Time
		var live []EventRef
		record := func() { fireLog = append(fireLog, s.Now()) }
		for _, op := range ops {
			switch op.Kind % 3 {
			case 0, 1:
				d := Time(op.Delay%512) * Microsecond
				live = append(live, s.After(d, record))
			case 2:
				if len(live) == 0 {
					continue
				}
				i := int(op.Pick) % len(live)
				if !live[i].Cancelled() {
					s.Cancel(live[i])
					// Reschedule: the cancelled slot's recycled storage
					// immediately hosts a new event (timer Reset shape).
					live[i] = s.After(Time(op.Delay%512)*Microsecond, record)
				}
			}
			if op.Kind%7 == 3 {
				s.Run(s.Now() + Time(op.Delay%64)*Microsecond)
			}
		}
		s.Drain()
		return fireLog
	}
	f := func(ops []queueOp) bool {
		heapLog := run(QueueHeap, ops)
		calLog := run(QueueCalendar, ops)
		if len(heapLog) != len(calLog) {
			return false
		}
		for i := range heapLog {
			if heapLog[i] != calLog[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQueueEquivalenceFIFOBurst checks the tie-break directly: many
// same-instant events must pop in scheduling order on both queues.
func TestQueueEquivalenceFIFOBurst(t *testing.T) {
	for _, kind := range []QueueKind{QueueHeap, QueueCalendar} {
		var s Scheduler
		s.SetQueue(kind)
		var order []int
		for i := 0; i < 500; i++ {
			i := i
			// Two instants interleaved, plus a shared burst at time 2µs.
			s.At(Time(i%2)*Microsecond, func() { order = append(order, i) })
		}
		s.Drain()
		seenEven, seenOdd := -1, -1
		for pos, i := range order {
			if i%2 == 1 && seenEven < 500/2-1 && pos >= 500/2 {
				t.Fatalf("%v: odd-time event %d popped before all even-time events", kind, i)
			}
			if i%2 == 0 {
				if i <= seenEven {
					t.Fatalf("%v: FIFO violation at t=0: %d after %d", kind, i, seenEven)
				}
				seenEven = i
			} else {
				if i <= seenOdd {
					t.Fatalf("%v: FIFO violation at t=1µs: %d after %d", kind, i, seenOdd)
				}
				seenOdd = i
			}
		}
		if len(order) != 500 {
			t.Fatalf("%v: fired %d of 500", kind, len(order))
		}
	}
}

// TestCalendarResizeCycles walks the calendar through growth and
// shrink: a large burst (forcing doublings), then a drain (forcing
// halvings), then a second burst — popping in order throughout.
func TestCalendarResizeCycles(t *testing.T) {
	var s Scheduler
	s.SetQueue(QueueCalendar)
	fired := 0
	last := Time(-1)
	check := func() {
		if s.Now() < last {
			t.Fatalf("time went backwards: %v after %v", s.Now(), last)
		}
		last = s.Now()
		fired++
	}
	for i := 0; i < 3000; i++ {
		s.After(Time(i%977)*Microsecond, check)
	}
	s.Run(s.Now() + 500*Microsecond)
	for i := 0; i < 100; i++ {
		s.After(Time(i)*Millisecond, check)
	}
	s.Drain()
	if fired != 3100 {
		t.Fatalf("fired %d of 3100", fired)
	}
}

// TestSetQueueAfterScheduleRejected pins the SetQueue precondition.
func TestSetQueueAfterScheduleRejected(t *testing.T) {
	var s Scheduler
	s.After(Microsecond, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("SetQueue after scheduling did not panic")
		}
	}()
	s.SetQueue(QueueCalendar)
}

// TestParseQueueKind covers the flag surface.
func TestParseQueueKind(t *testing.T) {
	for name, want := range map[string]QueueKind{"heap": QueueHeap, "calendar": QueueCalendar} {
		got, err := ParseQueueKind(name)
		if err != nil || got != want {
			t.Fatalf("ParseQueueKind(%q) = %v, %v", name, got, err)
		}
		if got.String() != name {
			t.Fatalf("%v.String() = %q, want %q", got, got.String(), name)
		}
	}
	if _, err := ParseQueueKind("ladder"); err == nil {
		t.Fatal("ParseQueueKind accepted an unknown kind")
	}
}

// TestCompactBoundsStaleEntries pins the lazy-deletion safety valve: a
// workload that cancels far more than it fires must not accumulate
// unbounded queue entries.
func TestCompactBoundsStaleEntries(t *testing.T) {
	for _, kind := range []QueueKind{QueueHeap, QueueCalendar} {
		var s Scheduler
		s.SetQueue(kind)
		keep := s.After(Second, func() {})
		for i := 0; i < 100_000; i++ {
			r := s.After(Millisecond, func() { t.Fatal("cancelled event fired") })
			s.Cancel(r)
		}
		if qlen := s.q.len(); qlen > 1024 {
			t.Fatalf("%v: queue holds %d entries for 1 live event; compaction failed", kind, qlen)
		}
		if s.Pending() != 1 {
			t.Fatalf("%v: Pending = %d, want 1", kind, s.Pending())
		}
		s.Cancel(keep)
		s.Drain()
	}
}
