package sim

import (
	"fmt"
	"sync/atomic"
)

// entry is one priority-queue element: a compact by-value copy of the
// event's ordering key plus its slab address. 24 bytes, so sift and
// bucket moves are plain value copies and comparisons never touch the
// slab. gen detects lazily-deleted entries at pop time.
type entry struct {
	when Time
	seq  uint64
	idx  uint32
	gen  uint32
}

// entryLess orders entries by (when, seq): time first, FIFO within a
// time. seq is unique per scheduler, so the order is total — both queue
// implementations pop in exactly the same sequence.
func entryLess(a, b entry) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// eventQueue is the internal priority-queue contract: push entries, pop
// them minimum-first in (when, seq) order. Implementations need no
// delete — cancellation is lazy (the scheduler skips stale entries).
type eventQueue interface {
	push(e entry)
	pop() (entry, bool)
	len() int
}

// QueueKind selects an eventQueue implementation.
type QueueKind uint8

const (
	// QueueHeap is the 4-ary implicit min-heap: O(log n) operations
	// over one contiguous []entry. Kept selectable (macsim -queue heap)
	// as the simple reference and for workloads whose queue profile
	// defeats the calendar's width calibration.
	QueueHeap QueueKind = iota + 1
	// QueueCalendar is a calendar queue (Brown 1988) with front-sampled
	// width calibration: amortised O(1) push/pop. The bench suite's
	// winner at every measured size — 1.5× the heap at 40/200 nodes and
	// 2.1× at 400 (see DESIGN.md §10) — and the default.
	QueueCalendar
)

// queueName returns the flag-facing name of the kind.
func (k QueueKind) queueName() (string, error) {
	switch k {
	case QueueHeap:
		return "heap", nil
	case QueueCalendar:
		return "calendar", nil
	default:
		return "", fmt.Errorf("sim: invalid queue kind %d", uint8(k))
	}
}

// String returns the name used by ParseQueueKind.
func (k QueueKind) String() string {
	name, err := k.queueName()
	if err != nil {
		return fmt.Sprintf("QueueKind(%d)", uint8(k))
	}
	return name
}

// ParseQueueKind maps a flag value ("heap" or "calendar") to a kind.
func ParseQueueKind(name string) (QueueKind, error) {
	switch name {
	case "heap":
		return QueueHeap, nil
	case "calendar":
		return QueueCalendar, nil
	default:
		return 0, fmt.Errorf("sim: unknown queue kind %q (want heap or calendar)", name)
	}
}

// defaultQueueKind is the process-wide default for schedulers that do
// not call SetQueue. Atomic because experiment sweeps build schedulers
// from many goroutines; 0 reads as QueueCalendar.
var defaultQueueKind atomic.Uint32

// SetDefaultQueue sets the process-wide queue implementation (the
// macsim -queue flag). It affects schedulers built after the call.
func SetDefaultQueue(k QueueKind) {
	if _, err := k.queueName(); err != nil {
		panic(err.Error())
	}
	defaultQueueKind.Store(uint32(k))
}

// DefaultQueue returns the process-wide default queue kind.
func DefaultQueue() QueueKind {
	if k := QueueKind(defaultQueueKind.Load()); k != 0 {
		return k
	}
	return QueueCalendar
}

// newQueue builds an empty queue of the given kind.
func newQueue(k QueueKind) eventQueue {
	if k == QueueCalendar {
		return newCalendarQueue()
	}
	return &heapQueue{}
}

// ---- 4-ary min-heap ----------------------------------------------------

// heapQueue is an implicit 4-ary min-heap over []entry: shallower than a
// binary heap (fewer cache-missing levels per sift) at the cost of more
// comparisons per level, and every comparison is a register-resident
// value compare — no pointer chasing.
type heapQueue struct {
	a []entry
}

func (h *heapQueue) len() int { return len(h.a) }

// push appends e and sifts it toward the root.
func (h *heapQueue) push(e entry) {
	i := len(h.a)
	h.a = append(h.a, e)
	for i > 0 {
		parent := (i - 1) / 4
		if !entryLess(e, h.a[parent]) {
			break
		}
		h.a[i] = h.a[parent]
		i = parent
	}
	h.a[i] = e
}

// pop removes and returns the minimum entry.
func (h *heapQueue) pop() (entry, bool) {
	n := len(h.a)
	if n == 0 {
		return entry{}, false
	}
	root := h.a[0]
	moved := h.a[n-1]
	n--
	h.a = h.a[:n]
	if n > 0 {
		i := 0
		for {
			first := 4*i + 1
			if first >= n {
				break
			}
			min := first
			end := first + 4
			if end > n {
				end = n
			}
			for c := first + 1; c < end; c++ {
				if entryLess(h.a[c], h.a[min]) {
					min = c
				}
			}
			if !entryLess(h.a[min], moved) {
				break
			}
			h.a[i] = h.a[min]
			i = min
		}
		h.a[i] = moved
	}
	return root, true
}
