package sim

import (
	"sync"
	"testing"
)

// TestInterruptPreSet: a scheduler interrupted before Run fires nothing.
func TestInterruptPreSet(t *testing.T) {
	var s Scheduler
	fired := 0
	s.At(Millisecond, func() { fired++ })
	s.Interrupt()
	s.Run(Second)
	if fired != 0 {
		t.Fatalf("interrupted scheduler fired %d events", fired)
	}
	if !s.Interrupted() {
		t.Fatal("Interrupted() = false after Interrupt")
	}
	if s.Now() == Second {
		t.Fatal("interrupted Run advanced the clock to the horizon")
	}
	s.ClearInterrupt()
	s.Run(Second)
	if fired != 1 {
		t.Fatalf("cleared scheduler fired %d events, want 1", fired)
	}
}

// TestInterruptStopsRunawayLoop: an event chain that reschedules itself
// forever is stopped within one interrupt stride once the flag is set
// (here from inside a callback, standing in for the watchdog goroutine).
func TestInterruptStopsRunawayLoop(t *testing.T) {
	var s Scheduler
	var tick func()
	n := 0
	tick = func() {
		n++
		if n == 100 {
			s.Interrupt()
		}
		s.After(Microsecond, tick)
	}
	s.After(Microsecond, tick)
	s.Run(Second)
	if n < 100 {
		t.Fatalf("loop stopped after %d ticks, before the interrupt", n)
	}
	if n > 100+interruptStride {
		t.Fatalf("loop ran %d ticks past the interrupt, stride is %d", n-100, interruptStride)
	}
	if s.Pending() == 0 {
		t.Fatal("runaway event should still be queued after cancellation")
	}
}

// TestInterruptFromAnotherGoroutine exercises the documented
// concurrency contract under the race detector: Interrupt is called
// while Run is spinning through a self-perpetuating event chain.
func TestInterruptFromAnotherGoroutine(t *testing.T) {
	var s Scheduler
	var tick func()
	started := make(chan struct{})
	var once sync.Once
	tick = func() {
		once.Do(func() { close(started) })
		s.After(Microsecond, tick)
	}
	s.After(Microsecond, tick)
	done := make(chan struct{})
	go func() {
		<-started
		s.Interrupt()
		close(done)
	}()
	// The chain yields one event per microsecond for an hour of sim
	// time: without the interrupt this loop would take billions of
	// events; with it, Run returns promptly after the flag lands.
	s.Run(3600 * Second)
	<-done
	if !s.Interrupted() {
		t.Fatal("run finished without observing the interrupt")
	}
}
