package sim

import (
	"fmt"
	"sync/atomic"
)

// Kernel is the surface the experiment harness drives a run through,
// satisfied by both *Scheduler (serial runs) and *ShardGroup (sharded
// runs): the wall-time watchdog needs Interrupt, the result plumbing
// needs the counters and the final clock.
type Kernel interface {
	// Run executes events until no event at or before until remains, or
	// the kernel is interrupted.
	Run(until Time)
	// Interrupt requests a stop at an event (or window) boundary; safe
	// from any goroutine.
	Interrupt()
	// Interrupted reports whether Interrupt has been called.
	Interrupted() bool
	// EventsFired returns the total events executed.
	EventsFired() uint64
	// Now returns the current simulated time (for a group, the furthest
	// shard clock).
	Now() Time
}

// ShardGroup runs several keyed schedulers in lockstep conservative
// time windows (Chandy–Misra-style bounded lag with a fixed lookahead):
//
//	T       = min over shards of the next pending event time
//	horizon = min(T + lookahead, until + 1)
//
// Every cross-shard interaction is a medium fan-out with delay ≥
// lookahead, so an event firing inside [T, horizon) can only schedule
// onto another shard at ≥ T + lookahead ≥ horizon — never inside the
// window being drained. Each shard therefore drains [.., horizon)
// independently on its own goroutine; at the barrier the coordinator
// calls Exchange, which injects the buffered boundary messages
// single-threadedly before the next window is computed. Keyed (when,
// key) ordering makes the merged stream — and thus every result — a
// pure function of the model, not of goroutine interleaving.
type ShardGroup struct {
	scheds    []*Scheduler
	lookahead Time

	// Exchange is called at every barrier with all shards parked; it
	// must move buffered cross-shard messages into their destination
	// schedulers (the medium's outbox drain) in a deterministic order.
	Exchange func()

	interrupted atomic.Bool
}

// NewShardGroup assembles a group over scheds. lookahead must be
// positive: it is the minimum cross-shard scheduling delay the model
// guarantees (for channel model v3, min(V3PropDelay, slot time)).
func NewShardGroup(scheds []*Scheduler, lookahead Time) *ShardGroup {
	if len(scheds) < 2 {
		panic("sim: ShardGroup needs at least 2 shards")
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: ShardGroup lookahead %v must be positive", lookahead))
	}
	for _, s := range scheds {
		if !s.Keyed() {
			panic("sim: ShardGroup over a non-keyed scheduler")
		}
	}
	return &ShardGroup{scheds: scheds, lookahead: lookahead}
}

// Run drives all shards until no events at or before until remain, or
// the group is interrupted. Workers are persistent goroutines fed one
// horizon per window over a channel; the coordinator owns every
// scheduler between barriers, so NextTime, Exchange, and the final
// clock advance all run single-threaded.
func (g *ShardGroup) Run(until Time) {
	n := len(g.scheds)
	starts := make([]chan Time, n)
	for i := range starts {
		starts[i] = make(chan Time, 1)
	}
	done := make(chan struct{}, n)
	for i, s := range g.scheds {
		go func(s *Scheduler, start <-chan Time) {
			for h := range start {
				s.RunWindow(h)
				done <- struct{}{}
			}
		}(s, starts[i])
	}
	for !g.interrupted.Load() {
		// T: the earliest pending event anywhere. Events beyond until
		// stay queued, exactly like the serial Run's push-back.
		var t Time
		have := false
		for _, s := range g.scheds {
			if w, ok := s.NextTime(); ok && (!have || w < t) {
				t, have = w, true
			}
		}
		if !have || t > until {
			break
		}
		horizon := t + g.lookahead
		if horizon > until+1 {
			// Clamp into the run: without this, a late-run window could
			// admit events past until that the serial kernel leaves
			// unfired. until+1 (not until) so events at exactly until
			// fire — RunWindow's bound is strict.
			horizon = until + 1
		}
		for i := range starts {
			starts[i] <- horizon
		}
		for range g.scheds {
			<-done
		}
		if g.Exchange != nil {
			g.Exchange()
		}
	}
	for i := range starts {
		close(starts[i])
	}
	if g.interrupted.Load() {
		return // leave every clock at its last fired event
	}
	// Windows leave each clock at its shard's last fired event; finish
	// exactly like the serial kernel by advancing every clock to until.
	// No events at or before until remain, so nothing fires.
	for _, s := range g.scheds {
		s.Run(until)
	}
}

// Interrupt stops the group at the next window boundary and every shard
// at its next event-stride poll within the current window. Safe from
// any goroutine; used by the per-seed wall-time watchdog.
func (g *ShardGroup) Interrupt() {
	g.interrupted.Store(true)
	for _, s := range g.scheds {
		s.Interrupt()
	}
}

// Interrupted reports whether Interrupt has been called.
func (g *ShardGroup) Interrupted() bool { return g.interrupted.Load() }

// EventsFired returns the total events executed across all shards.
func (g *ShardGroup) EventsFired() uint64 {
	var n uint64
	for _, s := range g.scheds {
		n += s.EventsFired()
	}
	return n
}

// Now returns the furthest shard clock.
func (g *ShardGroup) Now() Time {
	var t Time
	for _, s := range g.scheds {
		if w := s.Now(); w > t {
			t = w
		}
	}
	return t
}

// Shards returns the group's schedulers (indexed by shard).
func (g *ShardGroup) Shards() []*Scheduler { return g.scheds }
