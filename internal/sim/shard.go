package sim

import (
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"
)

// Kernel is the surface the experiment harness drives a run through,
// satisfied by both *Scheduler (serial runs) and *ShardGroup (sharded
// runs): the wall-time watchdog needs Interrupt, the result plumbing
// needs the counters and the final clock.
type Kernel interface {
	// Run executes events until no event at or before until remains, or
	// the kernel is interrupted.
	Run(until Time)
	// Interrupt requests a stop at an event (or window) boundary; safe
	// from any goroutine.
	Interrupt()
	// Interrupted reports whether Interrupt has been called.
	Interrupted() bool
	// EventsFired returns the total events executed.
	EventsFired() uint64
	// Now returns the current simulated time (for a group, the furthest
	// shard clock).
	Now() Time
}

// ShardGroup runs several keyed schedulers in lockstep conservative
// time windows (Chandy–Misra-style bounded lag with a fixed lookahead):
//
//	T       = min over shards of the next pending event time
//	horizon = min(T + lookahead, until + 1)
//
// Every cross-shard interaction is a medium fan-out with delay ≥
// lookahead, so an event firing inside [T, horizon) can only schedule
// onto another shard at ≥ T + lookahead ≥ horizon — never inside the
// window being drained. Each shard therefore drains [.., horizon)
// independently on its own goroutine; at the barrier the coordinator
// calls Exchange, which injects the buffered boundary messages
// single-threadedly before the next window is computed. Keyed (when,
// key) ordering makes the merged stream — and thus every result — a
// pure function of the model, not of goroutine interleaving.
type ShardGroup struct {
	scheds    []*Scheduler
	lookahead Time

	// Exchange is called at every barrier with all shards parked; it
	// must move buffered cross-shard messages into their destination
	// schedulers (the medium's outbox drain) in a deterministic order.
	Exchange func()

	// Telemetry, when non-nil, receives per-window statistics at every
	// barrier, on the coordinator goroutine with all shards parked. The
	// slices in the argument are reused across windows: consume or copy
	// them inside the callback. A nil hook costs nothing — no clocks are
	// read and no buffers are kept. Wall-time fields describe the host,
	// never the model; feeding them back into simulation state would
	// break determinism (the pass-through contract of internal/obs).
	Telemetry func(WindowTelemetry)

	interrupted atomic.Bool
	panicked    atomic.Pointer[ShardPanic]

	// Per-window telemetry scratch, allocated once per Run when the
	// hook is set. Workers write only their own index between barriers;
	// the done-channel handoff orders those writes before the
	// coordinator's reads.
	busy   []time.Duration
	events []uint64
	depth  []int
}

// WindowTelemetry describes one completed conservative window.
type WindowTelemetry struct {
	// Start and Horizon bound the window in simulated time.
	Start, Horizon Time
	// Wall is the coordinator's wall-clock span of the window: dispatch
	// to last shard done. Busy[i] is shard i's wall time inside
	// RunWindow; Wall − Busy[i] approximates its barrier wait.
	Wall time.Duration
	Busy []time.Duration
	// Events[i] counts events shard i fired within the window; Depth[i]
	// is its pending-event count at the barrier.
	Events []uint64
	Depth  []int
}

// ShardPanic wraps a panic recovered on a shard worker goroutine. The
// group keeps the barrier protocol alive (so every shard parks and
// buffered trace emissions stay flushable), then re-panics with this
// value on the coordinator — the per-seed guard's recover sees the
// worker's own stack, not the coordinator's.
type ShardPanic struct {
	Shard int
	Value any
	Stack []byte
}

func (p *ShardPanic) String() string {
	return fmt.Sprintf("shard %d: %v", p.Shard, p.Value)
}

// NewShardGroup assembles a group over scheds. lookahead must be
// positive: it is the minimum cross-shard scheduling delay the model
// guarantees (for channel model v3, min(V3PropDelay, slot time)).
func NewShardGroup(scheds []*Scheduler, lookahead Time) *ShardGroup {
	if len(scheds) < 2 {
		panic("sim: ShardGroup needs at least 2 shards")
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: ShardGroup lookahead %v must be positive", lookahead))
	}
	for _, s := range scheds {
		if !s.Keyed() {
			panic("sim: ShardGroup over a non-keyed scheduler")
		}
	}
	return &ShardGroup{scheds: scheds, lookahead: lookahead}
}

// Run drives all shards until no events at or before until remain, or
// the group is interrupted. Workers are persistent goroutines fed one
// horizon per window over a channel; the coordinator owns every
// scheduler between barriers, so NextTime, Exchange, and the final
// clock advance all run single-threaded.
func (g *ShardGroup) Run(until Time) {
	n := len(g.scheds)
	starts := make([]chan Time, n)
	for i := range starts {
		starts[i] = make(chan Time, 1)
	}
	done := make(chan struct{}, n)
	if g.Telemetry != nil {
		g.busy = make([]time.Duration, n)
		g.events = make([]uint64, n)
		g.depth = make([]int, n)
	}
	for i, s := range g.scheds {
		go func(i int, s *Scheduler, start <-chan Time) {
			for h := range start {
				g.runShardWindow(i, s, h)
				done <- struct{}{}
			}
		}(i, s, starts[i])
	}
	for !g.interrupted.Load() {
		// T: the earliest pending event anywhere. Events beyond until
		// stay queued, exactly like the serial Run's push-back.
		var t Time
		have := false
		for _, s := range g.scheds {
			if w, ok := s.NextTime(); ok && (!have || w < t) {
				t, have = w, true
			}
		}
		if !have || t > until {
			break
		}
		horizon := t + g.lookahead
		if horizon > until+1 {
			// Clamp into the run: without this, a late-run window could
			// admit events past until that the serial kernel leaves
			// unfired. until+1 (not until) so events at exactly until
			// fire — RunWindow's bound is strict.
			horizon = until + 1
		}
		var wall0 time.Time
		if g.Telemetry != nil {
			wall0 = time.Now() //detlint:allow wallclock -- host-performance telemetry, never a scheduling input
		}
		for i := range starts {
			starts[i] <- horizon
		}
		for range g.scheds {
			<-done
		}
		if g.panicked.Load() != nil {
			break // re-panic below, after the workers are parked
		}
		if g.Telemetry != nil {
			g.Telemetry(WindowTelemetry{
				Start: t, Horizon: horizon,
				Wall: time.Since(wall0), //detlint:allow wallclock -- host-performance telemetry, never a scheduling input
				Busy: g.busy, Events: g.events, Depth: g.depth,
			})
		}
		if g.Exchange != nil {
			g.Exchange()
		}
	}
	for i := range starts {
		close(starts[i])
	}
	if sp := g.panicked.Load(); sp != nil {
		panic(sp)
	}
	if g.interrupted.Load() {
		return // leave every clock at its last fired event
	}
	// Windows leave each clock at its shard's last fired event; finish
	// exactly like the serial kernel by advancing every clock to until.
	// No events at or before until remain, so nothing fires.
	for _, s := range g.scheds {
		s.Run(until)
	}
}

// runShardWindow drains one window on shard i's worker goroutine. A
// panic inside the window is captured (first one wins) and the group
// interrupted; the worker then keeps honouring the barrier protocol, so
// the coordinator can park every shard before re-panicking — crash
// forensics (the ring tail) see a fully flushed, coherently ordered
// trace instead of a process torn mid-barrier.
func (g *ShardGroup) runShardWindow(i int, s *Scheduler, h Time) {
	defer func() {
		if r := recover(); r != nil {
			sp := &ShardPanic{Shard: i, Value: r, Stack: debug.Stack()}
			if g.panicked.CompareAndSwap(nil, sp) {
				g.Interrupt()
			}
		}
	}()
	if g.Telemetry == nil {
		s.RunWindow(h)
		return
	}
	wall0 := time.Now() //detlint:allow wallclock -- host-performance telemetry, never a scheduling input
	e0 := s.EventsFired()
	s.RunWindow(h)
	g.busy[i] = time.Since(wall0) //detlint:allow wallclock -- host-performance telemetry, never a scheduling input
	g.events[i] = s.EventsFired() - e0
	g.depth[i] = s.Pending()
}

// Interrupt stops the group at the next window boundary and every shard
// at its next event-stride poll within the current window. Safe from
// any goroutine; used by the per-seed wall-time watchdog.
func (g *ShardGroup) Interrupt() {
	g.interrupted.Store(true)
	for _, s := range g.scheds {
		s.Interrupt()
	}
}

// Interrupted reports whether Interrupt has been called.
func (g *ShardGroup) Interrupted() bool { return g.interrupted.Load() }

// EventsFired returns the total events executed across all shards.
func (g *ShardGroup) EventsFired() uint64 {
	var n uint64
	for _, s := range g.scheds {
		n += s.EventsFired()
	}
	return n
}

// Now returns the furthest shard clock.
func (g *ShardGroup) Now() Time {
	var t Time
	for _, s := range g.scheds {
		if w := s.Now(); w > t {
			t = w
		}
	}
	return t
}

// Shards returns the group's schedulers (indexed by shard).
func (g *ShardGroup) Shards() []*Scheduler { return g.scheds }
