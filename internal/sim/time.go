// Package sim implements the discrete-event simulation kernel that
// drives the wireless network model: simulated time, a stable
// priority-ordered event queue, and cancellable timers.
//
// Each Scheduler is deliberately single-threaded: a simulation run is a
// pure function of its inputs. Parallelism is applied across runs
// (seeds, sweep points) by the experiment harness — and, for large
// topologies, within a run by ShardGroup, which drives several
// schedulers in lockstep conservative time windows while keyed event
// ordering (key.go) keeps the merged event stream independent of the
// shard count.
package sim

import (
	"fmt"
	"time"
)

// Time is an instant of simulated time, measured in nanoseconds since
// the start of the run. It is a distinct type from time.Duration so
// instants and intervals cannot be confused.
type Time int64

// Common simulated-time unit helpers.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the interval t-u as a time.Duration.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Seconds returns the instant expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Duration converts the instant (interpreted as an interval since zero)
// to a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats the instant with microsecond precision, e.g. "1.234567s".
func (t Time) String() string {
	return fmt.Sprintf("%.6fs", t.Seconds())
}
