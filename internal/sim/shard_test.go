package sim

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// --- keyed ordering -------------------------------------------------

// TestKeyedTieBreakByKey: at equal instants a keyed scheduler fires fan
// keys (bit 63 clear — physical arrivals) before owner keys (local
// timers), and within each class in ascending key order, regardless of
// the order the events were scheduled in.
func TestKeyedTieBreakByKey(t *testing.T) {
	var s Scheduler
	s.EnableKeyed(8)
	var got []string
	rec := func(name string) func(any, Time) {
		return func(any, Time) { got = append(got, name) }
	}
	at := Millisecond
	// Schedule in deliberately scrambled order.
	s.SetOwner(5)
	s.At(at, func() { got = append(got, "owner5") }) // owner key, owner 5
	s.AtKeyedArg(at, FanKey(3, 0, 1), rec("fan3->1"), nil)
	s.SetOwner(2)
	s.At(at, func() { got = append(got, "owner2") }) // owner key, owner 2
	s.AtKeyedArg(at, FanKey(1, 0, 4), rec("fan1->4"), nil)
	s.Run(Second)
	want := []string{"fan1->4", "fan3->1", "owner2", "owner5"}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("keyed tie-break order %v, want %v", got, want)
		}
	}
}

// TestKeyedOwnerFollowsFiringEvent: events scheduled from inside a
// firing callback inherit the firing event's owner, so a node's private
// counter advances identically on any shard layout.
func TestKeyedOwnerFollowsFiringEvent(t *testing.T) {
	var s Scheduler
	s.EnableKeyed(4)
	var fromThree EventRef
	s.SetOwner(3)
	s.At(Millisecond, func() {
		// Implicit rescheduling: must be keyed to owner 3, not to the
		// last SetOwner (which will be 1 by the time this fires).
		fromThree = s.At(2*Millisecond, func() {})
	})
	s.SetOwner(1)
	s.Run(Second)
	if fromThree.s == nil {
		t.Fatal("inner event never scheduled")
	}
	if s.ownerCtr[3] != 2 {
		t.Fatalf("owner 3 counter = %d, want 2 (setup event + rescheduled event)", s.ownerCtr[3])
	}
	if s.ownerCtr[1] != 0 {
		t.Fatalf("owner 1 counter = %d, want 0", s.ownerCtr[1])
	}
}

func TestFanKeyOverflowPanics(t *testing.T) {
	for _, c := range [][3]uint64{
		{MaxKeyedOwner + 1, 0, 0},
		{0, MaxFanFrame + 1, 0},
		{0, 0, MaxKeyedOwner + 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FanKey(%d,%d,%d) did not panic", c[0], c[1], c[2])
				}
			}()
			FanKey(c[0], c[1], c[2])
		}()
	}
}

func TestEnableKeyedAfterSchedulingPanics(t *testing.T) {
	var s Scheduler
	s.At(Millisecond, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("EnableKeyed after scheduling did not panic")
		}
	}()
	s.EnableKeyed(4)
}

// --- windows --------------------------------------------------------

// TestRunWindowStopsAtHorizon: RunWindow fires strictly before the
// horizon, leaves later events queued, and never advances the clock
// past the last fired event (the coordinator owns inter-window time).
func TestRunWindowStopsAtHorizon(t *testing.T) {
	var s Scheduler
	s.EnableKeyed(1)
	s.SetOwner(0)
	var fired []Time
	for _, at := range []Time{1 * Microsecond, 5 * Microsecond, 9 * Microsecond, 10 * Microsecond, 30 * Microsecond} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	s.RunWindow(10 * Microsecond)
	if len(fired) != 3 || fired[2] != 9*Microsecond {
		t.Fatalf("window [0,10µs) fired %v", fired)
	}
	if s.Now() != 9*Microsecond {
		t.Fatalf("clock %v after window, want 9µs (last fired event)", s.Now())
	}
	if w, ok := s.NextTime(); !ok || w != 10*Microsecond {
		t.Fatalf("NextTime = %v,%v, want 10µs", w, ok)
	}
	s.RunWindow(31 * Microsecond)
	if len(fired) != 5 {
		t.Fatalf("second window left events unfired: %v", fired)
	}
}

// TestNextTimeSkipsStale: cancelled events must not show up as a
// shard's next pending time — they would deadlock window computation.
func TestNextTimeSkipsStale(t *testing.T) {
	var s Scheduler
	s.EnableKeyed(1)
	s.SetOwner(0)
	r := s.At(Millisecond, func() {})
	s.At(2*Millisecond, func() {})
	s.Cancel(r)
	if w, ok := s.NextTime(); !ok || w != 2*Millisecond {
		t.Fatalf("NextTime = %v,%v, want 2ms (stale head skipped)", w, ok)
	}
}

// --- shard group ----------------------------------------------------

// TestShardGroupPingPong drives two shards whose only coupling is a
// cross-shard "message" injected at the barrier with the lookahead
// delay — a miniature of the medium's outbox protocol. The resulting
// trace must interleave both shards deterministically and the group
// counters must be coherent.
func TestShardGroupPingPong(t *testing.T) {
	const la = 10 * Microsecond
	a, b := &Scheduler{}, &Scheduler{}
	a.EnableKeyed(2)
	b.EnableKeyed(2)

	type msg struct {
		at  Time
		key uint64
	}
	var aOut, bOut []msg // messages for the OTHER shard, drained at barriers
	var trace []string
	var hops int
	var bounce func(dst *Scheduler, out *[]msg, name string) func(any, Time)
	bounce = func(dst *Scheduler, out *[]msg, name string) func(any, Time) {
		return func(_ any, now Time) {
			trace = append(trace, name)
			if hops++; hops < 8 {
				*out = append(*out, msg{at: now + la, key: FanKey(uint64(hops), uint64(hops), 0)})
			}
		}
	}
	onA := bounce(a, &aOut, "a")
	onB := bounce(b, &bOut, "b")

	g := NewShardGroup([]*Scheduler{a, b}, la)
	g.Exchange = func() {
		for _, m := range aOut {
			b.AtKeyedArg(m.at, m.key, onB, nil)
		}
		aOut = aOut[:0]
		for _, m := range bOut {
			a.AtKeyedArg(m.at, m.key, onA, nil)
		}
		bOut = bOut[:0]
	}
	a.SetOwner(0)
	a.At(Microsecond, func() { onA(nil, a.Now()) })
	g.Run(Second)

	want := []string{"a", "b", "a", "b", "a", "b", "a", "b"}
	if len(trace) != len(want) {
		t.Fatalf("trace %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace %v, want %v", trace, want)
		}
	}
	if g.EventsFired() != a.EventsFired()+b.EventsFired() {
		t.Fatal("group EventsFired is not the shard sum")
	}
	if g.Now() != Second {
		t.Fatalf("group Now = %v, want %v (clocks advanced to until)", g.Now(), Second)
	}
	if a.Now() != Second || b.Now() != Second {
		t.Fatalf("shard clocks %v/%v, want both at until", a.Now(), b.Now())
	}
}

// TestShardGroupInterrupt: Interrupt from another goroutine stops the
// group at a window boundary mid-run, leaving coherent progress.
func TestShardGroupInterrupt(t *testing.T) {
	a, b := &Scheduler{}, &Scheduler{}
	a.EnableKeyed(1)
	b.EnableKeyed(1)
	a.SetOwner(0)
	b.SetOwner(0)
	var fired atomic.Uint64
	// Self-perpetuating load on both shards: without an interrupt this
	// runs ~1e9 windows.
	var tick func(s *Scheduler) func()
	tick = func(s *Scheduler) func() {
		return func() {
			fired.Add(1)
			s.After(Microsecond, tick(s))
		}
	}
	a.At(Microsecond, tick(a))
	b.At(Microsecond, tick(b))

	g := NewShardGroup([]*Scheduler{a, b}, Microsecond)
	go func() {
		for fired.Load() < 1000 {
		}
		g.Interrupt()
	}()
	g.Run(1000 * Second)
	if !g.Interrupted() {
		t.Fatal("group not marked interrupted")
	}
	if g.EventsFired() == 0 {
		t.Fatal("no events fired before interrupt")
	}
	if g.Now() <= 0 || g.Now() >= 1000*Second {
		t.Fatalf("interrupted group clock %v outside the run", g.Now())
	}
}

func TestNewShardGroupPanics(t *testing.T) {
	keyed := func() *Scheduler {
		s := &Scheduler{}
		s.EnableKeyed(1)
		return s
	}
	cases := map[string]func(){
		"one shard": func() { NewShardGroup([]*Scheduler{keyed()}, Microsecond) },
		"zero la":   func() { NewShardGroup([]*Scheduler{keyed(), keyed()}, 0) },
		"non-keyed": func() { NewShardGroup([]*Scheduler{keyed(), {}}, Microsecond) },
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

// TestShardGroupWorkerPanic: a panic on a shard worker goroutine does
// not deadlock the barrier or kill the process sideways — the group
// parks every worker and re-panics the captured *ShardPanic (worker
// stack attached) on the Run caller's goroutine.
func TestShardGroupWorkerPanic(t *testing.T) {
	a, b := &Scheduler{}, &Scheduler{}
	a.EnableKeyed(1)
	b.EnableKeyed(1)
	a.SetOwner(0)
	b.SetOwner(0)
	// Steady load on shard 0 so both shards are genuinely inside
	// windows when shard 1 blows up.
	var tick func()
	tick = func() {
		a.After(Microsecond, tick)
	}
	a.At(Microsecond, tick)
	b.At(5*Microsecond, func() { panic("injected shard bug") })

	g := NewShardGroup([]*Scheduler{a, b}, Microsecond)
	defer func() {
		r := recover()
		sp, ok := r.(*ShardPanic)
		if !ok {
			t.Fatalf("recovered %v (%T), want *ShardPanic", r, r)
		}
		if sp.Shard != 1 {
			t.Fatalf("ShardPanic.Shard = %d, want 1", sp.Shard)
		}
		if got := fmt.Sprint(sp.Value); got != "injected shard bug" {
			t.Fatalf("ShardPanic.Value = %q", got)
		}
		if !strings.Contains(string(sp.Stack), "goroutine") {
			t.Fatal("ShardPanic carries no worker stack")
		}
		if !strings.Contains(sp.String(), "shard 1: injected shard bug") {
			t.Fatalf("ShardPanic.String() = %q", sp.String())
		}
	}()
	g.Run(Second)
	t.Fatal("Run returned instead of re-panicking")
}

// TestShardGroupTelemetry: the per-window telemetry callback sees every
// shard's busy time, event delta and queue depth, and the window's sim
// span, without perturbing the run.
func TestShardGroupTelemetry(t *testing.T) {
	a, b := &Scheduler{}, &Scheduler{}
	a.EnableKeyed(1)
	b.EnableKeyed(1)
	a.SetOwner(0)
	b.SetOwner(0)
	n := 0
	var tick func()
	tick = func() {
		if n++; n < 100 {
			a.After(Microsecond, tick)
		}
	}
	a.At(Microsecond, tick)
	b.At(Microsecond, func() {})

	g := NewShardGroup([]*Scheduler{a, b}, Microsecond)
	windows := 0
	var events uint64
	g.Telemetry = func(w WindowTelemetry) {
		windows++
		if len(w.Busy) != 2 || len(w.Events) != 2 || len(w.Depth) != 2 {
			t.Fatalf("telemetry slices sized %d/%d/%d, want 2 each",
				len(w.Busy), len(w.Events), len(w.Depth))
		}
		if w.Horizon <= w.Start {
			t.Fatalf("window [%v, %v) is empty", w.Start, w.Horizon)
		}
		events += w.Events[0] + w.Events[1]
	}
	g.Run(Second)
	if windows == 0 {
		t.Fatal("telemetry callback never fired")
	}
	if events != g.EventsFired() {
		t.Fatalf("telemetry counted %d events, group fired %d", events, g.EventsFired())
	}
}
