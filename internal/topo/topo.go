// Package topo builds the paper's simulation topologies: the Figure-3
// star (N senders on a 150 m circle around receiver R, optionally with
// the two 500 Kbps interferer flows at ±500 m) and uniform random
// topologies (40 nodes in 1500 m × 700 m with neighbor flows).
package topo

import (
	"fmt"
	"math"

	"dcfguard/internal/frame"
	"dcfguard/internal/phys"
	"dcfguard/internal/rng"
)

// Flow is one traffic flow. RateBps 0 means backlogged (saturating).
type Flow struct {
	Src, Dst frame.NodeID
	RateBps  int64
}

// Topology is a set of positioned nodes plus the flows between them.
// Node IDs are dense, 0..len(Positions)-1, and index Positions.
type Topology struct {
	Positions []phys.Point
	Flows     []Flow
	// Measured lists the flow sources whose throughput and diagnosis
	// metrics the experiment reports (interferer flows are excluded).
	Measured []frame.NodeID
	// Misbehaving lists the ground-truth misbehaving senders.
	Misbehaving []frame.NodeID
	// Receivers lists the nodes that act as receivers of measured flows
	// (they run the Monitor under the CORRECT protocol).
	Receivers []frame.NodeID
}

// Validate checks internal consistency.
func (t *Topology) Validate() error {
	n := frame.NodeID(len(t.Positions))
	for _, f := range t.Flows {
		if f.Src < 0 || f.Src >= n || f.Dst < 0 || f.Dst >= n {
			return fmt.Errorf("topo: flow %d→%d outside [0, %d)", f.Src, f.Dst, n)
		}
		if f.Src == f.Dst {
			return fmt.Errorf("topo: self flow at node %d", f.Src)
		}
		if f.RateBps < 0 {
			return fmt.Errorf("topo: negative rate on flow %d→%d", f.Src, f.Dst)
		}
	}
	for _, id := range t.Misbehaving {
		if !contains(t.Measured, id) {
			return fmt.Errorf("topo: misbehaving node %d is not a measured sender", id)
		}
	}
	return nil
}

func contains(ids []frame.NodeID, id frame.NodeID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// StarReceiver is the receiver's node ID in Star topologies.
const StarReceiver frame.NodeID = 0

// Star builds the Figure-3 setup: receiver R (ID 0) at the origin,
// nSenders backlogged senders (IDs 1..nSenders) evenly spaced on a
// 150 m circle, all sending 512 B packets to R. With twoFlow, four
// extra nodes host the interferer flows: A→B on the left of R and C→D
// on the right, each endpoint ≈500 m from R, carrying 500 Kbps CBR.
// misbehaving lists the sender IDs (1-based) that will misbehave.
func Star(nSenders int, twoFlow bool, misbehaving []frame.NodeID) *Topology {
	if nSenders < 1 {
		panic(fmt.Sprintf("topo: Star with %d senders", nSenders))
	}
	t := &Topology{
		Positions: make([]phys.Point, 0, nSenders+5),
		Receivers: []frame.NodeID{StarReceiver},
	}
	t.Positions = append(t.Positions, phys.Point{}) // receiver at origin
	for i := 0; i < nSenders; i++ {
		id := frame.NodeID(i + 1)
		t.Positions = append(t.Positions, phys.OnCircle(phys.Point{}, 150, i, nSenders))
		t.Flows = append(t.Flows, Flow{Src: id, Dst: StarReceiver})
		t.Measured = append(t.Measured, id)
	}
	if twoFlow {
		base := frame.NodeID(nSenders + 1)
		a, b, c, d := base, base+1, base+2, base+3
		t.Positions = append(t.Positions,
			phys.Point{X: -500, Y: 100},  // A
			phys.Point{X: -500, Y: -100}, // B
			phys.Point{X: 500, Y: 100},   // C
			phys.Point{X: 500, Y: -100},  // D
		)
		t.Flows = append(t.Flows,
			Flow{Src: a, Dst: b, RateBps: 500_000},
			Flow{Src: c, Dst: d, RateBps: 500_000},
		)
	}
	for _, id := range misbehaving {
		if id < 1 || int(id) > nSenders {
			panic(fmt.Sprintf("topo: misbehaving id %d outside senders 1..%d", id, nSenders))
		}
		t.Misbehaving = append(t.Misbehaving, id)
	}
	return t
}

// Random builds the Figure-9 setup: n nodes placed uniformly at random
// in a width × height area; every node opens one backlogged flow to a
// random neighbor within maxLink metres (or its nearest node when it
// has no neighbor in range); nMis distinct flow sources, chosen at
// random, misbehave.
func Random(n int, width, height, maxLink float64, nMis int, src *rng.Source) *Topology {
	if n < 2 || nMis < 0 || nMis > n {
		panic(fmt.Sprintf("topo: Random(n=%d, nMis=%d)", n, nMis))
	}
	t := &Topology{Positions: make([]phys.Point, n)}
	for i := range t.Positions {
		t.Positions[i] = phys.Point{
			X: src.Float64() * width,
			Y: src.Float64() * height,
		}
	}
	receivers := make(map[frame.NodeID]bool)
	for i := 0; i < n; i++ {
		id := frame.NodeID(i)
		// Candidate neighbors within range.
		var candidates []frame.NodeID
		nearest := frame.NodeID(-1)
		nearestDist := math.Inf(1)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			d := t.Positions[i].Distance(t.Positions[j])
			if d <= maxLink {
				candidates = append(candidates, frame.NodeID(j))
			}
			if d < nearestDist {
				nearestDist = d
				nearest = frame.NodeID(j)
			}
		}
		dst := nearest
		if len(candidates) > 0 {
			dst = candidates[src.Intn(len(candidates))]
		}
		t.Flows = append(t.Flows, Flow{Src: id, Dst: dst})
		t.Measured = append(t.Measured, id)
		receivers[dst] = true
	}
	for id := range receivers {
		t.Receivers = append(t.Receivers, id)
	}
	sortIDs(t.Receivers)
	// Pick nMis distinct misbehaving sources.
	perm := src.Perm(n)
	for _, p := range perm[:nMis] {
		t.Misbehaving = append(t.Misbehaving, frame.NodeID(p))
	}
	sortIDs(t.Misbehaving)
	return t
}

// Line builds a chain of n nodes spaced `spacing` metres apart, with a
// backlogged flow from each node to its right neighbor. With spacing
// near the carrier-sense limit this is the classic hidden/exposed
// terminal testbed.
func Line(n int, spacing float64) *Topology {
	if n < 2 || spacing <= 0 {
		panic(fmt.Sprintf("topo: Line(%d, %v)", n, spacing))
	}
	t := &Topology{Positions: make([]phys.Point, n)}
	receivers := make(map[frame.NodeID]bool)
	for i := 0; i < n; i++ {
		t.Positions[i] = phys.Point{X: float64(i) * spacing}
	}
	for i := 0; i < n-1; i++ {
		src, dst := frame.NodeID(i), frame.NodeID(i+1)
		t.Flows = append(t.Flows, Flow{Src: src, Dst: dst})
		t.Measured = append(t.Measured, src)
		receivers[dst] = true
	}
	for id := range receivers {
		t.Receivers = append(t.Receivers, id)
	}
	sortIDs(t.Receivers)
	return t
}

// Grid builds a cols × rows lattice with the given spacing; each node
// opens a backlogged flow to its right neighbor (last column sends
// left), giving a dense-reuse workload.
func Grid(cols, rows int, spacing float64) *Topology {
	if cols < 2 || rows < 1 || spacing <= 0 {
		panic(fmt.Sprintf("topo: Grid(%d, %d, %v)", cols, rows, spacing))
	}
	t := &Topology{Positions: make([]phys.Point, cols*rows)}
	receivers := make(map[frame.NodeID]bool)
	id := func(c, r int) frame.NodeID { return frame.NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			t.Positions[id(c, r)] = phys.Point{X: float64(c) * spacing, Y: float64(r) * spacing}
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			src := id(c, r)
			var dst frame.NodeID
			if c+1 < cols {
				dst = id(c+1, r)
			} else {
				dst = id(c-1, r)
			}
			t.Flows = append(t.Flows, Flow{Src: src, Dst: dst})
			t.Measured = append(t.Measured, src)
			receivers[dst] = true
		}
	}
	for rid := range receivers {
		t.Receivers = append(t.Receivers, rid)
	}
	sortIDs(t.Receivers)
	return t
}

func sortIDs(ids []frame.NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
