package topo

import (
	"math"
	"testing"

	"dcfguard/internal/frame"
	"dcfguard/internal/rng"
)

func TestStarGeometry(t *testing.T) {
	tp := Star(8, false, []frame.NodeID{3})
	if err := tp.Validate(); err != nil {
		t.Fatalf("Star invalid: %v", err)
	}
	if len(tp.Positions) != 9 {
		t.Fatalf("positions = %d, want 9 (R + 8 senders)", len(tp.Positions))
	}
	// Every sender sits 150 m from the receiver.
	for id := 1; id <= 8; id++ {
		d := tp.Positions[id].Distance(tp.Positions[StarReceiver])
		if math.Abs(d-150) > 1e-9 {
			t.Errorf("sender %d at %v m from R, want 150", id, d)
		}
	}
	if len(tp.Flows) != 8 {
		t.Fatalf("flows = %d, want 8", len(tp.Flows))
	}
	for _, f := range tp.Flows {
		if f.Dst != StarReceiver || f.RateBps != 0 {
			t.Errorf("flow %+v: want backlogged flow to R", f)
		}
	}
	if len(tp.Misbehaving) != 1 || tp.Misbehaving[0] != 3 {
		t.Fatalf("misbehaving = %v", tp.Misbehaving)
	}
	if len(tp.Receivers) != 1 || tp.Receivers[0] != StarReceiver {
		t.Fatalf("receivers = %v", tp.Receivers)
	}
}

func TestStarTwoFlow(t *testing.T) {
	tp := Star(8, true, nil)
	if err := tp.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if len(tp.Positions) != 13 {
		t.Fatalf("positions = %d, want 13", len(tp.Positions))
	}
	if len(tp.Flows) != 10 {
		t.Fatalf("flows = %d, want 10", len(tp.Flows))
	}
	// The two interferer flows run at 500 Kbps between nearby endpoints
	// that both sit ≈500 m from R.
	for _, f := range tp.Flows[8:] {
		if f.RateBps != 500_000 {
			t.Errorf("interferer flow rate = %d", f.RateBps)
		}
		link := tp.Positions[f.Src].Distance(tp.Positions[f.Dst])
		if link > 250 {
			t.Errorf("interferer link %d→%d spans %v m; endpoints must be in range", f.Src, f.Dst, link)
		}
		for _, end := range []frame.NodeID{f.Src, f.Dst} {
			d := tp.Positions[end].Distance(tp.Positions[StarReceiver])
			if d < 450 || d < 250 || d > 600 {
				t.Errorf("interferer endpoint %d at %v m from R, want ≈500", end, d)
			}
		}
	}
	// Interferer flows are not measured.
	if len(tp.Measured) != 8 {
		t.Fatalf("measured = %v", tp.Measured)
	}
}

func TestStarInterfererAsymmetry(t *testing.T) {
	// The far-side sender must be meaningfully farther from interferer A
	// than the receiver is — the mechanism behind TWO-FLOW misdiagnosis.
	tp := Star(8, true, nil)
	a := tp.Positions[9] // first interferer endpoint
	dR := tp.Positions[StarReceiver].Distance(a)
	dFar := 0.0
	for id := 1; id <= 8; id++ {
		if d := tp.Positions[id].Distance(a); d > dFar {
			dFar = d
		}
	}
	if dFar < dR+100 {
		t.Fatalf("far sender at %v m vs receiver at %v m from A: no asymmetry", dFar, dR)
	}
}

func TestStarValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("misbehaving id 9 of 8 did not panic")
		}
	}()
	Star(8, false, []frame.NodeID{9})
}

func TestStarSingleSender(t *testing.T) {
	tp := Star(1, false, nil)
	if err := tp.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if len(tp.Flows) != 1 {
		t.Fatalf("flows = %d", len(tp.Flows))
	}
}

func TestRandomTopology(t *testing.T) {
	tp := Random(40, 1500, 700, 200, 5, rng.New(1))
	if err := tp.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if len(tp.Positions) != 40 || len(tp.Flows) != 40 {
		t.Fatalf("positions=%d flows=%d", len(tp.Positions), len(tp.Flows))
	}
	for i, p := range tp.Positions {
		if p.X < 0 || p.X > 1500 || p.Y < 0 || p.Y > 700 {
			t.Errorf("node %d at %v outside the area", i, p)
		}
	}
	if len(tp.Misbehaving) != 5 {
		t.Fatalf("misbehaving = %v", tp.Misbehaving)
	}
	seen := make(map[frame.NodeID]bool)
	for _, id := range tp.Misbehaving {
		if seen[id] {
			t.Fatalf("duplicate misbehaving id %d", id)
		}
		seen[id] = true
	}
	if len(tp.Receivers) == 0 {
		t.Fatal("no receivers")
	}
}

func TestRandomFlowsPreferNeighbors(t *testing.T) {
	tp := Random(40, 1500, 700, 200, 0, rng.New(7))
	within := 0
	for _, f := range tp.Flows {
		if tp.Positions[f.Src].Distance(tp.Positions[f.Dst]) <= 200 {
			within++
		}
	}
	// With 40 nodes in 1.05 km², most nodes have an in-range neighbor.
	if within < len(tp.Flows)/2 {
		t.Fatalf("only %d of %d flows within link range", within, len(tp.Flows))
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	a := Random(20, 1500, 700, 200, 3, rng.New(5))
	b := Random(20, 1500, 700, 200, 3, rng.New(5))
	for i := range a.Positions {
		if a.Positions[i] != b.Positions[i] {
			t.Fatal("positions differ across identical seeds")
		}
	}
	for i := range a.Flows {
		if a.Flows[i] != b.Flows[i] {
			t.Fatal("flows differ across identical seeds")
		}
	}
	c := Random(20, 1500, 700, 200, 3, rng.New(6))
	samePos := 0
	for i := range a.Positions {
		if a.Positions[i] == c.Positions[i] {
			samePos++
		}
	}
	if samePos == len(a.Positions) {
		t.Fatal("different seeds produced identical topology")
	}
}

func TestLineTopology(t *testing.T) {
	tp := Line(5, 200)
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tp.Positions) != 5 || len(tp.Flows) != 4 {
		t.Fatalf("positions=%d flows=%d", len(tp.Positions), len(tp.Flows))
	}
	for i, f := range tp.Flows {
		if f.Src != frame.NodeID(i) || f.Dst != frame.NodeID(i+1) {
			t.Fatalf("flow %d = %+v", i, f)
		}
		d := tp.Positions[f.Src].Distance(tp.Positions[f.Dst])
		if math.Abs(d-200) > 1e-9 {
			t.Fatalf("link %d spans %v m", i, d)
		}
	}
	if len(tp.Receivers) != 4 {
		t.Fatalf("receivers = %v", tp.Receivers)
	}
}

func TestLineValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Line(1, ...) did not panic")
		}
	}()
	Line(1, 100)
}

func TestGridTopology(t *testing.T) {
	tp := Grid(3, 2, 150)
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tp.Positions) != 6 || len(tp.Flows) != 6 {
		t.Fatalf("positions=%d flows=%d", len(tp.Positions), len(tp.Flows))
	}
	// Last column sends left; everyone else sends right.
	for _, f := range tp.Flows {
		d := tp.Positions[f.Src].Distance(tp.Positions[f.Dst])
		if math.Abs(d-150) > 1e-9 {
			t.Fatalf("flow %+v spans %v m, want one lattice step", f, d)
		}
	}
	// Corner checks: node 2 (last col, row 0) sends to node 1.
	if tp.Flows[2].Dst != 1 {
		t.Fatalf("last-column flow = %+v, want wrap to the left", tp.Flows[2])
	}
}

func TestGridValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Grid(1, 1, ...) did not panic")
		}
	}()
	Grid(1, 1, 100)
}

func TestValidateCatchesBadFlows(t *testing.T) {
	bad := &Topology{
		Positions: Star(2, false, nil).Positions,
		Flows:     []Flow{{Src: 1, Dst: 1}},
	}
	if bad.Validate() == nil {
		t.Fatal("self flow passed validation")
	}
	bad = &Topology{
		Positions: Star(2, false, nil).Positions,
		Flows:     []Flow{{Src: 1, Dst: 99}},
	}
	if bad.Validate() == nil {
		t.Fatal("out-of-range flow passed validation")
	}
	bad = &Topology{
		Positions:   Star(2, false, nil).Positions,
		Misbehaving: []frame.NodeID{1},
	}
	if bad.Validate() == nil {
		t.Fatal("misbehaving non-sender passed validation")
	}
}
