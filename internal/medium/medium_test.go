package medium

import (
	"testing"

	"dcfguard/internal/frame"
	"dcfguard/internal/phys"
	"dcfguard/internal/rng"
	"dcfguard/internal/sim"
)

// recorder is a Listener that logs every event with its timestamp.
type recorder struct {
	events []event
}

type event struct {
	kind string // "busy", "idle", "frame"
	at   sim.Time
	f    frame.Frame
}

func (r *recorder) CarrierBusy(now sim.Time) {
	r.events = append(r.events, event{"busy", now, frame.Frame{}})
}
func (r *recorder) CarrierIdle(now sim.Time) {
	r.events = append(r.events, event{"idle", now, frame.Frame{}})
}
func (r *recorder) FrameReceived(f frame.Frame, now sim.Time) {
	r.events = append(r.events, event{"frame", now, f})
}

func (r *recorder) frames() []frame.Frame {
	var fs []frame.Frame
	for _, e := range r.events {
		if e.kind == "frame" {
			fs = append(fs, e.f)
		}
	}
	return fs
}

func (r *recorder) count(kind string) int {
	n := 0
	for _, e := range r.events {
		if e.kind == kind {
			n++
		}
	}
	return n
}

// deterministicConfig returns a zero-shadowing model so tests have exact
// range behaviour: receive < 250 m, sense < 550 m.
func deterministicConfig() Config {
	m := phys.DefaultShadowing()
	m.SigmaDB = 0
	return Config{Model: m}
}

func detRadio() phys.Radio {
	m := phys.DefaultShadowing()
	m.SigmaDB = 0
	return phys.CalibratedRadio(m, 24.5, 250, 0.5, 550, 0.5, 2_000_000)
}

func testRTS(src, dst frame.NodeID) frame.Frame {
	return frame.Frame{Type: frame.RTS, Src: src, Dst: dst, Attempt: 1, AssignedBackoff: -1}
}

func setup(t *testing.T, cfg Config, positions []phys.Point) (*sim.Scheduler, *Medium, []*recorder) {
	t.Helper()
	var sched sim.Scheduler
	med := New(&sched, cfg, rng.New(1))
	recs := make([]*recorder, len(positions))
	for i, pos := range positions {
		recs[i] = &recorder{}
		med.Attach(frame.NodeID(i), pos, detRadio(), recs[i])
	}
	return &sched, med, recs
}

func TestDeliveryInRange(t *testing.T) {
	sched, med, recs := setup(t, deterministicConfig(), []phys.Point{{X: 0}, {X: 100}})
	f := testRTS(0, 1)
	end := med.Transmit(0, f)
	if want := f.Airtime(2_000_000); end != want {
		t.Fatalf("Transmit returned end %v, want %v", end, want)
	}
	sched.Run(sim.Second)
	got := recs[1].frames()
	if len(got) != 1 || got[0] != f {
		t.Fatalf("receiver frames = %v, want [%v]", got, f)
	}
	tx, del, col := med.Stats()
	if tx != 1 || del != 1 || col != 0 {
		t.Fatalf("stats = (%d, %d, %d), want (1, 1, 0)", tx, del, col)
	}
}

func TestNoDeliveryOutOfRange(t *testing.T) {
	// 300 m > 250 m receive range (deterministic model), but < 550 m
	// sense range: the frame is sensed, not decoded.
	sched, med, recs := setup(t, deterministicConfig(), []phys.Point{{X: 0}, {X: 300}})
	med.Transmit(0, testRTS(0, 1))
	sched.Run(sim.Second)
	if n := len(recs[1].frames()); n != 0 {
		t.Fatalf("out-of-range node decoded %d frames", n)
	}
	if recs[1].count("busy") != 1 || recs[1].count("idle") != 1 {
		t.Fatalf("sense-only node events = %v, want one busy and one idle", recs[1].events)
	}
}

func TestNoSenseBeyondCsRange(t *testing.T) {
	sched, med, recs := setup(t, deterministicConfig(), []phys.Point{{X: 0}, {X: 600}})
	med.Transmit(0, testRTS(0, 1))
	sched.Run(sim.Second)
	if len(recs[1].events) != 0 {
		t.Fatalf("node at 600 m observed events: %v", recs[1].events)
	}
}

func TestTransmitterSelfBusy(t *testing.T) {
	sched, med, recs := setup(t, deterministicConfig(), []phys.Point{{X: 0}, {X: 100}})
	f := testRTS(0, 1)
	end := med.Transmit(0, f)
	sched.Run(sim.Second)
	ev := recs[0].events
	if len(ev) != 2 || ev[0].kind != "busy" || ev[1].kind != "idle" {
		t.Fatalf("transmitter events = %v, want [busy idle]", ev)
	}
	if ev[0].at != 0 || ev[1].at != end {
		t.Fatalf("transmitter busy window [%v, %v], want [0, %v]", ev[0].at, ev[1].at, end)
	}
}

func TestCollisionBothLost(t *testing.T) {
	// Senders 0 and 2 both in range of node 1; simultaneous frames collide.
	sched, med, recs := setup(t, deterministicConfig(),
		[]phys.Point{{X: 0}, {X: 150}, {X: 300}})
	med.Transmit(0, testRTS(0, 1))
	med.Transmit(2, testRTS(2, 1))
	sched.Run(sim.Second)
	if n := len(recs[1].frames()); n != 0 {
		t.Fatalf("collided frames delivered: %d", n)
	}
	_, del, col := med.Stats()
	if del != 0 {
		t.Fatalf("deliveries = %d, want 0", del)
	}
	if col != 2 {
		t.Fatalf("collisions = %d, want 2", col)
	}
}

func TestPartialOverlapCollides(t *testing.T) {
	sched, med, recs := setup(t, deterministicConfig(),
		[]phys.Point{{X: 0}, {X: 150}, {X: 300}})
	med.Transmit(0, frame.Frame{Type: frame.Data, Src: 0, Dst: 1, PayloadBytes: 512})
	// Second frame starts midway through the first.
	sched.At(sim.Millisecond, func() { med.Transmit(2, testRTS(2, 1)) })
	sched.Run(sim.Second)
	if n := len(recs[1].frames()); n != 0 {
		t.Fatalf("overlapping frames delivered: %d", n)
	}
}

func TestNonOverlappingBothDelivered(t *testing.T) {
	sched, med, recs := setup(t, deterministicConfig(),
		[]phys.Point{{X: 0}, {X: 150}, {X: 300}})
	f1 := testRTS(0, 1)
	end := med.Transmit(0, f1)
	f2 := testRTS(2, 1)
	sched.At(end, func() { med.Transmit(2, f2) })
	sched.Run(sim.Second)
	got := recs[1].frames()
	if len(got) != 2 {
		t.Fatalf("delivered %d frames, want 2 (back-to-back must not collide)", len(got))
	}
}

func TestHiddenTerminal(t *testing.T) {
	// With the paper's 250 m / 550 m ranges two senders that can both
	// reach a common receiver always sense each other (≤ 500 m apart),
	// so build a radio with a short 300 m sense range instead: senders
	// at ±240 m reach the receiver but cannot hear each other.
	var sched sim.Scheduler
	med := New(&sched, deterministicConfig(), rng.New(1))
	m := phys.DefaultShadowing()
	m.SigmaDB = 0
	radio := phys.CalibratedRadio(m, 24.5, 250, 0.5, 300, 0.5, 2_000_000)
	recs := make([]*recorder, 3)
	for i, pos := range []phys.Point{{X: -240}, {X: 0}, {X: 240}} {
		recs[i] = &recorder{}
		med.Attach(frame.NodeID(i), pos, radio, recs[i])
	}
	med.Transmit(0, testRTS(0, 1))
	if len(recs[2].events) != 0 {
		t.Fatal("hidden sender sensed the first transmission")
	}
	sched.At(50*sim.Microsecond, func() { med.Transmit(2, testRTS(2, 1)) })
	sched.Run(sim.Second)
	if n := len(recs[1].frames()); n != 0 {
		t.Fatalf("hidden-terminal collision delivered %d frames", n)
	}
}

func TestCaptureStrongerFrameSurvives(t *testing.T) {
	var sched sim.Scheduler
	cfg := deterministicConfig()
	med := New(&sched, cfg, rng.New(1))
	radio := detRadio()
	radio.CaptureDB = 10
	recs := make([]*recorder, 3)
	// Node 0 at 30 m from receiver 1 (strong); node 2 at 200 m (weak):
	// power gap = 20·log10(200/30) ≈ 16.5 dB > 10 dB capture margin.
	for i, pos := range []phys.Point{{X: -30}, {X: 0}, {X: 200}} {
		recs[i] = &recorder{}
		med.Attach(frame.NodeID(i), pos, radio, recs[i])
	}
	strong := testRTS(0, 1)
	weak := testRTS(2, 1)
	med.Transmit(0, strong)
	med.Transmit(2, weak)
	sched.Run(sim.Second)
	got := recs[1].frames()
	if len(got) != 1 || got[0] != strong {
		t.Fatalf("capture delivered %v, want only the strong frame", got)
	}
}

func TestHalfDuplexTransmitterMissesArrival(t *testing.T) {
	sched, med, recs := setup(t, deterministicConfig(),
		[]phys.Point{{X: 0}, {X: 100}})
	// Node 1 starts a long DATA; node 0 sends an RTS to node 1 while
	// node 1 is still transmitting.
	med.Transmit(1, frame.Frame{Type: frame.Data, Src: 1, Dst: 0, PayloadBytes: 512})
	sched.At(100*sim.Microsecond, func() { med.Transmit(0, testRTS(0, 1)) })
	sched.Run(sim.Second)
	if n := len(recs[1].frames()); n != 0 {
		t.Fatalf("half-duplex node decoded %d frames while transmitting", n)
	}
	// Node 0 still receives node 1's DATA (it finished its own RTS first?
	// No — node 0 was receiving DATA when it transmitted, so it loses it).
	if n := len(recs[0].frames()); n != 0 {
		t.Fatalf("node 0 decoded %d frames despite transmitting during arrival", n)
	}
}

func TestDeliveryBeforeIdleAtSameInstant(t *testing.T) {
	sched, med, recs := setup(t, deterministicConfig(), []phys.Point{{X: 0}, {X: 100}})
	med.Transmit(0, testRTS(0, 1))
	sched.Run(sim.Second)
	ev := recs[1].events
	if len(ev) != 3 || ev[0].kind != "busy" || ev[1].kind != "frame" || ev[2].kind != "idle" {
		t.Fatalf("receiver event order = %v, want [busy frame idle]", ev)
	}
	if ev[1].at != ev[2].at {
		t.Fatalf("frame at %v and idle at %v should coincide", ev[1].at, ev[2].at)
	}
}

func TestBusyRefcountOverlap(t *testing.T) {
	// Two overlapping transmissions within sense range: the observer
	// must see exactly one busy period covering both.
	sched, med, recs := setup(t, deterministicConfig(),
		[]phys.Point{{X: 0}, {X: 150}, {X: 300}})
	end0 := med.Transmit(0, frame.Frame{Type: frame.Data, Src: 0, Dst: 1, PayloadBytes: 512})
	var end2 sim.Time
	sched.At(sim.Millisecond, func() {
		end2 = med.Transmit(2, frame.Frame{Type: frame.Data, Src: 2, Dst: 1, PayloadBytes: 512})
	})
	sched.Run(sim.Second)
	if end2 <= end0 {
		t.Fatal("test setup: second transmission should outlast first")
	}
	if recs[1].count("busy") != 1 || recs[1].count("idle") != 1 {
		t.Fatalf("observer events = %v, want single merged busy period", recs[1].events)
	}
	var idleAt sim.Time
	for _, e := range recs[1].events {
		if e.kind == "idle" {
			idleAt = e.at
		}
	}
	if idleAt != end2 {
		t.Fatalf("idle at %v, want %v (end of later frame)", idleAt, end2)
	}
}

func TestBusyQuery(t *testing.T) {
	sched, med, _ := setup(t, deterministicConfig(), []phys.Point{{X: 0}, {X: 100}})
	if med.Busy(1) {
		t.Fatal("node busy before any transmission")
	}
	end := med.Transmit(0, testRTS(0, 1))
	if !med.Busy(1) || !med.Busy(0) {
		t.Fatal("nodes not busy during transmission")
	}
	sched.Run(end + sim.Microsecond)
	if med.Busy(1) || med.Busy(0) {
		t.Fatal("nodes busy after transmission ended")
	}
}

func TestTransmitWhileTransmittingPanics(t *testing.T) {
	_, med, _ := setup(t, deterministicConfig(), []phys.Point{{X: 0}, {X: 100}})
	med.Transmit(0, testRTS(0, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("double transmit did not panic")
		}
	}()
	med.Transmit(0, testRTS(0, 1))
}

func TestInvalidFramePanics(t *testing.T) {
	_, med, _ := setup(t, deterministicConfig(), []phys.Point{{X: 0}, {X: 100}})
	defer func() {
		if recover() == nil {
			t.Fatal("invalid frame did not panic")
		}
	}()
	med.Transmit(0, frame.Frame{Type: frame.RTS, Src: 0, Dst: 1}) // attempt 0
}

func TestDuplicateAttachPanics(t *testing.T) {
	var sched sim.Scheduler
	med := New(&sched, deterministicConfig(), rng.New(1))
	med.Attach(1, phys.Point{}, detRadio(), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate attach did not panic")
		}
	}()
	med.Attach(1, phys.Point{X: 5}, detRadio(), nil)
}

func TestTap(t *testing.T) {
	sched, med, _ := setup(t, deterministicConfig(), []phys.Point{{X: 0}, {X: 100}})
	var taps int
	med.Tap = func(src frame.NodeID, f frame.Frame, start, end sim.Time) {
		taps++
		if src != 0 || start != 0 || end <= start {
			t.Errorf("tap got src=%d window [%v, %v]", src, start, end)
		}
	}
	med.Transmit(0, testRTS(0, 1))
	sched.Run(sim.Second)
	if taps != 1 {
		t.Fatalf("tap fired %d times, want 1", taps)
	}
}

func TestAccessors(t *testing.T) {
	_, med, _ := setup(t, deterministicConfig(), []phys.Point{{X: 0}, {X: 100}})
	if got := med.Position(1); got != (phys.Point{X: 100}) {
		t.Errorf("Position(1) = %v", got)
	}
	if got := med.Radio(0).BitRate; got != 2_000_000 {
		t.Errorf("Radio(0).BitRate = %d", got)
	}
	ids := med.NodeIDs()
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 1 {
		t.Errorf("NodeIDs() = %v", ids)
	}
}

func TestShadowingMakesMidRangeLossy(t *testing.T) {
	// With σ = 1 dB and the receiver exactly at 250 m, about half of
	// repeated transmissions are decodable.
	var sched sim.Scheduler
	cfg := Config{Model: phys.DefaultShadowing()}
	med := New(&sched, cfg, rng.New(7))
	rec := &recorder{}
	med.Attach(0, phys.Point{}, phys.DefaultRadio(), nil)
	med.Attach(1, phys.Point{X: 250}, phys.DefaultRadio(), rec)
	const n = 400
	f := testRTS(0, 1)
	air := f.Airtime(2_000_000)
	for i := 0; i < n; i++ {
		at := sim.Time(i) * (air + 100*sim.Microsecond)
		sched.At(at, func() { med.Transmit(0, f) })
	}
	sched.Run(sim.Time(n+1) * (air + 100*sim.Microsecond))
	got := len(rec.frames())
	if got < n/3 || got > 2*n/3 {
		t.Fatalf("delivered %d of %d at the 50%% boundary, want roughly half", got, n)
	}
}

func TestCoherenceModeSegmentsSensing(t *testing.T) {
	// Observer at 550 m with σ = 1: each coherence segment is an
	// independent coin flip, so a long frame produces several distinct
	// busy runs rather than one.
	var sched sim.Scheduler
	cfg := Config{Model: phys.DefaultShadowing(), CoherenceInterval: 100 * sim.Microsecond}
	med := New(&sched, cfg, rng.New(3))
	rec := &recorder{}
	med.Attach(0, phys.Point{}, phys.DefaultRadio(), nil)
	med.Attach(1, phys.Point{X: 550}, phys.DefaultRadio(), rec)
	med.Transmit(0, frame.Frame{Type: frame.Data, Src: 0, Dst: 1, PayloadBytes: 1500})
	sched.Run(sim.Second)
	busy, idle := rec.count("busy"), rec.count("idle")
	if busy != idle {
		t.Fatalf("unbalanced busy/idle: %d vs %d", busy, idle)
	}
	if busy < 2 {
		t.Fatalf("coherence mode produced %d busy runs, want fragmentation (≥2)", busy)
	}
}

func TestCoherenceModeCloseRangeSolid(t *testing.T) {
	// At 100 m every segment is far above threshold: exactly one busy run.
	var sched sim.Scheduler
	cfg := Config{Model: phys.DefaultShadowing(), CoherenceInterval: 100 * sim.Microsecond}
	med := New(&sched, cfg, rng.New(3))
	rec := &recorder{}
	med.Attach(0, phys.Point{}, phys.DefaultRadio(), nil)
	med.Attach(1, phys.Point{X: 100}, phys.DefaultRadio(), rec)
	f := frame.Frame{Type: frame.Data, Src: 0, Dst: 1, PayloadBytes: 1500}
	end := med.Transmit(0, f)
	sched.Run(sim.Second)
	if rec.count("busy") != 1 || rec.count("idle") != 1 {
		t.Fatalf("events = %v, want one solid busy run", rec.events)
	}
	last := rec.events[len(rec.events)-1]
	if last.kind != "idle" || last.at != end {
		t.Fatalf("busy run ends at %v, want %v", last.at, end)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []event {
		var sched sim.Scheduler
		med := New(&sched, Config{Model: phys.DefaultShadowing()}, rng.New(42))
		rec := &recorder{}
		med.Attach(0, phys.Point{}, phys.DefaultRadio(), nil)
		med.Attach(1, phys.Point{X: 240}, phys.DefaultRadio(), rec)
		med.Attach(2, phys.Point{X: 480}, phys.DefaultRadio(), nil)
		for i := 0; i < 50; i++ {
			at := sim.Time(i) * 3 * sim.Millisecond
			sched.At(at, func() { med.Transmit(0, testRTS(0, 1)) })
		}
		sched.Run(sim.Second)
		return rec.events
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay produced %d events vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at event %d: %v vs %v", i, a[i], b[i])
		}
	}
}
