// Package medium implements the shared wireless channel. It connects
// node positions and radios (internal/phys) to MAC-layer state machines
// (internal/mac): when a node transmits, the medium decides — per
// observer, from a shadowing draw of the received power — whether the
// transmission is sensed (carrier busy) and whether it is decodable, and
// resolves collisions between overlapping decodable frames.
//
// Modelling notes, relative to the paper's ns-2 setup:
//
//   - Propagation delay is ignored (≤ 2 µs at the paper's distances,
//     a tenth of a slot); all observers see a frame start and end at the
//     transmitter's instants.
//   - Each (transmission, observer) pair gets an independent shadowing
//     draw. An optional coherence interval re-draws the *sensing*
//     decision within a frame at slot granularity, mirroring the paper's
//     modification of ns-2's physical carrier sensing.
//   - Two decodable frames overlapping at an observer destroy each other
//     unless one exceeds the other by the radio's capture margin.
//     Sub-receive-threshold energy never corrupts a frame, as in
//     classic ns-2.
//
// Hot-path design: the deterministic part of every link budget — the
// mean received power MeanRxPowerDBm(txPower, distance) — depends only
// on the attached topology, so it is precomputed once into a dense
// matrix the first time Transmit runs after the last Attach. The
// per-frame work is then one Gaussian draw plus an add-multiply per
// observer. Pairs whose mean plus the hard draw bound (rng.NormBound·σ)
// still falls below both the carrier-sense and receive thresholds can
// never be sensed nor decoded by any realisable draw; for those the
// draw is still consumed (the RNG sequence is part of the reproducible
// result) but all allocation and event scheduling is skipped. Arrival
// records and scheduler events are pooled, so a steady-state run
// allocates nothing per frame.
//
// Channel model v2 (Config.Channel == ChannelV2, see index.go) goes
// further: counter-based per-pair RNG means skipped pairs cost zero
// draws, and a spatial grid index reduces Transmit from Θ(n) to
// O(reachable) — the large-topology (200–1000 node) configuration.
package medium

import (
	"fmt"
	"sort"

	"dcfguard/internal/frame"
	"dcfguard/internal/obs"
	"dcfguard/internal/phys"
	"dcfguard/internal/rng"
	"dcfguard/internal/sim"
)

// Listener receives channel events at one node. Implementations are the
// MAC state machines and the receiver-side idle-slot observer.
//
// Ordering guarantees at identical instants: FrameReceived fires before
// CarrierIdle, so a responder can arm its SIFS response before seeing
// the channel go idle.
type Listener interface {
	// CarrierBusy is called when the node's carrier sense transitions
	// from idle to busy (including the node's own transmissions).
	CarrierBusy(now sim.Time)
	// CarrierIdle is called when the carrier sense transitions from
	// busy to idle.
	CarrierIdle(now sim.Time)
	// FrameReceived is called when a frame addressed to anyone is
	// successfully decoded at this node (overhearing included; the MAC
	// filters by destination and handles NAV updates).
	FrameReceived(f frame.Frame, now sim.Time)
}

// CorruptionListener is an optional extension of Listener: implementers
// are told when a decodable frame was destroyed by a collision at their
// antenna (the trigger for 802.11's EIFS deferral).
type CorruptionListener interface {
	FrameCorrupted(now sim.Time)
}

// FrameFaults injects per-frame channel errors beyond the collision
// model: Drop is consulted once for every frame that survived collision
// resolution and half-duplex blocking at an observer, in completion
// event order, and a true return destroys the frame at that observer
// (the MAC sees it as a corruption, like a failed CRC).
// internal/faults implements it; a nil hook is the perfect channel.
type FrameFaults interface {
	Drop(tx, rx frame.NodeID) bool
}

// ChannelModel selects how shadowing draws are generated and how the
// per-transmission observer set is enumerated.
type ChannelModel int

const (
	// ChannelV1 is the original model: one shared sequential RNG
	// stream, every attached node consuming a draw per transmission in
	// ascending ID order. Bit-identical to the seed implementation and
	// pinned by the v1 determinism goldens.
	ChannelV1 ChannelModel = iota
	// ChannelV2 derives every shadowing draw from a per-(transmitter,
	// observer, frame) counter RNG and iterates only the transmitter's
	// feasible neighbors from a spatial grid index, making Transmit
	// O(reachable) instead of O(n). Results are independent of
	// iteration order and carry their own determinism goldens.
	ChannelV2
	// ChannelV3 is v2 plus a uniform per-link propagation delay
	// (V3PropDelay) and keyed event ordering — the model whose results
	// are independent of how nodes are partitioned across scheduler
	// shards, and hence the only model that supports Scenario.Shards > 1
	// (see v3.go). Serial v3 runs carry their own determinism goldens.
	ChannelV3
)

// String returns the model name as used by the macsim -channel flag.
func (c ChannelModel) String() string {
	switch c {
	case ChannelV1:
		return "v1"
	case ChannelV2:
		return "v2"
	case ChannelV3:
		return "v3"
	default:
		return fmt.Sprintf("ChannelModel(%d)", int(c))
	}
}

// Config parameterises a Medium.
type Config struct {
	// Model is the propagation model shared by all links.
	Model phys.Shadowing
	// CoherenceInterval, when positive, re-draws each observer's
	// sensing decision for every interval of this length within a
	// frame, modelling channel variation at sub-frame granularity.
	// Zero draws once per (frame, observer).
	CoherenceInterval sim.Time
	// Channel selects the channel model; the zero value is ChannelV1.
	Channel ChannelModel
	// FrameFaults, when non-nil, is the fault-injection hook applied to
	// frames the collision model would have delivered. Nil (the
	// default) leaves every golden-pinned run untouched.
	FrameFaults FrameFaults
}

// Medium is the shared channel. It is bound to one scheduler and one
// RNG stream; a simulation run owns it exclusively.
type Medium struct {
	sched *sim.Scheduler
	cfg   Config
	src   *rng.Source

	nodes []*node // ascending NodeID (binary-inserted on Attach)
	byID  map[frame.NodeID]*node
	// dense is the NodeID-indexed fast lookup for the common
	// contiguous-small-ID case: Transmit and the MAC's per-event
	// Radio/Busy/Transmitting queries hit it instead of the map. IDs
	// beyond denseLimit fall back to byID.
	dense []*node
	// Tap, if non-nil, observes every transmission (for traces/tests).
	Tap func(src frame.NodeID, f frame.Frame, start, end sim.Time)
	// DeliveryTap, if non-nil, observes every frame successfully
	// decoded at its addressee.
	DeliveryTap func(f frame.Frame, now sim.Time)

	// Propagation cache, rebuilt lazily at the first Transmit after the
	// last Attach. meanDBm[tx.idx*len(nodes)+obs.idx] is the
	// deterministic mean RX power for the pair; outOfRange is true when
	// no realisable shadowing draw can reach either threshold.
	cacheDirty bool
	meanDBm    []float64
	outOfRange []bool

	// freeArrivals pools arrival records (recycled in complete).
	// Sharded runs use the per-shard pools instead (see v3.go).
	freeArrivals []*arrival
	// freeMsgs pools v3 arrival messages for serial (unsharded) v3 runs.
	freeMsgs []*v3msg

	// Sharded-run state (channel model v3 only, see v3.go): sharded is
	// set by ConfigureShards, after which per-node scheduling goes
	// through node.sched and pooling/counting through shards[i].
	sharded bool
	shards  []*mediumShard

	// v2Base is the counter-RNG base key (channel model v2 only),
	// derived once from the medium's stream at New.
	v2Base uint64
	// bruteForce (tests only) makes the v2 index enumerate every
	// ordered pair with no feasibility pruning — the all-pairs
	// reference the grid equivalence quickcheck compares against.
	bruteForce bool

	transmissions uint64
	deliveries    uint64
	collisions    uint64
	faultDrops    uint64

	// obs holds the pre-resolved observability handles (see obs.go);
	// the zero value means instrumentation is off.
	obs mediumObs
}

type node struct {
	id frame.NodeID
	// idx is the position in Medium.nodes, fixed at cache build.
	idx int
	m   *Medium
	// sched is the scheduler this node's events run on: Medium.sched
	// normally, the node's shard scheduler after ConfigureShards. All
	// per-node scheduling and clock reads go through it.
	sched *sim.Scheduler
	// shard is the node's shard index (0 until ConfigureShards).
	shard    int
	pos      phys.Point
	radio    phys.Radio
	listener Listener

	busyDepth int
	txUntil   sim.Time // end of this node's latest own transmission
	arrivals  []*arrival

	// Channel model v2 state: the per-transmitter frame counter that
	// indexes counter-RNG draws, the maximum interaction radius as a
	// transmitter, and the precomputed feasible-observer list
	// (ascending ID), rebuilt lazily after Attach like the v1 cache.
	txCount   uint64
	reachM    float64
	neighbors []neighbor
}

type arrival struct {
	obs         *node
	f           frame.Frame
	start, end  sim.Time
	powerDBm    float64
	corrupted   bool
	selfBlocked bool // overlapped one of the observer's own transmissions
	// withBusyEnd folds the observer's carrier busy-end into the
	// completion event (channel model v2 fast path only): decodable ⇒
	// sensed, and both fall at the frame end, so one heap event serves
	// both. v1 keeps its separate busyEnd event (golden-pinned order).
	withBusyEnd bool
}

// Pooled-event trampolines: package-level funcs passed to AtArg/AfterArg
// so the busy-transition and arrival-completion events allocate nothing.
func busyEndEvent(arg any, when sim.Time) {
	n := arg.(*node)
	n.m.busyEnd(n, when)
}

func busyStartEvent(arg any, when sim.Time) {
	n := arg.(*node)
	n.m.busyStart(n, when)
}

func completeEvent(arg any, _ sim.Time) {
	a := arg.(*arrival)
	a.obs.m.complete(a.obs, a)
}

// New returns a medium driven by the given scheduler, using src for all
// shadowing draws.
func New(sched *sim.Scheduler, cfg Config, src *rng.Source) *Medium {
	if err := cfg.Model.Validate(); err != nil {
		panic(fmt.Sprintf("medium: invalid model: %v", err))
	}
	m := &Medium{
		sched: sched,
		cfg:   cfg,
		src:   src,
		byID:  make(map[frame.NodeID]*node),
	}
	switch cfg.Channel {
	case ChannelV1:
	case ChannelV2, ChannelV3:
		// Derive the counter-RNG base key. This consumes one draw from
		// the medium stream, but only on the v2/v3 paths — v1's sequence
		// is untouched, keeping its goldens bit-identical. v3 reuses the
		// v2 stream name: at equal seeds the two models share shadowing
		// draws, differing only in delay and event keying.
		m.v2Base = src.Stream("channel-v2").Uint64()
	default:
		panic(fmt.Sprintf("medium: invalid channel model %d", int(cfg.Channel)))
	}
	if cfg.Channel == ChannelV3 && cfg.CoherenceInterval > 0 {
		// v3 has no coherence path: sub-frame re-draws would need their
		// own keyed sub-events, and no paper experiment combines them
		// with large topologies.
		panic("medium: channel model v3 does not support a coherence interval")
	}
	return m
}

// Attach registers a node on the channel. IDs must be unique; the node
// list is kept in ascending ID order (binary insertion, not a re-sort),
// which fixes the (deterministic) order of per-observer shadowing draws.
// Attaching invalidates the propagation cache (v1) and the neighbor
// index (v2); both rebuild lazily at the next Transmit, so interleaving
// Attach and Transmit is safe but pays a rebuild per interleave.
func (m *Medium) Attach(id frame.NodeID, pos phys.Point, radio phys.Radio, l Listener) {
	if _, dup := m.byID[id]; dup {
		panic(fmt.Sprintf("medium: duplicate node id %d", id))
	}
	if err := radio.Validate(); err != nil {
		panic(fmt.Sprintf("medium: node %d: %v", id, err))
	}
	if m.sharded {
		panic(fmt.Sprintf("medium: Attach of node %d after ConfigureShards", id))
	}
	n := &node{id: id, m: m, sched: m.sched, pos: pos, radio: radio, listener: l}
	i := sort.Search(len(m.nodes), func(i int) bool { return m.nodes[i].id > id })
	m.nodes = append(m.nodes, nil)
	copy(m.nodes[i+1:], m.nodes[i:])
	m.nodes[i] = n
	m.byID[id] = n
	if id >= 0 && id < denseLimit {
		if int(id) >= len(m.dense) {
			m.dense = append(m.dense, make([]*node, int(id)+1-len(m.dense))...)
		}
		m.dense[id] = n
	}
	m.cacheDirty = true
}

// denseLimit bounds the dense lookup table so a single huge sparse ID
// cannot balloon it; every repo scenario numbers nodes contiguously
// from zero and stays far below it.
const denseLimit = 1 << 20

// lookup resolves a NodeID to its node, preferring the dense table.
func (m *Medium) lookup(id frame.NodeID) *node {
	if id >= 0 && int(id) < len(m.dense) {
		if n := m.dense[id]; n != nil {
			return n
		}
	}
	return m.byID[id]
}

// buildCache precomputes the mean RX power and the out-of-range proof
// for every ordered (transmitter, observer) pair. A pair is out of range
// when mean + NormBound·σ — an upper bound no Box-Muller draw can beat —
// stays below both the observer's carrier-sense and receive thresholds.
func (m *Medium) buildCache() {
	n := len(m.nodes)
	m.meanDBm = make([]float64, n*n)
	m.outOfRange = make([]bool, n*n)
	sigma := m.cfg.Model.SigmaDB
	for i, tx := range m.nodes {
		tx.idx = i
		for j, obs := range m.nodes {
			if i == j {
				continue
			}
			d := tx.pos.Distance(obs.pos)
			mean := m.cfg.Model.MeanRxPowerDBm(tx.radio.TxPowerDBm, d)
			bound := mean + rng.NormBound*sigma
			k := i*n + j
			m.meanDBm[k] = mean
			m.outOfRange[k] = bound < obs.radio.CsThreshDBm && bound < obs.radio.RxThreshDBm
		}
	}
	m.cacheDirty = false
}

// Stats returns cumulative channel counters: transmissions started,
// frames delivered, and frames lost to collisions at their addressee.
// Sharded runs sum the per-shard counters (call between windows or
// after the run).
func (m *Medium) Stats() (transmissions, deliveries, collisions uint64) {
	transmissions, deliveries, collisions = m.transmissions, m.deliveries, m.collisions
	for _, sh := range m.shards {
		transmissions += sh.transmissions
		deliveries += sh.deliveries
		collisions += sh.collisions
	}
	return transmissions, deliveries, collisions
}

// FaultDrops returns the number of frames destroyed by the
// fault-injection hook (zero when Config.FrameFaults is nil).
func (m *Medium) FaultDrops() uint64 {
	n := m.faultDrops
	for _, sh := range m.shards {
		n += sh.faultDrops
	}
	return n
}

// newArrival takes an arrival record from the pool, or allocates one.
func (m *Medium) newArrival() *arrival {
	if n := len(m.freeArrivals); n > 0 {
		a := m.freeArrivals[n-1]
		m.freeArrivals[n-1] = nil
		m.freeArrivals = m.freeArrivals[:n-1]
		return a
	}
	return &arrival{}
}

// Transmit puts a frame on the air from src at the current instant and
// returns the instant the transmission ends. The caller (the MAC) must
// not already be transmitting.
func (m *Medium) Transmit(srcID frame.NodeID, f frame.Frame) sim.Time {
	tx := m.lookup(srcID)
	if tx == nil {
		panic(fmt.Sprintf("medium: transmit from unattached node %d", srcID))
	}
	if m.cacheDirty {
		if m.cfg.Channel != ChannelV1 {
			m.buildIndex()
		} else {
			m.buildCache()
		}
	}
	now := tx.sched.Now()
	if tx.txUntil > now {
		panic(fmt.Sprintf("medium: node %d transmit at %v while transmitting until %v",
			srcID, now, tx.txUntil))
	}
	if err := f.Validate(); err != nil {
		panic(fmt.Sprintf("medium: node %d transmitting invalid frame: %v", srcID, err))
	}
	end := now + f.Airtime(tx.radio.BitRate)
	tx.txUntil = end
	if m.sharded {
		m.shards[tx.shard].transmissions++ //detlint:allow shardsafe -- indexed by the executing event's own shard: this handler runs on that shard's scheduler
	} else {
		m.transmissions++
	}
	m.obs.transmissions.Inc()
	if m.obs.chanOn() {
		m.traceChannel(tx, obs.Record{
			Time: now, Node: srcID, Peer: f.Dst, Event: "tx",
			Aux: f.Type.String(), Seq: f.Seq, A: float64(end - now),
		})
	}
	if m.Tap != nil {
		m.Tap(srcID, f, now, end)
	}

	// The transmitter's own carrier goes busy for the duration.
	m.busyStart(tx, now)
	// A node that starts transmitting while a frame is arriving
	// destroys that arrival locally (half-duplex). Compact dead entries
	// (already completed at this instant) out of the list as we go.
	live := tx.arrivals[:0]
	for _, a := range tx.arrivals {
		if a.end <= now {
			continue
		}
		a.selfBlocked = true
		live = append(live, a)
	}
	clearTail(tx.arrivals, len(live))
	tx.arrivals = live

	switch m.cfg.Channel {
	case ChannelV3:
		m.fanOutV3(tx, f, now, end)
	case ChannelV2:
		m.fanOutV2(tx, f, now, end)
	default:
		// Per-observer outcomes, in ascending ID order for determinism.
		// The shadowing draw is consumed for every observer — the RNG
		// sequence is part of the reproducible result — but pairs the
		// cache proves out of range skip all further work.
		nn := len(m.nodes)
		base := tx.idx * nn
		sigma := m.cfg.Model.SigmaDB
		fast := m.cfg.CoherenceInterval <= 0
		for _, obs := range m.nodes {
			if obs == tx {
				continue
			}
			draw := m.src.NormFloat64()
			if fast && m.outOfRange[base+obs.idx] {
				continue
			}
			m.arriveAt(tx, obs, f, m.meanDBm[base+obs.idx]+sigma*draw, now, end)
		}
	}

	// Self busy-end. Scheduled after arrivals so that, at instant
	// `end`, deliveries (scheduled inside arriveAt) precede carrier
	// transitions only per-observer; the transmitter has no delivery.
	tx.sched.AtArg(end, busyEndEvent, tx)
	return end
}

// clearTail nils the slice entries from i on, so the shrunken arrivals
// list does not retain pooled records.
func clearTail(s []*arrival, i int) {
	for ; i < len(s); i++ {
		s[i] = nil
	}
}

// arriveAt computes what observer obs experiences for the transmission,
// given the already-drawn received power for this (frame, observer) pair.
func (m *Medium) arriveAt(tx, obs *node, f frame.Frame, power float64, start, end sim.Time) {
	if power >= obs.radio.RxThreshDBm {
		m.admitArrival(obs, f, power, start, end)
	}

	// Sensing: decodable energy is always sensed (RxThresh ≥ CsThresh
	// guarantees it for the same draw).
	if m.cfg.CoherenceInterval <= 0 {
		if power >= obs.radio.CsThreshDBm {
			m.busyStart(obs, start)
			m.sched.AtArg(end, busyEndEvent, obs)
		}
		return
	}

	// Coherence mode: re-draw sensing per interval and merge adjacent
	// sensed intervals into maximal busy runs (so segment boundaries do
	// not produce zero-length idle blips). The first interval reuses
	// the frame-level draw so decodable ⇒ initially sensed.
	mean := m.meanDBm[tx.idx*len(m.nodes)+obs.idx]
	segPower := power
	var runStart sim.Time
	inRun := false
	for segStart := start; segStart < end; segStart += m.cfg.CoherenceInterval {
		sensed := segPower >= obs.radio.CsThreshDBm
		if sensed && !inRun {
			runStart, inRun = segStart, true
		} else if !sensed && inRun {
			m.scheduleBusyRun(obs, runStart, segStart, start)
			inRun = false
		}
		segPower = mean + m.cfg.Model.SigmaDB*m.src.NormFloat64()
	}
	if inRun {
		m.scheduleBusyRun(obs, runStart, end, start)
	}
}

// admitArrival registers a decodable arrival at obs: it creates the
// pooled record, resolves it, and schedules completion. Shared by the
// v1 and v2 models; the returned record lets the v2 fast path set
// withBusyEnd. v3 allocates from its shard pool and schedules with a
// keyed event, so it calls resolveArrival directly (see deliverV3).
func (m *Medium) admitArrival(obs *node, f frame.Frame, power float64, start, end sim.Time) *arrival {
	a := m.newArrival()
	m.resolveArrival(obs, a, f, power, start, end)
	m.sched.AtArg(end, completeEvent, a)
	return a
}

// resolveArrival fills the pooled record a with the arrival's outcome:
// the half-duplex self-block, then collision resolution (with capture)
// against obs's other live arrivals — compacting dead entries in the
// same pass. The caller schedules the completion event.
func (m *Medium) resolveArrival(obs *node, a *arrival, f frame.Frame, power float64, start, end sim.Time) {
	*a = arrival{obs: obs, f: f, start: start, end: end, powerDBm: power}
	// Half-duplex: if the observer is mid-transmission now, it cannot
	// lock onto the arriving frame.
	if obs.txUntil > start {
		a.selfBlocked = true
	}
	live := obs.arrivals[:0]
	for _, other := range obs.arrivals {
		if other.end <= start {
			continue
		}
		switch {
		case a.powerDBm >= other.powerDBm+obs.radio.CaptureDB && obs.radio.CaptureDB > 0:
			other.corrupted = true
		case other.powerDBm >= a.powerDBm+obs.radio.CaptureDB && obs.radio.CaptureDB > 0:
			a.corrupted = true
		default:
			other.corrupted = true
			a.corrupted = true
		}
		live = append(live, other)
	}
	clearTail(obs.arrivals, len(live))
	obs.arrivals = append(live, a)
}

// scheduleBusyRun arms one busy interval [runStart, runEnd) at obs.
// txStart is the transmission start: a run beginning there transitions
// synchronously (we are inside the transmit event at that instant).
func (m *Medium) scheduleBusyRun(obs *node, runStart, runEnd, txStart sim.Time) {
	if runStart == txStart {
		m.busyStart(obs, runStart)
	} else {
		m.sched.AtArg(runStart, busyStartEvent, obs)
	}
	m.sched.AtArg(runEnd, busyEndEvent, obs)
}

// complete finishes an arrival at obs: delivers the frame if it
// survived, then recycles the record.
func (m *Medium) complete(obs *node, a *arrival) {
	// Drop the arrival from the active list (it may already have been
	// compacted out as a dead entry by a later transmission).
	for i, x := range obs.arrivals {
		if x == a {
			last := len(obs.arrivals) - 1
			obs.arrivals[i] = obs.arrivals[last]
			obs.arrivals[last] = nil
			obs.arrivals = obs.arrivals[:last]
			break
		}
	}
	corrupted, selfBlocked, f, end := a.corrupted, a.selfBlocked, a.f, a.end
	withBusyEnd := a.withBusyEnd
	*a = arrival{}
	if m.sharded {
		sh := m.shards[obs.shard]
		sh.freeArrivals = append(sh.freeArrivals, a)
	} else {
		m.freeArrivals = append(m.freeArrivals, a)
	}

	// Fault injection: a frame that survived collisions and half-duplex
	// blocking can still be destroyed by the channel-error model. The
	// MAC experiences it exactly like a collision-corrupted frame (EIFS
	// deferral via FrameCorrupted), which is what a failed CRC looks
	// like on real hardware.
	faultDropped := false
	if !corrupted && !selfBlocked && m.cfg.FrameFaults != nil {
		faultDropped = m.cfg.FrameFaults.Drop(f.Src, obs.id)
		if faultDropped {
			if m.sharded {
				m.shards[obs.shard].faultDrops++ //detlint:allow shardsafe -- indexed by the executing event's own shard: this handler runs on that shard's scheduler
			} else {
				m.faultDrops++
			}
			m.obs.faultDrops.Inc()
		}
	}

	if corrupted || selfBlocked || faultDropped {
		if f.Dst == obs.id && !faultDropped {
			if m.sharded {
				m.shards[obs.shard].collisions++ //detlint:allow shardsafe -- indexed by the executing event's own shard: this handler runs on that shard's scheduler
			} else {
				m.collisions++
			}
			m.obs.collisions.Inc()
		}
		if m.obs.chanOn() {
			switch {
			case faultDropped:
				m.traceOutcome("fault-drop", obs, f, end)
			case selfBlocked:
				m.traceOutcome("self-block", obs, f, end)
			default:
				m.traceOutcome("collision", obs, f, end)
			}
		}
		if !selfBlocked {
			if cl, ok := obs.listener.(CorruptionListener); ok {
				cl.FrameCorrupted(end)
			}
		}
	} else {
		if m.sharded {
			m.shards[obs.shard].deliveries++ //detlint:allow shardsafe -- indexed by the executing event's own shard: this handler runs on that shard's scheduler
		} else {
			m.deliveries++
		}
		m.obs.deliveries.Inc()
		if m.obs.chanOn() {
			m.traceOutcome("deliver", obs, f, end)
		}
		if m.DeliveryTap != nil && f.Dst == obs.id {
			m.DeliveryTap(f, end)
		}
		if obs.listener != nil {
			obs.listener.FrameReceived(f, end)
		}
	}
	// Folded carrier busy-end (v2): after any delivery, preserving the
	// FrameReceived-before-CarrierIdle ordering guarantee.
	if withBusyEnd {
		m.busyEnd(obs, end)
	}
}

func (m *Medium) busyStart(n *node, now sim.Time) {
	n.busyDepth++
	if n.busyDepth == 1 {
		if m.obs.chanOn() {
			m.traceChannel(n, obs.Record{Time: now, Node: n.id, Peer: obs.NoNode, Event: "busy"})
		}
		if n.listener != nil {
			n.listener.CarrierBusy(now)
		}
	}
}

func (m *Medium) busyEnd(n *node, now sim.Time) {
	if n.busyDepth <= 0 {
		panic(fmt.Sprintf("medium: node %d busy depth underflow at %v", n.id, now))
	}
	n.busyDepth--
	if n.busyDepth == 0 {
		if m.obs.chanOn() {
			m.traceChannel(n, obs.Record{Time: now, Node: n.id, Peer: obs.NoNode, Event: "idle"})
		}
		if n.listener != nil {
			n.listener.CarrierIdle(now)
		}
	}
}

// Transmitting reports whether the given node's own transmission is in
// progress at the current instant.
func (m *Medium) Transmitting(id frame.NodeID) bool {
	n := m.lookup(id)
	if n == nil {
		panic(fmt.Sprintf("medium: Transmitting on unattached node %d", id))
	}
	return n.txUntil > n.sched.Now()
}

// Busy reports whether the given node currently senses the channel busy.
func (m *Medium) Busy(id frame.NodeID) bool {
	n := m.lookup(id)
	if n == nil {
		panic(fmt.Sprintf("medium: Busy on unattached node %d", id))
	}
	return n.busyDepth > 0
}

// Position returns the attached node's position.
func (m *Medium) Position(id frame.NodeID) phys.Point {
	n := m.lookup(id)
	if n == nil {
		panic(fmt.Sprintf("medium: Position on unattached node %d", id))
	}
	return n.pos
}

// Radio returns the attached node's radio parameters.
func (m *Medium) Radio(id frame.NodeID) phys.Radio {
	n := m.lookup(id)
	if n == nil {
		panic(fmt.Sprintf("medium: Radio on unattached node %d", id))
	}
	return n.radio
}

// NodeIDs returns the attached node IDs in ascending order.
func (m *Medium) NodeIDs() []frame.NodeID {
	ids := make([]frame.NodeID, len(m.nodes))
	for i, n := range m.nodes {
		ids[i] = n.id
	}
	return ids
}
