package medium

import (
	"fmt"
	"testing"

	"dcfguard/internal/frame"
	"dcfguard/internal/phys"
	"dcfguard/internal/rng"
	"dcfguard/internal/sim"
)

// v2Config returns a shadowed (σ = 1 dB) config on channel model v2.
func v2Config(coherence sim.Time) Config {
	return Config{
		Model:             phys.DefaultShadowing(),
		CoherenceInterval: coherence,
		Channel:           ChannelV2,
	}
}

// shadowedRadio builds the paper's calibrated radio for the shadowed
// (σ = 1 dB) model, with ranges scaled by the given factor — the
// equivalence quickcheck mixes two radio classes to exercise the
// heterogeneous-threshold paths in buildIndex.
func shadowedRadio(rangeScale float64) phys.Radio {
	m := phys.DefaultShadowing()
	return phys.CalibratedRadio(m, 24.5, 250*rangeScale, 0.5, 550*rangeScale, 0.5, 2_000_000)
}

// v2TraceSetup builds a v2 medium over pseudo-random positions in a
// width × 700 m arena (two alternating radio classes) and schedules a
// deterministic script of interleaved RTS/DATA transmissions from every
// node. It returns the scheduler and per-node recorders.
func v2TraceSetup(seed uint64, n int, width float64, coherence sim.Time, brute bool) (*sim.Scheduler, []*recorder) {
	var sched sim.Scheduler
	med := New(&sched, v2Config(coherence), rng.New(seed))
	med.bruteForce = brute

	pos := rng.New(seed).Stream("positions")
	recs := make([]*recorder, n)
	for i := 0; i < n; i++ {
		recs[i] = &recorder{}
		scale := 1.0
		if i%2 == 1 {
			scale = 0.6
		}
		p := phys.Point{X: pos.Float64() * width, Y: pos.Float64() * 700}
		med.Attach(frame.NodeID(i), p, shadowedRadio(scale), recs[i])
	}

	// Script: node k transmits at k·spacing (+ per-round stride), frames
	// alternating short RTS and long DATA so transmissions from distinct
	// senders overlap, while each sender's own are disjoint.
	const rounds = 4
	spacing := 300 * sim.Microsecond
	for r := 0; r < rounds; r++ {
		for k := 0; k < n; k++ {
			src := frame.NodeID(k)
			dst := frame.NodeID((k + 1 + r) % n)
			var f frame.Frame
			if (k+r)%2 == 0 {
				f = testRTS(src, dst)
			} else {
				f = frame.Frame{Type: frame.Data, Src: src, Dst: dst,
					Seq: uint32(r), PayloadBytes: 512}
			}
			at := sim.Time(r*n+k) * spacing
			ff := f
			sched.At(at, func() { med.Transmit(ff.Src, ff) })
		}
	}
	sched.Run(sim.Time(rounds*n)*spacing + sim.Second)
	return &sched, recs
}

// TestV2GridMatchesBruteForce is the grid-index equivalence quickcheck:
// under channel model v2 every shadowing draw is a pure function of the
// (transmitter, observer, frame) tuple, so the spatially-indexed medium
// must produce event-for-event identical traces to an all-pairs
// brute-force enumeration with no feasibility pruning — across random
// topologies, both radio classes, and coherence on/off. A mismatch
// means either the grid missed a feasible pair or the NormBound pruning
// discarded a reachable one.
func TestV2GridMatchesBruteForce(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4, 5}
	sizes := []int{9, 16}
	if testing.Short() {
		seeds = seeds[:2]
		sizes = sizes[:1]
	}
	for _, coherence := range []sim.Time{0, 20 * sim.Microsecond} {
		for _, n := range sizes {
			for _, seed := range seeds {
				name := fmt.Sprintf("n%d-seed%d-coh%v", n, seed, coherence > 0)
				t.Run(name, func(t *testing.T) {
					// 2500 m wide: several grid cells, some pairs out
					// of interaction range entirely.
					_, gridRecs := v2TraceSetup(seed, n, 2500, coherence, false)
					_, bruteRecs := v2TraceSetup(seed, n, 2500, coherence, true)
					for i := range gridRecs {
						g, b := gridRecs[i].events, bruteRecs[i].events
						if len(g) != len(b) {
							t.Fatalf("node %d: %d events with grid, %d brute-force",
								i, len(g), len(b))
						}
						for j := range g {
							if g[j] != b[j] {
								t.Fatalf("node %d event %d: grid %+v, brute-force %+v",
									i, j, g[j], b[j])
							}
						}
					}
				})
			}
		}
	}
}

// TestV2FarPairPruned checks the index actually prunes: a pair far
// outside the maximum interaction radius must not appear in any
// neighbor list, while nearby pairs must.
func TestV2FarPairPruned(t *testing.T) {
	var sched sim.Scheduler
	med := New(&sched, v2Config(0), rng.New(1))
	recs := []*recorder{{}, {}, {}}
	med.Attach(0, phys.Point{X: 0}, shadowedRadio(1), recs[0])
	med.Attach(1, phys.Point{X: 100}, shadowedRadio(1), recs[1])
	med.Attach(2, phys.Point{X: 50000}, shadowedRadio(1), recs[2])
	med.Transmit(0, testRTS(0, 1))
	sched.Run(sim.Second)

	tx := med.byID[0]
	if len(tx.neighbors) != 1 || tx.neighbors[0].obs.id != 1 {
		ids := make([]frame.NodeID, 0, len(tx.neighbors))
		for _, nb := range tx.neighbors {
			ids = append(ids, nb.obs.id)
		}
		t.Fatalf("node 0 neighbor IDs = %v, want [1]", ids)
	}
	if len(recs[2].events) != 0 {
		t.Fatalf("node at 50 km observed events: %v", recs[2].events)
	}
}

// attachInterleaveTrial drives one channel model through an interleaved
// Attach/Transmit sequence with the deterministic (σ = 0) propagation
// model and checks both the power matrix / neighbor index and carrier
// bookkeeping are rebuilt correctly after each late Attach.
func attachInterleaveTrial(t *testing.T, channel ChannelModel) {
	t.Helper()
	cfg := deterministicConfig()
	cfg.Channel = channel
	var sched sim.Scheduler
	med := New(&sched, cfg, rng.New(1))
	recs := map[frame.NodeID]*recorder{}
	attach := func(id frame.NodeID, x float64) {
		recs[id] = &recorder{}
		med.Attach(id, phys.Point{X: x}, detRadio(), recs[id])
	}

	// Phase 1: two nodes in receive range; a transmission builds the
	// cache/index for this two-node topology.
	attach(0, 0)
	attach(1, 100)
	end1 := med.Transmit(0, testRTS(0, 1))
	sched.Run(end1 + sim.Microsecond)
	if got := len(recs[1].frames()); got != 1 {
		t.Fatalf("%v phase 1: node 1 decoded %d frames, want 1", channel, got)
	}

	// Phase 2: attach node 2 — with a lower ID gap filled later — in
	// receive range of node 0 and sense-only range of node 1, then
	// transmit again. The stale two-node cache would either panic
	// (index out of bounds) or silently not deliver to node 2.
	attach(2, 200)
	end2 := med.Transmit(0, testRTS(0, 2))
	sched.Run(end2 + sim.Microsecond)
	if got := len(recs[2].frames()); got != 1 {
		t.Fatalf("%v phase 2: late-attached node 2 decoded %d frames, want 1", channel, got)
	}
	if got := len(recs[1].frames()); got != 2 {
		t.Fatalf("%v phase 2: node 1 decoded %d frames total, want 2", channel, got)
	}

	// Phase 3: transmit from the late-attached node; earlier nodes must
	// see it (the rebuild must cover it as a transmitter, not just an
	// observer), including one attached after *its* first appearance.
	attach(3, 300) // sense-only from node 0 (300 m), receive range of 2
	end3 := med.Transmit(2, testRTS(2, 0))
	sched.Run(end3 + sim.Microsecond)
	if got := len(recs[0].frames()); got != 1 {
		t.Fatalf("%v phase 3: node 0 decoded %d frames, want 1", channel, got)
	}
	if got := len(recs[3].frames()); got != 1 {
		t.Fatalf("%v phase 3: node 3 decoded %d frames, want 1", channel, got)
	}
	// Node 1 at 100 m from node 2: also in range.
	if got := len(recs[1].frames()); got != 3 {
		t.Fatalf("%v phase 3: node 1 decoded %d frames total, want 3", channel, got)
	}

	// Duplicate IDs still panic after the caches are built.
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("%v: duplicate Attach did not panic", channel)
			}
		}()
		med.Attach(2, phys.Point{X: 400}, detRadio(), &recorder{})
	}()
}

// TestAttachTransmitInterleave is the regression test for lazy rebuilds:
// interleaving Attach and Transmit must refresh the propagation cache
// (v1) and the neighbor index (v2) — covering late nodes as both
// observers and transmitters — and duplicate IDs must panic as always.
func TestAttachTransmitInterleave(t *testing.T) {
	for _, ch := range []ChannelModel{ChannelV1, ChannelV2} {
		t.Run(ch.String(), func(t *testing.T) { attachInterleaveTrial(t, ch) })
	}
}
