package medium

import (
	"dcfguard/internal/frame"
	"dcfguard/internal/obs"
	"dcfguard/internal/sim"
)

// mediumObs holds the medium's pre-resolved observability handles. The
// zero value is the disabled state — every hook degrades to a nil-check
// no-op, and nothing here touches RNG or scheduler state (pass-through
// contract, package obs).
type mediumObs struct {
	bus *obs.Bus
	// shardBuses, when non-nil, routes each emission to the node's shard
	// front bus (obs.ShardFanin) instead of the shared bus: shard
	// goroutines must not touch the real sinks. Category subscriptions
	// mirror bus, so chanOn stays a single shared guard.
	shardBuses    []*obs.Bus
	transmissions *obs.Counter
	deliveries    *obs.Counter
	collisions    *obs.Counter
	faultDrops    *obs.Counter
}

// Instrument attaches the medium to a metrics registry and trace bus
// (either may be nil). All by-name handle resolution happens here, once,
// per the detlint obshot rule. The channel counters are system-wide, so
// they are keyed to obs.NoNode.
func (m *Medium) Instrument(reg *obs.Registry, bus *obs.Bus) {
	m.obs = mediumObs{
		bus:           bus,
		transmissions: reg.Counter("medium", obs.NoNode, "transmissions"),
		deliveries:    reg.Counter("medium", obs.NoNode, "deliveries"),
		collisions:    reg.Counter("medium", obs.NoNode, "collisions"),
		faultDrops:    reg.Counter("medium", obs.NoNode, "fault_drops"),
	}
}

// InstrumentShards switches channel-trace emission to per-shard front
// buses (indexed by shard, from obs.ShardFanin). Sharded runs with
// tracing enabled must call it after ConfigureShards: emissions happen
// on shard goroutines, which may only touch their own shard's buffer.
func (m *Medium) InstrumentShards(buses []*obs.Bus) {
	if buses == nil {
		return
	}
	if !m.sharded || len(buses) != len(m.shards) {
		panic("medium: InstrumentShards bus count does not match ConfigureShards")
	}
	m.obs.shardBuses = buses
}

// chanOn is the hot-path guard for channel tracing. It exists as a
// method (rather than an inline bus.Enabled call) because several
// emission sites shadow the obs package name with an observer-node
// variable. The shared bus carries the same subscriptions as any shard
// front bus, so one guard serves both routings.
func (o *mediumObs) chanOn() bool { return o.bus.Enabled(obs.CatChannel) }

// busAt returns the bus emissions concerning node at must go to: the
// node's shard front bus when sharded tracing is wired, the shared bus
// otherwise.
func (m *Medium) busAt(at *node) *obs.Bus {
	if m.obs.shardBuses != nil {
		return m.obs.shardBuses[at.shard]
	}
	return m.obs.bus
}

// traceChannel emits one CatChannel record concerning node at; callers
// gate on chanOn so record construction stays off the disabled path.
func (m *Medium) traceChannel(at *node, r obs.Record) {
	r.Cat = obs.CatChannel
	m.busAt(at).Emit(r)
}

// traceOutcome emits the per-observer completion outcome ("deliver",
// "collision", "self-block", "fault-drop") for a frame ending at end.
func (m *Medium) traceOutcome(event string, at *node, f frame.Frame, end sim.Time) {
	m.busAt(at).Emit(obs.Record{
		Cat: obs.CatChannel, Time: end, Node: at.id, Peer: f.Src,
		Event: event, Aux: f.Type.String(), Seq: f.Seq,
	})
}
