package medium

import (
	"dcfguard/internal/frame"
	"dcfguard/internal/obs"
	"dcfguard/internal/sim"
)

// mediumObs holds the medium's pre-resolved observability handles. The
// zero value is the disabled state — every hook degrades to a nil-check
// no-op, and nothing here touches RNG or scheduler state (pass-through
// contract, package obs).
type mediumObs struct {
	bus           *obs.Bus
	transmissions *obs.Counter
	deliveries    *obs.Counter
	collisions    *obs.Counter
	faultDrops    *obs.Counter
}

// Instrument attaches the medium to a metrics registry and trace bus
// (either may be nil). All by-name handle resolution happens here, once,
// per the detlint obshot rule. The channel counters are system-wide, so
// they are keyed to obs.NoNode.
func (m *Medium) Instrument(reg *obs.Registry, bus *obs.Bus) {
	m.obs = mediumObs{
		bus:           bus,
		transmissions: reg.Counter("medium", obs.NoNode, "transmissions"),
		deliveries:    reg.Counter("medium", obs.NoNode, "deliveries"),
		collisions:    reg.Counter("medium", obs.NoNode, "collisions"),
		faultDrops:    reg.Counter("medium", obs.NoNode, "fault_drops"),
	}
}

// chanOn is the hot-path guard for channel tracing. It exists as a
// method (rather than an inline bus.Enabled call) because several
// emission sites shadow the obs package name with an observer-node
// variable.
func (o *mediumObs) chanOn() bool { return o.bus.Enabled(obs.CatChannel) }

// traceChannel emits one CatChannel record; callers gate on chanOn so
// record construction stays off the disabled path.
func (m *Medium) traceChannel(r obs.Record) {
	r.Cat = obs.CatChannel
	m.obs.bus.Emit(r)
}

// traceOutcome emits the per-observer completion outcome ("deliver",
// "collision", "self-block", "fault-drop") for a frame ending at end.
func (m *Medium) traceOutcome(event string, at *node, f frame.Frame, end sim.Time) {
	m.obs.bus.Emit(obs.Record{
		Cat: obs.CatChannel, Time: end, Node: at.id, Peer: f.Src,
		Event: event, Aux: f.Type.String(), Seq: f.Seq,
	})
}
