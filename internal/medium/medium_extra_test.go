package medium

import (
	"testing"

	"dcfguard/internal/frame"
	"dcfguard/internal/phys"
	"dcfguard/internal/rng"
	"dcfguard/internal/sim"
)

func TestThreeWayCollisionAllLost(t *testing.T) {
	sched, med, recs := setup(t, deterministicConfig(),
		[]phys.Point{{X: 0}, {X: 150}, {X: 300}, {X: 150, Y: 150}})
	med.Transmit(0, testRTS(0, 1))
	med.Transmit(2, testRTS(2, 1))
	med.Transmit(3, testRTS(3, 1))
	sched.Run(sim.Second)
	if n := len(recs[1].frames()); n != 0 {
		t.Fatalf("three-way collision delivered %d frames", n)
	}
	_, del, col := med.Stats()
	if del != 0 || col != 3 {
		t.Fatalf("stats = (del %d, col %d), want (0, 3)", del, col)
	}
}

func TestDeliveryTap(t *testing.T) {
	sched, med, _ := setup(t, deterministicConfig(), []phys.Point{{X: 0}, {X: 100}, {X: 200}})
	var taps []frame.Frame
	med.DeliveryTap = func(f frame.Frame, _ sim.Time) { taps = append(taps, f) }

	f := testRTS(0, 1)
	med.Transmit(0, f)
	sched.Run(sim.Second)
	// The tap fires only for the addressee's copy, not the overhearing
	// node 2's.
	if len(taps) != 1 || taps[0] != f {
		t.Fatalf("delivery taps = %v, want exactly the addressee delivery", taps)
	}
}

func TestDeliveryTapSilentOnCollision(t *testing.T) {
	sched, med, _ := setup(t, deterministicConfig(),
		[]phys.Point{{X: 0}, {X: 150}, {X: 300}})
	taps := 0
	med.DeliveryTap = func(frame.Frame, sim.Time) { taps++ }
	med.Transmit(0, testRTS(0, 1))
	med.Transmit(2, testRTS(2, 1))
	sched.Run(sim.Second)
	if taps != 0 {
		t.Fatalf("delivery tap fired %d times on a collision", taps)
	}
}

func TestTransmittingQuery(t *testing.T) {
	sched, med, _ := setup(t, deterministicConfig(), []phys.Point{{X: 0}, {X: 100}})
	if med.Transmitting(0) {
		t.Fatal("transmitting before any frame")
	}
	end := med.Transmit(0, testRTS(0, 1))
	if !med.Transmitting(0) || med.Transmitting(1) {
		t.Fatal("Transmitting wrong during frame")
	}
	sched.Run(end)
	if med.Transmitting(0) {
		t.Fatal("still transmitting at frame end")
	}
}

func TestUnattachedNodeQueriesPanic(t *testing.T) {
	_, med, _ := setup(t, deterministicConfig(), []phys.Point{{X: 0}})
	for name, call := range map[string]func(){
		"Busy":         func() { med.Busy(9) },
		"Position":     func() { med.Position(9) },
		"Radio":        func() { med.Radio(9) },
		"Transmitting": func() { med.Transmitting(9) },
		"Transmit":     func() { med.Transmit(9, testRTS(9, 0)) },
	} {
		name, call := name, call
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on unattached node did not panic", name)
				}
			}()
			call()
		}()
	}
}

func TestInvalidModelPanics(t *testing.T) {
	var sched sim.Scheduler
	defer func() {
		if recover() == nil {
			t.Fatal("invalid model did not panic")
		}
	}()
	New(&sched, Config{Model: phys.Shadowing{}}, rng.New(1))
}

func TestInvalidRadioAttachPanics(t *testing.T) {
	var sched sim.Scheduler
	med := New(&sched, deterministicConfig(), rng.New(1))
	bad := detRadio()
	bad.BitRate = 0
	defer func() {
		if recover() == nil {
			t.Fatal("invalid radio did not panic")
		}
	}()
	med.Attach(0, phys.Point{}, bad, nil)
}

func TestSequentialStressBookkeeping(t *testing.T) {
	// Hammer the medium with alternating transmissions and verify the
	// per-node arrival lists drain (no leaked arrivals ⇒ counters add up).
	var sched sim.Scheduler
	m := phys.DefaultShadowing()
	m.SigmaDB = 0
	med := New(&sched, Config{Model: m}, rng.New(1))
	recs := []*recorder{{}, {}}
	med.Attach(0, phys.Point{}, detRadio(), recs[0])
	med.Attach(1, phys.Point{X: 100}, detRadio(), recs[1])

	const rounds = 500
	f01 := testRTS(0, 1)
	f10 := testRTS(1, 0)
	gap := f01.Airtime(2_000_000) + 100*sim.Microsecond
	for i := 0; i < rounds; i++ {
		i := i
		at := sim.Time(i) * gap
		sched.At(at, func() {
			if i%2 == 0 {
				med.Transmit(0, f01)
			} else {
				med.Transmit(1, f10)
			}
		})
	}
	sched.Run(sim.Time(rounds+1) * gap)
	tx, del, col := med.Stats()
	if tx != rounds || del != rounds || col != 0 {
		t.Fatalf("stats = (%d, %d, %d), want (%d, %d, 0)", tx, del, col, rounds, rounds)
	}
	if got := len(recs[1].frames()) + len(recs[0].frames()); got != rounds {
		t.Fatalf("delivered %d, want %d", got, rounds)
	}
}
