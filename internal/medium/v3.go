// Channel model v3: v2's counter RNG and grid index plus a uniform
// per-link propagation delay and keyed event ordering — the model built
// to be partitionable across scheduler shards.
//
// Why a new model instead of sharding v2: v1/v2 deliver with zero
// propagation delay, so a transmission and its arrivals share one
// instant, and their relative order is broken by scheduling-order
// sequence numbers. Zero delay means zero lookahead — no conservative
// window can fire a transmit event on one shard before knowing whether
// an earlier-or-equal event on another shard would reach the same
// observers, and the FIFO tie-break is itself an artifact of the
// execution interleaving. v3 changes the model, not just the runtime:
//
//   - Every link carries the same propagation delay V3PropDelay, so a
//     frame sent at t is sensed/decoded at t+δ and ends at end+δ. δ is
//     the cross-shard lookahead: an event at t can only affect another
//     node at t+δ or later.
//   - Same-instant ordering is by explicit (time, key) with
//     partition-invariant keys (sim.FanKey / owner counters, see
//     internal/sim/key.go), so the event stream is a pure function of
//     the model for ANY shard count — including 1, which is why serial
//     and sharded v3 runs are bit-identical and a single golden pins
//     them both.
//
// δ = 10 µs (= SIFS, half a slot) is physically generous — 3 km at the
// speed of light, versus the paper's ≤ 250 m ranges — but behaviorally
// safe: every DCF response gap (SIFS, DIFS, backoff slots) is measured
// at the receiver from its local arrival instants, and the protocol's
// timeout slack (2 slots around each expected response) absorbs the
// extra 2δ round trip because δ < SlotTime. The experiment layer
// asserts that inequality when deriving the lookahead.
//
// Sharding (ConfigureShards) assigns each node to one scheduler shard.
// Same-shard arrivals are scheduled directly; cross-shard arrivals are
// buffered in per-(source, destination) outboxes and injected at the
// window barrier by ExchangeShardMessages, which the coordinator calls
// single-threadedly. Outboxes are slices drained in fixed (source,
// destination, append) order — never map iteration — though the queue's
// total (time, key) order makes results independent of injection order
// anyway.
package medium

import (
	"fmt"

	"dcfguard/internal/frame"
	"dcfguard/internal/rng"
	"dcfguard/internal/sim"
)

// V3PropDelay is channel model v3's uniform per-link propagation delay,
// and therefore the sharded kernel's lookahead bound. It must stay
// strictly below the MAC slot time (asserted by the experiment layer)
// so the 2δ response round trip hides inside DCF's 2-slot timeout
// slack.
const V3PropDelay = 10 * sim.Microsecond

// mediumShard is the per-shard slice of the medium's mutable state:
// everything a shard goroutine touches per event lives here (or on the
// observer's node, which is owned by its shard), so shard goroutines
// never write shared medium fields.
type mediumShard struct {
	sched *sim.Scheduler
	// freeArrivals/freeMsgs pool this shard's records. A record is
	// allocated by the goroutine that owns the pool's shard and released
	// by the goroutine of the shard it was delivered on, so each pool is
	// only ever touched by its own shard's goroutine.
	freeArrivals []*arrival
	freeMsgs     []*v3msg
	// outbox[dst] buffers arrivals fanned out from this shard to nodes
	// of shard dst within the current window; the coordinator drains it
	// at the barrier.
	outbox [][]*v3msg

	transmissions uint64
	deliveries    uint64
	collisions    uint64
	faultDrops    uint64
}

// v3msg is one (transmission, observer) arrival in flight: everything
// deliverV3 needs to replay the arrival on the observer's shard.
type v3msg struct {
	obs       *node
	f         frame.Frame
	key       uint64
	when, end sim.Time
	power     float64
	decodable bool
}

// v3ArrivalEvent is the pooled trampoline for arrival messages.
func v3ArrivalEvent(arg any, when sim.Time) {
	msg := arg.(*v3msg)
	msg.obs.m.deliverV3(msg, when)
}

// ConfigureShards partitions the attached nodes across the given keyed
// schedulers (assign maps node ID → shard index) and switches the
// medium to sharded operation. Channel model v3 only; must be called
// after the last Attach. The neighbor index is built eagerly: a lazy
// rebuild at the first Transmit would race across shard goroutines.
func (m *Medium) ConfigureShards(scheds []*sim.Scheduler, assign func(frame.NodeID) int) {
	if m.cfg.Channel != ChannelV3 {
		panic(fmt.Sprintf("medium: ConfigureShards requires channel model v3, have %v", m.cfg.Channel))
	}
	if m.sharded {
		panic("medium: ConfigureShards called twice")
	}
	ns := len(scheds)
	if ns < 2 {
		panic("medium: ConfigureShards needs at least 2 schedulers")
	}
	m.shards = make([]*mediumShard, ns)
	for i, s := range scheds {
		m.shards[i] = &mediumShard{sched: s, outbox: make([][]*v3msg, ns)}
	}
	for _, n := range m.nodes {
		si := assign(n.id)
		if si < 0 || si >= ns {
			panic(fmt.Sprintf("medium: node %d assigned to shard %d of %d", n.id, si, ns))
		}
		n.shard = si
		n.sched = scheds[si]
	}
	m.sharded = true
	if m.cacheDirty {
		m.buildIndex()
	}
}

// newMsg takes a message record from the shard's pool (or the serial
// pool), or allocates one.
func (m *Medium) newMsg(shard int) *v3msg {
	pool := &m.freeMsgs
	if m.sharded {
		pool = &m.shards[shard].freeMsgs
	}
	if n := len(*pool); n > 0 {
		msg := (*pool)[n-1]
		(*pool)[n-1] = nil
		*pool = (*pool)[:n-1]
		return msg
	}
	return &v3msg{}
}

// releaseMsg returns a delivered message to the pool of the shard it
// was delivered on (messages migrate between pools with the traffic).
func (m *Medium) releaseMsg(shard int, msg *v3msg) {
	*msg = v3msg{}
	if m.sharded {
		sh := m.shards[shard]
		sh.freeMsgs = append(sh.freeMsgs, msg)
		return
	}
	m.freeMsgs = append(m.freeMsgs, msg)
}

// arrivalFor mirrors newArrival for the sharded pools.
func (m *Medium) arrivalFor(shard int) *arrival {
	if !m.sharded {
		return m.newArrival()
	}
	pool := &m.shards[shard].freeArrivals
	if n := len(*pool); n > 0 {
		a := (*pool)[n-1]
		(*pool)[n-1] = nil
		*pool = (*pool)[:n-1]
		return a
	}
	return &arrival{}
}

// fanOutV3 computes per-observer outcomes for one transmission under
// channel model v3. Draw derivation is identical to fanOutV2 — same
// pair keys, same frame counters, same uniform thresholds — so at equal
// seeds v3 sees the very shadowing draws v2 does. What differs is
// delivery: each sensed observer gets an arrival message at now+δ
// keyed by sim.FanKey(tx, frame, obs), scheduled directly on the
// observer's shard when local and buffered in the outbox for the
// barrier exchange when remote.
func (m *Medium) fanOutV3(tx *node, f frame.Frame, now, end sim.Time) {
	delta := rng.Mix64Delta(tx.txCount)
	frameIdx := tx.txCount
	tx.txCount++
	sigma := m.cfg.Model.SigmaDB
	var txShard *mediumShard
	if m.sharded {
		txShard = m.shards[tx.shard]
	}
	for i := range tx.neighbors {
		nb := &tx.neighbors[i]
		u := rng.CounterUniform(rng.Mix64Pre(nb.pairKey, delta), 0)
		if u < nb.uCs {
			continue // neither sensed nor decodable
		}
		obs := nb.obs
		msg := m.newMsg(tx.shard)
		msg.obs = obs
		msg.f = f
		msg.key = sim.FanKey(uint64(tx.id), frameIdx, uint64(obs.id))
		msg.when = now + V3PropDelay
		msg.end = end + V3PropDelay
		if u >= nb.uRx {
			msg.decodable = true
			msg.power = nb.meanDBm + sigma*rng.InvNormCDF(u)
		}
		if txShard == nil || obs.shard == tx.shard {
			obs.sched.AtKeyedArg(msg.when, msg.key, v3ArrivalEvent, msg)
		} else {
			txShard.outbox[obs.shard] = append(txShard.outbox[obs.shard], msg)
		}
	}
}

// deliverV3 replays one arrival at its observer: carrier goes busy at
// the arrival instant; a decodable arrival is resolved against the
// observer's live arrivals and completes (with the folded busy-end) at
// the frame's delayed end, a sensed-only arrival just schedules the
// busy-end. Both follow-up events reuse the message's fan key — each
// observer gets exactly one of them per transmission, and the arrival
// and end instants differ (airtime is positive), so keys stay unique
// per instant.
func (m *Medium) deliverV3(msg *v3msg, now sim.Time) {
	obs := msg.obs
	m.busyStart(obs, now)
	if msg.decodable {
		a := m.arrivalFor(obs.shard)
		m.resolveArrival(obs, a, msg.f, msg.power, now, msg.end)
		a.withBusyEnd = true
		obs.sched.AtKeyedArg(msg.end, msg.key, completeEvent, a)
	} else {
		obs.sched.AtKeyedArg(msg.end, msg.key, busyEndEvent, obs)
	}
	m.releaseMsg(obs.shard, msg)
}

// ExchangeShardMessages drains every shard's outboxes into the
// destination schedulers. The shard coordinator calls it at each window
// barrier with all shard goroutines parked, so it runs single-threaded.
// Rows are slices walked in fixed (source shard, destination shard,
// append) order — deterministic by construction, and the keyed queue
// order makes the results injection-order-independent anyway.
func (m *Medium) ExchangeShardMessages() {
	for _, src := range m.shards {
		for dst, row := range src.outbox {
			if len(row) == 0 {
				continue
			}
			sched := m.shards[dst].sched
			for i, msg := range row {
				sched.AtKeyedArg(msg.when, msg.key, v3ArrivalEvent, msg)
				row[i] = nil
			}
			src.outbox[dst] = row[:0]
		}
	}
}
