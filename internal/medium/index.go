// Channel model v2: per-pair counter RNG plus a spatial neighbor index.
//
// v1 couples every transmission to every attached node through the
// shared sequential shadowing stream: even a pair the NormBound proof
// rules out must consume its draw to keep the sequence aligned, making
// Transmit Θ(n) per frame. v2 removes the coupling at the source — each
// shadowing sample is a pure function of (base key, transmitter ID,
// observer ID, transmitter frame index[, coherence segment]) via
// rng.Mix64/rng.CounterNorm — so a skipped pair costs zero draws and no
// sample depends on iteration order. On top of that, a uniform grid
// over attached positions bounds each transmitter's interaction radius
// (the largest distance where mean + rng.NormBound·σ can still clear
// the lowest carrier-sense/receive threshold in the network) and
// precomputes per-transmitter neighbor lists, so Transmit iterates only
// O(reachable) observers. Lists are rebuilt lazily at the first
// Transmit after the last Attach, mirroring the v1 cache discipline.
package medium

import (
	"math"
	"sort"

	"dcfguard/internal/frame"
	"dcfguard/internal/phys"
	"dcfguard/internal/rng"
	"dcfguard/internal/sim"
)

// neighbor is one feasible (transmitter, observer) link in the v2
// index: the observer, the deterministic mean RX power of the pair, the
// pair's counter-RNG key, and the pair's thresholds mapped to uniform
// space — uCs/uRx are Φ((thresh−mean)/σ), so the per-frame sensing and
// decoding decisions are plain comparisons against the raw uniform and
// the normal CDF is inverted only for decodable arrivals.
type neighbor struct {
	obs      *node
	meanDBm  float64
	pairKey  uint64
	uCs, uRx float64
}

// cellKey addresses one grid cell.
type cellKey struct{ cx, cy int32 }

// grid is a uniform spatial hash over attached positions. The cell side
// equals the network's largest interaction radius, so every node within
// any transmitter's radius lies in the 3×3 cell block around it.
type grid struct {
	cell  float64
	cells map[cellKey][]*node
}

func newGrid(cell float64, nodes []*node) *grid {
	if cell <= 0 {
		cell = 1 // no pair is feasible; any positive cell size works
	}
	g := &grid{cell: cell, cells: make(map[cellKey][]*node, len(nodes))}
	for _, nd := range nodes {
		k := g.keyFor(nd.pos)
		g.cells[k] = append(g.cells[k], nd)
	}
	return g
}

func (g *grid) keyFor(p phys.Point) cellKey {
	return cellKey{int32(math.Floor(p.X / g.cell)), int32(math.Floor(p.Y / g.cell))}
}

// visit calls fn for every node in the 3×3 cell block around p. Cell
// contents are in attach (ascending ID) order and the block is walked
// in fixed order, so enumeration is deterministic.
func (g *grid) visit(p phys.Point, fn func(*node)) {
	c := g.keyFor(p)
	for dy := int32(-1); dy <= 1; dy++ {
		for dx := int32(-1); dx <= 1; dx++ {
			for _, nd := range g.cells[cellKey{c.cx + dx, c.cy + dy}] {
				fn(nd)
			}
		}
	}
}

// pairKeyFor derives the counter-RNG key of the ordered (tx, obs) link.
func (m *Medium) pairKeyFor(tx, obs frame.NodeID) uint64 {
	return rng.Mix64(rng.Mix64(m.v2Base, uint64(tx)), uint64(obs))
}

// buildIndex rebuilds the v2 neighbor lists. A pair is feasible when
// mean + rng.NormBound·σ — an upper bound no counter draw can beat —
// reaches the observer's carrier-sense or receive threshold; the same
// proof as v1's outOfRange, but applied to prune enumeration rather
// than just allocation. Radii use the network-wide lowest threshold, a
// safe over-approximation under heterogeneous radios; the per-pair
// filter is exact.
func (m *Medium) buildIndex() {
	slack := rng.NormBound * m.cfg.Model.SigmaDB
	minThresh := math.Inf(1)
	for _, nd := range m.nodes {
		if t := nd.radio.CsThreshDBm; t < minThresh {
			minThresh = t
		}
		if t := nd.radio.RxThreshDBm; t < minThresh {
			minThresh = t
		}
	}
	maxReach := 0.0
	for i, nd := range m.nodes {
		nd.idx = i
		nd.reachM = m.cfg.Model.MaxRangeFor(nd.radio.TxPowerDBm, minThresh-slack)
		if nd.reachM > maxReach {
			maxReach = nd.reachM
		}
	}

	appendFeasible := func(tx, obs *node) {
		if obs == tx {
			return
		}
		d := tx.pos.Distance(obs.pos)
		mean := m.cfg.Model.MeanRxPowerDBm(tx.radio.TxPowerDBm, d)
		if !m.bruteForce {
			bound := mean + slack
			if bound < obs.radio.CsThreshDBm && bound < obs.radio.RxThreshDBm {
				return
			}
		}
		tx.neighbors = append(tx.neighbors, neighbor{
			obs:     obs,
			meanDBm: mean,
			pairKey: m.pairKeyFor(tx.id, obs.id),
			uCs:     uniformThresh(obs.radio.CsThreshDBm, mean, m.cfg.Model.SigmaDB),
			uRx:     uniformThresh(obs.radio.RxThreshDBm, mean, m.cfg.Model.SigmaDB),
		})
	}

	if m.bruteForce {
		// Test reference: every ordered pair, no pruning, no grid.
		for _, tx := range m.nodes {
			tx.neighbors = tx.neighbors[:0]
			for _, obs := range m.nodes {
				appendFeasible(tx, obs)
			}
		}
	} else {
		g := newGrid(maxReach, m.nodes)
		for _, tx := range m.nodes {
			tx.neighbors = tx.neighbors[:0]
			txp := tx
			g.visit(tx.pos, func(obs *node) { appendFeasible(txp, obs) })
		}
	}
	// Ascending observer ID, so same-instant events enqueue in the same
	// order as v1 (results are order-independent, goldens are not).
	for _, tx := range m.nodes {
		nbs := tx.neighbors
		sort.Slice(nbs, func(i, j int) bool { return nbs[i].obs.id < nbs[j].obs.id })
	}
	m.cacheDirty = false
}

// uniformThresh maps a dBm threshold to the uniform-space boundary
// Φ((thresh−mean)/σ): a draw with uniform u clears the threshold
// exactly when u ≥ Φ((thresh−mean)/σ), because mean + σ·Φ⁻¹(u) ≥ thresh
// ⇔ u ≥ Φ((thresh−mean)/σ) (Φ monotone). With σ = 0 the decision is
// deterministic: 0 when the mean clears the threshold, 2 (unreachable —
// uniforms are < 1) when it does not.
func uniformThresh(threshDBm, meanDBm, sigma float64) float64 {
	if sigma <= 0 {
		if meanDBm >= threshDBm {
			return 0
		}
		return 2
	}
	return rng.NormCDF((threshDBm - meanDBm) / sigma)
}

// fanOutV2 computes per-observer outcomes for one transmission under
// channel model v2: only the precomputed feasible neighbors are
// visited, and each draw comes from the pair's counter stream indexed
// by the transmitter's frame counter (segment draws continue the same
// frame key from counter 1). The fast path decides sensing and decoding
// by comparing the raw uniform against the neighbor's precomputed
// boundaries and only inverts the CDF for decodable arrivals (whose
// power feeds capture resolution); sensed-only observers never touch
// the inverse CDF.
func (m *Medium) fanOutV2(tx *node, f frame.Frame, now, end sim.Time) {
	// One Mix64 base per transmission: the frame index's contribution to
	// every per-observer key is the same (frameIdx+1)·γ term, so it is
	// computed once and each observer pays one add + finalize.
	// Mix64Pre(pairKey, delta) ≡ Mix64(pairKey, frameIdx) bit-for-bit
	// (rng.TestMix64BatchedIdentity), so draws — and goldens — are
	// unchanged.
	delta := rng.Mix64Delta(tx.txCount)
	tx.txCount++
	sigma := m.cfg.Model.SigmaDB
	if m.cfg.CoherenceInterval > 0 {
		for i := range tx.neighbors {
			nb := &tx.neighbors[i]
			frameKey := rng.Mix64Pre(nb.pairKey, delta)
			power := nb.meanDBm + sigma*rng.CounterNorm(frameKey, 0)
			m.arriveAtV2Coherent(nb, f, power, frameKey, now, end)
		}
		return
	}
	for i := range tx.neighbors {
		nb := &tx.neighbors[i]
		u := rng.CounterUniform(rng.Mix64Pre(nb.pairKey, delta), 0)
		if u < nb.uCs {
			continue // neither sensed nor decodable
		}
		// Decodable implies sensed (RxThresh ≥ CsThresh ⇒ uRx ≥ uCs),
		// so the decodable branch folds the busy-end into the completion
		// event — one heap event per observer.
		if u >= nb.uRx {
			power := nb.meanDBm + sigma*rng.InvNormCDF(u)
			m.admitArrival(nb.obs, f, power, now, end).withBusyEnd = true
			m.busyStart(nb.obs, now)
		} else {
			m.busyStart(nb.obs, now)
			m.sched.AtArg(end, busyEndEvent, nb.obs)
		}
	}
}

// arriveAtV2Coherent mirrors the v1 coherence path in arriveAt — the
// first interval reuses the frame-level draw, later intervals re-draw
// the sensing decision, and adjacent sensed intervals merge into
// maximal busy runs — with segment draws taken from the frame's counter
// stream instead of the shared sequential source.
func (m *Medium) arriveAtV2Coherent(nb *neighbor, f frame.Frame, power float64, frameKey uint64, start, end sim.Time) {
	obs := nb.obs
	if power >= obs.radio.RxThreshDBm {
		m.admitArrival(obs, f, power, start, end)
	}

	segPower := power
	ctr := uint64(1)
	var runStart sim.Time
	inRun := false
	for segStart := start; segStart < end; segStart += m.cfg.CoherenceInterval {
		sensed := segPower >= obs.radio.CsThreshDBm
		if sensed && !inRun {
			runStart, inRun = segStart, true
		} else if !sensed && inRun {
			m.scheduleBusyRun(obs, runStart, segStart, start)
			inRun = false
		}
		segPower = nb.meanDBm + m.cfg.Model.SigmaDB*rng.CounterNorm(frameKey, ctr)
		ctr++
	}
	if inRun {
		m.scheduleBusyRun(obs, runStart, end, start)
	}
}
