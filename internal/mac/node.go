package mac

import (
	"fmt"

	"dcfguard/internal/frame"
	"dcfguard/internal/medium"
	"dcfguard/internal/sim"
)

// ReceiverHook observes and steers the receiver side of DCF exchanges.
// The paper's detection, correction and diagnosis logic (internal/core)
// implements this interface; plain 802.11 receivers use a nil hook.
type ReceiverHook interface {
	// OnRTS is called when an RTS addressed to this node is decoded and
	// the node is able to respond. start/end delimit the RTS airtime.
	// respond=false suppresses the CTS (used by the diagnosis scheme's
	// blocking mode and by attempt-number verification drops).
	// assigned is the backoff advertised in the CTS; negative means no
	// field (plain 802.11).
	OnRTS(rts frame.Frame, start, end sim.Time) (respond bool, assigned int)
	// OnData is called when a DATA frame addressed to this node is
	// decoded (duplicates included). start/end delimit its airtime.
	// ack=false suppresses both the ACK and the delivery (the blocking
	// response in basic-access mode); assigned is advertised in the
	// ACK, negative meaning no field.
	OnData(data frame.Frame, start, end sim.Time) (ack bool, assigned int)
	// OnAckSent is called when this node finishes transmitting an ACK
	// to `to` for sequence seq. The paper's observation window for the
	// next packet from `to` starts here.
	OnAckSent(to frame.NodeID, seq uint32, end sim.Time)
	// OnCarrierBusy/OnCarrierIdle mirror the node's carrier-sense
	// transitions so the hook can count idle slots.
	OnCarrierBusy(now sim.Time)
	OnCarrierIdle(now sim.Time)
}

// Callbacks are optional observation points for traffic generators and
// metrics. Nil fields are skipped.
type Callbacks struct {
	// OnSendSuccess fires at the sender when the ACK for a packet is
	// received. attempts is the number of RTS transmissions used;
	// enqueuedAt is when the packet entered the interface queue, so
	// now − enqueuedAt is the packet's total MAC delay.
	OnSendSuccess func(dst frame.NodeID, seq uint32, payloadBytes, attempts int, enqueuedAt, now sim.Time)
	// OnSendDrop fires at the sender when a packet exhausts the retry
	// limit and is discarded.
	OnSendDrop func(dst frame.NodeID, seq uint32, now sim.Time)
	// OnDeliver fires at the receiver when a non-duplicate DATA frame
	// is accepted.
	OnDeliver func(src frame.NodeID, seq uint32, payloadBytes int, now sim.Time)
	// OnQueueSpace fires at the sender whenever the interface queue
	// gains room (a packet finished or was dropped). Backlogged sources
	// refill from here.
	OnQueueSpace func(now sim.Time)
}

// senderState enumerates the transmit-side DCF states.
type senderState int

const (
	// stateIdle: nothing queued.
	stateIdle senderState = iota + 1
	// stateContend: counting down backoff (possibly frozen).
	stateContend
	// stateTxRTS: RTS on the air.
	stateTxRTS
	// stateWaitCTS: RTS sent, CTS awaited.
	stateWaitCTS
	// stateSIFSData: CTS received, DATA scheduled after SIFS.
	stateSIFSData
	// stateTxData: DATA on the air.
	stateTxData
	// stateWaitAck: DATA sent, ACK awaited.
	stateWaitAck
)

func (s senderState) String() string {
	switch s {
	case stateIdle:
		return "idle"
	case stateContend:
		return "contend"
	case stateTxRTS:
		return "txRTS"
	case stateWaitCTS:
		return "waitCTS"
	case stateSIFSData:
		return "sifsData"
	case stateTxData:
		return "txData"
	case stateWaitAck:
		return "waitAck"
	default:
		return fmt.Sprintf("senderState(%d)", int(s))
	}
}

// packet is one queued MSDU.
type packet struct {
	dst        frame.NodeID
	seq        uint32
	bytes      int
	enqueuedAt sim.Time
}

// Node is one 802.11 DCF station: a transmit queue with the sender state
// machine, and the receiver responder. It implements medium.Listener.
//
// Field layout: the channel-view and backoff fields touched by every
// carrier transition are grouped at the top of the struct so they share
// cache lines with each other (and with the scheduler/medium pointers
// every callback dereferences) rather than with cold configuration.
// Nodes themselves are best allocated contiguously via Arena — the
// experiment runner does — so a sweep over stations walks memory
// linearly instead of chasing individually-boxed structs.
type Node struct {
	id    frame.NodeID
	sched *sim.Scheduler
	med   *medium.Medium

	// Channel view + backoff engine (hot: touched on every carrier
	// transition and countdown event).
	physBusy   bool
	counting   bool     // countdown currently running
	committed  bool     // countdown expired this instant; transmit regardless of CS
	eifsNext   bool     // next resume waits EIFS (corrupted reception seen)
	state      senderState
	remaining  int      // backoff slots left to count
	navUntil   sim.Time
	lastBusyAt sim.Time // most recent carrier busy transition
	resumeWait sim.Time // the interframe space the current countdown waited
	idleStart  sim.Time
	// cachedBitRate memoises med.Radio(id).BitRate — immutable once the
	// node is attached, but looked up on every RTS/DATA/EIFS airtime
	// computation. Zero until the first bitRate() call (the radio is not
	// attached yet when NewNode runs).
	cachedBitRate int64

	params Params
	policy BackoffPolicy
	hook   ReceiverHook
	cb     Callbacks

	// Sender side.
	queue     []packet
	nextSeq   uint32
	attempt   int
	doneTimer *sim.Timer // fires when countdown reaches zero
	navTimer  *sim.Timer // re-evaluates the channel when the NAV expires
	respTimer *sim.Timer // CTS/ACK timeout

	// Receiver side.
	lastSeq map[frame.NodeID]uint32 // highest delivered seq per sender

	// sendDataFn is n.sendData bound once, so arming the post-CTS SIFS
	// wait does not allocate a fresh method value per exchange.
	sendDataFn func()
	// freeResponses pools the SIFS-deferred CTS/ACK response records.
	freeResponses []*pendingTx

	// Counters.
	txSuccess, txDrop, rxDeliver uint64

	// obs holds the pre-resolved observability handles (see obs.go);
	// the zero value means instrumentation is off.
	obs nodeObs
}

// pendingTx is a SIFS-deferred response (CTS or ACK) waiting to go on
// the air. Records are pooled per node: one is taken when the response
// is armed and recycled when it fires, so steady-state responses
// allocate nothing. Responses are never cancelled, which is what makes
// the single-owner recycle safe.
type pendingTx struct {
	n   *Node
	f   frame.Frame
	ack bool // fire OnAckSent after an ACK transmit
}

// sendResponseEvent is the pooled-event trampoline transmitting a
// deferred CTS/ACK response.
func sendResponseEvent(arg any, _ sim.Time) {
	p := arg.(*pendingTx)
	n, f, isAck := p.n, p.f, p.ack
	*p = pendingTx{}
	n.freeResponses = append(n.freeResponses, p)
	if n.med.Transmitting(n.id) {
		return // half-duplex conflict with our own exchange; the sender retries
	}
	end := n.med.Transmit(n.id, f)
	if isAck && n.hook != nil {
		n.hook.OnAckSent(f.Dst, f.Seq, end)
	}
}

// scheduleResponse arms f to be transmitted one SIFS from now.
func (n *Node) scheduleResponse(f frame.Frame, isAck bool) {
	var p *pendingTx
	if k := len(n.freeResponses); k > 0 {
		p = n.freeResponses[k-1]
		n.freeResponses[k-1] = nil
		n.freeResponses = n.freeResponses[:k-1]
	} else {
		p = &pendingTx{}
	}
	*p = pendingTx{n: n, f: f, ack: isAck}
	n.sched.AfterArg(n.params.SIFS, sendResponseEvent, p)
}

// navProbeEvent re-checks an overheard-RTS NAV one CTS turnaround after
// the RTS ended (802.11 §9.2.5.4). The RTS end instant is recovered from
// the fire time, so the event needs no capturing closure.
func navProbeEvent(arg any, when sim.Time) {
	n := arg.(*Node)
	bitRate := n.bitRate()
	probe := n.params.SIFS + frame.Airtime(frame.CTSBytes, bitRate) + 2*n.params.SlotTime
	n.maybeResetNAV(when - probe)
}

var (
	_ medium.Listener           = (*Node)(nil)
	_ medium.CorruptionListener = (*Node)(nil)
)

// NewNode builds a station and registers it on the medium at pos with
// the radio configured in the medium's Attach call (the caller attaches).
func NewNode(id frame.NodeID, params Params, sched *sim.Scheduler, med *medium.Medium,
	policy BackoffPolicy, hook ReceiverHook, cb Callbacks) *Node {
	return NewNodeIn(nil, id, params, sched, med, policy, hook, cb)
}

// NewNodeIn is NewNode with the Node allocated from a (nil-safe) Arena,
// so a run's stations occupy one contiguous block.
func NewNodeIn(a *Arena, id frame.NodeID, params Params, sched *sim.Scheduler, med *medium.Medium,
	policy BackoffPolicy, hook ReceiverHook, cb Callbacks) *Node {
	if err := params.Validate(); err != nil {
		panic(fmt.Sprintf("mac: node %d: %v", id, err))
	}
	if policy == nil {
		panic(fmt.Sprintf("mac: node %d: nil policy", id))
	}
	n := a.take()
	*n = Node{
		id:      id,
		params:  params,
		sched:   sched,
		med:     med,
		policy:  policy,
		hook:    hook,
		cb:      cb,
		state:   stateIdle,
		lastSeq: make(map[frame.NodeID]uint32),
	}
	n.doneTimer = sim.NewTimer(sched, n.backoffDone)
	n.navTimer = sim.NewTimer(sched, n.navExpired)
	n.respTimer = sim.NewTimer(sched, n.responseTimeout)
	n.sendDataFn = n.sendData
	return n
}

// ID returns the node's identifier.
func (n *Node) ID() frame.NodeID { return n.id }

// bitRate returns the node's radio bit rate, resolved from the medium
// once and memoised (phys.Radio.Validate rejects BitRate <= 0, so zero
// safely means "not yet resolved").
func (n *Node) bitRate() int64 {
	if n.cachedBitRate == 0 {
		n.cachedBitRate = n.med.Radio(n.id).BitRate
	}
	return n.cachedBitRate
}

// Counters returns (packets acknowledged as sender, packets dropped as
// sender, packets delivered as receiver).
func (n *Node) Counters() (success, drop, deliver uint64) {
	return n.txSuccess, n.txDrop, n.rxDeliver
}

// QueueLen returns the current interface-queue depth.
func (n *Node) QueueLen() int { return len(n.queue) }

// SetQueueSpaceCallback installs the OnQueueSpace callback after
// construction. Traffic sources need the node to exist before they can
// provide their refill function, so this seam breaks that cycle.
func (n *Node) SetQueueSpaceCallback(fn func(now sim.Time)) { n.cb.OnQueueSpace = fn }

// Enqueue appends a packet for dst. It reports false when the queue is
// full. Enqueueing starts contention if the sender is idle.
func (n *Node) Enqueue(dst frame.NodeID, payloadBytes int) bool {
	if dst == n.id {
		panic(fmt.Sprintf("mac: node %d enqueue to self", n.id))
	}
	if len(n.queue) >= n.params.QueueCap {
		return false
	}
	n.nextSeq++
	n.queue = append(n.queue, packet{
		dst: dst, seq: n.nextSeq, bytes: payloadBytes, enqueuedAt: n.sched.Now(),
	})
	n.noteQueueLen()
	if n.state == stateIdle {
		n.startContention()
	}
	return true
}

// ---- channel view ----------------------------------------------------

func (n *Node) channelClear() bool {
	return !n.physBusy && n.sched.Now() >= n.navUntil
}

// CarrierBusy implements medium.Listener.
func (n *Node) CarrierBusy(now sim.Time) {
	n.physBusy = true
	n.lastBusyAt = now
	if n.hook != nil {
		n.hook.OnCarrierBusy(now)
	}
	n.freezeCountdown(now)
}

// CarrierIdle implements medium.Listener.
func (n *Node) CarrierIdle(now sim.Time) {
	n.physBusy = false
	if n.hook != nil {
		n.hook.OnCarrierIdle(now)
	}
	if n.state == stateContend {
		n.resumeCountdown()
	}
}

func (n *Node) setNAV(until sim.Time) {
	if until <= n.navUntil {
		return
	}
	n.navUntil = until
	n.freezeCountdown(n.sched.Now())
	n.navTimer.ResetAt(until)
}

func (n *Node) navExpired() {
	if n.state == stateContend {
		n.resumeCountdown()
	}
}

// maybeResetNAV clears the NAV set by an RTS overheard at rtsEnd when no
// carrier activity followed it (the granted exchange never started).
func (n *Node) maybeResetNAV(rtsEnd sim.Time) {
	if n.lastBusyAt > rtsEnd || n.physBusy {
		return
	}
	if n.navUntil > n.sched.Now() {
		n.navUntil = n.sched.Now()
		n.navTimer.Stop()
		if n.state == stateContend {
			n.resumeCountdown()
		}
	}
}

// ---- backoff engine ----------------------------------------------------

func (n *Node) startContention() {
	if len(n.queue) == 0 {
		n.setState(stateIdle)
		return
	}
	head := n.queue[0]
	n.setState(stateContend)
	n.attempt = 1
	n.remaining = clampSlots(n.policy.InitialBackoff(head.dst, n.params.CW(1)))
	n.counting = false
	n.resumeCountdown()
}

func (n *Node) retryContention() {
	head := n.queue[0]
	n.setState(stateContend)
	n.remaining = clampSlots(n.policy.RetryBackoff(head.dst, n.attempt, n.params.CW(n.attempt)))
	n.counting = false
	n.resumeCountdown()
}

func clampSlots(s int) int {
	if s < 0 {
		return 0
	}
	return s
}

func (n *Node) resumeCountdown() {
	if n.counting || n.state != stateContend || !n.channelClear() {
		return
	}
	n.counting = true
	n.idleStart = n.sched.Now()
	n.resumeWait = n.params.DIFS()
	if n.params.UseEIFS && n.eifsNext {
		n.resumeWait = n.params.EIFS(n.bitRate())
		n.eifsNext = false
	}
	n.doneTimer.Reset(n.resumeWait + sim.Time(n.remaining)*n.params.SlotTime)
}

func (n *Node) freezeCountdown(now sim.Time) {
	if !n.counting {
		return
	}
	// If the countdown expires at this very instant, the station has
	// already committed to transmitting in this slot: a transmission
	// starting simultaneously (the cause of this busy transition) must
	// collide with ours, not silently defer it.
	if n.doneTimer.Armed() && n.doneTimer.Deadline() == now {
		n.committed = true
		return
	}
	n.counting = false
	n.doneTimer.Stop()
	elapsed := now - n.idleStart - n.resumeWait
	if elapsed > 0 {
		consumed := int(elapsed / n.params.SlotTime)
		if consumed > n.remaining {
			consumed = n.remaining
		}
		n.remaining -= consumed
	}
}

func (n *Node) backoffDone() {
	if n.state != stateContend {
		panic(fmt.Sprintf("mac: node %d backoff fired in state %v", n.id, n.state))
	}
	if !n.channelClear() && !n.committed {
		// A NAV set exactly at the expiry instant; refreeze and wait.
		n.counting = false
		n.remaining = 0
		return
	}
	n.counting = false
	n.committed = false
	n.remaining = 0
	if n.params.BasicAccess {
		n.sendDataDirect()
	} else {
		n.sendRTS()
	}
}

// ---- sender side -------------------------------------------------------

func (n *Node) sendRTS() {
	head := n.queue[0]
	bitRate := n.bitRate()
	ctsAir := frame.Airtime(frame.CTSBytes, bitRate)
	dataAir := frame.Airtime(frame.DataOverhead+head.bytes, bitRate)
	ackAir := frame.Airtime(frame.AckBytes, bitRate)
	reserve := 3*n.params.SIFS + ctsAir + dataAir + ackAir

	attemptField := n.policy.ReportAttempt(n.attempt)
	if attemptField < 1 {
		attemptField = 1
	} else if attemptField > 255 {
		attemptField = 255
	}
	rts := frame.Frame{
		Type:            frame.RTS,
		Src:             n.id,
		Dst:             head.dst,
		Seq:             head.seq,
		Attempt:         uint8(attemptField),
		AssignedBackoff: -1,
		Duration:        reserve,
	}
	n.setState(stateTxRTS)
	end := n.med.Transmit(n.id, rts)
	// CTS timeout: SIFS + CTS airtime after the RTS ends, plus two
	// slots of slack (no propagation delay in the model).
	n.setState(stateWaitCTS)
	n.respTimer.ResetAt(end + n.params.SIFS + ctsAir + 2*n.params.SlotTime)
}

// sendDataDirect transmits the head packet without an RTS/CTS handshake
// (basic access). The DATA frame carries the attempt number the
// receiver-side estimator needs.
func (n *Node) sendDataDirect() {
	head := n.queue[0]
	bitRate := n.bitRate()
	ackAir := frame.Airtime(frame.AckBytes, bitRate)
	attemptField := n.policy.ReportAttempt(n.attempt)
	if attemptField < 1 {
		attemptField = 1
	} else if attemptField > 255 {
		attemptField = 255
	}
	data := frame.Frame{
		Type:         frame.Data,
		Src:          n.id,
		Dst:          head.dst,
		Seq:          head.seq,
		Attempt:      uint8(attemptField),
		Duration:     n.params.SIFS + ackAir,
		PayloadBytes: head.bytes,
	}
	n.setState(stateTxData)
	end := n.med.Transmit(n.id, data)
	n.setState(stateWaitAck)
	n.respTimer.ResetAt(end + n.params.SIFS + ackAir + 2*n.params.SlotTime)
}

func (n *Node) sendData() {
	head := n.queue[0]
	bitRate := n.bitRate()
	ackAir := frame.Airtime(frame.AckBytes, bitRate)
	data := frame.Frame{
		Type:         frame.Data,
		Src:          n.id,
		Dst:          head.dst,
		Seq:          head.seq,
		Duration:     n.params.SIFS + ackAir,
		PayloadBytes: head.bytes,
	}
	n.setState(stateTxData)
	end := n.med.Transmit(n.id, data)
	n.setState(stateWaitAck)
	n.respTimer.ResetAt(end + n.params.SIFS + ackAir + 2*n.params.SlotTime)
}

func (n *Node) responseTimeout() {
	switch n.state {
	case stateWaitCTS, stateWaitAck:
	default:
		panic(fmt.Sprintf("mac: node %d response timeout in state %v", n.id, n.state))
	}
	n.attempt++
	if n.attempt > n.params.RetryLimit {
		head := n.queue[0]
		n.dequeueHead()
		n.txDrop++
		n.obs.txDrop.Inc()
		if n.cb.OnSendDrop != nil {
			n.cb.OnSendDrop(head.dst, head.seq, n.sched.Now())
		}
		n.afterExchange()
		return
	}
	n.retryContention()
}

func (n *Node) onCTS(cts frame.Frame) {
	if n.state != stateWaitCTS || len(n.queue) == 0 ||
		cts.Src != n.queue[0].dst || cts.Seq != n.queue[0].seq {
		return // stale or foreign CTS
	}
	n.respTimer.Stop()
	if cts.AssignedBackoff >= 0 {
		n.policy.OnAssigned(cts.Src, cts.Seq, int(cts.AssignedBackoff), false)
		n.traceAssign("cts-assign", cts.Src, cts.Seq, int(cts.AssignedBackoff))
	}
	n.setState(stateSIFSData)
	n.sched.After(n.params.SIFS, n.sendDataFn)
}

func (n *Node) onAck(ack frame.Frame) {
	if n.state != stateWaitAck || len(n.queue) == 0 ||
		ack.Src != n.queue[0].dst || ack.Seq != n.queue[0].seq {
		return
	}
	n.respTimer.Stop()
	head := n.queue[0]
	if ack.AssignedBackoff >= 0 {
		n.policy.OnAssigned(ack.Src, ack.Seq, int(ack.AssignedBackoff), true)
		n.traceAssign("ack-assign", ack.Src, ack.Seq, int(ack.AssignedBackoff))
	}
	n.dequeueHead()
	n.txSuccess++
	n.obs.txSuccess.Inc()
	n.obs.attempts.Observe(float64(n.attempt))
	if n.cb.OnSendSuccess != nil {
		n.cb.OnSendSuccess(head.dst, head.seq, head.bytes, n.attempt, head.enqueuedAt, n.sched.Now())
	}
	n.afterExchange()
}

func (n *Node) dequeueHead() {
	copy(n.queue, n.queue[1:])
	n.queue = n.queue[:len(n.queue)-1]
	n.noteQueueLen()
}

func (n *Node) afterExchange() {
	if n.cb.OnQueueSpace != nil {
		n.cb.OnQueueSpace(n.sched.Now())
	}
	n.startContention()
}

// ---- receiver side -----------------------------------------------------

// FrameCorrupted implements medium.CorruptionListener: arm the EIFS
// deferral for the next countdown resume.
func (n *Node) FrameCorrupted(sim.Time) {
	if n.params.UseEIFS {
		n.eifsNext = true
	}
}

// FrameReceived implements medium.Listener.
func (n *Node) FrameReceived(f frame.Frame, now sim.Time) {
	n.eifsNext = false // a clean reception re-synchronises the station
	if f.Dst != n.id {
		// Overheard frame: virtual carrier sense. The reservation in
		// Duration starts when the frame ends (= now).
		if f.Duration > 0 {
			n.setNAV(now + f.Duration)
			if f.Type == frame.RTS {
				// 802.11 §9.2.5.4 NAV-reset rule: if the channel stays
				// idle for a CTS turnaround after an overheard RTS, the
				// reservation never materialised — release the NAV.
				bitRate := n.bitRate()
				probe := n.params.SIFS + frame.Airtime(frame.CTSBytes, bitRate) + 2*n.params.SlotTime
				n.sched.AfterArg(probe, navProbeEvent, n)
			}
		}
		return
	}
	switch f.Type {
	case frame.RTS:
		n.onRTS(f, now)
	case frame.CTS:
		n.onCTS(f)
	case frame.Data:
		n.onData(f, now)
	case frame.Ack:
		n.onAck(f)
	}
}

func (n *Node) onRTS(rts frame.Frame, end sim.Time) {
	// Respond only when not mid-exchange ourselves and our NAV is clear
	// (802.11 §9.2.5.7: an RTS received with an active NAV is ignored).
	if n.state != stateIdle && n.state != stateContend {
		return
	}
	if n.sched.Now() < n.navUntil {
		return
	}
	bitRate := n.bitRate()
	start := end - rts.Airtime(bitRate)
	respond, assigned := true, -1
	if n.hook != nil {
		respond, assigned = n.hook.OnRTS(rts, start, end)
	}
	if !respond {
		return
	}
	ctsAir := frame.Airtime(frame.CTSBytes, bitRate)
	cts := frame.Frame{
		Type:            frame.CTS,
		Src:             n.id,
		Dst:             rts.Src,
		Seq:             rts.Seq,
		AssignedBackoff: int32(assigned),
		Duration:        rts.Duration - n.params.SIFS - ctsAir,
	}
	if cts.Duration < 0 {
		cts.Duration = 0
	}
	n.scheduleResponse(cts, false)
}

func (n *Node) onData(data frame.Frame, end sim.Time) {
	ack, assigned := true, -1
	if n.hook != nil {
		start := end - data.Airtime(n.bitRate())
		ack, assigned = n.hook.OnData(data, start, end)
	}
	if !ack {
		return
	}
	if last, seen := n.lastSeq[data.Src]; !seen || data.Seq > last {
		n.lastSeq[data.Src] = data.Seq
		n.rxDeliver++
		n.obs.rxDeliver.Inc()
		if n.cb.OnDeliver != nil {
			n.cb.OnDeliver(data.Src, data.Seq, data.PayloadBytes, end)
		}
	}
	ackFrame := frame.Frame{
		Type:            frame.Ack,
		Src:             n.id,
		Dst:             data.Src,
		Seq:             data.Seq,
		AssignedBackoff: int32(assigned),
		Duration:        0,
	}
	n.scheduleResponse(ackFrame, true)
}
