package mac

import (
	"testing"

	"dcfguard/internal/frame"
	"dcfguard/internal/medium"
	"dcfguard/internal/phys"
	"dcfguard/internal/rng"
	"dcfguard/internal/sim"
)

// Airtimes at 2 Mbps for exact-timing assertions.
const (
	rtsAir  = 276 * sim.Microsecond  // 21 B
	ctsAir  = 256 * sim.Microsecond  // 16 B
	ackAir  = 256 * sim.Microsecond  // 16 B
	dataAir = 2352 * sim.Microsecond // 540 B (512 payload)

	slot = 20 * sim.Microsecond
	sifs = 10 * sim.Microsecond
	difs = 50 * sim.Microsecond

	// Full exchange duration measured from RTS start.
	exchange = rtsAir + sifs + ctsAir + sifs + dataAir + sifs + ackAir
)

// fixedPolicy returns scripted backoffs and records what the MAC asks for.
type fixedPolicy struct {
	initial     int
	retries     map[int]int // attempt -> slots
	retryCWs    []int
	assignments []int
	finals      []bool
}

func (p *fixedPolicy) InitialBackoff(frame.NodeID, int) int { return p.initial }

func (p *fixedPolicy) RetryBackoff(_ frame.NodeID, attempt, cw int) int {
	p.retryCWs = append(p.retryCWs, cw)
	if p.retries == nil {
		return 0
	}
	return p.retries[attempt]
}

func (p *fixedPolicy) OnAssigned(_ frame.NodeID, _ uint32, backoff int, final bool) {
	p.assignments = append(p.assignments, backoff)
	p.finals = append(p.finals, final)
}

func (p *fixedPolicy) ReportAttempt(actual int) int { return actual }

// stubHook scripts receiver behaviour: respond controls the CTS,
// suppressAck the ACK.
type stubHook struct {
	respond     bool
	suppressAck bool
	assign      int
	rts         []frame.Frame
	rtsStart    []sim.Time
	data        []frame.Frame
	acks        []sim.Time
}

func (h *stubHook) OnRTS(rts frame.Frame, start, _ sim.Time) (bool, int) {
	h.rts = append(h.rts, rts)
	h.rtsStart = append(h.rtsStart, start)
	return h.respond, h.assign
}
func (h *stubHook) OnData(data frame.Frame, _, _ sim.Time) (bool, int) {
	h.data = append(h.data, data)
	return !h.suppressAck, h.assign
}
func (h *stubHook) OnAckSent(_ frame.NodeID, _ uint32, end sim.Time) { h.acks = append(h.acks, end) }
func (h *stubHook) OnCarrierBusy(sim.Time)                           {}
func (h *stubHook) OnCarrierIdle(sim.Time)                           {}

type fixture struct {
	sched *sim.Scheduler
	med   *medium.Medium
	nodes map[frame.NodeID]*Node
	succ  map[frame.NodeID][]sim.Time // OnSendSuccess times per node
	att   map[frame.NodeID][]int      // attempts per success
	drops map[frame.NodeID]int
}

func newFixture() *fixture {
	var sched sim.Scheduler
	m := phys.DefaultShadowing()
	m.SigmaDB = 0
	return &fixture{
		sched: &sched,
		med:   medium.New(&sched, medium.Config{Model: m}, rng.New(1)),
		nodes: make(map[frame.NodeID]*Node),
		succ:  make(map[frame.NodeID][]sim.Time),
		att:   make(map[frame.NodeID][]int),
		drops: make(map[frame.NodeID]int),
	}
}

func detTestRadio() phys.Radio {
	m := phys.DefaultShadowing()
	m.SigmaDB = 0
	return phys.CalibratedRadio(m, 24.5, 250, 0.5, 550, 0.5, 2_000_000)
}

func (fx *fixture) addNode(id frame.NodeID, pos phys.Point, policy BackoffPolicy, hook ReceiverHook) *Node {
	cb := Callbacks{
		OnSendSuccess: func(_ frame.NodeID, _ uint32, _, attempts int, _, now sim.Time) {
			fx.succ[id] = append(fx.succ[id], now)
			fx.att[id] = append(fx.att[id], attempts)
		},
		OnSendDrop: func(frame.NodeID, uint32, sim.Time) { fx.drops[id]++ },
	}
	n := NewNode(id, DefaultParams(), fx.sched, fx.med, policy, hook, cb)
	fx.med.Attach(id, pos, detTestRadio(), n)
	fx.nodes[id] = n
	return n
}

func TestParamsCW(t *testing.T) {
	p := DefaultParams()
	want := []int{31, 63, 127, 255, 511, 1023, 1023, 1023}
	for i, w := range want {
		if got := p.CW(i + 1); got != w {
			t.Errorf("CW(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestParamsCWPanicsOnZeroAttempt(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CW(0) did not panic")
		}
	}()
	DefaultParams().CW(0)
}

func TestParamsDIFS(t *testing.T) {
	if got := DefaultParams().DIFS(); got != 50*sim.Microsecond {
		t.Fatalf("DIFS = %v, want 50µs", got)
	}
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := []func(*Params){
		func(p *Params) { p.SlotTime = 0 },
		func(p *Params) { p.SIFS = 0 },
		func(p *Params) { p.CWMin = 0 },
		func(p *Params) { p.CWMax = 3 },
		func(p *Params) { p.RetryLimit = 0 },
		func(p *Params) { p.QueueCap = 0 },
	}
	for i, mutate := range bad {
		p := DefaultParams()
		mutate(&p)
		if p.Validate() == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestSingleExchangeTiming(t *testing.T) {
	fx := newFixture()
	pol := &fixedPolicy{initial: 3}
	sender := fx.addNode(1, phys.Point{}, pol, nil)
	receiver := fx.addNode(2, phys.Point{X: 100}, NewStandardPolicy(rng.New(2)), nil)

	if !sender.Enqueue(2, 512) {
		t.Fatal("enqueue failed")
	}
	fx.sched.Run(sim.Second)

	// RTS starts after DIFS + 3 slots; success at RTS start + exchange.
	wantStart := difs + 3*slot
	wantDone := wantStart + exchange
	if got := fx.succ[1]; len(got) != 1 || got[0] != wantDone {
		t.Fatalf("success times = %v, want [%v]", got, wantDone)
	}
	if got := fx.att[1]; len(got) != 1 || got[0] != 1 {
		t.Fatalf("attempts = %v, want [1]", fx.att[1])
	}
	if s, d, _ := sender.Counters(); s != 1 || d != 0 {
		t.Fatalf("sender counters = (%d, %d)", s, d)
	}
	if _, _, del := receiver.Counters(); del != 1 {
		t.Fatalf("receiver delivered %d, want 1", del)
	}
}

func TestExchangeFrameSequence(t *testing.T) {
	fx := newFixture()
	sender := fx.addNode(1, phys.Point{}, &fixedPolicy{initial: 0}, nil)
	fx.addNode(2, phys.Point{X: 100}, NewStandardPolicy(rng.New(2)), nil)

	var types []frame.Type
	fx.med.Tap = func(_ frame.NodeID, f frame.Frame, _, _ sim.Time) {
		types = append(types, f.Type)
	}
	sender.Enqueue(2, 512)
	fx.sched.Run(sim.Second)
	want := []frame.Type{frame.RTS, frame.CTS, frame.Data, frame.Ack}
	if len(types) != len(want) {
		t.Fatalf("frame sequence %v, want %v", types, want)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("frame sequence %v, want %v", types, want)
		}
	}
}

func TestTwoSendersSerialize(t *testing.T) {
	fx := newFixture()
	a := fx.addNode(1, phys.Point{X: -100}, &fixedPolicy{initial: 2}, nil)
	b := fx.addNode(2, phys.Point{X: 100}, &fixedPolicy{initial: 9}, nil)
	fx.addNode(3, phys.Point{}, NewStandardPolicy(rng.New(2)), nil)

	a.Enqueue(3, 512)
	b.Enqueue(3, 512)
	fx.sched.Run(sim.Second)

	if len(fx.succ[1]) != 1 || len(fx.succ[2]) != 1 {
		t.Fatalf("successes: a=%v b=%v", fx.succ[1], fx.succ[2])
	}
	_, _, col := fx.med.Stats()
	if col != 0 {
		t.Fatalf("collisions = %d, want 0 (distinct backoffs serialize)", col)
	}
	// A (backoff 2) wins; B completes afterwards.
	if !(fx.succ[1][0] < fx.succ[2][0]) {
		t.Fatalf("a done %v, b done %v: wrong order", fx.succ[1][0], fx.succ[2][0])
	}
}

func TestEqualBackoffsCollideThenRecover(t *testing.T) {
	fx := newFixture()
	a := fx.addNode(1, phys.Point{X: -100}, &fixedPolicy{initial: 2, retries: map[int]int{2: 1}}, nil)
	b := fx.addNode(2, phys.Point{X: 100}, &fixedPolicy{initial: 2, retries: map[int]int{2: 6}}, nil)
	fx.addNode(3, phys.Point{}, NewStandardPolicy(rng.New(2)), nil)

	a.Enqueue(3, 512)
	b.Enqueue(3, 512)
	fx.sched.Run(sim.Second)

	if len(fx.succ[1]) != 1 || len(fx.succ[2]) != 1 {
		t.Fatalf("successes after collision: a=%v b=%v", fx.succ[1], fx.succ[2])
	}
	if fx.att[1][0] != 2 || fx.att[2][0] != 2 {
		t.Fatalf("attempts = (%d, %d), want (2, 2)", fx.att[1][0], fx.att[2][0])
	}
	_, _, col := fx.med.Stats()
	if col != 2 {
		t.Fatalf("collisions = %d, want 2 (one RTS pair)", col)
	}
}

func TestRetryCWDoubling(t *testing.T) {
	fx := newFixture()
	pol := &fixedPolicy{initial: 0, retries: map[int]int{}}
	sender := fx.addNode(1, phys.Point{}, pol, nil)
	// Receiver whose hook never responds: every attempt times out.
	fx.addNode(2, phys.Point{X: 100}, NewStandardPolicy(rng.New(2)), &stubHook{respond: false})

	sender.Enqueue(2, 512)
	fx.sched.Run(sim.Second)

	if fx.drops[1] != 1 {
		t.Fatalf("drops = %d, want 1", fx.drops[1])
	}
	want := []int{63, 127, 255, 511, 1023, 1023} // attempts 2..7
	if len(pol.retryCWs) != len(want) {
		t.Fatalf("retry CWs = %v, want %v", pol.retryCWs, want)
	}
	for i := range want {
		if pol.retryCWs[i] != want[i] {
			t.Fatalf("retry CWs = %v, want %v", pol.retryCWs, want)
		}
	}
	if s, d, _ := sender.Counters(); s != 0 || d != 1 {
		t.Fatalf("counters = (%d, %d), want (0, 1)", s, d)
	}
}

func TestHookSuppressesCTS(t *testing.T) {
	fx := newFixture()
	sender := fx.addNode(1, phys.Point{}, &fixedPolicy{initial: 0}, nil)
	hook := &stubHook{respond: false}
	fx.addNode(2, phys.Point{X: 100}, NewStandardPolicy(rng.New(2)), hook)

	var ctsSeen bool
	fx.med.Tap = func(_ frame.NodeID, f frame.Frame, _, _ sim.Time) {
		if f.Type == frame.CTS {
			ctsSeen = true
		}
	}
	sender.Enqueue(2, 512)
	fx.sched.Run(sim.Second)
	if ctsSeen {
		t.Fatal("CTS transmitted despite hook suppression")
	}
	if len(hook.rts) != DefaultParams().RetryLimit {
		t.Fatalf("hook saw %d RTS, want %d (one per attempt)", len(hook.rts), DefaultParams().RetryLimit)
	}
	// Attempt numbers must increment 1..RetryLimit.
	for i, rts := range hook.rts {
		if int(rts.Attempt) != i+1 {
			t.Fatalf("RTS %d has attempt %d, want %d", i, rts.Attempt, i+1)
		}
	}
}

func TestAssignedBackoffPropagation(t *testing.T) {
	fx := newFixture()
	pol := &fixedPolicy{initial: 0}
	sender := fx.addNode(1, phys.Point{}, pol, nil)
	hook := &stubHook{respond: true, assign: 17}
	fx.addNode(2, phys.Point{X: 100}, NewStandardPolicy(rng.New(2)), hook)

	sender.Enqueue(2, 512)
	fx.sched.Run(sim.Second)

	// The CTS assignment (final=false) and the ACK assignment (final=true).
	if len(pol.assignments) != 2 || pol.assignments[0] != 17 || pol.assignments[1] != 17 {
		t.Fatalf("assignments = %v, want [17 17]", pol.assignments)
	}
	if !(!pol.finals[0] && pol.finals[1]) {
		t.Fatalf("finals = %v, want [false true]", pol.finals)
	}
	if len(hook.acks) != 1 {
		t.Fatalf("OnAckSent fired %d times, want 1", len(hook.acks))
	}
	if len(hook.rtsStart) != 1 || hook.rtsStart[0] != difs {
		t.Fatalf("RTS start seen by hook = %v, want %v", hook.rtsStart, difs)
	}
}

func TestNAVDefersThirdNode(t *testing.T) {
	fx := newFixture()
	a := fx.addNode(1, phys.Point{X: -100}, &fixedPolicy{initial: 0}, nil)
	fx.addNode(2, phys.Point{}, NewStandardPolicy(rng.New(2)), nil)
	c := fx.addNode(3, phys.Point{X: 100}, &fixedPolicy{initial: 0}, nil)

	a.Enqueue(2, 512)
	// C's packet arrives while A's RTS is on the air. Without the NAV
	// from the overheard RTS, C would fire during A's exchange and
	// collide at node 2.
	fx.sched.At(difs+100*sim.Microsecond, func() { c.Enqueue(2, 512) })
	fx.sched.Run(sim.Second)

	if len(fx.succ[1]) != 1 || len(fx.succ[3]) != 1 {
		t.Fatalf("successes: a=%v c=%v", fx.succ[1], fx.succ[3])
	}
	_, _, col := fx.med.Stats()
	if col != 0 {
		t.Fatalf("collisions = %d, want 0 (NAV must protect the exchange)", col)
	}
	aDone := fx.succ[1][0]
	if fx.succ[3][0] <= aDone {
		t.Fatalf("c finished %v before a %v", fx.succ[3][0], aDone)
	}
}

func TestNAVResetAfterDeadRTS(t *testing.T) {
	// A's RTS is never answered (hook drops it). C overhears the RTS and
	// sets a NAV for the whole reserve; the reset rule must release it
	// after a CTS turnaround so C does not wait ~3 ms.
	fx := newFixture()
	a := fx.addNode(1, phys.Point{X: -100}, &fixedPolicy{initial: 0, retries: map[int]int{
		2: 500, 3: 500, 4: 500, 5: 500, 6: 500, 7: 500}}, nil)
	fx.addNode(2, phys.Point{}, NewStandardPolicy(rng.New(2)), &stubHook{respond: false})
	c := fx.addNode(3, phys.Point{X: 100}, &fixedPolicy{initial: 0}, nil)
	fx.addNode(4, phys.Point{X: 50}, NewStandardPolicy(rng.New(3)), nil)

	a.Enqueue(2, 512)
	fx.sched.At(difs+100*sim.Microsecond, func() { c.Enqueue(4, 512) })
	fx.sched.Run(2 * sim.Second)

	if len(fx.succ[3]) != 1 {
		t.Fatalf("c successes = %v", fx.succ[3])
	}
	// Without NAV reset, C waits until aRTSend + reserve (≈ 3.2 ms).
	// With reset, C transmits right after the turnaround probe.
	rtsEnd := difs + rtsAir
	resetAt := rtsEnd + sifs + ctsAir + 2*slot
	cDone := fx.succ[3][0]
	wantLatest := resetAt + difs + exchange + 100*sim.Microsecond
	if cDone > wantLatest {
		t.Fatalf("c done at %v, want before %v (NAV reset failed)", cDone, wantLatest)
	}
}

func TestQueueCapacity(t *testing.T) {
	fx := newFixture()
	sender := fx.addNode(1, phys.Point{}, &fixedPolicy{initial: 0}, nil)
	fx.addNode(2, phys.Point{X: 100}, NewStandardPolicy(rng.New(2)), nil)

	cap := DefaultParams().QueueCap
	for i := 0; i < cap; i++ {
		if !sender.Enqueue(2, 512) {
			t.Fatalf("enqueue %d rejected below capacity", i)
		}
	}
	if sender.Enqueue(2, 512) {
		t.Fatal("enqueue accepted beyond capacity")
	}
	if sender.QueueLen() != cap {
		t.Fatalf("queue length %d, want %d", sender.QueueLen(), cap)
	}
}

func TestQueueSpaceCallback(t *testing.T) {
	fx := newFixture()
	var spaces int
	cb := Callbacks{OnQueueSpace: func(sim.Time) { spaces++ }}
	n := NewNode(1, DefaultParams(), fx.sched, fx.med, &fixedPolicy{initial: 0}, nil, cb)
	fx.med.Attach(1, phys.Point{}, detTestRadio(), n)
	fx.addNode(2, phys.Point{X: 100}, NewStandardPolicy(rng.New(2)), nil)

	n.Enqueue(2, 512)
	n.Enqueue(2, 512)
	fx.sched.Run(sim.Second)
	if spaces != 2 {
		t.Fatalf("OnQueueSpace fired %d times, want 2", spaces)
	}
}

func TestDuplicateDataFiltered(t *testing.T) {
	fx := newFixture()
	n := fx.addNode(1, phys.Point{}, NewStandardPolicy(rng.New(2)), nil)
	fx.addNode(2, phys.Point{X: 100}, NewStandardPolicy(rng.New(3)), nil)

	var delivered int
	n2 := NewNode(3, DefaultParams(), fx.sched, fx.med, NewStandardPolicy(rng.New(4)), nil,
		Callbacks{OnDeliver: func(frame.NodeID, uint32, int, sim.Time) { delivered++ }})
	fx.med.Attach(3, phys.Point{X: -100}, detTestRadio(), n2)

	data := frame.Frame{Type: frame.Data, Src: 1, Dst: 3, Seq: 5, PayloadBytes: 512}
	// Inject the same DATA twice (as after an ACK loss).
	n2.FrameReceived(data, fx.sched.Now())
	fx.sched.Run(10 * sim.Millisecond)
	n2.FrameReceived(data, fx.sched.Now())
	fx.sched.Run(20 * sim.Millisecond)

	if delivered != 1 {
		t.Fatalf("delivered %d, want 1 (duplicate must be filtered)", delivered)
	}
	if _, _, del := n2.Counters(); del != 1 {
		t.Fatalf("counter delivered %d, want 1", del)
	}
	_ = n
}

func TestEnqueueToSelfPanics(t *testing.T) {
	fx := newFixture()
	n := fx.addNode(1, phys.Point{}, &fixedPolicy{initial: 0}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("self enqueue did not panic")
		}
	}()
	n.Enqueue(1, 512)
}

func TestBackoffFreezeDuringForeignTx(t *testing.T) {
	// A starts counting a 10-slot backoff; 2 slots in, B begins a long
	// exchange. A must freeze, wait out B (plus NAV), and resume with 8
	// slots, not restart at 10.
	fx := newFixture()
	a := fx.addNode(1, phys.Point{X: -100}, &fixedPolicy{initial: 10}, nil)
	b := fx.addNode(2, phys.Point{X: 100}, &fixedPolicy{initial: 0}, nil)
	fx.addNode(3, phys.Point{}, NewStandardPolicy(rng.New(2)), nil)

	var rtsStarts []sim.Time
	fx.med.Tap = func(src frame.NodeID, f frame.Frame, start, _ sim.Time) {
		if f.Type == frame.RTS && src == 1 {
			rtsStarts = append(rtsStarts, start)
		}
	}

	b.Enqueue(3, 512)
	// A enqueues when B is already transmitting; A's full backoff counts
	// down only after B's exchange.
	fx.sched.At(difs+rtsAir/2, func() { a.Enqueue(3, 512) })
	fx.sched.Run(sim.Second)

	if len(fx.succ[1]) != 1 || len(fx.succ[2]) != 1 {
		t.Fatalf("successes: a=%v b=%v", fx.succ[1], fx.succ[2])
	}
	// B's exchange ends at difs + exchange. A then waits DIFS + 10 slots.
	bEnd := difs + exchange
	want := bEnd + difs + 10*slot
	if len(rtsStarts) != 1 || rtsStarts[0] != want {
		t.Fatalf("a's RTS at %v, want %v", rtsStarts, want)
	}
}

func TestCountdownPartialThenResume(t *testing.T) {
	// A counts 2 of 10 slots, freezes for B's exchange, then counts the
	// remaining 8 after a fresh DIFS.
	fx := newFixture()
	a := fx.addNode(1, phys.Point{X: -100}, &fixedPolicy{initial: 10}, nil)
	b := fx.addNode(2, phys.Point{X: 100}, &fixedPolicy{initial: 0}, nil)
	fx.addNode(3, phys.Point{}, NewStandardPolicy(rng.New(2)), nil)

	var rtsStarts []sim.Time
	fx.med.Tap = func(src frame.NodeID, f frame.Frame, start, _ sim.Time) {
		if f.Type == frame.RTS && src == 1 {
			rtsStarts = append(rtsStarts, start)
		}
	}

	a.Enqueue(3, 512)
	// B enqueues so that its backoff-0 RTS starts exactly when A has
	// counted 2 full slots: B's DIFS must end at A's idleStart+DIFS+2slots.
	bStart := 2 * slot
	fx.sched.At(bStart, func() { b.Enqueue(3, 512) })
	fx.sched.Run(sim.Second)

	if len(rtsStarts) != 1 {
		t.Fatalf("a sent %d RTS", len(rtsStarts))
	}
	// B's RTS at bStart+difs; exchange ends at bStart+difs+exchange;
	// A resumes: DIFS + remaining 8 slots.
	want := bStart + difs + exchange + difs + 8*slot
	if rtsStarts[0] != want {
		t.Fatalf("a's RTS at %v, want %v (remaining slots not preserved)", rtsStarts[0], want)
	}
}

func TestBackloggedThroughputSanity(t *testing.T) {
	// One backlogged sender at 2 Mbps with 512 B payloads: the exchange
	// (DIFS + avg backoff + 3.16 ms) repeats; throughput must land near
	// the analytic rate.
	fx := newFixture()
	pol := NewStandardPolicy(rng.New(7))
	var sender *Node
	cb := Callbacks{}
	sender = NewNode(1, DefaultParams(), fx.sched, fx.med, pol, nil, cb)
	fx.med.Attach(1, phys.Point{}, detTestRadio(), sender)
	fx.addNode(2, phys.Point{X: 100}, NewStandardPolicy(rng.New(8)), nil)

	for i := 0; i < 10; i++ {
		sender.Enqueue(2, 512)
	}
	refill := func(sim.Time) { sender.Enqueue(2, 512) }
	sender.cb.OnQueueSpace = refill

	fx.sched.Run(10 * sim.Second)
	succ, _, _ := sender.Counters()
	// Analytic: DIFS + E[backoff]=15.5 slots (310 µs) + exchange 3170 µs
	// ≈ 3530 µs per packet ⇒ ~2832 packets in 10 s.
	if succ < 2500 || succ > 3100 {
		t.Fatalf("backlogged sender delivered %d packets in 10 s, want ≈2800", succ)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []sim.Time {
		var sched sim.Scheduler
		m := phys.DefaultShadowing()
		med := medium.New(&sched, medium.Config{Model: m}, rng.New(5))
		var times []sim.Time
		radio := phys.DefaultRadio()
		recv := NewNode(9, DefaultParams(), &sched, med, NewStandardPolicy(rng.New(6)), nil, Callbacks{})
		med.Attach(9, phys.Point{}, radio, recv)
		for i := frame.NodeID(0); i < 4; i++ {
			i := i
			n := NewNode(i, DefaultParams(), &sched, med,
				NewStandardPolicy(rng.New(uint64(10+i))), nil,
				Callbacks{OnSendSuccess: func(_ frame.NodeID, _ uint32, _, _ int, _, now sim.Time) {
					times = append(times, now)
				}})
			med.Attach(i, phys.OnCircle(phys.Point{}, 150, int(i), 4), radio, n)
			for k := 0; k < 40; k++ {
				n.Enqueue(9, 512)
			}
		}
		sched.Run(2 * sim.Second)
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("replay lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestMultiSenderContentionFairness(t *testing.T) {
	// Four identical backlogged senders to one receiver must split
	// throughput roughly evenly (sanity for the contention machinery).
	fx := newFixture()
	fx.addNode(9, phys.Point{}, NewStandardPolicy(rng.New(100)), nil)
	senders := make([]*Node, 4)
	for i := range senders {
		id := frame.NodeID(i + 1)
		n := fx.addNode(id, phys.OnCircle(phys.Point{}, 150, i, 4), NewStandardPolicy(rng.New(uint64(i+1))), nil)
		senders[i] = n
		for k := 0; k < 5; k++ {
			n.Enqueue(9, 512)
		}
		n.cb.OnQueueSpace = func(sim.Time) { n.Enqueue(9, 512) }
	}
	fx.sched.Run(10 * sim.Second)

	var total uint64
	counts := make([]uint64, 4)
	for i, n := range senders {
		counts[i], _, _ = n.Counters()
		total += counts[i]
	}
	if total < 2000 {
		t.Fatalf("total %d packets too low for 10 s saturated channel", total)
	}
	for i, c := range counts {
		share := float64(c) / float64(total)
		if share < 0.15 || share > 0.35 {
			t.Fatalf("sender %d share = %.2f (counts %v), want ≈0.25", i+1, share, counts)
		}
	}
}
