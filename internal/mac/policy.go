package mac

import (
	"dcfguard/internal/frame"
	"dcfguard/internal/rng"
)

// BackoffPolicy decides the backoff counts a sender uses. The MAC owns
// attempt numbering and contention-window doubling; the policy only maps
// (destination, attempt, cw) to a slot count. Implementations:
// StandardPolicy (this package), the paper's assigned-backoff policy
// (internal/core), and misbehaving wrappers (internal/misbehave).
type BackoffPolicy interface {
	// InitialBackoff returns the slots to count before attempt 1 of a
	// new packet to dst, given the current contention window.
	InitialBackoff(dst frame.NodeID, cw int) int
	// RetryBackoff returns the slots to count before retransmission
	// attempt attempt (≥ 2), given that attempt's contention window.
	RetryBackoff(dst frame.NodeID, attempt, cw int) int
	// OnAssigned delivers a backoff value advertised by dst in a CTS or
	// ACK for the exchange with sequence seq. final is true for the ACK
	// (exchange complete): the value becomes the backoff for the next
	// packet to dst.
	OnAssigned(dst frame.NodeID, seq uint32, backoff int, final bool)
	// ReportAttempt returns the attempt number to advertise in the RTS
	// header. Honest policies return the actual value; an attempt-lying
	// misbehaver returns something smaller.
	ReportAttempt(actual int) int
}

// StandardPolicy implements plain IEEE 802.11 backoff: every attempt
// draws uniformly from [0, CW]. Assigned backoff values are ignored.
type StandardPolicy struct {
	src *rng.Source
}

// NewStandardPolicy returns the 802.11 policy drawing from src.
func NewStandardPolicy(src *rng.Source) *StandardPolicy {
	return &StandardPolicy{src: src}
}

var _ BackoffPolicy = (*StandardPolicy)(nil)

// InitialBackoff draws uniformly from [0, cw].
func (p *StandardPolicy) InitialBackoff(_ frame.NodeID, cw int) int {
	return p.src.IntRange(0, cw)
}

// RetryBackoff draws uniformly from [0, cw].
func (p *StandardPolicy) RetryBackoff(_ frame.NodeID, _ int, cw int) int {
	return p.src.IntRange(0, cw)
}

// OnAssigned ignores receiver-advertised values (plain 802.11).
func (p *StandardPolicy) OnAssigned(frame.NodeID, uint32, int, bool) {}

// ReportAttempt reports honestly.
func (p *StandardPolicy) ReportAttempt(actual int) int { return actual }
