// Package mac implements the IEEE 802.11 (1999) Distributed
// Coordination Function: slotted backoff with freeze/resume, virtual
// carrier sense (NAV), the RTS/CTS/DATA/ACK exchange, contention-window
// doubling and retry limits.
//
// Two seams make the paper's scheme pluggable without forking the state
// machine:
//
//   - BackoffPolicy decides how many slots the *sender* counts before
//     each transmission attempt. The standard policy draws uniformly
//     from [0, CW]; the paper's scheme substitutes the receiver-assigned
//     value and the deterministic retry function f; misbehaving nodes
//     wrap either policy and shave the count.
//   - ReceiverHook observes the *receiver* side of every exchange and
//     chooses the backoff values advertised in CTS/ACK frames. The
//     paper's detection/correction/diagnosis logic lives behind this
//     hook (internal/core); plain 802.11 uses no hook.
package mac

import (
	"fmt"

	"dcfguard/internal/frame"
	"dcfguard/internal/sim"
)

// frameAckAirtime is a small indirection so Params has no direct frame
// dependency in its method set beyond this helper.
func frameAckAirtime(bitRate int64) sim.Time {
	return frame.Airtime(frame.AckBytes, bitRate)
}

// Params holds the 802.11 DCF timing and contention constants. The
// defaults (DefaultParams) are the DSSS PHY values used by the paper's
// ns-2 setup.
type Params struct {
	// SlotTime is the backoff slot duration (DSSS: 20 µs).
	SlotTime sim.Time
	// SIFS is the short interframe space (DSSS: 10 µs).
	SIFS sim.Time
	// CWMin and CWMax bound the contention window (DSSS: 31, 1023).
	CWMin, CWMax int
	// RetryLimit is the maximum number of transmission attempts per
	// packet before it is dropped (802.11 dot11ShortRetryLimit: 7).
	RetryLimit int
	// QueueCap bounds the per-node interface queue.
	QueueCap int
	// UseEIFS enables 802.11's extended interframe space: after a
	// corrupted reception the next countdown resume waits EIFS instead
	// of DIFS, protecting the (unheard) ACK of the colliding exchange.
	// Off by default: the paper's results were calibrated without it,
	// and its effect at this scale is small (see TestEIFSDefersAfterCollision).
	UseEIFS bool
	// BasicAccess disables the RTS/CTS exchange: DATA is sent directly
	// after backoff, carrying the attempt number the paper's scheme
	// needs (its footnote 2: "the proposed scheme can be applied even
	// when RTS/CTS exchange is not used"). Assignments then ride only
	// on ACKs.
	BasicAccess bool
}

// DefaultParams returns the IEEE 802.11 DSSS parameter set.
func DefaultParams() Params {
	return Params{
		SlotTime:   20 * sim.Microsecond,
		SIFS:       10 * sim.Microsecond,
		CWMin:      31,
		CWMax:      1023,
		RetryLimit: 7,
		QueueCap:   64,
	}
}

// DIFS is the distributed interframe space: SIFS + 2 slots.
func (p Params) DIFS() sim.Time { return p.SIFS + 2*p.SlotTime }

// EIFS is the extended interframe space used after corrupted
// receptions: SIFS + the airtime of an ACK at the given bit rate + DIFS
// (802.11 §9.2.3.4).
func (p Params) EIFS(bitRate int64) sim.Time {
	return p.SIFS + frameAckAirtime(bitRate) + p.DIFS()
}

// CW returns the contention window for the i-th transmission attempt
// (1-based), exactly as the paper specifies:
// CW_i = min((CWMin+1)·2^(i-1) − 1, CWMax).
func (p Params) CW(attempt int) int {
	if attempt < 1 {
		panic(fmt.Sprintf("mac: CW attempt %d < 1", attempt))
	}
	cw := p.CWMin
	for i := 1; i < attempt; i++ {
		cw = (cw+1)*2 - 1
		if cw >= p.CWMax {
			return p.CWMax
		}
	}
	return cw
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.SlotTime <= 0:
		return fmt.Errorf("mac: slot time %v must be positive", p.SlotTime)
	case p.SIFS <= 0:
		return fmt.Errorf("mac: SIFS %v must be positive", p.SIFS)
	case p.CWMin < 1:
		return fmt.Errorf("mac: CWMin %d must be at least 1", p.CWMin)
	case p.CWMax < p.CWMin:
		return fmt.Errorf("mac: CWMax %d below CWMin %d", p.CWMax, p.CWMin)
	case p.RetryLimit < 1:
		return fmt.Errorf("mac: retry limit %d must be at least 1", p.RetryLimit)
	case p.QueueCap < 1:
		return fmt.Errorf("mac: queue capacity %d must be at least 1", p.QueueCap)
	}
	return nil
}
