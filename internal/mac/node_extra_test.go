package mac

import (
	"testing"

	"dcfguard/internal/frame"
	"dcfguard/internal/medium"
	"dcfguard/internal/phys"
	"dcfguard/internal/rng"
	"dcfguard/internal/sim"
)

func TestNodeAccessors(t *testing.T) {
	fx := newFixture()
	n := fx.addNode(7, phys.Point{}, &fixedPolicy{initial: 0}, nil)
	if n.ID() != 7 {
		t.Fatalf("ID() = %d", n.ID())
	}
	if got := senderState(99).String(); got == "" {
		t.Fatal("unknown state must render")
	}
	for s := stateIdle; s <= stateWaitAck; s++ {
		if s.String() == "" || len(s.String()) > 20 {
			t.Fatalf("state %d renders %q", s, s.String())
		}
	}
}

func TestSetQueueSpaceCallback(t *testing.T) {
	fx := newFixture()
	n := fx.addNode(1, phys.Point{}, &fixedPolicy{initial: 0}, nil)
	fx.addNode(2, phys.Point{X: 100}, NewStandardPolicy(rng.New(2)), nil)
	fired := 0
	n.SetQueueSpaceCallback(func(sim.Time) { fired++ })
	n.Enqueue(2, 512)
	fx.sched.Run(sim.Second)
	if fired != 1 {
		t.Fatalf("queue-space callback fired %d times", fired)
	}
}

func TestNewNodeValidation(t *testing.T) {
	fx := newFixture()
	bad := DefaultParams()
	bad.CWMin = 0
	func() {
		defer func() {
			if recover() == nil {
				t.Error("invalid params did not panic")
			}
		}()
		NewNode(1, bad, fx.sched, fx.med, &fixedPolicy{}, nil, Callbacks{})
	}()
	defer func() {
		if recover() == nil {
			t.Error("nil policy did not panic")
		}
	}()
	NewNode(1, DefaultParams(), fx.sched, fx.med, nil, nil, Callbacks{})
}

func TestNegativePolicyBackoffClamped(t *testing.T) {
	// A (buggy or malicious) policy returning negative slots must be
	// clamped to zero, not crash the countdown arithmetic.
	fx := newFixture()
	var done int
	n := NewNode(1, DefaultParams(), fx.sched, fx.med, &fixedPolicy{initial: -5}, nil,
		Callbacks{OnSendSuccess: func(frame.NodeID, uint32, int, int, sim.Time, sim.Time) { done++ }})
	fx.med.Attach(1, phys.Point{}, detTestRadio(), n)
	fx.addNode(2, phys.Point{X: 100}, NewStandardPolicy(rng.New(2)), nil)
	n.Enqueue(2, 512)
	fx.sched.Run(sim.Second)
	if done != 1 {
		t.Fatalf("negative-backoff packet not delivered (done=%d)", done)
	}
}

func TestStandardPolicyIgnoresAssignments(t *testing.T) {
	p := NewStandardPolicy(rng.New(1))
	p.OnAssigned(2, 1, 5, true) // must be a no-op
	if got := p.ReportAttempt(3); got != 3 {
		t.Fatalf("ReportAttempt = %d", got)
	}
	for i := 0; i < 100; i++ {
		if b := p.InitialBackoff(2, 31); b < 0 || b > 31 {
			t.Fatalf("InitialBackoff = %d", b)
		}
	}
}

func TestQueueContinuesAfterDrop(t *testing.T) {
	// The first packet's destination never responds (retry-limit drop);
	// the second packet goes to a live receiver and must still complete.
	fx := newFixture()
	sender := fx.addNode(1, phys.Point{}, &fixedPolicy{initial: 0, retries: map[int]int{}}, nil)
	fx.addNode(2, phys.Point{X: 100}, NewStandardPolicy(rng.New(2)), &stubHook{respond: false})
	fx.addNode(3, phys.Point{X: -100}, NewStandardPolicy(rng.New(3)), nil)

	sender.Enqueue(2, 512) // doomed
	sender.Enqueue(3, 512) // must survive the head-of-line drop
	fx.sched.Run(sim.Second)

	if fx.drops[1] != 1 {
		t.Fatalf("drops = %d, want 1", fx.drops[1])
	}
	if len(fx.succ[1]) != 1 {
		t.Fatalf("successes = %v, want one (second packet)", fx.succ[1])
	}
	if s, d, _ := sender.Counters(); s != 1 || d != 1 {
		t.Fatalf("counters = (%d, %d), want (1, 1)", s, d)
	}
}

func TestNAVFromOverheardCTS(t *testing.T) {
	// Node C hears only the receiver's CTS (the sender A is out of C's
	// receive range in a line topology): the CTS duration alone must
	// hold C off the channel for the rest of the exchange.
	var sched sim.Scheduler
	m := phys.DefaultShadowing()
	m.SigmaDB = 0
	med := medium.New(&sched, medium.Config{Model: m}, rng.New(1))
	// Short-sense radio so A and C (480 m apart) are mutually invisible
	// but both reach R in the middle at 240 m.
	radio := phys.CalibratedRadio(m, 24.5, 250, 0.5, 300, 0.5, 2_000_000)

	succ := make(map[frame.NodeID][]sim.Time)
	mkNode := func(id frame.NodeID, x float64, pol BackoffPolicy) *Node {
		cb := Callbacks{OnSendSuccess: func(_ frame.NodeID, _ uint32, _, _ int, _, now sim.Time) {
			succ[id] = append(succ[id], now)
		}}
		n := NewNode(id, DefaultParams(), &sched, med, pol, nil, cb)
		med.Attach(id, phys.Point{X: x}, radio, n)
		return n
	}
	a := mkNode(1, -240, &fixedPolicy{initial: 0})
	mkNode(2, 0, NewStandardPolicy(rng.New(9))) // receiver R
	c := mkNode(3, 240, &fixedPolicy{initial: 0, retries: map[int]int{2: 3, 3: 9, 4: 2, 5: 11, 6: 4, 7: 8}})

	a.Enqueue(2, 512)
	// C gets its packet right after A's RTS ends, when the only thing
	// keeping C quiet during A's DATA is the NAV from R's CTS.
	fx := difs + rtsAir + 20*sim.Microsecond
	sched.At(fx, func() { c.Enqueue(2, 512) })
	sched.Run(sim.Second)

	if len(succ[1]) != 1 {
		t.Fatalf("a successes = %v (hidden-terminal collision means the CTS NAV failed)", succ[1])
	}
	if len(succ[3]) != 1 {
		t.Fatalf("c successes = %v", succ[3])
	}
	if succ[3][0] <= succ[1][0] {
		t.Fatal("c finished before a despite arriving later")
	}
}

func TestZeroBackoffStormResolvesViaRetries(t *testing.T) {
	// Eight senders all counting zero backoff transmit in the same slot
	// and collide; scripted distinct retry backoffs must untangle them.
	fx := newFixture()
	fx.addNode(9, phys.Point{}, NewStandardPolicy(rng.New(2)), nil)
	for i := 0; i < 4; i++ {
		id := frame.NodeID(i + 1)
		n := fx.addNode(id, phys.OnCircle(phys.Point{}, 150, i, 4),
			&fixedPolicy{initial: 0, retries: map[int]int{2: 3 * (i + 1), 3: 7 * (i + 1), 4: 5 * (i + 1)}}, nil)
		n.Enqueue(9, 512)
	}
	fx.sched.Run(sim.Second)

	for id := frame.NodeID(1); id <= 4; id++ {
		if len(fx.succ[id]) != 1 {
			t.Fatalf("sender %d successes = %v", id, fx.succ[id])
		}
		if fx.att[id][0] < 2 {
			t.Fatalf("sender %d attempts = %d, want ≥2 (initial storm must collide)", id, fx.att[id][0])
		}
	}
	_, _, col := fx.med.Stats()
	if col == 0 {
		t.Fatal("no collisions despite simultaneous zero backoffs")
	}
}

func TestCoherenceModeEndToEnd(t *testing.T) {
	// With a 320 µs coherence interval and σ = 1, sensing fragments
	// within frames, yet the exchange machinery must still deliver
	// traffic reliably between close (100 m) nodes.
	var sched sim.Scheduler
	med := medium.New(&sched, medium.Config{
		Model:             phys.DefaultShadowing(),
		CoherenceInterval: 320 * sim.Microsecond,
	}, rng.New(4))
	radio := phys.DefaultRadio()
	var okCount int
	var sender *Node
	cb := Callbacks{OnSendSuccess: func(_ frame.NodeID, _ uint32, _, _ int, _, _ sim.Time) {
		okCount++
		sender.Enqueue(2, 512)
	}}
	sender = NewNode(1, DefaultParams(), &sched, med, NewStandardPolicy(rng.New(5)), nil, cb)
	med.Attach(1, phys.Point{}, radio, sender)
	recv := NewNode(2, DefaultParams(), &sched, med, NewStandardPolicy(rng.New(6)), nil, Callbacks{})
	med.Attach(2, phys.Point{X: 100}, radio, recv)

	sender.Enqueue(2, 512)
	sched.Run(3 * sim.Second)
	if okCount < 500 {
		t.Fatalf("coherence mode delivered %d packets in 3 s, want saturation", okCount)
	}
}

func TestBasicAccessExchangeSequence(t *testing.T) {
	fx := newFixture()
	params := DefaultParams()
	params.BasicAccess = true
	var succ int
	sender := NewNode(1, params, fx.sched, fx.med, &fixedPolicy{initial: 3}, nil,
		Callbacks{OnSendSuccess: func(_ frame.NodeID, _ uint32, _, _ int, _, _ sim.Time) { succ++ }})
	fx.med.Attach(1, phys.Point{}, detTestRadio(), sender)
	fx.addNode(2, phys.Point{X: 100}, NewStandardPolicy(rng.New(2)), nil)

	var types []frame.Type
	var attempts []uint8
	fx.med.Tap = func(_ frame.NodeID, f frame.Frame, _, _ sim.Time) {
		types = append(types, f.Type)
		if f.Type == frame.Data {
			attempts = append(attempts, f.Attempt)
		}
	}
	sender.Enqueue(2, 512)
	fx.sched.Run(sim.Second)

	if succ != 1 {
		t.Fatalf("successes = %d", succ)
	}
	if len(types) != 2 || types[0] != frame.Data || types[1] != frame.Ack {
		t.Fatalf("frame sequence %v, want [DATA ACK]", types)
	}
	if len(attempts) != 1 || attempts[0] != 1 {
		t.Fatalf("DATA attempts = %v, want [1]", attempts)
	}
}

func TestBasicAccessTiming(t *testing.T) {
	fx := newFixture()
	params := DefaultParams()
	params.BasicAccess = true
	var done sim.Time
	sender := NewNode(1, params, fx.sched, fx.med, &fixedPolicy{initial: 3}, nil,
		Callbacks{OnSendSuccess: func(_ frame.NodeID, _ uint32, _, _ int, _, now sim.Time) { done = now }})
	fx.med.Attach(1, phys.Point{}, detTestRadio(), sender)
	fx.addNode(2, phys.Point{X: 100}, NewStandardPolicy(rng.New(2)), nil)

	sender.Enqueue(2, 512)
	fx.sched.Run(sim.Second)
	// DIFS + 3 slots + DATA + SIFS + ACK.
	want := difs + 3*slot + dataAir + sifs + ackAir
	if done != want {
		t.Fatalf("basic exchange done at %v, want %v", done, want)
	}
}

func TestBasicAccessRetriesOnAckTimeout(t *testing.T) {
	// Receiver hook suppresses the ACK: the sender must retry with
	// incrementing attempt numbers on the DATA frames and finally drop.
	fx := newFixture()
	params := DefaultParams()
	params.BasicAccess = true
	drops := 0
	sender := NewNode(1, params, fx.sched, fx.med, &fixedPolicy{initial: 0, retries: map[int]int{}}, nil,
		Callbacks{OnSendDrop: func(frame.NodeID, uint32, sim.Time) { drops++ }})
	fx.med.Attach(1, phys.Point{}, detTestRadio(), sender)
	fx.addNode(2, phys.Point{X: 100}, NewStandardPolicy(rng.New(2)), &stubHook{respond: false, suppressAck: true})

	var attempts []uint8
	fx.med.Tap = func(_ frame.NodeID, f frame.Frame, _, _ sim.Time) {
		if f.Type == frame.Data {
			attempts = append(attempts, f.Attempt)
		}
	}
	sender.Enqueue(2, 512)
	fx.sched.Run(sim.Second)

	if drops != 1 {
		t.Fatalf("drops = %d, want 1", drops)
	}
	if len(attempts) != DefaultParams().RetryLimit {
		t.Fatalf("DATA attempts = %v, want %d entries", attempts, DefaultParams().RetryLimit)
	}
	for i, a := range attempts {
		if int(a) != i+1 {
			t.Fatalf("attempt sequence %v", attempts)
		}
	}
}

func TestEIFSValue(t *testing.T) {
	// SIFS + ACK airtime at 2 Mbps (256 µs) + DIFS = 316 µs.
	if got := DefaultParams().EIFS(2_000_000); got != 316*sim.Microsecond {
		t.Fatalf("EIFS = %v, want 316µs", got)
	}
}

func TestEIFSDefersAfterCollision(t *testing.T) {
	// A and B collide at R; observer C decodes neither frame. With
	// UseEIFS, C's next countdown waits EIFS instead of DIFS — exactly
	// SIFS + ACK airtime longer.
	run := func(useEIFS bool) sim.Time {
		var sched sim.Scheduler
		m := phys.DefaultShadowing()
		m.SigmaDB = 0
		med := medium.New(&sched, medium.Config{Model: m}, rng.New(1))
		radio := detTestRadio()

		params := DefaultParams()
		mk := func(id frame.NodeID, pos phys.Point, pol BackoffPolicy, p Params) *Node {
			n := NewNode(id, p, &sched, med, pol, nil, Callbacks{})
			med.Attach(id, pos, radio, n)
			return n
		}
		a := mk(1, phys.Point{X: -100}, &fixedPolicy{initial: 2, retries: map[int]int{2: 100}}, params)
		b := mk(2, phys.Point{X: 100}, &fixedPolicy{initial: 2, retries: map[int]int{2: 200}}, params)
		mk(3, phys.Point{}, NewStandardPolicy(rng.New(2)), params)

		cParams := params
		cParams.UseEIFS = useEIFS
		c := mk(4, phys.Point{Y: 100}, &fixedPolicy{initial: 0}, cParams)

		var cRTS sim.Time
		med.Tap = func(src frame.NodeID, f frame.Frame, start, _ sim.Time) {
			if src == 4 && f.Type == frame.RTS && cRTS == 0 {
				cRTS = start
			}
		}
		a.Enqueue(3, 512)
		b.Enqueue(3, 512)
		// C's packet arrives during the colliding RTSes.
		sched.At(difs+2*slot+50*sim.Microsecond, func() { c.Enqueue(3, 512) })
		sched.Run(sim.Second)
		if cRTS == 0 {
			t.Fatal("c never transmitted")
		}
		return cRTS
	}
	without := run(false)
	with := run(true)
	wantGap := sifs + ackAir // EIFS − DIFS
	if with-without != wantGap {
		t.Fatalf("EIFS deferral = %v, want %v (without=%v with=%v)",
			with-without, wantGap, without, with)
	}
}

func TestDelayReportedInCallback(t *testing.T) {
	fx := newFixture()
	var delay sim.Time
	var n *Node
	cb := Callbacks{OnSendSuccess: func(_ frame.NodeID, _ uint32, _, _ int, enqueuedAt, now sim.Time) {
		delay = now - enqueuedAt
	}}
	n = NewNode(1, DefaultParams(), fx.sched, fx.med, &fixedPolicy{initial: 3}, nil, cb)
	fx.med.Attach(1, phys.Point{}, detTestRadio(), n)
	fx.addNode(2, phys.Point{X: 100}, NewStandardPolicy(rng.New(2)), nil)

	fx.sched.At(sim.Millisecond, func() { n.Enqueue(2, 512) })
	fx.sched.Run(sim.Second)
	want := difs + 3*slot + exchange
	if delay != want {
		t.Fatalf("delay = %v, want %v (uncontended single exchange)", delay, want)
	}
}

func TestSecondPacketQueuedDuringFirst(t *testing.T) {
	// Back-to-back packets from one sender: the second contends right
	// after the first's ACK with a fresh backoff.
	fx := newFixture()
	pol := &fixedPolicy{initial: 2}
	sender := fx.addNode(1, phys.Point{}, pol, nil)
	fx.addNode(2, phys.Point{X: 100}, NewStandardPolicy(rng.New(2)), nil)

	sender.Enqueue(2, 512)
	sender.Enqueue(2, 512)
	fx.sched.Run(sim.Second)
	if len(fx.succ[1]) != 2 {
		t.Fatalf("successes = %v, want 2", fx.succ[1])
	}
	first := difs + 2*slot + exchange
	second := first + difs + 2*slot + exchange
	if fx.succ[1][0] != first || fx.succ[1][1] != second {
		t.Fatalf("success times = %v, want [%v %v]", fx.succ[1], first, second)
	}
}
