package mac

import (
	"dcfguard/internal/frame"
	"dcfguard/internal/obs"
)

// nodeObs holds a node's pre-resolved observability handles. The zero
// value (nil handles, nil bus) is the disabled state: every hook point
// below degrades to a nil-check no-op, and nothing here feeds back into
// the simulation — see the pass-through contract in package obs.
type nodeObs struct {
	bus       *obs.Bus
	txSuccess *obs.Counter
	txDrop    *obs.Counter
	rxDeliver *obs.Counter
	queueLen  *obs.Gauge
	attempts  *obs.Histogram
}

// attemptBounds buckets the per-packet RTS attempt count: 1..4 singly,
// then up-to-7 (the long retry limit), then overflow.
var attemptBounds = []float64{1, 2, 3, 4, 7}

// Instrument attaches the node to a metrics registry and a trace bus
// (either may be nil). Handles are resolved here, once — the detlint
// obshot analyzer enforces that no by-name lookup happens later on the
// event path.
func (n *Node) Instrument(reg *obs.Registry, bus *obs.Bus) {
	n.obs = nodeObs{
		bus:       bus,
		txSuccess: reg.Counter("mac", n.id, "tx_success"),
		txDrop:    reg.Counter("mac", n.id, "tx_drop"),
		rxDeliver: reg.Counter("mac", n.id, "rx_deliver"),
		queueLen:  reg.Gauge("mac", n.id, "queue_len"),
		attempts:  reg.Histogram("mac", n.id, "attempts", attemptBounds),
	}
}

// setState is the single mutation point of the sender state machine,
// doubling as the CatMACState hook.
func (n *Node) setState(next senderState) {
	if n.obs.bus.Enabled(obs.CatMACState) {
		prev := n.state
		var peer = obs.NoNode
		var seq uint32
		if len(n.queue) > 0 {
			peer = n.queue[0].dst
			seq = n.queue[0].seq
		}
		n.obs.bus.Emit(obs.Record{
			Cat:   obs.CatMACState,
			Time:  n.sched.Now(),
			Node:  n.id,
			Peer:  peer,
			Event: next.String(),
			Aux:   prev.String(),
			Seq:   seq,
			A:     float64(n.attempt),
		})
	}
	n.state = next
}

// traceAssign emits a CatBackoff record for a CTS- or ACK-carried
// backoff assignment arriving at this sender.
func (n *Node) traceAssign(event string, from frame.NodeID, seq uint32, assigned int) {
	if !n.obs.bus.Enabled(obs.CatBackoff) {
		return
	}
	n.obs.bus.Emit(obs.Record{
		Cat:   obs.CatBackoff,
		Time:  n.sched.Now(),
		Node:  n.id,
		Peer:  from,
		Event: event,
		Seq:   seq,
		A:     float64(assigned),
	})
}

// noteQueueLen refreshes the queue-depth gauge (sim-time stamped).
func (n *Node) noteQueueLen() {
	n.obs.queueLen.Set(float64(len(n.queue)), n.sched.Now())
}
