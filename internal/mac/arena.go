package mac

// Arena is contiguous preallocated Node storage. A sweep-scale run
// builds hundreds of stations whose hot state the kernel touches every
// event; boxing each Node separately scatters that state across the
// heap, while an arena keeps consecutive stations on adjacent cache
// lines (see the Node layout comment). The experiment runner allocates
// one arena per run, sized to the scenario's node count.
//
// Capacity is fixed at construction: Node pointers are registered as
// medium listeners and must never move, so the arena refuses to grow.
// Allocations beyond capacity fall back to individual boxing — slower,
// never wrong.
type Arena struct {
	nodes []Node
}

// NewArena returns an arena with room for capacity contiguous nodes.
func NewArena(capacity int) *Arena {
	return &Arena{nodes: make([]Node, 0, capacity)}
}

// take returns the next node slot, or a heap-boxed spill past capacity.
func (a *Arena) take() *Node {
	if a == nil || len(a.nodes) == cap(a.nodes) {
		return &Node{}
	}
	a.nodes = a.nodes[:len(a.nodes)+1]
	return &a.nodes[len(a.nodes)-1]
}

// Len returns how many nodes have been allocated from the arena proper
// (spills excluded).
func (a *Arena) Len() int { return len(a.nodes) }
