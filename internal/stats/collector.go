package stats

import (
	"fmt"
	"sort"
	"sync"

	"dcfguard/internal/frame"
	"dcfguard/internal/sim"
)

// Collector gathers one run's raw events — deliveries at receivers and
// per-packet classifications at monitors — and computes the paper's
// metrics. Wire OnDeliver into mac.Callbacks and OnClassified into
// core.Events.
//
// The event hooks (OnDeliver, OnSendComplete, OnClassified) take a
// mutex: in sharded runs they are called from several shard goroutines,
// and every quantity they accumulate is commutative (sums, counts,
// Welford moments per sender), so locking is all the coordination the
// results need. The read-side accessors are for after the run.
type Collector struct {
	misbehaving map[frame.NodeID]bool
	binSize     sim.Time

	mu sync.Mutex

	bytesBySender   map[frame.NodeID]int64
	packetsBySender map[frame.NodeID]int64
	delayBySender   map[frame.NodeID]*Welford

	// Classification counts split by ground truth.
	misFromMis    int // misbehaving sender, classified misbehaving (correct)
	okFromMis     int // misbehaving sender, classified well-behaved (miss)
	misFromHonest int // honest sender, classified misbehaving (misdiagnosis)
	okFromHonest  int // honest sender, classified well-behaved (correct)

	bins []binCount
}

type binCount struct {
	mis, total int // classifications of misbehaving senders' packets
}

// NewCollector builds a collector. misbehaving lists the ground-truth
// misbehaving senders; binSize sets the Figure-8 time-series resolution
// (0 disables the series).
func NewCollector(misbehaving []frame.NodeID, binSize sim.Time) *Collector {
	m := make(map[frame.NodeID]bool, len(misbehaving))
	for _, id := range misbehaving {
		m[id] = true
	}
	return &Collector{
		misbehaving:     m,
		binSize:         binSize,
		bytesBySender:   make(map[frame.NodeID]int64),
		packetsBySender: make(map[frame.NodeID]int64),
		delayBySender:   make(map[frame.NodeID]*Welford),
	}
}

// OnDeliver records a delivered packet from src.
func (c *Collector) OnDeliver(src frame.NodeID, _ uint32, payloadBytes int, _ sim.Time) {
	c.mu.Lock()
	c.bytesBySender[src] += int64(payloadBytes)
	c.packetsBySender[src]++
	c.mu.Unlock()
}

// OnSendComplete records a packet's total MAC delay (enqueue → ACK) at
// the sender src.
func (c *Collector) OnSendComplete(src frame.NodeID, delay sim.Time) {
	c.mu.Lock()
	w, ok := c.delayBySender[src]
	if !ok {
		w = &Welford{}
		c.delayBySender[src] = w
	}
	w.Add(delay.Seconds() * 1000) // milliseconds
	c.mu.Unlock()
}

// MeanDelayMs returns sender src's mean packet delay in milliseconds
// (0 when no packets completed).
func (c *Collector) MeanDelayMs(src frame.NodeID) float64 {
	if w, ok := c.delayBySender[src]; ok {
		return w.Mean()
	}
	return 0
}

// SplitDelayMs returns the mean per-packet delay of honest and of
// misbehaving senders, averaged over senders with completed packets.
func (c *Collector) SplitDelayMs(senders []frame.NodeID) (avgHonest, avgMis float64) {
	var hSum, mSum float64
	var hN, mN int
	for _, id := range senders {
		w, ok := c.delayBySender[id]
		if !ok || w.N() == 0 {
			continue
		}
		if c.misbehaving[id] {
			mSum += w.Mean()
			mN++
		} else {
			hSum += w.Mean()
			hN++
		}
	}
	if hN > 0 {
		avgHonest = hSum / float64(hN)
	}
	if mN > 0 {
		avgMis = mSum / float64(mN)
	}
	return avgHonest, avgMis
}

// OnClassified records one diagnosis-scheme verdict.
func (c *Collector) OnClassified(src frame.NodeID, mis bool, _ float64, now sim.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	truth := c.misbehaving[src]
	switch {
	case truth && mis:
		c.misFromMis++
	case truth && !mis:
		c.okFromMis++
	case !truth && mis:
		c.misFromHonest++
	default:
		c.okFromHonest++
	}
	if truth && c.binSize > 0 {
		idx := int(now / c.binSize)
		for len(c.bins) <= idx {
			c.bins = append(c.bins, binCount{})
		}
		c.bins[idx].total++
		if mis {
			c.bins[idx].mis++
		}
	}
}

// CorrectDiagnosisPct returns the percentage of misbehaving senders'
// packets that were classified as misbehaving (Figure 4's first metric).
// NaN-free: returns 0 when no such packets exist.
func (c *Collector) CorrectDiagnosisPct() float64 {
	total := c.misFromMis + c.okFromMis
	if total == 0 {
		return 0
	}
	return 100 * float64(c.misFromMis) / float64(total)
}

// MisdiagnosisPct returns the percentage of well-behaved senders'
// packets wrongly classified as misbehaving (Figure 4's second metric).
func (c *Collector) MisdiagnosisPct() float64 {
	total := c.misFromHonest + c.okFromHonest
	if total == 0 {
		return 0
	}
	return 100 * float64(c.misFromHonest) / float64(total)
}

// ThroughputKbps returns sender src's delivered goodput over duration.
func (c *Collector) ThroughputKbps(src frame.NodeID, duration sim.Time) float64 {
	if duration <= 0 {
		panic(fmt.Sprintf("stats: ThroughputKbps duration %v", duration))
	}
	return float64(c.bytesBySender[src]) * 8 / duration.Seconds() / 1000
}

// Packets returns the number of delivered packets from src.
func (c *Collector) Packets(src frame.NodeID) int64 { return c.packetsBySender[src] }

// Senders returns all senders with delivered packets, ascending.
func (c *Collector) Senders() []frame.NodeID {
	ids := make([]frame.NodeID, 0, len(c.bytesBySender))
	for id := range c.bytesBySender {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// SplitThroughputKbps returns the average per-sender goodput of honest
// senders and of misbehaving senders (the paper's AVG and MSB curves).
// senders lists every flow source that should count, including starved
// ones with zero deliveries.
func (c *Collector) SplitThroughputKbps(senders []frame.NodeID, duration sim.Time) (avgHonest, avgMis float64) {
	var hSum, mSum float64
	var hN, mN int
	for _, id := range senders {
		tp := c.ThroughputKbps(id, duration)
		if c.misbehaving[id] {
			mSum += tp
			mN++
		} else {
			hSum += tp
			hN++
		}
	}
	if hN > 0 {
		avgHonest = hSum / float64(hN)
	}
	if mN > 0 {
		avgMis = mSum / float64(mN)
	}
	return avgHonest, avgMis
}

// Fairness returns Jain's index over the listed flows' throughputs.
func (c *Collector) Fairness(senders []frame.NodeID, duration sim.Time) float64 {
	tps := make([]float64, len(senders))
	for i, id := range senders {
		tps[i] = c.ThroughputKbps(id, duration)
	}
	return Jain(tps)
}

// SeriesPoint is one Figure-8 time bin.
type SeriesPoint struct {
	// Start is the bin's start time.
	Start sim.Time
	// CorrectPct is the correct-diagnosis percentage within the bin;
	// Packets the number of classified packets it is based on.
	CorrectPct float64
	Packets    int
}

// DiagnosisSeries returns the per-bin correct-diagnosis percentages for
// misbehaving senders' packets.
func (c *Collector) DiagnosisSeries() []SeriesPoint {
	out := make([]SeriesPoint, len(c.bins))
	for i, b := range c.bins {
		p := SeriesPoint{Start: sim.Time(i) * c.binSize, Packets: b.total}
		if b.total > 0 {
			p.CorrectPct = 100 * float64(b.mis) / float64(b.total)
		}
		out[i] = p
	}
	return out
}
