// Package stats implements the paper's evaluation metrics: per-flow
// throughput, Jain's fairness index, the four diagnosis-accuracy
// percentages of §5, per-second diagnosis time series (Figure 8), and
// multi-seed aggregation with confidence intervals.
package stats

import (
	"fmt"
	"math"
)

// Jain returns Jain's fairness index over per-flow throughputs:
// (Σ T_f)² / (N · Σ T_f²). It is 1 for perfectly equal shares and 1/N
// when one flow monopolises the channel. Zero-flow inputs return 0.
func Jain(throughputs []float64) float64 {
	if len(throughputs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, t := range throughputs {
		if t < 0 {
			panic(fmt.Sprintf("stats: negative throughput %v", t))
		}
		sum += t
		sumSq += t * t
	}
	//detlint:allow floateq -- division guard: sums of non-negatives are exactly 0 only when every input is 0
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(throughputs)) * sumSq)
}

// Welford accumulates a running mean and variance without storing
// samples (Welford's online algorithm). The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one sample.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of samples.
func (w *Welford) N() int { return w.n }

// Mean returns the sample mean (0 with no samples).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 with < 2 samples).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean (the paper averages 30 runs, comfortably in
// normal-approximation territory).
func (w *Welford) CI95() float64 {
	if w.n < 2 {
		return 0
	}
	return 1.96 * w.StdDev() / math.Sqrt(float64(w.n))
}

// Summary is a Welford snapshot for result tables.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	CI95   float64
}

// Summarize snapshots the accumulator.
func (w *Welford) Summarize() Summary {
	return Summary{N: w.n, Mean: w.Mean(), StdDev: w.StdDev(), CI95: w.CI95()}
}
