package stats

import (
	"math"
	"testing"
	"testing/quick"

	"dcfguard/internal/frame"
	"dcfguard/internal/sim"
)

func TestJainPerfectFairness(t *testing.T) {
	if got := Jain([]float64{5, 5, 5, 5}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Jain(equal) = %v, want 1", got)
	}
}

func TestJainMonopoly(t *testing.T) {
	if got := Jain([]float64{10, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("Jain(monopoly of 4) = %v, want 0.25", got)
	}
}

func TestJainKnownValue(t *testing.T) {
	// (1+2+3)² / (3·(1+4+9)) = 36/42.
	if got := Jain([]float64{1, 2, 3}); math.Abs(got-36.0/42) > 1e-12 {
		t.Fatalf("Jain(1,2,3) = %v, want %v", got, 36.0/42)
	}
}

func TestJainEdgeCases(t *testing.T) {
	if got := Jain(nil); got != 0 {
		t.Fatalf("Jain(nil) = %v, want 0", got)
	}
	if got := Jain([]float64{0, 0}); got != 0 {
		t.Fatalf("Jain(zeros) = %v, want 0", got)
	}
}

func TestJainPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative throughput did not panic")
		}
	}()
	Jain([]float64{1, -1})
}

func TestQuickJainBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		tps := make([]float64, len(raw))
		nonZero := false
		for i, v := range raw {
			tps[i] = float64(v)
			if v != 0 {
				nonZero = true
			}
		}
		got := Jain(tps)
		if !nonZero {
			return got == 0
		}
		lo := 1 / float64(len(tps))
		return got >= lo-1e-12 && got <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickJainScaleInvariant(t *testing.T) {
	f := func(raw []uint8, scale uint8) bool {
		if len(raw) < 2 {
			return true
		}
		k := float64(scale%9) + 1
		a := make([]float64, len(raw))
		b := make([]float64, len(raw))
		for i, v := range raw {
			a[i] = float64(v)
			b[i] = float64(v) * k
		}
		return math.Abs(Jain(a)-Jain(b)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordKnownValues(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", w.Mean())
	}
	// Unbiased variance of this classic set is 32/7.
	if math.Abs(w.Variance()-32.0/7) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", w.Variance(), 32.0/7)
	}
}

func TestWelfordSingleSample(t *testing.T) {
	var w Welford
	w.Add(3)
	if w.Mean() != 3 || w.Variance() != 0 || w.CI95() != 0 {
		t.Fatalf("single-sample stats = (%v, %v, %v)", w.Mean(), w.Variance(), w.CI95())
	}
}

func TestWelfordCI95Shrinks(t *testing.T) {
	var small, large Welford
	for i := 0; i < 10; i++ {
		small.Add(float64(i % 3))
	}
	for i := 0; i < 1000; i++ {
		large.Add(float64(i % 3))
	}
	if large.CI95() >= small.CI95() {
		t.Fatalf("CI95 did not shrink with samples: %v vs %v", large.CI95(), small.CI95())
	}
}

func TestWelfordSummarize(t *testing.T) {
	var w Welford
	w.Add(1)
	w.Add(3)
	s := w.Summarize()
	if s.N != 2 || s.Mean != 2 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt2) > 1e-12 {
		t.Fatalf("stddev = %v", s.StdDev)
	}
}

func TestQuickWelfordMatchesDirect(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) < 2 {
			return true
		}
		var w Welford
		sum := 0.0
		for _, v := range raw {
			w.Add(float64(v))
			sum += float64(v)
		}
		mean := sum / float64(len(raw))
		var ss float64
		for _, v := range raw {
			ss += (float64(v) - mean) * (float64(v) - mean)
		}
		direct := ss / float64(len(raw)-1)
		return math.Abs(w.Mean()-mean) < 1e-9 && math.Abs(w.Variance()-direct) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCollectorDiagnosisPercentages(t *testing.T) {
	c := NewCollector([]frame.NodeID{3}, 0)
	// Misbehaver (node 3): 8 classified, 6 flagged.
	for i := 0; i < 6; i++ {
		c.OnClassified(3, true, 10, sim.Second)
	}
	for i := 0; i < 2; i++ {
		c.OnClassified(3, false, 1, sim.Second)
	}
	// Honest node 1: 10 classified, 1 flagged.
	for i := 0; i < 9; i++ {
		c.OnClassified(1, false, 0, sim.Second)
	}
	c.OnClassified(1, true, 5, sim.Second)

	if got := c.CorrectDiagnosisPct(); math.Abs(got-75) > 1e-12 {
		t.Fatalf("correct diagnosis = %v%%, want 75", got)
	}
	if got := c.MisdiagnosisPct(); math.Abs(got-10) > 1e-12 {
		t.Fatalf("misdiagnosis = %v%%, want 10", got)
	}
}

func TestCollectorEmptyPercentages(t *testing.T) {
	c := NewCollector(nil, 0)
	if c.CorrectDiagnosisPct() != 0 || c.MisdiagnosisPct() != 0 {
		t.Fatal("empty collector percentages not 0")
	}
}

func TestCollectorThroughput(t *testing.T) {
	c := NewCollector(nil, 0)
	for i := 0; i < 100; i++ {
		c.OnDeliver(1, uint32(i), 512, sim.Second)
	}
	// 100·512·8 bits over 2 s = 204.8 kbps.
	if got := c.ThroughputKbps(1, 2*sim.Second); math.Abs(got-204.8) > 1e-9 {
		t.Fatalf("throughput = %v, want 204.8", got)
	}
	if c.Packets(1) != 100 {
		t.Fatalf("packets = %d", c.Packets(1))
	}
	if got := c.ThroughputKbps(2, 2*sim.Second); got != 0 {
		t.Fatalf("unknown sender throughput = %v", got)
	}
}

func TestCollectorSplitThroughput(t *testing.T) {
	c := NewCollector([]frame.NodeID{2}, 0)
	for i := 0; i < 10; i++ {
		c.OnDeliver(1, uint32(i), 1000, 0)
		c.OnDeliver(3, uint32(i), 3000, 0)
	}
	for i := 0; i < 10; i++ {
		c.OnDeliver(2, uint32(i), 5000, 0)
	}
	avg, mis := c.SplitThroughputKbps([]frame.NodeID{1, 2, 3}, sim.Second)
	// Honest: (80 + 240)/2 = 160 kbps; misbehaving: 400 kbps.
	if math.Abs(avg-160) > 1e-9 || math.Abs(mis-400) > 1e-9 {
		t.Fatalf("split = (%v, %v), want (160, 400)", avg, mis)
	}
}

func TestCollectorSplitIncludesStarvedSenders(t *testing.T) {
	c := NewCollector(nil, 0)
	c.OnDeliver(1, 0, 1000, 0)
	avg, _ := c.SplitThroughputKbps([]frame.NodeID{1, 2}, sim.Second)
	if math.Abs(avg-4) > 1e-9 { // (8 + 0)/2 kbps
		t.Fatalf("avg = %v, want 4 (starved sender must count as zero)", avg)
	}
}

func TestCollectorFairness(t *testing.T) {
	c := NewCollector(nil, 0)
	for i := 0; i < 10; i++ {
		c.OnDeliver(1, uint32(i), 1000, 0)
		c.OnDeliver(2, uint32(i), 1000, 0)
	}
	if got := c.Fairness([]frame.NodeID{1, 2}, sim.Second); math.Abs(got-1) > 1e-12 {
		t.Fatalf("fairness = %v, want 1", got)
	}
}

func TestCollectorSenders(t *testing.T) {
	c := NewCollector(nil, 0)
	c.OnDeliver(5, 0, 1, 0)
	c.OnDeliver(1, 0, 1, 0)
	c.OnDeliver(3, 0, 1, 0)
	got := c.Senders()
	want := []frame.NodeID{1, 3, 5}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("Senders() = %v, want %v", got, want)
	}
}

func TestCollectorSeries(t *testing.T) {
	c := NewCollector([]frame.NodeID{3}, sim.Second)
	// Bin 0: 2 of 4 flagged. Bin 2: 3 of 3 flagged. Bin 1: empty.
	for i := 0; i < 2; i++ {
		c.OnClassified(3, true, 0, 100*sim.Millisecond)
		c.OnClassified(3, false, 0, 200*sim.Millisecond)
	}
	for i := 0; i < 3; i++ {
		c.OnClassified(3, true, 0, 2500*sim.Millisecond)
	}
	// Honest traffic must not affect the series.
	c.OnClassified(1, true, 0, 2500*sim.Millisecond)

	s := c.DiagnosisSeries()
	if len(s) != 3 {
		t.Fatalf("series has %d bins, want 3", len(s))
	}
	if s[0].CorrectPct != 50 || s[0].Packets != 4 {
		t.Fatalf("bin 0 = %+v", s[0])
	}
	if s[1].Packets != 0 || s[1].CorrectPct != 0 {
		t.Fatalf("bin 1 = %+v", s[1])
	}
	if s[2].CorrectPct != 100 || s[2].Packets != 3 {
		t.Fatalf("bin 2 = %+v", s[2])
	}
	if s[2].Start != 2*sim.Second {
		t.Fatalf("bin 2 start = %v", s[2].Start)
	}
}

func TestCollectorThroughputPanicsOnZeroDuration(t *testing.T) {
	c := NewCollector(nil, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("zero duration did not panic")
		}
	}()
	c.ThroughputKbps(1, 0)
}
