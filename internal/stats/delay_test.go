package stats

import (
	"math"
	"testing"

	"dcfguard/internal/frame"
	"dcfguard/internal/sim"
)

func TestDelayAccounting(t *testing.T) {
	c := NewCollector([]frame.NodeID{2}, 0)
	c.OnSendComplete(1, 10*sim.Millisecond)
	c.OnSendComplete(1, 30*sim.Millisecond)
	c.OnSendComplete(2, 5*sim.Millisecond)

	if got := c.MeanDelayMs(1); math.Abs(got-20) > 1e-9 {
		t.Fatalf("MeanDelayMs(1) = %v, want 20", got)
	}
	if got := c.MeanDelayMs(2); math.Abs(got-5) > 1e-9 {
		t.Fatalf("MeanDelayMs(2) = %v, want 5", got)
	}
	if got := c.MeanDelayMs(9); got != 0 {
		t.Fatalf("MeanDelayMs(unknown) = %v, want 0", got)
	}
}

func TestSplitDelay(t *testing.T) {
	c := NewCollector([]frame.NodeID{3}, 0)
	c.OnSendComplete(1, 10*sim.Millisecond)
	c.OnSendComplete(2, 20*sim.Millisecond)
	c.OnSendComplete(3, 4*sim.Millisecond)

	honest, mis := c.SplitDelayMs([]frame.NodeID{1, 2, 3})
	if math.Abs(honest-15) > 1e-9 {
		t.Fatalf("honest delay = %v, want 15", honest)
	}
	if math.Abs(mis-4) > 1e-9 {
		t.Fatalf("misbehaver delay = %v, want 4", mis)
	}
}

func TestSplitDelaySkipsIdleSenders(t *testing.T) {
	c := NewCollector(nil, 0)
	c.OnSendComplete(1, 10*sim.Millisecond)
	// Sender 2 never completed a packet: it must not drag the honest
	// average toward zero (unlike throughput, where zero is the truth).
	honest, _ := c.SplitDelayMs([]frame.NodeID{1, 2})
	if math.Abs(honest-10) > 1e-9 {
		t.Fatalf("honest delay = %v, want 10 (idle sender skipped)", honest)
	}
}

func TestSplitDelayEmpty(t *testing.T) {
	c := NewCollector(nil, 0)
	honest, mis := c.SplitDelayMs([]frame.NodeID{1, 2})
	if honest != 0 || mis != 0 {
		t.Fatalf("empty split = (%v, %v)", honest, mis)
	}
}
