package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
)

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	ID   string
	Kind string
	Data string
}

// readSSE parses events off an open stream until limit events arrive
// (limit <= 0: until a terminal "state" event) or the stream ends.
func readSSE(t *testing.T, body *bufio.Reader, limit int) []sseEvent {
	t.Helper()
	var out []sseEvent
	var cur sseEvent
	for {
		line, err := body.ReadString('\n')
		if err != nil {
			return out
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "id: "):
			cur.ID = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.Kind = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.Data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.Kind == "" && cur.Data == "" {
				continue
			}
			out = append(out, cur)
			done := cur.Kind == "state"
			cur = sseEvent{}
			if limit > 0 && len(out) >= limit {
				return out
			}
			if limit <= 0 && done {
				return out
			}
		}
	}
}

// TestSSEExactlyOnce: a client that disconnects mid-job and reconnects
// with Last-Event-ID observes every cell-completion event exactly once
// across both connections, and the stream terminates with the job's
// final state.
func TestSSEExactlyOnce(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	seeds := []uint64{1, 2, 3, 4, 5, 6}
	if _, err := s.Submit(testSpec("sse", seeds...)); err != nil {
		t.Fatal(err)
	}

	// First connection: take the first two cell events, then drop.
	resp, err := http.Get(srv.URL + "/jobs/sse/events")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	first := readSSE(t, bufio.NewReader(resp.Body), 2)
	resp.Body.Close()
	if len(first) != 2 {
		t.Fatalf("first connection: %d events, want 2", len(first))
	}
	lastID := first[len(first)-1].ID

	// Let the job finish while nobody is listening: the reconnect must
	// replay everything missed, not just what arrives after it.
	if st, ok := s.Wait("sse"); !ok || st.State != StateDone {
		t.Fatalf("job state %q ok=%v", st.State, ok)
	}

	// Second connection resumes from the last id received.
	req, err := http.NewRequest(http.MethodGet, srv.URL+"/jobs/sse/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", lastID)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	second := readSSE(t, bufio.NewReader(resp2.Body), 0)
	resp2.Body.Close()
	if len(second) == 0 {
		t.Fatal("second connection saw no events")
	}
	if last := second[len(second)-1]; last.Kind != "state" || !strings.Contains(last.Data, StateDone) {
		t.Fatalf("stream ended with %+v, want terminal state event", last)
	}

	// Union of cell events across both connections: every seed exactly
	// once, every ok, and no id replayed twice.
	seen := map[uint64]int{}
	ids := map[string]bool{}
	for _, ev := range append(first, second...) {
		if ids[ev.ID] {
			t.Fatalf("event id %s delivered twice", ev.ID)
		}
		ids[ev.ID] = true
		if ev.Kind != "cell" {
			continue
		}
		var d cellEventData
		if err := json.Unmarshal([]byte(ev.Data), &d); err != nil {
			t.Fatalf("cell event %q: %v", ev.Data, err)
		}
		if !d.OK {
			t.Fatalf("cell event reported failure: %q", ev.Data)
		}
		seen[d.Seed]++
	}
	for _, seed := range seeds {
		if seen[seed] != 1 {
			t.Fatalf("seed %d: %d cell events, want exactly 1 (seen %v)", seed, seen[seed], seen)
		}
	}
	// The final cell event carries the complete tally.
	if len(second) >= 2 {
		if got := second[len(second)-2]; got.Kind == "cell" {
			var d cellEventData
			json.Unmarshal([]byte(got.Data), &d)
			if d.Done != len(seeds) || d.Total != len(seeds) {
				t.Fatalf("final cell event tally %d/%d, want %d/%d", d.Done, d.Total, len(seeds), len(seeds))
			}
		}
	}
}

// TestSSERecoveredTerminal: a daemon restarted over a finished job still
// serves its events stream — a synthesized state event that closes the
// stream immediately.
func TestSSERecoveredTerminal(t *testing.T) {
	dir := t.TempDir()
	s1 := newTestServer(t, Options{Workers: 2, DataDir: dir})
	if _, err := s1.Submit(testSpec("rec", 1, 2)); err != nil {
		t.Fatal(err)
	}
	if st, ok := s1.Wait("rec"); !ok || st.State != StateDone {
		t.Fatalf("job state %q ok=%v", st.State, ok)
	}
	s1.Shutdown()

	s2 := newTestServer(t, Options{Workers: 2, DataDir: dir})
	srv := httptest.NewServer(s2.Handler())
	defer srv.Close()
	// Resume with an id far past the (reset) log: the handler must still
	// close the stream with a final state event instead of hanging.
	resp, err := http.Get(srv.URL + "/jobs/rec/events?last=9999")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events := readSSE(t, bufio.NewReader(resp.Body), 0)
	if len(events) == 0 {
		t.Fatal("no events from recovered terminal job")
	}
	last := events[len(events)-1]
	if last.Kind != "state" || !strings.Contains(last.Data, StateDone) {
		t.Fatalf("recovered stream ended with %+v", last)
	}
}

// TestSSEUnknownJob: streaming a job that does not exist is a 404, not
// a hung stream.
func TestSSEUnknownJob(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/jobs/nope/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

// TestRetention: with Retain=2, finishing a third job retires the
// oldest terminal one — from the job table and from disk — while the
// survivors keep their artifacts.
func TestRetention(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2, Retain: 2})
	for i := 1; i <= 3; i++ {
		name := fmt.Sprintf("ret%d", i)
		if _, err := s.Submit(testSpec(name, uint64(i))); err != nil {
			t.Fatal(err)
		}
		if st, ok := s.Wait(name); !ok || st.State != StateDone {
			t.Fatalf("%s state %q ok=%v", name, st.State, ok)
		}
	}
	if _, ok := s.Status("ret1"); ok {
		t.Fatal("oldest terminal job still in the table")
	}
	if _, err := os.Stat(s.st.jobDir("ret1")); !os.IsNotExist(err) {
		t.Fatalf("oldest terminal job dir still on disk: %v", err)
	}
	for _, name := range []string{"ret2", "ret3"} {
		st, ok := s.Status(name)
		if !ok || st.State != StateDone {
			t.Fatalf("%s: ok=%v state %q", name, ok, st.State)
		}
		if !equalStrings(st.Artifacts, artifactFiles) {
			t.Fatalf("%s artifacts %v", name, st.Artifacts)
		}
	}
}

// TestRetentionStartupGC: restarting with a tighter Retain prunes the
// backlog of terminal jobs recovered from disk, keeping the most
// recently finished.
func TestRetentionStartupGC(t *testing.T) {
	dir := t.TempDir()
	s1 := newTestServer(t, Options{Workers: 2, DataDir: dir})
	for i := 1; i <= 3; i++ {
		name := fmt.Sprintf("gc%d", i)
		if _, err := s1.Submit(testSpec(name, uint64(i))); err != nil {
			t.Fatal(err)
		}
		if st, ok := s1.Wait(name); !ok || st.State != StateDone {
			t.Fatalf("%s state %q ok=%v", name, st.State, ok)
		}
	}
	s1.Shutdown()

	s2 := newTestServer(t, Options{Workers: 2, DataDir: dir, Retain: 1})
	statuses := s2.Statuses()
	if len(statuses) != 1 || statuses[0].Name != "gc3" {
		names := make([]string, 0, len(statuses))
		for _, st := range statuses {
			names = append(names, st.Name)
		}
		t.Fatalf("after startup GC: jobs %v, want [gc3]", names)
	}
	for _, name := range []string{"gc1", "gc2"} {
		if _, err := os.Stat(s2.st.jobDir(name)); !os.IsNotExist(err) {
			t.Fatalf("%s dir survived startup GC: %v", name, err)
		}
	}
}

// TestRetentionSparesLiveJobs: a running job is never a GC candidate,
// no matter how tight the retention. Two tenants share one worker so a
// quick job finishes (and triggers GC) while a long job is mid-run.
func TestRetentionSparesLiveJobs(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, Retain: 1})
	if _, err := s.Submit(testSpec("old", 1)); err != nil {
		t.Fatal(err)
	}
	if st, ok := s.Wait("old"); !ok || st.State != StateDone {
		t.Fatalf("old state %q ok=%v", st.State, ok)
	}
	long := testSpec("long", 1, 2, 3, 4, 5, 6)
	long.Tenant = "x"
	quick := testSpec("quick", 7)
	quick.Tenant = "y"
	if _, err := s.Submit(long); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(quick); err != nil {
		t.Fatal(err)
	}
	// Round-robin gives quick's single cell the second dispatch slot, so
	// its finalize (and the GC it triggers) happens while long is live.
	if st, ok := s.Wait("quick"); !ok || st.State != StateDone {
		t.Fatalf("quick state %q ok=%v", st.State, ok)
	}
	if _, ok := s.Status("long"); !ok {
		t.Fatal("live job vanished under retention pressure")
	}
	if _, ok := s.Status("old"); ok {
		t.Fatal("oldest terminal job should have been retired")
	}
	if st, ok := s.Wait("long"); !ok || st.State != StateDone {
		t.Fatalf("long state %q ok=%v", st.State, ok)
	}
}
