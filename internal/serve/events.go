package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Live job streaming: GET /jobs/{name}/events emits the job's progress
// as Server-Sent Events. Every event the scheduler produces is appended
// to an in-memory, per-job log with a monotonically increasing id; a
// handler replays everything after the client's Last-Event-ID and then
// follows the log until the job is terminal. Reconnecting with the last
// id received therefore observes every event exactly once within one
// daemon lifetime — the log is memory, not disk; after a restart the
// stream of a recovered terminal job collapses to its final state
// event. Event kinds:
//
//	cell     a cell settled (success, resume, or final failure)
//	retry    a cell was parked on a backoff timer
//	breaker  the panic breaker tripped
//	state    the job changed state; a terminal state ends the stream
//
// The payloads are JSON, pre-rendered under the server mutex at emission
// time so a slow client can never observe torn scheduler state.

// jobEvent is one pre-rendered SSE event.
type jobEvent struct {
	id   uint64
	kind string
	data string
}

// eventLocked appends one event to the job's log and wakes streamers.
// Callers hold s.mu.
func (s *Server) eventLocked(j *job, kind string, payload any) {
	j.nextEvent++
	data, err := json.Marshal(payload)
	if err != nil {
		data = []byte(`{}`)
	}
	j.events = append(j.events, jobEvent{id: j.nextEvent, kind: kind, data: string(data)})
	s.cond.Broadcast()
}

// cellEventData is the payload of a "cell" event.
type cellEventData struct {
	Scenario string `json:"scenario"`
	Seed     uint64 `json:"seed"`
	OK       bool   `json:"ok"`
	Resumed  bool   `json:"resumed,omitempty"`
	Done     int    `json:"done"`
	Total    int    `json:"total"`
	Failed   int    `json:"failed,omitempty"`
	ETA      string `json:"eta,omitempty"`
}

// cellEventLocked renders and appends the settlement event for one cell.
func (s *Server) cellEventLocked(j *job, idx int, ok, resumed bool) {
	snap := j.progress.Snapshot()
	d := cellEventData{
		Scenario: j.cells[idx].Scenario.Name,
		Seed:     j.cells[idx].Seed,
		OK:       ok,
		Resumed:  resumed,
		Done:     snap.Done,
		Total:    snap.Total,
		Failed:   snap.Failed,
	}
	if j.state == StateRunning {
		if eta := snap.ETA(time.Since(j.started)); eta > 0 {
			d.ETA = eta.Round(time.Second).String()
		}
	}
	s.eventLocked(j, "cell", d)
}

// retryEventData is the payload of a "retry" event.
type retryEventData struct {
	Scenario string `json:"scenario"`
	Seed     uint64 `json:"seed"`
	Attempt  int    `json:"attempt"`
	Delay    string `json:"delay"`
}

// breakerEventData is the payload of a "breaker" event.
type breakerEventData struct {
	Reason string `json:"reason"`
}

// stateEventData is the payload of a "state" event.
type stateEventData struct {
	State string `json:"state"`
}

// handleEvents streams one job's event log as SSE.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request, name string) {
	s.mu.Lock()
	j, ok := s.jobs[name]
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, httpError{Error: "no such job"})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, httpError{Error: "streaming unsupported"})
		return
	}

	// Resume point: the standard Last-Event-ID header, or ?last= for
	// curl-style consumers.
	var last uint64
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		last, _ = strconv.ParseUint(v, 10, 64)
	} else if v := r.URL.Query().Get("last"); v != "" {
		last, _ = strconv.ParseUint(v, 10, 64)
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	// The streamer parks on the server cond; a vanished client can only
	// be noticed at a wakeup, so the context watcher broadcasts once the
	// request dies.
	ctx := r.Context()
	watcher := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			s.mu.Lock()
			s.cond.Broadcast()
			s.mu.Unlock()
		case <-watcher:
		}
	}()
	defer close(watcher)

	lastWasState := false
	for {
		s.mu.Lock()
		for ctx.Err() == nil && !j.terminal() && (len(j.events) == 0 || j.events[len(j.events)-1].id <= last) {
			s.cond.Wait()
		}
		if ctx.Err() != nil {
			s.mu.Unlock()
			return
		}
		var batch []jobEvent
		for _, ev := range j.events {
			if ev.id > last {
				batch = append(batch, ev)
			}
		}
		terminal := j.terminal()
		state := j.state
		s.mu.Unlock()

		for _, ev := range batch {
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.id, ev.kind, ev.data)
			last = ev.id
			lastWasState = ev.kind == "state"
		}
		fl.Flush()

		if terminal {
			if !lastWasState {
				// The log predates this daemon (recovered job) or the
				// client resumed past its end: close with a synthesized
				// final state event so every stream ends the same way.
				data, _ := json.Marshal(stateEventData{State: state})
				fmt.Fprintf(w, "id: %d\nevent: state\ndata: %s\n\n", last, data)
				fl.Flush()
			}
			return
		}
	}
}
