package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"dcfguard/internal/atomicio"
	"dcfguard/internal/experiment"
)

// On-disk layout. Disk is the single source of truth — the daemon's
// in-memory state is a cache rebuilt on start — so kill -9 at any
// instant is recoverable:
//
//	<data>/jobs/<name>/spec.json              the accepted submission
//	<data>/jobs/<name>/journal/<cell>.json    per-cell checkpoints
//	<data>/jobs/<name>/artifacts/…            final outputs (terminal)
//	<data>/jobs/<name>/failures.json          failure dumps (failed)
//	<data>/jobs/<name>/degraded.json          breaker trip + dumps
//
// Every file is written through atomicio.WriteFile, and ordering gives
// the crash-safety argument its teeth: spec.json lands before the 202
// response (an acknowledged job cannot be forgotten), a cell's journal
// entry lands before the cell counts as finished (a lost race reruns
// the cell, bit-identically), and artifacts land before the terminal
// marker is believed (artifacts present ⇒ they are complete).

// A store addresses one data directory.
type store struct {
	dir string
}

// sanitizeJobName reports whether the name can serve as a directory
// key; it shares the journal's conservative alphabet and must not be
// empty or escape the jobs directory.
func sanitizeJobName(name string) error {
	if name == "" {
		return fmt.Errorf("serve: job has no name")
	}
	if len(name) > 128 {
		return fmt.Errorf("serve: job name longer than 128 bytes")
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("serve: job name %q: character %q outside [a-zA-Z0-9._-]", name, r)
		}
	}
	if strings.Trim(name, ".") == "" {
		return fmt.Errorf("serve: job name %q is all dots", name)
	}
	return nil
}

func (st store) jobsDir() string           { return filepath.Join(st.dir, "jobs") }
func (st store) jobDir(name string) string { return filepath.Join(st.jobsDir(), name) }
func (st store) specPath(name string) string {
	return filepath.Join(st.jobDir(name), "spec.json")
}
func (st store) journalDir(name string) string {
	return filepath.Join(st.jobDir(name), "journal")
}
func (st store) artifactsDir(name string) string {
	return filepath.Join(st.jobDir(name), "artifacts")
}
func (st store) failuresPath(name string) string {
	return filepath.Join(st.jobDir(name), "failures.json")
}
func (st store) degradedPath(name string) string {
	return filepath.Join(st.jobDir(name), "degraded.json")
}

// writeSpec durably records an accepted submission: directories first,
// then the atomic spec write. Runs before the 202 leaves the server.
func (st store) writeSpec(js JobSpec) error {
	for _, d := range []string{st.jobDir(js.Name), st.journalDir(js.Name), st.artifactsDir(js.Name)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return fmt.Errorf("serve: store: %w", err)
		}
	}
	data, err := json.MarshalIndent(js, "", "  ")
	if err != nil {
		return fmt.Errorf("serve: store: %w", err)
	}
	return atomicio.WriteFile(st.specPath(js.Name), append(data, '\n'), 0o644)
}

// readSpec loads a recorded submission.
func (st store) readSpec(name string) (JobSpec, error) {
	data, err := os.ReadFile(st.specPath(name))
	if err != nil {
		return JobSpec{}, err
	}
	js, err := DecodeJobSpec(strings.NewReader(string(data)))
	if err != nil {
		return JobSpec{}, err
	}
	return js, nil
}

// listJobs returns every job directory holding a spec.json, sorted.
func (st store) listJobs() ([]string, error) {
	entries, err := os.ReadDir(st.jobsDir())
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("serve: store: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if _, err := os.Stat(st.specPath(e.Name())); err == nil {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// failureDump is the serialized form of one cell failure.
type failureDump struct {
	Scenario string `json:"scenario"`
	Seed     uint64 `json:"seed"`
	Attempts int    `json:"attempts"`
	Error    string `json:"error"`
	Dump     string `json:"dump"`
}

func dumpsOf(job *job) []failureDump {
	var dumps []failureDump
	for i, f := range job.failures {
		if f == nil {
			continue
		}
		dumps = append(dumps, failureDump{
			Scenario: f.Scenario,
			Seed:     f.Seed,
			Attempts: job.attempts[i],
			Error:    f.Error(),
			Dump:     f.Dump(),
		})
	}
	return dumps
}

// writeFailures records the failure dumps of a job that completed with
// exhausted-retry cells.
func (st store) writeFailures(name string, dumps []failureDump) error {
	data, err := json.MarshalIndent(dumps, "", "  ")
	if err != nil {
		return fmt.Errorf("serve: store: %w", err)
	}
	return atomicio.WriteFile(st.failuresPath(name), append(data, '\n'), 0o644)
}

// degradedRecord parks a breaker-tripped job with its evidence.
type degradedRecord struct {
	Reason string        `json:"reason"`
	Dumps  []failureDump `json:"dumps"`
}

func (st store) writeDegraded(name string, rec degradedRecord) error {
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fmt.Errorf("serve: store: %w", err)
	}
	return atomicio.WriteFile(st.degradedPath(name), append(data, '\n'), 0o644)
}

func (st store) readDegraded(name string) (degradedRecord, error) {
	var rec degradedRecord
	data, err := os.ReadFile(st.degradedPath(name))
	if err != nil {
		return rec, err
	}
	err = json.Unmarshal(data, &rec)
	return rec, err
}

func (st store) readFailures(name string) ([]failureDump, error) {
	var dumps []failureDump
	data, err := os.ReadFile(st.failuresPath(name))
	if err != nil {
		return nil, err
	}
	err = json.Unmarshal(data, &dumps)
	return dumps, err
}

// writeArtifacts renders the job's final outputs — the same CSV/JSON
// the macsim sweep path writes, byte-for-byte deterministic in the
// results — into the artifacts directory. Written only when every cell
// has a result or a recorded failure.
func (st store) writeArtifacts(job *job) error {
	var ok []experiment.Result
	for i, r := range job.results {
		if job.done[i] && job.failures[i] == nil {
			ok = append(ok, r)
		}
	}
	dir := st.artifactsDir(job.spec.Name)
	csv := experiment.ResultsCSV(job.results)
	if err := atomicio.WriteFile(filepath.Join(dir, "results.csv"), []byte(csv), 0o644); err != nil {
		return err
	}
	resJSON, err := json.MarshalIndent(job.results, "", "  ")
	if err != nil {
		return err
	}
	if err := atomicio.WriteFile(filepath.Join(dir, "results.json"), append(resJSON, '\n'), 0o644); err != nil {
		return err
	}
	agg := experiment.AggregateResults(job.scenario.Name, ok)
	aggJSON, err := json.MarshalIndent(agg, "", "  ")
	if err != nil {
		return err
	}
	return atomicio.WriteFile(filepath.Join(dir, "aggregate.json"), append(aggJSON, '\n'), 0o644)
}

// artifactNames lists the job's downloadable artifacts, sorted.
func (st store) artifactNames(name string) []string {
	entries, err := os.ReadDir(st.artifactsDir(name))
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() && !strings.HasPrefix(e.Name(), ".") {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out
}

// removeJob deletes a job's entire directory — spec, journal, artifacts
// and dumps. Retention GC only; callers must have removed the job from
// the in-memory table first.
func (st store) removeJob(name string) error {
	if err := sanitizeJobName(name); err != nil {
		return err
	}
	return os.RemoveAll(st.jobDir(name))
}

// terminalStamp reports when a recovered job turned terminal: the mtime
// of its terminal disk marker (degraded.json, else artifacts). Zero when
// neither exists.
func (st store) terminalStamp(name string) time.Time {
	if fi, err := os.Stat(st.degradedPath(name)); err == nil {
		return fi.ModTime()
	}
	if fi, err := os.Stat(filepath.Join(st.artifactsDir(name), "results.json")); err == nil {
		return fi.ModTime()
	}
	return time.Time{}
}

// terminalState derives a recovered job's state from disk truth alone:
// a degraded marker parks it, artifacts mean it finished (failures.json
// deciding done vs failed), anything else resumes.
func (st store) terminalState(name string) string {
	if _, err := os.Stat(st.degradedPath(name)); err == nil {
		return StateDegraded
	}
	if _, err := os.Stat(filepath.Join(st.artifactsDir(name), "results.json")); err == nil {
		if _, err := os.Stat(st.failuresPath(name)); err == nil {
			return StateFailed
		}
		return StateDone
	}
	return ""
}
