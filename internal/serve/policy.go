package serve

import (
	"hash/fnv"
	"time"

	"dcfguard/internal/rng"
)

// Retry and circuit-breaker decision logic. Everything in this file is
// a pure function of its inputs: the backoff schedule is derived from
// the counter-RNG keyed by the cell's identity, never from the host
// clock or a shared mutable source, so a test (or an incident
// post-mortem) can reproduce the exact delays a cell was given. The
// wall clock only enters when the scheduler *sleeps* the computed
// delay — and that happens outside this file, through an injectable
// timer.

// RetryPolicy bounds per-cell retries with deterministic exponential
// backoff plus full jitter.
type RetryPolicy struct {
	// MaxAttempts is the total number of times a cell may run (first
	// try included). Values < 1 mean 1: no retries.
	MaxAttempts int
	// BaseDelay scales the backoff: the attempt-n retry waits
	// uniform(0, BaseDelay·2ⁿ), capped at MaxDelay. A zero BaseDelay
	// retries immediately.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (0 means no cap).
	MaxDelay time.Duration
}

// DefaultRetryPolicy is the daemon default: three attempts, 250 ms base
// with full jitter, 5 s cap.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseDelay: 250 * time.Millisecond, MaxDelay: 5 * time.Second}
}

// Attempts returns the effective total-attempt budget.
func (p RetryPolicy) Attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// CellKey derives the jitter key for one (job, scenario, seed) cell:
// an FNV-1a fold of the identifying strings mixed with the seed. Two
// daemons given the same jobs compute the same schedules.
func CellKey(job, scenario string, seed uint64) uint64 {
	h := fnv.New64a()
	h.Write([]byte(job))
	h.Write([]byte{0})
	h.Write([]byte(scenario))
	return rng.Mix64(h.Sum64(), seed)
}

// Delay returns the backoff before retry number retry (1-based: the
// delay between attempt n and attempt n+1 is Delay(key, n)). Full
// jitter — uniform in (0, base·2ʳ) — from the counter-RNG: stateless,
// order-independent, reproducible.
func (p RetryPolicy) Delay(key uint64, retry int) time.Duration {
	if p.BaseDelay <= 0 || retry < 1 {
		return 0
	}
	ceiling := p.BaseDelay << uint(retry-1)
	if ceiling <= 0 || (p.MaxDelay > 0 && ceiling > p.MaxDelay) {
		// The shift overflowed or passed the cap.
		ceiling = p.MaxDelay
		if ceiling <= 0 {
			ceiling = p.BaseDelay
		}
	}
	return time.Duration(rng.CounterUniform(key, uint64(retry)) * float64(ceiling))
}

// Breaker is a per-job circuit breaker over cell panics: K consecutive
// panicking cells trip it, parking the job as degraded instead of
// letting a poisoned scenario burn the whole worker pool retrying
// forever. Timeouts and setup errors do not count — they are the
// watchdog doing its job — only recovered panics, the signature of a
// bug that every sibling cell will hit too.
//
// The zero value never trips. Not goroutine-safe; the job's lock
// serialises access.
type Breaker struct {
	// K is the consecutive-panic trip threshold (0 disables).
	K int

	consecutive int
	tripped     bool
}

// RecordPanic counts one panicking cell and reports whether the
// breaker is now tripped.
func (b *Breaker) RecordPanic() bool {
	b.consecutive++
	if b.K > 0 && b.consecutive >= b.K {
		b.tripped = true
	}
	return b.tripped
}

// RecordOK resets the consecutive-panic streak (a healthy or merely
// timed-out cell proves the job is not uniformly poisoned).
func (b *Breaker) RecordOK() {
	b.consecutive = 0
}

// Tripped reports whether the breaker has tripped. It never untrips:
// a degraded job stays parked until an operator resubmits it.
func (b *Breaker) Tripped() bool { return b.tripped }
