package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"dcfguard/internal/experiment"
)

// Job lifecycle. A submitted JobSpec fans out into (scenario, seed)
// cells; the job's state is a pure function of its cells' outcomes:
//
//	queued ──▶ running ──▶ done        every cell produced a result
//	                  └──▶ failed      ≥1 cell exhausted its retries
//	                  └──▶ degraded    the panic breaker tripped; the
//	                                   job is parked with its dumps
//
// Terminal states are recorded on disk (artifacts + failures/degraded
// dumps); everything before that is reconstructed from spec.json and
// the journal on restart, so kill -9 at any instant loses at most the
// cells that were mid-flight — and those rerun to bit-identical results.

// JobSpec is the submission wire format. Seeds and SeedList mirror
// ConfigSpec: Seeds n runs seeds 1..n, SeedList pins an explicit set.
type JobSpec struct {
	// Name is the job's identity AND its directory key: resubmitting
	// the same name with the same spec is idempotent, with a different
	// spec a conflict. It shares the journal's sanitised alphabet.
	Name string `json:"name"`
	// Tenant buckets the job for fair scheduling ("" = "default"):
	// cells are dispatched round-robin across tenants, so one tenant's
	// thousand-cell sweep cannot starve another's smoke test.
	Tenant   string                  `json:"tenant,omitempty"`
	Scenario experiment.ScenarioSpec `json:"scenario"`
	Seeds    int                     `json:"seeds,omitempty"`
	SeedList []uint64                `json:"seed_list,omitempty"`
}

// DecodeJobSpec decodes one JSON job spec, rejecting unknown fields and
// trailing garbage.
func DecodeJobSpec(r io.Reader) (JobSpec, error) {
	var js JobSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&js); err != nil {
		return JobSpec{}, fmt.Errorf("serve: decoding job spec: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return JobSpec{}, fmt.Errorf("serve: trailing data after job spec")
	}
	return js, nil
}

// seeds materialises the seed set.
func (js JobSpec) seeds() ([]uint64, error) {
	switch {
	case js.Seeds != 0 && len(js.SeedList) > 0:
		return nil, fmt.Errorf("serve: job %q sets both seeds and seed_list", js.Name)
	case js.Seeds < 0:
		return nil, fmt.Errorf("serve: job %q: seeds %d", js.Name, js.Seeds)
	case js.Seeds > 0:
		return experiment.Seeds(js.Seeds), nil
	case len(js.SeedList) > 0:
		return append([]uint64(nil), js.SeedList...), nil
	default:
		return experiment.Seeds(1), nil
	}
}

// Job states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateDegraded = "degraded"
)

// JobStatus is the wire form of a job's live state.
type JobStatus struct {
	Name     string                   `json:"name"`
	Tenant   string                   `json:"tenant"`
	State    string                   `json:"state"`
	Cells    experiment.SweepSnapshot `json:"cells"`
	Retries  int                      `json:"retries"`
	ETA      string                   `json:"eta,omitempty"`
	Failures []string                 `json:"failures,omitempty"`
	// Artifacts lists downloadable artifact names once terminal.
	Artifacts []string `json:"artifacts,omitempty"`
}

// job is the scheduler's runtime state for one submission. The server's
// mutex guards every field after construction.
type job struct {
	spec     JobSpec
	tenant   string
	scenario experiment.Scenario
	seeds    []uint64
	cells    []experiment.SweepCell

	// seq orders jobs by acceptance within a tenant (FIFO tiebreak).
	seq uint64

	state    string
	pending  []int // cell indexes not yet dispatched (head = next)
	inflight int   // cells handed to workers and not yet finished
	waiting  int   // cells parked on a backoff timer
	// stops holds the cancel funcs of armed backoff timers, by cell.
	stops    map[int]func()
	results  []experiment.Result
	done     []bool
	failures []*experiment.SeedFailure
	attempts []int // per-cell attempts consumed
	retries  int   // total retries scheduled (for status/metrics)
	breaker  Breaker
	progress *experiment.SweepProgress
	// started is the wall instant the job left the queue, for the
	// status ETA only — never a scheduling input.
	started time.Time
	// finished closes when the job reaches a terminal state.
	finished chan struct{}
	// finishedAt is the wall instant the job turned terminal (recovered
	// jobs: the mtime of their terminal disk marker). Retention keeps
	// the newest N terminal jobs by this stamp.
	finishedAt time.Time
	// events is the in-memory SSE log (see events.go); nextEvent is the
	// id of the last event appended.
	events    []jobEvent
	nextEvent uint64
}

func (j *job) terminal() bool {
	switch j.state {
	case StateDone, StateFailed, StateDegraded:
		return true
	}
	return false
}

// outstanding reports cells not yet journaled/failed — dispatched,
// running, or sitting out a backoff — the job's contribution to the
// admission-controlled backlog.
func (j *job) outstanding() int {
	return len(j.pending) + j.inflight + j.waiting
}

// finish marks the terminal state and wakes every waiter.
func (j *job) finish(state string) {
	if j.terminal() {
		return
	}
	j.state = state
	close(j.finished)
}
