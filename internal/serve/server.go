package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"dcfguard/internal/experiment"
	"dcfguard/internal/obs"
)

// Submission errors with dedicated HTTP mappings.
var (
	// ErrDraining refuses submissions during graceful shutdown (503).
	ErrDraining = errors.New("serve: draining: not accepting new jobs")
	// ErrConflict rejects a known job name with a different spec (409).
	ErrConflict = errors.New("serve: job already exists with a different spec")
)

// OverloadError is the admission-control refusal (429): the queue of
// outstanding cells is full. RetryAfter is the backoff hint, a pure
// function of the backlog — no clock involved.
type OverloadError struct {
	Outstanding int
	QueueCap    int
	RetryAfter  time.Duration
}

func (e OverloadError) Error() string {
	return fmt.Sprintf("serve: overloaded: %d cells outstanding (cap %d), retry after %s",
		e.Outstanding, e.QueueCap, e.RetryAfter)
}

// Server is the daemon core: the job table, the fair scheduler, and
// the worker pool, all over one data directory.
type Server struct {
	opts Options
	st   store
	m    metrics

	mu     sync.Mutex
	cond   *sync.Cond
	jobs   map[string]*job
	seq    uint64 // acceptance order
	rrPrev string // last tenant served, for round-robin rotation
	closed bool   // drain has begun: no new cells dispatched
	wg     sync.WaitGroup
}

// NewServer opens (or creates) the data directory, recovers every
// acknowledged job from disk — terminal jobs stay parked with their
// artifacts, interrupted ones re-enqueue and resume from their journal
// checkpoints — and starts the worker pool.
func NewServer(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	s := &Server{
		opts: opts,
		st:   store{dir: opts.DataDir},
		m:    NewMetrics(opts.Registry),
		jobs: make(map[string]*job),
	}
	s.cond = sync.NewCond(&s.mu)
	if err := os.MkdirAll(s.st.jobsDir(), 0o755); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	for w := 0; w < opts.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// recover rebuilds the job table from disk truth: every directory with
// a spec.json was acknowledged and must be accounted for.
func (s *Server) recover() error {
	names, err := s.st.listJobs()
	if err != nil {
		return err
	}
	for _, name := range names {
		js, err := s.st.readSpec(name)
		if err != nil {
			return fmt.Errorf("serve: recovering job %q: %w", name, err)
		}
		j, err := s.buildJob(js)
		if err != nil {
			return fmt.Errorf("serve: recovering job %q: %w", name, err)
		}
		if term := s.st.terminalState(name); term != "" {
			// Terminal: park it; artifacts and dumps answer status from
			// disk. The cell counters reflect the recorded outcome.
			j.pending = nil
			j.progress.SetTotal(len(j.cells))
			switch term {
			case StateDegraded:
				if rec, err := s.st.readDegraded(name); err == nil {
					for range rec.Dumps {
						j.progress.CellDone(true)
					}
				}
			case StateFailed:
				failed := 0
				if dumps, err := s.st.readFailures(name); err == nil {
					failed = len(dumps)
					for range dumps {
						j.progress.CellDone(true)
					}
				}
				for i := failed; i < len(j.cells); i++ {
					j.progress.CellResumed()
				}
			case StateDone:
				for range j.cells {
					j.progress.CellResumed()
				}
			}
			j.finish(term)
			j.finishedAt = s.st.terminalStamp(name)
			// The event log died with the previous daemon; a synthesized
			// state event lets a late SSE subscriber still learn the
			// outcome and terminate cleanly.
			s.eventLocked(j, "state", stateEventData{State: term})
		}
		s.jobs[name] = j
	}
	s.gcLocked()
	return nil
}

// gcLocked enforces Options.Retain: among terminal jobs with no cells
// still draining, the Retain most recently finished survive; the rest
// leave the table and the disk. Live jobs are never candidates.
func (s *Server) gcLocked() {
	if s.opts.Retain <= 0 {
		return
	}
	var term []*job
	for _, j := range s.jobs { //detlint:allow maporder -- the total sort below (finishedAt, then name) makes the survivor set order-independent
		if j.terminal() && j.inflight == 0 {
			term = append(term, j)
		}
	}
	if len(term) <= s.opts.Retain {
		return
	}
	sort.Slice(term, func(a, b int) bool {
		if !term[a].finishedAt.Equal(term[b].finishedAt) {
			return term[a].finishedAt.After(term[b].finishedAt)
		}
		return term[a].spec.Name < term[b].spec.Name
	})
	for _, j := range term[s.opts.Retain:] {
		delete(s.jobs, j.spec.Name)
		// Best effort: a directory that refuses to die is re-candidate
		// on the next GC pass or restart.
		s.st.removeJob(j.spec.Name)
		s.m.jobsRetired.Inc()
	}
}

// buildJob validates a spec into runnable state: scenario built and
// validated, seed set expanded, every cell pending.
func (s *Server) buildJob(js JobSpec) (*job, error) {
	if err := sanitizeJobName(js.Name); err != nil {
		return nil, err
	}
	scenario, err := js.Scenario.ToScenario()
	if err != nil {
		return nil, err
	}
	seeds, err := js.seeds()
	if err != nil {
		return nil, err
	}
	j := &job{
		spec:     js,
		tenant:   js.Tenant,
		scenario: scenario,
		seeds:    seeds,
		state:    StateQueued,
		stops:    make(map[int]func()),
		results:  make([]experiment.Result, len(seeds)),
		done:     make([]bool, len(seeds)),
		failures: make([]*experiment.SeedFailure, len(seeds)),
		attempts: make([]int, len(seeds)),
		breaker:  Breaker{K: s.opts.BreakerK},
		progress: &experiment.SweepProgress{},
		finished: make(chan struct{}),
	}
	if j.tenant == "" {
		j.tenant = "default"
	}
	for i := range seeds {
		j.cells = append(j.cells, experiment.SweepCell{Scenario: scenario, Seed: seeds[i]})
		j.pending = append(j.pending, i)
	}
	return j, nil
}

// loadLocked sums outstanding cells across live jobs: the quantity the
// admission controller bounds.
func (s *Server) loadLocked() int {
	load := 0
	for _, j := range s.jobs {
		if !j.terminal() {
			load += j.outstanding()
		}
	}
	return load
}

// retryAfter converts a backlog into a client backoff hint: one second
// per worker-pool's-worth of queued cells, clamped to [1s, 30s]. A pure
// function of counts, so tests can assert it exactly.
func (s *Server) retryAfter(load int) time.Duration {
	secs := 1 + load/(s.opts.Workers*8)
	if secs > 30 {
		secs = 30
	}
	return time.Duration(secs) * time.Second
}

// Submit accepts one job: admission control, durable spec record, then
// enqueue. Resubmitting an identical spec is idempotent (the current
// status returns); a different spec under a known name is ErrConflict.
func (s *Server) Submit(js JobSpec) (JobStatus, error) {
	nj, err := s.buildJob(js)
	if err != nil {
		return JobStatus{}, err
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return JobStatus{}, ErrDraining
	}
	if prev, ok := s.jobs[js.Name]; ok {
		defer s.mu.Unlock()
		if !specEqual(prev.spec, js) {
			return JobStatus{}, ErrConflict
		}
		return s.statusLocked(prev), nil
	}
	if load := s.loadLocked(); load+len(nj.cells) > s.opts.QueueCap {
		ra := s.retryAfter(load)
		s.mu.Unlock()
		s.m.rejected.Inc()
		return JobStatus{}, OverloadError{Outstanding: load, QueueCap: s.opts.QueueCap, RetryAfter: ra}
	}
	s.mu.Unlock()

	// Durably record the spec BEFORE acknowledging: an acked job
	// survives kill -9 even if it never dispatched a cell.
	if err := s.st.writeSpec(js); err != nil {
		return JobStatus{}, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return JobStatus{}, ErrDraining
	}
	if prev, ok := s.jobs[js.Name]; ok {
		// Lost a race with an identical submission.
		if !specEqual(prev.spec, js) {
			return JobStatus{}, ErrConflict
		}
		return s.statusLocked(prev), nil
	}
	s.seq++
	nj.seq = s.seq
	nj.progress.SetTotal(len(nj.cells))
	s.jobs[js.Name] = nj
	s.m.jobsSubmitted.Inc()
	s.cond.Broadcast()
	return s.statusLocked(nj), nil
}

// specEqual compares submissions by canonical JSON: the same bytes the
// store records, so in-memory and disk idempotence agree.
func specEqual(a, b JobSpec) bool {
	aj, aerr := json.Marshal(a)
	bj, berr := json.Marshal(b)
	return aerr == nil && berr == nil && string(aj) == string(bj)
}

// cellRef hands one dispatched cell to a worker.
type cellRef struct {
	j   *job
	idx int
}

// nextCellLocked is the fair scheduler: tenants with pending work are
// served round-robin (sorted, rotating after the last tenant served),
// and within a tenant jobs go FIFO by acceptance. One tenant's
// thousand-cell sweep cannot starve another's smoke test.
func (s *Server) nextCellLocked() (cellRef, bool) {
	eligible := map[string]bool{}
	for _, j := range s.jobs {
		if !j.terminal() && len(j.pending) > 0 {
			eligible[j.tenant] = true
		}
	}
	if len(eligible) == 0 {
		return cellRef{}, false
	}
	tenants := make([]string, 0, len(eligible))
	for t := range eligible {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	pick := tenants[0]
	for _, t := range tenants {
		if t > s.rrPrev {
			pick = t
			break
		}
	}
	s.rrPrev = pick

	var next *job
	for _, j := range s.jobs {
		if j.terminal() || j.tenant != pick || len(j.pending) == 0 {
			continue
		}
		if next == nil || j.seq < next.seq {
			next = j
		}
	}
	idx := next.pending[0]
	next.pending = next.pending[1:]
	next.inflight++
	if next.state == StateQueued {
		next.state = StateRunning
		next.started = time.Now()
	}
	return cellRef{j: next, idx: idx}, true
}

// worker pulls cells under the scheduler lock and runs them outside it.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		var ref cellRef
		var ok bool
		for {
			if s.closed {
				s.mu.Unlock()
				return
			}
			if ref, ok = s.nextCellLocked(); ok {
				break
			}
			s.cond.Wait()
		}
		s.mu.Unlock()
		s.runCell(ref)
	}
}

// runCell executes one cell: journal hit → resumed for free; otherwise
// a guarded run whose result is journaled before it counts. The journal
// write preceding the in-memory "done" is what makes kill -9 lose at
// most the cells mid-flight.
func (s *Server) runCell(ref cellRef) {
	cell := ref.j.cells[ref.idx]
	dir := s.st.journalDir(ref.j.spec.Name)
	if res, ok, err := experiment.LoadJournaledCell(dir, cell.Scenario.Name, cell.Seed); err == nil && ok {
		s.cellDone(ref, res, nil, true)
		return
	}
	res, err := experiment.RunGuarded(cell.Scenario, cell.Seed, s.opts.SeedTimeout)
	if err == nil {
		if jerr := experiment.JournalCell(dir, res); jerr != nil {
			// A failed checkpoint is a retryable cell failure: the run
			// was fine but is not durable, so it must not count.
			err = &experiment.SeedFailure{Scenario: cell.Scenario.Name, Seed: cell.Seed, Err: jerr.Error()}
		}
	}
	s.cellDone(ref, res, err, false)
}

// cellDone folds one cell outcome into the job under the lock: success
// and resume settle the cell; a failure consults the breaker and the
// retry budget; the last settled cell finalizes the job.
func (s *Server) cellDone(ref cellRef, res experiment.Result, err error, resumed bool) {
	j, idx := ref.j, ref.idx

	s.mu.Lock()
	defer s.mu.Unlock()
	j.inflight--
	if !resumed {
		j.attempts[idx]++
		s.m.cellsRun.Inc()
	} else {
		s.m.cellsResumed.Inc()
	}
	if j.terminal() {
		// The job was parked (breaker) while this cell was mid-flight;
		// its journal entry, if any, stands for a future resubmission.
		s.cond.Broadcast()
		return
	}

	switch {
	case err == nil:
		j.results[idx] = res
		j.done[idx] = true
		j.breaker.RecordOK()
		if resumed {
			j.progress.CellResumed()
		} else {
			j.progress.CellDone(false)
			j.progress.AddEvents(res.EventsFired)
		}
		s.cellEventLocked(j, idx, true, resumed)

	default:
		f := asSeedFailure(err, j.cells[idx])
		if f.Panic != "" && j.breaker.RecordPanic() {
			s.parkDegradedLocked(j, idx, f)
			s.cond.Broadcast()
			return
		}
		if f.Panic == "" {
			// Timeouts and setup errors are the watchdog doing its job,
			// not evidence of a poisoned scenario; reset the streak.
			j.breaker.RecordOK()
		}
		if j.attempts[idx] < s.opts.Retry.Attempts() {
			s.scheduleRetryLocked(j, idx)
		} else {
			j.failures[idx] = f
			j.done[idx] = true
			j.progress.CellDone(true)
			s.m.cellsFailed.Inc()
			s.cellEventLocked(j, idx, false, false)
		}
	}

	if j.outstanding() == 0 {
		s.finalizeLocked(j)
	}
	s.cond.Broadcast()
}

// asSeedFailure normalizes any run error into the dump-carrying form.
func asSeedFailure(err error, cell experiment.SweepCell) *experiment.SeedFailure {
	var f *experiment.SeedFailure
	if errors.As(err, &f) {
		return f
	}
	return &experiment.SeedFailure{Scenario: cell.Scenario.Name, Seed: cell.Seed, Err: err.Error()}
}

// scheduleRetryLocked parks the cell on a backoff timer. The delay is
// the deterministic full-jitter schedule from the policy; only the
// *sleeping* touches the host clock, through the injected timer.
func (s *Server) scheduleRetryLocked(j *job, idx int) {
	retry := j.attempts[idx] // retry n follows attempt n
	key := CellKey(j.spec.Name, j.cells[idx].Scenario.Name, j.cells[idx].Seed)
	delay := s.opts.Retry.Delay(key, retry)
	j.waiting++
	j.retries++
	j.progress.CellRetried()
	s.m.cellsRetried.Inc()
	s.eventLocked(j, "retry", retryEventData{
		Scenario: j.cells[idx].Scenario.Name,
		Seed:     j.cells[idx].Seed,
		Attempt:  j.attempts[idx],
		Delay:    delay.String(),
	})
	j.stops[idx] = s.opts.Timer(delay, func() { s.requeue(j, idx) })
}

// requeue returns a backoff-expired cell to the pending queue (or
// drops it if the job was parked or the server is draining — disk
// truth covers it either way).
func (s *Server) requeue(j *job, idx int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := j.stops[idx]; !ok {
		return // cancelled by drain or park; already accounted
	}
	delete(j.stops, idx)
	j.waiting--
	if j.terminal() || s.closed {
		return
	}
	j.pending = append(j.pending, idx)
	s.cond.Broadcast()
}

// parkDegradedLocked trips the job: the offending cell is recorded,
// every queued or waiting cell is dropped, the evidence is written to
// disk, and the job is parked StateDegraded. In-flight siblings drain
// harmlessly into the terminal check in cellDone.
func (s *Server) parkDegradedLocked(j *job, idx int, f *experiment.SeedFailure) {
	j.failures[idx] = f
	j.done[idx] = true
	j.progress.CellDone(true)
	s.m.cellsFailed.Inc()
	s.cellEventLocked(j, idx, false, false)
	j.pending = nil
	for i, stop := range j.stops {
		stop()
		delete(j.stops, i)
		j.waiting--
	}
	rec := degradedRecord{
		Reason: fmt.Sprintf("circuit breaker: %d consecutive panicking cells (K=%d)", s.opts.BreakerK, s.opts.BreakerK),
		Dumps:  dumpsOf(j),
	}
	if err := s.st.writeDegraded(j.spec.Name, rec); err != nil {
		rec.Reason += "; WARNING: degraded record not durable: " + err.Error()
	}
	s.m.jobsDegraded.Inc()
	s.eventLocked(j, "breaker", breakerEventData{Reason: rec.Reason})
	j.finish(StateDegraded)
	j.finishedAt = time.Now()
	s.eventLocked(j, "state", stateEventData{State: j.state})
	s.gcLocked()
}

// finalizeLocked settles a job whose every cell is done: artifacts are
// written (atomic, deterministic functions of the journaled results),
// then failure dumps if any, then the state flips.
func (s *Server) finalizeLocked(j *job) {
	if j.terminal() {
		return
	}
	dumps := dumpsOf(j)
	if err := s.st.writeArtifacts(j); err != nil {
		// Artifacts not durable: fail the job with the evidence rather
		// than claim success the disk cannot back.
		dumps = append(dumps, failureDump{
			Scenario: j.scenario.Name, Error: "writing artifacts: " + err.Error(),
		})
	}
	if len(dumps) > 0 {
		// Best effort: the in-memory state flips regardless; a restart
		// re-derives failed-vs-done from what actually landed.
		s.st.writeFailures(j.spec.Name, dumps)
		s.m.jobsFailed.Inc()
		j.finish(StateFailed)
	} else {
		s.m.jobsDone.Inc()
		j.finish(StateDone)
	}
	j.finishedAt = time.Now()
	s.eventLocked(j, "state", stateEventData{State: j.state})
	s.gcLocked()
}

// statusLocked renders a job's live state.
func (s *Server) statusLocked(j *job) JobStatus {
	snap := j.progress.Snapshot()
	st := JobStatus{
		Name:    j.spec.Name,
		Tenant:  j.tenant,
		State:   j.state,
		Cells:   snap,
		Retries: j.retries,
	}
	if j.state == StateRunning {
		if eta := snap.ETA(time.Since(j.started)); eta > 0 {
			st.ETA = eta.Round(time.Second).String()
		}
	}
	for _, f := range j.failures {
		if f != nil {
			st.Failures = append(st.Failures, f.Error())
		}
	}
	if j.terminal() {
		if len(st.Failures) == 0 {
			// Recovered terminal jobs keep their dumps on disk only.
			if j.state == StateDegraded {
				if rec, err := s.st.readDegraded(j.spec.Name); err == nil {
					st.Failures = append(st.Failures, rec.Reason)
					for _, d := range rec.Dumps {
						st.Failures = append(st.Failures, d.Error)
					}
				}
			} else if j.state == StateFailed {
				if dumps, err := s.st.readFailures(j.spec.Name); err == nil {
					for _, d := range dumps {
						st.Failures = append(st.Failures, d.Error)
					}
				}
			}
		}
		st.Artifacts = s.st.artifactNames(j.spec.Name)
	}
	return st
}

// Status reports one job.
func (s *Server) Status(name string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[name]
	if !ok {
		return JobStatus{}, false
	}
	return s.statusLocked(j), true
}

// Statuses lists every job, sorted by name.
func (s *Server) Statuses() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.jobs))
	for name := range s.jobs {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]JobStatus, 0, len(names))
	for _, name := range names {
		out = append(out, s.statusLocked(s.jobs[name]))
	}
	return out
}

// Wait blocks until the named job reaches a terminal state and returns
// its final status. Unknown names return ok=false immediately.
func (s *Server) Wait(name string) (JobStatus, bool) {
	s.mu.Lock()
	j, ok := s.jobs[name]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	<-j.finished
	return s.Status(name)
}

// Ready reports whether the daemon should accept traffic: not draining
// and the queue below its cap.
func (s *Server) Ready() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.closed && s.loadLocked() < s.opts.QueueCap
}

// Shutdown drains gracefully: submissions and dispatch stop, armed
// backoff timers are cancelled, and every in-flight cell finishes and
// reaches its journal checkpoint before Shutdown returns. Restarting
// over the same data directory resumes exactly there.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	for _, j := range s.jobs {
		for i, stop := range j.stops {
			stop()
			delete(j.stops, i)
			j.waiting--
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// --- HTTP surface ---

// Handler returns the daemon's HTTP API:
//
//	POST /jobs                       submit a JobSpec (202 / 200 idempotent /
//	                                 409 conflict / 429 overload / 503 draining)
//	GET  /jobs                       list job statuses
//	GET  /jobs/{name}                one job's status
//	GET  /jobs/{name}/events         live progress as SSE (Last-Event-ID resume)
//	GET  /jobs/{name}/artifacts/{f}  download an artifact
//	GET  /healthz                    process liveness (always 200)
//	GET  /readyz                     200 iff accepting work, else 503
//	GET  /metrics                    Prometheus text (?format=json for the raw snapshot)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !s.Ready() {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			data, err := json.MarshalIndent(s.opts.Registry, "", "  ")
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Write(append(data, '\n'))
			return
		}
		w.Header().Set("Content-Type", obs.PrometheusContentType)
		s.opts.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/jobs", s.handleJobs)
	mux.HandleFunc("/jobs/", s.handleJob)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintf(w, "{%q: %q}\n", "error", err.Error())
		return
	}
	w.Write(append(data, '\n'))
}

type httpError struct {
	Error string `json:"error"`
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.Statuses())
	case http.MethodPost:
		js, err := DecodeJobSpec(r.Body)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, httpError{Error: err.Error()})
			return
		}
		status, err := s.Submit(js)
		switch {
		case err == nil:
			code := http.StatusAccepted
			if status.State != StateQueued {
				code = http.StatusOK // idempotent resubmission
			}
			writeJSON(w, code, status)
		case errors.Is(err, ErrDraining):
			writeJSON(w, http.StatusServiceUnavailable, httpError{Error: err.Error()})
		case errors.Is(err, ErrConflict):
			writeJSON(w, http.StatusConflict, httpError{Error: err.Error()})
		default:
			var oe OverloadError
			if errors.As(err, &oe) {
				w.Header().Set("Retry-After", strconv.Itoa(int(oe.RetryAfter/time.Second)))
				writeJSON(w, http.StatusTooManyRequests, httpError{Error: oe.Error()})
				return
			}
			writeJSON(w, http.StatusBadRequest, httpError{Error: err.Error()})
		}
	default:
		w.Header().Set("Allow", "GET, POST")
		writeJSON(w, http.StatusMethodNotAllowed, httpError{Error: "method not allowed"})
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		writeJSON(w, http.StatusMethodNotAllowed, httpError{Error: "method not allowed"})
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/jobs/")
	parts := strings.Split(rest, "/")
	name := parts[0]
	if sanitizeJobName(name) != nil {
		writeJSON(w, http.StatusBadRequest, httpError{Error: "bad job name"})
		return
	}
	switch {
	case len(parts) == 1:
		status, ok := s.Status(name)
		if !ok {
			writeJSON(w, http.StatusNotFound, httpError{Error: "no such job"})
			return
		}
		writeJSON(w, http.StatusOK, status)
	case len(parts) == 2 && parts[1] == "events":
		s.handleEvents(w, r, name)
	case len(parts) == 3 && parts[1] == "artifacts":
		file := parts[2]
		if file == "" || strings.ContainsAny(file, "/\\") || strings.HasPrefix(file, ".") {
			writeJSON(w, http.StatusBadRequest, httpError{Error: "bad artifact name"})
			return
		}
		if _, ok := s.Status(name); !ok {
			writeJSON(w, http.StatusNotFound, httpError{Error: "no such job"})
			return
		}
		path := filepath.Join(s.st.artifactsDir(name), file)
		if _, err := os.Stat(path); err != nil {
			writeJSON(w, http.StatusNotFound, httpError{Error: "no such artifact"})
			return
		}
		http.ServeFile(w, r, path)
	default:
		writeJSON(w, http.StatusNotFound, httpError{Error: "not found"})
	}
}
