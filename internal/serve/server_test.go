package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dcfguard/internal/experiment"
	"dcfguard/internal/topo"
)

// testSpec is the canonical fast job: the guard/journal tests' quick
// star scenario (8 senders, one misbehaver at PM 80, 200 ms).
func testSpec(name string, seeds ...uint64) JobSpec {
	return JobSpec{
		Name: name,
		Scenario: experiment.ScenarioSpec{
			Name:     name,
			Topo:     experiment.TopoSpec{Kind: "star", Senders: 8, Misbehaving: []int{3}},
			PM:       80,
			Duration: "200ms",
		},
		SeedList: seeds,
	}
}

func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	if opts.DataDir == "" {
		opts.DataDir = t.TempDir()
	}
	s, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)
	return s
}

func waitUntil(t *testing.T, msg string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("timed out waiting for " + msg)
}

var artifactFiles = []string{"aggregate.json", "results.csv", "results.json"}

func readArtifacts(t *testing.T, st store, name string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for _, f := range artifactFiles {
		data, err := os.ReadFile(filepath.Join(st.artifactsDir(name), f))
		if err != nil {
			t.Fatal(err)
		}
		out[f] = data
	}
	return out
}

// referenceArtifacts runs the job to completion on a fresh daemon in a
// fresh directory: the ground truth every crash/restart path must
// reproduce byte-for-byte.
func referenceArtifacts(t *testing.T, js JobSpec) map[string][]byte {
	t.Helper()
	s := newTestServer(t, Options{Workers: 2})
	if _, err := s.Submit(js); err != nil {
		t.Fatal(err)
	}
	st, ok := s.Wait(js.Name)
	if !ok || st.State != StateDone {
		t.Fatalf("reference job state %q, ok=%v", st.State, ok)
	}
	return readArtifacts(t, s.st, js.Name)
}

// TestServeRunsJob: a submitted job runs to done, and its results.csv
// matches direct experiment.Run output exactly — daemon-submitted
// sweeps are interchangeable with in-process ones.
func TestServeRunsJob(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})
	js := testSpec("basic", 1, 2)
	status, err := s.Submit(js)
	if err != nil {
		t.Fatal(err)
	}
	if status.State != StateQueued && status.State != StateRunning {
		t.Fatalf("submit status state %q", status.State)
	}
	final, ok := s.Wait("basic")
	if !ok || final.State != StateDone {
		t.Fatalf("final state %q, ok=%v", final.State, ok)
	}
	if final.Cells.Done != 2 || final.Cells.Ran != 2 || final.Cells.Failed != 0 {
		t.Fatalf("cells %+v", final.Cells)
	}
	if got, want := final.Artifacts, artifactFiles; !equalStrings(got, want) {
		t.Fatalf("artifacts %v, want %v", got, want)
	}

	scenario, err := js.Scenario.ToScenario()
	if err != nil {
		t.Fatal(err)
	}
	var results []experiment.Result
	for _, seed := range []uint64{1, 2} {
		res, err := experiment.Run(scenario, seed)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	want := experiment.ResultsCSV(results)
	got, err := os.ReadFile(filepath.Join(s.st.artifactsDir("basic"), "results.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Fatal("daemon results.csv differs from direct runs")
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestServeIdempotentAndConflict: resubmitting the same spec returns
// the live status; the same name with a different spec is refused.
func TestServeIdempotentAndConflict(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})
	js := testSpec("idem", 1)
	if _, err := s.Submit(js); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(js); err != nil {
		t.Fatalf("identical resubmit: %v", err)
	}
	if _, err := s.Submit(testSpec("idem", 1, 2)); !errors.Is(err, ErrConflict) {
		t.Fatalf("conflicting resubmit: %v, want ErrConflict", err)
	}
	if st, _ := s.Wait("idem"); st.State != StateDone {
		t.Fatalf("state %q", st.State)
	}
	// Idempotence survives completion, and the conflict check still bites.
	if st, err := s.Submit(js); err != nil || st.State != StateDone {
		t.Fatalf("post-completion resubmit: %v, state %q", err, st.State)
	}
}

// TestServeAdmissionControl: a job that would overflow the bounded
// queue is refused at the door with a Retry-After hint, no disk state
// is created for it, and already-accepted jobs are unharmed.
func TestServeAdmissionControl(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, QueueCap: 3})
	if _, err := s.Submit(testSpec("small", 1, 2)); err != nil {
		t.Fatal(err)
	}

	_, err := s.Submit(testSpec("big", 1, 2, 3, 4, 5))
	var oe OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("oversized submit: %v, want OverloadError", err)
	}
	if oe.RetryAfter < time.Second {
		t.Fatalf("RetryAfter %v < 1s", oe.RetryAfter)
	}
	if _, err := os.Stat(s.st.specPath("big")); !os.IsNotExist(err) {
		t.Fatal("rejected job left disk state behind")
	}
	if got := s.m.rejected.Value(); got != 1 {
		t.Fatalf("admission_rejected = %d, want 1", got)
	}

	if st, _ := s.Wait("small"); st.State != StateDone {
		t.Fatalf("accepted job state %q after rejection", st.State)
	}
	if !s.Ready() {
		t.Fatal("not ready after backlog drained")
	}
}

// TestServeSubmitValidation: bad names and bad specs never reach the
// queue.
func TestServeSubmitValidation(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	bad := []JobSpec{
		testSpec(""),
		testSpec("../evil", 1),
		testSpec("dir/escape", 1),
		{Name: "noscenario"},
		{Name: "bothseeds", Scenario: testSpec("x", 1).Scenario, Seeds: 2, SeedList: []uint64{1}},
	}
	for _, js := range bad {
		if _, err := s.Submit(js); err == nil {
			t.Errorf("spec %+v accepted, want error", js.Name)
		}
	}
}

// manualTimer records scheduled backoffs and fires them only on
// demand, so retry scheduling is exercised without real sleeps and the
// recorded delays can be asserted against the pure policy.
type manualTimer struct {
	mu     sync.Mutex
	delays []time.Duration
	fns    []func()
}

func (m *manualTimer) timer(d time.Duration, f func()) func() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.delays = append(m.delays, d)
	m.fns = append(m.fns, f)
	return func() {}
}

func (m *manualTimer) count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.fns)
}

func (m *manualTimer) fire(i int) {
	m.mu.Lock()
	f := m.fns[i]
	m.mu.Unlock()
	f()
}

func (m *manualTimer) delay(i int) time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.delays[i]
}

// injectJob builds a job whose every cell panics (an injected topology
// bug, the guard tests' trick) and enqueues it directly — panics can't
// be expressed in a wire spec, by design.
func injectPanicJob(t *testing.T, s *Server, name string, ncells int) {
	t.Helper()
	js := testSpec(name, experiment.Seeds(ncells)...)
	j, err := s.buildJob(js)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.st.writeSpec(js); err != nil {
		t.Fatal(err)
	}
	boom := func(uint64) *topo.Topology { panic("injected cell bug") }
	j.scenario.Topo = boom
	for i := range j.cells {
		j.cells[i].Scenario.Topo = boom
	}
	s.mu.Lock()
	s.seq++
	j.seq = s.seq
	j.progress.SetTotal(len(j.cells))
	s.jobs[name] = j
	s.cond.Broadcast()
	s.mu.Unlock()
}

// TestServeRetrySchedule: a failing cell is retried on exactly the
// deterministic full-jitter schedule the policy computes, and exhausts
// into a failed job carrying the dumps.
func TestServeRetrySchedule(t *testing.T) {
	mt := &manualTimer{}
	retry := RetryPolicy{MaxAttempts: 3, BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second}
	s := newTestServer(t, Options{Workers: 1, Retry: retry, BreakerK: -1, Timer: mt.timer})
	injectPanicJob(t, s, "flaky", 1)

	key := CellKey("flaky", "flaky", 1)
	waitUntil(t, "first retry armed", func() bool { return mt.count() >= 1 })
	if got, want := mt.delay(0), retry.Delay(key, 1); got != want {
		t.Fatalf("retry 1 delay %v, want %v", got, want)
	}
	mt.fire(0)
	waitUntil(t, "second retry armed", func() bool { return mt.count() >= 2 })
	if got, want := mt.delay(1), retry.Delay(key, 2); got != want {
		t.Fatalf("retry 2 delay %v, want %v", got, want)
	}
	mt.fire(1)

	st, ok := s.Wait("flaky")
	if !ok || st.State != StateFailed {
		t.Fatalf("state %q, ok=%v, want failed", st.State, ok)
	}
	if st.Retries != 2 {
		t.Fatalf("retries %d, want 2", st.Retries)
	}
	if len(st.Failures) != 1 || !strings.Contains(st.Failures[0], "injected cell bug") {
		t.Fatalf("failures %v", st.Failures)
	}
	dumps, err := s.st.readFailures("flaky")
	if err != nil || len(dumps) != 1 || dumps[0].Attempts != 3 {
		t.Fatalf("failures.json: %v, %+v", err, dumps)
	}
	if !strings.Contains(dumps[0].Dump, "stack:") {
		t.Fatal("failure dump lost its stack")
	}
}

// TestServeBreakerParksDegraded: K consecutive panicking cells trip the
// job's breaker; remaining cells are dropped, the evidence lands in
// degraded.json, and the job parks as degraded instead of burning the
// pool.
func TestServeBreakerParksDegraded(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, Retry: RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond}, BreakerK: 2})
	injectPanicJob(t, s, "poisoned", 4)

	st, ok := s.Wait("poisoned")
	if !ok || st.State != StateDegraded {
		t.Fatalf("state %q, ok=%v, want degraded", st.State, ok)
	}
	rec, err := s.st.readDegraded("poisoned")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rec.Reason, "circuit breaker") || !strings.Contains(rec.Reason, "K=2") {
		t.Fatalf("reason %q", rec.Reason)
	}
	if len(rec.Dumps) != 2 {
		t.Fatalf("%d dumps, want 2 (the tripping streak)", len(rec.Dumps))
	}
	// The breaker saved the tail: at most the two streak cells ran.
	s.mu.Lock()
	j := s.jobs["poisoned"]
	ran := 0
	for _, a := range j.attempts {
		if a > 0 {
			ran++
		}
	}
	s.mu.Unlock()
	if ran != 2 {
		t.Fatalf("%d cells ran, want 2", ran)
	}
	if got := s.m.jobsDegraded.Value(); got != 1 {
		t.Fatalf("jobs_degraded = %d, want 1", got)
	}
}

// TestServeFairScheduling is a white-box check of the dispatch order:
// tenants alternate round-robin regardless of backlog imbalance, and
// within a tenant jobs go FIFO by acceptance.
func TestServeFairScheduling(t *testing.T) {
	opts := Options{DataDir: t.TempDir(), Workers: 1}.withDefaults()
	s := &Server{opts: opts, st: store{dir: opts.DataDir}, m: NewMetrics(opts.Registry), jobs: map[string]*job{}}
	s.cond = sync.NewCond(&s.mu)

	add := func(name, tenant string, ncells int) {
		js := testSpec(name, experiment.Seeds(ncells)...)
		js.Tenant = tenant
		j, err := s.buildJob(js)
		if err != nil {
			t.Fatal(err)
		}
		s.seq++
		j.seq = s.seq
		s.jobs[name] = j
	}
	add("alice-1", "alice", 3)
	add("alice-2", "alice", 2)
	add("bob-1", "bob", 2)

	s.mu.Lock()
	var order []string
	for {
		ref, ok := s.nextCellLocked()
		if !ok {
			break
		}
		order = append(order, ref.j.spec.Name)
		ref.j.inflight-- // pretend the cell completed
	}
	s.mu.Unlock()

	want := []string{
		"alice-1", "bob-1", // round-robin across tenants…
		"alice-1", "bob-1",
		"alice-1",            // bob drained; alice-1 still FIFO-first…
		"alice-2", "alice-2", // …then alice-2
	}
	if !equalStrings(order, want) {
		t.Fatalf("dispatch order %v\nwant          %v", order, want)
	}
}

// TestServeRestartResumes is the tentpole's signature property, in
// process: interrupt a sweep, damage the leftovers the way a kill -9
// would (a missing journal cell, a torn temp file, no artifacts), and
// a cold restart over the same directory must finish the job with
// artifacts byte-identical to an uninterrupted reference run.
func TestServeRestartResumes(t *testing.T) {
	js := testSpec("resume", 1, 2, 3, 4)
	want := referenceArtifacts(t, js)

	dir := t.TempDir()
	a := newTestServer(t, Options{DataDir: dir, Workers: 1})
	if _, err := a.Submit(js); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "two cells journaled", func() bool {
		st, _ := a.Status("resume")
		return st.Cells.Done >= 2
	})
	a.Shutdown() // graceful: the in-flight cell reaches its checkpoint

	// Forge the harsher crash the drain avoided: one journal cell gone
	// (as if the process died before its rename), a torn temp file left
	// behind (as if it died mid-write), and no believable artifacts.
	journal := a.st.journalDir("resume")
	entries, err := os.ReadDir(journal)
	if err != nil || len(entries) < 2 {
		t.Fatalf("journal entries: %v, %d", err, len(entries))
	}
	if err := os.Remove(filepath.Join(journal, entries[0].Name())); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(journal, "."+entries[0].Name()+".tmp-42"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	os.Remove(filepath.Join(a.st.artifactsDir("resume"), "results.json"))

	b := newTestServer(t, Options{DataDir: dir, Workers: 1})
	st, ok := b.Wait("resume")
	if !ok || st.State != StateDone {
		t.Fatalf("restarted job state %q, ok=%v", st.State, ok)
	}
	if st.Cells.Resumed < 1 || st.Cells.Ran < 1 || st.Cells.Resumed+st.Cells.Ran != 4 {
		t.Fatalf("cells %+v: want a mix of resumed and re-run summing to 4", st.Cells)
	}
	got := readArtifacts(t, b.st, "resume")
	for _, f := range artifactFiles {
		if !bytes.Equal(got[f], want[f]) {
			t.Errorf("%s differs after kill/restart", f)
		}
	}
}

// TestServeHTTP drives the full HTTP surface end to end: health and
// readiness, submission (including the 400/429/idempotent/conflict
// paths with Retry-After), status polling, and artifact download.
func TestServeHTTP(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2, QueueCap: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, string(body)
	}
	post := func(path, body string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, string(data)
	}

	if resp, body := get("/healthz"); resp.StatusCode != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz: %d %q", resp.StatusCode, body)
	}
	if resp, _ := get("/readyz"); resp.StatusCode != 200 {
		t.Fatalf("/readyz: %d", resp.StatusCode)
	}
	if resp, _ := post("/jobs", `{"nope`); resp.StatusCode != 400 {
		t.Fatalf("bad JSON: %d", resp.StatusCode)
	}
	if resp, _ := post("/jobs", `{"name": "h", "scenario": {"name": "h"}, "mystery": 1}`); resp.StatusCode != 400 {
		t.Fatalf("unknown field: %d", resp.StatusCode)
	}

	spec, err := json.Marshal(testSpec("http-job", 1))
	if err != nil {
		t.Fatal(err)
	}
	resp, body := post("/jobs", string(spec))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}

	// Overflow the queue: 429 with a Retry-After the client can obey.
	big, err := json.Marshal(testSpec("http-big", experiment.Seeds(20)...))
	if err != nil {
		t.Fatal(err)
	}
	resp, _ = post("/jobs", string(big))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload: %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After %q", ra)
	}

	if st, _ := s.Wait("http-job"); st.State != StateDone {
		t.Fatalf("state %q", st.State)
	}
	resp, body = get("/jobs/http-job")
	var status JobStatus
	if resp.StatusCode != 200 || json.Unmarshal([]byte(body), &status) != nil || status.State != StateDone {
		t.Fatalf("status: %d %s", resp.StatusCode, body)
	}
	resp, body = get("/jobs")
	var list []JobStatus
	if resp.StatusCode != 200 || json.Unmarshal([]byte(body), &list) != nil || len(list) != 1 {
		t.Fatalf("list: %d %s", resp.StatusCode, body)
	}

	resp, body = get("/jobs/http-job/artifacts/results.csv")
	disk, err := os.ReadFile(filepath.Join(s.st.artifactsDir("http-job"), "results.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || body != string(disk) {
		t.Fatalf("artifact download: %d, %d bytes vs %d on disk", resp.StatusCode, len(body), len(disk))
	}
	if resp, _ := get("/jobs/http-job/artifacts/../spec.json"); resp.StatusCode == 200 {
		t.Fatal("path traversal served a file")
	}
	if resp, _ := get("/jobs/ghost"); resp.StatusCode != 404 {
		t.Fatalf("unknown job: %d", resp.StatusCode)
	}
	if resp, body := get("/metrics"); resp.StatusCode != 200 || !strings.Contains(body, "jobs_submitted") {
		t.Fatalf("/metrics: %d %s", resp.StatusCode, body)
	}

	// Drain: readiness flips and submissions bounce with 503.
	s.Shutdown()
	if resp, _ := get("/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining: %d", resp.StatusCode)
	}
	if resp, _ := post("/jobs", string(spec)); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d", resp.StatusCode)
	}
}
