// Package serve is the sim-as-a-service daemon core: it accepts fully
// serialized experiment specs over HTTP (or in-process), fans each job
// into (scenario, seed) cells on a worker pool with per-tenant fair
// scheduling, and survives anything short of losing the data directory.
//
// The robustness stance, in one paragraph: disk is the source of truth
// (spec before ack, journal before "done", artifacts before terminal —
// all through atomicio), decisions are deterministic (retry backoff is
// counter-RNG jitter keyed by cell identity; the breaker counts
// consecutive panics; neither reads a clock), and overload is refused
// at the door (bounded outstanding-cell queue → 429 + Retry-After,
// /readyz flips) rather than absorbed until collapse. Kill -9 the
// daemon mid-sweep, restart it, and every artifact comes out
// byte-for-byte identical — that property is pinned by tests and the
// CI smoke script, not just asserted here.
package serve

//detlint:allow-package wallclock -- the daemon's domain IS host time: backoff sleeps, watchdog budgets, and status ETAs all run on the wall clock, while every scheduling *decision* (which delay, whether to retry, when to trip) is a pure function of counter-RNG and counts. No wall-clock value reaches simulation state; the sim side stays pinned by the determinism goldens.

import (
	"runtime"
	"time"

	"dcfguard/internal/obs"
)

// Options configures a Server. The zero value serves from "serve-data"
// in the current directory with library defaults.
type Options struct {
	// DataDir roots the on-disk job store ("" = "serve-data").
	DataDir string
	// Workers caps the cell worker pool (0 = GOMAXPROCS).
	Workers int
	// QueueCap bounds total outstanding cells across all jobs; beyond
	// it, submissions are refused with 429 + Retry-After (0 = 1024).
	QueueCap int
	// Retry is the per-cell retry policy; the zero value means
	// DefaultRetryPolicy.
	Retry RetryPolicy
	// BreakerK is the per-job consecutive-panic trip threshold
	// (0 = 3, negative disables the breaker).
	BreakerK int
	// SeedTimeout bounds each cell's wall time via RunGuarded's
	// watchdog (0 = no watchdog).
	SeedTimeout time.Duration
	// Retain, when positive, bounds the terminal jobs kept on disk: on
	// startup and whenever a job turns terminal, only the Retain most
	// recently finished terminal jobs survive; older ones are deleted
	// (directory and all). Live jobs are never touched. 0 keeps
	// everything.
	Retain int
	// Registry receives the daemon's "serve"-scoped counters
	// (nil = a private registry; expose it to share /metrics).
	Registry *obs.Registry
	// Timer schedules a function after a delay, returning a cancel
	// func. Nil means time.AfterFunc; tests inject a manual clock so
	// retry scheduling is exercised without real sleeps.
	Timer func(d time.Duration, f func()) (stop func())
}

func (o Options) withDefaults() Options {
	if o.DataDir == "" {
		o.DataDir = "serve-data"
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 1024
	}
	if o.Retry == (RetryPolicy{}) {
		o.Retry = DefaultRetryPolicy()
	}
	switch {
	case o.BreakerK == 0:
		o.BreakerK = 3
	case o.BreakerK < 0:
		o.BreakerK = 0 // Breaker treats K=0 as disabled.
	}
	if o.Registry == nil {
		o.Registry = obs.NewRegistry()
	}
	if o.Timer == nil {
		o.Timer = func(d time.Duration, f func()) func() {
			t := time.AfterFunc(d, f)
			return func() { t.Stop() }
		}
	}
	return o
}

// metrics are the daemon's own counters, registered under the "serve"
// scope of the observability registry and exported via /metrics.
type metrics struct {
	jobsSubmitted *obs.Counter
	jobsDone      *obs.Counter
	jobsFailed    *obs.Counter
	jobsDegraded  *obs.Counter
	cellsRun      *obs.Counter
	cellsResumed  *obs.Counter
	cellsRetried  *obs.Counter
	cellsFailed   *obs.Counter
	rejected      *obs.Counter
	jobsRetired   *obs.Counter
}

// NewMetrics resolves every handle once, at attach time; the hot paths
// only touch the stored atomics.
func NewMetrics(reg *obs.Registry) metrics {
	return metrics{
		jobsSubmitted: reg.Counter("serve", obs.NoNode, "jobs_submitted"),
		jobsDone:      reg.Counter("serve", obs.NoNode, "jobs_done"),
		jobsFailed:    reg.Counter("serve", obs.NoNode, "jobs_failed"),
		jobsDegraded:  reg.Counter("serve", obs.NoNode, "jobs_degraded"),
		cellsRun:      reg.Counter("serve", obs.NoNode, "cells_run"),
		cellsResumed:  reg.Counter("serve", obs.NoNode, "cells_resumed"),
		cellsRetried:  reg.Counter("serve", obs.NoNode, "cells_retried"),
		cellsFailed:   reg.Counter("serve", obs.NoNode, "cells_failed"),
		rejected:      reg.Counter("serve", obs.NoNode, "admission_rejected"),
		jobsRetired:   reg.Counter("serve", obs.NoNode, "jobs_retired"),
	}
}
