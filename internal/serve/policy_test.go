package serve

import (
	"testing"
	"time"
)

// TestRetryDelayDeterministic pins the property the whole retry design
// rides on: the backoff schedule is a pure function of (cell identity,
// retry number) — recomputable by a test, a post-mortem, or a second
// daemon, with no clock or shared state involved.
func TestRetryDelayDeterministic(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second}
	key := CellKey("job-a", "scenario-x", 7)

	for retry := 1; retry <= 4; retry++ {
		d1 := p.Delay(key, retry)
		d2 := p.Delay(key, retry)
		if d1 != d2 {
			t.Fatalf("retry %d: Delay not deterministic: %v vs %v", retry, d1, d2)
		}
		ceiling := p.BaseDelay << uint(retry-1)
		if ceiling > p.MaxDelay {
			ceiling = p.MaxDelay
		}
		if d1 < 0 || d1 > ceiling {
			t.Fatalf("retry %d: delay %v outside (0, %v]", retry, d1, ceiling)
		}
	}

	// Full jitter: distinct cells get distinct schedules.
	other := CellKey("job-a", "scenario-x", 8)
	if key == other {
		t.Fatal("CellKey collides across seeds")
	}
	if p.Delay(key, 1) == p.Delay(other, 1) {
		t.Fatal("distinct cells drew identical jitter (astronomically unlikely)")
	}

	// Degenerate inputs.
	if d := p.Delay(key, 0); d != 0 {
		t.Fatalf("retry 0 delay = %v, want 0", d)
	}
	if d := (RetryPolicy{MaxAttempts: 3}).Delay(key, 1); d != 0 {
		t.Fatalf("zero BaseDelay delay = %v, want 0", d)
	}
}

// TestRetryDelayCap: the exponential ceiling clamps at MaxDelay, and
// huge retry counts do not overflow into negative durations.
func TestRetryDelayCap(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 100, BaseDelay: time.Second, MaxDelay: 4 * time.Second}
	key := CellKey("job-b", "scenario-y", 1)
	for retry := 1; retry <= 70; retry++ {
		d := p.Delay(key, retry)
		if d < 0 || d > p.MaxDelay {
			t.Fatalf("retry %d: delay %v outside [0, %v]", retry, d, p.MaxDelay)
		}
	}
	// No cap: overflowing shifts fall back to BaseDelay rather than
	// going negative.
	uncapped := RetryPolicy{BaseDelay: time.Second}
	for retry := 60; retry <= 70; retry++ {
		if d := uncapped.Delay(key, retry); d < 0 || d > time.Second {
			t.Fatalf("uncapped retry %d: delay %v", retry, d)
		}
	}
}

// TestRetryAttempts: the budget floor is one attempt.
func TestRetryAttempts(t *testing.T) {
	for _, tc := range []struct{ max, want int }{{-1, 1}, {0, 1}, {1, 1}, {3, 3}} {
		if got := (RetryPolicy{MaxAttempts: tc.max}).Attempts(); got != tc.want {
			t.Errorf("MaxAttempts %d: Attempts() = %d, want %d", tc.max, got, tc.want)
		}
	}
}

// TestBreaker: K consecutive panics trip it, any intervening success
// (or non-panic failure, via RecordOK) resets the streak, and a tripped
// breaker stays tripped.
func TestBreaker(t *testing.T) {
	var b Breaker // zero value: disabled
	for i := 0; i < 100; i++ {
		if b.RecordPanic() {
			t.Fatal("disabled breaker tripped")
		}
	}

	b = Breaker{K: 3}
	if b.RecordPanic() || b.RecordPanic() {
		t.Fatal("tripped before K")
	}
	b.RecordOK() // streak broken
	if b.RecordPanic() || b.RecordPanic() {
		t.Fatal("RecordOK did not reset the streak")
	}
	if !b.RecordPanic() {
		t.Fatal("did not trip at K consecutive panics")
	}
	if !b.Tripped() {
		t.Fatal("Tripped() disagrees with RecordPanic")
	}
	b.RecordOK()
	if !b.Tripped() {
		t.Fatal("breaker untripped; degraded jobs must stay parked")
	}
}
