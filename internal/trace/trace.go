// Package trace records frame-level timelines of a simulation run and
// renders them for humans (aligned text) and tools (pcap export via
// Writer). A Recorder plugs into medium.Medium's Tap; it costs nothing
// when not attached.
package trace

import (
	"fmt"
	"io"
	"strings"

	"dcfguard/internal/frame"
	"dcfguard/internal/sim"
)

// Event is one transmission on the channel.
type Event struct {
	Start, End sim.Time
	Src        frame.NodeID
	Frame      frame.Frame
	// Outcome is filled by the recorder when the addressee reports
	// reception (OutcomeDelivered) or the frame's end passes without a
	// report (OutcomeLost). Broadcast/overheard outcomes are not
	// tracked — DCF control traffic is unicast.
	Outcome Outcome
}

// Outcome classifies what happened to a transmission at its addressee.
type Outcome int

const (
	// OutcomePending is a transmission still on the air.
	OutcomePending Outcome = iota
	// OutcomeDelivered reached its addressee intact.
	OutcomeDelivered
	// OutcomeLost was corrupted or below the addressee's threshold.
	OutcomeLost
)

// String returns a single-character marker used by the text renderer.
func (o Outcome) String() string {
	switch o {
	case OutcomeDelivered:
		return "ok"
	case OutcomeLost:
		return "LOST"
	default:
		return "?"
	}
}

// Recorder accumulates transmissions. Attach Tap to the medium's Tap and
// MarkDelivered to a delivery observation point (e.g. a stats collector
// or mac callback); call Finalize before rendering.
type Recorder struct {
	events []Event
	// cap bounds memory; 0 means unlimited.
	cap int
}

// New returns a recorder retaining at most capEvents transmissions
// (0 = unlimited).
func New(capEvents int) *Recorder {
	return &Recorder{cap: capEvents}
}

// Tap records a transmission; wire it to medium.Medium.Tap.
func (r *Recorder) Tap(src frame.NodeID, f frame.Frame, start, end sim.Time) {
	if r.cap > 0 && len(r.events) >= r.cap {
		return
	}
	r.events = append(r.events, Event{Start: start, End: end, Src: src, Frame: f})
}

// MarkDelivered marks the most recent matching pending transmission as
// delivered. Call it when the addressee decodes the frame.
func (r *Recorder) MarkDelivered(f frame.Frame, end sim.Time) {
	for i := len(r.events) - 1; i >= 0; i-- {
		ev := &r.events[i]
		if ev.End == end && ev.Frame == f && ev.Outcome == OutcomePending {
			ev.Outcome = OutcomeDelivered
			return
		}
	}
}

// Finalize marks every still-pending transmission whose end has passed
// as lost.
func (r *Recorder) Finalize(now sim.Time) {
	for i := range r.events {
		if r.events[i].Outcome == OutcomePending && r.events[i].End <= now {
			r.events[i].Outcome = OutcomeLost
		}
	}
}

// Events returns the recorded transmissions in start order.
func (r *Recorder) Events() []Event {
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Len returns the number of recorded transmissions.
func (r *Recorder) Len() int { return len(r.events) }

// WriteText renders the timeline as one line per transmission:
//
//	12.345678s +0.000276s  3 -> 0  RTS 3->0 seq=17 attempt=2  ok
func (r *Recorder) WriteText(w io.Writer) error {
	for _, ev := range r.events {
		_, err := fmt.Fprintf(w, "%s +%s  %2d -> %-2d  %-40s %s\n",
			ev.Start, sim.Time(ev.End-ev.Start), ev.Src, ev.Frame.Dst,
			ev.Frame.String(), ev.Outcome)
		if err != nil {
			return err
		}
	}
	return nil
}

// Text renders the timeline to a string.
func (r *Recorder) Text() string {
	var b strings.Builder
	// strings.Builder's Write never fails.
	_ = r.WriteText(&b)
	return b.String()
}

// ExchangeSummary counts frame types, a quick integrity view of a trace.
type ExchangeSummary struct {
	RTS, CTS, Data, Ack int
	Delivered, Lost     int
}

// Summarize tallies the recorded transmissions.
func (r *Recorder) Summarize() ExchangeSummary {
	var s ExchangeSummary
	for _, ev := range r.events {
		switch ev.Frame.Type {
		case frame.RTS:
			s.RTS++
		case frame.CTS:
			s.CTS++
		case frame.Data:
			s.Data++
		case frame.Ack:
			s.Ack++
		}
		switch ev.Outcome {
		case OutcomeDelivered:
			s.Delivered++
		case OutcomeLost:
			s.Lost++
		}
	}
	return s
}
