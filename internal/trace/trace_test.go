package trace

import (
	"bytes"
	"strings"
	"testing"

	"dcfguard/internal/frame"
	"dcfguard/internal/mac"
	"dcfguard/internal/medium"
	"dcfguard/internal/phys"
	"dcfguard/internal/rng"
	"dcfguard/internal/sim"
)

func rts(src, dst frame.NodeID, seq uint32) frame.Frame {
	return frame.Frame{Type: frame.RTS, Src: src, Dst: dst, Seq: seq, Attempt: 1, AssignedBackoff: -1}
}

func TestRecorderTapAndOutcomes(t *testing.T) {
	r := New(0)
	f := rts(1, 2, 7)
	r.Tap(1, f, 0, 276*sim.Microsecond)
	g := rts(3, 2, 9)
	r.Tap(3, g, sim.Millisecond, sim.Millisecond+276*sim.Microsecond)

	r.MarkDelivered(f, 276*sim.Microsecond)
	r.Finalize(sim.Second)

	ev := r.Events()
	if len(ev) != 2 {
		t.Fatalf("events = %d", len(ev))
	}
	if ev[0].Outcome != OutcomeDelivered {
		t.Fatalf("first outcome = %v, want delivered", ev[0].Outcome)
	}
	if ev[1].Outcome != OutcomeLost {
		t.Fatalf("second outcome = %v, want lost", ev[1].Outcome)
	}
}

func TestRecorderFinalizeSkipsInFlight(t *testing.T) {
	r := New(0)
	f := rts(1, 2, 7)
	r.Tap(1, f, 0, sim.Millisecond)
	r.Finalize(500 * sim.Microsecond) // frame still on the air
	if got := r.Events()[0].Outcome; got != OutcomePending {
		t.Fatalf("in-flight frame outcome = %v, want pending", got)
	}
}

func TestRecorderCap(t *testing.T) {
	r := New(2)
	for i := 0; i < 5; i++ {
		r.Tap(1, rts(1, 2, uint32(i)), sim.Time(i)*sim.Millisecond, sim.Time(i)*sim.Millisecond+1)
	}
	if r.Len() != 2 {
		t.Fatalf("capped recorder holds %d events, want 2", r.Len())
	}
}

func TestTextRendering(t *testing.T) {
	r := New(0)
	f := rts(1, 2, 7)
	r.Tap(1, f, 0, 276*sim.Microsecond)
	r.MarkDelivered(f, 276*sim.Microsecond)
	out := r.Text()
	for _, want := range []string{"RTS 1->2", "seq=7", "ok"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text %q missing %q", out, want)
		}
	}
}

func TestSummarize(t *testing.T) {
	r := New(0)
	frames := []frame.Frame{
		rts(1, 2, 1),
		{Type: frame.CTS, Src: 2, Dst: 1, Seq: 1, AssignedBackoff: 5},
		{Type: frame.Data, Src: 1, Dst: 2, Seq: 1, PayloadBytes: 512},
		{Type: frame.Ack, Src: 2, Dst: 1, Seq: 1, AssignedBackoff: 5},
	}
	for i, f := range frames {
		end := sim.Time(i+1) * sim.Millisecond
		r.Tap(f.Src, f, sim.Time(i)*sim.Millisecond, end)
		r.MarkDelivered(f, end)
	}
	r.Finalize(sim.Second)
	s := r.Summarize()
	if s.RTS != 1 || s.CTS != 1 || s.Data != 1 || s.Ack != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Delivered != 4 || s.Lost != 0 {
		t.Fatalf("summary outcomes = %+v", s)
	}
}

func TestOutcomeStrings(t *testing.T) {
	if OutcomeDelivered.String() != "ok" || OutcomeLost.String() != "LOST" ||
		OutcomePending.String() != "?" {
		t.Fatal("outcome strings wrong")
	}
}

type failingWriter struct{ n int }

func (w *failingWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	if w.n > 30 {
		return 0, errWriteFailed
	}
	return len(p), nil
}

var errWriteFailed = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "write failed" }

func TestWriteTextPropagatesErrors(t *testing.T) {
	r := New(0)
	r.Tap(1, rts(1, 2, 1), 0, sim.Millisecond)
	r.Tap(1, rts(1, 2, 2), 2*sim.Millisecond, 3*sim.Millisecond)
	if err := r.WriteText(&failingWriter{}); err == nil {
		t.Fatal("write error swallowed")
	}
}

func TestWritePcapPropagatesErrors(t *testing.T) {
	r := New(0)
	r.Tap(1, rts(1, 2, 1), 0, sim.Millisecond)
	if err := r.WritePcap(&failingWriter{}); err == nil {
		t.Fatal("pcap write error swallowed")
	}
}

func TestPcapRoundTrip(t *testing.T) {
	r := New(0)
	frames := []frame.Frame{
		rts(1, 2, 1),
		{Type: frame.CTS, Src: 2, Dst: 1, Seq: 1, AssignedBackoff: 12},
		{Type: frame.Data, Src: 1, Dst: 2, Seq: 1, PayloadBytes: 512},
	}
	for i, f := range frames {
		start := sim.Time(i) * 3 * sim.Millisecond
		r.Tap(f.Src, f, start, start+sim.Millisecond)
	}
	var buf bytes.Buffer
	if err := r.WritePcap(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPcap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(frames) {
		t.Fatalf("read %d frames, want %d", len(got), len(frames))
	}
	for i, ev := range got {
		if ev.Frame != frames[i] {
			t.Fatalf("frame %d changed: %+v vs %+v", i, ev.Frame, frames[i])
		}
		if want := sim.Time(i) * 3 * sim.Millisecond; ev.Start != want {
			t.Fatalf("frame %d start %v, want %v", i, ev.Start, want)
		}
	}
}

func TestPcapHeaderFields(t *testing.T) {
	r := New(0)
	var buf bytes.Buffer
	if err := r.WritePcap(&buf); err != nil {
		t.Fatal(err)
	}
	hdr := buf.Bytes()
	if len(hdr) != 24 {
		t.Fatalf("empty capture length %d, want 24", len(hdr))
	}
	if hdr[0] != 0xd4 || hdr[1] != 0xc3 || hdr[2] != 0xb2 || hdr[3] != 0xa1 {
		t.Fatalf("magic bytes %x", hdr[:4])
	}
}

func TestReadPcapRejectsGarbage(t *testing.T) {
	if _, err := ReadPcap(bytes.NewReader([]byte("not a pcap file at all!!"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadPcap(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestRecorderOnLiveSimulation(t *testing.T) {
	// Attach the recorder to a real exchange and check the timeline:
	// RTS, CTS, DATA, ACK all delivered.
	var sched sim.Scheduler
	model := phys.DefaultShadowing()
	model.SigmaDB = 0
	med := medium.New(&sched, medium.Config{Model: model}, rng.New(1))
	rec := New(0)
	med.Tap = rec.Tap

	radio := phys.CalibratedRadio(model, 24.5, 250, 0.5, 550, 0.5, 2_000_000)
	mkNode := func(id frame.NodeID, x float64) *mac.Node {
		n := mac.NewNode(id, mac.DefaultParams(), &sched, med,
			mac.NewStandardPolicy(rng.New(uint64(id)+10)), nil, mac.Callbacks{})
		med.Attach(id, phys.Point{X: x}, radio, n)
		return n
	}
	sender := mkNode(1, 0)
	mkNode(2, 100)

	sender.Enqueue(2, 512)
	sched.Run(sim.Second)
	rec.Finalize(sched.Now())

	s := rec.Summarize()
	if s.RTS != 1 || s.CTS != 1 || s.Data != 1 || s.Ack != 1 {
		t.Fatalf("live trace summary = %+v\n%s", s, rec.Text())
	}
	// Events are in start order and non-overlapping.
	ev := rec.Events()
	for i := 1; i < len(ev); i++ {
		if ev[i].Start < ev[i-1].End {
			t.Fatalf("overlapping frames in trace:\n%s", rec.Text())
		}
	}
}
