package trace

import (
	"encoding/binary"
	"fmt"
	"io"

	"dcfguard/internal/sim"

	"dcfguard/internal/frame"
)

// pcap constants: classic (non-ng) pcap with microsecond timestamps.
const (
	pcapMagic   = 0xa1b2c3d4
	pcapMajor   = 2
	pcapMinor   = 4
	pcapSnapLen = 65535
	// LINKTYPE_USER0: private link type; packets carry the frame codec
	// bytes from internal/frame (see frame.Marshal).
	pcapLinkType = 147
)

// WritePcap exports the recorded transmissions as a pcap capture whose
// packet bodies are the internal/frame codec encoding. The capture can
// be inspected with tcpdump/Wireshark (as raw USER0 frames) or decoded
// programmatically with frame.Unmarshal.
func (r *Recorder) WritePcap(w io.Writer) error {
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:], pcapMagic)
	binary.LittleEndian.PutUint16(hdr[4:], pcapMajor)
	binary.LittleEndian.PutUint16(hdr[6:], pcapMinor)
	// Bytes 8..16: thiszone and sigfigs, both zero.
	binary.LittleEndian.PutUint32(hdr[16:], pcapSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:], pcapLinkType)
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("trace: pcap header: %w", err)
	}

	rec := make([]byte, 16)
	for i, ev := range r.events {
		// Lost transmissions carry the codec's corruption bit so the
		// capture preserves outcomes, not just headers.
		f := ev.Frame
		f.Corrupted = ev.Outcome == OutcomeLost
		body := frame.Marshal(f)
		usec := int64(ev.Start) / int64(sim.Microsecond)
		binary.LittleEndian.PutUint32(rec[0:], uint32(usec/1e6))
		binary.LittleEndian.PutUint32(rec[4:], uint32(usec%1e6))
		binary.LittleEndian.PutUint32(rec[8:], uint32(len(body)))
		binary.LittleEndian.PutUint32(rec[12:], uint32(len(body)))
		if _, err := w.Write(rec); err != nil {
			return fmt.Errorf("trace: pcap record %d: %w", i, err)
		}
		if _, err := w.Write(body); err != nil {
			return fmt.Errorf("trace: pcap record %d body: %w", i, err)
		}
	}
	return nil
}

// ReadPcap parses a capture written by WritePcap back into events
// (timestamps at microsecond resolution). Lost transmissions are
// recognised by the codec's corruption bit; delivered and pending ones
// are indistinguishable in a capture and come back as OutcomePending.
func ReadPcap(rd io.Reader) ([]Event, error) {
	hdr := make([]byte, 24)
	if _, err := io.ReadFull(rd, hdr); err != nil {
		return nil, fmt.Errorf("trace: pcap header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != pcapMagic {
		return nil, fmt.Errorf("trace: bad pcap magic %#x", binary.LittleEndian.Uint32(hdr[0:]))
	}
	if lt := binary.LittleEndian.Uint32(hdr[20:]); lt != pcapLinkType {
		return nil, fmt.Errorf("trace: unexpected link type %d", lt)
	}
	var events []Event
	rec := make([]byte, 16)
	for {
		if _, err := io.ReadFull(rd, rec); err != nil {
			if err == io.EOF {
				return events, nil
			}
			return nil, fmt.Errorf("trace: pcap record header: %w", err)
		}
		n := binary.LittleEndian.Uint32(rec[8:])
		if n > pcapSnapLen {
			return nil, fmt.Errorf("trace: pcap record length %d exceeds snaplen", n)
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(rd, body); err != nil {
			return nil, fmt.Errorf("trace: pcap record body: %w", err)
		}
		f, err := frame.Unmarshal(body)
		if err != nil {
			return nil, fmt.Errorf("trace: pcap frame: %w", err)
		}
		sec := binary.LittleEndian.Uint32(rec[0:])
		usec := binary.LittleEndian.Uint32(rec[4:])
		start := sim.Time(sec)*sim.Second + sim.Time(usec)*sim.Microsecond
		outcome := OutcomePending
		if f.Corrupted {
			outcome = OutcomeLost
			f.Corrupted = false
		}
		events = append(events, Event{Start: start, Src: f.Src, Frame: f, Outcome: outcome})
	}
}
