package trace

import (
	"dcfguard/internal/frame"
	"dcfguard/internal/sim"
)

// tapOp is one buffered Recorder operation: a transmission tap or a
// delivery mark, replayed at the barrier in serial order.
type tapOp struct {
	src        frame.NodeID
	f          frame.Frame
	start, end sim.Time
	deliver    bool
}

// ShardedTap adapts a Recorder to a sharded run. The medium's Tap and
// DeliveryTap hooks fire on shard goroutines (the transmit event and
// the addressee's completion event respectively); a shared Recorder
// would race, and even a locked one would record an
// interleaving-dependent order. ShardedTap buffers each hook call into
// a sim.Fanin tagged with the firing event, and Flush — called by the
// coordinator at every window barrier and once after the run — replays
// the calls into the Recorder in the exact order a serial run makes
// them, so the recorded timeline (and its capacity cutoff) is
// bit-identical to serial.
type ShardedTap struct {
	rec *Recorder
	fan *sim.Fanin[tapOp]
}

// NewShardedTap wraps rec for the given shard schedulers (indexed like
// the medium's shard assignment).
func NewShardedTap(rec *Recorder, scheds []*sim.Scheduler) *ShardedTap {
	t := &ShardedTap{rec: rec}
	t.fan = sim.NewFanin(scheds, func(op tapOp) {
		if op.deliver {
			rec.MarkDelivered(op.f, op.end)
		} else {
			rec.Tap(op.src, op.f, op.start, op.end)
		}
	})
	return t
}

// Tap buffers one transmission from the given shard; wire it to
// medium.Medium.Tap with the transmitter's shard index. Nil-safe.
func (t *ShardedTap) Tap(shard int, src frame.NodeID, f frame.Frame, start, end sim.Time) {
	if t == nil {
		return
	}
	t.fan.Emit(shard, tapOp{src: src, f: f, start: start, end: end})
}

// MarkDelivered buffers one delivery mark from the given shard; wire it
// to medium.Medium.DeliveryTap with the addressee's shard index.
// Nil-safe.
func (t *ShardedTap) MarkDelivered(shard int, f frame.Frame, end sim.Time) {
	if t == nil {
		return
	}
	t.fan.Emit(shard, tapOp{f: f, end: end, deliver: true})
}

// Flush replays all buffered operations into the Recorder.
// Coordinator-only (window barrier or post-run); nil-safe.
func (t *ShardedTap) Flush() {
	if t == nil {
		return
	}
	t.fan.Flush()
}
