package trace

import (
	"bytes"
	"testing"

	"dcfguard/internal/frame"
	"dcfguard/internal/sim"
)

// FuzzReadPcap ensures the pcap parser never panics or over-allocates
// on arbitrary input, and that valid captures round-trip.
func FuzzReadPcap(f *testing.F) {
	// Seed with a valid two-frame capture.
	r := New(0)
	r.Tap(1, frame.Frame{Type: frame.RTS, Src: 1, Dst: 2, Seq: 1, Attempt: 1},
		0, 276*sim.Microsecond)
	r.Tap(2, frame.Frame{Type: frame.CTS, Src: 2, Dst: 1, Seq: 1, AssignedBackoff: 9},
		sim.Millisecond, sim.Millisecond+256*sim.Microsecond)
	var buf bytes.Buffer
	if err := r.WritePcap(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(buf.Bytes()[:25]) // truncated record header

	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := ReadPcap(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted captures re-serialise to a parseable capture with
		// the same frames.
		rec := New(0)
		for _, ev := range events {
			rec.Tap(ev.Src, ev.Frame, ev.Start, ev.Start+sim.Microsecond)
		}
		var out bytes.Buffer
		if err := rec.WritePcap(&out); err != nil {
			t.Fatalf("re-write failed: %v", err)
		}
		again, err := ReadPcap(&out)
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		if len(again) != len(events) {
			t.Fatalf("round trip changed frame count: %d vs %d", len(again), len(events))
		}
	})
}
