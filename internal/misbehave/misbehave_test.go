package misbehave

import (
	"testing"
	"testing/quick"

	"dcfguard/internal/frame"
	"dcfguard/internal/mac"
	"dcfguard/internal/rng"
)

// constPolicy always prescribes the same backoff.
type constPolicy struct {
	value    int
	assigned []int
}

func (p *constPolicy) InitialBackoff(frame.NodeID, int) int    { return p.value }
func (p *constPolicy) RetryBackoff(frame.NodeID, int, int) int { return p.value }
func (p *constPolicy) OnAssigned(_ frame.NodeID, _ uint32, b int, _ bool) {
	p.assigned = append(p.assigned, b)
}
func (p *constPolicy) ReportAttempt(actual int) int { return actual }

func TestPartialShaving(t *testing.T) {
	cases := []struct {
		pm, in, want int
	}{
		{0, 20, 20},
		{25, 20, 15},
		{50, 20, 10},
		{50, 9, 4}, // floor
		{80, 20, 4},
		{100, 20, 0},
		{100, 0, 0},
	}
	for _, c := range cases {
		p := NewPartial(&constPolicy{value: c.in}, c.pm)
		if got := p.InitialBackoff(1, 31); got != c.want {
			t.Errorf("PM=%d initial(%d) = %d, want %d", c.pm, c.in, got, c.want)
		}
		if got := p.RetryBackoff(1, 2, 63); got != c.want {
			t.Errorf("PM=%d retry(%d) = %d, want %d", c.pm, c.in, got, c.want)
		}
	}
}

func TestPartialPM(t *testing.T) {
	if got := NewPartial(&constPolicy{}, 40).PM(); got != 40 {
		t.Fatalf("PM() = %d, want 40", got)
	}
}

func TestPartialForwardsAssignments(t *testing.T) {
	inner := &constPolicy{}
	p := NewPartial(inner, 50)
	p.OnAssigned(2, 1, 13, true)
	if len(inner.assigned) != 1 || inner.assigned[0] != 13 {
		t.Fatalf("inner assignments = %v, want [13]", inner.assigned)
	}
	if got := p.ReportAttempt(3); got != 3 {
		t.Fatalf("ReportAttempt(3) = %d, want 3", got)
	}
}

func TestPartialValidation(t *testing.T) {
	for _, pm := range []int{-1, 101} {
		pm := pm
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PM=%d did not panic", pm)
				}
			}()
			NewPartial(&constPolicy{}, pm)
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("nil inner did not panic")
		}
	}()
	NewPartial(nil, 10)
}

func TestQuickPartialNeverExceedsInner(t *testing.T) {
	f := func(pm uint8, v uint16) bool {
		m := int(pm) % 101
		inner := int(v) % 1024
		p := NewPartial(&constPolicy{value: inner}, m)
		got := p.InitialBackoff(1, 31)
		return got >= 0 && got <= inner
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuarterWindowRange(t *testing.T) {
	p := NewQuarterWindow(rng.New(1))
	for i := 0; i < 2000; i++ {
		if got := p.InitialBackoff(1, 31); got < 0 || got > 7 {
			t.Fatalf("InitialBackoff(cw=31) = %d, want [0, 7]", got)
		}
		if got := p.RetryBackoff(1, 2, 63); got < 0 || got > 15 {
			t.Fatalf("RetryBackoff(cw=63) = %d, want [0, 15]", got)
		}
	}
}

func TestQuarterWindowMeanBelowStandard(t *testing.T) {
	q := NewQuarterWindow(rng.New(1))
	s := mac.NewStandardPolicy(rng.New(2))
	const n = 20000
	var qs, ss int
	for i := 0; i < n; i++ {
		qs += q.InitialBackoff(1, 31)
		ss += s.InitialBackoff(1, 31)
	}
	if !(float64(qs) < 0.4*float64(ss)) {
		t.Fatalf("quarter-window mean %v not well below standard mean %v",
			float64(qs)/n, float64(ss)/n)
	}
}

func TestNoDoublingIgnoresCW(t *testing.T) {
	p := NewNoDoubling(rng.New(1), 31)
	for i := 0; i < 2000; i++ {
		if got := p.RetryBackoff(1, 5, 1023); got < 0 || got > 31 {
			t.Fatalf("RetryBackoff(cw=1023) = %d, want [0, 31]", got)
		}
	}
}

func TestNoDoublingValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CWMin=0 did not panic")
		}
	}()
	NewNoDoubling(rng.New(1), 0)
}

func TestAttemptLiar(t *testing.T) {
	inner := &constPolicy{value: 7}
	p := NewAttemptLiar(inner)
	for _, actual := range []int{1, 2, 5, 7} {
		if got := p.ReportAttempt(actual); got != 1 {
			t.Errorf("ReportAttempt(%d) = %d, want 1", actual, got)
		}
	}
	if got := p.InitialBackoff(1, 31); got != 7 {
		t.Errorf("InitialBackoff forwarded %d, want 7", got)
	}
	if got := p.RetryBackoff(1, 2, 63); got != 7 {
		t.Errorf("RetryBackoff forwarded %d, want 7", got)
	}
	p.OnAssigned(2, 1, 9, false)
	if len(inner.assigned) != 1 || inner.assigned[0] != 9 {
		t.Errorf("assignments not forwarded: %v", inner.assigned)
	}
}

func TestSelfContainedPoliciesNoOps(t *testing.T) {
	q := NewQuarterWindow(rng.New(1))
	q.OnAssigned(2, 1, 9, true) // must be ignored
	if got := q.ReportAttempt(4); got != 4 {
		t.Fatalf("quarter ReportAttempt = %d", got)
	}
	nd := NewNoDoubling(rng.New(2), 31)
	nd.OnAssigned(2, 1, 9, false)
	if got := nd.ReportAttempt(6); got != 6 {
		t.Fatalf("no-doubling ReportAttempt = %d", got)
	}
}

func TestAttemptLiarNilInnerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil inner did not panic")
		}
	}()
	NewAttemptLiar(nil)
}

func TestPoliciesImplementInterface(t *testing.T) {
	// Compile-time checks exist in the package; this exercises the
	// interface dynamically so coverage tools see it.
	policies := []mac.BackoffPolicy{
		NewPartial(&constPolicy{value: 4}, 50),
		NewQuarterWindow(rng.New(1)),
		NewNoDoubling(rng.New(2), 31),
		NewAttemptLiar(&constPolicy{value: 4}),
	}
	for i, p := range policies {
		if got := p.InitialBackoff(1, 31); got < 0 {
			t.Errorf("policy %d negative backoff %d", i, got)
		}
	}
}
