// Package misbehave implements the selfish sender strategies the paper
// studies, as wrappers around any mac.BackoffPolicy:
//
//   - Partial: the paper's "Percentage of Misbehavior" model — the node
//     counts down only (100−PM)% of whatever backoff the wrapped policy
//     (802.11 random, or the receiver-assigned scheme) prescribes.
//   - QuarterWindow: the introduction's example — draw backoffs from
//     [0, CW/4] instead of [0, CW].
//   - NoDoubling: ignore contention-window doubling after collisions and
//     always draw from [0, CWMin].
//   - AttemptLiar: advertise attempt=1 in every RTS to defeat the
//     receiver's retransmission-backoff estimate (countered by the
//     attempt-verification extension in internal/core).
package misbehave

import (
	"fmt"

	"dcfguard/internal/frame"
	"dcfguard/internal/mac"
	"dcfguard/internal/rng"
)

// Partial wraps a policy and counts down only a fraction of its
// backoffs. PM is the paper's "Percentage of Misbehavior": a node with
// PM=0 is well-behaved, a node with PM=100 never backs off.
type Partial struct {
	inner mac.BackoffPolicy
	pm    int
}

// NewPartial wraps inner with PM% misbehavior. PM must lie in [0, 100].
func NewPartial(inner mac.BackoffPolicy, pm int) *Partial {
	if pm < 0 || pm > 100 {
		panic(fmt.Sprintf("misbehave: PM %d out of [0, 100]", pm))
	}
	if inner == nil {
		panic("misbehave: nil inner policy")
	}
	return &Partial{inner: inner, pm: pm}
}

var _ mac.BackoffPolicy = (*Partial)(nil)

// PM returns the configured percentage of misbehavior.
func (p *Partial) PM() int { return p.pm }

func (p *Partial) shave(slots int) int { return slots * (100 - p.pm) / 100 }

// InitialBackoff counts (100−PM)% of the prescribed backoff.
func (p *Partial) InitialBackoff(dst frame.NodeID, cw int) int {
	return p.shave(p.inner.InitialBackoff(dst, cw))
}

// RetryBackoff counts (100−PM)% of the prescribed retry backoff.
func (p *Partial) RetryBackoff(dst frame.NodeID, attempt, cw int) int {
	return p.shave(p.inner.RetryBackoff(dst, attempt, cw))
}

// OnAssigned forwards to the wrapped policy: the misbehaver remembers
// assignments like an honest node, it just under-counts them.
func (p *Partial) OnAssigned(dst frame.NodeID, seq uint32, backoff int, final bool) {
	p.inner.OnAssigned(dst, seq, backoff, final)
}

// ReportAttempt forwards (Partial misbehaves on counting, not headers).
func (p *Partial) ReportAttempt(actual int) int { return p.inner.ReportAttempt(actual) }

// QuarterWindow draws every backoff uniformly from [0, CW/4]: the
// introduction's example of distribution misbehavior against 802.11.
type QuarterWindow struct {
	src *rng.Source
}

// NewQuarterWindow returns the [0, CW/4] policy.
func NewQuarterWindow(src *rng.Source) *QuarterWindow {
	return &QuarterWindow{src: src}
}

var _ mac.BackoffPolicy = (*QuarterWindow)(nil)

// InitialBackoff draws from [0, cw/4].
func (p *QuarterWindow) InitialBackoff(_ frame.NodeID, cw int) int {
	return p.src.IntRange(0, cw/4)
}

// RetryBackoff draws from [0, cw/4].
func (p *QuarterWindow) RetryBackoff(_ frame.NodeID, _ int, cw int) int {
	return p.src.IntRange(0, cw/4)
}

// OnAssigned ignores assignments (an 802.11-style misbehaver).
func (p *QuarterWindow) OnAssigned(frame.NodeID, uint32, int, bool) {}

// ReportAttempt reports honestly.
func (p *QuarterWindow) ReportAttempt(actual int) int { return actual }

// NoDoubling ignores contention-window growth: every attempt draws from
// [0, CWMin], defeating 802.11's collision-avoidance escalation.
type NoDoubling struct {
	src   *rng.Source
	cwMin int
}

// NewNoDoubling returns the non-doubling policy with the given CWMin.
func NewNoDoubling(src *rng.Source, cwMin int) *NoDoubling {
	if cwMin < 1 {
		panic(fmt.Sprintf("misbehave: CWMin %d must be at least 1", cwMin))
	}
	return &NoDoubling{src: src, cwMin: cwMin}
}

var _ mac.BackoffPolicy = (*NoDoubling)(nil)

// InitialBackoff draws from [0, CWMin].
func (p *NoDoubling) InitialBackoff(frame.NodeID, int) int {
	return p.src.IntRange(0, p.cwMin)
}

// RetryBackoff draws from [0, CWMin], ignoring the doubled window.
func (p *NoDoubling) RetryBackoff(frame.NodeID, int, int) int {
	return p.src.IntRange(0, p.cwMin)
}

// OnAssigned ignores assignments.
func (p *NoDoubling) OnAssigned(frame.NodeID, uint32, int, bool) {}

// ReportAttempt reports honestly.
func (p *NoDoubling) ReportAttempt(actual int) int { return actual }

// AttemptLiar wraps a policy and always advertises attempt=1, hiding
// retransmissions from the receiver's backoff estimator (the estimator
// then under-computes B_exp, so real retry backoffs look like deviations
// in the *negative* direction — i.e. the liar evades penalties that the
// retry chain would otherwise justify).
type AttemptLiar struct {
	inner mac.BackoffPolicy
}

// NewAttemptLiar wraps inner with attempt-header lying.
func NewAttemptLiar(inner mac.BackoffPolicy) *AttemptLiar {
	if inner == nil {
		panic("misbehave: nil inner policy")
	}
	return &AttemptLiar{inner: inner}
}

var _ mac.BackoffPolicy = (*AttemptLiar)(nil)

// InitialBackoff forwards.
func (p *AttemptLiar) InitialBackoff(dst frame.NodeID, cw int) int {
	return p.inner.InitialBackoff(dst, cw)
}

// RetryBackoff forwards.
func (p *AttemptLiar) RetryBackoff(dst frame.NodeID, attempt, cw int) int {
	return p.inner.RetryBackoff(dst, attempt, cw)
}

// OnAssigned forwards.
func (p *AttemptLiar) OnAssigned(dst frame.NodeID, seq uint32, backoff int, final bool) {
	p.inner.OnAssigned(dst, seq, backoff, final)
}

// ReportAttempt always claims the first attempt.
func (p *AttemptLiar) ReportAttempt(int) int { return 1 }
