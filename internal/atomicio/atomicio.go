// Package atomicio provides crash-safe file writes: a result file is
// either the complete old version or the complete new version, never a
// torn intermediate. Every artifact writer in the repo — BENCH.json,
// CSV/table exports, results/ files, the experiment journal — goes
// through WriteFile, so a process killed mid-write (the exact failure
// the resumable sweep runner recovers from) can never leave a corrupt
// artifact behind.
package atomicio

import (
	"io/fs"
	"os"
	"path/filepath"
)

// TestHookBeforeRename, when non-nil, runs after the temporary file is
// written and synced but before the rename. A non-nil return aborts
// WriteFile with that error and — unlike every real failure path —
// leaves the temporary file behind, which is exactly the on-disk state
// of a process killed between write and rename. Crash tests (the sweep
// journal's kill-resume suite, the serve daemon's restart test) use it
// to plant byte-accurate torn writes; production code must never set it.
var TestHookBeforeRename func(tmpName, path string) error

// WriteFile writes data to path atomically: into a temporary file in the
// same directory (same filesystem, so the rename is atomic), fsynced,
// then renamed over path. The containing directory is fsynced
// best-effort afterwards so the rename itself survives a crash. On any
// error the temporary file is removed and path is untouched.
func WriteFile(path string, data []byte, perm fs.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	// Past this point every failure path must remove tmpName.
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return fail(err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if hook := TestHookBeforeRename; hook != nil {
		if err := hook(tmpName, path); err != nil {
			// Deliberately keep tmpName: the simulated kill happened
			// before the rename, so the torn temp file survives.
			return err
		}
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	// Persist the rename. Directory fsync is not supported everywhere
	// (and never on Windows); the write is already atomic without it,
	// just not yet guaranteed durable, so failures are ignored.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
