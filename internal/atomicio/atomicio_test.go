package atomicio

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	want := []byte(`{"hello":"world"}`)
	if err := WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("read back %q, want %q", got, want)
	}
	// No temp litter.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries after write, want 1", len(entries))
	}
}

func TestWriteFileReplacesExisting(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	if err := WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("new"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "new" {
		t.Fatalf("read back %q, want new", got)
	}
}

func TestWriteFileMissingDir(t *testing.T) {
	err := WriteFile(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x"), 0o644)
	if err == nil {
		t.Fatal("write into a missing directory succeeded")
	}
}

func TestWriteFileKillHook(t *testing.T) {
	// The crash seam: a hook error simulates a process killed between
	// write and rename — the target must be untouched (old bytes intact)
	// and the torn temp file must survive, because that is the state the
	// sweep journal's resume path has to cope with.
	dir := t.TempDir()
	path := filepath.Join(dir, "cell.json")
	if err := WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	killed := errors.New("killed")
	var sawTmp string
	TestHookBeforeRename = func(tmpName, target string) error {
		sawTmp = tmpName
		return killed
	}
	defer func() { TestHookBeforeRename = nil }()
	if err := WriteFile(path, []byte("new"), 0o644); !errors.Is(err, killed) {
		t.Fatalf("WriteFile returned %v, want the kill error", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "old" {
		t.Fatalf("target holds %q after simulated kill, want old bytes", got)
	}
	tornData, err := os.ReadFile(sawTmp)
	if err != nil {
		t.Fatalf("torn temp file missing: %v", err)
	}
	if string(tornData) != "new" {
		t.Fatalf("torn temp holds %q, want the new bytes", tornData)
	}
	// Clearing the hook restores normal atomic behaviour.
	TestHookBeforeRename = nil
	if err := WriteFile(path, []byte("new"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "new" {
		t.Fatalf("post-hook write read back %q", got)
	}
}

func TestWriteFileTempNameHidden(t *testing.T) {
	// The temp pattern must be dot-prefixed so half-written files never
	// match the journal's *.json scan.
	dir := t.TempDir()
	tmp, err := os.CreateTemp(dir, "."+"cell.json"+".tmp-*")
	if err != nil {
		t.Fatal(err)
	}
	defer os.Remove(tmp.Name())
	if !strings.HasPrefix(filepath.Base(tmp.Name()), ".") {
		t.Fatalf("temp name %q is not hidden", filepath.Base(tmp.Name()))
	}
	tmp.Close()
}
