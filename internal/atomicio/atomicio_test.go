package atomicio

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	want := []byte(`{"hello":"world"}`)
	if err := WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("read back %q, want %q", got, want)
	}
	// No temp litter.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries after write, want 1", len(entries))
	}
}

func TestWriteFileReplacesExisting(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	if err := WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("new"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "new" {
		t.Fatalf("read back %q, want new", got)
	}
}

func TestWriteFileMissingDir(t *testing.T) {
	err := WriteFile(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x"), 0o644)
	if err == nil {
		t.Fatal("write into a missing directory succeeded")
	}
}

func TestWriteFileTempNameHidden(t *testing.T) {
	// The temp pattern must be dot-prefixed so half-written files never
	// match the journal's *.json scan.
	dir := t.TempDir()
	tmp, err := os.CreateTemp(dir, "."+"cell.json"+".tmp-*")
	if err != nil {
		t.Fatal(err)
	}
	defer os.Remove(tmp.Name())
	if !strings.HasPrefix(filepath.Base(tmp.Name()), ".") {
		t.Fatalf("temp name %q is not hidden", filepath.Base(tmp.Name()))
	}
	tmp.Close()
}
