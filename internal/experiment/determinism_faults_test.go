package experiment

import (
	"fmt"
	"testing"

	"dcfguard/internal/faults"
	"dcfguard/internal/sim"
)

// Fault-injection determinism goldens, the sibling of TestDeterminismGolden
// for runs with faults *enabled*: a fixed-FER run, a Gilbert burst-loss
// run, and a node-churn run, 2 s each, seeds 1-3. They pin the injector's
// counter-RNG draw discipline and the churn schedule: any change to a
// link key, a Markov step, or a crash instant shifts these checksums.
// Like the v1 goldens, they were captured once from the implementation
// under test review and must not be updated to paper over a behavioral
// change.

// faultResultChecksum extends the golden checksum with the two
// fault-specific Result fields (which are always zero in the v1/v2
// golden scenarios, so those goldens keep their original function).
func faultResultChecksum(r Result) uint64 {
	s := fmt.Sprintf("%#x|%d|%d", resultChecksum(r), r.FaultDrops, r.Restarts)
	const (
		fnvOffset = 0xcbf29ce484222325
		fnvPrime  = 0x100000001b3
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

func faultGoldenScenarios() []Scenario {
	fer := DefaultScenario()
	fer.Channel = ChannelV1 // fault goldens captured on the v1 channel
	fer.Name = "faults-fer20"
	fer.PM = 80
	fer.Duration = 2 * sim.Second
	fer.Faults.FER = 0.20

	burst := DefaultScenario()
	burst.Channel = ChannelV1 // fault goldens captured on the v1 channel
	burst.Name = "faults-burst20"
	burst.PM = 80
	burst.Duration = 2 * sim.Second
	ge := faults.GEForMeanFER(0.20, 0.25)
	burst.Faults.Burst = &ge

	churn := DefaultScenario()
	churn.Channel = ChannelV1 // fault goldens captured on the v1 channel
	churn.Name = "faults-churn"
	churn.PM = 80
	churn.Duration = 2 * sim.Second
	churn.Faults.ChurnInterval = 500 * sim.Millisecond
	churn.Faults.ChurnDowntime = 100 * sim.Millisecond

	return []Scenario{fer, burst, churn}
}

var faultGoldenChecksums = map[string][3]uint64{
	"faults-fer20":   {0xc11fc3189f35e7f9, 0x930e7c07df0e5025, 0x12c48e0c0821b711},
	"faults-burst20": {0xb39be07a71e00546, 0x11bf1e06cdb4a3d1, 0xd4a1cc0d651f2349},
	"faults-churn":   {0x2d30173547302e46, 0xe1c53916a88a026a, 0xb4b854afb0002370},
}

func TestFaultDeterminismGolden(t *testing.T) {
	for _, s := range faultGoldenScenarios() {
		want, ok := faultGoldenChecksums[s.Name]
		if !ok {
			t.Fatalf("no golden for scenario %q", s.Name)
		}
		for seed := uint64(1); seed <= 3; seed++ {
			r, err := Run(s, seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", s.Name, seed, err)
			}
			got := faultResultChecksum(r)
			if got != want[seed-1] {
				t.Errorf("%s seed %d: checksum %#x, golden %#x — fault injection perturbed the run",
					s.Name, seed, got, want[seed-1])
			}
		}
	}
}

// TestFaultScenariosActuallyInject guards the goldens against vacuity:
// the error-model scenarios must drop frames and the churn scenario must
// complete crash/restart cycles, otherwise the checksums above would pin
// nothing new.
func TestFaultScenariosActuallyInject(t *testing.T) {
	for _, s := range faultGoldenScenarios() {
		r, err := Run(s, 1)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if s.Faults.ErrorsEnabled() && r.FaultDrops == 0 {
			t.Errorf("%s: error model enabled but zero frames dropped", s.Name)
		}
		if s.Faults.ChurnEnabled() && r.Restarts == 0 {
			t.Errorf("%s: churn enabled but zero restarts completed", s.Name)
		}
	}
}
