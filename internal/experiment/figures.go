package experiment

import (
	"fmt"
	"strconv"

	"dcfguard/internal/core"
	"dcfguard/internal/rng"
	"dcfguard/internal/sim"
	"dcfguard/internal/topo"
)

// rngFor derives the topology-generation stream for a run seed, kept
// separate from the run's own randomness so a protocol change never
// reshuffles node placement.
func rngFor(seed uint64) *rng.Source {
	return rng.New(seed).Stream("topology")
}

// Config scales the figure generators: the paper's full settings are
// DefaultConfig (50 s, 30 seeds); benchmarks use reduced settings.
type Config struct {
	// Duration of each run (paper: 50 s).
	Duration sim.Time
	// Seeds for every data point (paper: 30, identical across points).
	Seeds []uint64
	// PMs is the Percentage-of-Misbehavior sweep.
	PMs []int
	// NetworkSizes is the Figure-6/7 sender-count sweep.
	NetworkSizes []int
	// Fig8PMs are the Figure-8 misbehavior levels.
	Fig8PMs []int
	// FERs is the ExtFaultTolerance frame-error-rate sweep.
	FERs []float64
	// Channel selects the channel model for every generated scenario.
	// The default configs use ChannelV2; ChannelV1 (cmd/figures
	// -channel v1) reproduces tables recorded before the v2 default
	// flip byte-for-byte (DESIGN.md §10). Note the zero value reads as
	// ChannelV1 — construct configs via DefaultConfig/QuickConfig.
	Channel ChannelModel
}

// DefaultConfig reproduces the paper's settings.
func DefaultConfig() Config {
	return Config{
		Duration:     50 * sim.Second,
		Seeds:        Seeds(30),
		PMs:          []int{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100},
		NetworkSizes: []int{1, 2, 4, 8, 16, 32, 64},
		Fig8PMs:      []int{40, 60, 80},
		FERs:         []float64{0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30},
		Channel:      ChannelV2,
	}
}

// QuickConfig is a reduced configuration for benchmarks and smoke runs.
func QuickConfig() Config {
	return Config{
		Duration:     5 * sim.Second,
		Seeds:        Seeds(3),
		PMs:          []int{0, 50, 100},
		NetworkSizes: []int{1, 4, 8},
		Fig8PMs:      []int{40, 80},
		FERs:         []float64{0, 0.15, 0.30},
		Channel:      ChannelV2,
	}
}

func (c Config) base(name string, twoFlow bool, mis ...int) Scenario {
	s := DefaultScenario()
	s.Name = name
	s.Duration = c.Duration
	s.Topo = StarTopo(8, twoFlow, mis...)
	s.Channel = c.Channel
	return s
}

// Fig4 reproduces Figure 4: diagnosis accuracy (correct diagnosis % and
// misdiagnosis %) versus PM for the ZERO-FLOW and TWO-FLOW scenarios,
// with node 3 of 8 misbehaving under the CORRECT protocol.
func Fig4(cfg Config) (*Table, error) {
	t := &Table{
		Title: "Figure 4: Diagnosis accuracy for varying magnitude of misbehavior",
		Columns: []string{"PM%",
			"zero-flow correct%", "zero-flow misdiag%",
			"two-flow correct%", "two-flow misdiag%"},
		Notes: []string{
			fmt.Sprintf("W=%d THRESH=%.0f alpha=%.1f, %d seeds, %v runs",
				core.DefaultParams().Window, core.DefaultParams().Thresh,
				core.DefaultParams().Alpha, len(cfg.Seeds), cfg.Duration),
		},
	}
	for _, pm := range cfg.PMs {
		row := []string{strconv.Itoa(pm)}
		for _, twoFlow := range []bool{false, true} {
			s := cfg.base(flowName(twoFlow), twoFlow, 3)
			s.Protocol = ProtocolCorrect
			s.PM = pm
			agg, err := RunSeeds(s, cfg.Seeds)
			if err != nil {
				return nil, err
			}
			t.Events += agg.EventsFired
			row = append(row,
				fmtCI(agg.CorrectDiagnosisPct.Mean, agg.CorrectDiagnosisPct.CI95),
				fmtCI(agg.MisdiagnosisPct.Mean, agg.MisdiagnosisPct.CI95))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig5WithDelay runs the Figure-5 sweep once and renders two tables:
// the paper's throughput comparison, and this repo's extension table of
// per-packet MAC delays over the same runs (lower delay being the other
// selfish incentive §3.1 names).
func Fig5WithDelay(cfg Config) (*Table, *Table, error) {
	t5 := &Table{
		Title: "Figure 5: Throughput comparison between IEEE 802.11 and proposed scheme (Kbps)",
		Columns: []string{"PM%",
			"802.11 MSB", "802.11 AVG", "CORRECT MSB", "CORRECT AVG"},
		Notes: []string{
			fmt.Sprintf("8 senders, node 3 misbehaving; penalty factor %.2f",
				core.DefaultParams().PenaltyFactor),
		},
	}
	tD := &Table{
		Title: "Extension: per-packet MAC delay under misbehavior (ms)",
		Columns: []string{"PM%",
			"802.11 MSB", "802.11 AVG", "CORRECT MSB", "CORRECT AVG"},
		Notes: []string{"same runs as Figure 5; delay = enqueue → ACK"},
	}
	for _, pm := range cfg.PMs {
		row5 := []string{strconv.Itoa(pm)}
		rowD := []string{strconv.Itoa(pm)}
		for _, proto := range []Protocol{Protocol80211, ProtocolCorrect} {
			s := cfg.base("fig5-"+proto.String(), false, 3)
			s.Protocol = proto
			s.PM = pm
			agg, err := RunSeeds(s, cfg.Seeds)
			if err != nil {
				return nil, nil, err
			}
			t5.Events += agg.EventsFired
			tD.Events = t5.Events // same runs
			row5 = append(row5,
				fmtCI(agg.AvgMisbehaverKbps.Mean, agg.AvgMisbehaverKbps.CI95),
				fmtCI(agg.AvgHonestKbps.Mean, agg.AvgHonestKbps.CI95))
			rowD = append(rowD,
				fmtF(agg.AvgMisbehaverDelayMs.Mean),
				fmtF(agg.AvgHonestDelayMs.Mean))
		}
		t5.AddRow(row5...)
		tD.AddRow(rowD...)
	}
	return t5, tD, nil
}

// Fig5 reproduces Figure 5: throughput of the misbehaving node (MSB)
// and the average well-behaved node (AVG) versus PM, under 802.11 and
// under the CORRECT scheme (ZERO-FLOW star, node 3 misbehaving).
func Fig5(cfg Config) (*Table, error) {
	t5, _, err := Fig5WithDelay(cfg)
	return t5, err
}

// Fig6And7 runs the no-misbehavior network-size sweep once and renders
// both Figure 6 (average per-node throughput) and Figure 7 (Jain's
// fairness index) from it: 802.11 versus CORRECT under ZERO-FLOW and
// TWO-FLOW, with N honest senders.
func Fig6And7(cfg Config) (*Table, *Table, error) {
	cols := []string{"senders",
		"zero 802.11", "zero CORRECT", "two 802.11", "two CORRECT"}
	t6 := &Table{
		Title:   "Figure 6: Throughput comparison without misbehavior for varying network sizes (Kbps/node)",
		Columns: cols,
	}
	t7 := &Table{
		Title:   "Figure 7: Comparison of fairness index between IEEE 802.11 and proposed scheme",
		Columns: cols,
	}
	for _, n := range cfg.NetworkSizes {
		row6 := []string{strconv.Itoa(n)}
		row7 := []string{strconv.Itoa(n)}
		for _, twoFlow := range []bool{false, true} {
			for _, proto := range []Protocol{Protocol80211, ProtocolCorrect} {
				s := cfg.base(fmt.Sprintf("fig6+7-%s-%s-%d", flowName(twoFlow), proto, n), twoFlow)
				s.Topo = StarTopo(n, twoFlow)
				s.Protocol = proto
				agg, err := RunSeeds(s, cfg.Seeds)
				if err != nil {
					return nil, nil, err
				}
				t6.Events += agg.EventsFired
				t7.Events = t6.Events // same runs
				row6 = append(row6, fmtCI(agg.AvgHonestKbps.Mean, agg.AvgHonestKbps.CI95))
				row7 = append(row7, fmtF3(agg.Fairness.Mean))
			}
		}
		t6.AddRow(row6...)
		t7.AddRow(row7...)
	}
	return t6, t7, nil
}

// Fig6 reproduces Figure 6 alone (see Fig6And7).
func Fig6(cfg Config) (*Table, error) {
	t6, _, err := Fig6And7(cfg)
	return t6, err
}

// Fig7 reproduces Figure 7 alone (see Fig6And7).
func Fig7(cfg Config) (*Table, error) {
	_, t7, err := Fig6And7(cfg)
	return t7, err
}

// Fig8 reproduces Figure 8: correct-diagnosis percentage over time
// (1-second bins) in the TWO-FLOW scenario for several PM levels.
func Fig8(cfg Config) (*Table, error) {
	cols := []string{"t (s)"}
	for _, pm := range cfg.Fig8PMs {
		cols = append(cols, fmt.Sprintf("PM=%d%% correct%%", pm))
	}
	t := &Table{
		Title:   "Figure 8: Responsiveness of misbehavior diagnosis (two-flow)",
		Columns: cols,
	}
	var series [][]float64
	var maxBins int
	for _, pm := range cfg.Fig8PMs {
		s := cfg.base(fmt.Sprintf("fig8-pm%d", pm), true, 3)
		s.Protocol = ProtocolCorrect
		s.PM = pm
		s.BinSize = sim.Second
		agg, err := RunSeeds(s, cfg.Seeds)
		if err != nil {
			return nil, err
		}
		t.Events += agg.EventsFired
		vals := make([]float64, len(agg.Series))
		for i, p := range agg.Series {
			vals[i] = p.CorrectPct
		}
		if len(vals) > maxBins {
			maxBins = len(vals)
		}
		series = append(series, vals)
	}
	for bin := 0; bin < maxBins; bin++ {
		row := []string{strconv.Itoa(bin)}
		for _, vals := range series {
			if bin < len(vals) {
				row = append(row, fmtF(vals[bin]))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	return t, nil
}

// RandomTopo returns the Figure-9 topology builder: 40 nodes in
// 1500 m × 700 m, 5 random misbehavers, regenerated per seed so the 30
// runs cover 30 different random topologies.
func RandomTopo(nodes, nMis int) func(uint64) *topo.Topology {
	return func(seed uint64) *topo.Topology {
		src := rngFor(seed)
		return topo.Random(nodes, 1500, 700, 200, nMis, src)
	}
}

// ScaledRandomTopo returns large sparse random topologies: a 700 m tall
// corridor that widens by 150 m² of area per node (like a mesh deployed
// along a road), giving ≈160 m mean nearest-neighbor spacing. The
// Figure-9 density (≈38 nodes/km²) would not scale this way — at that
// density a hundreds-of-nodes arena is one huge carrier-sense domain
// where contention, not channel fan-out, dominates; the sparse corridor
// keeps most traffic local (≈85 % of nearest neighbors inside the 250 m
// receive range) while the network genuinely spreads out, which is the
// regime the v2 spatial index targets. The RunRandom200/RunRandom400
// bench scenarios build on it.
func ScaledRandomTopo(nodes, nMis int) func(uint64) *topo.Topology {
	width := 150 * float64(nodes)
	return func(seed uint64) *topo.Topology {
		return topo.Random(nodes, width, 700, 200, nMis, rngFor(seed))
	}
}

// Fig9 reproduces Figure 9: protocol performance over random
// topologies — (a) diagnosis accuracy and (b) throughput, versus PM.
func Fig9(cfg Config) (*Table, error) {
	t := &Table{
		Title: "Figure 9: Protocol performance for random topology (40 nodes, 1500m x 700m, 5 misbehaving)",
		Columns: []string{"PM%",
			"correct%", "misdiag%",
			"802.11 MSB", "802.11 AVG", "CORRECT MSB", "CORRECT AVG"},
	}
	for _, pm := range cfg.PMs {
		row := []string{strconv.Itoa(pm)}
		// (a) Diagnosis under CORRECT.
		s := DefaultScenario()
		s.Name = fmt.Sprintf("fig9-correct-pm%d", pm)
		s.Duration = cfg.Duration
		s.Topo = RandomTopo(40, 5)
		s.Protocol = ProtocolCorrect
		s.PM = pm
		s.Channel = cfg.Channel
		aggC, err := RunSeeds(s, cfg.Seeds)
		if err != nil {
			return nil, err
		}
		t.Events += aggC.EventsFired
		row = append(row,
			fmtCI(aggC.CorrectDiagnosisPct.Mean, aggC.CorrectDiagnosisPct.CI95),
			fmtCI(aggC.MisdiagnosisPct.Mean, aggC.MisdiagnosisPct.CI95))

		// (b) Throughput under both protocols.
		s80 := s
		s80.Name = fmt.Sprintf("fig9-80211-pm%d", pm)
		s80.Protocol = Protocol80211
		agg80, err := RunSeeds(s80, cfg.Seeds)
		if err != nil {
			return nil, err
		}
		t.Events += agg80.EventsFired
		row = append(row,
			fmtCI(agg80.AvgMisbehaverKbps.Mean, agg80.AvgMisbehaverKbps.CI95),
			fmtCI(agg80.AvgHonestKbps.Mean, agg80.AvgHonestKbps.CI95),
			fmtCI(aggC.AvgMisbehaverKbps.Mean, aggC.AvgMisbehaverKbps.CI95),
			fmtCI(aggC.AvgHonestKbps.Mean, aggC.AvgHonestKbps.CI95))
		t.AddRow(row...)
	}
	return t, nil
}

func flowName(twoFlow bool) string {
	if twoFlow {
		return "two-flow"
	}
	return "zero-flow"
}
