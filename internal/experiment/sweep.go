package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"dcfguard/internal/sim"
	"dcfguard/internal/stats"
)

// Aggregate holds multi-seed summaries of one scenario's metrics.
type Aggregate struct {
	Scenario string
	Runs     int

	CorrectDiagnosisPct  stats.Summary
	MisdiagnosisPct      stats.Summary
	AvgHonestKbps        stats.Summary
	AvgMisbehaverKbps    stats.Summary
	AvgHonestDelayMs     stats.Summary
	AvgMisbehaverDelayMs stats.Summary
	TotalKbps            stats.Summary
	Fairness             stats.Summary

	// Series is the packet-weighted per-bin diagnosis series pooled
	// across runs.
	Series []stats.SeriesPoint

	ProvenMisbehaviors int
	GreedyDetections   int

	// EventsFired is the total kernel event count across runs, so the
	// figure generators can report events/op in the bench suite.
	EventsFired uint64
}

// Seeds returns the paper's seed convention: the same fixed set
// (1..n) for every data point.
func Seeds(n int) []uint64 {
	s := make([]uint64, n)
	for i := range s {
		s[i] = uint64(i + 1)
	}
	return s
}

// RunSeeds executes the scenario once per seed, in parallel across
// GOMAXPROCS workers, and aggregates the results.
func RunSeeds(s Scenario, seeds []uint64) (Aggregate, error) {
	results, err := runParallel(s, seeds)
	if err != nil {
		return Aggregate{}, err
	}
	return aggregate(s.Name, results), nil
}

// runParallel fans the seeds across a GOMAXPROCS worker pool. Each run
// is an independent pure function of (scenario, seed), so results land
// at their seed's index regardless of completion order — callers see
// the same deterministic ordering the old serial loops produced.
func runParallel(s Scenario, seeds []uint64) ([]Result, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiment: %s: no seeds", s.Name)
	}
	results := make([]Result, len(seeds))
	errs := make([]error, len(seeds))

	workers := runtime.GOMAXPROCS(0)
	if workers > len(seeds) {
		workers = len(seeds)
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				results[i], errs[i] = Run(s, seeds[i])
			}
		}()
	}
	for i := range seeds {
		work <- i
	}
	close(work)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiment: %s seed %d: %w", s.Name, seeds[i], err)
		}
	}
	return results, nil
}

func aggregate(name string, results []Result) Aggregate {
	agg := Aggregate{Scenario: name, Runs: len(results)}
	var correct, misdiag, honest, mis, hDelay, mDelay, total, fair stats.Welford

	// Pool series bins across runs, weighting by packet counts.
	type binAcc struct {
		weighted float64
		packets  int
		start    sim.Time
	}
	var bins []binAcc

	for _, r := range results {
		correct.Add(r.CorrectDiagnosisPct)
		misdiag.Add(r.MisdiagnosisPct)
		honest.Add(r.AvgHonestKbps)
		mis.Add(r.AvgMisbehaverKbps)
		hDelay.Add(r.AvgHonestDelayMs)
		mDelay.Add(r.AvgMisbehaverDelayMs)
		total.Add(r.TotalKbps)
		fair.Add(r.Fairness)
		agg.ProvenMisbehaviors += r.ProvenMisbehaviors
		agg.GreedyDetections += r.GreedyDetections
		agg.EventsFired += r.EventsFired
		for i, p := range r.Series {
			for len(bins) <= i {
				bins = append(bins, binAcc{start: p.Start})
			}
			bins[i].weighted += p.CorrectPct * float64(p.Packets)
			bins[i].packets += p.Packets
		}
	}
	agg.CorrectDiagnosisPct = correct.Summarize()
	agg.MisdiagnosisPct = misdiag.Summarize()
	agg.AvgHonestKbps = honest.Summarize()
	agg.AvgMisbehaverKbps = mis.Summarize()
	agg.AvgHonestDelayMs = hDelay.Summarize()
	agg.AvgMisbehaverDelayMs = mDelay.Summarize()
	agg.TotalKbps = total.Summarize()
	agg.Fairness = fair.Summarize()
	for _, b := range bins {
		p := stats.SeriesPoint{Start: b.start, Packets: b.packets}
		if b.packets > 0 {
			p.CorrectPct = b.weighted / float64(b.packets)
		}
		agg.Series = append(agg.Series, p)
	}
	return agg
}
