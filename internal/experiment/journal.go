package experiment

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"dcfguard/internal/atomicio"
)

// SweepCell is one (scenario, seed) unit of a sweep. Scenario names must
// be unique per configuration within a sweep: the journal keys cells by
// (name, seed), so two different configurations sharing a name would
// shadow each other on resume.
type SweepCell struct {
	Scenario Scenario
	Seed     uint64
}

// SweepOptions configures RunSweep. The zero value runs everything
// in-memory on GOMAXPROCS workers with no watchdog.
type SweepOptions struct {
	// JournalDir, when non-empty, checkpoints every completed cell as an
	// atomically written JSON file in this directory (created if
	// missing). A rerun over the same directory loads finished cells
	// from disk and executes only the rest, so an interrupted sweep —
	// crash, kill -9, power cut — resumes where it left off and still
	// produces byte-identical final output.
	JournalDir string
	// SeedTimeout, when positive, bounds each cell's wall time via
	// RunGuarded's watchdog.
	SeedTimeout time.Duration
	// Workers caps the worker pool (0 means GOMAXPROCS).
	Workers int
	// Progress, when non-nil, receives live cell counters as the sweep
	// advances (see SweepProgress); the macsim -progress ticker and the
	// obs debug endpoint read it concurrently.
	Progress *SweepProgress
}

// SweepReport is RunSweep's outcome. Results is index-aligned with the
// input cells; a failed cell leaves its zero Result in place and a
// *SeedFailure in Failures (in cell order).
type SweepReport struct {
	Results  []Result
	Failures []*SeedFailure
	// Resumed counts cells restored from the journal; Ran counts cells
	// executed this invocation.
	Resumed int
	Ran     int
}

// OK reports whether every cell produced a result.
func (r *SweepReport) OK() bool { return len(r.Failures) == 0 }

// CellFileName maps a (scenario name, seed) journal key to its file
// name. Scenario names are sanitised to a filesystem-safe alphabet; the
// seed keeps cells of one scenario apart. Exported so out-of-package
// sweep drivers (the serve daemon) address the same journal layout
// RunSweep resumes from.
func CellFileName(scenario string, seed uint64) string {
	sanitised := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, scenario)
	return fmt.Sprintf("%s-seed%d.json", sanitised, seed)
}

// LoadJournaledCell reads one checkpointed cell from dir. A missing or
// malformed file (a torn write on a lying disk — impossible with
// atomicio, but journals outlive their writer) reports ok=false with no
// error: the cell is simply rerun. The error is reserved for real I/O
// problems (permissions, unreadable directory).
func LoadJournaledCell(dir, scenario string, seed uint64) (Result, bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, CellFileName(scenario, seed)))
	if err != nil {
		if os.IsNotExist(err) {
			return Result{}, false, nil
		}
		return Result{}, false, fmt.Errorf("experiment: journal: %w", err)
	}
	var r Result
	if err := json.Unmarshal(data, &r); err != nil {
		return Result{}, false, nil
	}
	return r, true, nil
}

// JournalCell checkpoints one cell result into dir atomically, keyed by
// the result's own (Scenario, Seed).
func JournalCell(dir string, res Result) error {
	data, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("experiment: journal: %w", err)
	}
	path := filepath.Join(dir, CellFileName(res.Scenario, res.Seed))
	if err := atomicio.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("experiment: journal: %w", err)
	}
	return nil
}

// RunSweep executes the cells across a worker pool, isolating each cell
// with RunGuarded: a panicking or timed-out cell is recorded as a
// failure while the remaining cells still run to completion. With a
// journal directory it is also resumable — see SweepOptions.JournalDir.
//
// The returned error is reserved for sweep-level problems (no cells,
// duplicate journal keys, an unusable journal directory); per-cell
// failures are reported in the SweepReport so the caller can render
// partial results plus diagnostics and choose its own exit code.
func RunSweep(cells []SweepCell, opts SweepOptions) (SweepReport, error) {
	report := SweepReport{Results: make([]Result, len(cells))}
	if len(cells) == 0 {
		return report, fmt.Errorf("experiment: sweep has no cells")
	}
	opts.Progress.SetTotal(len(cells))
	seen := make(map[string]int, len(cells))
	for i, c := range cells {
		key := CellFileName(c.Scenario.Name, c.Seed)
		if j, dup := seen[key]; dup {
			return report, fmt.Errorf("experiment: cells %d and %d share journal key %s (scenario %q seed %d)",
				j, i, key, c.Scenario.Name, c.Seed)
		}
		seen[key] = i
	}

	// Resume: load every journaled cell before spending any compute.
	done := make([]bool, len(cells))
	if opts.JournalDir != "" {
		if err := os.MkdirAll(opts.JournalDir, 0o755); err != nil {
			return report, fmt.Errorf("experiment: journal: %w", err)
		}
		for i, c := range cells {
			r, ok, err := LoadJournaledCell(opts.JournalDir, c.Scenario.Name, c.Seed)
			if err != nil {
				return report, err
			}
			if !ok {
				continue
			}
			report.Results[i] = r
			done[i] = true
			report.Resumed++
			opts.Progress.CellResumed()
		}
	}

	failures := make([]*SeedFailure, len(cells))
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	var wg sync.WaitGroup
	var journalErr error
	var journalMu sync.Mutex
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				c := cells[i]
				res, err := RunGuarded(c.Scenario, c.Seed, opts.SeedTimeout)
				opts.Progress.CellDone(err != nil)
				opts.Progress.AddEvents(res.EventsFired)
				if err != nil {
					// RunGuarded guarantees a *SeedFailure.
					failures[i] = err.(*SeedFailure)
					continue
				}
				report.Results[i] = res
				if opts.JournalDir != "" {
					if merr := JournalCell(opts.JournalDir, res); merr != nil {
						journalMu.Lock()
						if journalErr == nil {
							journalErr = merr
						}
						journalMu.Unlock()
					}
				}
			}
		}()
	}
	for i := range cells {
		if !done[i] {
			report.Ran++
			work <- i
		}
	}
	close(work)
	wg.Wait()

	if journalErr != nil {
		return report, journalErr
	}
	for _, f := range failures {
		if f != nil {
			report.Failures = append(report.Failures, f)
		}
	}
	return report, nil
}

// AggregateResults folds raw per-seed results into the same multi-seed
// Aggregate that RunSeeds computes: the bridge from journaled sweep
// results back into the table/figure renderers.
func AggregateResults(name string, results []Result) Aggregate {
	return aggregate(name, results)
}
