package experiment

// SweepProgress publishes a sweep's live position — total cells, cells
// finished, failures, cells restored from the journal — through atomic
// counters a monitoring goroutine (the macsim -progress ticker, the obs
// debug endpoint's /debug/sweep handler, the serve daemon's job status)
// can read while workers run.
//
// It deliberately carries no wall-clock state: the reader measures
// elapsed time itself and hands it to SweepSnapshot.ETA, keeping host
// time out of this package's sweep path.
import (
	"sync/atomic"
	"time"
)

// SweepProgress is the live counter block. The zero value is ready to
// use; share one instance between SweepOptions.Progress and whatever
// reads it.
type SweepProgress struct {
	total   atomic.Int64
	done    atomic.Int64
	failed  atomic.Int64
	resumed atomic.Int64
	ran     atomic.Int64
	events  atomic.Int64
	retried atomic.Int64
}

// SweepSnapshot is one consistent-enough read of a SweepProgress (each
// field is read atomically; the set is not a transaction).
type SweepSnapshot struct {
	// Total is the sweep's cell count; Done the cells finished so far
	// (successes, failures and journal-resumed cells alike).
	Total int `json:"total"`
	Done  int `json:"done"`
	// Failed counts cells that ended in a *SeedFailure; Resumed the
	// cells restored from the journal without running; Ran the cells
	// actually executed this invocation (Done = Ran + Resumed).
	Failed  int `json:"failed"`
	Resumed int `json:"resumed"`
	Ran     int `json:"ran"`
	// Events totals the kernel events fired by cells executed this
	// invocation (resumed cells contribute nothing — they cost no
	// compute). Two reads a known wall interval apart give the
	// instantaneous events/sec the -progress ticker prints.
	Events int64 `json:"events"`
	// Retried counts retry attempts scheduled for this sweep's cells
	// (always 0 for local macsim sweeps, which never retry; the serve
	// daemon's retry scheduler feeds it).
	Retried int `json:"retried"`
}

// SetTotal records the sweep's cell count. Like every mutator it is
// nil-safe, so RunSweep updates an optional progress block
// unconditionally.
func (p *SweepProgress) SetTotal(n int) {
	if p != nil {
		p.total.Store(int64(n))
	}
}

// CellDone records one executed cell, failed or not.
func (p *SweepProgress) CellDone(failed bool) {
	if p == nil {
		return
	}
	p.done.Add(1)
	p.ran.Add(1)
	if failed {
		p.failed.Add(1)
	}
}

// AddEvents credits n kernel events to the sweep's executed total.
func (p *SweepProgress) AddEvents(n uint64) {
	if p != nil {
		p.events.Add(int64(n))
	}
}

// CellRetried records one scheduled retry attempt.
func (p *SweepProgress) CellRetried() {
	if p != nil {
		p.retried.Add(1)
	}
}

// CellResumed records one cell restored from the journal without
// running.
func (p *SweepProgress) CellResumed() {
	if p == nil {
		return
	}
	p.done.Add(1)
	p.resumed.Add(1)
}

// Snapshot returns the current counters (zero value on a nil receiver).
func (p *SweepProgress) Snapshot() SweepSnapshot {
	if p == nil {
		return SweepSnapshot{}
	}
	return SweepSnapshot{
		Total:   int(p.total.Load()),
		Done:    int(p.done.Load()),
		Failed:  int(p.failed.Load()),
		Resumed: int(p.resumed.Load()),
		Ran:     int(p.ran.Load()),
		Events:  p.events.Load(),
		Retried: int(p.retried.Load()),
	}
}

// ETA extrapolates the remaining wall time from the elapsed wall time
// the caller measured: elapsed/Ran per executed cell, times the cells
// left. Journal-resumed cells cost no compute, so they are excluded
// from the rate — a restarted sweep that instantly restores 90% of its
// cells no longer reports a wildly optimistic ETA for the 10% it still
// has to run. Returns 0 when no cells have run yet (rate unknown) or
// nothing is left.
func (s SweepSnapshot) ETA(elapsed time.Duration) time.Duration {
	left := s.Total - s.Done
	if s.Ran <= 0 || left <= 0 {
		return 0
	}
	return time.Duration(float64(elapsed) / float64(s.Ran) * float64(left))
}
