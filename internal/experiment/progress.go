package experiment

// SweepProgress publishes a sweep's live position — total cells, cells
// finished, failures, cells restored from the journal — through atomic
// counters a monitoring goroutine (the macsim -progress ticker, the obs
// debug endpoint's /debug/sweep handler) can read while workers run.
// All methods are nil-safe so RunSweep can update unconditionally.
//
// It deliberately carries no wall-clock state: rates and ETAs are the
// reader's business (macsim computes them), keeping host time out of
// this package's sweep path.
import (
	"sync/atomic"
)

// SweepProgress is the live counter block. The zero value is ready to
// use; share one instance between SweepOptions.Progress and whatever
// reads it.
type SweepProgress struct {
	total   atomic.Int64
	done    atomic.Int64
	failed  atomic.Int64
	resumed atomic.Int64
}

// SweepSnapshot is one consistent-enough read of a SweepProgress (each
// field is read atomically; the set is not a transaction).
type SweepSnapshot struct {
	// Total is the sweep's cell count; Done the cells finished so far
	// (successes, failures and journal-resumed cells alike).
	Total int `json:"total"`
	Done  int `json:"done"`
	// Failed counts cells that ended in a *SeedFailure; Resumed the
	// cells restored from the journal without running.
	Failed  int `json:"failed"`
	Resumed int `json:"resumed"`
}

func (p *SweepProgress) setTotal(n int) {
	if p != nil {
		p.total.Store(int64(n))
	}
}

func (p *SweepProgress) cellDone(failed bool) {
	if p == nil {
		return
	}
	p.done.Add(1)
	if failed {
		p.failed.Add(1)
	}
}

func (p *SweepProgress) cellResumed() {
	if p == nil {
		return
	}
	p.done.Add(1)
	p.resumed.Add(1)
}

// Snapshot returns the current counters (zero value on a nil receiver).
func (p *SweepProgress) Snapshot() SweepSnapshot {
	if p == nil {
		return SweepSnapshot{}
	}
	return SweepSnapshot{
		Total:   int(p.total.Load()),
		Done:    int(p.done.Load()),
		Failed:  int(p.failed.Load()),
		Resumed: int(p.resumed.Load()),
	}
}
