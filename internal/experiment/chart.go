package experiment

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Series is one line of an ASCII chart.
type Series struct {
	Name string
	X, Y []float64
}

// chartMarkers distinguish overlaid series.
var chartMarkers = []byte{'*', 'o', '+', 'x', '#', '@'}

// RenderChart draws series as an ASCII scatter/line chart of the given
// plot-area size (total output is slightly larger for axes and legend).
// Degenerate inputs (no points, flat ranges) render without panicking.
func RenderChart(title string, width, height int, series []Series) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range series {
		n := len(s.X)
		if len(s.Y) < n {
			n = len(s.Y)
		}
		for i := 0; i < n; i++ {
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
			points++
		}
	}
	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	if points == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	//detlint:allow floateq -- degenerate-axis guard: equal only when every point is bit-identical
	if maxX == minX {
		maxX = minX + 1
	}
	//detlint:allow floateq -- degenerate-axis guard: equal only when every point is bit-identical
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		marker := chartMarkers[si%len(chartMarkers)]
		n := len(s.X)
		if len(s.Y) < n {
			n = len(s.Y)
		}
		for i := 0; i < n; i++ {
			c := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			r := height - 1 - int((s.Y[i]-minY)/(maxY-minY)*float64(height-1))
			grid[r][c] = marker
		}
	}

	yLabelW := 8
	for r := 0; r < height; r++ {
		var label string
		switch r {
		case 0:
			label = fmtAxis(maxY)
		case height - 1:
			label = fmtAxis(minY)
		case (height - 1) / 2:
			label = fmtAxis((minY + maxY) / 2)
		}
		fmt.Fprintf(&b, "%*s |%s|\n", yLabelW, label, string(grid[r]))
	}
	// X axis.
	fmt.Fprintf(&b, "%*s +%s+\n", yLabelW, "", strings.Repeat("-", width))
	lo, hi := fmtAxis(minX), fmtAxis(maxX)
	pad := width - len(lo) - len(hi)
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(&b, "%*s  %s%s%s\n", yLabelW, "", lo, strings.Repeat(" ", pad), hi)
	// Legend.
	for si, s := range series {
		fmt.Fprintf(&b, "%*s  %c %s\n", yLabelW, "", chartMarkers[si%len(chartMarkers)], s.Name)
	}
	return b.String()
}

func fmtAxis(v float64) string {
	switch {
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// Chart renders a numeric table as an ASCII chart: xCol selects the
// x-axis column index and yCols the series columns. Cells of the form
// "mean±ci" contribute their mean; non-numeric cells are skipped.
func (t *Table) Chart(width, height int, xCol int, yCols ...int) string {
	series := make([]Series, 0, len(yCols))
	for _, yc := range yCols {
		if yc < 0 || yc >= len(t.Columns) {
			continue
		}
		s := Series{Name: t.Columns[yc]}
		for _, row := range t.Rows {
			x, okX := parseCell(row[xCol])
			y, okY := parseCell(row[yc])
			if okX && okY {
				s.X = append(s.X, x)
				s.Y = append(s.Y, y)
			}
		}
		series = append(series, s)
	}
	return RenderChart(t.Title, width, height, series)
}

// parseCell extracts the leading float from a cell ("12.3±4.5" → 12.3).
func parseCell(cell string) (float64, bool) {
	if i := strings.Index(cell, "±"); i >= 0 {
		cell = cell[:i]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(cell), 64)
	if err != nil {
		return 0, false
	}
	return v, true
}
