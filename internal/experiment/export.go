package experiment

import (
	"fmt"
	"sort"
	"strings"

	"dcfguard/internal/frame"
)

// RunAll executes the scenario once per seed — in parallel across
// GOMAXPROCS workers, with results returned in seed order — and returns
// the raw per-run results: the escape hatch for external analysis
// beyond the built-in aggregation.
func RunAll(s Scenario, seeds []uint64) ([]Result, error) {
	return runParallel(s, seeds)
}

// ResultsCSV renders raw per-run results as CSV, one row per (run,
// metric-set), suitable for pandas/R style analysis.
func ResultsCSV(results []Result) string {
	var b strings.Builder
	b.WriteString("scenario,seed,duration_s,total_kbps,avg_honest_kbps,avg_misbehaver_kbps," +
		"avg_honest_delay_ms,avg_misbehaver_delay_ms,fairness," +
		"correct_diagnosis_pct,misdiagnosis_pct,proven_misbehaviors,greedy_detections,events\n")
	for _, r := range results {
		fmt.Fprintf(&b, "%s,%d,%g,%g,%g,%g,%g,%g,%g,%g,%g,%d,%d,%d\n",
			csvEscape(r.Scenario), r.Seed, r.Duration.Seconds(),
			r.TotalKbps, r.AvgHonestKbps, r.AvgMisbehaverKbps,
			r.AvgHonestDelayMs, r.AvgMisbehaverDelayMs, r.Fairness,
			r.CorrectDiagnosisPct, r.MisdiagnosisPct,
			r.ProvenMisbehaviors, r.GreedyDetections, r.EventsFired)
	}
	return b.String()
}

// PerSenderCSV renders the per-flow throughput breakdown of raw results.
func PerSenderCSV(results []Result) string {
	var b strings.Builder
	b.WriteString("scenario,seed,sender,throughput_kbps\n")
	for _, r := range results {
		ids := make([]int, 0, len(r.ThroughputBySender))
		for id := range r.ThroughputBySender {
			ids = append(ids, int(id))
		}
		sort.Ints(ids)
		for _, id := range ids {
			fmt.Fprintf(&b, "%s,%d,%d,%g\n",
				csvEscape(r.Scenario), r.Seed, id, r.ThroughputBySender[frame.NodeID(id)])
		}
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
