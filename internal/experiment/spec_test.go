package experiment

import (
	"encoding/json"
	"strings"
	"testing"

	"dcfguard/internal/sim"
)

// TestScenarioSpecMinimal: the minimal spec materialises to
// DefaultScenario with the named topology and duration.
func TestScenarioSpecMinimal(t *testing.T) {
	sp, err := DecodeScenarioSpec(strings.NewReader(
		`{"name": "quick", "topo": {"kind": "star", "senders": 8, "misbehaving": [3]}, "duration": "200ms"}`))
	if err != nil {
		t.Fatal(err)
	}
	s, err := sp.ToScenario()
	if err != nil {
		t.Fatal(err)
	}
	want := DefaultScenario()
	if s.Duration != 200*sim.Millisecond {
		t.Fatalf("duration %v", s.Duration)
	}
	if s.Protocol != ProtocolCorrect || s.Strategy != StrategyPartial || s.Channel != ChannelV2 {
		t.Fatalf("enum defaults: %v %v %v", s.Protocol, s.Strategy, s.Channel)
	}
	if s.PayloadBytes != want.PayloadBytes || s.BitRate != want.BitRate ||
		s.QueueDepth != want.QueueDepth || s.Core != want.Core || s.MAC != want.MAC {
		t.Fatal("defaults not applied")
	}
}

// TestScenarioSpecRunEquivalence: a spec-built scenario runs
// bit-identical to the hand-built scenario it describes — the property
// that makes daemon-submitted sweeps interchangeable with direct runs.
func TestScenarioSpecRunEquivalence(t *testing.T) {
	sp := ScenarioSpec{
		Name:     "spec-equiv",
		Topo:     TopoSpec{Kind: "star", Senders: 8, Misbehaving: []int{3}},
		PM:       80,
		Duration: "200ms",
	}
	s, err := sp.ToScenario()
	if err != nil {
		t.Fatal(err)
	}
	direct := quickScenario("spec-equiv")
	for _, seed := range []uint64{1, 2} {
		got, err := Run(s, seed)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Run(direct, seed)
		if err != nil {
			t.Fatal(err)
		}
		if resultChecksum(got) != resultChecksum(want) {
			t.Fatalf("seed %d: spec-built run differs from direct run", seed)
		}
	}
}

// TestScenarioSpecRandomTopo: the random topology kinds build the same
// per-seed topologies as the in-process generators.
func TestScenarioSpecRandomTopo(t *testing.T) {
	sp := ScenarioSpec{
		Name:     "spec-random",
		Topo:     TopoSpec{Kind: "random", Nodes: 40, Mis: 5},
		PM:       80,
		Duration: "50ms",
	}
	s, err := sp.ToScenario()
	if err != nil {
		t.Fatal(err)
	}
	direct := DefaultScenario()
	direct.Name = "spec-random"
	direct.Topo = RandomTopo(40, 5)
	direct.PM = 80
	direct.Duration = 50 * sim.Millisecond
	got, err := Run(s, 7)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(direct, 7)
	if err != nil {
		t.Fatal(err)
	}
	if resultChecksum(got) != resultChecksum(want) {
		t.Fatal("spec-built random run differs from direct run")
	}
}

// TestScenarioSpecRoundTrip: a fully-populated spec survives a JSON
// round-trip field-for-field.
func TestScenarioSpecRoundTrip(t *testing.T) {
	sp := ScenarioSpec{
		Name:       "full",
		Topo:       TopoSpec{Kind: "random", Nodes: 40, Mis: 5},
		Protocol:   "802.11",
		Strategy:   "quarter-window",
		PM:         60,
		Duration:   "2s",
		BitRate:    1_000_000,
		Channel:    "v3",
		Shards:     2,
		BinSize:    "1s",
		QueueDepth: 4,
		Watchdog:   true,
		Faults: &FaultsSpec{
			FER:           0.1,
			Burst:         &GESpec{PGoodBad: 0.01, PBadGood: 0.2, BadFER: 1},
			ChurnInterval: "500ms",
		},
	}
	data, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeScenarioSpec(strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(sp)
	b, _ := json.Marshal(back)
	if string(a) != string(b) {
		t.Fatalf("round trip changed the spec:\n%s\n%s", a, b)
	}
	if _, err := back.ToScenario(); err != nil {
		t.Fatal(err)
	}
}

// TestScenarioSpecRejectsUnknownFields: a typo'd knob is an admission
// error, never a silently applied default.
func TestScenarioSpecRejectsUnknownFields(t *testing.T) {
	cases := []string{
		`{"name": "x", "topo": {"kind": "star", "senders": 1}, "duration": "1s", "pmm": 80}`,
		`{"name": "x", "topo": {"kind": "star", "senders": 1, "nods": 4}, "duration": "1s"}`,
		`{"name": "x", "topo": {"kind": "star", "senders": 1}, "duration": "1s"} extra`,
	}
	for _, c := range cases {
		if _, err := DecodeScenarioSpec(strings.NewReader(c)); err == nil {
			t.Fatalf("accepted %s", c)
		}
	}
}

// TestScenarioSpecValidation: bad specs fail at admission with
// field-naming errors.
func TestScenarioSpecValidation(t *testing.T) {
	cases := []struct {
		spec ScenarioSpec
		want string
	}{
		{ScenarioSpec{Topo: TopoSpec{Kind: "star", Senders: 1}, Duration: "1s"}, "no name"},
		{ScenarioSpec{Name: "x", Topo: TopoSpec{Kind: "ring"}, Duration: "1s"}, "topo kind"},
		{ScenarioSpec{Name: "x", Topo: TopoSpec{Kind: "star"}, Duration: "1s"}, "senders"},
		{ScenarioSpec{Name: "x", Topo: TopoSpec{Kind: "random"}, Duration: "1s"}, "nodes"},
		{ScenarioSpec{Name: "x", Topo: TopoSpec{Kind: "star", Senders: 1}}, "no duration"},
		{ScenarioSpec{Name: "x", Topo: TopoSpec{Kind: "star", Senders: 1}, Duration: "fast"}, "duration"},
		{ScenarioSpec{Name: "x", Topo: TopoSpec{Kind: "star", Senders: 1}, Duration: "1s", Protocol: "aloha"}, "protocol"},
		{ScenarioSpec{Name: "x", Topo: TopoSpec{Kind: "star", Senders: 1}, Duration: "1s", Strategy: "yolo"}, "strategy"},
		{ScenarioSpec{Name: "x", Topo: TopoSpec{Kind: "star", Senders: 1}, Duration: "1s", Channel: "v9"}, "channel"},
		{ScenarioSpec{Name: "x", Topo: TopoSpec{Kind: "star", Senders: 1}, Duration: "1s", Shards: 2}, "v3"},
		{ScenarioSpec{Name: "x", Topo: TopoSpec{Kind: "star", Senders: 1}, Duration: "1s", PM: 120}, "PM"},
	}
	for _, c := range cases {
		_, err := c.spec.ToScenario()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("spec %+v: error %v, want mention of %q", c.spec, err, c.want)
		}
	}
}

// TestConfigSpecRoundTrip: the figure-generator config materialises over
// DefaultConfig and survives decode with unknown fields rejected.
func TestConfigSpec(t *testing.T) {
	cs, err := DecodeConfigSpec(strings.NewReader(
		`{"duration": "5s", "seeds": 3, "pms": [0, 50], "channel": "v2"}`))
	if err != nil {
		t.Fatal(err)
	}
	c, err := cs.ToConfig()
	if err != nil {
		t.Fatal(err)
	}
	if c.Duration != 5*sim.Second || len(c.Seeds) != 3 || len(c.PMs) != 2 {
		t.Fatalf("config: %+v", c)
	}
	def := DefaultConfig()
	if len(c.NetworkSizes) != len(def.NetworkSizes) {
		t.Fatal("defaults not applied")
	}
	if _, err := DecodeConfigSpec(strings.NewReader(`{"duraton": "5s"}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := (ConfigSpec{Seeds: 2, SeedList: []uint64{5}}).ToConfig(); err == nil {
		t.Fatal("seeds + seed_list accepted")
	}
}
