package experiment

import (
	"errors"
	"strings"
	"testing"
	"time"

	"dcfguard/internal/sim"
	"dcfguard/internal/topo"
)

// quickScenario returns a short CORRECT-protocol star run used across
// the guard/journal tests (fast, but long enough to fire real traffic).
func quickScenario(name string) Scenario {
	s := DefaultScenario()
	s.Name = name
	s.PM = 80
	s.Duration = 200 * sim.Millisecond
	return s
}

// TestRunGuardedMatchesRun: guarding a healthy run must not perturb it.
func TestRunGuardedMatchesRun(t *testing.T) {
	s := quickScenario("guarded-baseline")
	plain, err := Run(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	guarded, err := RunGuarded(s, 1, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if resultChecksum(plain) != resultChecksum(guarded) {
		t.Fatal("RunGuarded perturbed a healthy run's result")
	}
}

// TestRunGuardedRecoversPanic: a panic inside the run becomes a
// *SeedFailure carrying the message and stack instead of killing the
// process.
func TestRunGuardedRecoversPanic(t *testing.T) {
	s := quickScenario("guarded-panic")
	s.Topo = func(uint64) *topo.Topology { panic("injected topology bug") }
	_, err := RunGuarded(s, 7, 0)
	var f *SeedFailure
	if !errors.As(err, &f) {
		t.Fatalf("got %v, want *SeedFailure", err)
	}
	if f.Scenario != "guarded-panic" || f.Seed != 7 {
		t.Fatalf("failure identifies %q seed %d", f.Scenario, f.Seed)
	}
	if !strings.Contains(f.Panic, "injected topology bug") {
		t.Fatalf("Panic = %q, want the panic message", f.Panic)
	}
	if !strings.Contains(f.Stack, "goroutine") {
		t.Fatal("failure carries no stack trace")
	}
	dump := f.Dump()
	for _, want := range []string{"guarded-panic", "seed 7", "panic", "stack:"} {
		if !strings.Contains(dump, want) {
			t.Fatalf("Dump() missing %q:\n%s", want, dump)
		}
	}
}

// TestRunGuardedWatchdogTimeout: a run exceeding its wall-time budget is
// cancelled via the scheduler's interrupt flag and reported as timed out,
// with the progress snapshot filled in.
func TestRunGuardedWatchdogTimeout(t *testing.T) {
	s := quickScenario("guarded-timeout")
	// Hours of simulated backlogged traffic: cannot finish inside the
	// budget, so only the watchdog can end the run.
	s.Duration = 10_000 * sim.Second
	_, err := RunGuarded(s, 1, 50*time.Millisecond)
	var f *SeedFailure
	if !errors.As(err, &f) {
		t.Fatalf("got %v, want *SeedFailure", err)
	}
	if !f.TimedOut {
		t.Fatalf("failure not marked TimedOut: %v", f)
	}
	if f.Timeout != 50*time.Millisecond {
		t.Fatalf("Timeout = %v, want 50ms", f.Timeout)
	}
	if f.Events == 0 {
		t.Fatal("timed-out run reports zero events fired")
	}
	if f.SimTime <= 0 || f.SimTime >= s.Duration {
		t.Fatalf("timed-out run's sim clock %v outside (0, %v)", f.SimTime, s.Duration)
	}
	if !strings.Contains(f.Error(), "timed out") {
		t.Fatalf("Error() = %q", f.Error())
	}
}

// TestRunGuardedShardedTimeout: the watchdog must stop a SHARDED run
// too — Interrupt reaches every shard scheduler and the barrier loop,
// the group exits at a window boundary, and the SeedFailure snapshot is
// coherent (events from all shards, a clock inside the run).
func TestRunGuardedShardedTimeout(t *testing.T) {
	s := quickScenario("guarded-sharded-timeout")
	s.Protocol = Protocol80211
	s.Topo = ScaledRandomTopo(200, 25)
	s.Channel = ChannelV3
	s.Shards = 4
	// Hours of simulated traffic: only the watchdog can end the run.
	s.Duration = 10_000 * sim.Second
	_, err := RunGuarded(s, 1, 50*time.Millisecond)
	var f *SeedFailure
	if !errors.As(err, &f) {
		t.Fatalf("got %v, want *SeedFailure", err)
	}
	if !f.TimedOut {
		t.Fatalf("failure not marked TimedOut: %v", f)
	}
	if f.Events == 0 {
		t.Fatal("interrupted sharded run reports zero events fired")
	}
	if f.SimTime <= 0 || f.SimTime >= s.Duration {
		t.Fatalf("interrupted sharded run's sim clock %v outside (0, %v)", f.SimTime, s.Duration)
	}
	if !strings.Contains(f.Dump(), "watchdog") {
		t.Fatalf("Dump() missing the watchdog cause:\n%s", f.Dump())
	}
}

// TestRunGuardedWrapsSetupError: plain setup/validation errors also come
// back as *SeedFailure so sweep plumbing handles exactly one error shape.
func TestRunGuardedWrapsSetupError(t *testing.T) {
	s := quickScenario("guarded-invalid")
	s.Duration = 0
	_, err := RunGuarded(s, 1, 0)
	var f *SeedFailure
	if !errors.As(err, &f) {
		t.Fatalf("got %v, want *SeedFailure", err)
	}
	if f.TimedOut || f.Panic != "" || f.Err == "" {
		t.Fatalf("setup error misclassified: %+v", f)
	}
}
