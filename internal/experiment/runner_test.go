package experiment

import (
	"strings"
	"testing"

	"dcfguard/internal/phys"
	"dcfguard/internal/sim"
	"dcfguard/internal/stats"
)

// quick returns a short scenario for test runs.
func quick() Scenario {
	s := DefaultScenario()
	s.Duration = 5 * sim.Second
	return s
}

// twoRay returns the two-ray ground propagation variant.
func twoRay() phys.Shadowing {
	return phys.DefaultTwoRay()
}

func TestRunHonestBaseline(t *testing.T) {
	s := quick()
	s.Protocol = Protocol80211
	s.Topo = StarTopo(8, false)
	r, err := Run(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 8 saturated senders on 2 Mbps: total goodput in the ~1.1-1.3 Mbps
	// band given the exchange overheads.
	if r.TotalKbps < 1000 || r.TotalKbps > 1400 {
		t.Fatalf("total = %.1f Kbps, want ≈1200", r.TotalKbps)
	}
	if r.Fairness < 0.95 {
		t.Fatalf("fairness = %.3f for identical honest senders", r.Fairness)
	}
	if r.CorrectDiagnosisPct != 0 || r.MisdiagnosisPct != 0 {
		t.Fatal("802.11 run produced diagnosis metrics without a monitor")
	}
	if len(r.ThroughputBySender) != 8 {
		t.Fatalf("throughput map has %d senders", len(r.ThroughputBySender))
	}
}

func TestRunDeterministicAcrossCalls(t *testing.T) {
	s := quick()
	s.PM = 60
	a, err := Run(s, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(s, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalKbps != b.TotalKbps || a.CorrectDiagnosisPct != b.CorrectDiagnosisPct ||
		a.EventsFired != b.EventsFired {
		t.Fatalf("same seed produced different results:\n%+v\n%+v", a, b)
	}
}

func TestRunSeedsVary(t *testing.T) {
	s := quick()
	s.Protocol = Protocol80211
	a, err := Run(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalKbps == b.TotalKbps && a.EventsFired == b.EventsFired {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestRun80211MisbehaverGains(t *testing.T) {
	s := quick()
	s.Protocol = Protocol80211
	s.PM = 80
	r, err := Run(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.AvgMisbehaverKbps < 1.5*r.AvgHonestKbps {
		t.Fatalf("802.11 misbehaver MSB=%.1f vs AVG=%.1f: expected a large unfair gain",
			r.AvgMisbehaverKbps, r.AvgHonestKbps)
	}
}

func TestRunCorrectContainsMisbehaver(t *testing.T) {
	s := quick()
	s.Protocol = ProtocolCorrect
	s.PM = 80
	r, err := Run(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.AvgMisbehaverKbps > 1.5*r.AvgHonestKbps {
		t.Fatalf("CORRECT misbehaver MSB=%.1f vs AVG=%.1f: containment failed",
			r.AvgMisbehaverKbps, r.AvgHonestKbps)
	}
	if r.CorrectDiagnosisPct < 80 {
		t.Fatalf("correct diagnosis %.1f%% at PM=80, want high", r.CorrectDiagnosisPct)
	}
	if r.MisdiagnosisPct > 5 {
		t.Fatalf("misdiagnosis %.1f%% in zero-flow, want ≈0", r.MisdiagnosisPct)
	}
}

func TestRunTwoFlowProducesMisdiagnosisPressure(t *testing.T) {
	s := quick()
	s.Topo = StarTopo(8, true, 3)
	s.Protocol = ProtocolCorrect
	s.PM = 0
	r, err := Run(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The interferer flows make some honest packets look deviant; the
	// paper's trade-off requires a nonzero misdiagnosis rate here.
	if r.MisdiagnosisPct == 0 {
		t.Fatal("two-flow scenario produced no misdiagnosis; interferers ineffective")
	}
}

func TestRunSeriesProduced(t *testing.T) {
	s := quick()
	s.PM = 80
	s.BinSize = sim.Second
	r, err := Run(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) < 4 {
		t.Fatalf("series has %d bins for a 5 s run", len(r.Series))
	}
	late := r.Series[len(r.Series)-1]
	if late.CorrectPct < 80 {
		t.Fatalf("late-bin correct%% = %.1f at PM=80", late.CorrectPct)
	}
}

func TestRunTrace(t *testing.T) {
	s := quick()
	s.Duration = 200 * sim.Millisecond
	s.TraceEvents = 50
	r, err := Run(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Trace == nil || r.Trace.Len() == 0 {
		t.Fatal("trace scenario produced no trace")
	}
	if r.Trace.Len() > 50 {
		t.Fatalf("trace holds %d events, cap was 50", r.Trace.Len())
	}
	sum := r.Trace.Summarize()
	if sum.RTS == 0 || sum.CTS == 0 || sum.Data == 0 || sum.Ack == 0 {
		t.Fatalf("trace summary missing frame types: %+v", sum)
	}
	if sum.Delivered == 0 {
		t.Fatalf("trace recorded no deliveries: %+v", sum)
	}
}

func TestRunNoTraceByDefault(t *testing.T) {
	s := quick()
	s.Duration = 100 * sim.Millisecond
	r, err := Run(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Trace != nil {
		t.Fatal("trace recorded without TraceEvents")
	}
}

func TestRunDelayMetrics(t *testing.T) {
	s := quick()
	s.Protocol = Protocol80211
	s.PM = 80
	r, err := Run(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.AvgHonestDelayMs <= 0 || r.AvgMisbehaverDelayMs <= 0 {
		t.Fatalf("delays = (%v, %v), want positive", r.AvgHonestDelayMs, r.AvgMisbehaverDelayMs)
	}
	// Lower delay is the misbehaver's other prize under plain 802.11.
	if r.AvgMisbehaverDelayMs >= r.AvgHonestDelayMs {
		t.Fatalf("802.11 misbehaver delay %v not below honest %v",
			r.AvgMisbehaverDelayMs, r.AvgHonestDelayMs)
	}
}

func TestRunCorrectEqualisesDelay(t *testing.T) {
	s := quick()
	s.Protocol = ProtocolCorrect
	s.PM = 80
	r, err := Run(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	ratio := r.AvgMisbehaverDelayMs / r.AvgHonestDelayMs
	if ratio < 0.6 || ratio > 1.8 {
		t.Fatalf("CORRECT delay ratio = %.2f (MSB %v, AVG %v), want near 1",
			ratio, r.AvgMisbehaverDelayMs, r.AvgHonestDelayMs)
	}
}

func TestRunTwoRayPropagation(t *testing.T) {
	s := quick()
	s.Shadowing = twoRay()
	s.Protocol = Protocol80211
	r, err := Run(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalKbps < 900 {
		t.Fatalf("two-ray star carried only %.1f Kbps", r.TotalKbps)
	}
}

func TestRunValidation(t *testing.T) {
	s := quick()
	s.Duration = 0
	if _, err := Run(s, 1); err == nil {
		t.Fatal("zero duration accepted")
	}
	s = quick()
	s.PM = 150
	if _, err := Run(s, 1); err == nil {
		t.Fatal("PM=150 accepted")
	}
	s = quick()
	s.Topo = nil
	if _, err := Run(s, 1); err == nil {
		t.Fatal("nil topology accepted")
	}
	s = quick()
	s.Protocol = 0
	if _, err := Run(s, 1); err == nil {
		t.Fatal("invalid protocol accepted")
	}
	s = quick()
	s.Strategy = 0
	if _, err := Run(s, 1); err == nil {
		t.Fatal("invalid strategy accepted")
	}
}

func TestRunRandomTopology(t *testing.T) {
	s := quick()
	s.Topo = RandomTopo(20, 3)
	s.PM = 80
	r, err := Run(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalKbps == 0 {
		t.Fatal("random topology carried no traffic")
	}
	if len(r.ThroughputBySender) != 20 {
		t.Fatalf("throughput map has %d of 20 flows", len(r.ThroughputBySender))
	}
}

func TestRunStrategies(t *testing.T) {
	for _, strat := range []Strategy{StrategyQuarterWindow, StrategyNoDoubling, StrategyAttemptLiar} {
		s := quick()
		s.Protocol = Protocol80211
		s.Strategy = strat
		s.PM = 50
		if _, err := Run(s, 1); err != nil {
			t.Fatalf("strategy %v failed: %v", strat, err)
		}
	}
}

func TestRunSeedsAggregation(t *testing.T) {
	s := quick()
	s.Protocol = Protocol80211
	agg, err := RunSeeds(s, Seeds(4))
	if err != nil {
		t.Fatal(err)
	}
	if agg.Runs != 4 {
		t.Fatalf("runs = %d", agg.Runs)
	}
	if agg.TotalKbps.N != 4 || agg.TotalKbps.Mean < 1000 {
		t.Fatalf("total summary = %+v", agg.TotalKbps)
	}
	if agg.TotalKbps.CI95 <= 0 {
		t.Fatal("CI95 not computed across seeds")
	}
}

func TestRunSeedsMatchesSequentialRuns(t *testing.T) {
	s := quick()
	s.PM = 40
	agg, err := RunSeeds(s, []uint64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := Run(s, 1)
	r2, _ := Run(s, 2)
	want := (r1.TotalKbps + r2.TotalKbps) / 2
	if diff := agg.TotalKbps.Mean - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("parallel aggregate %.3f != sequential mean %.3f", agg.TotalKbps.Mean, want)
	}
}

func TestAggregateSeriesPooling(t *testing.T) {
	// The pooled series must weight per-run percentages by packet
	// counts, not average them naively.
	results := []Result{
		{Series: []stats.SeriesPoint{{Start: 0, CorrectPct: 100, Packets: 30}}},
		{Series: []stats.SeriesPoint{{Start: 0, CorrectPct: 0, Packets: 10}}},
	}
	agg := aggregate("x", results)
	if len(agg.Series) != 1 {
		t.Fatalf("series bins = %d", len(agg.Series))
	}
	// 30 of 40 packets correct → 75%.
	if got := agg.Series[0].CorrectPct; got != 75 {
		t.Fatalf("pooled pct = %v, want 75", got)
	}
	if agg.Series[0].Packets != 40 {
		t.Fatalf("pooled packets = %d, want 40", agg.Series[0].Packets)
	}
}

func TestAggregateUnevenSeriesLengths(t *testing.T) {
	results := []Result{
		{Series: []stats.SeriesPoint{{Start: 0, CorrectPct: 50, Packets: 10}}},
		{Series: []stats.SeriesPoint{
			{Start: 0, CorrectPct: 50, Packets: 10},
			{Start: sim.Second, CorrectPct: 100, Packets: 4},
		}},
	}
	agg := aggregate("x", results)
	if len(agg.Series) != 2 {
		t.Fatalf("series bins = %d, want 2 (longest run wins)", len(agg.Series))
	}
	if agg.Series[1].CorrectPct != 100 || agg.Series[1].Packets != 4 {
		t.Fatalf("tail bin = %+v", agg.Series[1])
	}
}

func TestRunSeedsEmpty(t *testing.T) {
	if _, err := RunSeeds(quick(), nil); err == nil {
		t.Fatal("empty seed list accepted")
	}
}

func TestSeedsHelper(t *testing.T) {
	s := Seeds(3)
	if len(s) != 3 || s[0] != 1 || s[2] != 3 {
		t.Fatalf("Seeds(3) = %v", s)
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "T", Columns: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	out := tb.Render()
	for _, want := range []string{"T\n", "| a  ", "| bb |", "| 333 |"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Title: "T", Columns: []string{"a", "b"}}
	tb.AddRow("1,5", `say "hi"`)
	csv := tb.CSV()
	want := "a,b\n\"1,5\",\"say \"\"hi\"\"\"\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

func TestTableRowArityPanics(t *testing.T) {
	tb := &Table{Title: "T", Columns: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Fatal("bad arity did not panic")
		}
	}()
	tb.AddRow("only one")
}

func TestProtocolStrategyStrings(t *testing.T) {
	if Protocol80211.String() != "802.11" || ProtocolCorrect.String() != "CORRECT" {
		t.Fatal("protocol names wrong")
	}
	if StrategyPartial.String() != "partial" || StrategyAttemptLiar.String() != "attempt-liar" {
		t.Fatal("strategy names wrong")
	}
	if Protocol(9).String() == "" || Strategy(9).String() == "" {
		t.Fatal("unknown values must still render")
	}
}
