package experiment

import (
	"fmt"
	"strings"
	"time"
)

// Report combines rendered tables (and optional charts) into a single
// markdown document — the artifact cmd/figures writes with -report.
type Report struct {
	Title    string
	Preamble string
	sections []reportSection
}

type reportSection struct {
	table *Table
	chart string
}

// Add appends a table section; withChart also embeds its ASCII chart
// when the table has numeric columns.
func (r *Report) Add(t *Table, withChart bool) {
	sec := reportSection{table: t}
	if withChart && len(t.Columns) > 1 {
		yCols := make([]int, 0, len(t.Columns)-1)
		for c := 1; c < len(t.Columns); c++ {
			yCols = append(yCols, c)
		}
		if plot := t.Chart(64, 16, 0, yCols...); !strings.Contains(plot, "no data") {
			sec.chart = plot
		}
	}
	r.sections = append(r.sections, sec)
}

// Len returns the number of sections added so far.
func (r *Report) Len() int { return len(r.sections) }

// Markdown renders the report. generatedIn, when positive, is recorded
// in the footer.
func (r *Report) Markdown(generatedIn time.Duration) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n\n", r.Title)
	if r.Preamble != "" {
		fmt.Fprintf(&b, "%s\n\n", r.Preamble)
	}
	for _, sec := range r.sections {
		fmt.Fprintf(&b, "## %s\n\n", sec.table.Title)
		// The Render output is already a markdown-compatible table,
		// minus its own title line.
		lines := strings.SplitN(sec.table.Render(), "\n", 2)
		if len(lines) == 2 {
			b.WriteString(lines[1])
		}
		b.WriteByte('\n')
		if sec.chart != "" {
			// Drop the chart's duplicate title line inside the fence.
			chartLines := strings.SplitN(sec.chart, "\n", 2)
			body := sec.chart
			if len(chartLines) == 2 {
				body = chartLines[1]
			}
			fmt.Fprintf(&b, "```\n%s```\n\n", body)
		}
	}
	if generatedIn > 0 {
		fmt.Fprintf(&b, "---\ngenerated in %v\n", generatedIn.Round(time.Millisecond))
	}
	return b.String()
}
