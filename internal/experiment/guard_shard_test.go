package experiment

import (
	"errors"
	"strings"
	"testing"
	"time"

	"dcfguard/internal/obs"
	"dcfguard/internal/sim"
)

// Crash forensics under sharding: a panic on a shard *worker goroutine*
// must produce the same quality of SeedFailure as a serial panic — the
// worker's own stack, the run's progress, and a coherent trace tail.
// The trace tail is the hard part: emissions buffer on per-shard fronts
// and only merge at barriers, so the deferred flush in run() has to
// drain them while the ShardPanic unwinds, or the dump would be missing
// the final window and interleaved across shards.
func TestRunGuardedShardWorkerPanic(t *testing.T) {
	s := quickScenario("guarded-shard-panic")
	s.Channel = ChannelV3
	s.Shards = 4
	s.Observe = &obs.Config{Categories: obs.AllCategories()}

	// Plant a bomb on shard 2's scheduler, mid-run. The hook fires after
	// assembly, right before the event loop starts.
	testKernelHook = func(k sim.Kernel) {
		grp, ok := k.(*sim.ShardGroup)
		if !ok {
			t.Fatalf("kernel is %T, want *sim.ShardGroup", k)
		}
		sc := grp.Shards()[2]
		sc.SetOwner(0)
		sc.At(50*sim.Millisecond, func() { panic("injected shard-worker bug") })
	}
	defer func() { testKernelHook = nil }()

	_, err := RunGuarded(s, 1, time.Minute)
	var f *SeedFailure
	if !errors.As(err, &f) {
		t.Fatalf("got %v, want *SeedFailure", err)
	}
	// The panic value is the ShardPanic wrapper: it names the shard.
	if !strings.Contains(f.Panic, "shard 2: injected shard-worker bug") {
		t.Fatalf("Panic = %q, want the shard-attributed message", f.Panic)
	}
	// The stack is the worker goroutine's, captured at the original
	// recovery site — not the coordinator's re-panic.
	if !strings.Contains(f.Stack, "runShardWindow") {
		t.Fatalf("Stack is not the shard worker's:\n%s", f.Stack)
	}
	if f.Events == 0 || f.SimTime == 0 {
		t.Fatalf("progress not captured: %d events, t=%v", f.Events, f.SimTime)
	}

	// The trace tail survived the crash, drained through the barrier-
	// preserving flush in serial (when, key, seq) emission order. Some
	// record kinds legally carry future stamps (an ack-mark's Time is
	// the ACK's end), so the coherence witness is the channel category,
	// whose records are stamped at fire time: across four shards their
	// times must never run backward, exactly as in a serial run.
	if len(f.TraceTail) == 0 {
		t.Fatal("shard-worker panic lost the trace tail")
	}
	var prev sim.Time
	channelRecs := 0
	for i, r := range f.TraceTail {
		if r.Cat != obs.CatChannel {
			continue
		}
		if r.Time < prev {
			t.Fatalf("trace tail out of order at %d: t=%d after t=%d",
				i, int64(r.Time), int64(prev))
		}
		prev = r.Time
		channelRecs++
	}
	if channelRecs == 0 {
		t.Fatal("trace tail carries no channel records to order-check")
	}

	// And the human-facing dump renders the whole story.
	dump := f.Dump()
	for _, want := range []string{"guarded-shard-panic", "shard 2", "runShardWindow", "trace tail"} {
		if !strings.Contains(dump, want) {
			t.Fatalf("Dump() missing %q:\n%s", want, dump)
		}
	}
}

// TestShardTelemetryRegisters: a sharded, metrics-enabled run populates
// the per-shard kernel telemetry — windows, per-shard event counters,
// barrier-wait histograms — in the run's registry.
func TestShardTelemetryRegisters(t *testing.T) {
	s := quickScenario("shard-telemetry")
	s.Channel = ChannelV3
	s.Shards = 2
	s.Observe = &obs.Config{Metrics: true}
	res, err := Run(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Obs.Reg().Snapshot()
	var windows, events uint64
	var sawWait, sawDepth bool
	for _, c := range snap.Counters {
		switch {
		case c.Scope == "shard" && c.Name == "windows":
			windows = c.Value
		case c.Scope == "shard" && c.Name == "events":
			events += c.Value
		}
	}
	for _, h := range snap.Histograms {
		if h.Scope == "shard" && h.Name == "barrier_wait_us" && h.Count > 0 {
			sawWait = true
		}
	}
	for _, g := range snap.Gauges {
		if g.Scope == "shard" && g.Name == "queue_depth" {
			sawDepth = true
		}
	}
	if windows == 0 {
		t.Fatal("no conservative windows counted")
	}
	if events != res.EventsFired {
		t.Fatalf("per-shard event counters sum to %d, kernel fired %d", events, res.EventsFired)
	}
	if !sawWait {
		t.Fatal("no barrier-wait samples recorded")
	}
	if !sawDepth {
		t.Fatal("no queue-depth gauge registered")
	}
}
