package experiment

import (
	"fmt"
	"sort"
	"testing"

	"dcfguard/internal/frame"
	"dcfguard/internal/sim"
)

// The determinism guard pins a golden checksum over every Result field
// for the three canonical scenarios, seeds 1-3. Its purpose is to prove
// that hot-path optimisations (the medium's mean-power cache, the event
// pool, the non-allocating RNG stream labels) do not perturb the RNG
// draw order or event ordering: any change to a single backoff draw or
// shadowing sample cascades into these metrics. The goldens were
// captured from the pre-optimisation implementation and must never be
// updated to "make the test pass" after a kernel change — a mismatch
// means the change is not behaviour-preserving.

// resultChecksum renders the deterministic Result fields canonically and
// hashes them with FNV-1a. Maps are rendered in sorted key order.
func resultChecksum(r Result) uint64 {
	s := fmt.Sprintf("%s|%d|%d|%.9g|%.9g|%.9g|%.9g|%.9g|%.9g|%.9g|%.9g|%d|%d|%d|%v|%d",
		r.Scenario, r.Seed, r.Duration,
		r.CorrectDiagnosisPct, r.MisdiagnosisPct,
		r.AvgHonestKbps, r.AvgMisbehaverKbps,
		r.AvgHonestDelayMs, r.AvgMisbehaverDelayMs,
		r.TotalKbps, r.Fairness,
		r.ProvenMisbehaviors, r.GreedyDetections, r.CollusionsDetected,
		r.ColludingPairs, r.EventsFired)
	ids := make([]int, 0, len(r.ThroughputBySender))
	for id := range r.ThroughputBySender {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		s += fmt.Sprintf("|%d:%.9g", id, r.ThroughputBySender[frame.NodeID(id)])
	}
	for _, p := range r.Series {
		s += fmt.Sprintf("|%d,%.9g,%d", p.Start, p.CorrectPct, p.Packets)
	}
	const (
		fnvOffset = 0xcbf29ce484222325
		fnvPrime  = 0x100000001b3
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// goldenScenarios returns the canonical scenarios at guard scale (2 s:
// long enough to exercise collisions, retries, diagnosis and the full
// monitor pipeline; short enough for the ordinary test run).
func goldenScenarios() []Scenario {
	star80211 := DefaultScenario()
	star80211.Channel = ChannelV1 // goldens captured on the v1 channel
	star80211.Name = "star-802.11"
	star80211.Protocol = Protocol80211
	star80211.PM = 80
	star80211.Duration = 2 * sim.Second

	starCorrect := DefaultScenario()
	starCorrect.Channel = ChannelV1
	starCorrect.Name = "star-correct"
	starCorrect.Protocol = ProtocolCorrect
	starCorrect.PM = 80
	starCorrect.Duration = 2 * sim.Second

	random40 := DefaultScenario()
	random40.Channel = ChannelV1
	random40.Name = "random-40"
	random40.Topo = RandomTopo(40, 5)
	random40.PM = 80
	random40.Duration = 2 * sim.Second

	return []Scenario{star80211, starCorrect, random40}
}

// goldenChecksums holds the pinned per-seed checksums, captured from the
// seed implementation (pre mean-power cache, pre event pool).
var goldenChecksums = map[string][3]uint64{
	"star-802.11":  {0xc125809c69f60dfa, 0x9a7c5ee1b56f27ac, 0x128d6ed50f170fc7},
	"star-correct": {0xc117dddaafa0627e, 0x75809d6fe9e83f0a, 0x67191de3ac51fa60},
	"random-40":    {0x4d80e0430e1db6, 0x953c1c841e458f8a, 0x7db9673e019763fe},
}

func TestDeterminismGolden(t *testing.T) {
	for _, s := range goldenScenarios() {
		want, ok := goldenChecksums[s.Name]
		if !ok {
			t.Fatalf("no golden for scenario %q", s.Name)
		}
		for seed := uint64(1); seed <= 3; seed++ {
			r, err := Run(s, seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", s.Name, seed, err)
			}
			got := resultChecksum(r)
			if got != want[seed-1] {
				t.Errorf("%s seed %d: checksum %#x, golden %#x — the kernel fast path perturbed RNG draw order or event ordering",
					s.Name, seed, got, want[seed-1])
			}
		}
	}
}

// TestDeterminismRepeatable asserts the weaker property that two runs of
// the same (scenario, seed) in one process are identical, independent of
// the goldens (catches accidental global state).
func TestDeterminismRepeatable(t *testing.T) {
	s := goldenScenarios()[1]
	a, err := Run(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if resultChecksum(a) != resultChecksum(b) {
		t.Fatal("same (scenario, seed) produced different results in one process")
	}
}
