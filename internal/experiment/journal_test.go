package experiment

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dcfguard/internal/atomicio"
	"dcfguard/internal/topo"
)

func sweepCells(t *testing.T) []SweepCell {
	t.Helper()
	a := quickScenario("sweep-a")
	b := quickScenario("sweep-b")
	b.Protocol = Protocol80211
	return []SweepCell{
		{Scenario: a, Seed: 1}, {Scenario: a, Seed: 2},
		{Scenario: b, Seed: 1}, {Scenario: b, Seed: 2},
	}
}

// TestRunSweepInMemory: a journal-less sweep reproduces direct Run
// results in cell order.
func TestRunSweepInMemory(t *testing.T) {
	cells := sweepCells(t)
	report, err := RunSweep(cells, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("failures: %v", report.Failures)
	}
	if report.Ran != len(cells) || report.Resumed != 0 {
		t.Fatalf("Ran=%d Resumed=%d, want %d/0", report.Ran, report.Resumed, len(cells))
	}
	for i, c := range cells {
		want, err := Run(c.Scenario, c.Seed)
		if err != nil {
			t.Fatal(err)
		}
		if resultChecksum(report.Results[i]) != resultChecksum(want) {
			t.Fatalf("cell %d (%s seed %d) differs from direct Run", i, c.Scenario.Name, c.Seed)
		}
	}
}

// TestRunSweepKillResume is the crash-recovery proof: a sweep killed
// mid-`atomicio.WriteFile` — the temp file written, the rename never
// reached, so a torn dot-prefixed temp sits in the journal directory —
// resumes from the journal, reruns only the unfinished cells (including
// the one whose checkpoint was torn), and the final CSV/JSON artifacts
// are byte-identical to an uninterrupted sweep's.
func TestRunSweepKillResume(t *testing.T) {
	cells := sweepCells(t)
	dir := t.TempDir()

	// Uninterrupted reference sweep (no journal).
	ref, err := RunSweep(cells, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	refCSV := ResultsCSV(ref.Results)
	refJSON, err := json.Marshal(ref.Results)
	if err != nil {
		t.Fatal(err)
	}

	// "Killed" first invocation: three cells execute, but the process
	// dies inside the third cell's journal write — after the temp file
	// hits disk, before the rename (the atomicio kill hook reproduces
	// that exact on-disk state).
	killKey := CellFileName(cells[2].Scenario.Name, cells[2].Seed)
	errKilled := errors.New("kill -9 before rename")
	atomicio.TestHookBeforeRename = func(tmpName, path string) error {
		if filepath.Base(path) == killKey {
			return errKilled
		}
		return nil
	}
	defer func() { atomicio.TestHookBeforeRename = nil }()
	_, err = RunSweep(cells[:3], SweepOptions{JournalDir: dir, Workers: 1})
	if !errors.Is(err, errKilled) {
		t.Fatalf("killed sweep returned %v, want the kill error", err)
	}
	atomicio.TestHookBeforeRename = nil

	// The kill left a torn temp file and no journal entry for the cell.
	torn, err := filepath.Glob(filepath.Join(dir, "."+killKey+".tmp-*"))
	if err != nil || len(torn) != 1 {
		t.Fatalf("torn temp files %v (err %v), want exactly one", torn, err)
	}
	if _, err := os.Stat(filepath.Join(dir, killKey)); !os.IsNotExist(err) {
		t.Fatalf("killed cell has a journal entry; the kill point missed")
	}

	// Resumed invocation over the full cell list: the torn temp file is
	// invisible (dot-prefixed temp names never match a journal key) and
	// the killed cell reruns alongside the never-started one.
	resumed, err := RunSweep(cells, SweepOptions{JournalDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.OK() {
		t.Fatalf("failures: %v", resumed.Failures)
	}
	if resumed.Resumed != 2 || resumed.Ran != 2 {
		t.Fatalf("Resumed=%d Ran=%d, want 2/2", resumed.Resumed, resumed.Ran)
	}
	if got := ResultsCSV(resumed.Results); got != refCSV {
		t.Fatalf("resumed CSV differs from uninterrupted sweep:\n--- resumed\n%s--- reference\n%s", got, refCSV)
	}
	gotJSON, err := json.Marshal(resumed.Results)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(refJSON) {
		t.Fatal("resumed JSON differs from uninterrupted sweep")
	}

	// Third invocation: everything journaled, nothing runs.
	again, err := RunSweep(cells, SweepOptions{JournalDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if again.Resumed != 4 || again.Ran != 0 {
		t.Fatalf("Resumed=%d Ran=%d, want 4/0", again.Resumed, again.Ran)
	}
	if got := ResultsCSV(again.Results); got != refCSV {
		t.Fatal("fully-resumed CSV differs from uninterrupted sweep")
	}
}

// TestRunSweepCorruptCellRerun: a malformed journal cell (torn write on
// a lying disk) is rerun rather than trusted, and the output still
// matches.
func TestRunSweepCorruptCellRerun(t *testing.T) {
	cells := sweepCells(t)
	dir := t.TempDir()
	if _, err := RunSweep(cells, SweepOptions{JournalDir: dir}); err != nil {
		t.Fatal(err)
	}
	corrupt := filepath.Join(dir, CellFileName(cells[1].Scenario.Name, cells[1].Seed))
	if err := os.WriteFile(corrupt, []byte(`{"Scenario": truncated`), 0o644); err != nil {
		t.Fatal(err)
	}
	report, err := RunSweep(cells, SweepOptions{JournalDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if report.Resumed != 3 || report.Ran != 1 {
		t.Fatalf("Resumed=%d Ran=%d, want 3/1", report.Resumed, report.Ran)
	}
	want, err := Run(cells[1].Scenario, cells[1].Seed)
	if err != nil {
		t.Fatal(err)
	}
	if resultChecksum(report.Results[1]) != resultChecksum(want) {
		t.Fatal("rerun of corrupt cell differs from direct Run")
	}
}

// TestRunSweepIsolatesFailures: one panicking cell must not take down
// the sweep — every healthy cell still completes, the failure is
// reported with diagnostics, and the failed cell is never journaled (so
// a rerun retries it).
func TestRunSweepIsolatesFailures(t *testing.T) {
	cells := sweepCells(t)
	bad := quickScenario("sweep-bad")
	bad.Topo = func(uint64) *topo.Topology { panic("cell bug") }
	cells = append(cells[:2:2], append([]SweepCell{{Scenario: bad, Seed: 1}}, cells[2:]...)...)

	dir := t.TempDir()
	report, err := RunSweep(cells, SweepOptions{JournalDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if report.OK() || len(report.Failures) != 1 {
		t.Fatalf("failures = %v, want exactly one", report.Failures)
	}
	f := report.Failures[0]
	if f.Scenario != "sweep-bad" || !strings.Contains(f.Panic, "cell bug") {
		t.Fatalf("failure misattributed: %+v", f)
	}
	for i, c := range cells {
		if c.Scenario.Name == "sweep-bad" {
			continue
		}
		if report.Results[i].Scenario != c.Scenario.Name {
			t.Fatalf("healthy cell %d missing its result", i)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, CellFileName("sweep-bad", 1))); !os.IsNotExist(err) {
		t.Fatal("failed cell was journaled; reruns would skip it")
	}
	rerun, err := RunSweep(cells, SweepOptions{JournalDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if rerun.Resumed != 4 || rerun.Ran != 1 || len(rerun.Failures) != 1 {
		t.Fatalf("rerun Resumed=%d Ran=%d failures=%d, want 4/1/1",
			rerun.Resumed, rerun.Ran, len(rerun.Failures))
	}
}

// TestRunSweepDuplicateKeys: cells that would shadow each other in the
// journal are rejected up front.
func TestRunSweepDuplicateKeys(t *testing.T) {
	s := quickScenario("dup")
	_, err := RunSweep([]SweepCell{{Scenario: s, Seed: 1}, {Scenario: s, Seed: 1}}, SweepOptions{})
	if err == nil || !strings.Contains(err.Error(), "journal key") {
		t.Fatalf("duplicate cells accepted: %v", err)
	}
}

// TestResultJSONRoundTrip: journaled Results survive JSON encode/decode
// with every deterministic field bit-intact — the property the
// byte-identical resume guarantee rests on.
func TestResultJSONRoundTrip(t *testing.T) {
	s := quickScenario("roundtrip")
	s.BinSize = 50 * s.Duration / 1000 // exercise the Series field too
	r, err := Run(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if resultChecksum(back) != resultChecksum(r) {
		t.Fatal("Result changed across a JSON round-trip")
	}
}
