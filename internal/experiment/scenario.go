// Package experiment assembles full simulation runs from the substrate
// packages and reproduces the paper's evaluation: scenario definitions,
// a deterministic single-run executor, parallel multi-seed aggregation,
// and one generator per paper figure (4 through 9) plus the ablations
// listed in DESIGN.md.
package experiment

import (
	"fmt"

	"dcfguard/internal/core"
	"dcfguard/internal/faults"
	"dcfguard/internal/frame"
	"dcfguard/internal/mac"
	"dcfguard/internal/medium"
	"dcfguard/internal/obs"
	"dcfguard/internal/phys"
	"dcfguard/internal/sim"
	"dcfguard/internal/topo"
)

// ChannelModel selects the medium's channel implementation.
type ChannelModel = medium.ChannelModel

const (
	// ChannelV1 is the original sequential-stream channel (the zero
	// value; bit-identical to the seed implementation). Kept selectable
	// for byte-exact reproduction of pre-v2 runs and goldens.
	ChannelV1 = medium.ChannelV1
	// ChannelV2 is the counter-RNG + spatial-index channel (see
	// internal/medium/index.go) — the default since DefaultScenario
	// flipped to it (DESIGN.md §10).
	ChannelV2 = medium.ChannelV2
	// ChannelV3 is v2 plus a uniform per-link propagation delay and
	// keyed event ordering (see internal/medium/v3.go) — required for
	// (and designed around) sharded runs with Scenario.Shards > 1,
	// DESIGN.md §11.
	ChannelV3 = medium.ChannelV3
)

// Protocol selects the MAC variant under test.
type Protocol int

const (
	// Protocol80211 is unmodified IEEE 802.11 DCF (the baseline).
	Protocol80211 Protocol = iota + 1
	// ProtocolCorrect is the paper's scheme: receiver-assigned backoff
	// with detection, correction and diagnosis.
	ProtocolCorrect
)

// String returns the protocol's name as used in the paper's figures.
func (p Protocol) String() string {
	switch p {
	case Protocol80211:
		return "802.11"
	case ProtocolCorrect:
		return "CORRECT"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// Strategy selects how misbehaving senders cheat.
type Strategy int

const (
	// StrategyPartial counts only (100−PM)% of each backoff — the
	// paper's parameterised misbehavior model.
	StrategyPartial Strategy = iota + 1
	// StrategyQuarterWindow draws from [0, CW/4] (the 802.11 example
	// misbehavior from the introduction).
	StrategyQuarterWindow
	// StrategyNoDoubling never doubles the contention window.
	StrategyNoDoubling
	// StrategyAttemptLiar counts (100−PM)% like Partial and also lies
	// in the RTS attempt field (countered by attempt verification).
	StrategyAttemptLiar
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case StrategyPartial:
		return "partial"
	case StrategyQuarterWindow:
		return "quarter-window"
	case StrategyNoDoubling:
		return "no-doubling"
	case StrategyAttemptLiar:
		return "attempt-liar"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Scenario describes one simulation configuration. Running it with a
// seed is a pure function: identical (Scenario, seed) pairs produce
// identical results.
type Scenario struct {
	// Name labels result tables.
	Name string
	// Topo builds the topology; it receives the run seed so random
	// topologies differ per run while star topologies ignore it.
	Topo func(seed uint64) *topo.Topology
	// Protocol selects baseline 802.11 or the paper's scheme.
	Protocol Protocol
	// Strategy and PM configure the misbehaving senders listed in the
	// topology. PM is the paper's "Percentage of Misbehavior".
	Strategy Strategy
	PM       int
	// Duration is the simulated time (the paper uses 50 s).
	Duration sim.Time
	// PayloadBytes is the CBR/backlogged packet size (paper: 512).
	PayloadBytes int
	// Core configures the monitor (used when Protocol == ProtocolCorrect).
	Core core.Params
	// MAC configures DCF timing and contention.
	MAC mac.Params
	// Shadowing configures propagation; Bitrate the channel rate.
	Shadowing phys.Shadowing
	BitRate   int64
	// RxRangeM and CsRangeM are the 50%-probability calibration
	// distances for reception and carrier sense. Zero selects the
	// paper's 250 m / 550 m. Shrinking CsRangeM below twice RxRangeM
	// creates hidden terminals.
	RxRangeM, CsRangeM float64
	// CoherenceInterval, when positive, enables sub-frame carrier-sense
	// re-draws in the medium.
	CoherenceInterval sim.Time
	// Channel selects the medium's channel model: ChannelV1 (the
	// zero value, bit-identical to the original goldens; the default
	// from DefaultScenario is ChannelV2) or ChannelV2 (per-pair
	// counter RNG + spatial neighbor index, for 200+ node topologies).
	Channel ChannelModel
	// Shards is the number of scheduler shards the run is spatially
	// partitioned across (0 and 1 both mean the serial kernel).
	// Shards > 1 requires ChannelV3, whose keyed event order makes
	// results independent of the shard count: a sharded run is
	// bit-identical to the serial run of the same scenario and seed.
	Shards int
	// BinSize enables the Figure-8 diagnosis time series when positive.
	BinSize sim.Time
	// QueueDepth is the backlogged-source refill depth.
	QueueDepth int
	// VerifyReceiverAtSenders enables the §4.4 sender-side audit of
	// assignments against G (only meaningful with ProtocolCorrect).
	VerifyReceiverAtSenders bool
	// GreedyReceivers lists receivers whose monitor misbehaves by
	// assigning zero base backoff (§4.4's greedy-receiver threat),
	// overriding Core.AssignMode for those nodes only.
	GreedyReceivers []frame.NodeID
	// ColludingReceivers lists receivers that collude with their
	// senders: zero base assignments *and* waived penalties (§4.4).
	// Only a third-party Watchdog can expose them.
	ColludingReceivers []frame.NodeID
	// Watchdog places a passive third-party observer at the centroid of
	// the topology, running §4.4's collusion detection. Results appear
	// in Result.CollusionsDetected / Result.ColludingPairs.
	Watchdog bool
	// TraceEvents, when positive, records up to that many frame
	// transmissions in Result.Trace (text timeline and pcap export).
	TraceEvents int
	// Faults configures channel-error and node-churn fault injection
	// (see internal/faults). The zero value disables everything, and a
	// disabled config consumes no RNG draws, so the v1/v2 goldens are
	// bit-identical with faults off.
	Faults faults.Config
	// Observe configures the observability layer (metrics registry,
	// decision-trace bus; see internal/obs). Nil disables everything.
	// Observability is pass-through: enabling it changes no RNG draw and
	// schedules no event, so results are bit-identical either way
	// (pinned by the obs determinism test).
	Observe *obs.Config
}

// DefaultScenario returns the paper's base configuration: Figure-3
// ZERO-FLOW star with 8 senders, node 3 misbehaving with StrategyPartial,
// 50 s runs, 512 B packets, 2 Mbps channel, shadowing with σ = 1 dB.
// The channel model defaults to v2 (counter-RNG + spatial index);
// results are statistically equivalent to v1 but not draw-for-draw
// identical — set Channel = ChannelV1 (macsim -channel v1) to reproduce
// the paper-exact v1 goldens.
func DefaultScenario() Scenario {
	return Scenario{
		Name:         "zero-flow",
		Topo:         StarTopo(8, false, 3),
		Protocol:     ProtocolCorrect,
		Strategy:     StrategyPartial,
		PM:           0,
		Duration:     50 * sim.Second,
		PayloadBytes: 512,
		Core:         core.DefaultParams(),
		MAC:          mac.DefaultParams(),
		Shadowing:    phys.DefaultShadowing(),
		BitRate:      2_000_000,
		BinSize:      0,
		QueueDepth:   8,
		Channel:      ChannelV2,
	}
}

// StarTopo returns a topology builder for the Figure-3 star with the
// given misbehaving sender IDs (pass no IDs for a fully honest network).
func StarTopo(nSenders int, twoFlow bool, misbehaving ...int) func(uint64) *topo.Topology {
	ids := make([]frame.NodeID, 0, len(misbehaving))
	for _, id := range misbehaving {
		ids = append(ids, frame.NodeID(id))
	}
	return func(uint64) *topo.Topology {
		return topo.Star(nSenders, twoFlow, ids)
	}
}

// Validate reports whether the scenario is runnable.
func (s Scenario) Validate() error {
	switch {
	case s.Topo == nil:
		return fmt.Errorf("experiment: %s: nil topology builder", s.Name)
	case s.Duration <= 0:
		return fmt.Errorf("experiment: %s: duration %v", s.Name, s.Duration)
	case s.PayloadBytes <= 0:
		return fmt.Errorf("experiment: %s: payload %d", s.Name, s.PayloadBytes)
	case s.PM < 0 || s.PM > 100:
		return fmt.Errorf("experiment: %s: PM %d", s.Name, s.PM)
	case s.BitRate <= 0:
		return fmt.Errorf("experiment: %s: bit rate %d", s.Name, s.BitRate)
	case s.QueueDepth < 1:
		return fmt.Errorf("experiment: %s: queue depth %d", s.Name, s.QueueDepth)
	}
	switch s.Protocol {
	case Protocol80211, ProtocolCorrect:
	default:
		return fmt.Errorf("experiment: %s: invalid protocol %d", s.Name, s.Protocol)
	}
	switch s.Strategy {
	case StrategyPartial, StrategyQuarterWindow, StrategyNoDoubling, StrategyAttemptLiar:
	default:
		return fmt.Errorf("experiment: %s: invalid strategy %d", s.Name, s.Strategy)
	}
	switch s.Channel {
	case ChannelV1, ChannelV2, ChannelV3:
	default:
		return fmt.Errorf("experiment: %s: invalid channel model %d", s.Name, int(s.Channel))
	}
	if s.Channel == ChannelV3 {
		if s.CoherenceInterval > 0 {
			return fmt.Errorf("experiment: %s: channel model v3 does not support a coherence interval", s.Name)
		}
		// v3's propagation delay must hide inside DCF's 2-slot response
		// timeout slack (internal/medium/v3.go); δ ≥ slot would make
		// CTS/ACK timeouts fire before the delayed response lands.
		if s.MAC.SlotTime <= medium.V3PropDelay {
			return fmt.Errorf("experiment: %s: channel model v3 needs slot time > %v propagation delay, have %v",
				s.Name, medium.V3PropDelay, s.MAC.SlotTime)
		}
	}
	if s.Shards < 0 {
		return fmt.Errorf("experiment: %s: negative shard count %d", s.Name, s.Shards)
	}
	if s.Shards > 1 && s.Channel != ChannelV3 {
		// The sharded kernel's correctness argument (DESIGN.md §11)
		// needs v3's propagation-delay lookahead and keyed ordering.
		// Faults, frame tracing, and decision tracing are all
		// shard-ready: per-shard fault streams, and barrier-merged trace
		// fan-in (DESIGN.md §12) keep them bit-identical to serial.
		return fmt.Errorf("experiment: %s: %d shards require channel model v3, have %v",
			s.Name, s.Shards, s.Channel)
	}
	if err := s.MAC.Validate(); err != nil {
		return fmt.Errorf("experiment: %s: %w", s.Name, err)
	}
	if s.Protocol == ProtocolCorrect {
		if err := s.Core.Validate(); err != nil {
			return fmt.Errorf("experiment: %s: %w", s.Name, err)
		}
	}
	if err := s.Faults.Validate(); err != nil {
		return fmt.Errorf("experiment: %s: %w", s.Name, err)
	}
	if err := s.Observe.Validate(); err != nil {
		return fmt.Errorf("experiment: %s: %w", s.Name, err)
	}
	return s.Shadowing.Validate()
}
