package experiment

// Serializable experiment specs: the wire form of a Scenario. A Scenario
// itself cannot round-trip through JSON — Topo is a function and Observe
// carries live sinks — so the sweep daemon (internal/serve) and the
// macsim -submit client exchange ScenarioSpec values instead: plain data
// that names a topology constructively and spells enums as their
// figure-label strings. DecodeScenarioSpec rejects unknown fields, so a
// typo in a submitted spec is a 4xx at admission, not a silently default
// knob; ToScenario applies DefaultScenario's defaults to absent fields
// and then runs the full Scenario.Validate gate.

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"dcfguard/internal/core"
	"dcfguard/internal/faults"
	"dcfguard/internal/frame"
	"dcfguard/internal/mac"
	"dcfguard/internal/phys"
	"dcfguard/internal/sim"
	"dcfguard/internal/topo"
)

// TopoSpec names a topology constructively — by generator and
// parameters, never by coordinates — so the builder it yields is the
// same pure function of the run seed the in-process generators produce.
type TopoSpec struct {
	// Kind selects the generator: "star" (the Figure-3 star),
	// "random" (Figure 9's 1500 m × 700 m arena), or "scaled-random"
	// (the sparse corridor behind RunRandom200/400).
	Kind string `json:"kind"`
	// Senders, TwoFlow and Misbehaving parameterise Kind "star".
	Senders     int   `json:"senders,omitempty"`
	TwoFlow     bool  `json:"two_flow,omitempty"`
	Misbehaving []int `json:"misbehaving,omitempty"`
	// Nodes and Mis parameterise Kind "random" and "scaled-random".
	Nodes int `json:"nodes,omitempty"`
	Mis   int `json:"mis,omitempty"`
}

// Build returns the topology builder the spec names.
func (t TopoSpec) Build() (func(uint64) *topo.Topology, error) {
	switch t.Kind {
	case "star":
		if t.Senders < 1 {
			return nil, fmt.Errorf("experiment: topo star: senders %d", t.Senders)
		}
		return StarTopo(t.Senders, t.TwoFlow, t.Misbehaving...), nil
	case "random":
		if t.Nodes < 1 {
			return nil, fmt.Errorf("experiment: topo random: nodes %d", t.Nodes)
		}
		return RandomTopo(t.Nodes, t.Mis), nil
	case "scaled-random":
		if t.Nodes < 1 {
			return nil, fmt.Errorf("experiment: topo scaled-random: nodes %d", t.Nodes)
		}
		return ScaledRandomTopo(t.Nodes, t.Mis), nil
	default:
		return nil, fmt.Errorf("experiment: unknown topo kind %q (want star, random, or scaled-random)", t.Kind)
	}
}

// GESpec is the wire form of faults.GE.
type GESpec struct {
	PGoodBad float64 `json:"p_good_bad"`
	PBadGood float64 `json:"p_bad_good"`
	GoodFER  float64 `json:"good_fer"`
	BadFER   float64 `json:"bad_fer"`
}

// FaultsSpec is the wire form of faults.Config, with intervals spelled
// as Go duration strings.
type FaultsSpec struct {
	FER           float64 `json:"fer,omitempty"`
	Burst         *GESpec `json:"burst,omitempty"`
	ChurnInterval string  `json:"churn_interval,omitempty"`
	ChurnDowntime string  `json:"churn_downtime,omitempty"`
}

// ScenarioSpec is the wire form of a Scenario: every serializable knob,
// with enums as strings, durations as Go duration strings ("2s",
// "750ms"), and the topology named constructively. Absent fields take
// DefaultScenario's values, so the minimal useful spec is just
// {"name": ..., "topo": {...}, "duration": ...}.
type ScenarioSpec struct {
	Name string   `json:"name"`
	Topo TopoSpec `json:"topo"`
	// Protocol is "802.11" or "CORRECT" (default "CORRECT");
	// Strategy is "partial", "quarter-window", "no-doubling", or
	// "attempt-liar" (default "partial").
	Protocol string `json:"protocol,omitempty"`
	Strategy string `json:"strategy,omitempty"`
	PM       int    `json:"pm,omitempty"`
	Duration string `json:"duration"`
	// PayloadBytes, BitRate and QueueDepth default to the paper's
	// 512 B / 2 Mbps / depth 8 when zero.
	PayloadBytes int `json:"payload_bytes,omitempty"`
	// Core, MAC and Shadowing override the default parameter blocks
	// when non-nil (field names are the Go struct names).
	Core              *core.Params    `json:"core,omitempty"`
	MAC               *mac.Params     `json:"mac,omitempty"`
	Shadowing         *phys.Shadowing `json:"shadowing,omitempty"`
	BitRate           int64           `json:"bit_rate,omitempty"`
	RxRangeM          float64         `json:"rx_range_m,omitempty"`
	CsRangeM          float64         `json:"cs_range_m,omitempty"`
	CoherenceInterval string          `json:"coherence_interval,omitempty"`
	// Channel is "v1", "v2" (default), or "v3".
	Channel                 string      `json:"channel,omitempty"`
	Shards                  int         `json:"shards,omitempty"`
	BinSize                 string      `json:"bin_size,omitempty"`
	QueueDepth              int         `json:"queue_depth,omitempty"`
	VerifyReceiverAtSenders bool        `json:"verify_receiver_at_senders,omitempty"`
	GreedyReceivers         []int       `json:"greedy_receivers,omitempty"`
	ColludingReceivers      []int       `json:"colluding_receivers,omitempty"`
	Watchdog                bool        `json:"watchdog,omitempty"`
	TraceEvents             int         `json:"trace_events,omitempty"`
	Faults                  *FaultsSpec `json:"faults,omitempty"`
}

// ParseProtocol maps a wire protocol name to its enum; "" selects the
// default (CORRECT).
func ParseProtocol(s string) (Protocol, error) {
	switch s {
	case "", "CORRECT", "correct":
		return ProtocolCorrect, nil
	case "802.11", "80211":
		return Protocol80211, nil
	default:
		return 0, fmt.Errorf("experiment: unknown protocol %q (want 802.11 or CORRECT)", s)
	}
}

// ParseStrategy maps a wire strategy name to its enum; "" selects the
// default (partial).
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "", "partial":
		return StrategyPartial, nil
	case "quarter-window":
		return StrategyQuarterWindow, nil
	case "no-doubling":
		return StrategyNoDoubling, nil
	case "attempt-liar":
		return StrategyAttemptLiar, nil
	default:
		return 0, fmt.Errorf("experiment: unknown strategy %q (want partial, quarter-window, no-doubling, or attempt-liar)", s)
	}
}

// ParseChannel maps a wire channel name to its model; "" selects the
// default (v2).
func ParseChannel(s string) (ChannelModel, error) {
	switch s {
	case "", "v2":
		return ChannelV2, nil
	case "v1":
		return ChannelV1, nil
	case "v3":
		return ChannelV3, nil
	default:
		return 0, fmt.Errorf("experiment: unknown channel model %q (want v1, v2, or v3)", s)
	}
}

// parseSimTime parses an optional Go duration string into simulated
// time; "" yields zero.
func parseSimTime(field, s string) (sim.Time, error) {
	if s == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("experiment: %s: %w", field, err)
	}
	return sim.Time(d), nil
}

func nodeIDs(ids []int) []frame.NodeID {
	if len(ids) == 0 {
		return nil
	}
	out := make([]frame.NodeID, len(ids))
	for i, id := range ids {
		out[i] = frame.NodeID(id)
	}
	return out
}

// ToScenario materialises the spec: defaults applied, enums parsed,
// topology built, and the result passed through Scenario.Validate so a
// bad spec fails at admission rather than mid-run.
func (sp ScenarioSpec) ToScenario() (Scenario, error) {
	s := DefaultScenario()
	s.Name = sp.Name
	if s.Name == "" {
		return Scenario{}, fmt.Errorf("experiment: spec has no name")
	}
	var err error
	if s.Topo, err = sp.Topo.Build(); err != nil {
		return Scenario{}, err
	}
	if s.Protocol, err = ParseProtocol(sp.Protocol); err != nil {
		return Scenario{}, err
	}
	if s.Strategy, err = ParseStrategy(sp.Strategy); err != nil {
		return Scenario{}, err
	}
	if s.Channel, err = ParseChannel(sp.Channel); err != nil {
		return Scenario{}, err
	}
	if sp.Duration == "" {
		return Scenario{}, fmt.Errorf("experiment: spec %q has no duration", sp.Name)
	}
	if s.Duration, err = parseSimTime("duration", sp.Duration); err != nil {
		return Scenario{}, err
	}
	if s.CoherenceInterval, err = parseSimTime("coherence_interval", sp.CoherenceInterval); err != nil {
		return Scenario{}, err
	}
	if s.BinSize, err = parseSimTime("bin_size", sp.BinSize); err != nil {
		return Scenario{}, err
	}
	s.PM = sp.PM
	if sp.PayloadBytes != 0 {
		s.PayloadBytes = sp.PayloadBytes
	}
	if sp.Core != nil {
		s.Core = *sp.Core
	}
	if sp.MAC != nil {
		s.MAC = *sp.MAC
	}
	if sp.Shadowing != nil {
		s.Shadowing = *sp.Shadowing
	}
	if sp.BitRate != 0 {
		s.BitRate = sp.BitRate
	}
	s.RxRangeM = sp.RxRangeM
	s.CsRangeM = sp.CsRangeM
	s.Shards = sp.Shards
	if sp.QueueDepth != 0 {
		s.QueueDepth = sp.QueueDepth
	}
	s.VerifyReceiverAtSenders = sp.VerifyReceiverAtSenders
	s.GreedyReceivers = nodeIDs(sp.GreedyReceivers)
	s.ColludingReceivers = nodeIDs(sp.ColludingReceivers)
	s.Watchdog = sp.Watchdog
	s.TraceEvents = sp.TraceEvents
	if sp.Faults != nil {
		s.Faults.FER = sp.Faults.FER
		if sp.Faults.Burst != nil {
			s.Faults.Burst = &faults.GE{
				PGoodBad: sp.Faults.Burst.PGoodBad,
				PBadGood: sp.Faults.Burst.PBadGood,
				GoodFER:  sp.Faults.Burst.GoodFER,
				BadFER:   sp.Faults.Burst.BadFER,
			}
		}
		if s.Faults.ChurnInterval, err = parseSimTime("churn_interval", sp.Faults.ChurnInterval); err != nil {
			return Scenario{}, err
		}
		if s.Faults.ChurnDowntime, err = parseSimTime("churn_downtime", sp.Faults.ChurnDowntime); err != nil {
			return Scenario{}, err
		}
	}
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// DecodeScenarioSpec decodes one JSON spec, rejecting unknown fields and
// trailing garbage.
func DecodeScenarioSpec(r io.Reader) (ScenarioSpec, error) {
	var sp ScenarioSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		return ScenarioSpec{}, fmt.Errorf("experiment: decoding spec: %w", err)
	}
	if err := trailingJSON(dec); err != nil {
		return ScenarioSpec{}, err
	}
	return sp, nil
}

// ConfigSpec is the wire form of Config, the figure-generator scale
// block. Absent fields take DefaultConfig's values; Seeds counts seeds
// 1..n while SeedList pins an explicit set (at most one of the two).
type ConfigSpec struct {
	Duration     string    `json:"duration,omitempty"`
	Seeds        int       `json:"seeds,omitempty"`
	SeedList     []uint64  `json:"seed_list,omitempty"`
	PMs          []int     `json:"pms,omitempty"`
	NetworkSizes []int     `json:"network_sizes,omitempty"`
	Fig8PMs      []int     `json:"fig8_pms,omitempty"`
	FERs         []float64 `json:"fers,omitempty"`
	Channel      string    `json:"channel,omitempty"`
}

// ToConfig materialises the spec over DefaultConfig.
func (cs ConfigSpec) ToConfig() (Config, error) {
	c := DefaultConfig()
	var err error
	if cs.Duration != "" {
		if c.Duration, err = parseSimTime("duration", cs.Duration); err != nil {
			return Config{}, err
		}
	}
	if cs.Seeds != 0 && len(cs.SeedList) > 0 {
		return Config{}, fmt.Errorf("experiment: config spec sets both seeds and seed_list")
	}
	if cs.Seeds < 0 {
		return Config{}, fmt.Errorf("experiment: config spec seeds %d", cs.Seeds)
	}
	if cs.Seeds > 0 {
		c.Seeds = Seeds(cs.Seeds)
	}
	if len(cs.SeedList) > 0 {
		c.Seeds = append([]uint64(nil), cs.SeedList...)
	}
	if cs.PMs != nil {
		c.PMs = cs.PMs
	}
	if cs.NetworkSizes != nil {
		c.NetworkSizes = cs.NetworkSizes
	}
	if cs.Fig8PMs != nil {
		c.Fig8PMs = cs.Fig8PMs
	}
	if cs.FERs != nil {
		c.FERs = cs.FERs
	}
	if c.Channel, err = ParseChannel(cs.Channel); err != nil {
		return Config{}, err
	}
	return c, nil
}

// DecodeConfigSpec decodes one JSON config spec, rejecting unknown
// fields and trailing garbage.
func DecodeConfigSpec(r io.Reader) (ConfigSpec, error) {
	var cs ConfigSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cs); err != nil {
		return ConfigSpec{}, fmt.Errorf("experiment: decoding config spec: %w", err)
	}
	if err := trailingJSON(dec); err != nil {
		return ConfigSpec{}, err
	}
	return cs, nil
}

func trailingJSON(dec *json.Decoder) error {
	if _, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("experiment: trailing data after spec")
	}
	return nil
}
