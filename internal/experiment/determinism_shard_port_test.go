package experiment

import (
	"testing"

	"dcfguard/internal/faults"
	"dcfguard/internal/obs"
	"dcfguard/internal/sim"
)

// Sharded fault/trace/obs goldens — the correctness pin for the port of
// the gated layers onto the sharded kernel (DESIGN.md §12). The claim
// under test is the strongest the repo makes: with fault injection,
// frame tracing, and full decision tracing all enabled, a sharded run
// is bit-identical to the serial run for ANY shard count — same result
// checksum, same fault drops and restarts, same trace record stream in
// the same order, same frame timeline. `make shards` runs this file
// under -race, which also exercises the fan-in's single-owner buffers.
//
// The pinned checksums were captured from the serial (Shards = 1) runs
// when the port landed and must never be updated to make the test pass:
// a mismatch means a change perturbed the injector's counter-RNG
// discipline, the churn schedule, or the keyed event order.

// shardFaultScenarios are the v3 siblings of faultGoldenScenarios, on
// the 120-node spatial topology sharding exists for: a fixed-FER run, a
// Gilbert burst-loss run, and a churn run that also drops frames (so
// one scenario exercises both fault paths at once).
func shardFaultScenarios() []Scenario {
	base := func(name string) Scenario {
		s := DefaultScenario()
		s.Name = name
		s.Protocol = ProtocolCorrect
		s.Topo = ScaledRandomTopo(120, 15)
		s.PM = 80
		s.Duration = 250 * sim.Millisecond
		s.Channel = ChannelV3
		return s
	}

	fer := base("shard-faults-fer20-v3")
	fer.Faults.FER = 0.20

	burst := base("shard-faults-burst20-v3")
	ge := faults.GEForMeanFER(0.20, 0.25)
	burst.Faults.Burst = &ge

	churn := base("shard-faults-churn-v3")
	churn.Faults.FER = 0.10
	churn.Faults.ChurnInterval = 60 * sim.Millisecond
	churn.Faults.ChurnDowntime = 20 * sim.Millisecond

	return []Scenario{fer, burst, churn}
}

var shardFaultGoldenChecksums = map[string][2]uint64{
	"shard-faults-fer20-v3":   {0xbeb098afa93f1c50, 0x939ccdf2e0be32b8},
	"shard-faults-burst20-v3": {0x3e2eb8ada9cc9bf7, 0x3f80b048d2480e4a},
	"shard-faults-churn-v3":   {0xa5698732e7138cf5, 0x39ebedafe64ef12d},
}

// TestShardFaultGoldenV3 pins fault-injected runs — serial and sharded
// alike — to one golden per (scenario, seed): partitioning must not
// move a fault decision, a churn instant, or any downstream metric.
func TestShardFaultGoldenV3(t *testing.T) {
	for _, s := range shardFaultScenarios() {
		want, ok := shardFaultGoldenChecksums[s.Name]
		if !ok {
			t.Fatalf("no golden for scenario %q", s.Name)
		}
		for _, shards := range []int{1, 2, 4, 7} {
			s.Shards = shards
			for seed := uint64(1); seed <= 2; seed++ {
				r, err := Run(s, seed)
				if err != nil {
					t.Fatalf("%s shards=%d seed %d: %v", s.Name, shards, seed, err)
				}
				if got := faultResultChecksum(r); got != want[seed-1] {
					t.Errorf("%s shards=%d seed %d: checksum %#x, golden %#x — sharding (or a change) perturbed fault injection",
						s.Name, shards, seed, got, want[seed-1])
				}
			}
		}
	}
}

// TestShardFaultsActuallyInject guards the sharded goldens against
// vacuity, at a shard count that actually partitions the links.
func TestShardFaultsActuallyInject(t *testing.T) {
	for _, s := range shardFaultScenarios() {
		s.Shards = 4
		r, err := Run(s, 1)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if s.Faults.ErrorsEnabled() && r.FaultDrops == 0 {
			t.Errorf("%s: error model enabled but zero frames dropped", s.Name)
		}
		if s.Faults.ChurnEnabled() && r.Restarts == 0 {
			t.Errorf("%s: churn enabled but zero restarts completed", s.Name)
		}
	}
}

// recordingSink retains every record, in emission order: the witness
// for stream-exact equality between serial and sharded tracing.
type recordingSink struct{ recs []obs.Record }

func (c *recordingSink) Emit(r obs.Record) { c.recs = append(c.recs, r) }

// TestShardTraceStreamInvariance is the strongest sharding claim: with
// the FULL observability stack on — every trace category, metrics, the
// crash ring, frame tracing, and fault injection — a sharded run must
// reproduce the serial run's record stream record-for-record IN ORDER,
// the same crash-ring tail, the same frame timeline text, and the same
// result checksum, for shard counts {2, 4, 7}.
func TestShardTraceStreamInvariance(t *testing.T) {
	s := DefaultScenario()
	s.Name = "shard-trace-stream"
	s.Protocol = ProtocolCorrect
	s.Topo = ScaledRandomTopo(120, 15)
	s.PM = 80
	s.Duration = 150 * sim.Millisecond
	s.Channel = ChannelV3
	s.Faults.FER = 0.10
	s.TraceEvents = 200000

	run := func(shards int) (Result, *recordingSink) {
		s.Shards = shards
		sink := &recordingSink{}
		s.Observe = fullObserve(sink)
		r, err := Run(s, 1)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return r, sink
	}

	ref, refSink := run(1)
	refSum := faultResultChecksum(ref)
	if len(refSink.recs) == 0 {
		t.Fatal("serial run emitted no trace records")
	}
	if ref.Trace.Len() == 0 {
		t.Fatal("serial run recorded no frame timeline")
	}
	refTail := ref.Obs.TraceTail()
	refText := ref.Trace.Text()

	for _, shards := range []int{2, 4, 7} {
		r, sink := run(shards)
		if got := faultResultChecksum(r); got != refSum {
			t.Errorf("shards=%d: checksum %#x, serial %#x", shards, got, refSum)
		}
		if len(sink.recs) != len(refSink.recs) {
			t.Errorf("shards=%d: %d trace records, serial emitted %d",
				shards, len(sink.recs), len(refSink.recs))
		} else {
			for i := range sink.recs {
				if sink.recs[i] != refSink.recs[i] {
					t.Errorf("shards=%d: record %d = %v, serial %v — merged order diverged",
						shards, i, sink.recs[i], refSink.recs[i])
					break
				}
			}
		}
		tail := r.Obs.TraceTail()
		if len(tail) != len(refTail) {
			t.Errorf("shards=%d: trace tail %d records, serial %d", shards, len(tail), len(refTail))
		} else {
			for i := range tail {
				if tail[i] != refTail[i] {
					t.Errorf("shards=%d: tail record %d diverged from serial", shards, i)
					break
				}
			}
		}
		if text := r.Trace.Text(); text != refText {
			t.Errorf("shards=%d: frame timeline diverged from serial", shards)
		}
	}
}
