package experiment

import (
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"time"

	"dcfguard/internal/obs"
	"dcfguard/internal/sim"
)

// SeedFailure describes one (scenario, seed) run that did not produce a
// result: it panicked, exceeded its wall-time budget, or failed during
// setup. The sweep runner isolates such cells — the rest of the sweep
// still completes — and reports them so the caller can exit non-zero
// with a diagnostic dump instead of losing the whole experiment.
type SeedFailure struct {
	// Scenario and Seed identify the failed cell.
	Scenario string
	Seed     uint64
	// Panic and Stack capture a recovered panic (empty otherwise).
	Panic string
	Stack string
	// TimedOut is set when the watchdog cancelled the run; Timeout is
	// the budget it enforced.
	TimedOut bool
	Timeout  time.Duration
	// Err records a non-panic run error (setup/validation), if any.
	Err string
	// Events and SimTime locate how far the run got before it died.
	Events  uint64
	SimTime sim.Time
	// TraceTail is the run's last buffered decision-trace records
	// (oldest first), drained from the obs ring buffer when the scenario
	// enabled tracing — the "what was the sim doing when it died" part
	// of the crash report.
	TraceTail []obs.Record
}

// Error implements error.
func (f *SeedFailure) Error() string {
	switch {
	case f.TimedOut:
		return fmt.Sprintf("experiment: %s seed %d: timed out after %v (%d events, t=%v)",
			f.Scenario, f.Seed, f.Timeout, f.Events, f.SimTime)
	case f.Panic != "":
		return fmt.Sprintf("experiment: %s seed %d: panic: %s", f.Scenario, f.Seed, f.Panic)
	default:
		return fmt.Sprintf("experiment: %s seed %d: %s", f.Scenario, f.Seed, f.Err)
	}
}

// Dump renders the full diagnostic block — scenario, seed, progress and
// (for panics) the stack — for the end-of-sweep failure report.
func (f *SeedFailure) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "--- seed failure: scenario %q seed %d ---\n", f.Scenario, f.Seed)
	switch {
	case f.TimedOut:
		fmt.Fprintf(&b, "cause: wall-time watchdog fired after %v\n", f.Timeout)
	case f.Panic != "":
		fmt.Fprintf(&b, "cause: panic: %s\n", f.Panic)
	default:
		fmt.Fprintf(&b, "cause: %s\n", f.Err)
	}
	fmt.Fprintf(&b, "progress: %d events fired, sim clock t=%v\n", f.Events, f.SimTime)
	if f.Stack != "" {
		b.WriteString("stack:\n")
		b.WriteString(f.Stack)
		if !strings.HasSuffix(f.Stack, "\n") {
			b.WriteByte('\n')
		}
	}
	if len(f.TraceTail) > 0 {
		fmt.Fprintf(&b, "trace tail (last %d events):\n", len(f.TraceTail))
		for _, r := range f.TraceTail {
			b.WriteString("  ")
			b.WriteString(r.String())
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// RunGuarded executes the scenario like Run, but isolates the two ways a
// run can take the whole process (or sweep) down with it:
//
//   - a panic anywhere inside the run is recovered and reported as a
//     *SeedFailure carrying the stack and the run's progress;
//   - when timeout > 0, a watchdog cancels the run's event loop once the
//     wall-time budget is exhausted (via the scheduler's goroutine-safe
//     Interrupt flag, polled every few thousand events), reported the
//     same way.
//
// Every returned failure is a *SeedFailure (errors.As-able); successful
// runs are bit-identical to Run for the same (scenario, seed).
func RunGuarded(s Scenario, seed uint64, timeout time.Duration) (res Result, err error) {
	var kernel sim.Kernel
	var rt *obs.Runtime
	var watchdog *time.Timer
	armed := func(k sim.Kernel, r *obs.Runtime) {
		kernel = k
		rt = r
		if timeout > 0 {
			// The watchdog measures the host's wall clock on purpose: it
			// guards against a hung *process*, not simulated time, and the
			// sim clock cannot advance once the loop is stuck. Interrupt is
			// the kernel's goroutine-safe cancellation point (for sharded
			// runs it stops every shard and the barrier loop), so no
			// wall-clock value ever reaches simulation state.
			watchdog = time.AfterFunc(timeout, kernel.Interrupt) //detlint:allow wallclock -- wall-time budget for hung runs; touches only the atomic interrupt flag
		}
	}
	defer func() {
		if watchdog != nil {
			watchdog.Stop()
		}
		if r := recover(); r != nil {
			stack := string(debug.Stack())
			if sp, ok := r.(*sim.ShardPanic); ok {
				// A shard-worker panic re-panics on the coordinator; the
				// stack that matters is the worker's, captured at the
				// original recovery site.
				stack = string(sp.Stack)
			}
			f := &SeedFailure{
				Scenario: s.Name,
				Seed:     seed,
				Panic:    fmt.Sprint(r),
				Stack:    stack,
				// TraceTail is nil-safe: rt stays nil when the scenario
				// enables no tracing or the panic predates armed().
				TraceTail: rt.TraceTail(),
			}
			if kernel != nil {
				f.Events = kernel.EventsFired()
				f.SimTime = kernel.Now()
			}
			res, err = Result{}, f
		}
	}()
	res, err = run(s, seed, armed)
	if err != nil {
		var f *SeedFailure
		if errors.As(err, &f) {
			f.Timeout = timeout
		} else {
			err = &SeedFailure{Scenario: s.Name, Seed: seed, Err: err.Error()}
		}
	}
	return res, err
}
