package experiment

import (
	"fmt"
	"math"

	"dcfguard/internal/faults"
)

// faultBurstRecovery is the Bad→Good recovery probability used for the
// burst column of ExtFaultTolerance: mean burst length 1/0.25 = 4 lost
// frames, long enough to swallow a whole RTS/CTS/DATA/ACK exchange.
const faultBurstRecovery = 0.25

// FaultToleranceCells enumerates the ExtFaultTolerance sweep as
// journalable (scenario, seed) cells: an all-honest 8-sender CORRECT
// star, FER swept over cfg.FERs, each rate run twice — i.i.d. losses and
// a Gilbert burst chain with the same long-run rate. With no misbehaving
// sender every diagnosis is a false one, so MisdiagnosisPct is exactly
// the paper-scheme's false-accusation rate under channel error.
func FaultToleranceCells(cfg Config) []SweepCell {
	var cells []SweepCell
	for _, fer := range cfg.FERs {
		for _, burst := range []bool{false, true} {
			s := cfg.base(faultScenarioName(fer, burst), false)
			s.Protocol = ProtocolCorrect
			if burst {
				if fer > 0 {
					ge := faults.GEForMeanFER(fer, faultBurstRecovery)
					s.Faults.Burst = &ge
				}
			} else {
				s.Faults.FER = fer
			}
			for _, seed := range cfg.Seeds {
				cells = append(cells, SweepCell{Scenario: s, Seed: seed})
			}
		}
	}
	return cells
}

func faultScenarioName(fer float64, burst bool) string {
	kind := "iid"
	if burst {
		kind = "burst"
	}
	return fmt.Sprintf("fault-fer%g-%s", math.Round(fer*100), kind)
}

// ExtFaultTolerance quantifies the detection scheme's fragility to
// imperfect channels: the false-diagnosis rate of *correct* senders as
// the frame-error rate grows from 0 to 30 %, for i.i.d. and bursty
// losses. It runs as a resumable sweep — pass SweepOptions with a
// JournalDir to checkpoint cells, and a SeedTimeout to bound each run —
// and keeps going past failed cells: the table is built from the cells
// that completed, and the report carries the diagnostics for the rest.
func ExtFaultTolerance(cfg Config, opts SweepOptions) (*Table, *SweepReport, error) {
	cells := FaultToleranceCells(cfg)
	rep, err := RunSweep(cells, opts)
	if err != nil {
		return nil, nil, err
	}
	report := &rep

	t := &Table{
		Title: "Extension: false diagnosis of correct senders vs frame-error rate",
		Columns: []string{"FER%",
			"iid misdiag%", "iid AVG Kbps", "iid drops",
			"burst misdiag%", "burst AVG Kbps", "burst drops"},
		Notes: []string{
			fmt.Sprintf("8 honest senders, CORRECT protocol, %d seeds, %v runs; burst = Gilbert chain, mean burst %g frames",
				len(cfg.Seeds), cfg.Duration, 1/faultBurstRecovery),
			"every diagnosis is false here: no sender misbehaves",
		},
	}

	// Group completed cells back into per-scenario result sets. Failed
	// cells are skipped (their zero Results carry no scenario name).
	byName := make(map[string][]Result, 2*len(cfg.FERs))
	for _, r := range report.Results {
		if r.Scenario != "" {
			byName[r.Scenario] = append(byName[r.Scenario], r)
		}
	}
	for _, fer := range cfg.FERs {
		row := []string{fmt.Sprintf("%g", math.Round(fer*100))}
		for _, burst := range []bool{false, true} {
			results := byName[faultScenarioName(fer, burst)]
			if len(results) == 0 {
				row = append(row, "-", "-", "-")
				continue
			}
			agg := AggregateResults(faultScenarioName(fer, burst), results)
			var drops uint64
			for _, r := range results {
				drops += r.FaultDrops
			}
			row = append(row,
				fmtCI(agg.MisdiagnosisPct.Mean, agg.MisdiagnosisPct.CI95),
				fmtF(agg.AvgHonestKbps.Mean),
				fmt.Sprintf("%d", drops/uint64(len(results))))
		}
		t.AddRow(row...)
	}
	return t, report, nil
}
