package experiment

import (
	"strings"
	"testing"
	"time"
)

func TestReportMarkdown(t *testing.T) {
	tb := &Table{Title: "Figure X", Columns: []string{"PM%", "MSB"}}
	tb.AddRow("0", "150.0")
	tb.AddRow("100", "1271.0")

	var r Report
	r.Title = "report"
	r.Preamble = "preamble text"
	r.Add(tb, true)
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}

	out := r.Markdown(3 * time.Second)
	for _, want := range []string{
		"# report", "preamble text", "## Figure X",
		"| PM% | MSB", "| 100 | 1271.0", "```", "generated in 3s",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestReportWithoutChart(t *testing.T) {
	tb := &Table{Title: "labels only", Columns: []string{"a", "b"}}
	tb.AddRow("x", "y") // non-numeric: chart must be omitted
	var r Report
	r.Add(tb, true)
	out := r.Markdown(0)
	if strings.Contains(out, "```") {
		t.Fatalf("chart fenced block present for non-numeric table:\n%s", out)
	}
	if strings.Contains(out, "generated in") {
		t.Fatal("footer present without duration")
	}
}
