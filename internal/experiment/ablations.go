package experiment

import (
	"fmt"
	"strconv"

	"dcfguard/internal/core"
	"dcfguard/internal/frame"
	"dcfguard/internal/phys"
	"dcfguard/internal/stats"
	"dcfguard/internal/topo"
)

// AblationPenaltyFactor quantifies the design choice DESIGN.md calls
// out: the "additional penalty" multiplier on the measured deviation.
// Factor 1.0 is pure D (no extra penalty, the naive reading of §4.2);
// larger factors hold aggressive misbehavers closer to their fair share
// at the cost of harsher treatment of borderline senders.
func AblationPenaltyFactor(cfg Config, factors []float64) (*Table, error) {
	cols := []string{"PM%"}
	for _, f := range factors {
		cols = append(cols, fmt.Sprintf("MSB f=%.2f", f), fmt.Sprintf("AVG f=%.2f", f))
	}
	t := &Table{
		Title:   "Ablation A1: penalty factor vs misbehaver containment (Kbps)",
		Columns: cols,
	}
	for _, pm := range cfg.PMs {
		row := []string{strconv.Itoa(pm)}
		for _, f := range factors {
			s := cfg.base(fmt.Sprintf("a1-f%.2f-pm%d", f, pm), false, 3)
			s.Protocol = ProtocolCorrect
			s.PM = pm
			s.Core.PenaltyFactor = f
			agg, err := RunSeeds(s, cfg.Seeds)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtF(agg.AvgMisbehaverKbps.Mean), fmtF(agg.AvgHonestKbps.Mean))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// AblationAlpha sweeps the deviation tolerance α (§4.1): smaller α lets
// misbehavers elude the correction scheme; α = 1 flags every slot of
// shortfall including measurement noise.
func AblationAlpha(cfg Config, alphas []float64) (*Table, error) {
	cols := []string{"PM%"}
	for _, a := range alphas {
		cols = append(cols, fmt.Sprintf("correct%% α=%.1f", a), fmt.Sprintf("misdiag%% α=%.1f", a))
	}
	t := &Table{
		Title:   "Ablation A2: alpha sensitivity (two-flow diagnosis accuracy)",
		Columns: cols,
	}
	for _, pm := range cfg.PMs {
		row := []string{strconv.Itoa(pm)}
		for _, a := range alphas {
			s := cfg.base(fmt.Sprintf("a2-alpha%.1f-pm%d", a, pm), true, 3)
			s.Protocol = ProtocolCorrect
			s.PM = pm
			s.Core.Alpha = a
			agg, err := RunSeeds(s, cfg.Seeds)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtF(agg.CorrectDiagnosisPct.Mean), fmtF(agg.MisdiagnosisPct.Mean))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// WindowPoint is one (W, THRESH) configuration for AblationWindow.
type WindowPoint struct {
	W      int
	Thresh float64
}

// AblationWindow sweeps the diagnosis parameters W and THRESH (§4.3):
// the correct-diagnosis / misdiagnosis trade-off the paper discusses.
func AblationWindow(cfg Config, points []WindowPoint) (*Table, error) {
	cols := []string{"PM%"}
	for _, p := range points {
		cols = append(cols,
			fmt.Sprintf("correct%% W=%d T=%.0f", p.W, p.Thresh),
			fmt.Sprintf("misdiag%% W=%d T=%.0f", p.W, p.Thresh))
	}
	t := &Table{
		Title:   "Ablation A3: diagnosis window W and THRESH (two-flow)",
		Columns: cols,
	}
	for _, pm := range cfg.PMs {
		row := []string{strconv.Itoa(pm)}
		for _, p := range points {
			s := cfg.base(fmt.Sprintf("a3-w%d-t%.0f-pm%d", p.W, p.Thresh, pm), true, 3)
			s.Protocol = ProtocolCorrect
			s.PM = pm
			s.Core.Window = p.W
			s.Core.Thresh = p.Thresh
			agg, err := RunSeeds(s, cfg.Seeds)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtF(agg.CorrectDiagnosisPct.Mean), fmtF(agg.MisdiagnosisPct.Mean))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// AblationAttemptVerification pits the attempt-lying misbehaver against
// the §4.1 verification extension: without verification the liar's
// retry backoffs are under-estimated (B_exp too small, negative diffs),
// so it escapes penalties; with verification the intentional-drop check
// proves misbehavior outright.
func AblationAttemptVerification(cfg Config) (*Table, error) {
	t := &Table{
		Title: "Ablation A4: attempt-number verification vs attempt-lying misbehaver",
		Columns: []string{"verification", "PM%", "MSB Kbps", "AVG Kbps",
			"correct%", "proofs/run"},
	}
	for _, verify := range []bool{false, true} {
		for _, pm := range cfg.PMs {
			if pm == 0 {
				continue // an honest "liar" is a contradiction
			}
			s := cfg.base(fmt.Sprintf("a4-verify%t-pm%d", verify, pm), false, 3)
			s.Protocol = ProtocolCorrect
			s.Strategy = StrategyAttemptLiar
			s.PM = pm
			s.Core.VerifyAttempts = verify
			s.Core.VerifyDropProb = 0.05
			agg, err := RunSeeds(s, cfg.Seeds)
			if err != nil {
				return nil, err
			}
			t.AddRow(boolCell(verify), strconv.Itoa(pm),
				fmtF(agg.AvgMisbehaverKbps.Mean), fmtF(agg.AvgHonestKbps.Mean),
				fmtF(agg.CorrectDiagnosisPct.Mean),
				fmtF(float64(agg.ProvenMisbehaviors)/float64(agg.Runs)))
		}
	}
	return t, nil
}

// AblationReceiverMisbehavior studies §4.4's greedy receiver: two
// competing flows to two different receivers, one of which assigns zero
// base backoff to pull its own flow's data faster at the honest flow's
// expense. The sender-side G audit clamps the greedy assignments and
// restores fairness.
func AblationReceiverMisbehavior(cfg Config) (*Table, error) {
	t := &Table{
		Title: "Ablation A5: greedy receiver vs sender-side G verification",
		Columns: []string{"receiver", "sender audit",
			"honest-flow Kbps", "greedy-flow Kbps", "fairness", "detections/run"},
		Notes: []string{
			"two flows: sender 2 → honest receiver 0, sender 3 → receiver 1 (greedy in rows 3-4)",
		},
	}
	for _, greedyRecv := range []bool{false, true} {
		for _, audit := range []bool{false, true} {
			s := DefaultScenario()
			s.Name = fmt.Sprintf("a5-greedy%t-audit%t", greedyRecv, audit)
			s.Duration = cfg.Duration
			s.Channel = cfg.Channel
			s.Topo = receiverPairTopo()
			s.Protocol = ProtocolCorrect
			s.VerifyReceiverAtSenders = audit
			s.Core.AssignMode = core.AssignVerifiable
			if greedyRecv {
				s.GreedyReceivers = []frame.NodeID{1}
			}
			// RunAll fans the seeds across the worker pool but hands
			// results back in seed order, so the Welford accumulation
			// below stays deterministic.
			results, err := RunAll(s, cfg.Seeds)
			if err != nil {
				return nil, err
			}
			var honestFlow, greedyFlow, fair stats.Welford
			detections := 0
			for _, r := range results {
				honestFlow.Add(r.ThroughputBySender[2])
				greedyFlow.Add(r.ThroughputBySender[3])
				fair.Add(r.Fairness)
				detections += r.GreedyDetections
			}
			recv := "honest(G)"
			if greedyRecv {
				recv = "greedy(0)"
			}
			t.AddRow(recv, boolCell(audit),
				fmtF(honestFlow.Mean()), fmtF(greedyFlow.Mean()),
				fmtF3(fair.Mean()),
				fmtF(float64(detections)/float64(len(cfg.Seeds))))
		}
	}
	return t, nil
}

// AblationBasicAccess (A7) runs the scheme without the RTS/CTS
// handshake (the paper's footnote 2): DATA frames carry the attempt
// number, assignments ride only on ACKs, and the blocking response is
// ACK suppression. Detection quality and containment should track the
// RTS/CTS numbers closely in a single-cell topology.
func AblationBasicAccess(cfg Config) (*Table, error) {
	t := &Table{
		Title: "Ablation A7: RTS/CTS vs basic access (zero-flow, node 3 misbehaving)",
		Columns: []string{"access", "PM%", "MSB Kbps", "AVG Kbps",
			"correct%", "misdiag%"},
	}
	for _, basic := range []bool{false, true} {
		for _, pm := range cfg.PMs {
			s := cfg.base(fmt.Sprintf("a7-basic%t-pm%d", basic, pm), false, 3)
			s.Protocol = ProtocolCorrect
			s.PM = pm
			s.MAC.BasicAccess = basic
			agg, err := RunSeeds(s, cfg.Seeds)
			if err != nil {
				return nil, err
			}
			mode := "rts/cts"
			if basic {
				mode = "basic"
			}
			t.AddRow(mode, strconv.Itoa(pm),
				fmtF(agg.AvgMisbehaverKbps.Mean), fmtF(agg.AvgHonestKbps.Mean),
				fmtF(agg.CorrectDiagnosisPct.Mean), fmtF(agg.MisdiagnosisPct.Mean))
		}
	}
	return t, nil
}

// AblationAdaptiveThresh (A6) evaluates the adaptive THRESH selection
// the paper defers to future work: the monitor learns the channel's
// honest window-sum distribution and places the threshold at the Tukey
// fence. The trade the static THRESH=20 makes (misdiagnosis in noisy
// channels, missed mild misbehavior in clean ones) should narrow on
// both sides.
func AblationAdaptiveThresh(cfg Config) (*Table, error) {
	t := &Table{
		Title: "Ablation A6: adaptive THRESH (Tukey fence) vs static THRESH=20",
		Columns: []string{"scenario", "PM%",
			"static correct%", "static misdiag%",
			"adaptive correct%", "adaptive misdiag%"},
	}
	for _, twoFlow := range []bool{false, true} {
		for _, pm := range cfg.PMs {
			row := []string{flowName(twoFlow), strconv.Itoa(pm)}
			for _, adaptive := range []bool{false, true} {
				s := cfg.base(fmt.Sprintf("a6-%s-adaptive%t-pm%d", flowName(twoFlow), adaptive, pm), twoFlow, 3)
				s.Protocol = ProtocolCorrect
				s.PM = pm
				s.Core.AdaptiveThresh = adaptive
				agg, err := RunSeeds(s, cfg.Seeds)
				if err != nil {
					return nil, err
				}
				row = append(row, fmtF(agg.CorrectDiagnosisPct.Mean), fmtF(agg.MisdiagnosisPct.Mean))
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}

// ExtHiddenTerminal contrasts basic access with RTS/CTS under hidden
// terminals — the configuration footnote 2 glosses over. Two senders
// 400 m apart (outside each other's shortened 300 m carrier-sense
// range) feed one receiver between them: without the handshake their
// DATA frames collide wholesale; with it only the short RTSes do.
func ExtHiddenTerminal(cfg Config) (*Table, error) {
	t := &Table{
		Title: "Extension: hidden terminals — basic access vs RTS/CTS (CS range 300 m)",
		Columns: []string{"access", "total Kbps", "fairness",
			"avg delay ms"},
		Notes: []string{"S1(0) → R(200) ← S2(400); senders mutually hidden"},
	}
	for _, basic := range []bool{true, false} {
		s := DefaultScenario()
		s.Name = fmt.Sprintf("hidden-basic%t", basic)
		s.Duration = cfg.Duration
		s.Channel = cfg.Channel
		s.Protocol = Protocol80211
		s.MAC.BasicAccess = basic
		s.CsRangeM = 300
		s.Topo = func(uint64) *topo.Topology {
			return &topo.Topology{
				Positions: []phys.Point{{X: 200}, {X: 0}, {X: 400}},
				Flows:     []topo.Flow{{Src: 1, Dst: 0}, {Src: 2, Dst: 0}},
				Measured:  []frame.NodeID{1, 2},
				Receivers: []frame.NodeID{0},
			}
		}
		agg, err := RunSeeds(s, cfg.Seeds)
		if err != nil {
			return nil, err
		}
		mode := "rts/cts"
		if basic {
			mode = "basic"
		}
		t.AddRow(mode, fmtF(agg.TotalKbps.Mean), fmtF3(agg.Fairness.Mean),
			fmtF(agg.AvgHonestDelayMs.Mean))
	}
	return t, nil
}

// receiverPairTopo builds the A5 topology: receivers 0 and 1, senders
// 2 → 0 and 3 → 1, all mutually in range.
func receiverPairTopo() func(uint64) *topo.Topology {
	return func(uint64) *topo.Topology {
		return &topo.Topology{
			Positions: []phys.Point{
				{X: 0, Y: 0}, {X: 120, Y: 0}, {X: 0, Y: 100}, {X: 120, Y: 100},
			},
			Flows:     []topo.Flow{{Src: 2, Dst: 0}, {Src: 3, Dst: 1}},
			Measured:  []frame.NodeID{2, 3},
			Receivers: []frame.NodeID{0, 1},
		}
	}
}

func boolCell(b bool) string {
	if b {
		return "on"
	}
	return "off"
}
