package experiment

import (
	"testing"

	"dcfguard/internal/sim"
)

// Channel-model-v3 determinism goldens and the shard-equivalence
// quickcheck (DESIGN.md §11). v3's defining property is that the event
// stream is a pure function of (scenario, seed) for ANY shard count, so
// one golden pins serial and sharded runs alike:
//
//   - TestDeterminismGoldenV3 pins serial v3 runs, like the v1/v2
//     golden tests pin theirs.
//   - TestShardGoldenV3 re-runs the 400-node golden sharded and demands
//     the SAME checksum — the sharded kernel has no goldens of its own,
//     by construction.
//   - TestShardCountInvariance quickchecks shard counts {1, 2, 4, 7}
//     against each other across seeds (run under -race via `make
//     shards`).
//
// The pinned checksums were captured when v3 was introduced and must
// never be updated to "make the test pass": a mismatch means a change
// perturbed the counter-RNG keys, the keyed event order, or the
// propagation-delay bookkeeping.

// goldenScenarioV3Star is the monitored star under v3 — the small-
// topology path where every node hears every other.
func goldenScenarioV3Star() Scenario {
	s := DefaultScenario()
	s.Name = "star-correct-v3"
	s.Protocol = ProtocolCorrect
	s.PM = 80
	s.Duration = 2 * sim.Second
	s.Channel = ChannelV3
	return s
}

// goldenScenarioV3Random400 is the 400-node spatial workload — the
// partitionable topology the sharded kernel exists for, at a duration
// short enough for the ordinary test run.
func goldenScenarioV3Random400() Scenario {
	s := DefaultScenario()
	s.Name = "random-400-v3"
	s.Protocol = Protocol80211
	s.Topo = ScaledRandomTopo(400, 50)
	s.PM = 80
	s.Duration = 400 * sim.Millisecond
	s.Channel = ChannelV3
	return s
}

// goldenChecksumsV3 holds the pinned per-seed checksums (seeds 1..3),
// captured from the initial channel-model-v3 implementation.
var goldenChecksumsV3 = map[string][3]uint64{
	"star-correct-v3": {0x576e8f00762fa40e, 0x7512bae2c90c8593, 0x831281796d0fd816},
	"random-400-v3":   {0xb6b16d8a980d180e, 0x8eb2858c80922d8c, 0x6f90b6b7fd8a883b},
}

func TestDeterminismGoldenV3(t *testing.T) {
	for _, s := range []Scenario{goldenScenarioV3Star(), goldenScenarioV3Random400()} {
		want, ok := goldenChecksumsV3[s.Name]
		if !ok {
			t.Fatalf("no golden for scenario %q", s.Name)
		}
		for seed := uint64(1); seed <= 3; seed++ {
			r, err := Run(s, seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", s.Name, seed, err)
			}
			got := resultChecksum(r)
			if got != want[seed-1] {
				t.Errorf("%s seed %d: checksum %#x, golden %#x — a change perturbed the v3 keyed ordering, counter-RNG keys, or propagation delay",
					s.Name, seed, got, want[seed-1])
			}
		}
	}
}

// TestShardGoldenV3 pins the sharded 400-node run to the SERIAL golden:
// partitioning must not move a single bit of the results.
func TestShardGoldenV3(t *testing.T) {
	s := goldenScenarioV3Random400()
	want := goldenChecksumsV3[s.Name]
	for _, shards := range []int{2, 4} {
		s.Shards = shards
		for seed := uint64(1); seed <= 3; seed++ {
			r, err := Run(s, seed)
			if err != nil {
				t.Fatalf("%s shards=%d seed %d: %v", s.Name, shards, seed, err)
			}
			if got := resultChecksum(r); got != want[seed-1] {
				t.Errorf("%s shards=%d seed %d: checksum %#x, serial golden %#x — sharding changed the results",
					s.Name, shards, seed, got, want[seed-1])
			}
		}
	}
}

// TestShardCountInvariance is the shard-vs-unsharded equivalence
// quickcheck: the full result set (every metric, every counter, the
// kernel event count) must be identical for shard counts {1, 2, 4, 7}.
// `make shards` runs it under -race, which also exercises the barrier
// protocol's happens-before edges.
func TestShardCountInvariance(t *testing.T) {
	s := DefaultScenario()
	s.Name = "shard-invariance"
	s.Protocol = ProtocolCorrect
	s.Topo = ScaledRandomTopo(120, 15)
	s.PM = 80
	s.Duration = 300 * sim.Millisecond
	s.Channel = ChannelV3

	for seed := uint64(1); seed <= 2; seed++ {
		s.Shards = 1
		ref, err := Run(s, seed)
		if err != nil {
			t.Fatalf("serial seed %d: %v", seed, err)
		}
		refSum := resultChecksum(ref)
		if ref.EventsFired == 0 {
			t.Fatalf("serial seed %d fired no events", seed)
		}
		for _, shards := range []int{2, 4, 7} {
			s.Shards = shards
			r, err := Run(s, seed)
			if err != nil {
				t.Fatalf("shards=%d seed %d: %v", shards, seed, err)
			}
			if r.EventsFired != ref.EventsFired {
				t.Errorf("shards=%d seed %d: %d events fired, serial fired %d",
					shards, seed, r.EventsFired, ref.EventsFired)
			}
			if got := resultChecksum(r); got != refSum {
				t.Errorf("shards=%d seed %d: checksum %#x, serial %#x — shard count changed the results",
					shards, seed, got, refSum)
			}
		}
	}
}
