package experiment

import (
	"testing"
	"time"
)

// TestSweepProgressCounters: the mutators are nil-safe and Done always
// equals Ran + Resumed.
func TestSweepProgressCounters(t *testing.T) {
	var nilP *SweepProgress
	nilP.SetTotal(5)
	nilP.CellDone(true)
	nilP.CellResumed()
	if nilP.Snapshot() != (SweepSnapshot{}) {
		t.Fatal("nil progress snapshot not zero")
	}

	p := &SweepProgress{}
	p.SetTotal(10)
	p.CellResumed()
	p.CellResumed()
	p.CellDone(false)
	p.CellDone(true)
	p.CellDone(false)
	snap := p.Snapshot()
	want := SweepSnapshot{Total: 10, Done: 5, Failed: 1, Resumed: 2, Ran: 3}
	if snap != want {
		t.Fatalf("snapshot %+v, want %+v", snap, want)
	}
}

// TestSweepSnapshotETA: the extrapolation rates only cells executed this
// invocation — journal-resumed cells are free, so a restarted sweep must
// not report the near-zero ETA a Done-based rate would give.
func TestSweepSnapshotETA(t *testing.T) {
	// Fresh sweep: 4 of 10 ran in 8s → 2s/cell → 12s left.
	fresh := SweepSnapshot{Total: 10, Done: 4, Ran: 4}
	if eta := fresh.ETA(8 * time.Second); eta != 12*time.Second {
		t.Fatalf("fresh ETA %v, want 12s", eta)
	}
	// Restarted sweep: 90 resumed instantly, 2 ran in 8s → 4s/cell →
	// 32s for the 8 left. A Done-based rate would claim under a second.
	resumed := SweepSnapshot{Total: 100, Done: 92, Resumed: 90, Ran: 2}
	if eta := resumed.ETA(8 * time.Second); eta != 32*time.Second {
		t.Fatalf("resumed ETA %v, want 32s", eta)
	}
	// Unknown rate (nothing ran yet) and finished sweeps report 0.
	if eta := (SweepSnapshot{Total: 10, Done: 10, Resumed: 10}).ETA(time.Second); eta != 0 {
		t.Fatalf("all-resumed ETA %v, want 0", eta)
	}
	if eta := (SweepSnapshot{Total: 10, Done: 10, Ran: 10}).ETA(time.Minute); eta != 0 {
		t.Fatalf("finished ETA %v, want 0", eta)
	}
}
