package experiment

import (
	"testing"

	"dcfguard/internal/sim"
)

// Channel-model-v2 determinism goldens, the counterpart of
// determinism_test.go for Scenario.Channel == ChannelV2. The same
// rules apply: the checksums were captured when the v2 channel was
// introduced and must never be updated to "make the test pass" — a
// mismatch means a later change perturbed the counter-RNG key
// derivation, the neighbor enumeration order, or event ordering.
// (v2 results legitimately differ from v1's: the two models draw from
// different RNG constructions. Each pins its own goldens.)

// goldenScenariosV2 returns the canonical v2 scenarios at guard scale:
// the monitored star, the 40-node random topology, and the star under
// coherence-interval sensing — the three v2 code paths (fan-out,
// spatial index at scale, and the coherent segment loop).
func goldenScenariosV2() []Scenario {
	starCorrect := DefaultScenario()
	starCorrect.Name = "star-correct-v2"
	starCorrect.Protocol = ProtocolCorrect
	starCorrect.PM = 80
	starCorrect.Duration = 2 * sim.Second
	starCorrect.Channel = ChannelV2

	random40 := DefaultScenario()
	random40.Name = "random-40-v2"
	random40.Topo = RandomTopo(40, 5)
	random40.PM = 80
	random40.Duration = 2 * sim.Second
	random40.Channel = ChannelV2

	starCoherent := DefaultScenario()
	starCoherent.Name = "star-coherent-v2"
	starCoherent.Protocol = ProtocolCorrect
	starCoherent.PM = 80
	starCoherent.Duration = 2 * sim.Second
	starCoherent.CoherenceInterval = 20 * sim.Microsecond
	starCoherent.Channel = ChannelV2

	return []Scenario{starCorrect, random40, starCoherent}
}

// goldenChecksumsV2 holds the pinned per-seed checksums, captured from
// the initial channel-model-v2 implementation.
var goldenChecksumsV2 = map[string][3]uint64{
	"star-correct-v2":  {0x80b312ae6234ab51, 0x459b8ed95a4e01cc, 0x5b55afe26a6d9c9b},
	"random-40-v2":     {0x639950d4cdc9a371, 0x4d612ac66ec75994, 0xc82837c334c3e417},
	"star-coherent-v2": {0x85dd797384accd5f, 0xc87d8bb230db282b, 0x39d4f655df4353f5},
}

func TestDeterminismGoldenV2(t *testing.T) {
	for _, s := range goldenScenariosV2() {
		want, ok := goldenChecksumsV2[s.Name]
		if !ok {
			t.Fatalf("no golden for scenario %q", s.Name)
		}
		for seed := uint64(1); seed <= 3; seed++ {
			r, err := Run(s, seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", s.Name, seed, err)
			}
			got := resultChecksum(r)
			if got != want[seed-1] {
				t.Errorf("%s seed %d: checksum %#x, golden %#x — a change perturbed the v2 counter-RNG keys, neighbor enumeration, or event ordering",
					s.Name, seed, got, want[seed-1])
			}
		}
	}
}
