package experiment

import (
	"errors"
	"strings"
	"testing"

	"dcfguard/internal/obs"
)

// Observability pass-through goldens: the obs layer's hard contract is
// that enabling every metric and every trace category changes no RNG
// draw and schedules no event, so a fully instrumented run must hash to
// the *same* golden checksums pinned by determinism_test.go,
// determinism_v2_test.go and determinism_faults_test.go. A mismatch here
// with those suites green means an instrumentation hook leaked into
// simulation behavior (an extra draw, a reordered event, a mutated
// field) — fix the hook, never the golden.

// countingSink counts records without retaining them; it is the
// anti-vacuity witness that tracing actually fired.
type countingSink struct{ n int }

func (c *countingSink) Emit(obs.Record) { c.n++ }

// fullObserve enables everything the layer has: metrics, every category,
// the crash ring, and the counting sink.
func fullObserve(sink obs.Sink) *obs.Config {
	return &obs.Config{
		Metrics:    true,
		Categories: obs.AllCategories(),
		Sinks:      []obs.Sink{sink},
	}
}

func TestObservabilityPassThrough(t *testing.T) {
	suites := []struct {
		name      string
		scenarios []Scenario
		checksum  func(Result) uint64
		goldens   map[string][3]uint64
	}{
		{"v1", goldenScenarios(), resultChecksum, goldenChecksums},
		{"v2", goldenScenariosV2(), resultChecksum, goldenChecksumsV2},
		{"faults", faultGoldenScenarios(), faultResultChecksum, faultGoldenChecksums},
	}
	for _, suite := range suites {
		for _, s := range suite.scenarios {
			want, ok := suite.goldens[s.Name]
			if !ok {
				t.Fatalf("%s: no golden for scenario %q", suite.name, s.Name)
			}
			sink := &countingSink{}
			s.Observe = fullObserve(sink)
			for seed := uint64(1); seed <= 3; seed++ {
				r, err := Run(s, seed)
				if err != nil {
					t.Fatalf("%s seed %d: %v", s.Name, seed, err)
				}
				if got := suite.checksum(r); got != want[seed-1] {
					t.Errorf("%s seed %d: instrumented checksum %#x, golden %#x — observability is not pass-through (a hook perturbed RNG draws or event ordering)",
						s.Name, seed, got, want[seed-1])
				}
				// Anti-vacuity: a pass-through test that observed nothing
				// proves nothing.
				if r.Obs == nil {
					t.Fatalf("%s seed %d: Result.Obs nil with full Observe config", s.Name, seed)
				}
				snap := r.Obs.Reg().Snapshot()
				if len(snap.Counters) == 0 || len(snap.Gauges) == 0 || len(snap.Histograms) == 0 {
					t.Fatalf("%s seed %d: empty registry snapshot (%d counters, %d gauges, %d histograms)",
						s.Name, seed, len(snap.Counters), len(snap.Gauges), len(snap.Histograms))
				}
				if len(r.Obs.TraceTail()) == 0 {
					t.Fatalf("%s seed %d: empty trace ring", s.Name, seed)
				}
			}
			if sink.n == 0 {
				t.Fatalf("%s: sink received no records across 3 seeds", s.Name)
			}
		}
	}
}

// bombSink panics mid-run after fuse records: a stand-in for any bug
// firing deep inside the event loop, long after armed() handed the
// runtime to RunGuarded.
type bombSink struct{ fuse int }

func (b *bombSink) Emit(obs.Record) {
	b.fuse--
	if b.fuse <= 0 {
		panic("obs bomb: injected mid-run failure")
	}
}

// TestGuardDumpCarriesTraceTail: a panic inside a traced run must
// surface the ring's last records through SeedFailure.Dump — the whole
// point of wiring the crash ring into the experiment guard.
func TestGuardDumpCarriesTraceTail(t *testing.T) {
	s := quickScenario("guarded-obs-bomb")
	s.Observe = &obs.Config{
		Categories: obs.AllCategories(),
		Sinks:      []obs.Sink{&bombSink{fuse: 300}},
	}
	_, err := RunGuarded(s, 1, 0)
	var f *SeedFailure
	if !errors.As(err, &f) {
		t.Fatalf("got %v, want *SeedFailure", err)
	}
	if !strings.Contains(f.Panic, "obs bomb") {
		t.Fatalf("Panic = %q, want the injected message", f.Panic)
	}
	if len(f.TraceTail) == 0 {
		t.Fatal("SeedFailure.TraceTail empty: the crash ring did not reach the failure")
	}
	dump := f.Dump()
	if !strings.Contains(dump, "trace tail (last") {
		t.Fatalf("Dump() missing the trace-tail section:\n%s", dump)
	}
	// The rendered tail must contain at least one real record line.
	if !strings.Contains(dump, "node=") {
		t.Fatalf("Dump() trace tail carries no rendered records:\n%s", dump)
	}
}

// TestGuardNoTraceNoTail: with observability off, failures must not grow
// a phantom trace-tail section.
func TestGuardNoTraceNoTail(t *testing.T) {
	s := quickScenario("guarded-obs-off")
	s.Duration = 0 // setup error path
	_, err := RunGuarded(s, 1, 0)
	var f *SeedFailure
	if !errors.As(err, &f) {
		t.Fatalf("got %v, want *SeedFailure", err)
	}
	if len(f.TraceTail) != 0 {
		t.Fatalf("TraceTail = %d records with observability disabled", len(f.TraceTail))
	}
	if strings.Contains(f.Dump(), "trace tail") {
		t.Fatal("Dump() renders a trace-tail section with no tail")
	}
}
