package experiment

import (
	"dcfguard/internal/frame"
	"dcfguard/internal/obs"
	"dcfguard/internal/sim"
)

// Per-shard kernel telemetry: the sharded kernel's imbalance made
// visible. Scope "shard", node = shard index; plus group-wide points at
// NoNode. Everything here is host-side measurement of the kernel — wall
// durations, queue depths — and flows one way, registry-ward: feeding
// any of it back into the model would break determinism.

// shardWallBounds buckets wall durations in microseconds: a window's
// drain on a healthy shard is tens to hundreds of µs, a pathological
// imbalance shows up in the ms tail.
var shardWallBounds = []float64{10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000}

// shardSpanBounds buckets conservative-window widths in simulated µs
// (lookahead-sized: a few µs for v3 propagation delay).
var shardSpanBounds = []float64{1, 2, 5, 10, 25, 50, 100, 250}

// shardTelemetry holds the pre-resolved handles the per-window hook
// updates; see NewShardTelemetry.
type shardTelemetry struct {
	windows *obs.Counter
	span    *obs.Histogram
	events  []*obs.Counter
	busy    []*obs.Histogram
	wait    []*obs.Histogram
	depth   []*obs.Gauge
}

// NewShardTelemetry resolves the per-shard metric handles and returns a
// sim.ShardGroup telemetry hook feeding them, nil when the registry is
// disabled (so the kernel's nil-hook fast path stays free). Handles are
// resolved here, once, at attach time; the returned hook does no by-name
// lookups — the obshot contract.
func NewShardTelemetry(reg *obs.Registry, shards int) func(sim.WindowTelemetry) {
	if reg == nil {
		return nil
	}
	t := &shardTelemetry{
		windows: reg.Counter("shard", obs.NoNode, "windows"),
		span:    reg.Histogram("shard", obs.NoNode, "window_span_us", shardSpanBounds),
	}
	for i := 0; i < shards; i++ {
		node := frame.NodeID(i)
		t.events = append(t.events, reg.Counter("shard", node, "events"))
		t.busy = append(t.busy, reg.Histogram("shard", node, "busy_us", shardWallBounds))
		t.wait = append(t.wait, reg.Histogram("shard", node, "barrier_wait_us", shardWallBounds))
		t.depth = append(t.depth, reg.Gauge("shard", node, "queue_depth"))
	}
	return t.onWindow
}

// onWindow runs on the coordinator at every barrier, all shards parked.
func (t *shardTelemetry) onWindow(w sim.WindowTelemetry) {
	t.windows.Inc()
	t.span.Observe(float64(w.Horizon-w.Start) / 1e3)
	for i := range t.events {
		t.events[i].Add(w.Events[i])
		t.busy[i].Observe(float64(w.Busy[i]) / 1e3)
		wait := w.Wall - w.Busy[i]
		if wait < 0 {
			wait = 0
		}
		t.wait[i].Observe(float64(wait) / 1e3)
		t.depth[i].Set(float64(w.Depth[i]), w.Horizon)
	}
}
