package experiment

import (
	"strings"
	"testing"

	"dcfguard/internal/sim"
)

func TestRunAllAndCSV(t *testing.T) {
	s := quick()
	s.Duration = sim.Second
	s.PM = 80
	results, err := RunAll(s, []uint64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Seed != 1 || results[1].Seed != 2 {
		t.Fatalf("results = %v", results)
	}

	csv := ResultsCSV(results)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want header + 2", len(lines))
	}
	if !strings.HasPrefix(lines[0], "scenario,seed,") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "zero-flow,1,1,") {
		t.Fatalf("row = %q", lines[1])
	}

	per := PerSenderCSV(results)
	perLines := strings.Split(strings.TrimSpace(per), "\n")
	if len(perLines) != 1+2*8 {
		t.Fatalf("per-sender CSV has %d lines, want header + 16", len(perLines))
	}
	// Rows are seed-major, sender-ascending.
	if !strings.HasPrefix(perLines[1], "zero-flow,1,1,") {
		t.Fatalf("first per-sender row = %q", perLines[1])
	}
}

func TestRunAllEmptySeeds(t *testing.T) {
	if _, err := RunAll(quick(), nil); err == nil {
		t.Fatal("empty seeds accepted")
	}
}

func TestCSVEscape(t *testing.T) {
	if got := csvEscape("a,b"); got != `"a,b"` {
		t.Fatalf("csvEscape = %q", got)
	}
	if got := csvEscape(`say "hi"`); got != `"say ""hi"""` {
		t.Fatalf("csvEscape = %q", got)
	}
	if got := csvEscape("plain"); got != "plain" {
		t.Fatalf("csvEscape = %q", got)
	}
}
