package experiment

import (
	"fmt"
	"sort"
	"sync/atomic"

	"dcfguard/internal/core"
	"dcfguard/internal/faults"
	"dcfguard/internal/frame"
	"dcfguard/internal/mac"
	"dcfguard/internal/medium"
	"dcfguard/internal/misbehave"
	"dcfguard/internal/obs"
	"dcfguard/internal/phys"
	"dcfguard/internal/rng"
	"dcfguard/internal/sim"
	"dcfguard/internal/stats"
	"dcfguard/internal/trace"
	"dcfguard/internal/traffic"
)

// Result holds one run's metrics.
type Result struct {
	Scenario string
	Seed     uint64
	Duration sim.Time

	// Diagnosis accuracy (§5's first two metrics). Zero for 802.11
	// runs, which have no monitor.
	CorrectDiagnosisPct float64
	MisdiagnosisPct     float64

	// Per-sender average goodput: honest ("AVG") and misbehaving
	// ("MSB") senders.
	AvgHonestKbps     float64
	AvgMisbehaverKbps float64
	// Mean per-packet MAC delay (enqueue → ACK), split the same way.
	// Lower delay is the other selfish incentive the paper names (§3.1).
	AvgHonestDelayMs     float64
	AvgMisbehaverDelayMs float64
	// TotalKbps is the summed goodput of all measured flows.
	TotalKbps float64
	// Fairness is Jain's index over measured flows.
	Fairness float64

	// Series is the Figure-8 per-bin diagnosis series (empty unless the
	// scenario sets BinSize).
	Series []stats.SeriesPoint

	// ThroughputBySender maps each measured flow source to its goodput.
	ThroughputBySender map[frame.NodeID]float64

	// ProvenMisbehaviors counts attempt-verification catches.
	ProvenMisbehaviors int
	// GreedyDetections counts sender-side G-audit failures.
	GreedyDetections int
	// CollusionsDetected counts watchdog collusion verdicts;
	// ColludingPairs lists the flagged (sender, receiver) pairs.
	CollusionsDetected int
	ColludingPairs     [][2]frame.NodeID

	// EventsFired is the simulation kernel's event count (for benches).
	EventsFired uint64

	// FaultDrops counts frames destroyed by the fault-injection error
	// model (zero when Scenario.Faults has no error model), and
	// Restarts the completed receiver crash/restart cycles under churn.
	FaultDrops uint64
	Restarts   int

	// Trace is the frame-level timeline, present when the scenario set
	// TraceEvents. It is in-memory observability state, not a metric,
	// and is excluded from journal serialization.
	Trace *trace.Recorder `json:"-"`

	// Obs is the run's assembled observability runtime (metrics registry
	// snapshot source, decision-trace ring), present when the scenario
	// set Observe. Like Trace it is in-memory state, not a journaled
	// metric.
	Obs *obs.Runtime `json:"-"`
}

// Run executes the scenario once with the given seed.
func Run(s Scenario, seed uint64) (Result, error) {
	return run(s, seed, nil)
}

// testKernelHook, when non-nil, observes the assembled kernel right
// before the event loop starts. Tests use it to plant failures on shard
// goroutines (the crash-forensics coverage in guard_shard_test.go);
// always nil outside tests.
var testKernelHook func(sim.Kernel)

// shardAssignments partitions node positions into `shards` spatial
// strips of near-equal node count: nodes are ranked by (X, Y, id) and
// the ranking split into contiguous runs. Strips only affect which
// scheduler a node lives on — cross-shard traffic volume, never results
// (keyed ordering makes those shard-count-invariant) — so a simple
// equal-count x-sweep is enough; it keeps each shard's neighbors mostly
// local for any roughly uniform topology.
func shardAssignments(positions []phys.Point, shards int) []int {
	n := len(positions)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := positions[order[a]], positions[order[b]]
		//detlint:allow floateq -- sort tie-break on exact coordinate equality, no tolerance wanted
		if pa.X != pb.X {
			return pa.X < pb.X
		}
		//detlint:allow floateq -- sort tie-break on exact coordinate equality, no tolerance wanted
		if pa.Y != pb.Y {
			return pa.Y < pb.Y
		}
		return order[a] < order[b]
	})
	out := make([]int, n)
	for rank, idx := range order {
		out[idx] = rank * shards / n
	}
	return out
}

// run is the executor behind Run. armed, when non-nil, is invoked with
// the run's kernel (the scheduler, or the shard group for Shards > 1)
// and observability runtime immediately before the event loop starts:
// the watchdog in RunGuarded uses it to plant its cancellation hook and
// to capture the trace ring for crash dumps. When the loop exits on an
// Interrupt, run reports a *SeedFailure instead of the (incomplete)
// metrics.
func run(s Scenario, seed uint64, armed func(sim.Kernel, *obs.Runtime)) (Result, error) {
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	tp := s.Topo(seed)
	if err := tp.Validate(); err != nil {
		return Result{}, fmt.Errorf("experiment: %s: %w", s.Name, err)
	}

	// The kernel: one scheduler per shard (one total for serial runs).
	// Channel model v3 switches every scheduler to keyed event ordering
	// — also at Shards <= 1, which is what makes a serial v3 run
	// bit-identical to a sharded one. Owner IDs are node IDs; the
	// watchdog, when present, is the extra owner at len(Positions).
	shards := s.Shards
	if shards < 1 {
		shards = 1
	}
	scheds := make([]*sim.Scheduler, shards)
	for i := range scheds {
		scheds[i] = new(sim.Scheduler)
	}
	sched := scheds[0]
	keyed := s.Channel == ChannelV3
	if keyed {
		for _, sc := range scheds {
			sc.EnableKeyed(len(tp.Positions) + 1)
		}
	}
	// setOwner brackets setup-time scheduling with the owner whose key
	// it should carry; a no-op for non-keyed runs.
	setOwner := func(sc *sim.Scheduler, id int) {
		if keyed {
			sc.SetOwner(id)
		}
	}
	// Spatial shard assignment for every owner, including the watchdog's
	// centroid slot at index len(Positions). All zeros for serial runs.
	// Computed before the fault injector so per-shard fault streams can
	// partition by the receiver's shard.
	var dogPos phys.Point
	if s.Watchdog {
		var cx, cy float64
		for _, p := range tp.Positions {
			cx += p.X
			cy += p.Y
		}
		n := float64(len(tp.Positions))
		dogPos = phys.Point{X: cx / n, Y: cy / n}
	}
	shardOf := make([]int, len(tp.Positions)+1)
	if shards > 1 {
		all := make([]phys.Point, 0, len(tp.Positions)+1)
		all = append(all, tp.Positions...)
		all = append(all, dogPos) // harmless filler when no watchdog
		shardOf = shardAssignments(all, shards)
	}

	root := rng.New(seed)
	// Fault injection. The injector's key stream is derived only when an
	// error model is enabled, so disabled runs consume exactly the same
	// root draws as before (golden-pinned). Sharded runs partition the
	// per-link chain state by the receiver's shard — Drop executes on
	// the observer's completion event, hence on its shard's goroutine —
	// off one shared base key, so per-link draw sequences are
	// bit-identical to the serial injector's.
	var frameFaults medium.FrameFaults
	if s.Faults.ErrorsEnabled() {
		base := root.Stream("faults-frame").Uint64()
		if shards > 1 {
			frameFaults = faults.NewShardedInjector(s.Faults, base, shards,
				func(rx frame.NodeID) int { return shardOf[rx] })
		} else {
			frameFaults = faults.NewInjector(s.Faults, base)
		}
	}
	med := medium.New(sched, medium.Config{
		Model:             s.Shadowing,
		CoherenceInterval: s.CoherenceInterval,
		Channel:           s.Channel,
		FrameFaults:       frameFaults,
	}, root.Stream("medium"))

	rxRange, csRange := s.RxRangeM, s.CsRangeM
	//detlint:allow floateq -- config sentinel: unset scenario fields are literal 0, never computed
	if rxRange == 0 {
		rxRange = 250
	}
	//detlint:allow floateq -- config sentinel: unset scenario fields are literal 0, never computed
	if csRange == 0 {
		csRange = 550
	}
	radio := phys.CalibratedRadio(s.Shadowing, 24.5, rxRange, 0.5, csRange, 0.5, s.BitRate)

	misbehaving := make(map[frame.NodeID]bool, len(tp.Misbehaving))
	for _, id := range tp.Misbehaving {
		misbehaving[id] = true
	}
	receiverSet := make(map[frame.NodeID]bool, len(tp.Receivers))
	for _, id := range tp.Receivers {
		receiverSet[id] = true
	}

	collector := stats.NewCollector(tp.Misbehaving, s.BinSize)
	result := Result{Scenario: s.Name, Seed: seed, Duration: s.Duration}

	// Observability: build the runtime (nil when the scenario enables
	// nothing) and instrument the medium now; nodes and monitors attach
	// as they are built below. Instrumentation is pass-through by
	// contract — no RNG draws, no scheduled events — so it cannot move
	// the golden checksums.
	rt := s.Observe.Build()
	result.Obs = rt
	med.Instrument(rt.Reg(), rt.TraceBus())
	// Sharded tracing: emissions happen on shard goroutines, so every
	// trace consumer gets a per-shard front buffered through a sim.Fanin
	// and replayed into the real sinks at window barriers, in serial
	// order (nil when tracing — or sharding — is off; all hooks below
	// are nil-safe).
	var obsFanin *obs.ShardFanin
	if shards > 1 {
		obsFanin = rt.NewShardFanin(scheds)
	}
	// traceBusFor is the bus a node's components emit on: its shard's
	// front bus when fan-in is active, the shared bus otherwise.
	traceBusFor := func(i int) *obs.Bus {
		if obsFanin != nil {
			return obsFanin.Bus(shardOf[i])
		}
		return rt.TraceBus()
	}

	var shardTap *trace.ShardedTap
	if s.TraceEvents > 0 {
		rec := trace.New(s.TraceEvents)
		result.Trace = rec
		if shards > 1 {
			shardTap = trace.NewShardedTap(rec, scheds)
			med.Tap = func(src frame.NodeID, f frame.Frame, start, end sim.Time) {
				// The transmit event runs on the transmitter's shard.
				shardTap.Tap(shardOf[src], src, f, start, end)
			}
			med.DeliveryTap = func(f frame.Frame, now sim.Time) {
				// Delivery fires on the addressee's completion event.
				shardTap.MarkDelivered(shardOf[f.Dst], f, now)
			}
		} else {
			med.Tap = rec.Tap
			med.DeliveryTap = func(f frame.Frame, now sim.Time) { rec.MarkDelivered(f, now) }
		}
	}

	// Monitors run on whichever shard their node lives on, so this
	// order-free tally is atomic rather than a plain increment.
	var proven atomic.Int64
	events := core.Events{
		OnClassified: collector.OnClassified,
		OnProvenMisbehavior: func(frame.NodeID, sim.Time) {
			proven.Add(1)
		},
	}

	// Build nodes in ascending ID order (determinism), allocated from
	// one contiguous arena so per-station hot state stays cache-adjacent.
	arena := mac.NewArena(len(tp.Positions))
	nodes := make([]*mac.Node, len(tp.Positions))
	monitors := make(map[frame.NodeID]*core.Monitor)
	policies := make(map[frame.NodeID]mac.BackoffPolicy)
	senderPolicies := make(map[frame.NodeID]*core.AssignedPolicy)

	for i := range tp.Positions {
		id := frame.NodeID(i)
		policies[id] = buildPolicy(s, id, misbehaving[id], root, senderPolicies)
	}

	greedy := make(map[frame.NodeID]bool, len(s.GreedyReceivers))
	for _, id := range s.GreedyReceivers {
		greedy[id] = true
	}
	colluding := make(map[frame.NodeID]bool, len(s.ColludingReceivers))
	for _, id := range s.ColludingReceivers {
		colluding[id] = true
	}
	for i := range tp.Positions {
		id := frame.NodeID(i)
		nsched := scheds[shardOf[i]]
		setOwner(nsched, i)
		var hook mac.ReceiverHook
		if s.Protocol == ProtocolCorrect && receiverSet[id] {
			params := s.Core
			if greedy[id] {
				params.AssignMode = core.AssignGreedy
			}
			if colluding[id] {
				params.AssignMode = core.AssignGreedy
				params.WaivePenalties = true
			}
			m := core.NewMonitor(id, params, s.MAC, root.StreamN("monitor-", uint64(id)), events)
			m.Instrument(rt.Reg(), traceBusFor(i))
			monitors[id] = m
			hook = m
		}
		cb := mac.Callbacks{
			OnDeliver: collector.OnDeliver,
			OnSendSuccess: func(id frame.NodeID) func(frame.NodeID, uint32, int, int, sim.Time, sim.Time) {
				return func(_ frame.NodeID, _ uint32, _, _ int, enqueuedAt, now sim.Time) {
					collector.OnSendComplete(id, now-enqueuedAt)
				}
			}(id),
		}
		nodes[i] = mac.NewNodeIn(arena, id, s.MAC, nsched, med, policies[id], hook, cb)
		nodes[i].Instrument(rt.Reg(), traceBusFor(i))
		med.Attach(id, tp.Positions[i], radio, nodes[i])
	}

	// Optional third-party watchdog at the topology centroid.
	var dog *core.Watchdog
	if s.Watchdog {
		dogParams := s.Core
		if s.Protocol != ProtocolCorrect {
			dogParams = core.DefaultParams()
		}
		dog = core.NewWatchdog(dogParams, s.MAC, s.BitRate)
		dog.OnCollusion = func(sender, receiver frame.NodeID, _ sim.Time) {
			result.CollusionsDetected++
			result.ColludingPairs = append(result.ColludingPairs,
				[2]frame.NodeID{sender, receiver})
		}
		setOwner(scheds[shardOf[len(tp.Positions)]], len(tp.Positions))
		med.Attach(frame.NodeID(len(tp.Positions)), dogPos, radio, dog)
	}

	// Sharded runs: bind every node to its shard's scheduler. Must
	// follow the last Attach (the medium's index builds eagerly here)
	// and precede traffic wiring.
	if shards > 1 {
		med.ConfigureShards(scheds, func(id frame.NodeID) int { return shardOf[id] })
		if obsFanin != nil {
			med.InstrumentShards(obsFanin.Buses())
		}
	}

	// Node churn: arm each monitor's crash/restart schedule on its own
	// shard's scheduler (shard 0 — the only scheduler — for serial
	// runs). Monitors are visited in ascending node-ID order with
	// per-monitor streams, and all draws happen here at single-threaded
	// setup, so the schedule is identical for every shard count; keyed
	// ordering then fires it identically too.
	if s.Faults.ChurnEnabled() {
		churnRoot := root.Stream("faults-churn")
		for i := range tp.Positions {
			if m, ok := monitors[frame.NodeID(i)]; ok {
				csched := scheds[shardOf[i]]
				setOwner(csched, i)
				faults.ScheduleChurn(csched, churnRoot.StreamN("node-", uint64(i)),
					s.Faults, m, s.Duration)
			}
		}
	}

	// Wire traffic. Each flow's source events go on (and are keyed to)
	// the sending node's scheduler.
	for _, f := range tp.Flows {
		n := nodes[f.Src]
		fsched := scheds[shardOf[f.Src]]
		setOwner(fsched, int(f.Src))
		if f.RateBps > 0 {
			traffic.NewCBR(fsched, n, f.Dst, s.PayloadBytes, f.RateBps).Start()
			continue
		}
		src := traffic.NewBacklogged(n, f.Dst, s.PayloadBytes, s.QueueDepth)
		n.SetQueueSpaceCallback(src.Refill)
		src.Start()
	}

	var kernel sim.Kernel = sched
	if shards > 1 {
		// Lookahead: the minimum delay by which an event on one shard
		// can affect another — v3's propagation delay, floored by the
		// slot time for form's sake (Validate guarantees slot > delay).
		la := medium.V3PropDelay
		if st := s.MAC.SlotTime; st < la {
			la = st
		}
		grp := sim.NewShardGroup(scheds, la)
		grp.Telemetry = NewShardTelemetry(rt.Reg(), shards)
		grp.Exchange = func() {
			med.ExchangeShardMessages()
			// Trace side channels drain at the same barrier (all shards
			// parked): records replay into the real sinks in serial
			// order. Both flushes are nil-safe no-ops when tracing is
			// off.
			obsFanin.Flush()
			shardTap.Flush()
		}
		kernel = grp
	}
	if testKernelHook != nil {
		testKernelHook(kernel)
	}
	if armed != nil {
		armed(kernel, rt)
	}
	// Final drain: the last window's emissions (and, on an interrupt or
	// a shard-worker panic, the partial tail the crash dump wants) are
	// still buffered. Deferred so the flush also runs while a ShardPanic
	// unwinds toward RunGuarded's recover — the group parks every worker
	// before re-panicking on the coordinator, so the drain is safe and
	// the ring tail stays (when, key, seq)-ordered. Both flushes are
	// nil-safe no-ops when tracing is off, and idempotent.
	func() {
		defer func() {
			obsFanin.Flush()
			shardTap.Flush()
		}()
		kernel.Run(s.Duration)
	}()
	if kernel.Interrupted() {
		return Result{}, &SeedFailure{
			Scenario: s.Name, Seed: seed, TimedOut: true,
			Events: kernel.EventsFired(), SimTime: kernel.Now(),
			TraceTail: rt.TraceTail(),
		}
	}
	if result.Trace != nil {
		result.Trace.Finalize(kernel.Now())
	}

	// Collect metrics.
	result.CorrectDiagnosisPct = collector.CorrectDiagnosisPct()
	result.MisdiagnosisPct = collector.MisdiagnosisPct()
	result.AvgHonestKbps, result.AvgMisbehaverKbps =
		collector.SplitThroughputKbps(tp.Measured, s.Duration)
	result.AvgHonestDelayMs, result.AvgMisbehaverDelayMs =
		collector.SplitDelayMs(tp.Measured)
	result.Fairness = collector.Fairness(tp.Measured, s.Duration)
	result.Series = collector.DiagnosisSeries()
	result.ThroughputBySender = make(map[frame.NodeID]float64, len(tp.Measured))
	for _, id := range tp.Measured {
		tput := collector.ThroughputKbps(id, s.Duration)
		result.ThroughputBySender[id] = tput
		result.TotalKbps += tput
	}
	for _, p := range senderPolicies {
		result.GreedyDetections += p.GreedyDetections()
	}
	result.ProvenMisbehaviors = int(proven.Load())
	result.EventsFired = kernel.EventsFired()
	result.FaultDrops = med.FaultDrops()
	for i := range tp.Positions {
		if m, ok := monitors[frame.NodeID(i)]; ok {
			result.Restarts += m.Restarts()
		}
	}
	return result, nil
}

// buildPolicy constructs the sender policy for one node, honest or
// misbehaving, for the scenario's protocol.
func buildPolicy(s Scenario, id frame.NodeID, misbehaves bool, root *rng.Source,
	senderPolicies map[frame.NodeID]*core.AssignedPolicy) mac.BackoffPolicy {
	stream := root.StreamN("policy-", uint64(id))
	var honest mac.BackoffPolicy
	switch s.Protocol {
	case Protocol80211:
		honest = mac.NewStandardPolicy(stream)
	case ProtocolCorrect:
		ap := core.NewAssignedPolicy(id, s.MAC, stream)
		ap.VerifyReceiver = s.VerifyReceiverAtSenders
		senderPolicies[id] = ap
		honest = ap
	}
	if !misbehaves {
		return honest
	}
	switch s.Strategy {
	case StrategyPartial:
		return misbehave.NewPartial(honest, s.PM)
	case StrategyQuarterWindow:
		return misbehave.NewQuarterWindow(stream.Stream("quarter"))
	case StrategyNoDoubling:
		return misbehave.NewNoDoubling(stream.Stream("nodouble"), s.MAC.CWMin)
	case StrategyAttemptLiar:
		return misbehave.NewAttemptLiar(misbehave.NewPartial(honest, s.PM))
	default:
		panic(fmt.Sprintf("experiment: unreachable strategy %d", s.Strategy))
	}
}
