package experiment

import (
	"strconv"
	"strings"
	"testing"

	"dcfguard/internal/frame"
	"dcfguard/internal/sim"
	"dcfguard/internal/topo"
)

// tiny returns the smallest useful figure config so these tests stay
// fast; the benches and cmd/figures run the larger configurations.
func tiny() Config {
	return Config{
		Duration:     3 * sim.Second,
		Seeds:        Seeds(2),
		PMs:          []int{0, 80},
		NetworkSizes: []int{1, 4},
		Fig8PMs:      []int{80},
		Channel:      ChannelV2,
	}
}

// cell parses "12.3±4.5" or "12.3" into its mean.
func cell(t *testing.T, s string) float64 {
	t.Helper()
	if i := strings.IndexRune(s, '±'); i >= 0 {
		s = s[:i]
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q: %v", s, err)
	}
	return v
}

func TestFig4Shape(t *testing.T) {
	tb, err := Fig4(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Correct diagnosis must rise sharply from PM=0 to PM=80 in
	// ZERO-FLOW, with near-zero misdiagnosis.
	lowPM, highPM := tb.Rows[0], tb.Rows[1]
	if c0, c80 := cell(t, lowPM[1]), cell(t, highPM[1]); c80 < c0+50 {
		t.Fatalf("zero-flow correct%%: PM0=%v PM80=%v, want sharp rise", c0, c80)
	}
	if m := cell(t, highPM[2]); m > 5 {
		t.Fatalf("zero-flow misdiagnosis %v%%, want ≈0", m)
	}
	// TWO-FLOW pays misdiagnosis for sensitivity.
	if m := cell(t, highPM[4]); m <= 0 {
		t.Fatalf("two-flow misdiagnosis %v%%, want > 0", m)
	}
}

func TestFig5Shape(t *testing.T) {
	tb, err := Fig5(tiny())
	if err != nil {
		t.Fatal(err)
	}
	high := tb.Rows[1] // PM=80
	msb80211, avg80211 := cell(t, high[1]), cell(t, high[2])
	msbCorrect, avgCorrect := cell(t, high[3]), cell(t, high[4])
	if msb80211 < 2*avg80211 {
		t.Fatalf("802.11 at PM=80: MSB=%v AVG=%v, want large unfair gain", msb80211, avg80211)
	}
	if msbCorrect > 1.5*avgCorrect {
		t.Fatalf("CORRECT at PM=80: MSB=%v AVG=%v, want containment", msbCorrect, avgCorrect)
	}
	if avgCorrect < avg80211 {
		t.Fatalf("CORRECT honest AVG=%v below 802.11's %v under attack", avgCorrect, avg80211)
	}
}

func TestFig6And7Shape(t *testing.T) {
	t6, t7, err := Fig6And7(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(t6.Rows) != 2 || len(t7.Rows) != 2 {
		t.Fatalf("rows = %d, %d", len(t6.Rows), len(t7.Rows))
	}
	// CORRECT tracks 802.11 throughput within 15% at every size
	// (zero-flow columns 1 and 2).
	for _, row := range t6.Rows {
		std, corr := cell(t, row[1]), cell(t, row[2])
		if corr < 0.85*std || corr > 1.15*std {
			t.Fatalf("n=%s: CORRECT %v vs 802.11 %v, want ≈equal", row[0], corr, std)
		}
	}
	// Per-node throughput decreases with network size.
	if cell(t, t6.Rows[1][1]) >= cell(t, t6.Rows[0][1]) {
		t.Fatal("per-node throughput did not fall with more senders")
	}
	// Fairness stays high without misbehavior.
	for _, row := range t7.Rows {
		for _, c := range row[1:] {
			if v := cell(t, c); v < 0.9 {
				t.Fatalf("fairness %v below 0.9 in honest network", v)
			}
		}
	}
}

func TestFig8Shape(t *testing.T) {
	tb, err := Fig8(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// The last bin must be at a high plateau for PM=80.
	last := tb.Rows[len(tb.Rows)-1]
	if last[1] == "-" {
		last = tb.Rows[len(tb.Rows)-2]
	}
	if v := cell(t, last[1]); v < 70 {
		t.Fatalf("PM=80 plateau = %v%%, want high", v)
	}
}

func TestFig9Shape(t *testing.T) {
	cfg := tiny()
	cfg.PMs = []int{80}
	tb, err := Fig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	row := tb.Rows[0]
	if v := cell(t, row[1]); v < 50 {
		t.Fatalf("random-topology correct%% = %v at PM=80", v)
	}
	// 802.11 misbehavers beat honest nodes; CORRECT narrows the gap.
	msb80211, avg80211 := cell(t, row[3]), cell(t, row[4])
	msbC, avgC := cell(t, row[5]), cell(t, row[6])
	if msb80211 <= avg80211 {
		t.Fatalf("802.11 random: MSB=%v AVG=%v", msb80211, avg80211)
	}
	if msbC/avgC >= msb80211/avg80211 {
		t.Fatalf("CORRECT ratio %.2f not below 802.11 ratio %.2f",
			msbC/avgC, msb80211/avg80211)
	}
}

func TestAblationPenaltyFactorShape(t *testing.T) {
	cfg := tiny()
	cfg.PMs = []int{80}
	tb, err := AblationPenaltyFactor(cfg, []float64{0.5, 1.5})
	if err != nil {
		t.Fatal(err)
	}
	row := tb.Rows[0]
	weak, strong := cell(t, row[1]), cell(t, row[3])
	if strong >= weak {
		t.Fatalf("penalty factor 1.5 (MSB=%v) not stronger than 0.5 (MSB=%v)", strong, weak)
	}
}

func TestAblationAlphaShape(t *testing.T) {
	cfg := tiny()
	cfg.PMs = []int{50}
	tb, err := AblationAlpha(cfg, []float64{0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 || len(tb.Rows[0]) != 5 {
		t.Fatalf("table shape %v", tb.Rows)
	}
}

func TestAblationWindowShape(t *testing.T) {
	cfg := tiny()
	cfg.PMs = []int{50}
	tb, err := AblationWindow(cfg, []WindowPoint{{W: 5, Thresh: 20}, {W: 5, Thresh: 5}})
	if err != nil {
		t.Fatal(err)
	}
	row := tb.Rows[0]
	// A lower threshold can only increase both rates.
	if cell(t, row[3]) < cell(t, row[1])-5 {
		t.Fatalf("lower THRESH reduced correct%%: %v vs %v", row[3], row[1])
	}
}

func TestAblationAttemptVerification(t *testing.T) {
	cfg := tiny()
	cfg.PMs = []int{80}
	tb, err := AblationAttemptVerification(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	offProofs, onProofs := cell(t, tb.Rows[0][5]), cell(t, tb.Rows[1][5])
	if offProofs != 0 {
		t.Fatalf("proofs without verification = %v", offProofs)
	}
	if onProofs <= 0 {
		t.Fatalf("verification produced no proofs against a liar (%v)", onProofs)
	}
}

func TestExtHiddenTerminal(t *testing.T) {
	cfg := tiny()
	tb, err := ExtHiddenTerminal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	var basic, rtscts float64
	for _, row := range tb.Rows {
		switch row[0] {
		case "basic":
			basic = cell(t, row[1])
		case "rts/cts":
			rtscts = cell(t, row[1])
		}
	}
	// The RTS/CTS handshake must recover substantial goodput from the
	// hidden-terminal collisions.
	if rtscts < 1.3*basic {
		t.Fatalf("RTS/CTS %.1f vs basic %.1f: hidden-terminal protection missing", rtscts, basic)
	}
}

func TestAblationAdaptiveThresh(t *testing.T) {
	cfg := tiny()
	cfg.PMs = []int{0, 80}
	tb, err := AblationAdaptiveThresh(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 { // 2 scenarios x 2 PMs
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// In TWO-FLOW at PM=0, the adaptive fence must cut misdiagnosis
	// versus the static threshold.
	for _, row := range tb.Rows {
		if row[0] == "two-flow" && row[1] == "0" {
			static, adaptive := cell(t, row[3]), cell(t, row[5])
			if adaptive >= static {
				t.Fatalf("adaptive misdiagnosis %v not below static %v", adaptive, static)
			}
		}
	}
}

func TestScenarioWatchdogDetectsCollusion(t *testing.T) {
	s := DefaultScenario()
	s.Duration = 5 * sim.Second
	s.Protocol = ProtocolCorrect
	s.PM = 100
	s.Topo = receiverPairTopo()
	s.ColludingReceivers = []frame.NodeID{1}
	s.Watchdog = true
	// Mark sender 3 as the misbehaving one in the topology.
	base := s.Topo
	s.Topo = func(seed uint64) *topo.Topology {
		tp := base(seed)
		tp.Misbehaving = []frame.NodeID{3}
		return tp
	}
	r, err := Run(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.CollusionsDetected != 1 {
		t.Fatalf("collusions detected = %d, want 1", r.CollusionsDetected)
	}
	if len(r.ColludingPairs) != 1 || r.ColludingPairs[0] != [2]frame.NodeID{3, 1} {
		t.Fatalf("colluding pairs = %v", r.ColludingPairs)
	}
}

func TestScenarioWatchdogQuietOnHonestNetwork(t *testing.T) {
	s := DefaultScenario()
	s.Duration = 5 * sim.Second
	s.Topo = StarTopo(4, false)
	s.Watchdog = true
	r, err := Run(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.CollusionsDetected != 0 {
		t.Fatalf("honest network produced %d collusion verdicts", r.CollusionsDetected)
	}
}

func TestAblationReceiverMisbehavior(t *testing.T) {
	cfg := tiny()
	tb, err := AblationReceiverMisbehavior(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Greedy receiver without audit: senders detect nothing and the
	// greedy flow starves the honest one. With audit: detections occur
	// and fairness is restored.
	var greedyNoAudit, greedyAudit []string
	for _, row := range tb.Rows {
		if row[0] == "greedy(0)" {
			if row[1] == "off" {
				greedyNoAudit = row
			} else {
				greedyAudit = row
			}
		}
	}
	if cell(t, greedyNoAudit[5]) != 0 {
		t.Fatalf("audit-off detections = %v", greedyNoAudit[5])
	}
	if cell(t, greedyAudit[5]) <= 0 {
		t.Fatal("audit-on produced no greedy detections")
	}
	gainNoAudit := cell(t, greedyNoAudit[3]) / cell(t, greedyNoAudit[2])
	gainAudit := cell(t, greedyAudit[3]) / cell(t, greedyAudit[2])
	if gainNoAudit < 1.3 {
		t.Fatalf("unaudited greedy flow gained only %.2fx", gainNoAudit)
	}
	if gainAudit >= gainNoAudit {
		t.Fatalf("audit did not reduce the greedy gain: %.2f vs %.2f", gainAudit, gainNoAudit)
	}
}
