package experiment

import (
	"strings"
	"testing"
)

func TestRenderChartBasic(t *testing.T) {
	out := RenderChart("ramp", 40, 10, []Series{
		{Name: "up", X: []float64{0, 50, 100}, Y: []float64{0, 50, 100}},
	})
	if !strings.Contains(out, "ramp") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "*") {
		t.Fatal("marker missing")
	}
	if !strings.Contains(out, "* up") {
		t.Fatalf("legend missing:\n%s", out)
	}
	// The max label appears on the top row, the min on the bottom.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "100") {
		t.Fatalf("top row missing max label:\n%s", out)
	}
}

func TestRenderChartMonotoneRampGeometry(t *testing.T) {
	out := RenderChart("ramp", 30, 6, []Series{
		{Name: "up", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}},
	})
	lines := strings.Split(out, "\n")[1:7] // plot rows
	// The top row's marker must be to the right of the bottom row's.
	top := strings.IndexByte(lines[0], '*')
	bottom := strings.IndexByte(lines[5], '*')
	if top <= bottom {
		t.Fatalf("ramp not increasing (top marker at %d, bottom at %d):\n%s", top, bottom, out)
	}
}

func TestRenderChartMultipleSeriesMarkers(t *testing.T) {
	out := RenderChart("two", 30, 8, []Series{
		{Name: "a", X: []float64{0, 1}, Y: []float64{0, 1}},
		{Name: "b", X: []float64{0, 1}, Y: []float64{1, 0}},
	})
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("distinct markers missing:\n%s", out)
	}
}

func TestRenderChartDegenerate(t *testing.T) {
	if out := RenderChart("empty", 30, 8, nil); !strings.Contains(out, "no data") {
		t.Fatalf("empty chart: %q", out)
	}
	// Flat series must not divide by zero.
	out := RenderChart("flat", 30, 8, []Series{
		{Name: "f", X: []float64{1, 1, 1}, Y: []float64{5, 5, 5}},
	})
	if !strings.Contains(out, "*") {
		t.Fatalf("flat series not rendered:\n%s", out)
	}
}

func TestRenderChartClampsTinySizes(t *testing.T) {
	out := RenderChart("tiny", 1, 1, []Series{{Name: "s", X: []float64{0, 1}, Y: []float64{0, 1}}})
	if len(out) == 0 {
		t.Fatal("tiny chart empty")
	}
}

func TestTableChart(t *testing.T) {
	tb := &Table{Title: "T", Columns: []string{"PM%", "MSB", "AVG"}}
	tb.AddRow("0", "150.0±2.0", "150.0")
	tb.AddRow("50", "290.0±5.0", "130.0")
	tb.AddRow("100", "1271.0±0.1", "0.0")
	out := tb.Chart(40, 10, 0, 1, 2)
	if !strings.Contains(out, "* MSB") || !strings.Contains(out, "o AVG") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "1271") {
		t.Fatalf("y-axis max missing:\n%s", out)
	}
}

func TestTableChartSkipsBadCells(t *testing.T) {
	tb := &Table{Title: "T", Columns: []string{"x", "y"}}
	tb.AddRow("0", "1.0")
	tb.AddRow("-", "oops")
	tb.AddRow("2", "3.0")
	out := tb.Chart(30, 6, 0, 1)
	if strings.Contains(out, "no data") {
		t.Fatalf("valid cells ignored:\n%s", out)
	}
}

func TestParseCell(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"12.5", 12.5, true},
		{"12.5±3.0", 12.5, true},
		{" 7 ", 7, true},
		{"-", 0, false},
		{"rts/cts", 0, false},
	}
	for _, c := range cases {
		got, ok := parseCell(c.in)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("parseCell(%q) = (%v, %v), want (%v, %v)", c.in, got, ok, c.want, c.ok)
		}
	}
}
