package experiment

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: one paper figure's data.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carry caveats (parameters used, substitutions).
	Notes []string
	// Events is the total kernel event count across every run behind
	// the table, so `macsim bench` can record events/op for figure
	// targets. Not rendered.
	Events uint64
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("experiment: row with %d cells in %d-column table %q",
			len(cells), len(t.Columns), t.Title))
	}
	t.Rows = append(t.Rows, cells)
}

// Render formats the table as aligned ASCII.
func (t *Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	sep := make([]string, len(t.Columns))
	hdr := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		hdr[i] = pad(c, widths[i])
		sep[i] = strings.Repeat("-", widths[i])
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(hdr, " | "))
	fmt.Fprintf(&b, "|-%s-|\n", strings.Join(sep, "-|-"))
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, cell := range row {
			cells[i] = pad(cell, widths[i])
		}
		fmt.Fprintf(&b, "| %s |\n", strings.Join(cells, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quoting cells that
// contain commas or quotes).
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Columns)
	for _, row := range t.Rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(c, `"`, `""`))
			b.WriteByte('"')
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// fmtF renders a float with one decimal.
func fmtF(v float64) string { return fmt.Sprintf("%.1f", v) }

// fmtCI renders mean ± 95% CI.
func fmtCI(mean, ci float64) string { return fmt.Sprintf("%.1f±%.1f", mean, ci) }

// fmtF3 renders a float with three decimals (fairness indices).
func fmtF3(v float64) string { return fmt.Sprintf("%.3f", v) }
