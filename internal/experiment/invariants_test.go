package experiment

import (
	"math"
	"testing"

	"dcfguard/internal/sim"
	"dcfguard/internal/topo"
)

// TestRunInvariants checks conservation laws that must hold for every
// scenario, across a diverse set of topologies and protocols.
func TestRunInvariants(t *testing.T) {
	scenarios := map[string]func() Scenario{
		"star-honest-80211": func() Scenario {
			s := quick()
			s.Protocol = Protocol80211
			s.Topo = StarTopo(6, false)
			return s
		},
		"star-two-flow-correct": func() Scenario {
			s := quick()
			s.Topo = StarTopo(8, true, 3)
			s.PM = 60
			return s
		},
		"line": func() Scenario {
			s := quick()
			s.Topo = func(uint64) *topo.Topology { return topo.Line(6, 180) }
			return s
		},
		"grid": func() Scenario {
			s := quick()
			s.Topo = func(uint64) *topo.Topology { return topo.Grid(3, 3, 160) }
			return s
		},
		"random-two-ray": func() Scenario {
			s := quick()
			s.Topo = RandomTopo(15, 2)
			s.PM = 70
			s.Shadowing = twoRay()
			return s
		},
		"coherence": func() Scenario {
			s := quick()
			s.CoherenceInterval = 200 * sim.Microsecond
			s.PM = 50
			return s
		},
	}
	for name, build := range scenarios {
		name, build := name, build
		t.Run(name, func(t *testing.T) {
			s := build()
			s.Duration = 3 * sim.Second
			r, err := Run(s, 1)
			if err != nil {
				t.Fatal(err)
			}
			tp := s.Topo(1)

			// Throughput map covers exactly the measured flows.
			if len(r.ThroughputBySender) != len(tp.Measured) {
				t.Errorf("throughput map has %d entries, measured %d",
					len(r.ThroughputBySender), len(tp.Measured))
			}
			// TotalKbps is the sum of per-sender goodputs.
			sum := 0.0
			for _, v := range r.ThroughputBySender {
				if v < 0 {
					t.Errorf("negative throughput %v", v)
				}
				sum += v
			}
			if math.Abs(sum-r.TotalKbps) > 1e-6 {
				t.Errorf("TotalKbps %v != sum %v", r.TotalKbps, sum)
			}
			// Fairness within Jain bounds (or 0 with no traffic).
			n := float64(len(tp.Measured))
			if r.Fairness != 0 && (r.Fairness < 1/n-1e-9 || r.Fairness > 1+1e-9) {
				t.Errorf("fairness %v outside [1/%v, 1]", r.Fairness, n)
			}
			// Percentages are percentages.
			for _, p := range []float64{r.CorrectDiagnosisPct, r.MisdiagnosisPct} {
				if p < 0 || p > 100 {
					t.Errorf("percentage %v out of range", p)
				}
			}
			// Delays are non-negative and consistent with activity.
			if r.AvgHonestDelayMs < 0 || r.AvgMisbehaverDelayMs < 0 {
				t.Errorf("negative delay (%v, %v)", r.AvgHonestDelayMs, r.AvgMisbehaverDelayMs)
			}
			// Something must actually have happened.
			if r.TotalKbps == 0 {
				t.Error("no traffic carried")
			}
			if r.EventsFired == 0 {
				t.Error("no events fired")
			}
		})
	}
}

// TestRunInvariantsDeterministicAcrossTopologies re-checks determinism
// on the less common builders.
func TestRunInvariantsDeterministicAcrossTopologies(t *testing.T) {
	s := quick()
	s.Duration = 2 * sim.Second
	s.Topo = func(uint64) *topo.Topology { return topo.Grid(3, 2, 150) }
	a, err := Run(s, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(s, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalKbps != b.TotalKbps || a.EventsFired != b.EventsFired {
		t.Fatal("grid topology run not deterministic")
	}
}
