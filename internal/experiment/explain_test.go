package experiment

import (
	"fmt"
	"strings"
	"testing"

	"dcfguard/internal/frame"
	"dcfguard/internal/obs"
)

// Flight-recorder forensics, cross-checked against the diagnosis CSV:
// the evidence chain obs.Explain reconstructs from causal references
// must consist of exactly the records the DiagnosisCSV sink rendered —
// same exchanges, same numbers — so the "why was this sender diagnosed"
// report and the figure-ready export can never tell different stories.

// csvRowOf renders a CatDiagnosis record the way DiagnosisCSV.Emit does.
func csvRowOf(r obs.Record) string {
	return fmt.Sprintf("%d,%d,%d,%d,%s,%g,%g,%g,%s\n",
		int64(r.Time), r.Node, r.Peer, r.Seq, r.Event, r.A, r.B, r.C, r.Aux)
}

func TestExplainCrossChecksDiagnosisCSV(t *testing.T) {
	const misbehaver = frame.NodeID(3)
	s := quickScenario("explain-pm80")
	capture := obs.NewCaptureSink()
	diag := obs.NewDiagnosisCSV("")
	s.Observe = &obs.Config{
		Metrics:    true,
		Categories: obs.AllCategories(),
		Sinks:      []obs.Sink{capture, diag},
	}
	if _, err := Run(s, 1); err != nil {
		t.Fatal(err)
	}

	recs := capture.Records()
	exps := obs.Explain(recs, misbehaver)
	if len(exps) == 0 {
		t.Fatal("PM-80 run produced no decisions about the misbehaver")
	}
	csv := diag.CSV()
	if !strings.HasPrefix(csv, obs.DiagnosisCSVHeader+"\n") {
		t.Fatal("diagnosis CSV lost its header")
	}

	var diagnosed *obs.Explanation
	for i := range exps {
		if exps[i].Decision.Event == "diagnosis" && exps[i].Decision.Aux == "diagnosed" {
			diagnosed = &exps[i]
			break
		}
	}
	if diagnosed == nil {
		t.Fatal("no 'diagnosed' verdict transition for the misbehaver")
	}
	if diagnosed.Truncated {
		t.Fatal("evidence chain truncated despite a full capture")
	}
	if len(diagnosed.Steps) == 0 {
		t.Fatal("diagnosis explanation carries no window evidence")
	}
	if want := int(diagnosed.Decision.E); len(diagnosed.Steps) != want {
		t.Fatalf("chain has %d steps, decision says %d packets were summed",
			len(diagnosed.Steps), want)
	}

	// Every link in the chain must appear verbatim in the CSV export:
	// the decision row and each window row.
	if !strings.Contains(csv, csvRowOf(diagnosed.Decision)) {
		t.Fatalf("decision row missing from diagnosis CSV:\n%s", csvRowOf(diagnosed.Decision))
	}
	sawDeviation := false
	for i, step := range diagnosed.Steps {
		if step.Window.Event != "window" {
			t.Fatalf("step %d anchors %q, want a window record", i, step.Window.Event)
		}
		if step.Window.Peer != misbehaver {
			t.Fatalf("step %d is about sender %d", i, step.Window.Peer)
		}
		if !strings.Contains(csv, csvRowOf(step.Window)) {
			t.Fatalf("step %d window row missing from diagnosis CSV:\n%s", i, csvRowOf(step.Window))
		}
		if i > 0 && step.Window.Time < diagnosed.Steps[i-1].Window.Time {
			t.Fatalf("steps out of order: step %d at t=%d before step %d at t=%d",
				i, int64(step.Window.Time), i-1, int64(diagnosed.Steps[i-1].Window.Time))
		}
		if step.Deviation != nil {
			sawDeviation = true
			// The deviation's evidence must agree with the window's: the
			// same exchange, the same observed backoff.
			if step.Deviation.Seq != step.Window.Seq || step.Deviation.Time != step.Window.Time {
				t.Fatalf("step %d deviation is a different exchange", i)
			}
			//detlint:allow floateq -- both fields carry the same integer-valued backoff count
			if step.Deviation.C != step.Window.E {
				t.Fatalf("step %d deviation b_act %g != window b_act %g",
					i, step.Deviation.C, step.Window.E)
			}
			if step.Assign == nil {
				t.Fatalf("step %d deviation lacks its assignment record", i)
			}
		}
	}
	// The decision's own tipping window is the newest step, linked by
	// Parent identity.
	if last := diagnosed.Steps[len(diagnosed.Steps)-1]; last.Window.Self != diagnosed.Decision.Parent {
		t.Fatal("decision's Parent does not point at the newest window record")
	}
	if !sawDeviation {
		t.Fatal("a PM-80 misbehaver was diagnosed without a single deviation record")
	}

	// The rendered report leads with the verdict and shows the evidence.
	text := diagnosed.Text()
	for _, want := range []string{"DIAGNOSED sender 3", "evidence (", "b_exp="} {
		if !strings.Contains(text, want) {
			t.Fatalf("Text() missing %q:\n%s", want, text)
		}
	}
	// And the JSONL form re-encodes every chain record.
	jsonl := diagnosed.JSONL()
	if got := strings.Count(jsonl, "\n"); got < 1+len(diagnosed.Steps) {
		t.Fatalf("JSONL has %d lines, want at least %d", got, 1+len(diagnosed.Steps))
	}
}

// TestExplainAllNodes: NoNode explains every decision in the capture,
// honest senders included (their verdicts may be transitions to
// "cleared" or nothing at all — but no diagnosis about the misbehaver
// may be dropped).
func TestExplainAllNodes(t *testing.T) {
	s := quickScenario("explain-all")
	capture := obs.NewCaptureSink()
	s.Observe = &obs.Config{Categories: obs.AllCategories(), Sinks: []obs.Sink{capture}}
	if _, err := Run(s, 1); err != nil {
		t.Fatal(err)
	}
	all := obs.Explain(capture.Records(), obs.NoNode)
	only := obs.Explain(capture.Records(), frame.NodeID(3))
	if len(all) < len(only) {
		t.Fatalf("NoNode explained %d decisions, node 3 alone %d", len(all), len(only))
	}
}
