package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// DebugServer is the live introspection endpoint behind `macsim
// -debug-addr`: net/http/pprof under /debug/pprof/, an expvar-style
// registry snapshot at /debug/metrics, and sweep progress at
// /debug/sweep. It observes the run from a separate goroutine through
// atomics only — it cannot perturb the simulation, so determinism holds
// with the endpoint up.
type DebugServer struct {
	mu       sync.Mutex
	registry *Registry
	progress func() any
	ln       net.Listener
	srv      *http.Server
}

// NewDebugServer returns an unstarted server.
func NewDebugServer() *DebugServer {
	d := &DebugServer{}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/metrics", d.serveMetrics)
	mux.HandleFunc("/debug/sweep", d.serveSweep)
	mux.HandleFunc("/", d.serveIndex)
	d.srv = &http.Server{Handler: mux}
	return d
}

// SetRegistry publishes reg on /debug/metrics.
func (d *DebugServer) SetRegistry(reg *Registry) {
	d.mu.Lock()
	d.registry = reg
	d.mu.Unlock()
}

// SetProgress publishes the value returned by fn (typically an
// experiment.SweepProgress snapshot) on /debug/sweep. fn is called per
// request and must be safe to call concurrently with the run.
func (d *DebugServer) SetProgress(fn func() any) {
	d.mu.Lock()
	d.progress = fn
	d.mu.Unlock()
}

// Start listens on addr (host:port; ":0" picks a free port) and serves
// in a background goroutine. It returns the bound address.
func (d *DebugServer) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: debug listen %s: %w", addr, err)
	}
	d.mu.Lock()
	d.ln = ln
	d.mu.Unlock()
	go func() { _ = d.srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Close stops the listener and drains in-flight handlers before
// returning, so callers may close the sinks and registry the handlers
// read as soon as Close returns — a handler mid-snapshot never races a
// closing run. A handler stuck past the drain window is cut off hard.
func (d *DebugServer) Close() error {
	d.mu.Lock()
	ln := d.ln
	d.ln = nil
	d.mu.Unlock()
	if ln == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := d.srv.Shutdown(ctx); err != nil {
		return d.srv.Close()
	}
	return nil
}

func (d *DebugServer) serveIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	fmt.Fprint(w, `<html><body><h1>macsim debug</h1><ul>
<li><a href="/debug/metrics">/debug/metrics</a> — registry snapshot</li>
<li><a href="/debug/sweep">/debug/sweep</a> — sweep progress</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> — profiles</li>
</ul></body></html>`)
}

// serveMetrics renders the registry snapshot: JSON by default (the
// historical format), Prometheus text with ?format=prometheus.
func (d *DebugServer) serveMetrics(w http.ResponseWriter, r *http.Request) {
	d.mu.Lock()
	reg := d.registry
	d.mu.Unlock()
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", PrometheusContentType)
		_ = reg.WritePrometheus(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(reg.Snapshot())
}

func (d *DebugServer) serveSweep(w http.ResponseWriter, _ *http.Request) {
	d.mu.Lock()
	fn := d.progress
	d.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if fn == nil {
		fmt.Fprintln(w, "{}")
		return
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(fn())
}
