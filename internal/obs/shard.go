package obs

import "dcfguard/internal/sim"

// Shard fan-in for the trace bus.
//
// In a sharded run every component still emits records synchronously
// from its own event callbacks — but those callbacks execute on
// concurrent shard goroutines, so they cannot share the run's real Bus
// (its sinks are ordered logs). ShardFanin gives every shard a private
// front Bus whose sole subscriber buffers records into a sim.Fanin; at
// each window barrier the coordinator flushes the fan-in, which replays
// the records into the downstream Bus — ring, JSONL, CSV, everything —
// in exactly the order a serial run would have emitted them (see
// sim/fanin.go for the ordering argument).
//
// The pass-through contract holds shard-side too: front buses never
// feed anything back into simulation state, and a run with fan-in
// enabled is bit-identical to the same run without it.
type ShardFanin struct {
	fronts []*Bus
	fan    *sim.Fanin[Record]
}

// shardSink is the single subscriber of one front bus: it tags records
// with its shard index into the shared fan-in.
type shardSink struct {
	fan   *sim.Fanin[Record]
	shard int
}

func (s *shardSink) Emit(r Record) { s.fan.Emit(s.shard, r) }

// NewShardFanin builds per-shard front buses mirroring the Runtime's
// category subscriptions, draining into its trace bus. It returns nil —
// a valid, permanently disabled fan-in — when tracing is off, so
// callers wire it unconditionally. scheds are the run's shard
// schedulers, indexed like the medium's shard assignment.
func (rt *Runtime) NewShardFanin(scheds []*sim.Scheduler) *ShardFanin {
	if rt == nil || rt.bus == nil {
		return nil
	}
	f := &ShardFanin{fronts: make([]*Bus, len(scheds))}
	f.fan = sim.NewFanin(scheds, func(r Record) { rt.bus.Emit(r) })
	for i := range f.fronts {
		f.fronts[i] = &Bus{}
		f.fronts[i].Subscribe(rt.cats, &shardSink{fan: f.fan, shard: i})
	}
	return f
}

// Bus returns shard i's front bus (nil on a nil fan-in, which disables
// emission exactly like a nil *Bus anywhere else).
func (f *ShardFanin) Bus(i int) *Bus {
	if f == nil {
		return nil
	}
	return f.fronts[i]
}

// Buses returns all front buses indexed by shard (nil on a nil fan-in).
func (f *ShardFanin) Buses() []*Bus {
	if f == nil {
		return nil
	}
	return f.fronts
}

// Flush merges and replays all buffered records downstream.
// Coordinator-only (window barrier or post-run); nil-safe.
func (f *ShardFanin) Flush() {
	if f == nil {
		return
	}
	f.fan.Flush()
}
