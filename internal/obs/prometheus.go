package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) for the metrics
// registry. Every metric maps to one family named
//
//	dcf_<scope>_<name>            gauges and histograms
//	dcf_<scope>_<name>_total      counters
//
// with a `node` label on per-node metrics (omitted for NoNode-scoped,
// system-wide metrics). Families render in sorted name order and series
// within a family in node order, so two scrapes of an idle registry are
// byte-identical — the same determinism discipline as every other
// export in this repo. Histograms render cumulatively with the
// mandatory `+Inf` bucket, `_sum` and `_count`.

// PrometheusContentType is the Content-Type of the exposition format.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName mangles a metric key into a legal Prometheus metric name:
// anything outside [a-zA-Z0-9_] becomes '_'.
func promName(scope, name string) string {
	var b strings.Builder
	b.WriteString("dcf_")
	for _, part := range []string{scope, name} {
		if b.Len() > len("dcf_") {
			b.WriteByte('_')
		}
		for _, r := range part {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z',
				r >= '0' && r <= '9', r == '_':
				b.WriteRune(r)
			default:
				b.WriteByte('_')
			}
		}
	}
	return b.String()
}

// promLabels renders the label set for a key ("" for system-wide).
func promLabels(k Key) string {
	if k.Node == NoNode {
		return ""
	}
	return `{node="` + strconv.Itoa(int(k.Node)) + `"}`
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promFamily groups the snapshot points sharing one exposition name.
type promFamily struct {
	name string
	kind string // "counter", "gauge", "histogram"
	idx  []int  // indexes into the source slice, node-sorted
}

func promFamilies(n int, keyAt func(int) Key, kind string) []promFamily {
	byName := map[string]*promFamily{}
	var order []string
	for i := 0; i < n; i++ {
		name := promName(keyAt(i).Scope, keyAt(i).Name)
		f, ok := byName[name]
		if !ok {
			f = &promFamily{name: name, kind: kind}
			byName[name] = f
			order = append(order, name)
		}
		f.idx = append(f.idx, i)
	}
	sort.Strings(order)
	out := make([]promFamily, 0, len(order))
	for _, name := range order {
		f := byName[name]
		sort.Slice(f.idx, func(a, b int) bool {
			return keyLess(keyAt(f.idx[a]), keyAt(f.idx[b]))
		})
		out = append(out, *f)
	}
	return out
}

// WritePrometheus renders the snapshot in the Prometheus text format.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, f := range promFamilies(len(s.Counters), func(i int) Key { return s.Counters[i].Key }, "counter") {
		fmt.Fprintf(&b, "# TYPE %s_total counter\n", f.name)
		for _, i := range f.idx {
			p := s.Counters[i]
			fmt.Fprintf(&b, "%s_total%s %d\n", f.name, promLabels(p.Key), p.Value)
		}
	}
	for _, f := range promFamilies(len(s.Gauges), func(i int) Key { return s.Gauges[i].Key }, "gauge") {
		fmt.Fprintf(&b, "# TYPE %s gauge\n", f.name)
		for _, i := range f.idx {
			p := s.Gauges[i]
			fmt.Fprintf(&b, "%s%s %s\n", f.name, promLabels(p.Key), promFloat(p.Value))
		}
	}
	for _, f := range promFamilies(len(s.Histograms), func(i int) Key { return s.Histograms[i].Key }, "histogram") {
		fmt.Fprintf(&b, "# TYPE %s histogram\n", f.name)
		for _, i := range f.idx {
			p := s.Histograms[i]
			node := ""
			if p.Node != NoNode {
				node = `node="` + strconv.Itoa(int(p.Node)) + `",`
			}
			cum := uint64(0)
			for bi, bound := range p.Bounds {
				cum += p.Buckets[bi]
				fmt.Fprintf(&b, "%s_bucket{%sle=\"%s\"} %d\n", f.name, node, promFloat(bound), cum)
			}
			fmt.Fprintf(&b, "%s_bucket{%sle=\"+Inf\"} %d\n", f.name, node, p.Count)
			fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, promLabels(p.Key), promFloat(p.Sum))
			fmt.Fprintf(&b, "%s_count%s %d\n", f.name, promLabels(p.Key), p.Count)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WritePrometheus renders a point-in-time snapshot of the registry in
// the Prometheus text exposition format. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	return r.Snapshot().WritePrometheus(w)
}
