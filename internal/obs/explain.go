package obs

import (
	"fmt"
	"strings"

	"dcfguard/internal/frame"
	"dcfguard/internal/sim"
)

// Flight-recorder forensics: reconstruct the evidence chain behind a
// diagnosis decision from a captured trace (DESIGN.md §14). The monitor
// links records causally — a "diagnosis" verdict transition points at
// the "window" update that tipped it, window updates chain backward
// through their predecessors, and each exchange's deviation record
// points at the backoff assignment it was measured against — so walking
// Parent references backward recovers exactly the per-packet evidence
// (assigned vs. observed backoff, window sum, threshold margin) that
// produced the verdict. This is pure post-processing over immutable
// records: nothing here can perturb a run.

// EvidenceStep is one diagnosed window's worth of evidence: the window
// update itself plus the co-located deviation record and the assignment
// decision it traces back to, when those were captured.
type EvidenceStep struct {
	// Window is the per-packet "window" record: A = B_exp − B_act,
	// B = window sum, C = threshold, D = B_exp, E = B_act.
	Window Record
	// Deviation is the equation-(1) record of the same exchange, nil
	// when the packet did not deviate (or the category was off).
	Deviation *Record
	// Assign is the backoff-assignment decision the sender was counting
	// against, nil when the backoff category was not captured.
	Assign *Record
}

// Explanation is the reconstructed lineage of one decision record.
type Explanation struct {
	// Decision is the anchor: a "diagnosis" verdict transition or a
	// "proven" attempt-verification record.
	Decision Record
	// Steps holds the window evidence chain, oldest first. Empty for
	// "proven" decisions (their proof is the attempt numbers on the
	// record itself).
	Steps []EvidenceStep
	// Truncated reports that a Parent reference pointed outside the
	// capture (ring eviction or a narrower category set).
	Truncated bool
}

// exchangeKey co-locates records of one monitor/sender exchange.
type exchangeKey struct {
	node frame.NodeID
	peer frame.NodeID
	seq  uint32
	when sim.Time
}

// Explain reconstructs the evidence chains behind every decision about
// node in recs: "diagnosis" verdict transitions and "proven"
// attempt-verification proofs where node is the accused sender
// (NoNode explains every node's decisions). Records may come from a
// CaptureSink, a crash-ring tail, or a parsed JSONL trace; order does
// not matter — lineage is recovered from the causal references alone.
func Explain(recs []Record, node frame.NodeID) []Explanation {
	bySelf := make(map[Ref]Record)
	devByExchange := make(map[exchangeKey]int)
	for i, r := range recs {
		if !r.Self.IsZero() {
			bySelf[r.Self] = r
		}
		if r.Event == "deviation" {
			devByExchange[exchangeKey{r.Node, r.Peer, r.Seq, r.Time}] = i
		}
	}

	var out []Explanation
	for _, r := range recs {
		if r.Event != "diagnosis" && r.Event != "proven" {
			continue
		}
		if node != NoNode && r.Peer != node {
			continue
		}
		e := Explanation{Decision: r}
		if r.Event == "diagnosis" {
			// E on the decision records how many packets the verdict
			// summed; walk that many windows back (everything reachable
			// when the count is absent).
			depth := int(r.E)
			if depth <= 0 {
				depth = len(recs)
			}
			ref := r.Parent
			for i := 0; i < depth && !ref.IsZero(); i++ {
				win, ok := bySelf[ref]
				if !ok {
					e.Truncated = true
					break
				}
				step := EvidenceStep{Window: win}
				if di, ok := devByExchange[exchangeKey{win.Node, win.Peer, win.Seq, win.Time}]; ok {
					dev := recs[di]
					step.Deviation = &dev
					if a, ok := bySelf[dev.Parent]; ok {
						step.Assign = &a
					}
				}
				e.Steps = append(e.Steps, step)
				ref = win.Parent
			}
			// Oldest first reads like the run unfolded.
			for i, j := 0, len(e.Steps)-1; i < j; i, j = i+1, j-1 {
				e.Steps[i], e.Steps[j] = e.Steps[j], e.Steps[i]
			}
		}
		out = append(out, e)
	}
	return out
}

// Text renders the explanation as a human-readable forensic report.
func (e Explanation) Text() string {
	var b strings.Builder
	d := e.Decision
	switch d.Event {
	case "proven":
		fmt.Fprintf(&b, "t=%d monitor %d PROVED sender %d misbehaving: retransmission of seq %d carried attempt %g (expected > %g)\n",
			int64(d.Time), d.Node, d.Peer, d.Seq, d.A, d.B)
	default:
		verb := "DIAGNOSED"
		if d.Aux == "cleared" {
			verb = "cleared"
		}
		fmt.Fprintf(&b, "t=%d monitor %d %s sender %d: window sum %g vs thresh %g (margin %+g) at seq %d\n",
			int64(d.Time), d.Node, verb, d.Peer, d.B, d.C, d.A, d.Seq)
	}
	if len(e.Steps) > 0 {
		fmt.Fprintf(&b, "  evidence (%d window updates, oldest first):\n", len(e.Steps))
	}
	for _, s := range e.Steps {
		w := s.Window
		fmt.Fprintf(&b, "    t=%-10d seq=%-6d b_exp=%g b_act=%g diff=%+g sum=%g/%g [%s]",
			int64(w.Time), w.Seq, w.D, w.E, w.A, w.B, w.C, w.Aux)
		if s.Deviation != nil {
			fmt.Fprintf(&b, " deviation=%.4g penalty=%g", s.Deviation.A, s.Deviation.B)
		}
		if s.Assign != nil {
			fmt.Fprintf(&b, " assigned=%g(base %g+pen %g @t=%d)",
				s.Assign.C, s.Assign.A, s.Assign.B, int64(s.Assign.Time))
		}
		b.WriteString("\n")
	}
	if e.Truncated {
		b.WriteString("  (chain truncated: older evidence fell outside the capture)\n")
	}
	return b.String()
}

// JSONL renders the explanation as trace-format JSON lines: the decision
// first, then the evidence records oldest first (windows with their
// deviation and assignment records interleaved).
func (e Explanation) JSONL() string {
	var b strings.Builder
	appendRecordJSON(&b, e.Decision)
	for _, s := range e.Steps {
		if s.Assign != nil {
			appendRecordJSON(&b, *s.Assign)
		}
		if s.Deviation != nil {
			appendRecordJSON(&b, *s.Deviation)
		}
		appendRecordJSON(&b, s.Window)
	}
	return b.String()
}
