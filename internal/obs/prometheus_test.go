package obs

import (
	"strings"
	"testing"
)

// TestWritePrometheusFormat pins the exposition down to the byte: family
// naming (_total for counters), node labels, sorted family and series
// order, cumulative histogram buckets with the mandatory +Inf, _sum and
// _count. Scrapers are parsers; the format is an API.
func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve", NoNode, "jobs_submitted").Add(3)
	r.Counter("mac", 1, "retries").Add(7)
	r.Counter("mac", 0, "retries").Add(5)
	r.Gauge("core", 2, "window_sum").Set(1.5, 10)
	h := r.Histogram("shard", 0, "busy_us", []float64{10, 100})
	h.Observe(4)
	h.Observe(40)
	h.Observe(400)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	// Sections render counters, then gauges, then histograms, each
	// sorted by family name, series node-sorted within a family.
	want := `# TYPE dcf_mac_retries_total counter
dcf_mac_retries_total{node="0"} 5
dcf_mac_retries_total{node="1"} 7
# TYPE dcf_serve_jobs_submitted_total counter
dcf_serve_jobs_submitted_total 3
# TYPE dcf_core_window_sum gauge
dcf_core_window_sum{node="2"} 1.5
# TYPE dcf_shard_busy_us histogram
dcf_shard_busy_us_bucket{node="0",le="10"} 1
dcf_shard_busy_us_bucket{node="0",le="100"} 2
dcf_shard_busy_us_bucket{node="0",le="+Inf"} 3
dcf_shard_busy_us_sum{node="0"} 444
dcf_shard_busy_us_count{node="0"} 3
`
	if got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// Determinism: a second scrape of the idle registry is byte-identical.
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != got {
		t.Fatal("two scrapes of an idle registry differ")
	}
}

// TestWritePrometheusNil: a nil registry writes nothing and does not
// error — the same nil-safety as every other obs handle.
func TestWritePrometheusNil(t *testing.T) {
	var r *Registry
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("nil registry wrote %q", b.String())
	}
}

// TestPromNameMangling: scope/name characters outside the Prometheus
// alphabet become underscores.
func TestPromNameMangling(t *testing.T) {
	if got, want := promName("per-node", "busy.time"), "dcf_per_node_busy_time"; got != want {
		t.Fatalf("promName = %q, want %q", got, want)
	}
}
