package obs

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// Synthetic flight-recorder trace: three window updates chained by
// Parent, one with a deviation that links back to its assignment, and a
// "diagnosis" verdict transition anchored on the newest window. Node 0
// monitors sender 3.
func explainFixture() []Record {
	assign := Record{Cat: CatBackoff, Time: 10, Node: 0, Peer: 3, Event: "assign",
		Seq: 1, A: 12, B: 0, C: 12,
		Self: Ref{When: 10, Key: 100, Seq: 1}}
	w1 := Record{Cat: CatDiagnosis, Time: 20, Node: 0, Peer: 3, Event: "window",
		Aux: "ok", Seq: 1, A: 2, B: 2, C: 9, D: 12, E: 10,
		Self: Ref{When: 20, Key: 200, Seq: 1}}
	dev := Record{Cat: CatDeviation, Time: 30, Node: 0, Peer: 3, Event: "deviation",
		Seq: 2, A: 5, B: 3, C: 4, D: 12,
		Self: Ref{When: 30, Key: 300, Seq: 2}, Parent: assign.Self}
	w2 := Record{Cat: CatDiagnosis, Time: 30, Node: 0, Peer: 3, Event: "window",
		Aux: "ok", Seq: 2, A: 8, B: 10, C: 9, D: 12, E: 4,
		Self: Ref{When: 30, Key: 200, Seq: 2}, Parent: w1.Self}
	w3 := Record{Cat: CatDiagnosis, Time: 40, Node: 0, Peer: 3, Event: "window",
		Aux: "diagnosed", Seq: 3, A: 1, B: 11, C: 9, D: 12, E: 11,
		Self: Ref{When: 40, Key: 200, Seq: 3}, Parent: w2.Self}
	diag := Record{Cat: CatDiagnosis, Time: 40, Node: 0, Peer: 3, Event: "diagnosis",
		Aux: "diagnosed", Seq: 3, A: 2, B: 11, C: 9, E: 3,
		Self: Ref{When: 40, Key: 400, Seq: 3}, Parent: w3.Self}
	// Emission order scrambled on purpose: lineage must come from the
	// causal references, not slice position.
	return []Record{w2, diag, assign, w1, dev, w3}
}

func TestExplainWalksLineage(t *testing.T) {
	exps := Explain(explainFixture(), 3)
	if len(exps) != 1 {
		t.Fatalf("explanations = %d, want 1", len(exps))
	}
	e := exps[0]
	if e.Decision.Event != "diagnosis" || e.Truncated {
		t.Fatalf("decision %q truncated=%v", e.Decision.Event, e.Truncated)
	}
	if len(e.Steps) != 3 {
		t.Fatalf("steps = %d, want 3 (decision.E)", len(e.Steps))
	}
	// Oldest first: w1, w2, w3.
	for i, wantSeq := range []uint32{1, 2, 3} {
		if e.Steps[i].Window.Seq != wantSeq {
			t.Fatalf("step %d window seq %d, want %d", i, e.Steps[i].Window.Seq, wantSeq)
		}
	}
	// The deviating exchange carries its deviation and assignment.
	if e.Steps[1].Deviation == nil || e.Steps[1].Deviation.Seq != 2 {
		t.Fatal("step 1 lost its deviation record")
	}
	if e.Steps[1].Assign == nil || e.Steps[1].Assign.Event != "assign" {
		t.Fatal("step 1 deviation did not resolve its assignment")
	}
	if e.Steps[0].Deviation != nil || e.Steps[2].Deviation != nil {
		t.Fatal("non-deviating steps grew deviation records")
	}

	text := e.Text()
	for _, want := range []string{
		"DIAGNOSED sender 3", "margin +2", "evidence (3 window updates",
		"b_exp=12 b_act=4", "deviation=5 penalty=3", "assigned=12",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("Text() missing %q:\n%s", want, text)
		}
	}

	// JSONL: one line per chain record, decision first, all valid JSON.
	lines := strings.Split(strings.TrimRight(e.JSONL(), "\n"), "\n")
	if len(lines) != 6 { // decision + w1 + (assign+dev+w2) + w3
		t.Fatalf("JSONL lines = %d:\n%s", len(lines), e.JSONL())
	}
	for i, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", i, err, ln)
		}
	}
	var first map[string]any
	json.Unmarshal([]byte(lines[0]), &first)
	if first["event"] != "diagnosis" {
		t.Fatalf("JSONL leads with %v, want the decision", first["event"])
	}
}

// TestExplainTruncated: a Parent pointing outside the capture (ring
// eviction) flags the explanation instead of fabricating evidence.
func TestExplainTruncated(t *testing.T) {
	recs := explainFixture()
	// Drop w1: w2's Parent now dangles.
	var kept []Record
	for _, r := range recs {
		if r.Event == "window" && r.Seq == 1 {
			continue
		}
		kept = append(kept, r)
	}
	exps := Explain(kept, 3)
	if len(exps) != 1 {
		t.Fatalf("explanations = %d", len(exps))
	}
	if !exps[0].Truncated {
		t.Fatal("dangling Parent not flagged as truncated")
	}
	if len(exps[0].Steps) != 2 {
		t.Fatalf("steps = %d, want the 2 resolvable windows", len(exps[0].Steps))
	}
	if !strings.Contains(exps[0].Text(), "truncated") {
		t.Fatal("Text() hides the truncation")
	}
}

// TestExplainProven: attempt-verification proofs are decisions too, with
// the proof on the record itself (no window chain).
func TestExplainProven(t *testing.T) {
	recs := []Record{{
		Cat: CatDiagnosis, Time: 99, Node: 0, Peer: 3, Event: "proven",
		Seq: 7, A: 4, B: 2,
		Self: Ref{When: 99, Key: 500, Seq: 7},
	}}
	exps := Explain(recs, 3)
	if len(exps) != 1 || len(exps[0].Steps) != 0 {
		t.Fatalf("proven explanation = %+v", exps)
	}
	if !strings.Contains(exps[0].Text(), "PROVED sender 3") {
		t.Fatalf("Text() = %q", exps[0].Text())
	}
}

// TestExplainNodeFilter: asking about a node with no decisions returns
// nothing; NoNode returns everything.
func TestExplainNodeFilter(t *testing.T) {
	recs := explainFixture()
	if got := Explain(recs, 5); len(got) != 0 {
		t.Fatalf("node 5 explanations = %d, want 0", len(got))
	}
	if got := Explain(recs, NoNode); len(got) != 1 {
		t.Fatalf("NoNode explanations = %d, want 1", len(got))
	}
}

func TestCaptureSink(t *testing.T) {
	s := NewCaptureSink()
	if s.Len() != 0 {
		t.Fatal("fresh capture not empty")
	}
	s.Emit(Record{Seq: 1})
	s.Emit(Record{Seq: 2})
	got := s.Records()
	if len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("records = %v", got)
	}
	// Records returns a copy: mutating it does not corrupt the capture.
	got[0].Seq = 99
	if s.Records()[0].Seq != 1 {
		t.Fatal("Records aliases the internal buffer")
	}
}

// TestJSONLRefs: Self/Parent causal references serialise as [when, key,
// seq] triples, elided when zero — existing traces stay byte-stable.
func TestJSONLRefs(t *testing.T) {
	path := t.TempDir() + "/refs.jsonl"
	s := NewJSONLSink(path)
	s.Emit(Record{Cat: CatDiagnosis, Time: 40, Node: 0, Peer: 3, Event: "window",
		Seq: 3, A: 1, D: 12, E: 11,
		Self: Ref{When: 40, Key: 200, Seq: 3}, Parent: Ref{When: 30, Key: 200, Seq: 2}})
	s.Emit(Record{Cat: CatMACState, Time: 5, Node: 1, Peer: NoNode, Event: "contend"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	var m map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &m); err != nil {
		t.Fatal(err)
	}
	if m["d"] != float64(12) || m["e"] != float64(11) {
		t.Fatalf("d/e payloads = %v", m)
	}
	self, ok := m["self"].([]any)
	if !ok || len(self) != 3 || self[0] != float64(40) || self[1] != float64(200) || self[2] != float64(3) {
		t.Fatalf("self = %v", m["self"])
	}
	if parent, ok := m["parent"].([]any); !ok || parent[0] != float64(30) {
		t.Fatalf("parent = %v", m["parent"])
	}
	// Zero refs and zero payloads stay elided.
	m = nil // Unmarshal merges into a live map; start fresh
	if err := json.Unmarshal([]byte(lines[1]), &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"self", "parent", "d", "e"} {
		if _, present := m[k]; present {
			t.Fatalf("zero field %q serialised: %v", k, m)
		}
	}
}

func TestRefString(t *testing.T) {
	r := Ref{When: 40, Key: 200, Seq: 3}
	if r.String() != "40:200:3" {
		t.Fatalf("Ref.String() = %q", r.String())
	}
	if r.IsZero() || (Ref{}).IsZero() == false {
		t.Fatal("IsZero broken")
	}
}
