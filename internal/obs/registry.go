package obs

import (
	"encoding/json"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"dcfguard/internal/frame"
	"dcfguard/internal/sim"
)

// Key identifies one metric: a scope (the subsystem — "mac", "medium",
// "monitor"), the node it describes (NoNode for system-wide metrics),
// and the metric name.
type Key struct {
	Scope string       `json:"scope"`
	Node  frame.NodeID `json:"node"`
	Name  string       `json:"name"`
}

// Counter is a monotonically increasing metric handle. All methods are
// nil-safe: a nil *Counter no-ops, which is how a disabled registry
// costs one branch per hook point.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil handle).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value metric stamped with the simulated time of its
// most recent update — the "sim-time-aware" half of the registry: a
// snapshot shows not just a value but *when in the run* it was set.
// Value and timestamp are separate atomics; a concurrent reader may see
// a value paired with the neighbouring update's stamp, which is
// acceptable for monitoring (the simulation goroutine itself always
// observes its own writes).
type Gauge struct {
	bits atomic.Uint64 // math.Float64bits of the value
	at   atomic.Int64  // sim.Time of the last Set
}

// Set records v at simulated time now.
func (g *Gauge) Set(v float64, now sim.Time) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
	g.at.Store(int64(now))
}

// Value returns the last value and the simulated time it was set.
func (g *Gauge) Value() (v float64, at sim.Time) {
	if g == nil {
		return 0, 0
	}
	return math.Float64frombits(g.bits.Load()), sim.Time(g.at.Load())
}

// Histogram counts observations into fixed buckets chosen at
// registration; bucket i counts v <= Bounds[i], with one overflow
// bucket above the last bound. Observe is lock-free.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1
	count   atomic.Uint64
	sumBits atomic.Uint64 // math.Float64bits of the running sum
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		newBits := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, newBits) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the running sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Registry maps keys to metric handles. Handles are resolved once at
// attach time (Counter/Gauge/Histogram take the registration lock);
// after that every update is a lock-free atomic on the handle, so a
// single registry can be shared by all concurrent cells of a sweep. A
// nil *Registry resolves every lookup to a nil handle, and nil handles
// no-op — the disabled path.
type Registry struct {
	mu     sync.Mutex
	counts map[Key]*Counter
	gauges map[Key]*Gauge
	hists  map[Key]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[Key]*Counter),
		gauges: make(map[Key]*Gauge),
		hists:  make(map[Key]*Histogram),
	}
}

// Counter resolves (registering on first use) the counter handle for
// (scope, node, name). Returns nil on a nil registry.
func (r *Registry) Counter(scope string, node frame.NodeID, name string) *Counter {
	if r == nil {
		return nil
	}
	k := Key{scope, node, name}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[k]
	if !ok {
		c = &Counter{}
		r.counts[k] = c
	}
	return c
}

// Gauge resolves (registering on first use) the gauge handle for
// (scope, node, name). Returns nil on a nil registry.
func (r *Registry) Gauge(scope string, node frame.NodeID, name string) *Gauge {
	if r == nil {
		return nil
	}
	k := Key{scope, node, name}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram resolves (registering on first use) the histogram handle
// for (scope, node, name) with the given ascending bucket bounds. The
// bounds of the first registration win; later calls with different
// bounds return the existing handle. Returns nil on a nil registry.
func (r *Registry) Histogram(scope string, node frame.NodeID, name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	k := Key{scope, node, name}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[k]
	if !ok {
		b := make([]float64, len(bounds))
		copy(b, bounds)
		h = &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
		r.hists[k] = h
	}
	return h
}

// CounterPoint is one counter in a snapshot.
type CounterPoint struct {
	Key
	Value uint64 `json:"value"`
}

// GaugePoint is one gauge in a snapshot, with the simulated time of its
// last update.
type GaugePoint struct {
	Key
	Value float64  `json:"value"`
	At    sim.Time `json:"at"`
}

// HistogramPoint is one histogram in a snapshot.
type HistogramPoint struct {
	Key
	Bounds  []float64 `json:"bounds"`
	Buckets []uint64  `json:"buckets"`
	Count   uint64    `json:"count"`
	Sum     float64   `json:"sum"`
}

// Snapshot is a point-in-time view of a registry, ordered
// deterministically by (scope, node, name).
type Snapshot struct {
	Counters   []CounterPoint   `json:"counters"`
	Gauges     []GaugePoint     `json:"gauges"`
	Histograms []HistogramPoint `json:"histograms"`
}

func keyLess(a, b Key) bool {
	if a.Scope != b.Scope {
		return a.Scope < b.Scope
	}
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	return a.Name < b.Name
}

// Snapshot captures every metric. Safe to call concurrently with
// updates (values are read atomically; the result is a consistent-
// enough monitoring view, not a transaction). Returns an empty snapshot
// on a nil registry.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	countKeys := make([]Key, 0, len(r.counts))
	for k := range r.counts {
		countKeys = append(countKeys, k)
	}
	gaugeKeys := make([]Key, 0, len(r.gauges))
	for k := range r.gauges {
		gaugeKeys = append(gaugeKeys, k)
	}
	histKeys := make([]Key, 0, len(r.hists))
	for k := range r.hists {
		histKeys = append(histKeys, k)
	}
	sort.Slice(countKeys, func(i, j int) bool { return keyLess(countKeys[i], countKeys[j]) })
	sort.Slice(gaugeKeys, func(i, j int) bool { return keyLess(gaugeKeys[i], gaugeKeys[j]) })
	sort.Slice(histKeys, func(i, j int) bool { return keyLess(histKeys[i], histKeys[j]) })
	for _, k := range countKeys {
		s.Counters = append(s.Counters, CounterPoint{k, r.counts[k].Value()})
	}
	for _, k := range gaugeKeys {
		v, at := r.gauges[k].Value()
		s.Gauges = append(s.Gauges, GaugePoint{k, v, at})
	}
	for _, k := range histKeys {
		h := r.hists[k]
		hp := HistogramPoint{Key: k, Count: h.Count(), Sum: h.Sum()}
		hp.Bounds = append(hp.Bounds, h.bounds...)
		for i := range h.buckets {
			hp.Buckets = append(hp.Buckets, h.buckets[i].Load())
		}
		s.Histograms = append(s.Histograms, hp)
	}
	r.mu.Unlock()
	return s
}

// MarshalJSON renders the snapshot with stable ordering (it already is a
// plain struct of sorted slices; this indirection exists so callers can
// json.Marshal a Snapshot or the Registry interchangeably).
func (r *Registry) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.Snapshot())
}
