// Package obs is the simulator's unified observability layer: a
// sim-time-aware metrics registry, a structured decision-trace bus, and
// a live introspection endpoint for long runs.
//
// Design contract — pass-through only. Nothing in this package draws
// from an RNG, schedules a simulation event, or feeds a value back into
// simulation state: a run is bit-identical whether instrumentation is
// fully enabled or absent (pinned by TestObsDeterminismGolden in
// internal/experiment). Timestamps on records and gauges are *simulated*
// time, never the host clock.
//
// Hot-path contract — disabled means free. Every handle (Counter,
// Gauge, Histogram) and the Bus itself are nil-safe: a nil receiver
// compiles down to a nil-check no-op, so uninstrumented runs pay one
// predictable branch per hook point and allocate nothing. Handles are
// resolved by string name once, at attach time (an Instrument method or
// a constructor); the detlint `obshot` analyzer flags by-name lookups
// anywhere else.
//
// Trace records are grouped into categories (MAC state transitions,
// backoff assignment/observation, deviation/penalty computation,
// diagnosis window updates, channel events); sinks subscribe per
// category. Three sinks ship with the package: a bounded RingSink whose
// tail ends up in *experiment.SeedFailure crash dumps, a JSONLSink
// written atomically at Close, and a DiagnosisCSV sink producing the
// diagnosis-trail export. The record schemas are catalogued in
// DESIGN.md §9.
package obs

import (
	"fmt"
	"strings"

	"dcfguard/internal/frame"
	"dcfguard/internal/sim"
)

// NoNode marks a Record field (or a registry key) that does not refer to
// a particular node: system-wide channel counters, run-level gauges.
const NoNode frame.NodeID = -1

// Category identifies one class of trace records.
type Category uint8

const (
	// CatMACState traces sender-side DCF state-machine transitions.
	CatMACState Category = iota
	// CatBackoff traces backoff assignment and observation: the
	// monitor's per-exchange assignment decisions, the sender's receipt
	// of assignments, and the observation-window marks.
	CatBackoff
	// CatDeviation traces equation-(1) deviation detections and the
	// correction penalties they trigger.
	CatDeviation
	// CatDiagnosis traces diagnosis-window updates: every per-packet
	// classification with its B_exp − B_act difference, the window sum,
	// the threshold in force, and the verdict — plus attempt-verification
	// proofs. The DiagnosisCSV sink renders exactly this category.
	CatDiagnosis
	// CatChannel traces medium events: transmissions, per-observer
	// carrier busy/idle transitions, deliveries, collisions, half-duplex
	// self-blocks, and fault-injection drops.
	CatChannel

	numCategories
)

// String returns the category name as used by macsim -trace-events.
func (c Category) String() string {
	switch c {
	case CatMACState:
		return "mac"
	case CatBackoff:
		return "backoff"
	case CatDeviation:
		return "deviation"
	case CatDiagnosis:
		return "diagnosis"
	case CatChannel:
		return "channel"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// CategorySet is a bitmask of categories.
type CategorySet uint8

// Set returns the set with c included.
func (s CategorySet) Set(c Category) CategorySet { return s | 1<<c }

// Has reports whether c is in the set.
func (s CategorySet) Has(c Category) bool { return s&(1<<c) != 0 }

// Empty reports whether no category is selected.
func (s CategorySet) Empty() bool { return s == 0 }

// AllCategories returns the set containing every category.
func AllCategories() CategorySet { return 1<<numCategories - 1 }

// String renders the set as the comma-separated list ParseCategories
// accepts.
func (s CategorySet) String() string {
	if s == AllCategories() {
		return "all"
	}
	var names []string
	for c := Category(0); c < numCategories; c++ {
		if s.Has(c) {
			names = append(names, c.String())
		}
	}
	return strings.Join(names, ",")
}

// ParseCategories parses a comma-separated category list ("mac,backoff",
// "diagnosis", ...); "all" selects every category.
func ParseCategories(spec string) (CategorySet, error) {
	var s CategorySet
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if name == "all" {
			return AllCategories(), nil
		}
		found := false
		for c := Category(0); c < numCategories; c++ {
			if c.String() == name {
				s = s.Set(c)
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("obs: unknown trace category %q (have mac, backoff, deviation, diagnosis, channel, all)", name)
		}
	}
	return s, nil
}

// Ref is a causal reference to a trace record: the (when, key, seq)
// identity of the decision that produced it. Key is content-derived at
// the emission site (node, peer and record kind — see core/monitor.go),
// never a shard or scheduler artifact, so references are identical
// across serial and sharded runs of the same seed. The zero Ref means
// "no reference".
type Ref struct {
	When sim.Time
	Key  uint64
	Seq  uint32
}

// IsZero reports whether the reference is absent.
func (f Ref) IsZero() bool { return f == Ref{} }

// String renders the reference compactly (when:key:seq).
func (f Ref) String() string {
	return fmt.Sprintf("%d:%d:%d", int64(f.When), f.Key, f.Seq)
}

// Record is one structured trace event. A single flat shape serves every
// category so emission never allocates; the per-category meaning of
// Event, Aux, Seq and A/B/C/D/E is catalogued in DESIGN.md §9 and §14.
// Event and Aux are always static strings at emission sites (no
// formatting on the hot path).
type Record struct {
	Cat  Category
	Time sim.Time
	// Node is the node the decision happened at (the observer/monitor/
	// transmitter); Peer the counterpart (sender, addressee), NoNode
	// when there is none.
	Node frame.NodeID
	Peer frame.NodeID
	// Event names the event within its category; Aux is an optional
	// secondary label (e.g. the previous MAC state).
	Event string
	Aux   string
	// Seq is the frame sequence number involved, 0 when not applicable.
	Seq uint32
	// A, B, C, D, E are event-specific numeric payloads.
	A, B, C, D, E float64
	// Self is this record's causal identity; Parent references the
	// record whose decision produced this one. Both are zero for
	// records outside the flight-recorder lineage (DESIGN.md §14).
	Self   Ref
	Parent Ref
}

// String renders the record compactly for crash dumps and logs.
func (r Record) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%-12v [%s] node=%d", r.Time, r.Cat, r.Node)
	if r.Peer != NoNode {
		fmt.Fprintf(&b, " peer=%d", r.Peer)
	}
	b.WriteString(" " + r.Event)
	if r.Aux != "" {
		b.WriteString("<-" + r.Aux)
	}
	if r.Seq != 0 {
		fmt.Fprintf(&b, " seq=%d", r.Seq)
	}
	fmt.Fprintf(&b, " a=%g b=%g c=%g", r.A, r.B, r.C)
	if r.D != 0 || r.E != 0 { //detlint:allow floateq -- display elision, exact zero is the unset default
		fmt.Fprintf(&b, " d=%g e=%g", r.D, r.E)
	}
	if !r.Parent.IsZero() {
		b.WriteString(" parent=" + r.Parent.String())
	}
	return b.String()
}

// Sink receives trace records. Emit is called synchronously from the
// simulation goroutine, in event order; implementations must not block.
// A sink subscribed to several categories can filter on Record.Cat.
type Sink interface {
	Emit(r Record)
}

// Bus routes records to per-category subscriber lists. The zero value
// has no subscribers; a nil *Bus is valid and permanently disabled —
// instrumented code guards every emission with Enabled, which is the
// whole hot-path cost when tracing is off.
type Bus struct {
	subs [numCategories][]Sink
}

// Subscribe attaches sink to every category in cats.
func (b *Bus) Subscribe(cats CategorySet, sink Sink) {
	for c := Category(0); c < numCategories; c++ {
		if cats.Has(c) {
			b.subs[c] = append(b.subs[c], sink)
		}
	}
}

// Enabled reports whether any sink subscribes to c. It is the hot-path
// guard: build the Record only inside an Enabled branch.
func (b *Bus) Enabled(c Category) bool {
	return b != nil && len(b.subs[c]) > 0
}

// Emit delivers r to the subscribers of its category, in subscription
// order.
func (b *Bus) Emit(r Record) {
	if b == nil {
		return
	}
	for _, s := range b.subs[r.Cat] {
		s.Emit(r)
	}
}

// Config selects what a run observes. The zero value (and a nil *Config)
// disables everything.
type Config struct {
	// Metrics enables the metrics registry.
	Metrics bool
	// Registry, when non-nil, is used instead of a freshly built one
	// (implies Metrics). The live debug endpoint uses this to watch a
	// registry it already serves; a sweep can share one registry across
	// cells — counters are atomic, so concurrent cells simply aggregate.
	Registry *Registry
	// Categories selects the trace categories to emit.
	Categories CategorySet
	// Sinks receive records of every enabled category (filter on
	// Record.Cat inside the sink for finer selection). Sinks are shared,
	// not per-run: do not reuse a Config with stateful sinks across
	// concurrent runs.
	Sinks []Sink
	// RingSize bounds the crash-forensics ring buffer; 0 means
	// DefaultRingSize when any category is enabled.
	RingSize int
}

// DefaultRingSize is the trace-tail length carried by crash reports.
const DefaultRingSize = 256

// Validate reports whether the configuration is usable.
func (c *Config) Validate() error {
	if c == nil {
		return nil
	}
	if c.RingSize < 0 {
		return fmt.Errorf("obs: negative ring size %d", c.RingSize)
	}
	return nil
}

// Runtime is one run's assembled observability state: the registry (nil
// when metrics are disabled), the trace bus (nil when no category is
// enabled), and the crash ring (nil when tracing is disabled). All
// accessors are nil-safe, so a nil *Runtime is "observability off".
type Runtime struct {
	registry *Registry
	bus      *Bus
	ring     *RingSink
	// cats is the enabled category set, kept so sharded runs can build
	// per-shard front buses with identical subscriptions (shard.go).
	cats CategorySet
}

// Build assembles a Runtime from the configuration. A nil config, or one
// enabling nothing, returns nil. Build is safe to call concurrently on a
// shared Config (it only reads it), which is how sweep cells share one
// registry while keeping per-run rings.
func (c *Config) Build() *Runtime {
	if c == nil {
		return nil
	}
	rt := &Runtime{registry: c.Registry}
	if rt.registry == nil && c.Metrics {
		rt.registry = NewRegistry()
	}
	if !c.Categories.Empty() {
		rt.bus = &Bus{}
		rt.cats = c.Categories
		size := c.RingSize
		if size == 0 {
			size = DefaultRingSize
		}
		rt.ring = NewRingSink(size)
		rt.bus.Subscribe(c.Categories, rt.ring)
		for _, s := range c.Sinks {
			rt.bus.Subscribe(c.Categories, s)
		}
	}
	if rt.registry == nil && rt.bus == nil {
		return nil
	}
	return rt
}

// Reg returns the metrics registry, nil when disabled.
func (rt *Runtime) Reg() *Registry {
	if rt == nil {
		return nil
	}
	return rt.registry
}

// TraceBus returns the trace bus, nil when tracing is disabled.
func (rt *Runtime) TraceBus() *Bus {
	if rt == nil {
		return nil
	}
	return rt.bus
}

// TraceTail returns the last ring-buffered trace records, oldest first
// (nil when tracing is disabled): the payload of crash-report dumps.
func (rt *Runtime) TraceTail() []Record {
	if rt == nil || rt.ring == nil {
		return nil
	}
	return rt.ring.Records()
}
