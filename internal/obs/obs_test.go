package obs

import (
	"encoding/json"
	"os"
	"strings"
	"sync"
	"testing"

	"dcfguard/internal/sim"
)

func TestParseCategories(t *testing.T) {
	cases := []struct {
		spec string
		want CategorySet
		err  bool
	}{
		{"", 0, false},
		{"all", AllCategories(), false},
		{"mac", CategorySet(0).Set(CatMACState), false},
		{"mac,backoff", CategorySet(0).Set(CatMACState).Set(CatBackoff), false},
		{" diagnosis , channel ", CategorySet(0).Set(CatDiagnosis).Set(CatChannel), false},
		{"deviation,all", AllCategories(), false},
		{"bogus", 0, true},
		{"mac,bogus", 0, true},
	}
	for _, c := range cases {
		got, err := ParseCategories(c.spec)
		if c.err {
			if err == nil {
				t.Errorf("ParseCategories(%q): want error, got %v", c.spec, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseCategories(%q): %v", c.spec, err)
		} else if got != c.want {
			t.Errorf("ParseCategories(%q) = %v, want %v", c.spec, got, c.want)
		}
	}
}

func TestCategoryRoundTrip(t *testing.T) {
	for c := Category(0); c < numCategories; c++ {
		s, err := ParseCategories(c.String())
		if err != nil {
			t.Fatalf("category %d name %q does not parse: %v", c, c.String(), err)
		}
		if !s.Has(c) || s != CategorySet(0).Set(c) {
			t.Errorf("round trip of %v = %v", c, s)
		}
	}
	if got := AllCategories().String(); got != "all" {
		t.Errorf("AllCategories().String() = %q", got)
	}
}

// collectSink records everything it sees.
type collectSink struct {
	recs []Record
}

func (s *collectSink) Emit(r Record) { s.recs = append(s.recs, r) }

func TestBusRouting(t *testing.T) {
	var nilBus *Bus
	if nilBus.Enabled(CatMACState) {
		t.Fatal("nil bus reports enabled")
	}
	nilBus.Emit(Record{Cat: CatMACState}) // must not panic

	b := &Bus{}
	if b.Enabled(CatBackoff) {
		t.Fatal("empty bus reports enabled")
	}
	macSink := &collectSink{}
	allSink := &collectSink{}
	b.Subscribe(CategorySet(0).Set(CatMACState), macSink)
	b.Subscribe(AllCategories(), allSink)

	if !b.Enabled(CatMACState) || !b.Enabled(CatChannel) {
		t.Fatal("subscribed categories not enabled")
	}
	b.Emit(Record{Cat: CatMACState, Event: "contend"})
	b.Emit(Record{Cat: CatChannel, Event: "busy"})
	if len(macSink.recs) != 1 || macSink.recs[0].Event != "contend" {
		t.Errorf("mac sink got %v", macSink.recs)
	}
	if len(allSink.recs) != 2 {
		t.Errorf("all sink got %d records, want 2", len(allSink.recs))
	}
}

func TestConfigBuild(t *testing.T) {
	var nilCfg *Config
	if rt := nilCfg.Build(); rt != nil {
		t.Fatal("nil config built a runtime")
	}
	if rt := (&Config{}).Build(); rt != nil {
		t.Fatal("zero config built a runtime")
	}
	// Nil runtime accessors all no-op.
	var rt *Runtime
	if rt.Reg() != nil || rt.TraceBus() != nil || rt.TraceTail() != nil {
		t.Fatal("nil runtime accessors not nil")
	}

	rt = (&Config{Metrics: true}).Build()
	if rt == nil || rt.Reg() == nil || rt.TraceBus() != nil {
		t.Fatalf("metrics-only runtime wrong: %+v", rt)
	}

	sink := &collectSink{}
	rt = (&Config{Categories: AllCategories(), Sinks: []Sink{sink}, RingSize: 4}).Build()
	if rt.Reg() != nil {
		t.Fatal("tracing-only runtime has a registry")
	}
	for i := 0; i < 6; i++ {
		rt.TraceBus().Emit(Record{Cat: CatChannel, Seq: uint32(i + 1)})
	}
	if len(sink.recs) != 6 {
		t.Errorf("user sink got %d records", len(sink.recs))
	}
	tail := rt.TraceTail()
	if len(tail) != 4 || tail[0].Seq != 3 || tail[3].Seq != 6 {
		t.Errorf("ring tail = %v", tail)
	}

	shared := NewRegistry()
	rt = (&Config{Registry: shared}).Build()
	if rt.Reg() != shared {
		t.Fatal("pre-built registry not used")
	}

	if err := (&Config{RingSize: -1}).Validate(); err == nil {
		t.Fatal("negative ring size validated")
	}
	if err := nilCfg.Validate(); err != nil {
		t.Fatalf("nil config validate: %v", err)
	}
}

func TestCounterGaugeHistogramNilSafe(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(7)
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	var g *Gauge
	g.Set(1.5, 10)
	if v, at := g.Value(); v != 0 || at != 0 {
		t.Fatal("nil gauge value")
	}
	var h *Histogram
	h.Observe(3)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram value")
	}
	var r *Registry
	if r.Counter("x", NoNode, "y") != nil || r.Gauge("x", NoNode, "y") != nil ||
		r.Histogram("x", NoNode, "y", nil) != nil {
		t.Fatal("nil registry resolved a handle")
	}
	if s := r.Snapshot(); len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestRegistryHandles(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("mac", 3, "tx_success")
	c2 := r.Counter("mac", 3, "tx_success")
	if c1 != c2 {
		t.Fatal("same key resolved to distinct counters")
	}
	c1.Inc()
	c2.Add(2)
	if c1.Value() != 3 {
		t.Errorf("counter = %d, want 3", c1.Value())
	}

	g := r.Gauge("monitor", 0, "window_sum")
	g.Set(12.5, sim.Time(42))
	if v, at := g.Value(); v != 12.5 || at != 42 {
		t.Errorf("gauge = %v@%v", v, at)
	}

	h := r.Histogram("monitor", 0, "diff", []float64{0, 10, 100})
	for _, v := range []float64{-5, 0, 3, 10, 11, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Errorf("hist count = %d", h.Count())
	}
	if h.Sum() != 1019 {
		t.Errorf("hist sum = %g", h.Sum())
	}
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("snapshot histograms = %d", len(snap.Histograms))
	}
	// v <= bound goes to that bucket: {-5,0} <=0; {3,10} <=10; {11} <=100; {1000} overflow.
	want := []uint64{2, 2, 1, 1}
	got := snap.Histograms[0].Buckets
	if len(got) != len(want) {
		t.Fatalf("buckets = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", got, want)
		}
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("medium", NoNode, "collisions").Inc()
	r.Counter("mac", 2, "tx_success").Inc()
	r.Counter("mac", 0, "tx_success").Inc()
	r.Counter("mac", 0, "rx_deliver").Inc()
	s := r.Snapshot()
	var keys []string
	for _, c := range s.Counters {
		keys = append(keys, c.Scope+"/"+c.Name)
	}
	want := []string{"mac/rx_deliver", "mac/tx_success", "mac/tx_success", "medium/collisions"}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("snapshot order %v, want %v", keys, want)
		}
	}
	// And the JSON form is stable.
	j1, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := json.Marshal(r.Snapshot())
	if string(j1) != string(j2) {
		t.Fatal("registry and snapshot JSON differ")
	}
}

// TestRegistryConcurrent exercises handle resolution and updates from
// several goroutines so the race detector can vet the sweep-shared
// registry claim.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("mac", NoNode, "tx_success")
			g := r.Gauge("mac", NoNode, "queue_len")
			h := r.Histogram("mac", NoNode, "attempts", []float64{1, 2, 4})
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Set(float64(i), sim.Time(i))
				h.Observe(float64(i % 5))
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("mac", NoNode, "tx_success").Value(); got != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", got)
	}
	if got := r.Histogram("mac", NoNode, "attempts", nil).Count(); got != 8000 {
		t.Fatalf("concurrent histogram count = %d, want 8000", got)
	}
}

func TestRingSink(t *testing.T) {
	s := NewRingSink(3)
	if got := s.Records(); len(got) != 0 {
		t.Fatalf("empty ring records = %v", got)
	}
	s.Emit(Record{Seq: 1})
	s.Emit(Record{Seq: 2})
	if got := s.Records(); len(got) != 2 || got[0].Seq != 1 {
		t.Fatalf("partial ring = %v", got)
	}
	s.Emit(Record{Seq: 3})
	s.Emit(Record{Seq: 4})
	s.Emit(Record{Seq: 5})
	got := s.Records()
	if len(got) != 3 || got[0].Seq != 3 || got[2].Seq != 5 {
		t.Fatalf("wrapped ring = %v", got)
	}
	if s.Len() != 3 {
		t.Fatalf("ring len = %d", s.Len())
	}
	if NewRingSink(0) == nil || NewRingSink(-3).buf == nil {
		t.Fatal("degenerate ring size")
	}
}

func TestJSONLSink(t *testing.T) {
	path := t.TempDir() + "/trace.jsonl"
	s := NewJSONLSink(path)
	s.Emit(Record{Cat: CatMACState, Time: 100, Node: 2, Peer: NoNode, Event: "contend", Aux: "idle"})
	s.Emit(Record{Cat: CatDiagnosis, Time: 250, Node: 0, Peer: 3, Event: "window", Seq: 7, A: 1.5, B: -2, C: 10})
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %q", lines)
	}
	// Every line must be valid JSON with the expected fields.
	var m map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &m); err != nil {
		t.Fatalf("line 0 not JSON: %v\n%s", err, lines[0])
	}
	if m["cat"] != "mac" || m["event"] != "contend" || m["aux"] != "idle" || m["t"] != float64(100) {
		t.Errorf("line 0 = %v", m)
	}
	if _, ok := m["peer"]; ok {
		t.Errorf("NoNode peer serialised: %v", m)
	}
	if err := json.Unmarshal([]byte(lines[1]), &m); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	if m["peer"] != float64(3) || m["seq"] != float64(7) || m["a"] != 1.5 || m["b"] != float64(-2) || m["c"] != float64(10) {
		t.Errorf("line 1 = %v", m)
	}
}

func TestDiagnosisCSV(t *testing.T) {
	path := t.TempDir() + "/diag.csv"
	d := NewDiagnosisCSV(path)
	d.Emit(Record{Cat: CatChannel, Event: "busy"}) // filtered out
	d.Emit(Record{Cat: CatDiagnosis, Time: 500, Node: 0, Peer: 2, Seq: 9,
		Event: "window", A: 3.5, B: 12, C: 10, Aux: "diagnosed"})
	if d.Len() != 1 {
		t.Fatalf("len = %d", d.Len())
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 2 || lines[0] != DiagnosisCSVHeader {
		t.Fatalf("csv = %q", data)
	}
	if lines[1] != "500,0,2,9,window,3.5,12,10,diagnosed" {
		t.Errorf("row = %q", lines[1])
	}
}

func TestRecordString(t *testing.T) {
	r := Record{Cat: CatBackoff, Time: 123, Node: 1, Peer: 4, Event: "assign", Seq: 9, A: 31}
	s := r.String()
	for _, want := range []string{"backoff", "node=1", "peer=4", "assign", "seq=9", "a=31"} {
		if !strings.Contains(s, want) {
			t.Errorf("Record.String() = %q missing %q", s, want)
		}
	}
	r2 := Record{Cat: CatMACState, Node: 0, Peer: NoNode, Event: "contend", Aux: "idle"}
	if s2 := r2.String(); strings.Contains(s2, "peer=") || !strings.Contains(s2, "contend<-idle") {
		t.Errorf("Record.String() = %q", s2)
	}
}
