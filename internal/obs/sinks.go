package obs

import (
	"fmt"
	"io/fs"
	"strconv"
	"strings"
	"sync"

	"dcfguard/internal/atomicio"
)

// RingSink keeps the last N records: the crash-forensics buffer that
// *experiment.SeedFailure dumps drain. Emission is O(1) and
// allocation-free after the first lap; the mutex makes Records safe to
// call from the failure-reporting goroutine while the watchdog may
// still be interrupting the run.
type RingSink struct {
	mu   sync.Mutex
	buf  []Record
	next int
	full bool
}

// NewRingSink returns a ring holding the last size records (min 1).
func NewRingSink(size int) *RingSink {
	if size < 1 {
		size = 1
	}
	return &RingSink{buf: make([]Record, size)}
}

// Emit stores r, evicting the oldest record when full.
func (s *RingSink) Emit(r Record) {
	s.mu.Lock()
	s.buf[s.next] = r
	s.next++
	if s.next == len(s.buf) {
		s.next = 0
		s.full = true
	}
	s.mu.Unlock()
}

// Records returns the buffered records oldest-first. The slice is a
// copy; the ring keeps filling.
func (s *RingSink) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.full {
		out := make([]Record, s.next)
		copy(out, s.buf[:s.next])
		return out
	}
	out := make([]Record, 0, len(s.buf))
	out = append(out, s.buf[s.next:]...)
	out = append(out, s.buf[:s.next]...)
	return out
}

// Len returns the number of buffered records.
func (s *RingSink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.full {
		return len(s.buf)
	}
	return s.next
}

// JSONLSink renders every record as one JSON object per line, buffered
// in memory and written atomically (temp+fsync+rename via
// internal/atomicio) on Close — a torn run never leaves a half-written
// trace file. Fields are emitted in a fixed order and zero-valued
// optional fields are omitted, so traces diff cleanly across runs.
type JSONLSink struct {
	path string
	perm fs.FileMode
	buf  strings.Builder
	n    int
}

// NewJSONLSink buffers records destined for path (written on Close with
// mode 0644).
func NewJSONLSink(path string) *JSONLSink {
	return &JSONLSink{path: path, perm: 0o644}
}

// Emit appends one line. Records carry only static strings and scalars,
// so the hand-rolled encoder needs no reflection and no escaping.
func (s *JSONLSink) Emit(r Record) {
	appendRecordJSON(&s.buf, r)
	s.n++
}

// appendRecordJSON writes one record as a JSON line — the encoder
// behind JSONLSink and the -explain JSONL export.
func appendRecordJSON(b *strings.Builder, r Record) {
	b.WriteString(`{"cat":"`)
	b.WriteString(r.Cat.String())
	b.WriteString(`","t":`)
	b.WriteString(strconv.FormatInt(int64(r.Time), 10))
	b.WriteString(`,"node":`)
	b.WriteString(strconv.Itoa(int(r.Node)))
	if r.Peer != NoNode {
		b.WriteString(`,"peer":`)
		b.WriteString(strconv.Itoa(int(r.Peer)))
	}
	b.WriteString(`,"event":"`)
	b.WriteString(r.Event)
	b.WriteString(`"`)
	if r.Aux != "" {
		b.WriteString(`,"aux":"`)
		b.WriteString(r.Aux)
		b.WriteString(`"`)
	}
	if r.Seq != 0 {
		b.WriteString(`,"seq":`)
		b.WriteString(strconv.FormatUint(uint64(r.Seq), 10))
	}
	// Exact-zero elision is lossless here: an absent field decodes back
	// to 0, and no simulation state ever branches on these comparisons.
	if r.A != 0 { //detlint:allow floateq -- encoder field elision, exact zero is the wire default
		b.WriteString(`,"a":`)
		b.WriteString(strconv.FormatFloat(r.A, 'g', -1, 64))
	}
	if r.B != 0 { //detlint:allow floateq -- encoder field elision, exact zero is the wire default
		b.WriteString(`,"b":`)
		b.WriteString(strconv.FormatFloat(r.B, 'g', -1, 64))
	}
	if r.C != 0 { //detlint:allow floateq -- encoder field elision, exact zero is the wire default
		b.WriteString(`,"c":`)
		b.WriteString(strconv.FormatFloat(r.C, 'g', -1, 64))
	}
	if r.D != 0 { //detlint:allow floateq -- encoder field elision, exact zero is the wire default
		b.WriteString(`,"d":`)
		b.WriteString(strconv.FormatFloat(r.D, 'g', -1, 64))
	}
	if r.E != 0 { //detlint:allow floateq -- encoder field elision, exact zero is the wire default
		b.WriteString(`,"e":`)
		b.WriteString(strconv.FormatFloat(r.E, 'g', -1, 64))
	}
	appendRefJSON(b, "self", r.Self)
	appendRefJSON(b, "parent", r.Parent)
	b.WriteString("}\n")
}

// appendRefJSON writes a causal reference as `,"<key>":[when,key,seq]`,
// eliding the zero (absent) reference so pre-flight-recorder traces
// keep their exact shape.
func appendRefJSON(b *strings.Builder, key string, f Ref) {
	if f.IsZero() {
		return
	}
	b.WriteString(`,"`)
	b.WriteString(key)
	b.WriteString(`":[`)
	b.WriteString(strconv.FormatInt(int64(f.When), 10))
	b.WriteString(",")
	b.WriteString(strconv.FormatUint(f.Key, 10))
	b.WriteString(",")
	b.WriteString(strconv.FormatUint(uint64(f.Seq), 10))
	b.WriteString("]")
}

// Len returns the number of buffered records.
func (s *JSONLSink) Len() int { return s.n }

// Close writes the buffered trace atomically.
func (s *JSONLSink) Close() error {
	return atomicio.WriteFile(s.path, []byte(s.buf.String()), s.perm)
}

// DiagnosisCSV renders the diagnosis trail — every CatDiagnosis record —
// as a CSV with one row per per-packet classification or proof, the
// figure-ready export of the paper's windowed diagnosis scheme. Records
// of other categories are ignored, so the sink can subscribe to a wider
// set. Written atomically on Close.
type DiagnosisCSV struct {
	path string
	buf  strings.Builder
	n    int
}

// DiagnosisCSVHeader is the column schema of the diagnosis-trail
// export (see DESIGN.md §9).
const DiagnosisCSVHeader = "time,monitor,sender,seq,event,diff,window_sum,thresh,verdict"

// NewDiagnosisCSV buffers diagnosis records destined for path.
func NewDiagnosisCSV(path string) *DiagnosisCSV {
	d := &DiagnosisCSV{path: path}
	d.buf.WriteString(DiagnosisCSVHeader + "\n")
	return d
}

// Emit appends one row for diagnosis records; other categories no-op.
func (d *DiagnosisCSV) Emit(r Record) {
	if r.Cat != CatDiagnosis {
		return
	}
	fmt.Fprintf(&d.buf, "%d,%d,%d,%d,%s,%g,%g,%g,%s\n",
		int64(r.Time), r.Node, r.Peer, r.Seq, r.Event, r.A, r.B, r.C, r.Aux)
	d.n++
}

// Len returns the number of buffered rows (excluding the header).
func (d *DiagnosisCSV) Len() int { return d.n }

// CSV returns the buffered document (header plus rows).
func (d *DiagnosisCSV) CSV() string { return d.buf.String() }

// Close writes the trail atomically.
func (d *DiagnosisCSV) Close() error {
	return atomicio.WriteFile(d.path, []byte(d.buf.String()), 0o644)
}

// CaptureSink retains every record in memory, in emission order: the
// input of post-run lineage analysis (Explain, macsim -explain). The
// mutex mirrors RingSink's — the failure-reporting goroutine may read
// while the watchdog is still winding a run down.
type CaptureSink struct {
	mu   sync.Mutex
	recs []Record
}

// NewCaptureSink returns an empty capture buffer.
func NewCaptureSink() *CaptureSink { return &CaptureSink{} }

// Emit appends r.
func (s *CaptureSink) Emit(r Record) {
	s.mu.Lock()
	s.recs = append(s.recs, r)
	s.mu.Unlock()
}

// Records returns a copy of everything captured, oldest first.
func (s *CaptureSink) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Record(nil), s.recs...)
}

// Len returns the number of captured records.
func (s *CaptureSink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}
