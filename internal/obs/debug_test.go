package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func TestDebugServer(t *testing.T) {
	d := NewDebugServer()
	reg := NewRegistry()
	reg.Counter("medium", NoNode, "collisions").Add(5)
	d.SetRegistry(reg)
	d.SetProgress(func() any {
		return map[string]int{"done": 3, "total": 10}
	})

	addr, err := d.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	base := "http://" + addr

	var snap Snapshot
	if err := json.Unmarshal(getBody(t, base+"/debug/metrics"), &snap); err != nil {
		t.Fatalf("metrics not JSON: %v", err)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 5 || snap.Counters[0].Name != "collisions" {
		t.Errorf("metrics snapshot = %+v", snap)
	}

	var prog map[string]int
	if err := json.Unmarshal(getBody(t, base+"/debug/sweep"), &prog); err != nil {
		t.Fatalf("sweep not JSON: %v", err)
	}
	if prog["done"] != 3 || prog["total"] != 10 {
		t.Errorf("sweep progress = %v", prog)
	}

	if idx := string(getBody(t, base+"/")); !strings.Contains(idx, "/debug/pprof/") {
		t.Errorf("index = %q", idx)
	}
	// pprof index is wired (don't fetch a profile — just the listing).
	if pp := string(getBody(t, base+"/debug/pprof/")); !strings.Contains(pp, "goroutine") {
		t.Errorf("pprof index = %q", pp)
	}
}

func TestDebugServerNoState(t *testing.T) {
	d := NewDebugServer()
	addr, err := d.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	base := "http://" + addr
	// With no registry or progress source, both endpoints still answer.
	var snap Snapshot
	if err := json.Unmarshal(getBody(t, base+"/debug/metrics"), &snap); err != nil {
		t.Fatalf("metrics (nil registry) not JSON: %v", err)
	}
	if body := strings.TrimSpace(string(getBody(t, base+"/debug/sweep"))); body != "{}" {
		t.Errorf("sweep (no source) = %q", body)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil { // double close is a no-op
		t.Fatal(err)
	}
}
