package phys

import (
	"math"
	"testing"
)

func TestTwoRayValidate(t *testing.T) {
	if err := DefaultTwoRay().Validate(); err != nil {
		t.Fatalf("default two-ray invalid: %v", err)
	}
	m := DefaultTwoRay()
	m.AntennaHeightM = 0
	if m.Validate() == nil {
		t.Error("zero antenna height accepted")
	}
	m = DefaultShadowing()
	m.Mode = PathLossMode(9)
	if m.Validate() == nil {
		t.Error("invalid mode accepted")
	}
}

func TestTwoRayCrossover(t *testing.T) {
	m := DefaultTwoRay()
	// dc = 4π·1.5²/0.328 ≈ 86.2 m.
	dc := m.crossoverDistance()
	if math.Abs(dc-4*math.Pi*2.25/0.328) > 1e-9 {
		t.Fatalf("crossover = %v", dc)
	}
	// Continuity at the crossover within a fraction of a dB (the two
	// laws intersect there by construction).
	below := m.MeanRxPowerDBm(24.5, dc*0.999)
	above := m.MeanRxPowerDBm(24.5, dc*1.001)
	if math.Abs(below-above) > 0.1 {
		t.Fatalf("discontinuity at crossover: %v vs %v", below, above)
	}
}

func TestTwoRayExponents(t *testing.T) {
	m := DefaultTwoRay()
	dc := m.crossoverDistance()
	// Below crossover: doubling distance costs 6 dB (free space).
	drop := m.MeanRxPowerDBm(24.5, dc/8) - m.MeanRxPowerDBm(24.5, dc/4)
	if math.Abs(drop-20*math.Log10(2)) > 1e-9 {
		t.Fatalf("near-field drop = %v dB, want 6.02", drop)
	}
	// Above crossover: doubling distance costs 12 dB (d⁻⁴).
	drop = m.MeanRxPowerDBm(24.5, 4*dc) - m.MeanRxPowerDBm(24.5, 8*dc)
	if math.Abs(drop-40*math.Log10(2)) > 1e-9 {
		t.Fatalf("far-field drop = %v dB, want 12.04", drop)
	}
}

func TestTwoRayAttenuatesFasterThanFreeSpace(t *testing.T) {
	tr := DefaultTwoRay()
	fs := DefaultShadowing()
	// At 500 m (well past the ~86 m crossover) the two-ray model is
	// far weaker than free space.
	if tr.MeanRxPowerDBm(24.5, 500) >= fs.MeanRxPowerDBm(24.5, 500) {
		t.Fatal("two-ray not weaker than free space at 500 m")
	}
}

func TestTwoRayCalibration(t *testing.T) {
	m := DefaultTwoRay()
	r := CalibratedRadio(m, 24.5, 250, 0.5, 550, 0.5, 2_000_000)
	if err := r.Validate(); err != nil {
		t.Fatalf("two-ray calibrated radio invalid: %v", err)
	}
	if p := m.ProbAbove(24.5, 250, r.RxThreshDBm); math.Abs(p-0.5) > 1e-6 {
		t.Fatalf("P(receive at 250m) = %v", p)
	}
	if p := m.ProbAbove(24.5, 550, r.CsThreshDBm); math.Abs(p-0.5) > 1e-6 {
		t.Fatalf("P(sense at 550m) = %v", p)
	}
	// The d⁻⁴ law makes the receive/sense transition *sharper* than
	// log-distance β=2: at 300 m reception is already hopeless.
	if p := m.ProbAbove(24.5, 300, r.RxThreshDBm); p > 1e-3 {
		t.Fatalf("two-ray P(receive at 300m) = %v, want ≈0", p)
	}
}

func TestPathLossModeString(t *testing.T) {
	if LogDistance.String() != "log-distance" || TwoRayGround.String() != "two-ray-ground" {
		t.Fatal("mode names wrong")
	}
	if PathLossMode(9).String() == "" {
		t.Fatal("unknown mode must render")
	}
}

func TestTwoRayBelowReferenceClamped(t *testing.T) {
	m := DefaultTwoRay()
	if m.MeanRxPowerDBm(24.5, 0.01) != m.MeanRxPowerDBm(24.5, m.RefDistance) {
		t.Fatal("sub-reference distances must clamp")
	}
}
