package phys

import (
	"math"
	"testing"
	"testing/quick"

	"dcfguard/internal/rng"
)

func TestDistance(t *testing.T) {
	cases := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{1, 1}, Point{1, 1}, 0},
		{Point{-1, 0}, Point{1, 0}, 2},
	}
	for _, c := range cases {
		if got := c.p.Distance(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Distance(%v, %v) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestDistanceSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if math.IsNaN(ax) || math.IsNaN(ay) || math.IsNaN(bx) || math.IsNaN(by) {
			return true
		}
		p, q := Point{ax, ay}, Point{bx, by}
		return p.Distance(q) == q.Distance(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOnCircle(t *testing.T) {
	c := Point{100, 50}
	const n, r = 8, 150.0
	for i := 0; i < n; i++ {
		p := OnCircle(c, r, i, n)
		if d := p.Distance(c); math.Abs(d-r) > 1e-9 {
			t.Errorf("point %d at distance %v from centre, want %v", i, d, r)
		}
	}
	// Adjacent points on the circle are equidistant from each other.
	d01 := OnCircle(c, r, 0, n).Distance(OnCircle(c, r, 1, n))
	d12 := OnCircle(c, r, 1, n).Distance(OnCircle(c, r, 2, n))
	if math.Abs(d01-d12) > 1e-9 {
		t.Errorf("adjacent spacing differs: %v vs %v", d01, d12)
	}
}

func TestShadowingValidate(t *testing.T) {
	if err := DefaultShadowing().Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
	bad := []Shadowing{
		{Beta: 0, SigmaDB: 1, RefDistance: 1, WavelengthM: 0.3},
		{Beta: 2, SigmaDB: -1, RefDistance: 1, WavelengthM: 0.3},
		{Beta: 2, SigmaDB: 1, RefDistance: 0, WavelengthM: 0.3},
		{Beta: 2, SigmaDB: 1, RefDistance: 1, WavelengthM: 0},
	}
	for i, m := range bad {
		if m.Validate() == nil {
			t.Errorf("case %d: invalid model passed validation", i)
		}
	}
}

func TestPathLossMonotonic(t *testing.T) {
	m := DefaultShadowing()
	prev := m.MeanRxPowerDBm(24.5, 1)
	for d := 10.0; d <= 1000; d += 10 {
		cur := m.MeanRxPowerDBm(24.5, d)
		if cur >= prev {
			t.Fatalf("mean power not decreasing at d=%v: %v >= %v", d, cur, prev)
		}
		prev = cur
	}
}

func TestPathLossExponent(t *testing.T) {
	// With β = 2, doubling the distance must cost exactly 20·log10(2) ≈ 6.02 dB.
	m := DefaultShadowing()
	drop := m.MeanRxPowerDBm(24.5, 100) - m.MeanRxPowerDBm(24.5, 200)
	if math.Abs(drop-20*math.Log10(2)) > 1e-9 {
		t.Fatalf("doubling distance dropped %v dB, want %v", drop, 20*math.Log10(2))
	}
}

func TestPathLossBelowReferenceClamped(t *testing.T) {
	m := DefaultShadowing()
	if m.MeanRxPowerDBm(24.5, 0.1) != m.MeanRxPowerDBm(24.5, m.RefDistance) {
		t.Fatal("distances below d0 must clamp to d0")
	}
}

func TestCalibration50Percent(t *testing.T) {
	m := DefaultShadowing()
	r := DefaultRadio()
	if err := r.Validate(); err != nil {
		t.Fatalf("default radio invalid: %v", err)
	}
	if p := m.ProbAbove(r.TxPowerDBm, 250, r.RxThreshDBm); math.Abs(p-0.5) > 1e-6 {
		t.Errorf("P(receive at 250m) = %v, want 0.5", p)
	}
	if p := m.ProbAbove(r.TxPowerDBm, 550, r.CsThreshDBm); math.Abs(p-0.5) > 1e-6 {
		t.Errorf("P(sense at 550m) = %v, want 0.5", p)
	}
}

func TestCalibrationEmpirical(t *testing.T) {
	m := DefaultShadowing()
	r := DefaultRadio()
	src := rng.New(99)
	const n = 100000
	rx, cs := 0, 0
	for i := 0; i < n; i++ {
		if m.SampleRxPowerDBm(r.TxPowerDBm, 250, src) >= r.RxThreshDBm {
			rx++
		}
		if m.SampleRxPowerDBm(r.TxPowerDBm, 550, src) >= r.CsThreshDBm {
			cs++
		}
	}
	if frac := float64(rx) / n; math.Abs(frac-0.5) > 0.01 {
		t.Errorf("empirical P(receive at 250m) = %v", frac)
	}
	if frac := float64(cs) / n; math.Abs(frac-0.5) > 0.01 {
		t.Errorf("empirical P(sense at 550m) = %v", frac)
	}
}

func TestReceptionProbabilityByDistance(t *testing.T) {
	// Closer than 250 m ⇒ clearly above 50%; farther ⇒ clearly below.
	m := DefaultShadowing()
	r := DefaultRadio()
	if p := m.ProbAbove(r.TxPowerDBm, 150, r.RxThreshDBm); p < 0.99 {
		t.Errorf("P(receive at 150m) = %v, want near 1", p)
	}
	if p := m.ProbAbove(r.TxPowerDBm, 400, r.RxThreshDBm); p > 0.01 {
		t.Errorf("P(receive at 400m) = %v, want near 0", p)
	}
	// 500 m is inside carrier-sense range, though with σ = 1 dB the
	// margin over the 550 m calibration point is under 1 dB (~0.8).
	if p := m.ProbAbove(r.TxPowerDBm, 500, r.CsThreshDBm); p < 0.75 {
		t.Errorf("P(sense at 500m) = %v, want > 0.75", p)
	}
}

func TestPaperAsymmetry(t *testing.T) {
	// The Figure-3 mechanism: the receiver R is ~500 m from interferer A
	// (senses it with high probability), while the far-side sender is
	// ~650 m away (senses it with low probability).
	m := DefaultShadowing()
	r := DefaultRadio()
	pNear := m.ProbAbove(r.TxPowerDBm, 500, r.CsThreshDBm)
	pFar := m.ProbAbove(r.TxPowerDBm, 650, r.CsThreshDBm)
	// With σ = 1 dB the 500→550 m gap is only 0.83 dB, so "high
	// probability" at the receiver is ~0.8, not ~1 — the paper's
	// "occasionally appear to be deviating" depends on this softness.
	if pNear < 0.75 {
		t.Errorf("receiver senses interferer with P=%v, want > 0.75", pNear)
	}
	if pFar > 0.1 {
		t.Errorf("far sender senses interferer with P=%v, want < 0.1", pFar)
	}
}

func TestThresholdForNonMedianProbabilities(t *testing.T) {
	m := DefaultShadowing()
	// A 90%-at-250m threshold must be lower (more sensitive) than the
	// 50% threshold.
	t50 := m.ThresholdFor(24.5, 250, 0.5)
	t90 := m.ThresholdFor(24.5, 250, 0.9)
	if t90 >= t50 {
		t.Fatalf("90%% threshold %v not below 50%% threshold %v", t90, t50)
	}
	if p := m.ProbAbove(24.5, 250, t90); math.Abs(p-0.9) > 1e-6 {
		t.Fatalf("P(above 90%% threshold) = %v", p)
	}
}

func TestThresholdForPanicsOutsideUnitInterval(t *testing.T) {
	m := DefaultShadowing()
	for _, p := range []float64{0, 1, -0.5, 2} {
		p := p
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ThresholdFor(p=%v) did not panic", p)
				}
			}()
			m.ThresholdFor(24.5, 250, p)
		}()
	}
}

func TestZeroSigmaDeterministic(t *testing.T) {
	m := DefaultShadowing()
	m.SigmaDB = 0
	r := CalibratedRadio(m, 24.5, 250, 0.5, 550, 0.5, 2_000_000)
	if p := m.ProbAbove(24.5, 249, r.RxThreshDBm); p != 1 {
		t.Errorf("deterministic model: P(receive at 249m) = %v, want 1", p)
	}
	if p := m.ProbAbove(24.5, 251, r.RxThreshDBm); p != 0 {
		t.Errorf("deterministic model: P(receive at 251m) = %v, want 0", p)
	}
}

func TestInverseNormalCDF(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.8413447460685429, 1},   // Φ(1)
		{0.15865525393145707, -1}, // Φ(-1)
		{0.9772498680518208, 2},   // Φ(2)
		{0.0013498980316300933, -3},
	}
	for _, c := range cases {
		if got := inverseNormalCDF(c.p); math.Abs(got-c.want) > 1e-6 {
			t.Errorf("inverseNormalCDF(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestInverseNormalCDFRoundTrip(t *testing.T) {
	f := func(raw float64) bool {
		p := math.Mod(math.Abs(raw), 0.98) + 0.01 // (0.01, 0.99)
		if math.IsNaN(p) {
			return true
		}
		z := inverseNormalCDF(p)
		back := 0.5 * math.Erfc(-z/math.Sqrt2)
		return math.Abs(back-p) < 1e-7
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRadioValidate(t *testing.T) {
	r := DefaultRadio()
	r.BitRate = 0
	if r.Validate() == nil {
		t.Error("zero bit rate passed validation")
	}
	r = DefaultRadio()
	r.CsThreshDBm = r.RxThreshDBm + 1
	if r.Validate() == nil {
		t.Error("CS threshold above RX threshold passed validation")
	}
	r = DefaultRadio()
	r.CaptureDB = -1
	if r.Validate() == nil {
		t.Error("negative capture margin passed validation")
	}
}

func TestCsThresholdBelowRxThreshold(t *testing.T) {
	r := DefaultRadio()
	if r.CsThreshDBm >= r.RxThreshDBm {
		t.Fatalf("carrier-sense threshold %v must be below receive threshold %v",
			r.CsThreshDBm, r.RxThreshDBm)
	}
}

// TestMaxRangeFor checks the round trip against MeanRxPowerDBm for both
// path-loss modes: the mean power at the returned range clears the
// threshold, and just beyond it does not — with the small bias erring
// on the large (safe for the medium's pruning) side.
func TestMaxRangeFor(t *testing.T) {
	for _, m := range []Shadowing{DefaultShadowing(), DefaultTwoRay()} {
		const tx, thresh = 24.5, -70.0
		r := m.MaxRangeFor(tx, thresh)
		if r <= m.RefDistance {
			t.Fatalf("%v: MaxRangeFor = %g, want > ref distance", m.Mode, r)
		}
		if got := m.MeanRxPowerDBm(tx, r-1e-5); got < thresh {
			t.Errorf("%v: mean power %g dBm just inside range %g m is below threshold %g",
				m.Mode, got, r, thresh)
		}
		if got := m.MeanRxPowerDBm(tx, r*1.01); got >= thresh {
			t.Errorf("%v: mean power %g dBm beyond range %g m still clears threshold %g",
				m.Mode, got, r, thresh)
		}
	}
}

// TestMaxRangeForUnreachable: when even the reference distance cannot
// clear the threshold, the range is zero (the pair set is empty).
func TestMaxRangeForUnreachable(t *testing.T) {
	m := DefaultShadowing()
	if r := m.MaxRangeFor(-100, 0); r != 0 {
		t.Errorf("MaxRangeFor(-100 dBm tx, 0 dBm thresh) = %g, want 0", r)
	}
}
