// Package phys models the wireless physical layer: node positions,
// log-distance path loss with log-normal shadowing, and the
// receive/carrier-sense threshold calibration used by the paper
// (50% reception probability at 250 m, 50% carrier-sense probability at
// 550 m, path-loss exponent β = 2, shadowing deviation σ = 1 dB).
package phys

import "math"

// Point is a node position in metres.
type Point struct {
	X, Y float64
}

// Distance returns the Euclidean distance in metres between p and q.
func (p Point) Distance(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// OnCircle returns the i-th of n points evenly spaced on a circle of
// the given radius centred at c, starting at angle zero.
func OnCircle(c Point, radius float64, i, n int) Point {
	theta := 2 * math.Pi * float64(i) / float64(n)
	return Point{
		X: c.X + radius*math.Cos(theta),
		Y: c.Y + radius*math.Sin(theta),
	}
}
