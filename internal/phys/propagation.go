package phys

import (
	"fmt"
	"math"

	"dcfguard/internal/rng"
)

// PathLossMode selects the deterministic part of the Shadowing model.
type PathLossMode int

const (
	// LogDistance is the paper's model: Friis at d0, then distance^β.
	LogDistance PathLossMode = iota
	// TwoRayGround is ns-2's other classic model: Friis up to the
	// crossover distance dc = 4π·ht·hr/λ, then the two-ray ground
	// reflection law Pr = Pt·ht²·hr²/d⁴ beyond it.
	TwoRayGround
)

// String returns the mode name.
func (m PathLossMode) String() string {
	switch m {
	case LogDistance:
		return "log-distance"
	case TwoRayGround:
		return "two-ray-ground"
	default:
		return fmt.Sprintf("PathLossMode(%d)", int(m))
	}
}

// Shadowing is the log-normal shadowing propagation model used by the
// paper (and by ns-2):
//
//	[Pr(d) / Pr(d0)]_dB = -10 β log10(d / d0) + X_dB
//
// where β is the path-loss exponent, d0 a close-in reference distance,
// and X_dB a zero-mean Gaussian with standard deviation σ_dB. The
// deterministic part of Pr(d0) comes from the Friis free-space
// equation; with Mode == TwoRayGround it instead follows ns-2's
// two-ray ground-reflection law (d⁻² near, d⁻⁴ far).
type Shadowing struct {
	// Mode selects the deterministic path-loss law (default LogDistance).
	Mode PathLossMode
	// Beta is the path-loss exponent β. The paper uses 2 (free space).
	// Ignored by TwoRayGround, whose exponents are fixed by physics.
	Beta float64
	// SigmaDB is the shadowing standard deviation σ_dB. The paper uses 1.
	SigmaDB float64
	// RefDistance is the close-in reference distance d0 in metres.
	RefDistance float64
	// WavelengthM is the carrier wavelength λ in metres.
	WavelengthM float64
	// AntennaHeightM is the antenna height above ground used by
	// TwoRayGround (ns-2 default: 1.5 m for both ends).
	AntennaHeightM float64
}

// DefaultShadowing returns the model with the paper's parameters:
// β = 2, σ = 1 dB, d0 = 1 m, and the 914 MHz carrier ns-2 defaults to
// (λ ≈ 0.328 m). The carrier frequency only shifts all powers by a
// constant, so it has no effect once thresholds are calibrated.
func DefaultShadowing() Shadowing {
	return Shadowing{
		Mode:        LogDistance,
		Beta:        2,
		SigmaDB:     1,
		RefDistance: 1,
		WavelengthM: 0.328,
	}
}

// DefaultTwoRay returns the two-ray ground variant with ns-2's default
// 1.5 m antennas and the paper's σ = 1 dB shadowing.
func DefaultTwoRay() Shadowing {
	m := DefaultShadowing()
	m.Mode = TwoRayGround
	m.AntennaHeightM = 1.5
	return m
}

// Validate reports whether the model parameters are physically sensible.
func (m Shadowing) Validate() error {
	switch {
	case m.SigmaDB < 0:
		return fmt.Errorf("phys: shadowing deviation %v must be non-negative", m.SigmaDB)
	case m.RefDistance <= 0:
		return fmt.Errorf("phys: reference distance %v must be positive", m.RefDistance)
	case m.WavelengthM <= 0:
		return fmt.Errorf("phys: wavelength %v must be positive", m.WavelengthM)
	}
	switch m.Mode {
	case LogDistance:
		if m.Beta <= 0 {
			return fmt.Errorf("phys: path-loss exponent %v must be positive", m.Beta)
		}
	case TwoRayGround:
		if m.AntennaHeightM <= 0 {
			return fmt.Errorf("phys: antenna height %v must be positive", m.AntennaHeightM)
		}
	default:
		return fmt.Errorf("phys: invalid path-loss mode %d", m.Mode)
	}
	return nil
}

// crossoverDistance is the two-ray model's transition point
// dc = 4π·ht·hr/λ; Friis applies below, d⁻⁴ above.
func (m Shadowing) crossoverDistance() float64 {
	return 4 * math.Pi * m.AntennaHeightM * m.AntennaHeightM / m.WavelengthM
}

// refLossDB returns the Friis free-space path loss in dB at the
// reference distance d0 (unity antenna gains, no system loss).
func (m Shadowing) refLossDB() float64 {
	return 20 * math.Log10(4*math.Pi*m.RefDistance/m.WavelengthM)
}

// MeanRxPowerDBm returns the mean (and, because shadowing is symmetric,
// median) received power in dBm at distance d metres for the given
// transmit power.
func (m Shadowing) MeanRxPowerDBm(txPowerDBm, d float64) float64 {
	if d < m.RefDistance {
		d = m.RefDistance
	}
	if m.Mode == TwoRayGround {
		dc := m.crossoverDistance()
		if d <= dc {
			// Friis free space: loss = 20·log10(4πd/λ).
			return txPowerDBm - 20*math.Log10(4*math.Pi*d/m.WavelengthM)
		}
		// Pr = Pt·ht²·hr²/d⁴ with unity gains.
		h2 := m.AntennaHeightM * m.AntennaHeightM
		return txPowerDBm + 10*math.Log10(h2*h2) - 40*math.Log10(d)
	}
	return txPowerDBm - m.refLossDB() - 10*m.Beta*math.Log10(d/m.RefDistance)
}

// SampleRxPowerDBm draws one shadowing realisation of the received power
// in dBm at distance d.
func (m Shadowing) SampleRxPowerDBm(txPowerDBm, d float64, src *rng.Source) float64 {
	return m.MeanRxPowerDBm(txPowerDBm, d) + m.SigmaDB*src.NormFloat64()
}

// ProbAbove returns the probability that the received power at distance
// d exceeds threshDBm, using the Gaussian shadowing distribution. Used
// to verify calibration and in tests.
func (m Shadowing) ProbAbove(txPowerDBm, d, threshDBm float64) float64 {
	mean := m.MeanRxPowerDBm(txPowerDBm, d)
	//detlint:allow floateq -- config sentinel: SigmaDB is set literally, 0 means "no shadowing"
	if m.SigmaDB == 0 {
		if mean >= threshDBm {
			return 1
		}
		return 0
	}
	z := (threshDBm - mean) / m.SigmaDB
	// P(X > z) for standard normal.
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// ThresholdFor returns the threshold in dBm such that a transmission at
// txPowerDBm is above the threshold with probability p at distance d.
// With p = 0.5 this is simply the mean received power at d, which is how
// the paper calibrates both the receive threshold (d = 250 m) and the
// carrier-sense threshold (d = 550 m).
func (m Shadowing) ThresholdFor(txPowerDBm, d, p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("phys: ThresholdFor probability %v out of (0,1)", p))
	}
	mean := m.MeanRxPowerDBm(txPowerDBm, d)
	// P(mean + σZ > T) = p  ⇒  T = mean + σ·Φ⁻¹(1-p).
	return mean + m.SigmaDB*inverseNormalCDF(1-p)
}

// inverseNormalCDF returns Φ⁻¹(p) for the standard normal distribution.
// The Acklam approximation lives in rng (counter-based shadowing draws
// invert the CDF on the hot path); calibration reuses it from there.
func inverseNormalCDF(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("phys: inverseNormalCDF(%v) out of (0,1)", p))
	}
	return rng.InvNormCDF(p)
}

// MaxRangeFor returns an upper bound on the distance at which the mean
// received power still reaches threshDBm: beyond the returned distance,
// MeanRxPowerDBm(txPowerDBm, d) < threshDBm for every d. The medium's
// spatial index calls this with threshDBm = carrier-sense threshold −
// rng.NormBound·σ to bound each transmitter's interaction radius — no
// realisable shadowing draw can make a node beyond it sense anything.
// MeanRxPowerDBm is monotone non-increasing in d (both path-loss laws),
// so a doubling search plus bisection suffices; the returned value errs
// on the large side, which only adds candidates, never drops one.
func (m Shadowing) MaxRangeFor(txPowerDBm, threshDBm float64) float64 {
	if m.MeanRxPowerDBm(txPowerDBm, m.RefDistance) < threshDBm {
		return 0
	}
	// maxSearchM caps the doubling search; a threshold still reachable
	// at 10,000 km is "everything in range" for any terrestrial arena.
	const maxSearchM = 1e10
	lo, hi := m.RefDistance, 2*m.RefDistance
	for m.MeanRxPowerDBm(txPowerDBm, hi) >= threshDBm {
		lo = hi
		hi *= 2
		if hi >= maxSearchM {
			return maxSearchM
		}
	}
	for i := 0; i < 64 && hi-lo > 1e-6; i++ {
		mid := lo + (hi-lo)/2
		if m.MeanRxPowerDBm(txPowerDBm, mid) >= threshDBm {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}
