package phys

import (
	"fmt"
	"math"

	"dcfguard/internal/rng"
)

// PathLossMode selects the deterministic part of the Shadowing model.
type PathLossMode int

const (
	// LogDistance is the paper's model: Friis at d0, then distance^β.
	LogDistance PathLossMode = iota
	// TwoRayGround is ns-2's other classic model: Friis up to the
	// crossover distance dc = 4π·ht·hr/λ, then the two-ray ground
	// reflection law Pr = Pt·ht²·hr²/d⁴ beyond it.
	TwoRayGround
)

// String returns the mode name.
func (m PathLossMode) String() string {
	switch m {
	case LogDistance:
		return "log-distance"
	case TwoRayGround:
		return "two-ray-ground"
	default:
		return fmt.Sprintf("PathLossMode(%d)", int(m))
	}
}

// Shadowing is the log-normal shadowing propagation model used by the
// paper (and by ns-2):
//
//	[Pr(d) / Pr(d0)]_dB = -10 β log10(d / d0) + X_dB
//
// where β is the path-loss exponent, d0 a close-in reference distance,
// and X_dB a zero-mean Gaussian with standard deviation σ_dB. The
// deterministic part of Pr(d0) comes from the Friis free-space
// equation; with Mode == TwoRayGround it instead follows ns-2's
// two-ray ground-reflection law (d⁻² near, d⁻⁴ far).
type Shadowing struct {
	// Mode selects the deterministic path-loss law (default LogDistance).
	Mode PathLossMode
	// Beta is the path-loss exponent β. The paper uses 2 (free space).
	// Ignored by TwoRayGround, whose exponents are fixed by physics.
	Beta float64
	// SigmaDB is the shadowing standard deviation σ_dB. The paper uses 1.
	SigmaDB float64
	// RefDistance is the close-in reference distance d0 in metres.
	RefDistance float64
	// WavelengthM is the carrier wavelength λ in metres.
	WavelengthM float64
	// AntennaHeightM is the antenna height above ground used by
	// TwoRayGround (ns-2 default: 1.5 m for both ends).
	AntennaHeightM float64
}

// DefaultShadowing returns the model with the paper's parameters:
// β = 2, σ = 1 dB, d0 = 1 m, and the 914 MHz carrier ns-2 defaults to
// (λ ≈ 0.328 m). The carrier frequency only shifts all powers by a
// constant, so it has no effect once thresholds are calibrated.
func DefaultShadowing() Shadowing {
	return Shadowing{
		Mode:        LogDistance,
		Beta:        2,
		SigmaDB:     1,
		RefDistance: 1,
		WavelengthM: 0.328,
	}
}

// DefaultTwoRay returns the two-ray ground variant with ns-2's default
// 1.5 m antennas and the paper's σ = 1 dB shadowing.
func DefaultTwoRay() Shadowing {
	m := DefaultShadowing()
	m.Mode = TwoRayGround
	m.AntennaHeightM = 1.5
	return m
}

// Validate reports whether the model parameters are physically sensible.
func (m Shadowing) Validate() error {
	switch {
	case m.SigmaDB < 0:
		return fmt.Errorf("phys: shadowing deviation %v must be non-negative", m.SigmaDB)
	case m.RefDistance <= 0:
		return fmt.Errorf("phys: reference distance %v must be positive", m.RefDistance)
	case m.WavelengthM <= 0:
		return fmt.Errorf("phys: wavelength %v must be positive", m.WavelengthM)
	}
	switch m.Mode {
	case LogDistance:
		if m.Beta <= 0 {
			return fmt.Errorf("phys: path-loss exponent %v must be positive", m.Beta)
		}
	case TwoRayGround:
		if m.AntennaHeightM <= 0 {
			return fmt.Errorf("phys: antenna height %v must be positive", m.AntennaHeightM)
		}
	default:
		return fmt.Errorf("phys: invalid path-loss mode %d", m.Mode)
	}
	return nil
}

// crossoverDistance is the two-ray model's transition point
// dc = 4π·ht·hr/λ; Friis applies below, d⁻⁴ above.
func (m Shadowing) crossoverDistance() float64 {
	return 4 * math.Pi * m.AntennaHeightM * m.AntennaHeightM / m.WavelengthM
}

// refLossDB returns the Friis free-space path loss in dB at the
// reference distance d0 (unity antenna gains, no system loss).
func (m Shadowing) refLossDB() float64 {
	return 20 * math.Log10(4*math.Pi*m.RefDistance/m.WavelengthM)
}

// MeanRxPowerDBm returns the mean (and, because shadowing is symmetric,
// median) received power in dBm at distance d metres for the given
// transmit power.
func (m Shadowing) MeanRxPowerDBm(txPowerDBm, d float64) float64 {
	if d < m.RefDistance {
		d = m.RefDistance
	}
	if m.Mode == TwoRayGround {
		dc := m.crossoverDistance()
		if d <= dc {
			// Friis free space: loss = 20·log10(4πd/λ).
			return txPowerDBm - 20*math.Log10(4*math.Pi*d/m.WavelengthM)
		}
		// Pr = Pt·ht²·hr²/d⁴ with unity gains.
		h2 := m.AntennaHeightM * m.AntennaHeightM
		return txPowerDBm + 10*math.Log10(h2*h2) - 40*math.Log10(d)
	}
	return txPowerDBm - m.refLossDB() - 10*m.Beta*math.Log10(d/m.RefDistance)
}

// SampleRxPowerDBm draws one shadowing realisation of the received power
// in dBm at distance d.
func (m Shadowing) SampleRxPowerDBm(txPowerDBm, d float64, src *rng.Source) float64 {
	return m.MeanRxPowerDBm(txPowerDBm, d) + m.SigmaDB*src.NormFloat64()
}

// ProbAbove returns the probability that the received power at distance
// d exceeds threshDBm, using the Gaussian shadowing distribution. Used
// to verify calibration and in tests.
func (m Shadowing) ProbAbove(txPowerDBm, d, threshDBm float64) float64 {
	mean := m.MeanRxPowerDBm(txPowerDBm, d)
	if m.SigmaDB == 0 {
		if mean >= threshDBm {
			return 1
		}
		return 0
	}
	z := (threshDBm - mean) / m.SigmaDB
	// P(X > z) for standard normal.
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// ThresholdFor returns the threshold in dBm such that a transmission at
// txPowerDBm is above the threshold with probability p at distance d.
// With p = 0.5 this is simply the mean received power at d, which is how
// the paper calibrates both the receive threshold (d = 250 m) and the
// carrier-sense threshold (d = 550 m).
func (m Shadowing) ThresholdFor(txPowerDBm, d, p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("phys: ThresholdFor probability %v out of (0,1)", p))
	}
	mean := m.MeanRxPowerDBm(txPowerDBm, d)
	// P(mean + σZ > T) = p  ⇒  T = mean + σ·Φ⁻¹(1-p).
	return mean + m.SigmaDB*inverseNormalCDF(1-p)
}

// inverseNormalCDF returns Φ⁻¹(p) for the standard normal distribution
// using the Acklam rational approximation (relative error < 1.15e-9),
// which is ample for threshold calibration.
func inverseNormalCDF(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("phys: inverseNormalCDF(%v) out of (0,1)", p))
	}
	const (
		a1 = -39.69683028665376
		a2 = 220.9460984245205
		a3 = -275.9285104469687
		a4 = 138.3577518672690
		a5 = -30.66479806614716
		a6 = 2.506628277459239

		b1 = -54.47609879822406
		b2 = 161.5858368580409
		b3 = -155.6989798598866
		b4 = 66.80131188771972
		b5 = -13.28068155288572

		c1 = -0.007784894002430293
		c2 = -0.3223964580411365
		c3 = -2.400758277161838
		c4 = -2.549732539343734
		c5 = 4.374664141464968
		c6 = 2.938163982698783

		d1 = 0.007784695709041462
		d2 = 0.3224671290700398
		d3 = 2.445134137142996
		d4 = 3.754408661907416

		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		return (((((a1*r+a2)*r+a3)*r+a4)*r+a5)*r + a6) * q /
			(((((b1*r+b2)*r+b3)*r+b4)*r+b5)*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	}
}
