package phys

import "fmt"

// Radio holds a node's radio parameters. All nodes in the paper's
// experiments use identical radios; heterogeneous radios are supported
// for extensions.
type Radio struct {
	// TxPowerDBm is the transmit power. The absolute value is
	// irrelevant once thresholds are calibrated against it; we default
	// to ns-2's 24.5 dBm (281.8 mW).
	TxPowerDBm float64
	// RxThreshDBm is the minimum received power for successful frame
	// decoding (absent collisions).
	RxThreshDBm float64
	// CsThreshDBm is the minimum received power for the channel to be
	// sensed busy. CsThresh < RxThresh: transmissions can be sensed
	// without being decodable.
	CsThreshDBm float64
	// CaptureDB is the power margin by which the strongest of two
	// overlapping frames must exceed the other to be captured
	// (decoded despite the collision). Zero disables capture, which is
	// the configuration used for the paper reproduction.
	CaptureDB float64
	// BitRate is the channel bit rate in bits per second (paper: 2 Mbps).
	BitRate int64
}

// CalibratedRadio builds the paper's radio: thresholds chosen so a frame
// is received with probability rxProb at rxDist metres and sensed with
// probability csProb at csDist metres under the given shadowing model.
func CalibratedRadio(m Shadowing, txPowerDBm, rxDist, rxProb, csDist, csProb float64, bitRate int64) Radio {
	return Radio{
		TxPowerDBm:  txPowerDBm,
		RxThreshDBm: m.ThresholdFor(txPowerDBm, rxDist, rxProb),
		CsThreshDBm: m.ThresholdFor(txPowerDBm, csDist, csProb),
		BitRate:     bitRate,
	}
}

// DefaultRadio returns the paper's configuration: 2 Mbps channel, 50%
// reception at 250 m and 50% carrier sense at 550 m under
// DefaultShadowing.
func DefaultRadio() Radio {
	return CalibratedRadio(DefaultShadowing(), 24.5, 250, 0.5, 550, 0.5, 2_000_000)
}

// Validate reports whether the radio parameters are consistent.
func (r Radio) Validate() error {
	switch {
	case r.BitRate <= 0:
		return fmt.Errorf("phys: bit rate %d must be positive", r.BitRate)
	case r.CsThreshDBm > r.RxThreshDBm:
		return fmt.Errorf("phys: carrier-sense threshold %.1f dBm above receive threshold %.1f dBm",
			r.CsThreshDBm, r.RxThreshDBm)
	case r.CaptureDB < 0:
		return fmt.Errorf("phys: capture margin %v must be non-negative", r.CaptureDB)
	}
	return nil
}
