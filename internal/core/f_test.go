package core

import (
	"testing"
	"testing/quick"

	"dcfguard/internal/frame"
	"dcfguard/internal/mac"
)

func TestFDeterministic(t *testing.T) {
	for attempt := 2; attempt <= 7; attempt++ {
		a := F(12, 3, attempt, 31)
		b := F(12, 3, attempt, 31)
		if a != b {
			t.Fatalf("F not deterministic for attempt %d: %d vs %d", attempt, a, b)
		}
	}
}

func TestFRange(t *testing.T) {
	for backoff := 0; backoff <= 31; backoff++ {
		for id := frame.NodeID(0); id < 50; id++ {
			for attempt := 2; attempt <= 8; attempt++ {
				v := F(backoff, id, attempt, 31)
				if v < 0 || v > 31 {
					t.Fatalf("F(%d, %d, %d, 31) = %d out of [0, 31]", backoff, id, attempt, v)
				}
			}
		}
	}
}

func TestFPanicsOnFirstAttempt(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("F(attempt=1) did not panic")
		}
	}()
	F(3, 1, 1, 31)
}

func TestFNegativeBackoffClamped(t *testing.T) {
	if F(-5, 1, 2, 31) != F(0, 1, 2, 31) {
		t.Fatal("negative backoff not clamped to 0")
	}
}

func TestFCollidersDiverge(t *testing.T) {
	// The paper chose f so that colliding senders (same backoff, same
	// attempt, different nodeId) pick different retry backoffs with
	// high probability. With a=5 coprime to CWmin+1=32, distinct ids in
	// a 32-window always diverge.
	same := 0
	total := 0
	for backoff := 0; backoff <= 31; backoff++ {
		for idA := frame.NodeID(0); idA < 16; idA++ {
			for idB := idA + 1; idB < 16; idB++ {
				total++
				if F(backoff, idA, 2, 31) == F(backoff, idB, 2, 31) {
					same++
				}
			}
		}
	}
	if same != 0 {
		t.Fatalf("%d of %d collider pairs selected the same retry value", same, total)
	}
}

func TestFAttemptVariation(t *testing.T) {
	// Consecutive attempts by the same node must not repeat the same
	// value (c = 2·attempt+1 advances the LCG output).
	for backoff := 0; backoff <= 31; backoff++ {
		if F(backoff, 5, 2, 31) == F(backoff, 5, 3, 31) {
			t.Fatalf("attempts 2 and 3 collide for backoff %d", backoff)
		}
	}
}

func TestRetrySlotsRange(t *testing.T) {
	params := mac.DefaultParams()
	for backoff := 0; backoff <= 31; backoff++ {
		for attempt := 2; attempt <= 8; attempt++ {
			v := RetrySlots(backoff, 7, attempt, params)
			cw := params.CW(attempt)
			if v < 0 || v > cw {
				t.Fatalf("RetrySlots(backoff=%d, attempt=%d) = %d out of [0, %d]",
					backoff, attempt, v, cw)
			}
		}
	}
}

func TestRetrySlotsScalesWithWindow(t *testing.T) {
	// The same f fraction applied to a doubled window doubles (within
	// integer truncation) the retry backoff — find a backoff where
	// f > 0 and check proportionality.
	params := mac.DefaultParams()
	fv := F(10, 3, 2, params.CWMin)
	if fv == 0 {
		t.Skip("chosen inputs give f = 0")
	}
	want2 := fv * params.CW(2) / params.CWMin
	if got := RetrySlots(10, 3, 2, params); got != want2 {
		t.Fatalf("RetrySlots attempt 2 = %d, want %d", got, want2)
	}
}

func TestExpectedBackoffFirstAttempt(t *testing.T) {
	params := mac.DefaultParams()
	if got := ExpectedBackoff(17, 3, 1, params, true); got != 17 {
		t.Fatalf("ExpectedBackoff(attempt=1) = %d, want 17", got)
	}
	if got := ExpectedBackoff(17, 3, 1, params, false); got != 0 {
		t.Fatalf("ExpectedBackoff(attempt=1, no base) = %d, want 0", got)
	}
}

func TestExpectedBackoffSumsChain(t *testing.T) {
	params := mac.DefaultParams()
	backoff, id := 9, frame.NodeID(4)
	want := backoff
	for i := 2; i <= 5; i++ {
		want += RetrySlots(backoff, id, i, params)
	}
	if got := ExpectedBackoff(backoff, id, 5, params, true); got != want {
		t.Fatalf("ExpectedBackoff(attempt=5) = %d, want %d", got, want)
	}
	if got := ExpectedBackoff(backoff, id, 5, params, false); got != want-backoff {
		t.Fatalf("ExpectedBackoff(attempt=5, no base) = %d, want %d", got, want-backoff)
	}
}

func TestExpectedBackoffMonotoneInAttempt(t *testing.T) {
	params := mac.DefaultParams()
	f := func(b uint8, id uint8) bool {
		backoff := int(b) % 32
		node := frame.NodeID(id)
		prev := -1
		for attempt := 1; attempt <= 7; attempt++ {
			v := ExpectedBackoff(backoff, node, attempt, params, true)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSenderReceiverAgreeOnRetryChain(t *testing.T) {
	// The receiver's estimator and the sender's policy must compute the
	// exact same retry backoffs — that agreement is the protocol's
	// foundation.
	params := mac.DefaultParams()
	f := func(b uint8, id uint8, a uint8) bool {
		backoff := int(b) % 32
		node := frame.NodeID(id % 64)
		attempt := int(a)%6 + 2
		senderSide := RetrySlots(backoff, node, attempt, params)
		receiverSide := ExpectedBackoff(backoff, node, attempt, params, true) -
			ExpectedBackoff(backoff, node, attempt-1, params, true)
		return senderSide == receiverSide
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGRange(t *testing.T) {
	for r := frame.NodeID(0); r < 20; r++ {
		for s := frame.NodeID(0); s < 20; s++ {
			for seq := uint32(0); seq < 100; seq++ {
				v := G(r, s, seq, 31)
				if v < 0 || v > 31 {
					t.Fatalf("G(%d, %d, %d) = %d out of [0, 31]", r, s, seq, v)
				}
			}
		}
	}
}

func TestGDeterministic(t *testing.T) {
	if G(1, 2, 77, 31) != G(1, 2, 77, 31) {
		t.Fatal("G not deterministic")
	}
}

func TestGVariesWithSeq(t *testing.T) {
	distinct := make(map[int]bool)
	for seq := uint32(0); seq < 32; seq++ {
		distinct[G(3, 5, seq, 31)] = true
	}
	if len(distinct) < 8 {
		t.Fatalf("G produced only %d distinct values over 32 seqs", len(distinct))
	}
}
