package core

import (
	"fmt"
	"sort"
)

// AdaptiveThresh implements the adaptive THRESH selection the paper
// defers to future work (§4.3): instead of a fixed threshold, the
// receiver learns the distribution of windowed (B_exp − B_act) sums its
// channel actually produces and places the threshold at the upper
// Tukey fence, Q3 + k·IQR, of recent samples.
//
// The fence is robust to a minority of misbehaving senders: their
// outlying sums inflate the upper tail, not the quartiles. In a clean
// channel (ZERO-FLOW) the fence tightens far below the static default
// and catches milder misbehavior; in a noisy channel (TWO-FLOW,
// hidden-terminal topologies) honest sums are scattered, the fence
// widens, and misdiagnosis falls.
type AdaptiveThresh struct {
	samples []float64 // ring buffer of recent window sums
	next    int
	full    bool

	k        float64
	min, max float64
}

// NewAdaptiveThresh builds a tracker over a ring of capacity samples,
// with fence multiplier k and clamping bounds [min, max] (slots).
func NewAdaptiveThresh(capacity int, k, min, max float64) *AdaptiveThresh {
	if capacity < 4 || k <= 0 || min < 0 || max < min {
		panic(fmt.Sprintf("core: NewAdaptiveThresh(%d, %v, %v, %v)", capacity, k, min, max))
	}
	return &AdaptiveThresh{
		samples: make([]float64, 0, capacity),
		k:       k,
		min:     min,
		max:     max,
	}
}

// DefaultAdaptiveThresh returns the tracker used by the A6 ablation:
// 256 recent window sums, Tukey fence Q3 + 1.5·IQR, clamped to
// [5, 200] slots.
func DefaultAdaptiveThresh() *AdaptiveThresh {
	return NewAdaptiveThresh(256, 1.5, 5, 200)
}

// Observe records one window sum.
func (a *AdaptiveThresh) Observe(sum float64) {
	if len(a.samples) < cap(a.samples) {
		a.samples = append(a.samples, sum)
		return
	}
	a.samples[a.next] = sum
	a.next = (a.next + 1) % len(a.samples)
	a.full = true
}

// N returns the number of retained samples.
func (a *AdaptiveThresh) N() int { return len(a.samples) }

// Threshold returns the current adaptive threshold. With fewer than 8
// samples it returns the upper clamp (conservative: diagnose nothing
// until the channel has been observed).
func (a *AdaptiveThresh) Threshold() float64 {
	if len(a.samples) < 8 {
		return a.max
	}
	sorted := make([]float64, len(a.samples))
	copy(sorted, a.samples)
	sort.Float64s(sorted)
	q1 := quantile(sorted, 0.25)
	q3 := quantile(sorted, 0.75)
	iqr := q3 - q1
	t := q3 + a.k*iqr
	if t < a.min {
		t = a.min
	}
	if t > a.max {
		t = a.max
	}
	return t
}

// quantile returns the q-th quantile of sorted data by linear
// interpolation.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
