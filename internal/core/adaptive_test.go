package core

import (
	"testing"
	"testing/quick"
)

func TestAdaptiveThreshColdStart(t *testing.T) {
	a := NewAdaptiveThresh(64, 1.5, 5, 200)
	if got := a.Threshold(); got != 200 {
		t.Fatalf("cold threshold = %v, want the conservative max 200", got)
	}
	for i := 0; i < 7; i++ {
		a.Observe(0)
	}
	if got := a.Threshold(); got != 200 {
		t.Fatalf("threshold with 7 samples = %v, want 200", got)
	}
}

func TestAdaptiveThreshCleanChannelTightens(t *testing.T) {
	a := DefaultAdaptiveThresh()
	// Honest ZERO-FLOW sums cluster at 0 with tiny jitter.
	for i := 0; i < 100; i++ {
		a.Observe(float64(i % 3)) // 0, 1, 2
	}
	th := a.Threshold()
	if th >= 20 {
		t.Fatalf("clean-channel threshold = %v, want well below the static 20", th)
	}
	if th < 5 {
		t.Fatalf("threshold = %v, below the clamp floor", th)
	}
}

func TestAdaptiveThreshNoisyChannelWidens(t *testing.T) {
	clean := DefaultAdaptiveThresh()
	noisy := DefaultAdaptiveThresh()
	for i := 0; i < 200; i++ {
		clean.Observe(float64(i % 3))
		noisy.Observe(float64((i * 37) % 60)) // scattered honest sums
	}
	if noisy.Threshold() <= clean.Threshold() {
		t.Fatalf("noisy threshold %v not above clean %v",
			noisy.Threshold(), clean.Threshold())
	}
}

func TestAdaptiveThreshRobustToMinorityOutliers(t *testing.T) {
	a := DefaultAdaptiveThresh()
	// 87% honest (sums ≈ 0..4), 13% misbehaving (sums ≈ 500).
	for i := 0; i < 200; i++ {
		if i%8 == 0 {
			a.Observe(500)
		} else {
			a.Observe(float64(i % 5))
		}
	}
	th := a.Threshold()
	if th > 50 {
		t.Fatalf("threshold = %v dragged up by the misbehaving minority", th)
	}
}

func TestAdaptiveThreshClamps(t *testing.T) {
	a := NewAdaptiveThresh(64, 1.5, 5, 200)
	for i := 0; i < 100; i++ {
		a.Observe(10000)
	}
	if got := a.Threshold(); got != 200 {
		t.Fatalf("threshold = %v, want clamped to 200", got)
	}
}

func TestAdaptiveThreshRingEviction(t *testing.T) {
	a := NewAdaptiveThresh(16, 1.5, 0, 1e9)
	for i := 0; i < 16; i++ {
		a.Observe(1000)
	}
	// After the ring rolls over with small sums, the old regime must be
	// forgotten.
	for i := 0; i < 16; i++ {
		a.Observe(1)
	}
	if th := a.Threshold(); th > 10 {
		t.Fatalf("threshold = %v still dominated by evicted samples", th)
	}
	if a.N() != 16 {
		t.Fatalf("N = %d, want ring capacity 16", a.N())
	}
}

func TestAdaptiveThreshValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid tracker did not panic")
		}
	}()
	NewAdaptiveThresh(2, 1.5, 5, 200)
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := quantile(sorted, c.q); got != c.want {
			t.Errorf("quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := quantile(nil, 0.5); got != 0 {
		t.Errorf("quantile(empty) = %v", got)
	}
	// Interpolation between points.
	if got := quantile([]float64{0, 10}, 0.25); got != 2.5 {
		t.Errorf("interpolated quantile = %v, want 2.5", got)
	}
}

func TestQuickQuantileMonotone(t *testing.T) {
	f := func(raw []int8, qa, qb uint8) bool {
		if len(raw) == 0 {
			return true
		}
		sorted := make([]float64, len(raw))
		for i, v := range raw {
			sorted[i] = float64(v)
		}
		sortFloats(sorted)
		a := float64(qa%101) / 100
		b := float64(qb%101) / 100
		if a > b {
			a, b = b, a
		}
		return quantile(sorted, a) <= quantile(sorted, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func TestMonitorAdaptiveThreshIntegration(t *testing.T) {
	params := DefaultParams()
	params.AdaptiveThresh = true
	h := newHarness(params)
	if got := h.m.CurrentThresh(); got != 200 {
		t.Fatalf("cold monitor threshold = %v, want conservative 200", got)
	}
	assigned := h.exchange(5)
	for i := 0; i < 20; i++ {
		assigned = h.exchange(assigned)
	}
	// Twenty honest packets: the learned threshold tightens below the
	// static default.
	if got := h.m.CurrentThresh(); got >= 20 {
		t.Fatalf("learned threshold = %v, want below static 20", got)
	}
	// A hard misbehaver is now caught despite the tight channel.
	for i := 0; i < 10; i++ {
		h.exchange(0)
	}
	if !h.m.Diagnosed(1) {
		t.Fatal("adaptive monitor failed to diagnose hard misbehavior")
	}
}

func TestMonitorStaticThreshUnchanged(t *testing.T) {
	h := newHarness(DefaultParams())
	if got := h.m.CurrentThresh(); got != 20 {
		t.Fatalf("static threshold = %v, want 20", got)
	}
}
