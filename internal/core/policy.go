package core

import (
	"fmt"

	"dcfguard/internal/frame"
	"dcfguard/internal/mac"
	"dcfguard/internal/rng"
)

// AssignedPolicy is the sender side of the paper's protocol: count the
// backoff the receiver assigned (arbitrary for the very first packet to
// a receiver), and derive retransmission backoffs from the deterministic
// function f so the receiver can reconstruct them.
//
// With VerifyReceiver enabled (§4.4 extension), the policy audits every
// assignment against the public function G and refuses to count less
// than G's value, neutralising greedy receivers.
type AssignedPolicy struct {
	self      frame.NodeID
	macParams mac.Params
	src       *rng.Source

	// VerifyReceiver enables the §4.4 sender-side audit.
	VerifyReceiver bool

	dests map[frame.NodeID]*destState

	greedyDetections int
}

// destState tracks assignments from one receiver.
type destState struct {
	// active is the backoff to count for the next new packet; -1 until
	// the first ACK carries an assignment.
	active int
	// counting is the base the current packet's countdown used (feeds
	// the retry function f).
	counting int
	// pending is the assignment seen in the current exchange's CTS; it
	// is promoted to active only when the ACK confirms the exchange.
	pending int
}

var _ mac.BackoffPolicy = (*AssignedPolicy)(nil)

// NewAssignedPolicy builds the sender-side policy for node self.
func NewAssignedPolicy(self frame.NodeID, macParams mac.Params, src *rng.Source) *AssignedPolicy {
	if err := macParams.Validate(); err != nil {
		panic(fmt.Sprintf("core: policy for node %d: %v", self, err))
	}
	return &AssignedPolicy{
		self:      self,
		macParams: macParams,
		src:       src,
		dests:     make(map[frame.NodeID]*destState),
	}
}

func (p *AssignedPolicy) dest(dst frame.NodeID) *destState {
	d, ok := p.dests[dst]
	if !ok {
		d = &destState{active: -1, counting: -1, pending: -1}
		p.dests[dst] = d
	}
	return d
}

// GreedyDetections returns how many assignments failed the G audit.
func (p *AssignedPolicy) GreedyDetections() int { return p.greedyDetections }

// Assigned returns the backoff currently assigned for the next packet to
// dst, or -1 if none has been received yet.
func (p *AssignedPolicy) Assigned(dst frame.NodeID) int { return p.dest(dst).active }

// InitialBackoff counts the receiver-assigned value; the first packet to
// a receiver uses an arbitrary (uniform [0, CWmin]) backoff, as the
// paper allows.
func (p *AssignedPolicy) InitialBackoff(dst frame.NodeID, _ int) int {
	d := p.dest(dst)
	if d.active < 0 {
		d.counting = p.src.IntRange(0, p.macParams.CWMin)
	} else {
		d.counting = d.active
	}
	return d.counting
}

// RetryBackoff derives the retransmission backoff from f, keyed on the
// backoff the current packet counted.
func (p *AssignedPolicy) RetryBackoff(dst frame.NodeID, attempt, _ int) int {
	d := p.dest(dst)
	base := d.counting
	if base < 0 {
		base = 0
	}
	return RetrySlots(base, p.self, attempt, p.macParams)
}

// OnAssigned records an advertised assignment. CTS assignments stay
// pending; the ACK (final) promotes the pending value for the next
// packet. Under VerifyReceiver, values below G's floor are clamped up
// and counted as greedy detections.
func (p *AssignedPolicy) OnAssigned(dst frame.NodeID, seq uint32, backoff int, final bool) {
	if p.VerifyReceiver {
		floor := G(dst, p.self, seq, p.macParams.CWMin)
		if backoff < floor {
			p.greedyDetections++
			backoff = floor
		}
	}
	d := p.dest(dst)
	d.pending = backoff
	if final && d.pending >= 0 {
		d.active = d.pending
	}
}

// ReportAttempt reports honestly.
func (p *AssignedPolicy) ReportAttempt(actual int) int { return actual }
