package core

import (
	"testing"
	"testing/quick"

	"dcfguard/internal/sim"
)

const (
	tSlot = 20 * sim.Microsecond
	tDIFS = 50 * sim.Microsecond
)

func newObs() *IdleObserver {
	return NewIdleObserver(tSlot, tDIFS, 2*sim.Second)
}

func TestIdleSlotsFullyIdle(t *testing.T) {
	o := newObs()
	// Window of exactly DIFS + 5 slots, channel idle throughout.
	from := sim.Time(100 * sim.Microsecond)
	to := from + tDIFS + 5*tSlot
	if got := o.IdleSlots(from, to); got != 5 {
		t.Fatalf("IdleSlots = %d, want 5", got)
	}
}

func TestIdleSlotsShorterThanDIFS(t *testing.T) {
	o := newObs()
	from := sim.Time(0)
	if got := o.IdleSlots(from, from+tDIFS-sim.Microsecond); got != 0 {
		t.Fatalf("IdleSlots = %d, want 0 for sub-DIFS window", got)
	}
}

func TestIdleSlotsPartialSlotDiscarded(t *testing.T) {
	o := newObs()
	from := sim.Time(0)
	to := from + tDIFS + 3*tSlot + 19*sim.Microsecond
	if got := o.IdleSlots(from, to); got != 3 {
		t.Fatalf("IdleSlots = %d, want 3 (partial slot must not count)", got)
	}
}

func TestIdleSlotsBusyGapSplitsWindow(t *testing.T) {
	o := newObs()
	// Idle DIFS+4 slots, busy 1 ms, idle DIFS+6 slots.
	start := sim.Time(0)
	busyAt := start + tDIFS + 4*tSlot
	idleAt := busyAt + sim.Millisecond
	end := idleAt + tDIFS + 6*tSlot
	o.OnBusy(busyAt)
	o.OnIdle(idleAt)
	if got := o.IdleSlots(start, end); got != 10 {
		t.Fatalf("IdleSlots = %d, want 10 (each gap pays its own DIFS)", got)
	}
}

func TestIdleSlotsWindowStartsDuringBusy(t *testing.T) {
	o := newObs()
	o.OnBusy(0)
	o.OnIdle(sim.Millisecond)
	from := 500 * sim.Microsecond // mid-busy
	to := sim.Millisecond + tDIFS + 7*tSlot
	if got := o.IdleSlots(from, to); got != 7 {
		t.Fatalf("IdleSlots = %d, want 7", got)
	}
}

func TestIdleSlotsWindowEndsDuringBusy(t *testing.T) {
	o := newObs()
	o.OnBusy(tDIFS + 4*tSlot)
	o.OnIdle(10 * sim.Millisecond)
	if got := o.IdleSlots(0, tDIFS+4*tSlot+sim.Millisecond); got != 4 {
		t.Fatalf("IdleSlots = %d, want 4", got)
	}
}

func TestIdleSlotsEntirelyBusy(t *testing.T) {
	o := newObs()
	o.OnBusy(0)
	if got := o.IdleSlots(sim.Microsecond, sim.Millisecond); got != 0 {
		t.Fatalf("IdleSlots = %d, want 0 for busy window", got)
	}
}

func TestIdleSlotsZeroWindow(t *testing.T) {
	o := newObs()
	if got := o.IdleSlots(sim.Millisecond, sim.Millisecond); got != 0 {
		t.Fatalf("IdleSlots = %d, want 0 for empty window", got)
	}
}

func TestIdleSlotsInvertedWindowPanics(t *testing.T) {
	o := newObs()
	defer func() {
		if recover() == nil {
			t.Fatal("inverted window did not panic")
		}
	}()
	o.IdleSlots(2*sim.Millisecond, sim.Millisecond)
}

func TestObserverDeduplicatesTransitions(t *testing.T) {
	o := newObs()
	o.OnBusy(sim.Millisecond)
	o.OnBusy(2 * sim.Millisecond) // duplicate busy must be ignored
	o.OnIdle(3 * sim.Millisecond)
	o.OnIdle(4 * sim.Millisecond) // duplicate idle must be ignored
	if o.Busy() {
		t.Fatal("state should be idle after OnIdle")
	}
	// Idle [0,1ms): DIFS + floor(950/20) = 47; busy [1,3); idle [3, 3+DIFS+2slots).
	end := 3*sim.Millisecond + tDIFS + 2*tSlot
	want := 47 + 2
	if got := o.IdleSlots(0, end); got != want {
		t.Fatalf("IdleSlots = %d, want %d", got, want)
	}
}

func TestObserverPruneKeepsWindowAccuracy(t *testing.T) {
	o := NewIdleObserver(tSlot, tDIFS, 10*sim.Millisecond)
	// Fill far past the horizon with busy/idle pairs.
	for i := 0; i < 1000; i++ {
		base := sim.Time(i) * sim.Millisecond
		o.OnBusy(base + 500*sim.Microsecond)
		o.OnIdle(base + 600*sim.Microsecond)
	}
	// A recent window is still computed exactly: within [999.6 ms,
	// 999.6 ms + DIFS + 5 slots) the channel is idle.
	from := 999*sim.Millisecond + 600*sim.Microsecond
	to := from + tDIFS + 5*tSlot
	if got := o.IdleSlots(from, to); got != 5 {
		t.Fatalf("IdleSlots after pruning = %d, want 5", got)
	}
}

func TestObserverValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero slot did not panic")
		}
	}()
	NewIdleObserver(0, tDIFS, sim.Second)
}

func TestQuickIdleSlotsNonNegativeAndBounded(t *testing.T) {
	f := func(busyOffsets []uint16, winStart, winLen uint16) bool {
		o := newObs()
		at := sim.Time(0)
		busy := false
		for _, d := range busyOffsets {
			at += sim.Time(d%1000+1) * sim.Microsecond
			if busy {
				o.OnIdle(at)
			} else {
				o.OnBusy(at)
			}
			busy = !busy
		}
		from := sim.Time(winStart) * sim.Microsecond
		to := from + sim.Time(winLen)*sim.Microsecond
		got := o.IdleSlots(from, to)
		maxSlots := int((to - from) / tSlot)
		return got >= 0 && got <= maxSlots
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIdleSlotsMonotoneInWindow(t *testing.T) {
	// Extending the window never decreases the count.
	f := func(busyOffsets []uint16, winLen1, winLen2 uint16) bool {
		o := newObs()
		at := sim.Time(0)
		busy := false
		for _, d := range busyOffsets {
			at += sim.Time(d%500+1) * sim.Microsecond
			if busy {
				o.OnIdle(at)
			} else {
				o.OnBusy(at)
			}
			busy = !busy
		}
		a, b := sim.Time(winLen1)*sim.Microsecond, sim.Time(winLen2)*sim.Microsecond
		if a > b {
			a, b = b, a
		}
		return o.IdleSlots(0, a) <= o.IdleSlots(0, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
