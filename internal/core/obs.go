package core

import (
	"dcfguard/internal/obs"
)

// monitorObs holds the monitor's pre-resolved observability handles.
// The zero value is the disabled state: every hook below degrades to a
// nil-check no-op, and nothing here reads RNG or scheduler state
// (pass-through contract, package obs).
type monitorObs struct {
	bus          *obs.Bus
	packets      *obs.Counter
	deviations   *obs.Counter
	proven       *obs.Counter
	penaltySlots *obs.Counter
	windowSum    *obs.Gauge
	diff         *obs.Histogram
}

// diffBounds buckets the per-packet B_exp − B_act difference. The paper's
// diagnosis threshold works on sums of these over a W-packet window, so
// the interesting resolution is around zero and the first few tens of
// slots.
var diffBounds = []float64{-32, -8, 0, 8, 16, 32, 64}

// Instrument attaches the monitor to a metrics registry and trace bus
// (either may be nil). Handles resolve here, once, per the detlint
// obshot rule; metrics are keyed to the monitoring node's ID.
func (m *Monitor) Instrument(reg *obs.Registry, bus *obs.Bus) {
	m.obs = monitorObs{
		bus:          bus,
		packets:      reg.Counter("monitor", m.self, "packets"),
		deviations:   reg.Counter("monitor", m.self, "deviations"),
		proven:       reg.Counter("monitor", m.self, "proven"),
		penaltySlots: reg.Counter("monitor", m.self, "penalty_slots"),
		windowSum:    reg.Gauge("monitor", m.self, "window_sum"),
		diff:         reg.Histogram("monitor", m.self, "diff", diffBounds),
	}
}
