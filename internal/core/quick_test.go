package core

import (
	"testing"
	"testing/quick"

	"dcfguard/internal/frame"
	"dcfguard/internal/sim"
)

// TestQuickMonitorInvariants drives a monitor with arbitrary sender
// countdown behaviour and checks the structural invariants that must
// hold regardless of what the sender does:
//
//   - the diagnosis window never exceeds W entries;
//   - a "misbehaving" classification implies the windowed sum exceeded
//     the threshold in force at that moment;
//   - penalties are never negative and never exceed the cap;
//   - assignments are never negative.
func TestQuickMonitorInvariants(t *testing.T) {
	f := func(slots []uint16, seed uint64) bool {
		params := DefaultParams()
		h := newHarness(params)
		ok := true
		h.m.events.OnDeviation = func(_ frame.NodeID, dev float64, pen int, _ sim.Time) {
			if pen < 0 || (params.PenaltyCap > 0 && pen > params.PenaltyCap) {
				ok = false
			}
			if dev <= 0 {
				ok = false
			}
		}
		assigned := h.exchange(5)
		for _, s := range slots {
			if len(slots) > 40 {
				break
			}
			counted := int(s) % 80
			if assigned >= 0 {
				next := h.exchange(counted)
				if next < 0 {
					return false // no blocking configured; must respond
				}
				assigned = next
			}
			r := h.m.senders[1]
			if len(r.window) > params.Window {
				return false
			}
			if r.pendingPenalty < 0 {
				return false
			}
			if r.diagnosed {
				sum := 0.0
				for _, d := range r.window {
					sum += d
				}
				if sum <= h.m.CurrentThresh() {
					return false
				}
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
