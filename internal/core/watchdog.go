package core

import (
	"fmt"
	"sort"

	"dcfguard/internal/frame"
	"dcfguard/internal/mac"
	"dcfguard/internal/medium"
	"dcfguard/internal/sim"
)

// Watchdog is the third-party observer §4.4 calls for to detect
// sender–receiver collusion. It is a passive radio (a medium.Listener
// that never transmits) that overhears the exchanges of nearby pairs
// and re-runs the receiver's own arithmetic from outside:
//
//   - it reads the assignments the receiver advertises in CTS/ACK
//     frames and counts idle slots on its own carrier sense, giving it
//     an independent per-packet view of what the pair actually waited
//     (B_act) and what the receiver demanded (the assignment);
//   - a colluding pair is one that *persistently* both waits almost
//     nothing and is asked to wait almost nothing: mean observed B_act
//     and mean assignment both below a floor (CWmin/8) over the last
//     4·W packets. A deviation-based test cannot work here — a
//     colluding receiver keeps assignments tiny, so the sender's
//     "deviations" from them are tiny too. The long window and low
//     floor keep the false-positive probability of honest uniform
//     [0, CWmin] assignments negligible (≈ 5.6σ below the mean);
//   - the two halves separate the cases: an honest receiver facing a
//     cheating sender grows its assignments through penalties (mean
//     assignment high ⇒ sender misbehavior, not collusion), and an
//     honest pair's mean B_act tracks the CWmin/2 expectation of random
//     assignments.
//
// The watchdog also counts waived penalties (a deviation not followed
// by an at-least-half-as-large assignment) as supplementary evidence
// exposed via PairStats.
type Watchdog struct {
	params    Params
	macParams mac.Params
	bitRate   int64
	observer  *IdleObserver

	pairs map[pairKey]*pairState

	// OnCollusion, if non-nil, fires when a pair is first flagged.
	OnCollusion func(sender, receiver frame.NodeID, now sim.Time)
}

type pairKey struct {
	sender, receiver frame.NodeID
}

type pairState struct {
	// assigned is the last assignment overheard (receiver → sender);
	// -1 before the first one.
	assigned int
	// mark is the end of the last overheard ACK for the pair.
	mark    sim.Time
	hasMark bool

	// lastBAct is the idle-slot count measured at the pair's latest
	// RTS, awaiting the exchange's completing ACK.
	lastBAct int
	haveBAct bool
	// bActs and assigns are rolling windows (length ≤ W) of completed
	// exchanges' observed backoffs and advertised assignments.
	bActs   []int
	assigns []int

	deviated int // packets with detected deviation
	// unpenalised counts deviations the receiver did not follow with a
	// sufficiently large assignment.
	unpenalised int
	// pendingDeviation is the deviation awaiting the next assignment.
	pendingDeviation float64
	awaitingPenalty  bool

	colluding bool
	packets   int
}

var _ medium.Listener = (*Watchdog)(nil)

// NewWatchdog builds a passive observer with the given protocol
// parameters (it needs α, W, the MAC timing and the channel bit rate to
// reproduce the receiver's arithmetic).
func NewWatchdog(params Params, macParams mac.Params, bitRate int64) *Watchdog {
	if err := params.Validate(); err != nil {
		panic(fmt.Sprintf("core: watchdog: %v", err))
	}
	if err := macParams.Validate(); err != nil {
		panic(fmt.Sprintf("core: watchdog: %v", err))
	}
	if bitRate <= 0 {
		panic(fmt.Sprintf("core: watchdog: bit rate %d", bitRate))
	}
	return &Watchdog{
		params:    params,
		macParams: macParams,
		bitRate:   bitRate,
		observer:  NewIdleObserver(macParams.SlotTime, macParams.DIFS(), params.HistoryHorizon),
		pairs:     make(map[pairKey]*pairState),
	}
}

func (w *Watchdog) pair(s, r frame.NodeID) *pairState {
	k := pairKey{sender: s, receiver: r}
	p, ok := w.pairs[k]
	if !ok {
		p = &pairState{assigned: -1}
		w.pairs[k] = p
	}
	return p
}

// CarrierBusy implements medium.Listener.
func (w *Watchdog) CarrierBusy(now sim.Time) { w.observer.OnBusy(now) }

// CarrierIdle implements medium.Listener.
func (w *Watchdog) CarrierIdle(now sim.Time) { w.observer.OnIdle(now) }

// FrameReceived implements medium.Listener: the watchdog overhears
// everything decodable at its position.
func (w *Watchdog) FrameReceived(f frame.Frame, now sim.Time) {
	switch f.Type {
	case frame.RTS:
		w.onRTS(f, now)
	case frame.CTS, frame.Ack:
		w.onAssignment(f, now)
	case frame.Data:
	}
}

func (w *Watchdog) onRTS(rts frame.Frame, end sim.Time) {
	p := w.pair(rts.Src, rts.Dst)
	if p.assigned < 0 || !p.hasMark {
		return
	}
	start := end - rts.Airtime(w.bitRate)
	bAct := w.observer.IdleSlots(p.mark, start)
	bExp := ExpectedBackoff(p.assigned, rts.Src, int(rts.Attempt), w.macParams, true)

	p.packets++
	p.lastBAct = bAct
	p.haveBAct = true
	if float64(bAct) < w.params.Alpha*float64(bExp) {
		p.deviated++
		p.pendingDeviation = w.params.Alpha*float64(bExp) - float64(bAct)
		p.awaitingPenalty = true
	}
}

// onAssignment audits an overheard CTS or ACK carrying an assignment.
func (w *Watchdog) onAssignment(f frame.Frame, now sim.Time) {
	if f.AssignedBackoff < 0 {
		return
	}
	// f flows receiver → sender.
	p := w.pair(f.Dst, f.Src)
	assigned := int(f.AssignedBackoff)

	if p.awaitingPenalty {
		// An honest receiver folds (at least) the deviation into the
		// next assignment on top of a non-negative base. Allowing for
		// the unknown random base, require assignment ≥ half the
		// deviation; a colluding receiver that waives penalties fails
		// this repeatedly while the sender keeps deviating.
		if float64(assigned) < 0.5*p.pendingDeviation {
			p.unpenalised++
		}
		p.awaitingPenalty = false
	}
	p.assigned = assigned

	if f.Type == frame.Ack {
		p.mark = now
		p.hasMark = true
		if p.haveBAct {
			p.bActs = appendBounded(p.bActs, p.lastBAct, w.collusionWindow())
			p.assigns = appendBounded(p.assigns, assigned, w.collusionWindow())
			p.haveBAct = false
		}
		w.judge(f.Dst, f.Src, p, now)
	}
}

// collusionWindow is the number of completed exchanges the collusion
// verdict integrates over: 4·W trades detection delay for a negligible
// false-positive rate against honest random assignments.
func (w *Watchdog) collusionWindow() int { return 4 * w.params.Window }

func appendBounded(xs []int, v, bound int) []int {
	xs = append(xs, v)
	if len(xs) > bound {
		xs = xs[1:]
	}
	return xs
}

// judge updates the pair's collusion verdict: over the last 4·W
// completed exchanges, both the observed backoffs and the advertised
// assignments sit below the CWmin/8 floor — the pair is hogging the
// channel with the receiver's blessing.
func (w *Watchdog) judge(sender, receiver frame.NodeID, p *pairState, now sim.Time) {
	if p.colluding || len(p.bActs) < w.collusionWindow() {
		return
	}
	floor := float64(w.macParams.CWMin) / 8
	if meanInts(p.bActs) < floor && meanInts(p.assigns) < floor {
		p.colluding = true
		if w.OnCollusion != nil {
			w.OnCollusion(sender, receiver, now)
		}
	}
}

func meanInts(xs []int) float64 {
	sum := 0
	for _, x := range xs {
		sum += x
	}
	return float64(sum) / float64(len(xs))
}

// Colluding reports whether the pair has been flagged.
func (w *Watchdog) Colluding(sender, receiver frame.NodeID) bool {
	p, ok := w.pairs[pairKey{sender: sender, receiver: receiver}]
	return ok && p.colluding
}

// PairStats returns (packets observed, sender deviations, unpenalised
// deviations) for a pair.
func (w *Watchdog) PairStats(sender, receiver frame.NodeID) (packets, deviations, unpenalised int) {
	p, ok := w.pairs[pairKey{sender: sender, receiver: receiver}]
	if !ok {
		return 0, 0, 0
	}
	return p.packets, p.deviated, p.unpenalised
}

// Pairs returns the observed (sender, receiver) pairs, ordered.
func (w *Watchdog) Pairs() [][2]frame.NodeID {
	out := make([][2]frame.NodeID, 0, len(w.pairs))
	for k := range w.pairs {
		out = append(out, [2]frame.NodeID{k.sender, k.receiver})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}
