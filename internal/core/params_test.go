package core

import (
	"testing"

	"dcfguard/internal/mac"
	"dcfguard/internal/rng"
	"dcfguard/internal/sim"
)

func TestParamsValidateRejectsBadValues(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	cases := map[string]func(*Params){
		"alpha zero":       func(p *Params) { p.Alpha = 0 },
		"alpha above one":  func(p *Params) { p.Alpha = 1.5 },
		"window zero":      func(p *Params) { p.Window = 0 },
		"negative thresh":  func(p *Params) { p.Thresh = -1 },
		"negative factor":  func(p *Params) { p.PenaltyFactor = -0.1 },
		"negative cap":     func(p *Params) { p.PenaltyCap = -1 },
		"drop prob > 1":    func(p *Params) { p.VerifyDropProb = 1.5 },
		"drop prob < 0":    func(p *Params) { p.VerifyDropProb = -0.1 },
		"zero horizon":     func(p *Params) { p.HistoryHorizon = 0 },
		"bad assign mode":  func(p *Params) { p.AssignMode = 0 },
		"assign mode high": func(p *Params) { p.AssignMode = AssignMode(9) },
	}
	for name, mutate := range cases {
		p := DefaultParams()
		mutate(&p)
		if p.Validate() == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestAssignModeString(t *testing.T) {
	cases := map[AssignMode]string{
		AssignRandom:     "random",
		AssignVerifiable: "verifiable",
		AssignGreedy:     "greedy",
	}
	for mode, want := range cases {
		if got := mode.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", mode, got, want)
		}
	}
	if AssignMode(9).String() == "" {
		t.Error("unknown mode must render")
	}
}

func TestNewMonitorValidation(t *testing.T) {
	bad := DefaultParams()
	bad.Window = 0
	func() {
		defer func() {
			if recover() == nil {
				t.Error("invalid core params did not panic")
			}
		}()
		NewMonitor(1, bad, mac.DefaultParams(), rng.New(1), Events{})
	}()
	badMAC := mac.DefaultParams()
	badMAC.CWMin = 0
	defer func() {
		if recover() == nil {
			t.Error("invalid mac params did not panic")
		}
	}()
	NewMonitor(1, DefaultParams(), badMAC, rng.New(1), Events{})
}

func TestNewAssignedPolicyValidation(t *testing.T) {
	bad := mac.DefaultParams()
	bad.SlotTime = 0
	defer func() {
		if recover() == nil {
			t.Error("invalid mac params did not panic")
		}
	}()
	NewAssignedPolicy(1, bad, rng.New(1))
}

func TestNewWatchdogValidation(t *testing.T) {
	bad := DefaultParams()
	bad.Alpha = 0
	func() {
		defer func() {
			if recover() == nil {
				t.Error("invalid params did not panic")
			}
		}()
		NewWatchdog(bad, mac.DefaultParams(), 2_000_000)
	}()
	badMAC := mac.DefaultParams()
	badMAC.SIFS = 0
	defer func() {
		if recover() == nil {
			t.Error("invalid mac params did not panic")
		}
	}()
	NewWatchdog(DefaultParams(), badMAC, 2_000_000)
}

func TestSenderStatsUnknownSender(t *testing.T) {
	m := NewMonitor(1, DefaultParams(), mac.DefaultParams(), rng.New(1), Events{})
	if p, d, pen := m.SenderStats(42); p != 0 || d != 0 || pen != 0 {
		t.Fatal("unknown sender has stats")
	}
	if m.Diagnosed(42) {
		t.Fatal("unknown sender diagnosed")
	}
	_ = sim.Time(0)
}
