package core

import (
	"testing"

	"dcfguard/internal/frame"
	"dcfguard/internal/mac"
	"dcfguard/internal/medium"
	"dcfguard/internal/misbehave"
	"dcfguard/internal/phys"
	"dcfguard/internal/rng"
	"dcfguard/internal/sim"
)

// collusionWorld is the end-to-end §4.4 collusion scenario: an honest
// pair (sender 2 → receiver 0) and a colluding pair (sender 3 at PM=100
// → receiver 1 that assigns zero and waives penalties), plus a passive
// watchdog (node 4) overhearing both.
type collusionWorld struct {
	sched *sim.Scheduler
	dog   *Watchdog
}

func buildCollusionWorld(t *testing.T) *collusionWorld {
	t.Helper()
	var sched sim.Scheduler
	model := phys.DefaultShadowing()
	model.SigmaDB = 0
	radio := phys.CalibratedRadio(model, 24.5, 250, 0.5, 550, 0.5, 2_000_000)
	med := medium.New(&sched, medium.Config{Model: model}, rng.New(9))
	mp := mac.DefaultParams()

	honestParams := DefaultParams()
	colludeParams := DefaultParams()
	colludeParams.AssignMode = AssignGreedy
	colludeParams.WaivePenalties = true

	mon0 := NewMonitor(0, honestParams, mp, rng.New(20), Events{})
	mon1 := NewMonitor(1, colludeParams, mp, rng.New(21), Events{})

	// Receivers.
	r0 := mac.NewNode(0, mp, &sched, med, mac.NewStandardPolicy(rng.New(30)), mon0, mac.Callbacks{})
	med.Attach(0, phys.Point{X: 0, Y: 0}, radio, r0)
	r1 := mac.NewNode(1, mp, &sched, med, mac.NewStandardPolicy(rng.New(31)), mon1, mac.Callbacks{})
	med.Attach(1, phys.Point{X: 120, Y: 0}, radio, r1)

	// Senders: 2 honest to 0; 3 misbehaving (PM=100) to colluding 1.
	mkSender := func(id frame.NodeID, dst frame.NodeID, pol mac.BackoffPolicy, pos phys.Point) {
		var n *mac.Node
		cb := mac.Callbacks{OnQueueSpace: func(sim.Time) { n.Enqueue(dst, 512) }}
		n = mac.NewNode(id, mp, &sched, med, pol, nil, cb)
		med.Attach(id, pos, radio, n)
		for k := 0; k < 4; k++ {
			n.Enqueue(dst, 512)
		}
	}
	mkSender(2, 0, NewAssignedPolicy(2, mp, rng.New(32)), phys.Point{X: 0, Y: 100})
	mkSender(3, 1, misbehave.NewPartial(NewAssignedPolicy(3, mp, rng.New(33)), 100),
		phys.Point{X: 120, Y: 100})

	// Passive watchdog at the centre of the cell.
	dog := NewWatchdog(DefaultParams(), mp, 2_000_000)
	med.Attach(4, phys.Point{X: 60, Y: 50}, radio, dog)

	return &collusionWorld{sched: &sched, dog: dog}
}
