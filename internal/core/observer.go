package core

import (
	"fmt"

	"dcfguard/internal/sim"
)

// IdleObserver reconstructs, from the receiver's own carrier-sense
// transitions, the number of backoff slots a sender could have counted
// in a time window — the receiver-side measurement B_act of §4.1.
//
// The counting rule mirrors the sender's countdown: within each maximal
// idle interval, the first DIFS is consumed before slots start counting,
// and only whole slots count.
type IdleObserver struct {
	slot    sim.Time
	difs    sim.Time
	horizon sim.Time

	busy        bool
	transitions []transition // ordered by time
}

type transition struct {
	at   sim.Time
	busy bool
}

// NewIdleObserver returns an observer with the given slot time, DIFS and
// retention horizon. The channel is assumed idle at time zero.
func NewIdleObserver(slot, difs, horizon sim.Time) *IdleObserver {
	if slot <= 0 || difs < 0 || horizon <= 0 {
		panic(fmt.Sprintf("core: IdleObserver(slot=%v, difs=%v, horizon=%v)", slot, difs, horizon))
	}
	return &IdleObserver{slot: slot, difs: difs, horizon: horizon}
}

// OnBusy records a carrier busy transition at now.
func (o *IdleObserver) OnBusy(now sim.Time) { o.record(now, true) }

// OnIdle records a carrier idle transition at now.
func (o *IdleObserver) OnIdle(now sim.Time) { o.record(now, false) }

func (o *IdleObserver) record(now sim.Time, busy bool) {
	if busy == o.busy {
		return
	}
	o.busy = busy
	o.transitions = append(o.transitions, transition{at: now, busy: busy})
	o.prune(now)
}

// prune drops transitions that ended before the retention horizon,
// always keeping at least one so the state at any retained instant is
// reconstructible.
func (o *IdleObserver) prune(now sim.Time) {
	cutoff := now - o.horizon
	i := 0
	for i < len(o.transitions)-1 && o.transitions[i+1].at <= cutoff {
		i++
	}
	if i > 0 {
		o.transitions = append(o.transitions[:0], o.transitions[i:]...)
	}
}

// Busy reports the channel state as last recorded.
func (o *IdleObserver) Busy() bool { return o.busy }

// IdleSlots returns the number of backoff slots available in [from, to):
// for every maximal idle interval overlapping the window, the interval's
// first DIFS is discarded (clipped to the window) and the remainder is
// divided into whole slots.
//
// The DIFS of an idle interval that began before the window still counts
// against the window only for the portion inside it: the sender's DIFS
// wait after its ACK falls exactly at the window start, which is why the
// window boundary is treated as the start of a fresh idle interval.
func (o *IdleObserver) IdleSlots(from, to sim.Time) int {
	if to < from {
		panic(fmt.Sprintf("core: IdleSlots window [%v, %v) inverted", from, to))
	}
	slots := 0
	// Walk transitions, tracking the state before the window.
	busy := false
	cur := sim.Time(0)
	idx := 0
	for idx < len(o.transitions) && o.transitions[idx].at <= from {
		busy = o.transitions[idx].busy
		cur = o.transitions[idx].at
		idx++
	}
	_ = cur
	segStart := from
	for segStart < to {
		var segEnd sim.Time
		var nextBusy bool
		if idx < len(o.transitions) && o.transitions[idx].at < to {
			segEnd = o.transitions[idx].at
			nextBusy = o.transitions[idx].busy
			idx++
		} else {
			segEnd = to
			nextBusy = busy
		}
		if !busy {
			span := segEnd - segStart - o.difs
			if span > 0 {
				slots += int(span / o.slot)
			}
		}
		busy = nextBusy
		segStart = segEnd
	}
	return slots
}
