// Package core implements the paper's contribution: receiver-assigned
// backoff for IEEE 802.11 DCF, with deviation detection (§4.1), the
// correction scheme (§4.2), the diagnosis scheme (§4.3), and the §4.4
// extensions (attempt-number verification via intentional RTS drops, and
// receiver-misbehavior detection via the public assignment function g).
//
// The receiver side is Monitor, a mac.ReceiverHook. The sender side is
// AssignedPolicy, a mac.BackoffPolicy. Both are pure protocol logic:
// they plug into the unmodified DCF state machine in internal/mac.
package core

import (
	"fmt"

	"dcfguard/internal/frame"
	"dcfguard/internal/mac"
)

// F is the paper's deterministic retransmission function:
//
//	f(backoff, nodeId, attempt) = (aX + c) mod (CWmin + 1)
//	with a = 5, c = 2·attempt + 1, X = (backoff + nodeId) mod (CWmin+1)
//
// It returns a pseudo-uniform integer in [0, CWmin]. Dividing by CWmin
// maps it to [0, 1]; RetrySlots applies that fraction to the attempt's
// contention window. Both sender and receiver evaluate F, which is what
// lets the receiver reconstruct the sender's retry backoffs.
func F(backoff int, nodeID frame.NodeID, attempt, cwMin int) int {
	if attempt < 2 {
		panic(fmt.Sprintf("core: F for attempt %d < 2", attempt))
	}
	if backoff < 0 {
		backoff = 0
	}
	m := cwMin + 1
	x := (backoff + int(nodeID)) % m
	a := 5
	c := 2*attempt + 1
	return ((a*x+c)%m + m) % m
}

// RetrySlots returns the backoff (in slots) the protocol prescribes for
// the given retransmission attempt: F scaled from [0, CWmin] onto the
// attempt's contention window, New Backoff = f(...)·CW.
func RetrySlots(backoff int, nodeID frame.NodeID, attempt int, params mac.Params) int {
	fv := F(backoff, nodeID, attempt, params.CWMin)
	cw := params.CW(attempt)
	return fv * cw / params.CWMin
}

// ExpectedBackoff reconstructs B_exp, the total number of slots the
// sender was expected to count for a packet that arrived on the given
// attempt:
//
//	B_exp = backoff + Σ_{i=2}^{attempt} f(backoff, nodeId, i)·CW_i
//
// For a retransmission that follows a *delivered* packet (ACK lost at
// the sender), pass includeBase=false: the base backoff was counted
// before the receiver's observation window opened.
func ExpectedBackoff(backoff int, nodeID frame.NodeID, attempt int, params mac.Params, includeBase bool) int {
	total := 0
	if includeBase {
		total = backoff
	}
	for i := 2; i <= attempt; i++ {
		total += RetrySlots(backoff, nodeID, i, params)
	}
	return total
}

// G is the public assignment function of the §4.4 extension: when
// verifiable assignments are enabled, the receiver must derive the base
// (pre-penalty) backoff it assigns from G, and the sender checks the
// advertised value against it. Like F it is an LCG over [0, CWmin],
// keyed so that distinct (receiver, sender, exchange) triples give
// well-spread values.
func G(receiver, sender frame.NodeID, seq uint32, cwMin int) int {
	m := cwMin + 1
	x := (int(receiver)*7 + int(sender)*13 + int(seq%4096)*31) % m
	v := (5*x + 3) % m
	return ((v % m) + m) % m
}
