package core

import (
	"testing"

	"dcfguard/internal/sim"
)

// crashRestart crashes the harness monitor at its current time and
// restarts it after downtime, advancing the harness clock past the gap.
func (h *monitorHarness) crashRestart(downtime sim.Time) {
	h.m.Crash(h.now)
	h.now += downtime
	h.m.Restart(h.now)
	h.now += sim.Millisecond
}

// TestMonitorChurnResync is the fault-injection re-synchronisation
// contract: a receiver that crashes and loses its per-sender state
// (B_exp, the diagnosis window, the observation mark) must not diagnose
// a correct sender when traffic resumes — whatever backoff the sender
// happens to arrive with, because the sender is still counting an
// assignment the receiver no longer remembers. Detection must re-arm
// only after a full post-restart assignment cycle, and must still catch
// a sender that misbehaves against the new assignments.
func TestMonitorChurnResync(t *testing.T) {
	cases := []struct {
		name string
		// preCrash honest exchanges before the crash.
		preCrash int
		// firstSlots is what the sender counts on its first post-restart
		// exchange (a stale assignment, or 0 — the most aggressive-looking
		// arrival possible).
		firstSlots func(staleAssigned int) int
		// resumed chooses what the sender counts once re-assigned: the
		// new assignment (honest) or half of it (misbehaving).
		resumed func(assigned int) int
		// wantDeviations/wantMisclassified after 10 resumed exchanges.
		wantDeviations bool
		wantMisbehaved bool
	}{
		{
			name:       "honest sender counting stale assignment",
			preCrash:   5,
			firstSlots: func(stale int) int { return stale },
			resumed:    func(a int) int { return a },
		},
		{
			name:       "honest sender arriving with zero slots",
			preCrash:   5,
			firstSlots: func(int) int { return 0 },
			resumed:    func(a int) int { return a },
		},
		{
			name:       "no traffic before crash",
			preCrash:   0,
			firstSlots: func(int) int { return 3 },
			resumed:    func(a int) int { return a },
		},
		{
			name:           "misbehaver still caught after restart",
			preCrash:       5,
			firstSlots:     func(stale int) int { return stale },
			resumed:        func(a int) int { return a / 2 },
			wantDeviations: true,
			wantMisbehaved: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := newHarness(DefaultParams())
			assigned := h.exchange(5)
			for i := 1; i < tc.preCrash; i++ {
				assigned = h.exchange(assigned)
			}

			h.crashRestart(100 * sim.Millisecond)
			preDeviations := len(h.deviations)
			preClassified := len(h.classified)

			// First post-restart exchange: the wiped receiver has no
			// assignment on record for this sender, so whatever it counts
			// must pass unjudged and produce a fresh assignment.
			newAssigned := h.exchange(tc.firstSlots(assigned))
			if newAssigned < 0 {
				t.Fatal("restarted monitor refused the first exchange")
			}
			if len(h.deviations) != preDeviations {
				t.Fatalf("first post-restart exchange flagged a deviation (sender was counting state the receiver lost)")
			}
			if len(h.classified) != preClassified {
				t.Fatalf("first post-restart exchange was classified with no window on record")
			}

			// Resume traffic against the new assignments.
			for i := 0; i < 10; i++ {
				newAssigned = h.exchange(tc.resumed(newAssigned))
			}
			gotDeviations := len(h.deviations) > preDeviations
			if gotDeviations != tc.wantDeviations {
				t.Fatalf("deviations after resync = %v, want %v (%d flagged)",
					gotDeviations, tc.wantDeviations, len(h.deviations)-preDeviations)
			}
			gotMis := false
			for _, mis := range h.classified[preClassified:] {
				gotMis = gotMis || mis
			}
			if gotMis != tc.wantMisbehaved {
				t.Fatalf("misbehavior classification after resync = %v, want %v", gotMis, tc.wantMisbehaved)
			}
		})
	}
}

// TestMonitorDownRefusesService: while crashed, the monitor answers no
// frame and completes no exchange; Restarts counts completed cycles.
func TestMonitorDownRefusesService(t *testing.T) {
	h := newHarness(DefaultParams())
	if h.exchange(5) < 0 {
		t.Fatal("healthy monitor refused an exchange")
	}
	h.m.Crash(h.now)
	if !h.m.Down() {
		t.Fatal("Down() = false after Crash")
	}
	if got := h.exchange(3); got != -1 {
		t.Fatalf("crashed monitor responded with assignment %d", got)
	}
	if h.m.Restarts() != 0 {
		t.Fatalf("Restarts() = %d before any restart", h.m.Restarts())
	}
	h.m.Restart(h.now)
	if h.m.Down() {
		t.Fatal("Down() = true after Restart")
	}
	if h.m.Restarts() != 1 {
		t.Fatalf("Restarts() = %d after one cycle, want 1", h.m.Restarts())
	}
	// Restart without a preceding crash is a no-op on the counter.
	h.m.Restart(h.now)
	if h.m.Restarts() != 1 {
		t.Fatalf("Restarts() = %d after redundant restart, want 1", h.m.Restarts())
	}
	if h.exchange(4) < 0 {
		t.Fatal("restarted monitor refused an exchange")
	}
}
