package core

import (
	"testing"

	"dcfguard/internal/frame"
	"dcfguard/internal/mac"
	"dcfguard/internal/sim"
)

// watchdogHarness feeds a Watchdog a synthetic overheard exchange
// timeline for the pair sender 1 → receiver 9.
type watchdogHarness struct {
	w   *Watchdog
	mp  mac.Params
	now sim.Time
	seq uint32

	collusions int
}

func newWatchdogHarness(params Params) *watchdogHarness {
	h := &watchdogHarness{mp: mac.DefaultParams(), now: sim.Millisecond}
	h.w = NewWatchdog(params, h.mp, 2_000_000)
	h.w.OnCollusion = func(frame.NodeID, frame.NodeID, sim.Time) { h.collusions++ }
	return h
}

// exchange simulates overhearing one full exchange: the sender counts
// `slots` before its RTS, the receiver's CTS/ACK advertise `assigned`.
func (h *watchdogHarness) exchange(slots, assigned int) {
	h.seq++
	start := h.now + h.mp.DIFS() + sim.Time(slots)*h.mp.SlotTime
	rtsEnd := start + 276*sim.Microsecond
	h.w.CarrierBusy(start)
	h.w.FrameReceived(frame.Frame{Type: frame.RTS, Src: 1, Dst: 9, Seq: h.seq, Attempt: 1}, rtsEnd)
	h.w.CarrierIdle(rtsEnd)

	ctsEnd := rtsEnd + 266*sim.Microsecond
	h.w.CarrierBusy(rtsEnd + 10*sim.Microsecond)
	h.w.FrameReceived(frame.Frame{Type: frame.CTS, Src: 9, Dst: 1, Seq: h.seq,
		AssignedBackoff: int32(assigned)}, ctsEnd)

	ackEnd := ctsEnd + 3*sim.Millisecond
	h.w.FrameReceived(frame.Frame{Type: frame.Ack, Src: 9, Dst: 1, Seq: h.seq,
		AssignedBackoff: int32(assigned)}, ackEnd)
	h.w.CarrierIdle(ackEnd)
	h.now = ackEnd
}

func TestWatchdogHonestPairClean(t *testing.T) {
	h := newWatchdogHarness(DefaultParams())
	assigned := 10
	h.exchange(5, assigned) // first: establishes the assignment
	for i := 0; i < 15; i++ {
		h.exchange(assigned, assigned) // sender counts exactly as told
	}
	if h.w.Colluding(1, 9) {
		t.Fatal("honest pair flagged as colluding")
	}
	packets, deviations, unpenalised := h.w.PairStats(1, 9)
	if packets == 0 {
		t.Fatal("watchdog observed no packets")
	}
	if deviations != 0 || unpenalised != 0 {
		t.Fatalf("honest pair stats: %d deviations, %d unpenalised", deviations, unpenalised)
	}
}

func TestWatchdogDetectsCollusion(t *testing.T) {
	// Sender never backs off; colluding receiver keeps assigning a tiny
	// value with no penalty.
	h := newWatchdogHarness(DefaultParams())
	h.exchange(0, 8)
	for i := 0; i < 30; i++ { // past the 4·W collusion window
		h.exchange(0, 1) // deviating sender, waived penalties
	}
	if !h.w.Colluding(1, 9) {
		p, d, u := h.w.PairStats(1, 9)
		t.Fatalf("collusion not detected (packets=%d deviations=%d unpenalised=%d)", p, d, u)
	}
	if h.collusions != 1 {
		t.Fatalf("OnCollusion fired %d times, want 1", h.collusions)
	}
}

func TestWatchdogHonestReceiverNotFlagged(t *testing.T) {
	// Sender deviates, but the receiver penalises properly: assignments
	// grow with the deviation. Sender misbehavior alone is not
	// collusion.
	h := newWatchdogHarness(DefaultParams())
	assigned := 10
	h.exchange(5, assigned)
	for i := 0; i < 15; i++ {
		// Receiver assigns deviation-sized penalties (honest behavior).
		next := assigned + 15
		h.exchange(0, next)
		assigned = next
	}
	if h.w.Colluding(1, 9) {
		t.Fatal("honest receiver flagged as colluding with its misbehaving sender")
	}
	_, deviations, unpenalised := h.w.PairStats(1, 9)
	if deviations == 0 {
		t.Fatal("sender deviations not observed")
	}
	if unpenalised > 2 {
		t.Fatalf("honest receiver accumulated %d unpenalised marks", unpenalised)
	}
}

func TestWatchdogPairsListing(t *testing.T) {
	h := newWatchdogHarness(DefaultParams())
	h.exchange(5, 10)
	h.w.FrameReceived(frame.Frame{Type: frame.RTS, Src: 4, Dst: 2, Seq: 1, Attempt: 1}, h.now)
	pairs := h.w.Pairs()
	if len(pairs) != 2 || pairs[0] != [2]frame.NodeID{1, 9} || pairs[1] != [2]frame.NodeID{4, 2} {
		t.Fatalf("pairs = %v", pairs)
	}
}

func TestWatchdogUnknownPairStats(t *testing.T) {
	h := newWatchdogHarness(DefaultParams())
	if h.w.Colluding(7, 8) {
		t.Fatal("unknown pair reported colluding")
	}
	if p, d, u := h.w.PairStats(7, 8); p != 0 || d != 0 || u != 0 {
		t.Fatal("unknown pair has stats")
	}
}

func TestWatchdogValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero bit rate did not panic")
		}
	}()
	NewWatchdog(DefaultParams(), mac.DefaultParams(), 0)
}

// TestWatchdogEndToEndCollusion runs the watchdog against the real
// stack: a colluding receiver (greedy assignments, waived penalties)
// serving a PM=100 sender, with an honest pair alongside, observed by a
// passive watchdog node.
func TestWatchdogEndToEndCollusion(t *testing.T) {
	// Reuse the full-stack fixture machinery from policy_test via a
	// bespoke build: this test constructs its own small world.
	h := buildCollusionWorld(t)
	h.sched.Run(5 * sim.Second)

	if !h.dog.Colluding(3, 1) {
		p, d, u := h.dog.PairStats(3, 1)
		t.Fatalf("colluding pair 3→1 not flagged (packets=%d dev=%d unpen=%d)", p, d, u)
	}
	if h.dog.Colluding(2, 0) {
		t.Fatal("honest pair 2→0 flagged")
	}
}
