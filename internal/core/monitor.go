package core

import (
	"fmt"

	"dcfguard/internal/frame"
	"dcfguard/internal/mac"
	"dcfguard/internal/obs"
	"dcfguard/internal/rng"
	"dcfguard/internal/sim"
)

// Events are optional observation callbacks for metrics. Nil fields are
// skipped.
type Events struct {
	// OnClassified fires once per packet when the diagnosis scheme
	// evaluates it: misbehaving is the scheme's verdict for the packet,
	// diff the B_exp − B_act stored in the window.
	OnClassified func(sender frame.NodeID, misbehaving bool, diff float64, now sim.Time)
	// OnDeviation fires when equation (1) flags a transmission as
	// deviating; penalty is the slots added to the next assignment.
	OnDeviation func(sender frame.NodeID, deviation float64, penalty int, now sim.Time)
	// OnProvenMisbehavior fires when attempt-number verification
	// catches a sender red-handed (a retransmission that did not
	// increment the attempt field).
	OnProvenMisbehavior func(sender frame.NodeID, now sim.Time)
}

// Monitor is the paper's receiver: it assigns backoff values to senders,
// measures B_act between exchanges, detects deviations, applies the
// correction penalty, and runs the diagnosis window. It implements
// mac.ReceiverHook.
type Monitor struct {
	self      frame.NodeID
	params    Params
	macParams mac.Params
	src       *rng.Source
	observer  *IdleObserver
	events    Events
	adaptive  *AdaptiveThresh // nil unless Params.AdaptiveThresh

	senders map[frame.NodeID]*senderRecord

	// down marks a crashed node (fault injection): while set, the
	// monitor refuses every exchange, exactly like a powered-off
	// receiver. restarts counts completed crash/restart cycles.
	down     bool
	restarts int

	// obs holds the pre-resolved observability handles (see obs.go);
	// the zero value means instrumentation is off.
	obs monitorObs
}

// senderRecord is the per-sender monitoring state.
type senderRecord struct {
	// current is the backoff the sender should be counting for its next
	// new packet (b_n); -1 before the first completed exchange.
	current int
	// prev is the value of current before the last rotation, needed to
	// check retransmissions that follow a lost ACK.
	prev int
	// next is the assignment advertised in the ongoing exchange's
	// CTS/ACK (b_{n+1}); -1 when not yet decided.
	next int
	// decidedSeq is the exchange sequence next was decided for.
	decidedSeq uint32
	// lastAckedSeq is the last sequence this receiver ACKed.
	lastAckedSeq uint32
	ackedOnce    bool
	// mark is the end of the last ACK sent to this sender: the start of
	// the B_act observation window.
	mark    sim.Time
	hasMark bool
	// window holds the last W (B_exp − B_act) differences; windowSeqs
	// the packet each entry belongs to (retries replace, not append).
	window     []float64
	windowSeqs []uint32
	// diagnosed is the current verdict of the diagnosis scheme.
	diagnosed bool
	// provenLiar is set when attempt verification caught this sender.
	provenLiar bool
	// verification state: when a drop is outstanding, the RTS we
	// dropped (to check the retry increments the attempt field).
	verifyPending bool
	verifySeq     uint32
	verifyAttempt uint8

	// pendingPenalty accumulates correction penalties not yet folded
	// into an assignment.
	pendingPenalty int

	penaltyTotal   int
	deviationCount int
	packetCount    int

	// Flight-recorder lineage (DESIGN.md §14): the causal identities of
	// the last "assign" and "window" trace records emitted for this
	// sender. Minted only inside Enabled branches, so they stay zero —
	// and cost nothing — when tracing is off.
	assignRef obs.Ref
	windowRef obs.Ref
}

// Flight-recorder record kinds, the low byte of a causal-reference key.
// Keys are content-derived — (monitor, sender, kind) — never scheduler
// or shard artifacts, so serial and sharded runs of one seed mint
// identical references.
const (
	refKindAssign uint8 = iota + 1
	refKindDeviation
	refKindWindow
	refKindDiagnosis
	refKindProven
	refKindAckMark
)

// refKey packs (node, peer, kind) into a reference key. Node IDs are
// well below 2²⁸ in any topology this simulator runs, so the fields
// cannot collide.
func refKey(node, peer frame.NodeID, kind uint8) uint64 {
	return uint64(uint32(node+1))<<36 | uint64(uint32(peer+1))<<8 | uint64(kind)
}

var _ mac.ReceiverHook = (*Monitor)(nil)

// NewMonitor builds the receiver-side engine for the node self.
func NewMonitor(self frame.NodeID, params Params, macParams mac.Params, src *rng.Source, events Events) *Monitor {
	if err := params.Validate(); err != nil {
		panic(fmt.Sprintf("core: monitor for node %d: %v", self, err))
	}
	if err := macParams.Validate(); err != nil {
		panic(fmt.Sprintf("core: monitor for node %d: %v", self, err))
	}
	m := &Monitor{
		self:      self,
		params:    params,
		macParams: macParams,
		src:       src,
		observer:  NewIdleObserver(macParams.SlotTime, macParams.DIFS(), params.HistoryHorizon),
		events:    events,
		senders:   make(map[frame.NodeID]*senderRecord),
	}
	if params.AdaptiveThresh {
		m.adaptive = DefaultAdaptiveThresh()
	}
	return m
}

// CurrentThresh returns the diagnosis threshold in force: the static
// THRESH, or the learned fence when adaptive selection is enabled.
func (m *Monitor) CurrentThresh() float64 {
	if m.adaptive != nil {
		return m.adaptive.Threshold()
	}
	return m.params.Thresh
}

func (m *Monitor) record(sender frame.NodeID) *senderRecord {
	r, ok := m.senders[sender]
	if !ok {
		r = &senderRecord{current: -1, prev: -1, next: -1}
		m.senders[sender] = r
	}
	return r
}

// Diagnosed reports the diagnosis scheme's current verdict for sender.
func (m *Monitor) Diagnosed(sender frame.NodeID) bool {
	r, ok := m.senders[sender]
	return ok && (r.diagnosed || r.provenLiar)
}

// SenderStats returns cumulative per-sender counters: packets checked,
// deviations detected, and total penalty slots assigned.
func (m *Monitor) SenderStats(sender frame.NodeID) (packets, deviations, penaltySlots int) {
	r, ok := m.senders[sender]
	if !ok {
		return 0, 0, 0
	}
	return r.packetCount, r.deviationCount, r.penaltyTotal
}

// Crash implements faults.Restartable: the node goes down at now and
// loses all volatile monitoring state — every per-sender record (the
// assignments senders are counting against, the diagnosis windows, the
// observation marks) and the idle-slot history. This is exactly the
// state a reboot loses, and re-synchronisation afterwards must not
// mistake a correct sender for a misbehaving one: a fresh senderRecord
// has no assignment (current = -1) and no mark, so the deviation check
// stays disarmed until a full assignment cycle completes after restart.
func (m *Monitor) Crash(now sim.Time) {
	m.down = true
	m.senders = make(map[frame.NodeID]*senderRecord)
	m.observer = NewIdleObserver(m.macParams.SlotTime, m.macParams.DIFS(), m.params.HistoryHorizon)
	if m.adaptive != nil {
		m.adaptive = DefaultAdaptiveThresh()
	}
}

// Restart implements faults.Restartable: the node comes back up at now,
// empty-handed. The fresh IdleObserver created at Crash assumes an idle
// channel; carrier transitions observed while down keep it coherent.
func (m *Monitor) Restart(now sim.Time) {
	if m.down {
		m.restarts++
	}
	m.down = false
}

// Down reports whether the monitor is currently crashed; Restarts the
// number of completed crash/restart cycles.
func (m *Monitor) Down() bool { return m.down }

// Restarts returns the number of completed crash/restart cycles.
func (m *Monitor) Restarts() int { return m.restarts }

// OnCarrierBusy implements mac.ReceiverHook.
func (m *Monitor) OnCarrierBusy(now sim.Time) { m.observer.OnBusy(now) }

// OnCarrierIdle implements mac.ReceiverHook.
func (m *Monitor) OnCarrierIdle(now sim.Time) { m.observer.OnIdle(now) }

// OnRTS implements mac.ReceiverHook: the heart of the scheme.
func (m *Monitor) OnRTS(rts frame.Frame, start, end sim.Time) (bool, int) {
	return m.handleOpening(rts, start, end)
}

// handleOpening processes the frame that opens an exchange — the RTS
// in RTS/CTS mode, or the DATA itself in basic-access mode. Both carry
// the attempt number the estimator needs.
func (m *Monitor) handleOpening(f frame.Frame, start, end sim.Time) (bool, int) {
	// A crashed node cannot respond to anything.
	if m.down {
		return false, -1
	}
	r := m.record(f.Src)

	// §4.1 attempt-number verification: check an outstanding drop.
	if r.verifyPending {
		switch {
		case f.Seq == r.verifySeq:
			if f.Attempt <= r.verifyAttempt {
				// The retransmission did not increment the attempt
				// number: immediate proof of misbehavior.
				r.provenLiar = true
				m.obs.proven.Inc()
				if m.obs.bus.Enabled(obs.CatDiagnosis) {
					m.obs.bus.Emit(obs.Record{
						Cat: obs.CatDiagnosis, Time: end, Node: m.self, Peer: f.Src,
						Event: "proven", Seq: f.Seq, A: float64(f.Attempt), B: float64(r.verifyAttempt),
						Self:   obs.Ref{When: end, Key: refKey(m.self, f.Src, refKindProven), Seq: f.Seq},
						Parent: r.assignRef,
					})
				}
				if m.events.OnProvenMisbehavior != nil {
					m.events.OnProvenMisbehavior(f.Src, end)
				}
			}
			r.verifyPending = false
		case f.Seq > r.verifySeq:
			// The sender abandoned the dropped packet (retry limit);
			// the check is inconclusive.
			r.verifyPending = false
		}
	}

	// Deviation measurement, when we have both an assignment the sender
	// should be counting and an observation window.
	if r.current >= 0 && r.hasMark {
		m.check(r, f, start, end)
	}

	// Decide the next assignment (b_{n+1}) once per exchange; retries
	// of the same sequence re-advertise the same value.
	if r.next < 0 || r.decidedSeq != f.Seq {
		r.next = m.assign(r, f.Src, f.Seq, end)
		r.decidedSeq = f.Seq
	}

	// Blocking mode: refuse service to diagnosed senders.
	if m.params.BlockDiagnosed && (r.diagnosed || r.provenLiar) {
		return false, -1
	}

	// Intentional drop for attempt verification.
	if m.params.VerifyAttempts && !r.verifyPending && m.src.Bool(m.params.VerifyDropProb) {
		r.verifyPending = true
		r.verifySeq = f.Seq
		r.verifyAttempt = f.Attempt
		return false, -1
	}

	return true, r.next
}

// check applies equation (1), the correction scheme and the diagnosis
// window to a received RTS.
func (m *Monitor) check(r *senderRecord, rts frame.Frame, start, end sim.Time) {
	bAct := m.observer.IdleSlots(r.mark, start)

	// Reconstruct B_exp. A retransmission of the sequence we already
	// ACKed means our ACK was lost: the sender counted the base backoff
	// before our observation window opened, so only the retry chain
	// counts, keyed on the assignment it was using then (prev).
	attempt := int(rts.Attempt)
	var bExp int
	dup := r.ackedOnce && rts.Seq == r.lastAckedSeq
	if dup {
		base := r.prev
		if base < 0 {
			return // nothing reliable to check against
		}
		bExp = ExpectedBackoff(base, rts.Src, attempt, m.macParams, false)
	} else {
		bExp = ExpectedBackoff(r.current, rts.Src, attempt, m.macParams, true)
	}

	// Correction scheme (§4.2): penalty proportional to the deviation.
	if float64(bAct) < m.params.Alpha*float64(bExp) {
		deviation := m.params.Alpha*float64(bExp) - float64(bAct)
		penalty := int(m.params.PenaltyFactor*deviation + 0.5)
		if m.params.PenaltyCap > 0 && penalty > m.params.PenaltyCap {
			penalty = m.params.PenaltyCap
		}
		r.pendingPenalty += penalty
		if m.params.PenaltyCap > 0 && r.pendingPenalty > m.params.PenaltyCap {
			r.pendingPenalty = m.params.PenaltyCap
		}
		r.deviationCount++
		m.obs.deviations.Inc()
		if m.obs.bus.Enabled(obs.CatDeviation) {
			// Parent: the assignment decision the sender was counting
			// against (for a lost-ACK duplicate this is the latest
			// assignment, one exchange newer than the prev-keyed check).
			m.obs.bus.Emit(obs.Record{
				Cat: obs.CatDeviation, Time: end, Node: m.self, Peer: rts.Src,
				Event: "deviation", Seq: rts.Seq,
				A: deviation, B: float64(penalty), C: float64(bAct), D: float64(bExp),
				Self:   obs.Ref{When: end, Key: refKey(m.self, rts.Src, refKindDeviation), Seq: rts.Seq},
				Parent: r.assignRef,
			})
		}
		if m.events.OnDeviation != nil {
			m.events.OnDeviation(rts.Src, deviation, penalty, end)
		}
	}

	// Diagnosis scheme (§4.3): a moving window of B_exp − B_act sums.
	diff := float64(bExp - bAct)
	if n := len(r.windowSeqs); n > 0 && r.windowSeqs[n-1] == rts.Seq {
		// Retry of an already-recorded packet: replace its entry.
		r.window[len(r.window)-1] = diff
	} else {
		r.window = append(r.window, diff)
		r.windowSeqs = append(r.windowSeqs, rts.Seq)
		if len(r.window) > m.params.Window {
			r.window = r.window[1:]
			r.windowSeqs = r.windowSeqs[1:]
		}
		r.packetCount++
		m.obs.packets.Inc()
	}
	m.obs.diff.Observe(diff)
	sum := 0.0
	for _, d := range r.window {
		sum += d
	}
	wasDiagnosed := r.diagnosed
	r.diagnosed = sum > m.CurrentThresh()
	m.obs.windowSum.Set(sum, end)
	if m.obs.bus.Enabled(obs.CatDiagnosis) {
		verdict := "ok"
		if r.diagnosed {
			verdict = "diagnosed"
		}
		// Window records chain backward through Parent (previous window
		// update for this sender): the flight recorder's evidence spine.
		// D/E carry the assigned-vs-observed backoffs behind the diff.
		self := obs.Ref{When: end, Key: refKey(m.self, rts.Src, refKindWindow), Seq: rts.Seq}
		m.obs.bus.Emit(obs.Record{
			Cat: obs.CatDiagnosis, Time: end, Node: m.self, Peer: rts.Src,
			Event: "window", Aux: verdict, Seq: rts.Seq,
			A: diff, B: sum, C: m.CurrentThresh(),
			D: float64(bExp), E: float64(bAct),
			Self: self, Parent: r.windowRef,
		})
		r.windowRef = self
		if r.diagnosed != wasDiagnosed {
			// Verdict transition: the queryable "why" anchor macsim
			// -explain walks back from. A carries the margin (sum −
			// thresh), E the number of packets summed, so the walker
			// knows how deep the evidence chain goes.
			aux := "cleared"
			if r.diagnosed {
				aux = "diagnosed"
			}
			m.obs.bus.Emit(obs.Record{
				Cat: obs.CatDiagnosis, Time: end, Node: m.self, Peer: rts.Src,
				Event: "diagnosis", Aux: aux, Seq: rts.Seq,
				A: sum - m.CurrentThresh(), B: sum, C: m.CurrentThresh(),
				E:    float64(len(r.window)),
				Self: obs.Ref{When: end, Key: refKey(m.self, rts.Src, refKindDiagnosis), Seq: rts.Seq},
				// Parent: the window update that tipped the verdict.
				Parent: self,
			})
		}
	}
	if m.adaptive != nil {
		// Learn from the sum after judging it, so a packet never moves
		// its own goalposts.
		m.adaptive.Observe(sum)
	}
	if m.events.OnClassified != nil {
		m.events.OnClassified(rts.Src, r.diagnosed, diff, end)
	}
}

// assign decides the base backoff for the sender's next packet and adds
// the pending correction penalty. at is the decision instant (the end of
// the opening frame), used only for tracing.
func (m *Monitor) assign(r *senderRecord, sender frame.NodeID, seq uint32, at sim.Time) int {
	var base int
	switch m.params.AssignMode {
	case AssignRandom:
		base = m.src.IntRange(0, m.macParams.CWMin)
	case AssignVerifiable:
		base = G(m.self, sender, seq, m.macParams.CWMin)
	case AssignGreedy:
		base = 0
	}
	penalty := r.pendingPenalty
	if m.params.WaivePenalties {
		penalty = 0
	}
	assigned := base + penalty
	if m.obs.bus.Enabled(obs.CatBackoff) {
		self := obs.Ref{When: at, Key: refKey(m.self, sender, refKindAssign), Seq: seq}
		m.obs.bus.Emit(obs.Record{
			Cat: obs.CatBackoff, Time: at, Node: m.self, Peer: sender,
			Event: "assign", Seq: seq,
			A: float64(base), B: float64(penalty), C: float64(assigned),
			Self: self,
		})
		r.assignRef = self
	}
	if m.params.WaivePenalties {
		r.pendingPenalty = 0
		return base
	}
	m.obs.penaltySlots.Add(uint64(penalty))
	r.penaltyTotal += r.pendingPenalty
	r.pendingPenalty = 0
	return assigned
}

// OnData implements mac.ReceiverHook. With RTS/CTS, the exchange was
// already opened by OnRTS and the DATA just confirms the assignment to
// re-advertise in the ACK. In basic-access mode (a DATA carrying an
// attempt number with no prior RTS decision) the DATA itself opens the
// exchange: it goes through the full detection pipeline, and a false
// verdict suppresses the ACK.
func (m *Monitor) OnData(data frame.Frame, start, end sim.Time) (bool, int) {
	if m.down {
		return false, -1
	}
	r := m.record(data.Src)
	if data.Attempt > 0 && (r.verifyPending || r.next < 0 || r.decidedSeq != data.Seq) {
		return m.handleOpening(data, start, end)
	}
	if r.next < 0 || r.decidedSeq != data.Seq {
		// DATA without a matching RTS decision and no attempt field
		// (should not happen with RTS/CTS on, but stay robust).
		r.next = m.assign(r, data.Src, data.Seq, end)
		r.decidedSeq = data.Seq
	}
	return true, r.next
}

// OnAckSent implements mac.ReceiverHook: the exchange is complete.
// Rotate assignments and open the observation window for the sender's
// next packet.
func (m *Monitor) OnAckSent(to frame.NodeID, seq uint32, end sim.Time) {
	// An ACK whose transmission was armed before a crash can complete
	// after it; a dead node records nothing.
	if m.down {
		return
	}
	r := m.record(to)
	r.prev = r.current
	if r.next >= 0 {
		r.current = r.next
	}
	r.lastAckedSeq = seq
	r.ackedOnce = true
	r.mark = end
	r.hasMark = true
	if m.obs.bus.Enabled(obs.CatBackoff) {
		// Parent: the assignment decision this ACK just made current.
		m.obs.bus.Emit(obs.Record{
			Cat: obs.CatBackoff, Time: end, Node: m.self, Peer: to,
			Event: "ack-mark", Seq: seq, A: float64(r.current),
			Self:   obs.Ref{When: end, Key: refKey(m.self, to, refKindAckMark), Seq: seq},
			Parent: r.assignRef,
		})
	}
}
