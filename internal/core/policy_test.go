package core

import (
	"testing"

	"dcfguard/internal/frame"
	"dcfguard/internal/mac"
	"dcfguard/internal/medium"
	"dcfguard/internal/misbehave"
	"dcfguard/internal/phys"
	"dcfguard/internal/rng"
	"dcfguard/internal/sim"
)

func TestAssignedPolicyFirstPacketArbitrary(t *testing.T) {
	p := NewAssignedPolicy(1, mac.DefaultParams(), rng.New(1))
	b := p.InitialBackoff(9, 31)
	if b < 0 || b > 31 {
		t.Fatalf("arbitrary first backoff = %d, want [0, 31]", b)
	}
	if p.Assigned(9) != -1 {
		t.Fatalf("Assigned before any advertisement = %d, want -1", p.Assigned(9))
	}
}

func TestAssignedPolicyUsesAckAssignment(t *testing.T) {
	p := NewAssignedPolicy(1, mac.DefaultParams(), rng.New(1))
	p.InitialBackoff(9, 31)
	p.OnAssigned(9, 1, 23, false) // CTS: pending only
	if p.Assigned(9) != -1 {
		t.Fatal("CTS assignment promoted before ACK")
	}
	p.OnAssigned(9, 1, 23, true) // ACK: promoted
	if p.Assigned(9) != 23 {
		t.Fatalf("Assigned = %d, want 23", p.Assigned(9))
	}
	if got := p.InitialBackoff(9, 31); got != 23 {
		t.Fatalf("next InitialBackoff = %d, want assigned 23", got)
	}
}

func TestAssignedPolicyRetryUsesF(t *testing.T) {
	mp := mac.DefaultParams()
	p := NewAssignedPolicy(7, mp, rng.New(1))
	p.OnAssigned(9, 1, 12, true)
	counted := p.InitialBackoff(9, 31)
	if counted != 12 {
		t.Fatalf("counting base = %d, want 12", counted)
	}
	for attempt := 2; attempt <= 5; attempt++ {
		want := RetrySlots(12, 7, attempt, mp)
		if got := p.RetryBackoff(9, attempt, mp.CW(attempt)); got != want {
			t.Fatalf("RetryBackoff(attempt=%d) = %d, want %d", attempt, got, want)
		}
	}
}

func TestAssignedPolicyRetryBeforeAnyAssignment(t *testing.T) {
	mp := mac.DefaultParams()
	p := NewAssignedPolicy(7, mp, rng.New(1))
	first := p.InitialBackoff(9, 31)
	// Retries key on the arbitrary value that was actually counted.
	want := RetrySlots(first, 7, 2, mp)
	if got := p.RetryBackoff(9, 2, mp.CW(2)); got != want {
		t.Fatalf("RetryBackoff = %d, want %d (keyed on counted value)", got, want)
	}
}

func TestAssignedPolicyPerDestinationState(t *testing.T) {
	p := NewAssignedPolicy(1, mac.DefaultParams(), rng.New(1))
	p.OnAssigned(9, 1, 5, true)
	p.OnAssigned(8, 1, 25, true)
	if p.Assigned(9) != 5 || p.Assigned(8) != 25 {
		t.Fatalf("per-destination assignments mixed up: %d, %d", p.Assigned(9), p.Assigned(8))
	}
}

func TestAssignedPolicyVerifyReceiverClampsGreedy(t *testing.T) {
	mp := mac.DefaultParams()
	p := NewAssignedPolicy(1, mp, rng.New(1))
	p.VerifyReceiver = true
	// Find a seq where G > 0 so a zero assignment is detectably greedy.
	var seq uint32
	for seq = 1; G(9, 1, seq, mp.CWMin) == 0; seq++ {
	}
	floor := G(9, 1, seq, mp.CWMin)
	p.OnAssigned(9, seq, 0, true) // greedy receiver assigns 0
	if p.GreedyDetections() != 1 {
		t.Fatalf("greedy detections = %d, want 1", p.GreedyDetections())
	}
	if p.Assigned(9) != floor {
		t.Fatalf("clamped assignment = %d, want G = %d", p.Assigned(9), floor)
	}
	// Honest assignment at/above the floor passes untouched.
	p.OnAssigned(9, seq, floor+3, true)
	if p.GreedyDetections() != 1 {
		t.Fatal("honest assignment counted as greedy")
	}
	if p.Assigned(9) != floor+3 {
		t.Fatalf("honest assignment altered: %d", p.Assigned(9))
	}
}

func TestAssignedPolicyReportAttemptHonest(t *testing.T) {
	p := NewAssignedPolicy(1, mac.DefaultParams(), rng.New(1))
	if got := p.ReportAttempt(4); got != 4 {
		t.Fatalf("ReportAttempt(4) = %d", got)
	}
}

// ---- full-stack integration: scheme over the real MAC and medium ------

type coreFixture struct {
	sched    *sim.Scheduler
	med      *medium.Medium
	monitor  *Monitor
	receiver *mac.Node
	senders  map[frame.NodeID]*mac.Node
	success  map[frame.NodeID]int

	classifiedMis map[frame.NodeID]int
	classifiedOK  map[frame.NodeID]int
}

// newCoreFixture builds a receiver running the Monitor at the origin and
// senders on a 150 m circle, on a deterministic (σ=0) channel.
func newCoreFixture(t *testing.T, params Params, policies map[frame.NodeID]mac.BackoffPolicy) *coreFixture {
	t.Helper()
	var sched sim.Scheduler
	model := phys.DefaultShadowing()
	model.SigmaDB = 0
	radio := phys.CalibratedRadio(model, 24.5, 250, 0.5, 550, 0.5, 2_000_000)
	med := medium.New(&sched, medium.Config{Model: model}, rng.New(77))

	fx := &coreFixture{
		sched:         &sched,
		med:           med,
		senders:       make(map[frame.NodeID]*mac.Node),
		success:       make(map[frame.NodeID]int),
		classifiedMis: make(map[frame.NodeID]int),
		classifiedOK:  make(map[frame.NodeID]int),
	}
	events := Events{
		OnClassified: func(src frame.NodeID, mis bool, _ float64, _ sim.Time) {
			if mis {
				fx.classifiedMis[src]++
			} else {
				fx.classifiedOK[src]++
			}
		},
	}
	const rxID = frame.NodeID(0)
	fx.monitor = NewMonitor(rxID, params, mac.DefaultParams(), rng.New(5), events)
	fx.receiver = mac.NewNode(rxID, mac.DefaultParams(), &sched, med,
		mac.NewStandardPolicy(rng.New(6)), fx.monitor, mac.Callbacks{})
	med.Attach(rxID, phys.Point{}, radio, fx.receiver)

	// Build and attach in ascending ID order for determinism.
	for id := frame.NodeID(1); int(id) <= len(policies); id++ {
		pol, ok := policies[id]
		if !ok {
			t.Fatalf("policies must use dense IDs starting at 1; missing %d", id)
		}
		id := id
		var n *mac.Node
		cb := mac.Callbacks{
			OnSendSuccess: func(_ frame.NodeID, _ uint32, _, _ int, _, _ sim.Time) {
				fx.success[id]++
			},
			OnQueueSpace: func(sim.Time) { n.Enqueue(0, 512) },
		}
		n = mac.NewNode(id, mac.DefaultParams(), &sched, med, pol, nil, cb)
		fx.senders[id] = n
		med.Attach(id, phys.OnCircle(phys.Point{}, 150, int(id-1), len(policies)), radio, n)
		for k := 0; k < 4; k++ {
			n.Enqueue(0, 512)
		}
	}
	return fx
}

func TestIntegrationHonestSendersCleanDiagnosis(t *testing.T) {
	mp := mac.DefaultParams()
	policies := map[frame.NodeID]mac.BackoffPolicy{
		1: NewAssignedPolicy(1, mp, rng.New(11)),
		2: NewAssignedPolicy(2, mp, rng.New(12)),
		3: NewAssignedPolicy(3, mp, rng.New(13)),
	}
	fx := newCoreFixture(t, DefaultParams(), policies)
	fx.sched.Run(5 * sim.Second)

	for id := frame.NodeID(1); id <= 3; id++ {
		if fx.success[id] < 100 {
			t.Errorf("sender %d completed only %d packets", id, fx.success[id])
		}
		if fx.classifiedMis[id] != 0 {
			t.Errorf("honest sender %d misdiagnosed %d times (ok %d)",
				id, fx.classifiedMis[id], fx.classifiedOK[id])
		}
		_, dev, _ := fx.monitor.SenderStats(id)
		if dev > fx.classifiedOK[id]/10 {
			t.Errorf("honest sender %d flagged deviating %d times", id, dev)
		}
	}
}

func TestIntegrationMisbehaverDiagnosedOthersClean(t *testing.T) {
	mp := mac.DefaultParams()
	policies := map[frame.NodeID]mac.BackoffPolicy{
		1: NewAssignedPolicy(1, mp, rng.New(11)),
		2: misbehave.NewPartial(NewAssignedPolicy(2, mp, rng.New(12)), 90),
		3: NewAssignedPolicy(3, mp, rng.New(13)),
	}
	fx := newCoreFixture(t, DefaultParams(), policies)
	fx.sched.Run(5 * sim.Second)

	// The PM=90 sender must be diagnosed for most of its packets.
	mis, ok := fx.classifiedMis[2], fx.classifiedOK[2]
	if mis+ok == 0 {
		t.Fatal("misbehaver never classified")
	}
	if frac := float64(mis) / float64(mis+ok); frac < 0.5 {
		t.Errorf("misbehaver diagnosed for only %.0f%% of packets", frac*100)
	}
	// Honest senders stay clean.
	for _, id := range []frame.NodeID{1, 3} {
		total := fx.classifiedMis[id] + fx.classifiedOK[id]
		if total == 0 {
			t.Errorf("honest sender %d never classified", id)
			continue
		}
		if frac := float64(fx.classifiedMis[id]) / float64(total); frac > 0.05 {
			t.Errorf("honest sender %d misdiagnosis rate %.2f", id, frac)
		}
	}
}

func TestIntegrationBasicAccessDetection(t *testing.T) {
	// Footnote 2 of the paper: the scheme works without RTS/CTS. Run
	// the scheme end-to-end in basic-access mode with one hard
	// misbehaver and verify diagnosis still works and honest senders
	// stay clean.
	var sched sim.Scheduler
	model := phys.DefaultShadowing()
	model.SigmaDB = 0
	radio := phys.CalibratedRadio(model, 24.5, 250, 0.5, 550, 0.5, 2_000_000)
	med := medium.New(&sched, medium.Config{Model: model}, rng.New(77))
	mp := mac.DefaultParams()
	mp.BasicAccess = true

	classifiedMis := make(map[frame.NodeID]int)
	classifiedOK := make(map[frame.NodeID]int)
	events := Events{OnClassified: func(src frame.NodeID, mis bool, _ float64, _ sim.Time) {
		if mis {
			classifiedMis[src]++
		} else {
			classifiedOK[src]++
		}
	}}
	monitor := NewMonitor(0, DefaultParams(), mp, rng.New(5), events)
	recv := mac.NewNode(0, mp, &sched, med, mac.NewStandardPolicy(rng.New(6)), monitor, mac.Callbacks{})
	med.Attach(0, phys.Point{}, radio, recv)

	policies := map[frame.NodeID]mac.BackoffPolicy{
		1: NewAssignedPolicy(1, mp, rng.New(11)),
		2: misbehave.NewPartial(NewAssignedPolicy(2, mp, rng.New(12)), 90),
		3: NewAssignedPolicy(3, mp, rng.New(13)),
	}
	for id := frame.NodeID(1); id <= 3; id++ {
		id := id
		var n *mac.Node
		cb := mac.Callbacks{OnQueueSpace: func(sim.Time) { n.Enqueue(0, 512) }}
		n = mac.NewNode(id, mp, &sched, med, policies[id], nil, cb)
		med.Attach(id, phys.OnCircle(phys.Point{}, 150, int(id-1), 3), radio, n)
		for k := 0; k < 4; k++ {
			n.Enqueue(0, 512)
		}
	}
	sched.Run(5 * sim.Second)

	mis, ok := classifiedMis[2], classifiedOK[2]
	if mis+ok == 0 {
		t.Fatal("basic-access misbehaver never classified")
	}
	if frac := float64(mis) / float64(mis+ok); frac < 0.5 {
		t.Fatalf("basic-access misbehaver diagnosed for only %.0f%% of packets", frac*100)
	}
	for _, id := range []frame.NodeID{1, 3} {
		total := classifiedMis[id] + classifiedOK[id]
		if total == 0 {
			t.Fatalf("honest sender %d never classified", id)
		}
		if frac := float64(classifiedMis[id]) / float64(total); frac > 0.05 {
			t.Fatalf("honest sender %d misdiagnosis rate %.2f in basic mode", id, frac)
		}
	}
}

func TestIntegrationCorrectionLimitsMisbehaverThroughput(t *testing.T) {
	mp := mac.DefaultParams()
	// Three senders, one with PM=90. Baseline: the same misbehavior
	// against plain 802.11 receivers (random policies, no monitor).
	runWith := func(correct bool) (honest, mis float64) {
		var policies map[frame.NodeID]mac.BackoffPolicy
		if correct {
			policies = map[frame.NodeID]mac.BackoffPolicy{
				1: NewAssignedPolicy(1, mp, rng.New(11)),
				2: misbehave.NewPartial(NewAssignedPolicy(2, mp, rng.New(12)), 90),
				3: NewAssignedPolicy(3, mp, rng.New(13)),
			}
		} else {
			policies = map[frame.NodeID]mac.BackoffPolicy{
				1: mac.NewStandardPolicy(rng.New(11)),
				2: misbehave.NewPartial(mac.NewStandardPolicy(rng.New(12)), 90),
				3: mac.NewStandardPolicy(rng.New(13)),
			}
		}
		fx := newCoreFixture(t, DefaultParams(), policies)
		if !correct {
			// Detach the monitor's influence: plain 802.11 receivers
			// still answer RTS but assign nothing. Build a fresh
			// fixture with no hook by zeroing assignments via the
			// standard policies above; the monitor's assignments are
			// ignored by StandardPolicy, so only the penalty-free CTS
			// content differs — acceptable as a baseline.
			_ = fx
		}
		fx.sched.Run(10 * sim.Second)
		honest = float64(fx.success[1]+fx.success[3]) / 2
		mis = float64(fx.success[2])
		return honest, mis
	}

	honestC, misC := runWith(true)
	honestB, misB := runWith(false)
	if honestC == 0 || honestB == 0 {
		t.Fatal("honest senders starved")
	}
	ratioCorrect := misC / honestC
	ratioBaseline := misB / honestB
	if ratioCorrect >= ratioBaseline {
		t.Fatalf("correction did not reduce the misbehaver's advantage: %.2fx vs baseline %.2fx",
			ratioCorrect, ratioBaseline)
	}
	if ratioCorrect > 2 {
		t.Fatalf("corrected misbehaver still gets %.2fx the honest throughput", ratioCorrect)
	}
}
