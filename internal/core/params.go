package core

import (
	"fmt"

	"dcfguard/internal/sim"
)

// AssignMode selects how the Monitor chooses the base (pre-penalty)
// backoff it assigns to senders.
type AssignMode int

const (
	// AssignRandom draws uniformly from [0, CWmin], the paper's default.
	AssignRandom AssignMode = iota + 1
	// AssignVerifiable derives the base from the public function G so
	// senders can audit the receiver (§4.4 extension).
	AssignVerifiable
	// AssignGreedy models a *misbehaving* receiver that always assigns
	// zero base backoff to pull data faster (§4.4's threat model).
	AssignGreedy
)

// String returns the mode name.
func (m AssignMode) String() string {
	switch m {
	case AssignRandom:
		return "random"
	case AssignVerifiable:
		return "verifiable"
	case AssignGreedy:
		return "greedy"
	default:
		return fmt.Sprintf("AssignMode(%d)", int(m))
	}
}

// Params configures the detection, correction and diagnosis schemes.
type Params struct {
	// Alpha is the deviation tolerance α of equation (1): a packet
	// deviates when B_act < α·B_exp. The paper uses 0.9.
	Alpha float64
	// Window is W, the number of recent packets whose (B_exp − B_act)
	// differences the diagnosis scheme sums. The paper uses 5.
	Window int
	// Thresh is THRESH: when the windowed sum exceeds it, packets are
	// diagnosed as coming from a misbehaving sender. The paper uses 20
	// slots (4 slots per packet with W = 5).
	Thresh float64
	// PenaltyFactor scales the measured deviation D into the total
	// penalty P: P = PenaltyFactor · D. The paper uses D plus an
	// unspecified "additional penalty" from its companion TR, i.e. a
	// factor strictly above 1. The default, 1.25, was calibrated so
	// Figure 5's shape holds: the misbehaver is pinned near its fair
	// share up to PM ≈ 90% without over-punishing moderate misbehavior
	// (see ablation A1 and EXPERIMENTS.md).
	PenaltyFactor float64
	// PenaltyCap bounds the penalty in slots (0 disables). It prevents
	// unbounded assignment growth against PM≈100% senders, which ignore
	// assignments anyway and are caught by diagnosis instead.
	PenaltyCap int
	// BlockDiagnosed, when set, makes the receiver refuse CTS to
	// senders whose current window classifies them as misbehaving
	// (§4.3's "MAC layer may refuse to accept packets").
	BlockDiagnosed bool
	// VerifyAttempts enables §4.1's attempt-number verification:
	// occasionally drop an RTS intentionally and check that the
	// retransmission increments the attempt field.
	VerifyAttempts bool
	// VerifyDropProb is the per-RTS probability of an intentional drop
	// while attempt verification is enabled.
	VerifyDropProb float64
	// AdaptiveThresh replaces the static Thresh with the learned Tukey
	// fence over recent window sums (the adaptive selection the paper
	// defers to future work; see AdaptiveThresh in this package).
	AdaptiveThresh bool
	// AssignMode selects the base-assignment rule (see AssignMode).
	AssignMode AssignMode
	// WaivePenalties models a *misbehaving* receiver that never adds
	// correction penalties (with AssignGreedy this is the colluding
	// receiver of §4.4, detectable only by a third-party Watchdog).
	WaivePenalties bool
	// HistoryHorizon bounds how much carrier-sense history the idle-slot
	// observer retains. It must exceed the longest plausible interval
	// between an ACK and the next RTS from the same sender.
	HistoryHorizon sim.Time
}

// DefaultParams returns the configuration used for the paper's
// evaluation: α = 0.9, W = 5, THRESH = 20 slots.
func DefaultParams() Params {
	return Params{
		Alpha:          0.9,
		Window:         5,
		Thresh:         20,
		PenaltyFactor:  1.25,
		PenaltyCap:     1000,
		AssignMode:     AssignRandom,
		VerifyDropProb: 0.01,
		HistoryHorizon: 2 * sim.Second,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.Alpha <= 0 || p.Alpha > 1:
		return fmt.Errorf("core: alpha %v out of (0, 1]", p.Alpha)
	case p.Window < 1:
		return fmt.Errorf("core: window %d must be at least 1", p.Window)
	case p.Thresh < 0:
		return fmt.Errorf("core: thresh %v must be non-negative", p.Thresh)
	case p.PenaltyFactor < 0:
		return fmt.Errorf("core: penalty factor %v must be non-negative", p.PenaltyFactor)
	case p.PenaltyCap < 0:
		return fmt.Errorf("core: penalty cap %d must be non-negative", p.PenaltyCap)
	case p.VerifyDropProb < 0 || p.VerifyDropProb > 1:
		return fmt.Errorf("core: verify drop probability %v out of [0, 1]", p.VerifyDropProb)
	case p.HistoryHorizon <= 0:
		return fmt.Errorf("core: history horizon %v must be positive", p.HistoryHorizon)
	}
	switch p.AssignMode {
	case AssignRandom, AssignVerifiable, AssignGreedy:
	default:
		return fmt.Errorf("core: invalid assign mode %d", p.AssignMode)
	}
	return nil
}
