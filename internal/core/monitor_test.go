package core

import (
	"testing"

	"dcfguard/internal/frame"
	"dcfguard/internal/mac"
	"dcfguard/internal/rng"
	"dcfguard/internal/sim"
)

const rtsAirtime = 276 * sim.Microsecond

// monitorHarness drives a Monitor directly with a synthetic timeline.
type monitorHarness struct {
	m        *Monitor
	mp       mac.Params
	now      sim.Time
	seq      uint32
	assigned int

	classified []bool
	diffs      []float64
	deviations []float64
	penalties  []int
	proofs     int
}

func newHarness(params Params) *monitorHarness {
	h := &monitorHarness{mp: mac.DefaultParams(), assigned: -1}
	events := Events{
		OnClassified: func(_ frame.NodeID, mis bool, diff float64, _ sim.Time) {
			h.classified = append(h.classified, mis)
			h.diffs = append(h.diffs, diff)
		},
		OnDeviation: func(_ frame.NodeID, dev float64, pen int, _ sim.Time) {
			h.deviations = append(h.deviations, dev)
			h.penalties = append(h.penalties, pen)
		},
		OnProvenMisbehavior: func(frame.NodeID, sim.Time) { h.proofs++ },
	}
	h.m = NewMonitor(9, params, h.mp, rng.New(42), events)
	h.now = sim.Millisecond
	return h
}

// exchange runs one full RTS→ACK exchange for sender 1, with the RTS
// arriving after the sender apparently counted `slots` backoff slots
// (measured in receiver idle time past DIFS). Returns the assignment
// advertised during the exchange.
func (h *monitorHarness) exchange(slots int) int {
	h.seq++
	return h.exchangeSeq(h.seq, 1, slots)
}

func (h *monitorHarness) exchangeSeq(seq uint32, attempt uint8, slots int) int {
	// Idle period since the mark: DIFS + slots·slot, then the RTS.
	start := h.now + h.mp.DIFS() + sim.Time(slots)*h.mp.SlotTime
	end := start + rtsAirtime
	// The RTS occupies the channel.
	h.m.OnCarrierBusy(start)
	rts := frame.Frame{Type: frame.RTS, Src: 1, Dst: 9, Seq: seq, Attempt: attempt}
	respond, assigned := h.m.OnRTS(rts, start, end)
	h.m.OnCarrierIdle(end)
	if !respond {
		h.now = end
		return -1
	}
	// CTS/DATA/ACK compressed: the busy details between RTS and ACK do
	// not affect the next window, which starts at the ACK end.
	ackEnd := end + 3*sim.Millisecond
	h.m.OnCarrierBusy(end + sim.Microsecond)
	h.m.OnCarrierIdle(ackEnd)
	h.m.OnData(frame.Frame{Type: frame.Data, Src: 1, Dst: 9, Seq: seq, PayloadBytes: 512},
		ackEnd-3*sim.Millisecond, ackEnd)
	h.m.OnAckSent(1, seq, ackEnd)
	h.assigned = assigned
	h.now = ackEnd
	return assigned
}

func TestMonitorFirstPacketUnchecked(t *testing.T) {
	h := newHarness(DefaultParams())
	assigned := h.exchange(3)
	if assigned < 0 || assigned > 31 {
		t.Fatalf("first assignment = %d, want [0, 31]", assigned)
	}
	if len(h.classified) != 0 {
		t.Fatalf("first packet was classified (%v); no assignment existed yet", h.classified)
	}
	if p, d, _ := h.m.SenderStats(1); p != 0 || d != 0 {
		t.Fatalf("stats after first packet = (%d, %d), want (0, 0)", p, d)
	}
}

func TestMonitorHonestSenderNoDeviation(t *testing.T) {
	h := newHarness(DefaultParams())
	assigned := h.exchange(5) // first packet, establishes assignment
	for i := 0; i < 10; i++ {
		assigned = h.exchange(assigned) // count exactly what was assigned
	}
	if len(h.deviations) != 0 {
		t.Fatalf("honest sender flagged %d deviations: %v", len(h.deviations), h.deviations)
	}
	for i, mis := range h.classified {
		if mis {
			t.Fatalf("honest packet %d classified as misbehaving", i)
		}
	}
	for i, d := range h.diffs {
		if d != 0 {
			t.Fatalf("honest diff %d = %v, want 0 (B_act must equal B_exp)", i, d)
		}
	}
}

func TestMonitorDetectsDeviation(t *testing.T) {
	params := DefaultParams()
	h := newHarness(params)
	assigned := h.exchange(5)
	// Count only half the assignment.
	h.exchange(assigned / 2)
	if len(h.deviations) != 1 {
		t.Fatalf("deviations = %v, want exactly one", h.deviations)
	}
	wantDev := params.Alpha*float64(assigned) - float64(assigned/2)
	if h.deviations[0] != wantDev {
		t.Fatalf("deviation = %v, want %v", h.deviations[0], wantDev)
	}
	wantPen := int(params.PenaltyFactor*wantDev + 0.5)
	if h.penalties[0] != wantPen {
		t.Fatalf("penalty = %d, want %d", h.penalties[0], wantPen)
	}
}

func TestMonitorPenaltyRaisesNextAssignment(t *testing.T) {
	h := newHarness(DefaultParams())
	assigned := h.exchange(5)
	next := h.exchange(0)     // maximal misbehavior for this packet
	wantMin := h.penalties[0] // base ≥ 0, so assignment ≥ penalty
	if next < wantMin {
		t.Fatalf("assignment after deviation = %d, want ≥ penalty %d", next, wantMin)
	}
	_ = assigned
}

func TestMonitorAlphaToleratesSlightShortfall(t *testing.T) {
	params := DefaultParams() // α = 0.9
	h := newHarness(params)
	assigned := h.exchange(5)
	for assigned < 20 {
		assigned = h.exchange(assigned)
	}
	// Count 95% of the assignment: above α ⇒ no deviation.
	h.exchange(assigned * 95 / 100)
	if len(h.deviations) != 0 {
		t.Fatalf("95%% compliance flagged as deviation (α=0.9): %v", h.deviations)
	}
}

func TestMonitorDiagnosisAfterPersistentMisbehavior(t *testing.T) {
	h := newHarness(DefaultParams())
	h.exchange(5)
	diagnosedAt := -1
	for i := 0; i < 15; i++ {
		h.exchange(0)
		if h.m.Diagnosed(1) {
			diagnosedAt = i
			break
		}
	}
	if diagnosedAt < 0 {
		t.Fatal("persistent 100% misbehavior never diagnosed")
	}
	if !h.classified[len(h.classified)-1] {
		t.Fatal("last packet not classified as misbehaving despite diagnosis")
	}
}

func TestMonitorSlowSenderNotDiagnosed(t *testing.T) {
	h := newHarness(DefaultParams())
	assigned := h.exchange(5)
	for i := 0; i < 10; i++ {
		assigned = h.exchange(assigned + 10) // waits longer than required
	}
	if h.m.Diagnosed(1) {
		t.Fatal("over-waiting sender diagnosed as misbehaving")
	}
	for _, d := range h.diffs {
		if d > 0 {
			t.Fatalf("over-waiting sender has positive diff %v", d)
		}
	}
}

func TestMonitorNegativeDiffsOffsetPositive(t *testing.T) {
	// Alternating slightly-early and clearly-late packets must keep the
	// windowed sum below THRESH.
	h := newHarness(DefaultParams())
	assigned := h.exchange(5)
	for i := 0; i < 12; i++ {
		if i%2 == 0 {
			assigned = h.exchange(assigned * 85 / 100) // small deviation
		} else {
			assigned = h.exchange(assigned + 15) // overshoot
		}
	}
	if h.m.Diagnosed(1) {
		t.Fatal("balanced sender diagnosed")
	}
}

func TestMonitorWindowBounded(t *testing.T) {
	params := DefaultParams()
	h := newHarness(params)
	h.exchange(5)
	for i := 0; i < 30; i++ {
		h.exchange(0)
	}
	r := h.m.senders[1]
	if len(r.window) != params.Window {
		t.Fatalf("window length %d, want %d", len(r.window), params.Window)
	}
	if p, _, _ := h.m.SenderStats(1); p != 30 {
		t.Fatalf("packet count %d, want 30", p)
	}
}

func TestMonitorBlockingMode(t *testing.T) {
	params := DefaultParams()
	params.BlockDiagnosed = true
	h := newHarness(params)
	h.exchange(5)
	blocked := false
	for i := 0; i < 20; i++ {
		if h.exchange(0) < 0 {
			blocked = true
			break
		}
	}
	if !blocked {
		t.Fatal("diagnosed sender never refused a CTS in blocking mode")
	}
}

func TestMonitorRetryChainEstimation(t *testing.T) {
	// A retry (attempt 3) of a *new* packet: B_exp must include the
	// full chain; counting exactly that chain yields diff 0.
	h := newHarness(DefaultParams())
	assigned := h.exchange(5)
	bexp := ExpectedBackoff(assigned, 1, 3, h.mp, true)
	h.seq++
	h.exchangeSeq(h.seq, 3, bexp)
	if len(h.deviations) != 0 {
		t.Fatalf("honest retry chain flagged: %v", h.deviations)
	}
	if d := h.diffs[len(h.diffs)-1]; d != 0 {
		t.Fatalf("retry diff = %v, want 0", d)
	}
}

func TestMonitorDuplicateRetryUsesChainOnly(t *testing.T) {
	// A retransmission of the sequence we already ACKed (our ACK was
	// lost): only the retry chain counts, keyed on the previous
	// assignment.
	h := newHarness(DefaultParams())
	first := h.exchange(5)      // seq 1: establishes current = first
	second := h.exchange(first) // seq 2 counted honestly; current = second
	_ = second
	// Sender missed ACK for seq 2 and retries it with attempt 2. It was
	// counting `first` for seq 2, so the chain is keyed on `first`.
	chain := ExpectedBackoff(first, 1, 2, h.mp, false)
	h.exchangeSeq(2, 2, chain)
	if len(h.deviations) != 0 {
		t.Fatalf("honest duplicate retry flagged: %v (diffs %v)", h.deviations, h.diffs)
	}
	if d := h.diffs[len(h.diffs)-1]; d != 0 {
		t.Fatalf("duplicate retry diff = %v, want 0", d)
	}
}

func TestMonitorRetryReplacesWindowEntry(t *testing.T) {
	h := newHarness(DefaultParams())
	h.exchange(5)
	before, _, _ := h.m.SenderStats(1)
	// Two RTS for the same new sequence (attempts 1 then 2) must count
	// as one packet in the window.
	h.seq++
	start := h.now + h.mp.DIFS()
	rts := frame.Frame{Type: frame.RTS, Src: 1, Dst: 9, Seq: h.seq, Attempt: 1}
	h.m.OnRTS(rts, start, start+rtsAirtime)
	rts.Attempt = 2
	h.m.OnRTS(rts, start+sim.Millisecond, start+sim.Millisecond+rtsAirtime)
	after, _, _ := h.m.SenderStats(1)
	if after != before+1 {
		t.Fatalf("packet count went %d → %d, want +1 for retried packet", before, after)
	}
}

func TestMonitorAttemptVerificationCatchesLiar(t *testing.T) {
	params := DefaultParams()
	params.VerifyAttempts = true
	params.VerifyDropProb = 1 // drop every RTS once
	h := newHarness(params)

	// First RTS for seq 1: dropped for verification.
	start := h.now + h.mp.DIFS()
	rts := frame.Frame{Type: frame.RTS, Src: 1, Dst: 9, Seq: 1, Attempt: 1}
	if respond, _ := h.m.OnRTS(rts, start, start+rtsAirtime); respond {
		t.Fatal("verification drop did not happen with probability 1")
	}
	// The liar retries with the same attempt number.
	if respond, _ := h.m.OnRTS(rts, start+sim.Millisecond, start+sim.Millisecond+rtsAirtime); respond {
		// may respond or drop again; irrelevant here
		_ = respond
	}
	if h.proofs != 1 {
		t.Fatalf("proofs = %d, want 1 (liar caught)", h.proofs)
	}
	if !h.m.Diagnosed(1) {
		t.Fatal("proven liar not reported as diagnosed")
	}
}

func TestMonitorAttemptVerificationPassesHonest(t *testing.T) {
	params := DefaultParams()
	params.VerifyAttempts = true
	params.VerifyDropProb = 1
	h := newHarness(params)

	start := h.now + h.mp.DIFS()
	rts := frame.Frame{Type: frame.RTS, Src: 1, Dst: 9, Seq: 1, Attempt: 1}
	h.m.OnRTS(rts, start, start+rtsAirtime) // dropped
	rts.Attempt = 2                         // honest increment
	h.m.OnRTS(rts, start+sim.Millisecond, start+sim.Millisecond+rtsAirtime)
	if h.proofs != 0 {
		t.Fatalf("honest sender proven misbehaving (%d proofs)", h.proofs)
	}
}

func TestMonitorVerifiableAssignments(t *testing.T) {
	params := DefaultParams()
	params.AssignMode = AssignVerifiable
	h := newHarness(params)
	for i := 0; i < 5; i++ {
		seqBefore := h.seq + 1
		got := h.exchange(5)
		want := G(9, 1, seqBefore, h.mp.CWMin)
		// Honest compliance means no penalties, so assignment == G.
		if i > 0 {
			// After the first exchange the harness counts 5 slots,
			// which may deviate; only check the very first.
			break
		}
		if got != want {
			t.Fatalf("verifiable assignment = %d, want G = %d", got, want)
		}
	}
}

func TestMonitorGreedyAssignsZeroBase(t *testing.T) {
	params := DefaultParams()
	params.AssignMode = AssignGreedy
	h := newHarness(params)
	if got := h.exchange(5); got != 0 {
		t.Fatalf("greedy first assignment = %d, want 0", got)
	}
	// Honest sender counts 0 as told: no deviation, still 0 assigned.
	if got := h.exchange(0); got != 0 {
		t.Fatalf("greedy steady-state assignment = %d, want 0", got)
	}
	if len(h.deviations) != 0 {
		t.Fatalf("compliant sender penalised by greedy receiver: %v", h.deviations)
	}
}

func TestMonitorPenaltyCap(t *testing.T) {
	params := DefaultParams()
	params.PenaltyCap = 50
	h := newHarness(params)
	h.exchange(5)
	for i := 0; i < 20; i++ {
		h.exchange(0)
	}
	for _, p := range h.penalties {
		if p > 50 {
			t.Fatalf("penalty %d exceeds cap 50", p)
		}
	}
	// Assignment = base (≤31) + pending penalty (≤cap).
	if h.assigned > 31+50 {
		t.Fatalf("assignment %d exceeds base+cap", h.assigned)
	}
}

func TestMonitorWaivePenalties(t *testing.T) {
	params := DefaultParams()
	params.WaivePenalties = true
	h := newHarness(params)
	h.exchange(5)
	for i := 0; i < 8; i++ {
		h.exchange(0) // hard misbehavior, never penalised
	}
	if _, _, penalty := h.m.SenderStats(1); penalty != 0 {
		t.Fatalf("penalty total = %d with waived penalties", penalty)
	}
	// Deviations are still *observed* (the misbehaving receiver just
	// refuses to act on them).
	if _, dev, _ := h.m.SenderStats(1); dev == 0 {
		t.Fatal("deviations not recorded")
	}
}

func TestMonitorBasicAccessOpeningViaData(t *testing.T) {
	// In basic-access mode the DATA frame opens the exchange: the
	// monitor must run the full pipeline from OnData.
	h := newHarness(DefaultParams())
	mp := h.mp

	run := func(seq uint32, slots int) (bool, int) {
		start := h.now + mp.DIFS() + sim.Time(slots)*mp.SlotTime
		end := start + 2352*sim.Microsecond
		h.m.OnCarrierBusy(start)
		ack, assigned := h.m.OnData(frame.Frame{
			Type: frame.Data, Src: 1, Dst: 9, Seq: seq, Attempt: 1, PayloadBytes: 512,
		}, start, end)
		h.m.OnCarrierIdle(end)
		ackEnd := end + 266*sim.Microsecond
		h.m.OnAckSent(1, seq, ackEnd)
		h.now = ackEnd
		return ack, assigned
	}

	ack, first := run(1, 3)
	if !ack || first < 0 {
		t.Fatalf("first basic exchange: ack=%v assigned=%d", ack, first)
	}
	// Second packet counts nothing: deviation must fire.
	run(2, 0)
	if _, dev, _ := h.m.SenderStats(1); dev != 1 {
		t.Fatalf("deviations = %d, want 1 (DATA-opened exchange unchecked)", dev)
	}
}

func TestMonitorLegacyDataWithoutAttempt(t *testing.T) {
	// A DATA with no attempt field and no prior RTS decision (defensive
	// path) still gets an assignment and an ACK.
	h := newHarness(DefaultParams())
	ack, assigned := h.m.OnData(frame.Frame{
		Type: frame.Data, Src: 1, Dst: 9, Seq: 1, PayloadBytes: 512,
	}, sim.Millisecond, 2*sim.Millisecond)
	if !ack || assigned < 0 {
		t.Fatalf("legacy DATA: ack=%v assigned=%d", ack, assigned)
	}
}

func TestMonitorDistinctSendersIndependent(t *testing.T) {
	h := newHarness(DefaultParams())
	// Interleave: sender 1 honest, sender 2 misbehaving (via direct calls).
	m := h.m
	mp := h.mp
	now := sim.Millisecond
	assigned := map[frame.NodeID]int{1: -1, 2: -1}
	var seq uint32
	for i := 0; i < 12; i++ {
		for _, src := range []frame.NodeID{1, 2} {
			seq++
			slots := 0
			if a := assigned[src]; a >= 0 {
				if src == 1 {
					slots = a // honest
				} else {
					slots = 0 // full misbehavior
				}
			}
			start := now + mp.DIFS() + sim.Time(slots)*mp.SlotTime
			end := start + rtsAirtime
			m.OnCarrierBusy(start)
			_, a := m.OnRTS(frame.Frame{Type: frame.RTS, Src: src, Dst: 9, Seq: seq, Attempt: 1}, start, end)
			m.OnCarrierIdle(end)
			ackEnd := end + 3*sim.Millisecond
			m.OnCarrierBusy(end + sim.Microsecond)
			m.OnCarrierIdle(ackEnd)
			m.OnAckSent(src, seq, ackEnd)
			assigned[src] = a
			now = ackEnd
		}
	}
	if m.Diagnosed(1) {
		t.Fatal("honest sender 1 diagnosed")
	}
	if !m.Diagnosed(2) {
		t.Fatal("misbehaving sender 2 not diagnosed")
	}
	_, dev1, _ := m.SenderStats(1)
	if dev1 != 0 {
		t.Fatalf("honest sender accumulated %d deviations", dev1)
	}
}
