package lint

import (
	"go/ast"
	"strings"
)

// Obshot flags metric-handle lookups by string name — Counter, Gauge or
// Histogram calls on a metrics registry — outside attach-time code. The
// observability layer's hot-path contract is that handles are resolved
// once, when a component is instrumented, and stored on the struct; a
// lookup inside an event handler re-pays the registry's mutex + map
// walk on every simulated event and silently erodes the "disabled
// instrumentation is free" guarantee. The check is duck-typed: any named
// receiver offering all three lookup methods is treated as a registry.
// Resolution is legal inside functions whose name marks them as
// attach-time or test scaffolding (New*, Instrument*, init, Test*,
// Benchmark*, Fuzz*, Example*) — but not inside a closure built there,
// since the closure body runs later. A Counter/Gauge/Histogram selector
// captured as a method value (f := reg.Counter) is flagged everywhere,
// attach time included: the lookup it wraps runs wherever the value is
// eventually invoked, beyond this analysis's reach. Genuinely cold sites
// may carry a //detlint:allow obshot directive with a justification.
var Obshot = &Analyzer{
	Name: "obshot",
	Doc:  "flag registry Counter/Gauge/Histogram lookups outside attach-time functions",
	Run:  runObshot,
}

// obshotAttachPrefixes name the functions in which by-name resolution is
// sanctioned: constructors, Instrument methods, package init, and test
// scaffolding.
var obshotAttachPrefixes = []string{"New", "Instrument", "init", "Test", "Benchmark", "Fuzz", "Example"}

func obshotAttachTime(name string) bool {
	for _, p := range obshotAttachPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// obshotContext classifies the innermost enclosing function of the node
// under the cursor (stack ends at the node itself): the declared
// function's name, and whether the node sits inside a function literal —
// which defers execution past attach time no matter where the literal is
// written.
func obshotContext(stack []ast.Node) (fnName string, inLit bool) {
	for i := len(stack) - 2; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncLit:
			return "", true
		case *ast.FuncDecl:
			return fn.Name.Name, false
		}
	}
	return "", false
}

func runObshot(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			if name != "Counter" && name != "Gauge" && name != "Histogram" {
				return true
			}
			named := namedRecvOf(info, sel)
			if named == nil ||
				!hasMethod(named, "Counter") || !hasMethod(named, "Gauge") || !hasMethod(named, "Histogram") {
				return true
			}
			// A selector that is not immediately called is a method value:
			// the by-name lookup it wraps happens wherever the value is
			// finally invoked — beyond this analysis's reach — so storing or
			// passing one re-smuggles a per-call lookup into the hot path no
			// matter which function builds it. Flag it even at attach time.
			if !obshotImmediateCall(sel, stack) {
				pass.Reportf(sel.Pos(), "%s.%s captured as a method value defers the by-name lookup to every future call; resolve the handle here and pass the handle instead",
					named.Obj().Name(), name)
				return true
			}
			fn, inLit := obshotContext(stack)
			if !inLit && obshotAttachTime(fn) {
				return true
			}
			pass.Reportf(sel.Pos(), "%s.%s handle lookup by name outside attach time pays the registry mutex+map per call; resolve the handle once in New*/Instrument* and store it",
				named.Obj().Name(), name)
			return true
		})
	}
}

// obshotImmediateCall reports whether sel is the function operand of its
// enclosing call expression (reg.Counter(...)), as opposed to a method
// value (f := reg.Counter; fns = append(fns, reg.Gauge)).
func obshotImmediateCall(sel *ast.SelectorExpr, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	call, ok := stack[len(stack)-2].(*ast.CallExpr)
	return ok && call.Fun == sel
}
