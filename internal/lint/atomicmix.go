package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Atomicmix flags a variable or struct field accessed both through
// sync/atomic function calls (`atomic.LoadUint64(&s.n)`) and through
// plain loads/stores (`s.n++`). Mixing the disciplines is how the
// sweep-progress counter and the scheduler's interrupt flag were
// originally broken: the plain access races the atomic one, the race
// detector only notices when both sides actually interleave in a test
// run, and on weakly-ordered hardware the plain read can see a stale
// value forever. The rule: once any access is atomic, every access is —
// or the field migrates to the typed atomic.Uint64/atomic.Bool
// wrappers, which make plain access unrepresentable. Pre-spawn
// initialisation that provably happens before any goroutine exists may
// carry a //detlint:allow atomicmix directive saying so.
var Atomicmix = &Analyzer{
	Name: "atomicmix",
	Doc:  "flag variables accessed both via sync/atomic and via plain loads/stores",
	Run:  runAtomicmix,
}

func runAtomicmix(pass *Pass) {
	info := pass.Pkg.Info

	// Pass 1: every variable whose address is taken into a sync/atomic
	// call, with the identifier nodes of those sanctioned uses.
	atomicVars := make(map[*types.Var]string) // var -> atomic func name
	sanctioned := make(map[*ast.Ident]bool)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, name, ok := pkgFuncOf(info, sel)
			if !ok || pkgPath != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				v, id := addressedVar(info, un.X)
				if v == nil {
					continue
				}
				if _, have := atomicVars[v]; !have {
					atomicVars[v] = "atomic." + name
				}
				if id != nil {
					sanctioned[id] = true
				}
			}
			return true
		})
	}
	if len(atomicVars) == 0 {
		return
	}

	// Pass 2: any other mention of those variables is a plain access.
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || sanctioned[id] {
				return true
			}
			v, isVar := info.Uses[id].(*types.Var)
			if !isVar {
				return true
			}
			if fn, mixed := atomicVars[v]; mixed {
				pass.Reportf(id.Pos(), "%q is accessed via %s elsewhere but with a plain load/store here; pick one discipline — wrap every access in sync/atomic or use the typed atomic wrappers", v.Name(), fn)
			}
			return true
		})
	}
}

// addressedVar resolves the operand of a unary & inside an atomic call
// to the variable it addresses: a struct field (`&s.n`) or a plain
// variable (`&count`). The returned ident is the field/variable name
// node, so pass 2 can skip this sanctioned mention.
func addressedVar(info *types.Info, expr ast.Expr) (*types.Var, *ast.Ident) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		v, _ := info.Uses[e].(*types.Var)
		return v, e
	case *ast.SelectorExpr:
		if s, ok := info.Selections[e]; ok && s.Kind() == types.FieldVal {
			v, _ := s.Obj().(*types.Var)
			return v, e.Sel
		}
	}
	return nil, nil
}
