package lint_test

import (
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dcfguard/internal/lint"
	"dcfguard/internal/lint/linttest"
)

func TestShardsafe(t *testing.T) {
	linttest.Run(t, "./internal/lint/testdata/src/shardsafe", lint.Shardsafe)
}

func TestAtomicmix(t *testing.T) {
	linttest.Run(t, "./internal/lint/testdata/src/atomicmix", lint.Atomicmix)
}

func TestRngstream(t *testing.T) {
	linttest.Run(t, "./internal/lint/testdata/src/rngstream", lint.Rngstream)
}

// repoRoot walks up from the test's working directory to the module
// root, mirroring linttest's loader convention.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

// TestWallclockIndirect pins the interprocedural upgrade against the
// exact blindness of the v1 analyzer. The clockdep corpus splits a
// wall-clock read (helper.Stamp) from its callers (package caller),
// which never mention time.* themselves.
func TestWallclockIndirect(t *testing.T) {
	root := repoRoot(t)

	// v1 behaviour, reproduced: analyzing caller without helper's syntax
	// loaded yields no facts and therefore no findings — the analyzer is
	// provably blind to the laundered clock read.
	callerOnly, err := lint.Load(root, "./internal/lint/testdata/src/clockdep/caller")
	if err != nil {
		t.Fatal(err)
	}
	if diags := lint.Run(callerOnly, []*lint.Analyzer{lint.Wallclock}); len(diags) != 0 {
		t.Fatalf("caller-only run (v1 blindness baseline) reported %d diagnostics, want 0:\n%v", len(diags), diags)
	}

	// v2: facts computed over both packages, analysis scoped to caller.
	// Both call sites are flagged, each with a witness chain naming the
	// root time.Now.
	both, err := lint.Load(root,
		"./internal/lint/testdata/src/clockdep/helper",
		"./internal/lint/testdata/src/clockdep/caller")
	if err != nil {
		t.Fatal(err)
	}
	var caller *lint.Package
	for _, p := range both {
		if strings.HasSuffix(p.PkgPath, "/caller") {
			caller = p
		}
	}
	if caller == nil {
		t.Fatalf("caller package not among %d loaded packages", len(both))
	}
	diags := lint.RunScoped(both, []*lint.Package{caller}, []*lint.Analyzer{lint.Wallclock})
	if len(diags) != 2 {
		t.Fatalf("scoped run reported %d diagnostics, want 2:\n%v", len(diags), diags)
	}
	for _, want := range []string{
		"Stamp reads the wall clock indirectly: reads the wall clock via time.Now",
		"Elapsed reads the wall clock indirectly: calls Stamp, which reads the wall clock via time.Now",
	} {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no diagnostic matching %q in:\n%v", want, diags)
		}
	}
}

// TestModuleIsClean is the anti-regression pin: the shipping module —
// everything dcflint checks by default, i.e. all packages except
// internal/lint and its corpora — must produce zero findings under the
// full analyzer set. Any new finding is either a real violation to fix
// or a justified site missing its //detlint:allow.
func TestModuleIsClean(t *testing.T) {
	root := repoRoot(t)
	all, err := lint.Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	var scope []*lint.Package
	for _, p := range all {
		if strings.HasPrefix(p.PkgPath, "dcfguard/internal/lint") {
			continue
		}
		scope = append(scope, p)
	}
	if len(scope) == 0 {
		t.Fatal("no packages in scope")
	}
	diags := lint.RunScoped(all, scope, lint.All())
	for _, d := range diags {
		t.Errorf("unexpected finding: %v", d)
	}
	if len(diags) > 0 {
		t.Logf("%d findings over %d packages", len(diags), len(scope))
	}
}

// TestAllowSites exercises the audit surface over the directive corpus:
// every site is reported in order, and justifications after "--" are
// captured verbatim.
func TestAllowSites(t *testing.T) {
	root := repoRoot(t)
	pkgs, err := lint.Load(root, "./internal/lint/testdata/src/shardsafe")
	if err != nil {
		t.Fatal(err)
	}
	sites := lint.AllowSites(pkgs)
	if len(sites) != 1 {
		t.Fatalf("AllowSites = %d sites, want 1:\n%+v", len(sites), sites)
	}
	s := sites[0]
	if len(s.Names) != 1 || s.Names[0] != "shardsafe" {
		t.Errorf("site names = %v, want [shardsafe]", s.Names)
	}
	if s.Scope != "line" {
		t.Errorf("scope = %q, want line", s.Scope)
	}
	if want := "self is this worker's own shard index by construction"; s.Justification != want {
		t.Errorf("justification = %q, want %q", s.Justification, want)
	}
}

// TestAllowSitesPackageScope: allow-package directives surface in the
// audit with their wider scope and justification, so `dcflint
// -audit-allows` shows reviewers exactly how far each carve-out reaches.
func TestAllowSitesPackageScope(t *testing.T) {
	root := repoRoot(t)
	pkgs, err := lint.Load(root, "./internal/lint/testdata/src/allowpkg")
	if err != nil {
		t.Fatal(err)
	}
	sites := lint.AllowSites(pkgs)
	if len(sites) != 1 {
		t.Fatalf("AllowSites = %d sites, want 1:\n%+v", len(sites), sites)
	}
	s := sites[0]
	if len(s.Names) != 1 || s.Names[0] != "wallclock" {
		t.Errorf("site names = %v, want [wallclock]", s.Names)
	}
	if s.Scope != "package" {
		t.Errorf("scope = %q, want package", s.Scope)
	}
	if s.Justification == "" {
		t.Error("package-scoped site lost its justification")
	}
}

// TestFactsSchedParams pins the forwarded-parameter summaries that the
// interprocedural hotalloc rule rides on: armVia forwards its third
// parameter straight into At, and armDeep inherits that through the
// fixpoint.
func TestFactsSchedParams(t *testing.T) {
	root := repoRoot(t)
	pkgs, err := lint.Load(root, "./internal/lint/testdata/src/hotalloc")
	if err != nil {
		t.Fatal(err)
	}
	facts := lint.ComputeFacts(pkgs)
	for _, name := range []string{"armVia", "armDeep"} {
		fn, ok := pkgs[0].Types.Scope().Lookup(name).(*types.Func)
		if !ok {
			t.Fatalf("no function %s in corpus", name)
		}
		ff := facts.Of(fn)
		if !ff.ForwardsToScheduler(2) {
			t.Errorf("%s: parameter 2 not summarised as scheduler-forwarded", name)
		}
	}
}
